// Package benchcheck is the shared regression-gate machinery behind the
// perf-trajectory commands (cmd/migrationbench, cmd/directorybench,
// cmd/fleetbench, and the loadgen baseline): one JSON report shape, one
// median/sampling helper, and one -check implementation, so every gate
// applies the same tolerance math instead of four hand-copied variants.
//
// Two kinds of gate live here:
//
//   - allocation gates (Check): re-run deterministic testing.B benchmarks
//     and fail when allocs/op regresses beyond tolerance against the
//     committed baseline — allocation counts are noise-free, ns/op is
//     reported but never gated;
//   - value gates (CompareValues): compare named scalar metrics (byte
//     counts, ratios) against a committed baseline with a per-metric
//     direction, for harnesses whose deterministic output is traffic
//     accounting rather than allocations.
package benchcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// DefaultTolerance is the fractional drift every gate allows before
// failing (10%).
const DefaultTolerance = 0.10

// Sample is one benchmark measurement.
type Sample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
}

// Result is one benchmark's samples plus the median the gate reads.
type Result struct {
	Name    string   `json:"name"`
	Samples []Sample `json:"samples"`
	Median  Sample   `json:"median"`
}

// Report is the common envelope of every BENCH_*.json file. Commands with
// extra fields embed it.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	Count       int      `json:"count"`
	Results     []Result `json:"results"`
}

// NewReport stamps the environment fields.
func NewReport(count int) Report {
	return Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Count:       count,
	}
}

// WriteFile marshals any report shape (typically a struct embedding
// Report) to path with a trailing newline.
func WriteFile(path string, rep any) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Bench is one named benchmark in a command's suite.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
	// Deterministic marks benchmarks whose allocs/op cannot vary run to
	// run; only these participate in Check.
	Deterministic bool
}

// Run samples a benchmark count times and medians by ns/op.
func Run(bm Bench, count int) Result {
	res := Result{Name: bm.Name}
	for i := 0; i < count; i++ {
		r := testing.Benchmark(bm.Fn)
		res.Samples = append(res.Samples, Sample{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	res.Median = Median(res.Samples, func(s Sample) float64 { return s.NsPerOp })
	return res
}

// Median returns the middle sample ordered by key.
func Median(s []Sample, key func(Sample) float64) Sample {
	sorted := append([]Sample(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return key(sorted[i]) < key(sorted[j]) })
	return sorted[len(sorted)/2]
}

// Regressed reports whether got drifted beyond tol (a fraction, e.g. 0.10)
// from base in the bad direction. With higherIsWorse, regression means got
// > base*(1+tol); otherwise got < base*(1-tol). A zero base treats any
// nonzero got as a regression when higher is worse (the baseline promised
// zero allocations — a new allocation is always a regression), and never
// regresses otherwise (there is nothing left to lose).
func Regressed(got, base, tol float64, higherIsWorse bool) bool {
	if higherIsWorse {
		if base == 0 {
			return got > 0
		}
		return got > base*(1+tol)
	}
	if base == 0 {
		return false
	}
	return got < base*(1-tol)
}

// Check re-runs the deterministic benchmarks of a suite and compares
// allocs/op against the committed baseline at path: a regression beyond
// DefaultTolerance fails, and so does a deterministic benchmark missing
// from the baseline (a silently ungated bench is how drift hides).
// Progress lines go to stdout prefixed with the command name.
func Check(cmd, path string, benches []Bench, count int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	baseline := make(map[string]Sample, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r.Median
	}
	var failures []string
	for _, bm := range benches {
		if !bm.Deterministic {
			continue
		}
		want, ok := baseline[bm.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from baseline", bm.Name))
			continue
		}
		got := Run(bm, count).Median
		status := "ok"
		if Regressed(float64(got.AllocsPerOp), float64(want.AllocsPerOp), DefaultTolerance, true) {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %d exceeds baseline %d by >%.0f%%",
				bm.Name, got.AllocsPerOp, want.AllocsPerOp, 100*DefaultTolerance))
		}
		fmt.Printf("%-36s allocs/op %6d (baseline %6d) %s\n",
			bm.Name, got.AllocsPerOp, want.AllocsPerOp, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s: allocation regressions:\n  %s", cmd, strings.Join(failures, "\n  "))
	}
	return nil
}

// Value is one gated scalar in a value-style baseline.
type Value struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// HigherIsWorse sets the regression direction: true for byte counts
	// and latencies, false for ratios and throughputs where shrinking is
	// the regression.
	HigherIsWorse bool `json:"higher_is_worse"`
	// Gate marks values that participate in CompareValues; ungated
	// values are trajectory context only.
	Gate bool `json:"gate,omitempty"`
	// Tolerance overrides DefaultTolerance when > 0.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// CompareValues checks measured values against a baseline list. Every
// gated baseline entry must be present in got and within tolerance in its
// direction; a gated entry missing from got is a failure (the harness
// stopped measuring something it used to gate). Returns the failure
// descriptions, empty on success.
func CompareValues(baseline []Value, got map[string]float64) []string {
	var failures []string
	for _, v := range baseline {
		if !v.Gate {
			continue
		}
		g, ok := got[v.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from this run", v.Name))
			continue
		}
		tol := v.Tolerance
		if tol <= 0 {
			tol = DefaultTolerance
		}
		if Regressed(g, v.Value, tol, v.HigherIsWorse) {
			dir := "exceeds"
			if !v.HigherIsWorse {
				dir = "fell below"
			}
			failures = append(failures, fmt.Sprintf(
				"%s: %.4g %s baseline %.4g by >%.0f%%", v.Name, g, dir, v.Value, 100*tol))
		}
	}
	return failures
}
