package benchcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegressedToleranceMath(t *testing.T) {
	cases := []struct {
		name          string
		got, base     float64
		tol           float64
		higherIsWorse bool
		want          bool
	}{
		{"exactly-at-limit-passes", 110, 100, 0.10, true, false},
		{"just-over-limit-fails", 110.01, 100, 0.10, true, true},
		{"improvement-passes", 50, 100, 0.10, true, false},
		{"zero-base-zero-got", 0, 0, 0.10, true, false},
		{"zero-base-any-alloc-fails", 1, 0, 0.10, true, true},
		{"lower-worse-at-limit-passes", 90, 100, 0.10, false, false},
		{"lower-worse-below-limit-fails", 89.99, 100, 0.10, false, true},
		{"lower-worse-improvement-passes", 200, 100, 0.10, false, false},
		{"lower-worse-zero-base-passes", 0, 0, 0.10, false, false},
		{"tight-tolerance", 101, 100, 0.005, true, true},
	}
	for _, tc := range cases {
		if got := Regressed(tc.got, tc.base, tc.tol, tc.higherIsWorse); got != tc.want {
			t.Errorf("%s: Regressed(%v, %v, %v, %v) = %v, want %v",
				tc.name, tc.got, tc.base, tc.tol, tc.higherIsWorse, got, tc.want)
		}
	}
}

func TestCompareValues(t *testing.T) {
	baseline := []Value{
		{Name: "bytes_cnmp", Value: 1000, HigherIsWorse: true, Gate: true},
		{Name: "byte_ratio", Value: 8.0, HigherIsWorse: false, Gate: true},
		{Name: "hop_p99_ms", Value: 3.0, HigherIsWorse: true}, // ungated context
	}

	t.Run("within-tolerance-passes", func(t *testing.T) {
		got := map[string]float64{"bytes_cnmp": 1050, "byte_ratio": 7.5}
		if f := CompareValues(baseline, got); len(f) != 0 {
			t.Fatalf("unexpected failures: %v", f)
		}
	})
	t.Run("byte-growth-fails", func(t *testing.T) {
		got := map[string]float64{"bytes_cnmp": 1200, "byte_ratio": 8.0}
		f := CompareValues(baseline, got)
		if len(f) != 1 || !strings.Contains(f[0], "bytes_cnmp") {
			t.Fatalf("failures = %v", f)
		}
	})
	t.Run("ratio-shrink-fails", func(t *testing.T) {
		got := map[string]float64{"bytes_cnmp": 1000, "byte_ratio": 5.0}
		f := CompareValues(baseline, got)
		if len(f) != 1 || !strings.Contains(f[0], "byte_ratio") {
			t.Fatalf("failures = %v", f)
		}
	})
	t.Run("gated-key-missing-from-run-fails", func(t *testing.T) {
		got := map[string]float64{"byte_ratio": 8.0}
		f := CompareValues(baseline, got)
		if len(f) != 1 || !strings.Contains(f[0], "missing from this run") {
			t.Fatalf("failures = %v", f)
		}
	})
	t.Run("ungated-key-drift-ignored", func(t *testing.T) {
		got := map[string]float64{"bytes_cnmp": 1000, "byte_ratio": 8.0, "hop_p99_ms": 300}
		if f := CompareValues(baseline, got); len(f) != 0 {
			t.Fatalf("ungated value should not gate: %v", f)
		}
	})
}

func TestCheckMissingBenchAndRegression(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	rep := NewReport(1)
	rep.Results = []Result{{Name: "codec/known", Median: Sample{AllocsPerOp: 0}}}
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}

	// allocBench allocates on purpose: against a 0-alloc baseline this is
	// always a regression.
	allocBench := Bench{Name: "codec/known", Deterministic: true, Fn: func(b *testing.B) {
		b.ReportAllocs()
		var sink []byte
		for i := 0; i < b.N; i++ {
			sink = make([]byte, 64)
		}
		_ = sink
	}}
	cleanBench := Bench{Name: "codec/clean", Deterministic: true, Fn: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
		}
	}}

	err := Check("testcmd", path, []Bench{allocBench, cleanBench}, 1)
	if err == nil {
		t.Fatal("Check passed; want regression + missing-key failure")
	}
	if !strings.Contains(err.Error(), "codec/known") || !strings.Contains(err.Error(), "exceeds baseline") {
		t.Errorf("missing allocation regression in: %v", err)
	}
	if !strings.Contains(err.Error(), "codec/clean: missing from baseline") {
		t.Errorf("missing missing-key failure in: %v", err)
	}

	// A matching baseline passes.
	rep.Results = []Result{
		{Name: "codec/known", Median: Sample{AllocsPerOp: 1}},
		{Name: "codec/clean", Median: Sample{AllocsPerOp: 0}},
	}
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	if err := Check("testcmd", path, []Bench{allocBench, cleanBench}, 1); err != nil {
		t.Fatalf("Check failed against matching baseline: %v", err)
	}
}

func TestCheckUnreadableBaseline(t *testing.T) {
	if err := Check("testcmd", filepath.Join(t.TempDir(), "nope.json"), nil, 1); err == nil {
		t.Fatal("want error for missing baseline file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Check("testcmd", bad, nil, 1); err == nil {
		t.Fatal("want error for unparseable baseline file")
	}
}
