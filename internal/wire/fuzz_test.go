package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeeds returns a corpus of valid encoded frames plus hostile inputs:
// truncated headers, oversized length prefixes, and garbage bodies.
func fuzzSeeds(tb testing.TB) [][]byte {
	frames := []Frame{
		{Kind: KindPost, From: "a", To: "b", Seq: 1, Payload: []byte("hello")},
		{Kind: KindNapletTransfer, From: "server-α", To: "数据中心", Seq: 1 << 40, Payload: make([]byte, 300)},
		{},
	}
	var seeds [][]byte
	for _, f := range frames {
		data, err := Encode(f)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, data, data[:len(data)/2])
	}
	hostile := make([]byte, 8)
	binary.BigEndian.PutUint32(hostile, MaxFrameSize+1)
	seeds = append(seeds,
		hostile,
		[]byte{0, 0, 0, 3, 200, 'a', 'b'}, // kind length prefix overruns body
		[]byte{0, 0, 0, 4, 0, 0, 0, 0x80}, // dangling uvarint continuation
		[]byte{0xff, 0xff},                // short length prefix
		bytes.Repeat([]byte{0x80}, 32),    // varint that never terminates
	)
	return seeds
}

// FuzzDecode feeds arbitrary bytes to Decode: it must never panic, must
// never report consuming more bytes than it was given, and any frame it
// does accept must survive a canonical re-encode round trip.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err != nil {
			return
		}
		if n < 4 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Non-minimal varints may make the input longer than canonical,
		// never shorter.
		if fr.EncodedSize() > n {
			t.Fatalf("EncodedSize %d exceeds consumed %d", fr.EncodedSize(), n)
		}
		re, err := Encode(fr)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, m, err := Decode(re)
		if err != nil || m != len(re) {
			t.Fatalf("re-decode: n=%d err=%v", m, err)
		}
		if back.Kind != fr.Kind || back.From != fr.From || back.To != fr.To ||
			back.Seq != fr.Seq || !bytes.Equal(back.Payload, fr.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", back, fr)
		}
	})
}

// FuzzReadFrame feeds arbitrary bytes to the streaming reader: no panics,
// no over-reads, and hostile length prefixes must be rejected before any
// large allocation.
func FuzzReadFrame(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if fr.EncodedSize() > len(data) {
			t.Fatalf("accepted frame of size %d from %d input bytes", fr.EncodedSize(), len(data))
		}
	})
}
