// Binary field primitives shared by the hand-rolled payload codecs.
//
// PR 2 replaced gob in the frame *header*; the migration payload bodies
// (naplet records, mail, dock snapshots) kept gob until the codecs built on
// these primitives replaced it. The building blocks mirror the frame
// header's conventions — uvarint length prefixes, no reflection, sizes
// computable arithmetically — so every codec in the system speaks one
// dialect and DESIGN.md §10 documents it once.
//
// Encoding conventions:
//
//	string / []byte   [uvarint length] [bytes]
//	bool              one byte, 0 or 1
//	uvarint           binary.AppendUvarint
//	varint (signed)   zigzag, binary.AppendVarint
//	time.Time         [flag byte: 0 = zero time] or
//	                  [1] [varint unix seconds] [uvarint nanoseconds]
//
// The explicit zero flag matters because the zero time.Time is year 1, far
// outside the varint-friendly Unix range, and IsZero must survive a round
// trip (zero creation times and open departure hops carry meaning).
// Decoded times are UTC with second/nanosecond fidelity; time.Time.Equal
// holds across a round trip, monotonic readings and locations do not
// travel (they never did under gob either).
//
// Decoders consume from the front of a slice and return the rest, like the
// frame header's readString. DecBytes aliases the input; callers that
// retain the slice beyond the input's lifetime must copy (domain codecs
// that store payloads do).
package wire

import (
	"encoding/binary"
	"time"
)

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint-length-prefixed byte slice. nil and empty
// encode identically (length 0).
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendUvarint appends an unsigned varint.
func AppendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// AppendVarint appends a zigzag-encoded signed varint.
func AppendVarint(dst []byte, x int64) []byte {
	return binary.AppendVarint(dst, x)
}

// AppendTime appends a time with an explicit zero flag (see package
// comment for the layout).
func AppendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendVarint(dst, t.Unix())
	return binary.AppendUvarint(dst, uint64(t.Nanosecond()))
}

// DecString consumes one length-prefixed string. The returned string is a
// copy.
func DecString(b []byte) (string, []byte, error) {
	return readString(b)
}

// DecBytes consumes one length-prefixed byte slice. The result aliases b;
// zero length decodes to nil.
func DecBytes(b []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return nil, nil, ErrMalformed
	}
	if n == 0 {
		return nil, b[sz:], nil
	}
	return b[sz : sz+int(n)], b[sz+int(n):], nil
}

// DecBool consumes one boolean byte. Bytes other than 0 and 1 are
// malformed, keeping the encoding canonical for golden-byte tests.
func DecBool(b []byte) (bool, []byte, error) {
	if len(b) == 0 || b[0] > 1 {
		return false, nil, ErrMalformed
	}
	return b[0] == 1, b[1:], nil
}

// DecUvarint consumes one unsigned varint.
func DecUvarint(b []byte) (uint64, []byte, error) {
	x, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, ErrMalformed
	}
	return x, b[sz:], nil
}

// DecVarint consumes one zigzag-encoded signed varint.
func DecVarint(b []byte) (int64, []byte, error) {
	x, sz := binary.Varint(b)
	if sz <= 0 {
		return 0, nil, ErrMalformed
	}
	return x, b[sz:], nil
}

// DecTime consumes one flagged time. Non-zero times decode as UTC.
func DecTime(b []byte) (time.Time, []byte, error) {
	if len(b) == 0 || b[0] > 1 {
		return time.Time{}, nil, ErrMalformed
	}
	if b[0] == 0 {
		return time.Time{}, b[1:], nil
	}
	sec, rest, err := DecVarint(b[1:])
	if err != nil {
		return time.Time{}, nil, err
	}
	nsec, rest, err := DecUvarint(rest)
	if err != nil {
		return time.Time{}, nil, err
	}
	if nsec >= 1e9 {
		return time.Time{}, nil, ErrMalformed
	}
	return time.Unix(sec, int64(nsec)).UTC(), rest, nil
}

// DecCount consumes an element count that prefixes a sequence, rejecting
// counts that could not possibly fit in the remaining input (each element
// occupies at least minElemSize ≥ 1 encoded bytes). This bounds decoder
// allocations by the input length, which is what keeps the fuzz targets
// safe against hostile counts.
func DecCount(b []byte, minElemSize int) (int, []byte, error) {
	n, rest, err := DecUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if n > uint64(len(rest)/minElemSize) {
		return 0, nil, ErrMalformed
	}
	return int(n), rest, nil
}

// SizeString returns the encoded size of AppendString(s).
func SizeString(s string) int {
	return uvarintLen(uint64(len(s))) + len(s)
}

// SizeBytes returns the encoded size of AppendBytes(b).
func SizeBytes(b []byte) int {
	return uvarintLen(uint64(len(b))) + len(b)
}

// SizeUvarint returns the encoded size of AppendUvarint(x).
func SizeUvarint(x uint64) int { return uvarintLen(x) }

// SizeVarint returns the encoded size of AppendVarint(x).
func SizeVarint(x int64) int {
	return uvarintLen(uint64(x)<<1 ^ uint64(x>>63))
}

// SizeBool is the encoded size of a boolean.
const SizeBool = 1

// SizeTime returns the encoded size of AppendTime(t).
func SizeTime(t time.Time) int {
	if t.IsZero() {
		return 1
	}
	return 1 + SizeVarint(t.Unix()) + uvarintLen(uint64(t.Nanosecond()))
}

// BinaryBody is a payload body with a hand-rolled binary codec: everything
// a frame needs to carry it without reflection.
type BinaryBody interface {
	// EncodedSize returns the exact encoded byte count, computed
	// arithmetically without encoding.
	EncodedSize() int
	// AppendBinary appends the encoded form to dst and returns it.
	AppendBinary(dst []byte) []byte
}

// BinaryFrame builds a frame around a binary-codec body in one exact-size
// allocation — the non-reflective counterpart of NewFrame.
func BinaryFrame(kind Kind, from, to string, body BinaryBody) Frame {
	payload := body.AppendBinary(make([]byte, 0, body.EncodedSize()))
	return Frame{Kind: kind, From: from, To: to, Payload: payload}
}
