package wire

import (
	"context"
	"time"
)

// Deadline propagation rides inside the Seq field rather than adding a
// header field, which keeps the frame layout — and every deployed
// decoder — unchanged. Seq is opaque end to end: the caller assigns it,
// the responder echoes it verbatim, and the client mux correlates on
// the full packed value, so folding the budget into its unused high
// bits is invisible to anything that does not explicitly unpack it.
//
// Packed layout (big to small):
//
//	bit  63     budget-present flag
//	bits 41..62 remaining budget, milliseconds (saturating, ~69.9 min max)
//	bits 0..40  sequence number (2^41 calls per connection)
//
// A frame without a budget is bit-for-bit identical to the previous
// frame version; a frame with one is still a valid uvarint Seq (it
// merely grows to the full 10-byte uvarint), which the golden fixtures
// under testdata/ pin down.
const (
	budgetFlag  = uint64(1) << 63
	budgetBits  = 22
	seqBits     = 63 - budgetBits
	seqMask     = uint64(1)<<seqBits - 1
	maxBudgetMS = uint64(1)<<budgetBits - 1
	budgetUnit  = time.Millisecond
	budgetRound = budgetUnit - time.Nanosecond
)

// MaxBudget is the largest remaining-time budget the frame header can
// carry; larger budgets saturate to it (the caller's own context still
// enforces the true deadline).
const MaxBudget = time.Duration(maxBudgetMS) * budgetUnit

// PackBudget folds a positive remaining-time budget into seq's high
// bits, rounding up to the millisecond so sub-millisecond budgets are
// not lost. A non-positive remaining returns seq unchanged (no budget
// flag).
func PackBudget(seq uint64, remaining time.Duration) uint64 {
	if remaining <= 0 {
		return seq
	}
	ms := uint64((remaining + budgetRound) / budgetUnit)
	if ms > maxBudgetMS {
		ms = maxBudgetMS
	}
	return seq&seqMask | budgetFlag | ms<<seqBits
}

// Budget unpacks the propagated remaining-time budget, reporting false
// when the frame carries none.
func (f *Frame) Budget() (time.Duration, bool) {
	if f.Seq&budgetFlag == 0 {
		return 0, false
	}
	return time.Duration(f.Seq>>seqBits&maxBudgetMS) * budgetUnit, true
}

// BareSeq strips the budget bits, returning the raw sequence number.
func (f *Frame) BareSeq() uint64 {
	if f.Seq&budgetFlag == 0 {
		return f.Seq
	}
	return f.Seq & seqMask
}

// BudgetExpired reports whether the frame's propagated budget had
// already run out at the given instant, measured from ReceivedAt. It
// is false for frames without a budget or without a receipt stamp.
func (f *Frame) BudgetExpired(now time.Time) bool {
	d, ok := f.Budget()
	if !ok || f.ReceivedAt.IsZero() {
		return false
	}
	return now.Sub(f.ReceivedAt) >= d
}

// BudgetContext derives the server-side context for handling this
// frame: with a propagated budget the context carries the deadline
// ReceivedAt+budget (falling back to now+budget when the fabric did
// not stamp receipt), otherwise it is just a cancelable child of
// parent. The caller must call the returned cancel func.
func (f *Frame) BudgetContext(parent context.Context) (context.Context, context.CancelFunc) {
	d, ok := f.Budget()
	if !ok {
		return context.WithCancel(parent)
	}
	base := f.ReceivedAt
	if base.IsZero() {
		base = time.Now()
	}
	return context.WithDeadline(parent, base.Add(d))
}
