package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBinaryPrimitivesRoundTrip(t *testing.T) {
	var b []byte
	now := time.Date(2026, 8, 8, 12, 34, 56, 789, time.UTC)
	b = AppendString(b, "naplet")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendUvarint(b, 1<<40)
	b = AppendVarint(b, -12345)
	b = AppendTime(b, now)
	b = AppendTime(b, time.Time{})

	s, rest, err := DecString(b)
	if err != nil || s != "naplet" {
		t.Fatalf("string: %q %v", s, err)
	}
	bs, rest, err := DecBytes(rest)
	if err != nil || !bytes.Equal(bs, []byte{1, 2, 3}) {
		t.Fatalf("bytes: %v %v", bs, err)
	}
	v1, rest, err := DecBool(rest)
	if err != nil || !v1 {
		t.Fatalf("bool true: %v %v", v1, err)
	}
	v2, rest, err := DecBool(rest)
	if err != nil || v2 {
		t.Fatalf("bool false: %v %v", v2, err)
	}
	u, rest, err := DecUvarint(rest)
	if err != nil || u != 1<<40 {
		t.Fatalf("uvarint: %d %v", u, err)
	}
	i, rest, err := DecVarint(rest)
	if err != nil || i != -12345 {
		t.Fatalf("varint: %d %v", i, err)
	}
	tm, rest, err := DecTime(rest)
	if err != nil || !tm.Equal(now) {
		t.Fatalf("time: %v %v", tm, err)
	}
	zt, rest, err := DecTime(rest)
	if err != nil || !zt.IsZero() {
		t.Fatalf("zero time: %v %v", zt, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
}

func TestBinarySizesExact(t *testing.T) {
	times := []time.Time{
		{},
		time.Unix(0, 0),
		time.Date(1969, 12, 31, 23, 59, 59, 999999999, time.UTC),
		time.Date(2026, 8, 8, 1, 2, 3, 4, time.UTC),
	}
	for _, tm := range times {
		if got, want := SizeTime(tm), len(AppendTime(nil, tm)); got != want {
			t.Errorf("SizeTime(%v) = %d, encoded %d", tm, got, want)
		}
	}
	for _, x := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		if got, want := SizeVarint(x), len(AppendVarint(nil, x)); got != want {
			t.Errorf("SizeVarint(%d) = %d, encoded %d", x, got, want)
		}
	}
	for _, x := range []uint64{0, 127, 128, math.MaxUint64} {
		if got, want := SizeUvarint(x), len(AppendUvarint(nil, x)); got != want {
			t.Errorf("SizeUvarint(%d) = %d, encoded %d", x, got, want)
		}
	}
	for _, s := range []string{"", "x", "приложение"} {
		if got, want := SizeString(s), len(AppendString(nil, s)); got != want {
			t.Errorf("SizeString(%q) = %d, encoded %d", s, got, want)
		}
	}
}

func TestBinaryDecodeMalformed(t *testing.T) {
	if _, _, err := DecString([]byte{5, 'a'}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short string: %v", err)
	}
	if _, _, err := DecBytes(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty bytes input: %v", err)
	}
	if _, _, err := DecBool([]byte{2}); !errors.Is(err, ErrMalformed) {
		t.Errorf("non-canonical bool: %v", err)
	}
	if _, _, err := DecTime([]byte{1, 0, 0x80}); !errors.Is(err, ErrMalformed) {
		t.Errorf("dangling time varint: %v", err)
	}
	// Nanoseconds out of range.
	bad := AppendVarint([]byte{1}, 0)
	bad = AppendUvarint(bad, 2e9)
	if _, _, err := DecTime(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized nanoseconds: %v", err)
	}
	// A count claiming more elements than bytes remain.
	if _, _, err := DecCount([]byte{200}, 1); !errors.Is(err, ErrMalformed) {
		t.Errorf("hostile count: %v", err)
	}
}

func TestBinaryTimeRoundTripProperty(t *testing.T) {
	f := func(sec int64, nsec uint32) bool {
		in := time.Unix(sec%1e12, int64(nsec%1e9)).UTC()
		got, rest, err := DecTime(AppendTime(nil, in))
		return err == nil && len(rest) == 0 && got.Equal(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
