// Package wire defines the frame format and codec shared by every
// inter-server protocol in the naplet system: navigation (launch/landing),
// messaging (post office), directory registration, and locator queries.
//
// A Frame is a typed, addressed envelope with a gob-encoded payload. Frames
// are what transports move; their encoded size is what the network
// substrates meter, so all traffic accounting in the experiments reflects
// the real encoded bytes.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Kind identifies the protocol operation a frame carries.
type Kind string

// Frame kinds used by the naplet protocols. Applications may define their
// own kinds; these are the framework's.
const (
	// Navigation protocol (§2.2).
	KindLandingRequest Kind = "navigator.landing-request"
	KindLandingReply   Kind = "navigator.landing-reply"
	KindNapletTransfer Kind = "navigator.naplet-transfer"
	KindTransferAck    Kind = "navigator.transfer-ack"

	// Codebase fetch protocol (§2.1 lazy code loading).
	KindCodeFetch  Kind = "registry.code-fetch"
	KindCodeBundle Kind = "registry.code-bundle"

	// Directory protocol (§4.1).
	KindDirRegister Kind = "directory.register"
	KindDirLookup   Kind = "directory.lookup"
	KindDirReply    Kind = "directory.reply"

	// Post-office messaging protocol (§4.2).
	KindPost        Kind = "messenger.post"
	KindPostConfirm Kind = "messenger.confirm"
	KindPostForward Kind = "messenger.forward"

	// Manager/monitor control (§2.2).
	KindControl       Kind = "manager.control"
	KindControlReply  Kind = "manager.control-reply"
	KindReport        Kind = "manager.report"
	KindHomeEvent     Kind = "manager.home-event"
	KindLocatorQuery  Kind = "locator.query"
	KindLocatorReply  Kind = "locator.reply"
	KindServiceInvoke Kind = "resource.service-invoke"
	KindServiceReply  Kind = "resource.service-reply"
)

// Frame is the unit of inter-server communication.
type Frame struct {
	// Kind names the protocol operation.
	Kind Kind
	// From and To are server names (transport addresses).
	From, To string
	// Seq correlates requests and replies on a connection.
	Seq uint64
	// Payload is the gob-encoded operation body.
	Payload []byte
}

// Errors reported by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrTruncated     = errors.New("wire: truncated frame")
)

// MaxFrameSize bounds a single frame on the wire (16 MiB). Naplet state and
// code bundles fit comfortably; the bound protects servers from hostile
// length prefixes.
const MaxFrameSize = 16 << 20

// Marshal gob-encodes a payload body for embedding in a Frame.
func Marshal(body any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(body); err != nil {
		return nil, fmt.Errorf("wire: marshal %T: %w", body, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a payload produced by Marshal into out, which must be a
// pointer.
func Unmarshal(payload []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("wire: unmarshal into %T: %w", out, err)
	}
	return nil
}

// NewFrame builds a frame with a marshalled body.
func NewFrame(kind Kind, from, to string, body any) (Frame, error) {
	payload, err := Marshal(body)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Kind: kind, From: from, To: to, Payload: payload}, nil
}

// Body decodes the frame payload into out.
func (f *Frame) Body(out any) error { return Unmarshal(f.Payload, out) }

// EncodedSize returns the number of bytes the frame occupies on the wire,
// the quantity metered by the network substrates.
func (f *Frame) EncodedSize() int {
	data, err := Encode(*f)
	if err != nil {
		return 0
	}
	return len(data)
}

// Encode serializes a frame to its wire form: a 4-byte big-endian length
// prefix followed by the gob encoding of the frame.
func Encode(f Frame) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&f); err != nil {
		return nil, fmt.Errorf("wire: encode frame: %w", err)
	}
	if body.Len() > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body.Len())
	}
	out := make([]byte, 4+body.Len())
	binary.BigEndian.PutUint32(out, uint32(body.Len()))
	copy(out[4:], body.Bytes())
	return out, nil
}

// Decode parses a frame from its wire form, returning the frame and the
// number of bytes consumed.
func Decode(data []byte) (Frame, int, error) {
	if len(data) < 4 {
		return Frame{}, 0, ErrTruncated
	}
	n := binary.BigEndian.Uint32(data)
	if n > MaxFrameSize {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if len(data) < int(4+n) {
		return Frame{}, 0, ErrTruncated
	}
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(data[4 : 4+n])).Decode(&f); err != nil {
		return Frame{}, 0, fmt.Errorf("wire: decode frame: %w", err)
	}
	return f, int(4 + n), nil
}

// WriteFrame writes the frame's wire form to w.
func WriteFrame(w io.Writer, f Frame) error {
	data, err := Encode(f)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n > MaxFrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, ErrTruncated
		}
		return Frame{}, err
	}
	var f Frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return Frame{}, fmt.Errorf("wire: decode frame: %w", err)
	}
	return f, nil
}

// Error is a serializable error carried in reply frames so that protocol
// errors cross server boundaries with their messages intact.
type Error struct {
	Code    string
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Code + ": " + e.Message
}

// NewError builds a wire error with the given machine-readable code.
func NewError(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}
