// Package wire defines the frame format and codec shared by every
// inter-server protocol in the naplet system: navigation (launch/landing),
// messaging (post office), directory registration, and locator queries.
//
// A Frame is a typed, addressed envelope. The frame header (Kind, From, To,
// Seq) is encoded with a hand-rolled binary codec — length-prefixed strings
// and varints — while the Payload remains a gob-encoded operation body,
// where type flexibility matters. Frames are what transports move; their
// encoded size is what the network substrates meter, so all traffic
// accounting in the experiments reflects the real encoded bytes.
//
// Wire layout (see DESIGN.md §7 for the full specification):
//
//	[4-byte big-endian body length n]
//	[uvarint len(Kind)] [Kind bytes]
//	[uvarint len(From)] [From bytes]
//	[uvarint len(To)]   [To bytes]
//	[uvarint Seq]
//	[Payload bytes — the remainder of the body]
//
// Because every field's size is known arithmetically, EncodedSize is O(1)
// and allocation-free, and the encode path is a single buffer append with
// no reflection and no per-frame type descriptors.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies the protocol operation a frame carries.
type Kind string

// Frame kinds used by the naplet protocols. Applications may define their
// own kinds; these are the framework's.
const (
	// Navigation protocol (§2.2).
	KindLandingRequest Kind = "navigator.landing-request"
	KindLandingReply   Kind = "navigator.landing-reply"
	KindNapletTransfer Kind = "navigator.naplet-transfer"
	KindTransferAck    Kind = "navigator.transfer-ack"

	// Codebase fetch protocol (§2.1 lazy code loading).
	KindCodeFetch  Kind = "registry.code-fetch"
	KindCodeBundle Kind = "registry.code-bundle"

	// Directory protocol (§4.1).
	KindDirRegister   Kind = "directory.register"
	KindDirLookup     Kind = "directory.lookup"
	KindDirReply      Kind = "directory.reply"
	KindDirDeregister Kind = "directory.deregister"

	// Post-office messaging protocol (§4.2).
	KindPost        Kind = "messenger.post"
	KindPostConfirm Kind = "messenger.confirm"
	KindPostForward Kind = "messenger.forward"

	// Manager/monitor control (§2.2).
	KindControl           Kind = "manager.control"
	KindControlReply      Kind = "manager.control-reply"
	KindReport            Kind = "manager.report"
	KindHomeEvent         Kind = "manager.home-event"
	KindLocatorQuery      Kind = "locator.query"
	KindLocatorReply      Kind = "locator.reply"
	KindLocatorInvalidate Kind = "locator.invalidate"
	KindServiceInvoke     Kind = "resource.service-invoke"
	KindServiceReply      Kind = "resource.service-reply"

	// Fleet control plane (napletd <-> napletmaster, napletctl <-> master).
	KindFleetRegister  Kind = "fleet.register"
	KindFleetHeartbeat Kind = "fleet.heartbeat"
	KindFleetEvents    Kind = "fleet.events"
	KindFleetSubscribe Kind = "fleet.subscribe"
	KindFleetWave      Kind = "fleet.wave"
	KindFleetNodes     Kind = "fleet.nodes"
	KindFleetReply     Kind = "fleet.reply"
)

// Frame is the unit of inter-server communication.
type Frame struct {
	// Kind names the protocol operation.
	Kind Kind
	// From and To are server names (transport addresses).
	From, To string
	// Seq correlates requests and replies on a connection. Its high
	// bits may carry the caller's remaining time budget — see
	// PackBudget; legacy decoders read the packed value as an opaque
	// correlation number, unchanged.
	Seq uint64
	// Payload is the gob-encoded operation body.
	Payload []byte
	// ReceivedAt is stamped by the receiving fabric when the frame
	// comes off the wire; it is not encoded. BudgetContext measures
	// the propagated budget from it, so time spent queued before
	// dispatch counts against the caller's deadline.
	ReceivedAt time.Time
}

// Errors reported by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrMalformed     = errors.New("wire: malformed frame header")
)

// MaxFrameSize bounds a single frame body on the wire (16 MiB). Naplet
// state and code bundles fit comfortably; the bound protects servers from
// hostile length prefixes.
const MaxFrameSize = 16 << 20

// Marshal gob-encodes a payload body for embedding in a Frame.
func Marshal(body any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(body); err != nil {
		return nil, fmt.Errorf("wire: marshal %T: %w", body, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a payload produced by Marshal into out, which must be a
// pointer.
func Unmarshal(payload []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("wire: unmarshal into %T: %w", out, err)
	}
	return nil
}

// NewFrame builds a frame with a marshalled body.
func NewFrame(kind Kind, from, to string, body any) (Frame, error) {
	payload, err := Marshal(body)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Kind: kind, From: from, To: to, Payload: payload}, nil
}

// Body decodes the frame payload into out.
func (f *Frame) Body(out any) error { return Unmarshal(f.Payload, out) }

// uvarintLen returns the number of bytes binary.PutUvarint emits for x.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// headerSize returns the encoded size of the frame header fields (everything
// between the length prefix and the payload).
func (f *Frame) headerSize() int {
	return uvarintLen(uint64(len(f.Kind))) + len(f.Kind) +
		uvarintLen(uint64(len(f.From))) + len(f.From) +
		uvarintLen(uint64(len(f.To))) + len(f.To) +
		uvarintLen(f.Seq)
}

// EncodedSize returns the number of bytes the frame occupies on the wire,
// the quantity metered by the network substrates. It is computed
// arithmetically in O(1) with no allocation and is byte-exact against
// Encode. Frames whose body exceeds MaxFrameSize still report their true
// size here; Encode is where the bound is enforced.
func (f *Frame) EncodedSize() int {
	return 4 + f.headerSize() + len(f.Payload)
}

// appendHeader appends the encoded header fields to dst.
func appendHeader(dst []byte, f *Frame) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(f.Kind)))
	dst = append(dst, f.Kind...)
	dst = binary.AppendUvarint(dst, uint64(len(f.From)))
	dst = append(dst, f.From...)
	dst = binary.AppendUvarint(dst, uint64(len(f.To)))
	dst = append(dst, f.To...)
	dst = binary.AppendUvarint(dst, f.Seq)
	return dst
}

// appendFrame appends the full wire form (length prefix, header, payload)
// to dst, enforcing MaxFrameSize.
func appendFrame(dst []byte, f *Frame) ([]byte, error) {
	body := f.headerSize() + len(f.Payload)
	if body > MaxFrameSize {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(body))
	dst = append(dst, lenbuf[:]...)
	dst = appendHeader(dst, f)
	dst = append(dst, f.Payload...)
	return dst, nil
}

// Encode serializes a frame to its wire form in a single allocation.
func Encode(f Frame) ([]byte, error) {
	out := make([]byte, 0, f.EncodedSize())
	return appendFrame(out, &f)
}

// readString consumes one length-prefixed string from b.
func readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, ErrMalformed
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// decodeBody parses the frame body (header + payload, no length prefix).
// The returned frame's Payload aliases body.
func decodeBody(body []byte) (Frame, error) {
	var f Frame
	kind, rest, err := readString(body)
	if err != nil {
		return Frame{}, err
	}
	f.Kind = Kind(kind)
	if f.From, rest, err = readString(rest); err != nil {
		return Frame{}, err
	}
	if f.To, rest, err = readString(rest); err != nil {
		return Frame{}, err
	}
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return Frame{}, ErrMalformed
	}
	f.Seq = seq
	if rest = rest[n:]; len(rest) > 0 {
		f.Payload = rest
	}
	return f, nil
}

// Decode parses a frame from its wire form, returning the frame and the
// number of bytes consumed. The returned frame's Payload aliases data
// (zero-copy); callers that retain the frame beyond the lifetime of data
// must copy the payload.
func Decode(data []byte) (Frame, int, error) {
	if len(data) < 4 {
		return Frame{}, 0, ErrTruncated
	}
	n := binary.BigEndian.Uint32(data)
	if n > MaxFrameSize {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint64(len(data)-4) < uint64(n) {
		return Frame{}, 0, ErrTruncated
	}
	f, err := decodeBody(data[4 : 4+n])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, int(4 + n), nil
}

// encBufPool recycles encode buffers across WriteFrame calls. Buffers that
// grew past maxPooledBuf are dropped rather than pinned in the pool.
var encBufPool = sync.Pool{
	New: func() any {
		encBufMisses.Add(1)
		b := make([]byte, 0, 4096)
		return &b
	},
}

// Pool accounting: gets counts every WriteFrame buffer acquisition, misses
// counts the ones the pool could not satisfy (fresh allocations). The
// telemetry layer samples these at scrape time via PoolCounters, keeping
// this package dependency-free.
var encBufGets, encBufMisses atomic.Int64

// PoolCounters reports the encode-buffer pool activity since process
// start: total gets and misses (hits = gets - misses).
func PoolCounters() (gets, misses int64) {
	return encBufGets.Load(), encBufMisses.Load()
}

const maxPooledBuf = 64 << 10

// WriteFrame writes the frame's wire form to w using a pooled buffer, so
// steady-state writes do not allocate.
func WriteFrame(w io.Writer, f Frame) error {
	encBufGets.Add(1)
	bp := encBufPool.Get().(*[]byte)
	buf, err := appendFrame((*bp)[:0], &f)
	if err != nil {
		encBufPool.Put(bp)
		return err
	}
	_, werr := w.Write(buf)
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
		encBufPool.Put(bp)
	}
	return werr
}

// ReadFrame reads one frame from r. The frame's payload is freshly
// allocated and owned by the caller.
func ReadFrame(r io.Reader) (Frame, error) {
	f, _, err := readFrame(r, nil)
	return f, err
}

// ReadFrameReuse reads one frame from r into scratch, growing it as needed,
// and returns the (possibly reallocated) scratch for the next call. The
// returned frame's Payload aliases scratch, so the frame is only valid
// until the next ReadFrameReuse with the same buffer — the pattern used by
// transport loops that fully consume each frame before reading the next.
func ReadFrameReuse(r io.Reader, scratch []byte) (Frame, []byte, error) {
	return readFrame(r, scratch)
}

// readFrame reads the length prefix and body from r. With a nil scratch a
// fresh body buffer is allocated per call; otherwise scratch is reused and
// grown geometrically.
func readFrame(r io.Reader, scratch []byte) (Frame, []byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return Frame{}, scratch, err
	}
	n := int(binary.BigEndian.Uint32(lenbuf[:]))
	if n > MaxFrameSize {
		return Frame{}, scratch, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	body := scratch[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, scratch, ErrTruncated
		}
		return Frame{}, scratch, err
	}
	f, err := decodeBody(body)
	if err != nil {
		return Frame{}, scratch, err
	}
	return f, scratch, nil
}

// Error is a serializable error carried in reply frames so that protocol
// errors cross server boundaries with their messages intact.
type Error struct {
	Code    string
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Code + ": " + e.Message
}

// NewError builds a wire error with the given machine-readable code.
func NewError(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}
