package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

type testBody struct {
	Name  string
	Count int
	Data  []byte
}

func TestMarshalUnmarshal(t *testing.T) {
	in := testBody{Name: "x", Count: 3, Data: []byte{1, 2}}
	payload, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out testBody
	if err := Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Count != in.Count || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestNewFrameAndBody(t *testing.T) {
	f, err := NewFrame(KindPost, "a", "b", &testBody{Name: "msg"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindPost || f.From != "a" || f.To != "b" {
		t.Fatalf("frame header: %+v", f)
	}
	var body testBody
	if err := f.Body(&body); err != nil {
		t.Fatal(err)
	}
	if body.Name != "msg" {
		t.Fatalf("body = %+v", body)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f, _ := NewFrame(KindDirLookup, "s1", "s2", &testBody{Name: "q", Count: 7})
	f.Seq = 42
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Fatalf("consumed %d of %d", n, len(data))
	}
	if got.Kind != f.Kind || got.From != f.From || got.To != f.To || got.Seq != 42 {
		t.Fatalf("decoded header: %+v", got)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestDecodeTruncated(t *testing.T) {
	f, _ := NewFrame(KindPost, "a", "b", &testBody{})
	data, _ := Encode(f)
	for _, cut := range []int{0, 1, 3, len(data) - 1} {
		if _, _, err := Decode(data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Decode(%d bytes): %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeOversizedPrefix(t *testing.T) {
	var data [8]byte
	binary.BigEndian.PutUint32(data[:], MaxFrameSize+1)
	if _, _, err := Decode(data[:]); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestReadWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	a, _ := NewFrame(KindPost, "x", "y", &testBody{Name: "1"})
	b, _ := NewFrame(KindPostConfirm, "y", "x", &testBody{Name: "2"})
	if err := WriteFrame(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, b); err != nil {
		t.Fatal(err)
	}
	ra, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Kind != KindPost || rb.Kind != KindPostConfirm {
		t.Fatalf("stream order broken: %v %v", ra.Kind, rb.Kind)
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF at end of stream, got %v", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	f, _ := NewFrame(KindPost, "a", "b", &testBody{Data: make([]byte, 100)})
	data, _ := Encode(f)
	r := bytes.NewReader(data[:len(data)-10])
	if _, err := ReadFrame(r); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestReadFrameRejectsHostileLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestEncodedSizeGrowsWithPayload(t *testing.T) {
	small, _ := NewFrame(KindPost, "a", "b", &testBody{})
	big, _ := NewFrame(KindPost, "a", "b", &testBody{Data: make([]byte, 4096)})
	if small.EncodedSize() <= 0 {
		t.Fatal("size must be positive")
	}
	if big.EncodedSize() <= small.EncodedSize()+4000 {
		t.Fatalf("size must reflect payload: small=%d big=%d", small.EncodedSize(), big.EncodedSize())
	}
}

func TestWireError(t *testing.T) {
	e := NewError("denied", "no LANDING permission for %s", "naplet-1")
	if e.Error() != "denied: no LANDING permission for naplet-1" {
		t.Fatalf("Error() = %q", e.Error())
	}
	bare := &Error{Message: "just text"}
	if bare.Error() != "just text" {
		t.Fatalf("Error() = %q", bare.Error())
	}
}

func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	f := func(kind string, from, to string, seq uint64, payload []byte) bool {
		in := Frame{Kind: Kind(kind), From: from, To: to, Seq: seq, Payload: payload}
		data, err := Encode(in)
		if err != nil {
			return false
		}
		out, n, err := Decode(data)
		if err != nil || n != len(data) {
			return false
		}
		return out.Kind == in.Kind && out.From == in.From && out.To == in.To &&
			out.Seq == in.Seq && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		Decode(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
