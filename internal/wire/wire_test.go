package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

type testBody struct {
	Name  string
	Count int
	Data  []byte
}

func TestMarshalUnmarshal(t *testing.T) {
	in := testBody{Name: "x", Count: 3, Data: []byte{1, 2}}
	payload, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out testBody
	if err := Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Count != in.Count || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestNewFrameAndBody(t *testing.T) {
	f, err := NewFrame(KindPost, "a", "b", &testBody{Name: "msg"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindPost || f.From != "a" || f.To != "b" {
		t.Fatalf("frame header: %+v", f)
	}
	var body testBody
	if err := f.Body(&body); err != nil {
		t.Fatal(err)
	}
	if body.Name != "msg" {
		t.Fatalf("body = %+v", body)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f, _ := NewFrame(KindDirLookup, "s1", "s2", &testBody{Name: "q", Count: 7})
	f.Seq = 42
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Fatalf("consumed %d of %d", n, len(data))
	}
	if got.Kind != f.Kind || got.From != f.From || got.To != f.To || got.Seq != 42 {
		t.Fatalf("decoded header: %+v", got)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestDecodeTruncated(t *testing.T) {
	f, _ := NewFrame(KindPost, "a", "b", &testBody{})
	data, _ := Encode(f)
	for _, cut := range []int{0, 1, 3, len(data) - 1} {
		if _, _, err := Decode(data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("Decode(%d bytes): %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeOversizedPrefix(t *testing.T) {
	var data [8]byte
	binary.BigEndian.PutUint32(data[:], MaxFrameSize+1)
	if _, _, err := Decode(data[:]); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestReadWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	a, _ := NewFrame(KindPost, "x", "y", &testBody{Name: "1"})
	b, _ := NewFrame(KindPostConfirm, "y", "x", &testBody{Name: "2"})
	if err := WriteFrame(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, b); err != nil {
		t.Fatal(err)
	}
	ra, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Kind != KindPost || rb.Kind != KindPostConfirm {
		t.Fatalf("stream order broken: %v %v", ra.Kind, rb.Kind)
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF at end of stream, got %v", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	f, _ := NewFrame(KindPost, "a", "b", &testBody{Data: make([]byte, 100)})
	data, _ := Encode(f)
	r := bytes.NewReader(data[:len(data)-10])
	if _, err := ReadFrame(r); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestReadFrameRejectsHostileLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// allKinds enumerates every protocol kind the framework defines, for
// round-trip coverage.
var allKinds = []Kind{
	KindLandingRequest, KindLandingReply, KindNapletTransfer, KindTransferAck,
	KindCodeFetch, KindCodeBundle,
	KindDirRegister, KindDirLookup, KindDirReply,
	KindPost, KindPostConfirm, KindPostForward,
	KindControl, KindControlReply, KindReport, KindHomeEvent,
	KindLocatorQuery, KindLocatorReply, KindServiceInvoke, KindServiceReply,
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, k := range allKinds {
		in := Frame{Kind: k, From: "src", To: "dst", Seq: 9, Payload: []byte{0xff, 0, 1}}
		data, err := Encode(in)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		out, n, err := Decode(data)
		if err != nil || n != len(data) {
			t.Fatalf("%s: decode n=%d err=%v", k, n, err)
		}
		if out.Kind != in.Kind || out.From != in.From || out.To != in.To ||
			out.Seq != in.Seq || !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("%s: round trip mismatch: %+v", k, out)
		}
	}
}

// TestEncodedSizeMatchesEncode pins the regression the old gob codec had:
// EncodedSize must be byte-exact against Encode for every frame shape,
// including the empty payload, a body of exactly MaxFrameSize, and
// multi-byte UTF-8 addresses.
func TestEncodedSizeMatchesEncode(t *testing.T) {
	maxFrame := Frame{Kind: KindNapletTransfer, From: "origin", To: "dest"}
	maxFrame.Payload = make([]byte, MaxFrameSize-maxFrame.headerSize())
	frames := []Frame{
		{},
		{Kind: KindPost, From: "a", To: "b"},
		{Kind: KindPost, From: "a", To: "b", Seq: 1 << 63, Payload: []byte("x")},
		{Kind: "приложение.зонд", From: "сервер-α", To: "数据中心", Seq: 300, Payload: []byte("πληρωμή")},
		{Kind: KindDirLookup, From: "s1", To: "s2", Seq: 127, Payload: make([]byte, 4096)},
		maxFrame,
	}
	for i, f := range frames {
		data, err := Encode(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got, want := f.EncodedSize(), len(data); got != want {
			t.Errorf("frame %d: EncodedSize=%d, len(Encode)=%d", i, got, want)
		}
	}
}

func TestEncodeRejectsOversizedBody(t *testing.T) {
	f := Frame{Kind: KindPost, Payload: make([]byte, MaxFrameSize+1)}
	if _, err := Encode(f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if err := WriteFrame(io.Discard, f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteFrame: want ErrFrameTooLarge, got %v", err)
	}
}

func TestDecodeMalformedHeader(t *testing.T) {
	cases := map[string][]byte{
		// Body length says 3 but the kind length prefix claims 200 bytes.
		"length overrun": {0, 0, 0, 3, 200, 'a', 'b'},
		// Body present but empty: no header fields at all.
		"empty body": {0, 0, 0, 0},
		// Unterminated uvarint for Seq (continuation bit set at end).
		"dangling varint": {0, 0, 0, 4, 0, 0, 0, 0x80},
	}
	for name, data := range cases {
		if _, _, err := Decode(data); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: want ErrMalformed, got %v", name, err)
		}
	}
}

func TestReadFrameReuse(t *testing.T) {
	var buf bytes.Buffer
	want := []Frame{
		{Kind: KindPost, From: "x", To: "y", Seq: 1, Payload: []byte("first")},
		{Kind: KindPostConfirm, From: "y", To: "x", Seq: 2, Payload: bytes.Repeat([]byte("grow"), 512)},
		{Kind: KindReport, From: "x", To: "z", Seq: 3},
	}
	for _, f := range want {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, w := range want {
		got, grown, err := ReadFrameReuse(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		scratch = grown
		if got.Kind != w.Kind || got.Seq != w.Seq || !bytes.Equal(got.Payload, w.Payload) {
			t.Fatalf("frame %d mismatch: %+v", i, got)
		}
	}
	if _, _, err := ReadFrameReuse(&buf, scratch); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestWriteFrameConcurrent exercises the encode buffer pool from many
// goroutines; run under -race it guards the sync.Pool sharing.
func TestWriteFrameConcurrent(t *testing.T) {
	f, _ := NewFrame(KindPost, "a", "b", &testBody{Data: make([]byte, 512)})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				if err := WriteFrame(io.Discard, f); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestEncodedSizeGrowsWithPayload(t *testing.T) {
	small, _ := NewFrame(KindPost, "a", "b", &testBody{})
	big, _ := NewFrame(KindPost, "a", "b", &testBody{Data: make([]byte, 4096)})
	if small.EncodedSize() <= 0 {
		t.Fatal("size must be positive")
	}
	if big.EncodedSize() <= small.EncodedSize()+4000 {
		t.Fatalf("size must reflect payload: small=%d big=%d", small.EncodedSize(), big.EncodedSize())
	}
}

func TestWireError(t *testing.T) {
	e := NewError("denied", "no LANDING permission for %s", "naplet-1")
	if e.Error() != "denied: no LANDING permission for naplet-1" {
		t.Fatalf("Error() = %q", e.Error())
	}
	bare := &Error{Message: "just text"}
	if bare.Error() != "just text" {
		t.Fatalf("Error() = %q", bare.Error())
	}
}

func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	f := func(kind string, from, to string, seq uint64, payload []byte) bool {
		in := Frame{Kind: Kind(kind), From: from, To: to, Seq: seq, Payload: payload}
		data, err := Encode(in)
		if err != nil {
			return false
		}
		if in.EncodedSize() != len(data) {
			return false
		}
		out, n, err := Decode(data)
		if err != nil || n != len(data) {
			return false
		}
		return out.Kind == in.Kind && out.From == in.From && out.To == in.To &&
			out.Seq == in.Seq && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		Decode(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
