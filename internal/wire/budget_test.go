package wire

import (
	"bytes"
	"context"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden fixtures in testdata/")

// checkGolden compares got against the hex fixture, rewriting it under
// -update. Fixtures pin the wire layout: a mismatch means the codec
// layout drifted and needs a version bump plus regenerated fixtures, not
// a silent fixture refresh.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(got)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run go test -update): %v", err)
	}
	want, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
	if err != nil {
		t.Fatalf("corrupt fixture %s: %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoding drifted from the pinned layout.\n got %s\nwant %s\n"+
			"If the change is intentional, bump the codec version and regenerate with -update.",
			name, hex.EncodeToString(got), hex.EncodeToString(want))
	}
}

// goldenFrame is the fixture frame; only Seq differs between the two
// golden encodings.
func goldenFrame(seq uint64) Frame {
	return Frame{
		Kind:    KindPost,
		From:    "dock-a:1",
		To:      "dock-b:2",
		Seq:     seq,
		Payload: []byte("golden payload"),
	}
}

// TestFrameGoldenBytes pins the budget-less encoding: a frame that
// carries no budget must stay bit-for-bit identical to the previous
// frame version, so decoders that predate budget packing read it
// unchanged.
func TestFrameGoldenBytes(t *testing.T) {
	got, err := Encode(goldenFrame(42))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "frame_v1.hex", got)
}

// TestFrameBudgetGoldenBytes pins the budget-bearing encoding: the
// packed Seq is still an ordinary uvarint (it merely grows to the full
// 10-byte form), so a legacy decoder parses the frame successfully and
// sees only an opaque sequence number.
func TestFrameBudgetGoldenBytes(t *testing.T) {
	f := goldenFrame(PackBudget(42, 1500*time.Millisecond))
	got, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "frame_v1_budget.hex", got)

	// The legacy-compat proof: both fixtures decode with the same
	// (unchanged) Decode, and differ only in the Seq value.
	dec, _, err := Decode(got)
	if err != nil {
		t.Fatalf("budget frame must decode with the unversioned codec: %v", err)
	}
	if dec.BareSeq() != 42 {
		t.Fatalf("BareSeq = %d, want 42", dec.BareSeq())
	}
	if d, ok := dec.Budget(); !ok || d != 1500*time.Millisecond {
		t.Fatalf("Budget = (%v, %v), want (1.5s, true)", d, ok)
	}

	plain, err := Encode(goldenFrame(42))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, plain) {
		t.Fatal("budget frame should differ from plain frame in Seq bytes")
	}
	// Beyond the body-length prefix and Seq, the layouts are identical:
	// decode both and compare every field but Seq.
	pdec, _, err := Decode(plain)
	if err != nil {
		t.Fatal(err)
	}
	if pdec.Kind != dec.Kind || pdec.From != dec.From || pdec.To != dec.To || !bytes.Equal(pdec.Payload, dec.Payload) {
		t.Fatalf("non-Seq fields drifted: plain %+v budget %+v", pdec, dec)
	}
}

func TestPackBudget(t *testing.T) {
	cases := []struct {
		name      string
		seq       uint64
		remaining time.Duration
		want      time.Duration
		wantOK    bool
	}{
		{"zero remaining", 7, 0, 0, false},
		{"negative remaining", 7, -time.Second, 0, false},
		{"exact ms", 7, 250 * time.Millisecond, 250 * time.Millisecond, true},
		{"rounds up", 7, 100 * time.Microsecond, time.Millisecond, true},
		{"saturates", 7, 48 * time.Hour, MaxBudget, true},
		{"max budget exact", 7, MaxBudget, MaxBudget, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := Frame{Seq: PackBudget(tc.seq, tc.remaining)}
			got, ok := f.Budget()
			if ok != tc.wantOK || got != tc.want {
				t.Fatalf("Budget = (%v, %v), want (%v, %v)", got, ok, tc.want, tc.wantOK)
			}
			if f.BareSeq() != tc.seq {
				t.Fatalf("BareSeq = %d, want %d", f.BareSeq(), tc.seq)
			}
			if !tc.wantOK && f.Seq != tc.seq {
				t.Fatalf("no-budget pack must leave seq untouched: %d", f.Seq)
			}
		})
	}
}

func TestPackBudgetPreservesLowSeqBits(t *testing.T) {
	// A sequence number overflowing the 41-bit field keeps its low bits;
	// correlation still works because the reply echoes the packed value.
	seq := uint64(1)<<seqBits + 99
	f := Frame{Seq: PackBudget(seq, time.Second)}
	if f.BareSeq() != 99 {
		t.Fatalf("BareSeq = %d, want 99", f.BareSeq())
	}
}

func TestBudgetExpired(t *testing.T) {
	now := time.Now()
	f := Frame{Seq: PackBudget(1, 100*time.Millisecond)}
	if f.BudgetExpired(now) {
		t.Fatal("no ReceivedAt stamp: must never report expired")
	}
	f.ReceivedAt = now
	if f.BudgetExpired(now.Add(50 * time.Millisecond)) {
		t.Fatal("half the budget left: not expired")
	}
	if !f.BudgetExpired(now.Add(100 * time.Millisecond)) {
		t.Fatal("budget fully elapsed: expired")
	}
	plain := Frame{Seq: 1, ReceivedAt: now}
	if plain.BudgetExpired(now.Add(time.Hour)) {
		t.Fatal("frame without budget never expires")
	}
}

func TestBudgetContext(t *testing.T) {
	now := time.Now()
	f := Frame{Seq: PackBudget(1, 5*time.Second), ReceivedAt: now}
	ctx, cancel := f.BudgetContext(context.Background())
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("budget frame must yield a deadline context")
	}
	if want := now.Add(5 * time.Second); !dl.Equal(want) {
		t.Fatalf("deadline = %v, want %v", dl, want)
	}

	plain := Frame{Seq: 1}
	pctx, pcancel := plain.BudgetContext(context.Background())
	if _, ok := pctx.Deadline(); ok {
		t.Fatal("budget-less frame must not invent a deadline")
	}
	pcancel()
	if pctx.Err() == nil {
		t.Fatal("cancel must cancel the derived context")
	}
}
