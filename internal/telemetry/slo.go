package telemetry

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// SLO is a service-level objective over one latency histogram: a bound on
// a quantile of the recent observation window (Histogram.Summary). The
// loadgen harness evaluates these after every run and fails CI on a
// violation, turning perf drift into a named, attributable failure.
type SLO struct {
	// Name labels the objective in tables and failure messages, e.g.
	// "hop-latency-p99".
	Name string
	// Series is the histogram family the objective reads, e.g.
	// "naplet_navigator_hop_latency_seconds".
	Series string
	// Quantile selects the order statistic: 0.5, 0.95, 0.99 or 1 (max).
	// The summary window retains exactly these; other values snap to the
	// nearest retained quantile.
	Quantile float64
	// Max is the bound in the histogram's base unit (seconds for every
	// latency series).
	Max float64
	// MinSamples gates evaluation: with fewer observations than this in
	// the whole histogram the objective is reported as SKIPPED rather
	// than silently passing on an empty window (default 1).
	MinSamples uint64
}

// SLOResult is one evaluated objective.
type SLOResult struct {
	SLO
	// Observed is the measured quantile value.
	Observed float64
	// Count is the histogram's total observation count (the summary
	// window is the most recent min(count, 256) of these).
	Count uint64
	// Skipped is set when Count < MinSamples; Violated is then false.
	Skipped bool
	// Violated is set when Observed exceeds Max.
	Violated bool
}

// String renders the result as one line for logs and error lists.
func (r SLOResult) String() string {
	status := "ok"
	switch {
	case r.Skipped:
		status = "SKIPPED (no samples)"
	case r.Violated:
		status = "VIOLATED"
	}
	return fmt.Sprintf("%s: p%g %s over %d obs, max %s — %s",
		r.Name, r.Quantile*100, secondsString(r.Observed), r.Count,
		secondsString(r.Max), status)
}

// secondsString renders a base-unit seconds value as a duration.
func secondsString(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// CheckSLO evaluates one objective against a histogram's recent window.
func CheckSLO(h *Histogram, slo SLO) SLOResult {
	if slo.MinSamples == 0 {
		slo.MinSamples = 1
	}
	res := SLOResult{SLO: slo}
	if h == nil {
		res.Skipped = true
		return res
	}
	res.Count = h.Count()
	if res.Count < slo.MinSamples {
		res.Skipped = true
		return res
	}
	res.Observed = h.Summary().QuantileOf(slo.Quantile)
	res.Violated = res.Observed > slo.Max
	return res
}

// CheckSLOs evaluates every objective against the registry, resolving each
// SLO's Series to the registered histogram (nil when the series was never
// registered, which reports as SKIPPED). It returns all results plus the
// violated subset for error reporting.
func (r *Registry) CheckSLOs(slos []SLO) (all, violated []SLOResult) {
	for _, slo := range slos {
		res := CheckSLO(r.findHistogram(slo.Series), slo)
		all = append(all, res)
		if res.Violated {
			violated = append(violated, res)
		}
	}
	return all, violated
}

// findHistogram returns the first registered histogram of the family, or
// nil. Label sets are ignored: SLO series are registered label-free.
func (r *Registry) findHistogram(family string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[family]; ok && s.kind == kindHistogram {
		return s.hist
	}
	for _, s := range r.series {
		if s.name == family && s.kind == kindHistogram {
			return s.hist
		}
	}
	return nil
}

// SummaryOf exposes a registered histogram's recent-window summary by
// family name; ok is false when the family is unknown. Experiment tables
// use it to print the same numbers the SLO gate judged.
func (r *Registry) SummaryOf(family string) (stats.Summary, bool) {
	h := r.findHistogram(family)
	if h == nil {
		return stats.Summary{}, false
	}
	return h.Summary(), true
}
