package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func span(naplet string, hop int) HopSpan {
	return HopSpan{Naplet: naplet, Hop: hop, From: "a", To: "b", Outcome: OutcomeOK}
}

func TestHopTracerPerNaplet(t *testing.T) {
	tr := NewHopTracer(16)
	tr.Record(span("n1", 1))
	tr.Record(span("n2", 1))
	tr.Record(span("n1", 2))
	tr.Record(span("n1", 3))

	got := tr.Spans("n1")
	if len(got) != 3 {
		t.Fatalf("spans = %d, want 3", len(got))
	}
	for i, s := range got {
		if s.Hop != i+1 {
			t.Fatalf("span %d has hop %d, want oldest-first order", i, s.Hop)
		}
	}
	if len(tr.Spans("nx")) != 0 {
		t.Fatal("unknown naplet must yield no spans")
	}
}

func TestHopTracerRingBound(t *testing.T) {
	tr := NewHopTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Record(span("n", i))
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	all := tr.All()
	if all[0].Hop != 7 || all[3].Hop != 10 {
		t.Fatalf("ring must keep the newest spans oldest-first: %+v", all)
	}
}

func TestHandlerSurfaces(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("naplet_test_total", "t").Add(3)
	tr := NewHopTracer(8)
	tr.Record(span("n1", 1))
	tr.Record(span("n2", 1))

	healthy := true
	h := Handler(reg, tr, func() error {
		if healthy {
			return nil
		}
		return errTest
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "naplet_test_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while unready = %d, want 503", code)
	}

	code, body := get("/spans?naplet=n1")
	if code != 200 {
		t.Fatalf("/spans = %d", code)
	}
	var spans []HopSpan
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("spans json: %v (%q)", err, body)
	}
	if len(spans) != 1 || spans[0].Naplet != "n1" {
		t.Fatalf("spans = %+v, want one n1 span", spans)
	}
}

var errTest = errorString("not ready")

type errorString string

func (e errorString) Error() string { return string(e) }
