package telemetry

import (
	"math"
	"sync"
	"testing"

	"repro/internal/stats"
)

// TestHistogramSummaryConcurrent hammers one histogram from many
// goroutines while Summary runs concurrently, then checks the settled
// window for bias: every retained sample must be a value some goroutine
// actually observed (the ring is atomic — no torn floats, no zeros from
// unwritten slots once the window is full), and the window size must be
// exactly min(count, 256). Run under -race this also proves the
// observe/summarize paths are data-race free.
func TestHistogramSummaryConcurrent(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	const (
		goroutines = 8
		perG       = 4096
	)
	valid := map[float64]bool{}
	for g := 0; g < goroutines; g++ {
		valid[float64(g+1)] = true
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: results are unchecked (a mid-flight window may
	// contain unwritten slots) but must not race or panic.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.Summary()
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(v float64) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(v)
			}
		}(float64(g + 1))
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	sum := h.Summary()
	if sum.N != summaryWindow {
		t.Fatalf("summary window N = %d, want %d", sum.N, summaryWindow)
	}
	if !valid[sum.Min] || !valid[sum.Max] || !valid[sum.P50] {
		t.Fatalf("summary contains values never observed: min=%v p50=%v max=%v",
			sum.Min, sum.P50, sum.Max)
	}
	// The cumulative bucket counts must account for every observation.
	snap := h.Snapshot()
	if snap.Cumulative[len(snap.Cumulative)-1] != uint64(goroutines*perG) {
		t.Fatalf("cumulative total = %d, want %d",
			snap.Cumulative[len(snap.Cumulative)-1], goroutines*perG)
	}
}

// TestHistogramSummaryWindowExact fills the ring with a known distribution
// and checks the order statistics against exact values: the SLO gate's
// numbers have to be trustworthy, not merely plausible.
func TestHistogramSummaryWindowExact(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	// Observe 1..256 in order; the window holds exactly these.
	for i := 1; i <= summaryWindow; i++ {
		h.Observe(float64(i))
	}
	sum := h.Summary()
	if sum.N != summaryWindow {
		t.Fatalf("N = %d, want %d", sum.N, summaryWindow)
	}
	if sum.Min != 1 || sum.Max != 256 {
		t.Fatalf("min/max = %v/%v, want 1/256", sum.Min, sum.Max)
	}
	wantP50 := stats.Quantile(seq(1, 256), 0.50)
	if math.Abs(sum.P50-wantP50) > 1e-9 {
		t.Fatalf("P50 = %v, want %v", sum.P50, wantP50)
	}
	wantP99 := stats.Quantile(seq(1, 256), 0.99)
	if math.Abs(sum.P99-wantP99) > 1e-9 {
		t.Fatalf("P99 = %v, want %v", sum.P99, wantP99)
	}

	// Overflow the ring: the window must slide to the most recent 256
	// observations, not stay biased toward the first ones.
	for i := 1000; i < 1000+summaryWindow; i++ {
		h.Observe(float64(i))
	}
	sum = h.Summary()
	if sum.Min < 1000 {
		t.Fatalf("window kept stale sample: min = %v", sum.Min)
	}
}

// TestSummaryQuantileAccuracy checks Summarize's quantiles against a known
// uniform distribution at a size larger than the ring, pinning the
// interpolation semantics the SLO table reports.
func TestSummaryQuantileAccuracy(t *testing.T) {
	n := 1000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = float64(i) // uniform 0..999
	}
	sum := stats.Summarize(samples)
	for _, tc := range []struct {
		name      string
		got, want float64
	}{
		{"p50", sum.P50, 499.5},
		{"p95", sum.P95, 949.05},
		{"p99", sum.P99, 989.01},
		{"max", sum.Max, 999},
	} {
		if math.Abs(tc.got-tc.want) > 1e-6 {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, float64(i))
	}
	return out
}

func TestCheckSLO(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("naplet_test_latency_seconds", "", LatencyBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(0.010) // 10ms flat
	}
	for i := 0; i < 5; i++ {
		h.Observe(0.500) // outlier tail: past the p99 of a 105-sample window
	}

	all, violated := reg.CheckSLOs([]SLO{
		{Name: "p50-ok", Series: "naplet_test_latency_seconds", Quantile: 0.50, Max: 0.020},
		{Name: "p99-violated", Series: "naplet_test_latency_seconds", Quantile: 0.99, Max: 0.020},
		{Name: "missing-series", Series: "naplet_test_nosuch_seconds", Quantile: 0.99, Max: 1},
	})
	if len(all) != 3 {
		t.Fatalf("got %d results", len(all))
	}
	if all[0].Violated || all[0].Skipped {
		t.Fatalf("p50 objective should pass: %+v", all[0])
	}
	if !all[1].Violated {
		t.Fatalf("p99 objective should be violated: %+v", all[1])
	}
	if !all[2].Skipped {
		t.Fatalf("missing series should be skipped, not judged: %+v", all[2])
	}
	if len(violated) != 1 || violated[0].Name != "p99-violated" {
		t.Fatalf("violated = %+v", violated)
	}
}
