// Migration hop tracing: one span per naplet migration, recorded by the
// origin navigator, kept in a bounded ring. Spans extend the paper's
// NavigationLog (§2.1) — where the log records arrival/departure times the
// naplet itself observed, spans record what the *platform* spent moving
// it: serialization, landing negotiation, transfer, bytes, and outcome.
package telemetry

import (
	"sync"
	"time"
)

// Span outcomes.
const (
	// OutcomeOK marks a completed migration.
	OutcomeOK = "ok"
	// OutcomeRefused marks a landing denied by the destination (policy or
	// admission); refusals are authoritative and not retried.
	OutcomeRefused = "refused"
	// OutcomeFailed marks a transport or protocol failure.
	OutcomeFailed = "failed"
)

// HopSpan records one migration attempt of one naplet: the dispatch at the
// origin through the destination's landing acknowledgement.
type HopSpan struct {
	// Naplet is the migrating naplet's identifier (id.NapletID.String()).
	Naplet string `json:"naplet"`
	// Hop is the hop index in the naplet's journey: the number of
	// NavigationLog entries at dispatch time (1 for the first migration
	// away from home).
	Hop int `json:"hop"`
	// From and To are the origin and destination servers.
	From string `json:"from"`
	To   string `json:"to"`
	// Start is the dispatch time at the origin.
	Start time.Time `json:"start"`
	// Serialize, Negotiation, and Transfer are the migration cost
	// components (the navigator's Breakdown); Total spans dispatch to
	// landing acknowledgement.
	Serialize   time.Duration `json:"serialize_ns"`
	Negotiation time.Duration `json:"negotiation_ns"`
	Transfer    time.Duration `json:"transfer_ns"`
	Total       time.Duration `json:"total_ns"`
	// RecordBytes and CodeBytes are the moved sizes.
	RecordBytes int `json:"record_bytes"`
	CodeBytes   int `json:"code_bytes"`
	// Outcome is OutcomeOK, OutcomeRefused, or OutcomeFailed; Err carries
	// the failure detail.
	Outcome string `json:"outcome"`
	Err     string `json:"err,omitempty"`
}

// defaultTracerCapacity bounds the ring when the caller passes ≤ 0.
const defaultTracerCapacity = 1024

// HopTracer keeps the most recent migration spans in a fixed ring. It is
// safe for concurrent use; recording is a short critical section (hop
// tracing sits on the migration path, which is milliseconds, not the
// nanosecond frame path).
type HopTracer struct {
	mu   sync.Mutex
	ring []HopSpan
	next int
	full bool
	sink func(HopSpan)
}

// NewHopTracer builds a tracer retaining up to capacity spans (≤ 0 means
// the default of 1024).
func NewHopTracer(capacity int) *HopTracer {
	if capacity <= 0 {
		capacity = defaultTracerCapacity
	}
	return &HopTracer{ring: make([]HopSpan, capacity)}
}

// Record appends a span, evicting the oldest when the ring is full, and
// hands a copy to the registered sink, if any.
func (t *HopTracer) Record(s HopSpan) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(s)
	}
}

// SetSink registers a callback invoked with every span Record retains —
// the live export feed the fleet agent streams to the master. The sink is
// called outside the tracer lock but on the migration path, so it must
// not block; pass nil to detach.
func (t *HopTracer) SetSink(fn func(HopSpan)) {
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// all returns the retained spans oldest-first. Callers hold t.mu.
func (t *HopTracer) all() []HopSpan {
	if !t.full {
		return t.ring[:t.next]
	}
	out := make([]HopSpan, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Spans returns the retained spans of one naplet, oldest-first: the
// platform-side dump that extends the naplet's own NavigationLog.
func (t *HopTracer) Spans(naplet string) []HopSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []HopSpan
	for _, s := range t.all() {
		if s.Naplet == naplet {
			out = append(out, s)
		}
	}
	return out
}

// All returns every retained span, oldest-first.
func (t *HopTracer) All() []HopSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]HopSpan(nil), t.all()...)
}

// Len reports the number of retained spans.
func (t *HopTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}
