// Package telemetry is the dependency-free metrics substrate of the naplet
// runtime: a registry of named counters, gauges, and fixed-bucket
// histograms with lock-free hot paths, plus the migration hop tracer
// (hoptrace.go) and the HTTP exposition surface (http.go) that cmd/napletd
// mounts behind --metrics-addr.
//
// The paper positions naplet servers for network management applications
// (§6); a management platform must first be able to monitor itself. Every
// runtime component (transport, locator, navigator, messenger, monitor)
// registers its activity counters here, and the legacy per-component Stats
// structs are thin snapshot views over this registry, so there is exactly
// one source of truth for "where time and traffic go".
//
// Naming convention (see DESIGN.md §8): every series is
//
//	naplet_<component>_<quantity>_<unit>
//
// with Prometheus conventions for suffixes: monotonically increasing
// counters end in _total, histograms carry base units in the name
// (_seconds, _bytes). Series may carry a fixed label set, bound at
// registration time; the hot-path Inc/Add/Observe operations never format
// labels.
//
// Hot-path costs: Counter.Inc and Gauge.Add are one uncontended atomic
// add (single-digit nanoseconds, zero allocations); Histogram.Observe is a
// linear bucket scan over a small fixed bound slice plus three atomic
// operations, also allocation-free. cmd/telemetrybench records both in
// BENCH_telemetry.json and asserts the counter path stays ≤ 25 ns/op.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Counter is a monotonically increasing value. The zero value is unusable;
// obtain counters from a Registry so they appear in the exposition.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n. Counters only go up; negative deltas are
// a programming error and are ignored.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// summaryWindow is the number of recent raw observations a histogram
// retains for order-statistics snapshots (Histogram.Summary).
const summaryWindow = 256

// Histogram accumulates observations into fixed cumulative buckets. All
// operations on the observe path are atomic; there is no lock to contend
// on. Alongside the buckets it keeps a bounded ring of recent raw samples
// so callers can compute exact order statistics (stats.Summary) over the
// recent window — the registry's bridge to the experiment harness.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64   // total observations; also the ring write cursor
	ring   []atomic.Uint64 // float64 bits of the most recent observations
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
		ring:   make([]atomic.Uint64, summaryWindow),
	}
}

// Observe records one sample. It is lock-free and allocation-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	n := h.count.Add(1)
	h.ring[(n-1)%summaryWindow].Store(math.Float64bits(v))
}

// ObserveDuration records a duration in seconds, the base unit every
// latency histogram in the system uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state, with
// cumulative bucket counts in Prometheus style.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Cumulative[i] counts observations
	// ≤ Bounds[i]. The final entry of Cumulative (len(Bounds)) is the total
	// count (the +Inf bucket).
	Bounds     []float64
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// Snapshot copies the histogram state. Bucket counts are loaded
// individually, so a snapshot taken under concurrent observation may be
// off by in-flight samples; it is monitoring data, not an invariant.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		snap.Cumulative[i] = cum
	}
	snap.Sum = h.Sum()
	snap.Count = h.count.Load()
	return snap
}

// Summary computes order statistics over the retained window of recent raw
// observations (up to the last summaryWindow samples), reusing the
// experiment harness's stats.Summary so histogram snapshots render with
// the same quantile semantics as EXPERIMENTS.md tables.
func (h *Histogram) Summary() stats.Summary {
	n := h.count.Load()
	if n > summaryWindow {
		n = summaryWindow
	}
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = math.Float64frombits(h.ring[i].Load())
	}
	return stats.Summarize(samples)
}

// Default bucket sets shared by the instrumented components.
var (
	// LatencyBuckets covers microsecond transport calls through multi-
	// second WAN migrations (seconds).
	LatencyBuckets = []float64{
		1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// SizeBuckets covers frame and bundle sizes from small control frames
	// to the 16 MiB wire bound (bytes).
	SizeBuckets = []float64{
		64, 256, 1024, 4096, 16384, 65536,
		262144, 1 << 20, 4 << 20, 16 << 20,
	}
)

// metricKind discriminates series types for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// series is one registered time series: a family name, an optional fixed
// label set, and the backing metric.
type series struct {
	name   string // family name, e.g. naplet_messenger_posted_total
	labels string // rendered `k="v",k2="v2"`, or ""
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// key returns the series identity within a registry.
func (s *series) key() string {
	if s.labels == "" {
		return s.name
	}
	return s.name + "{" + s.labels + "}"
}

// Registry holds the metric series of one naplet server (or one process).
// Registration takes a lock; the returned metric handles are lock-free.
// Registering the same name+labels again returns the existing metric, so
// components may be built independently against a shared registry.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// renderLabels turns variadic k,v pairs into the canonical rendered form.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: odd label pair count")
	}
	parts := make([]string, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", pairs[i], pairs[i+1]))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// register looks up or inserts a series, enforcing kind consistency.
func (r *Registry) register(s *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.series[s.key()]; ok {
		if existing.kind != s.kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as a different type", s.key()))
		}
		return existing
	}
	r.series[s.key()] = s
	return s
}

// Counter returns the counter registered under name (+optional k,v label
// pairs), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(&series{
		name: name, labels: renderLabels(labels), help: help,
		kind: kindCounter, counter: &Counter{},
	})
	return s.counter
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(&series{
		name: name, labels: renderLabels(labels), help: help,
		kind: kindGauge, gauge: &Gauge{},
	})
	return s.gauge
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time: the bridge for pre-existing atomic counters (e.g. the wire
// package's buffer-pool accounting) that must not depend on this package.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(&series{
		name: name, labels: renderLabels(labels), help: help,
		kind: kindCounterFunc, fn: fn,
	})
}

// GaugeFunc registers a gauge sampled from fn at scrape time (resident
// naplet counts, goroutine counts, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(&series{
		name: name, labels: renderLabels(labels), help: help,
		kind: kindGaugeFunc, fn: fn,
	})
}

// Histogram returns the histogram registered under name with the given
// bucket upper bounds, creating it on first use. The bounds of the first
// registration win.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.register(&series{
		name: name, labels: renderLabels(labels), help: help,
		kind: kindHistogram, hist: newHistogram(bounds),
	})
	return s.hist
}

// snapshot returns the registered series sorted by family name then label
// set, for deterministic exposition.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
