// HTTP exposition surface for cmd/napletd: /metrics in Prometheus text
// format, /healthz readiness, and /spans for per-naplet migration traces.
package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves the daemon's runtime surface:
//
//	GET /metrics            Prometheus text format (version 0.0.4)
//	GET /healthz            200 "ok" when ready() returns nil, else 503
//	GET /spans              all retained migration spans, JSON
//	GET /spans?naplet=<id>  spans of one naplet, oldest-first, JSON
//
// tracer and ready may be nil: a nil tracer serves empty span lists and a
// nil ready reports always-healthy.
func Handler(reg *Registry, tracer *HopTracer, ready func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		spans := []HopSpan{}
		if tracer != nil {
			if nid := r.URL.Query().Get("naplet"); nid != "" {
				spans = tracer.Spans(nid)
			} else {
				spans = tracer.All()
			}
		}
		if spans == nil {
			spans = []HopSpan{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(spans)
	})
	return mux
}
