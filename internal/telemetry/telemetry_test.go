package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("naplet_test_events_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("naplet_test_residents", "residents")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("naplet_test_total", "")
	b := r.Counter("naplet_test_total", "")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	// Distinct label sets are distinct series.
	l1 := r.Counter("naplet_test_labeled_total", "", "kind", "a")
	l2 := r.Counter("naplet_test_labeled_total", "", "kind", "b")
	if l1 == l2 {
		t.Fatal("distinct labels must return distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a different type must panic")
		}
	}()
	r.Gauge("naplet_test_total", "")
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("naplet_test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	wantCum := []uint64{1, 2, 3, 4}
	for i, want := range wantCum {
		if snap.Cumulative[i] != want {
			t.Fatalf("cumulative[%d] = %d, want %d (%+v)", i, snap.Cumulative[i], want, snap)
		}
	}
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if math.Abs(snap.Sum-5.555) > 1e-9 {
		t.Fatalf("sum = %g, want 5.555", snap.Sum)
	}
}

func TestHistogramSummaryReusesStats(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.N != 100 {
		t.Fatalf("summary N = %d, want 100", s.N)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Fatalf("min/max = %g/%g, want 1/100", s.Min, s.Max)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %g, want 50.5", s.Mean)
	}
	// Overflow the ring: the window keeps only the most recent samples.
	for i := 0; i < summaryWindow; i++ {
		h.Observe(1000)
	}
	s = h.Summary()
	if s.N != summaryWindow || s.Min != 1000 {
		t.Fatalf("windowed summary = %+v, want %d samples of 1000", s, summaryWindow)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("sum = %g, want 0.25", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("naplet_test_posted_total", "messages posted").Add(7)
	r.Gauge("naplet_test_residents", "resident naplets").Set(2)
	r.GaugeFunc("naplet_test_uptime_seconds", "uptime", func() float64 { return 1.5 })
	r.CounterFunc("naplet_test_pool_gets_total", "pool gets", func() float64 { return 9 })
	h := r.Histogram("naplet_test_rtt_seconds", "round trips", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	r.Counter("naplet_test_calls_total", "calls by kind", "kind", "messenger.post").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE naplet_test_posted_total counter",
		"naplet_test_posted_total 7",
		"# TYPE naplet_test_residents gauge",
		"naplet_test_residents 2",
		"naplet_test_uptime_seconds 1.5",
		"# TYPE naplet_test_pool_gets_total counter",
		"naplet_test_pool_gets_total 9",
		"# TYPE naplet_test_rtt_seconds histogram",
		`naplet_test_rtt_seconds_bucket{le="0.1"} 1`,
		`naplet_test_rtt_seconds_bucket{le="1"} 2`,
		`naplet_test_rtt_seconds_bucket{le="+Inf"} 2`,
		"naplet_test_rtt_seconds_sum 0.55",
		"naplet_test_rtt_seconds_count 2",
		`naplet_test_calls_total{kind="messenger.post"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must precede the family's samples exactly once.
	if strings.Count(out, "# TYPE naplet_test_rtt_seconds histogram") != 1 {
		t.Fatalf("duplicate TYPE header:\n%s", out)
	}
}

func TestConcurrentHotPaths(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("naplet_test_conc_total", "")
	h := r.Histogram("naplet_test_conc_seconds", "", LatencyBuckets)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-workers*per*0.001) > 1e-6 {
		t.Fatalf("histogram sum = %g", h.Sum())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("naplet_bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("naplet_bench_seconds", "", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHopRecord(b *testing.B) {
	tr := NewHopTracer(1024)
	span := HopSpan{Naplet: "czxu:home:20260805120000", Hop: 1, From: "a", To: "b", Outcome: OutcomeOK}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(span)
	}
}
