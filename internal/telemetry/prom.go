// Prometheus text-format exposition (version 0.0.4) for a Registry. The
// format is hand-rendered — the registry is dependency-free by design —
// and covers exactly the series types the registry supports.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in Prometheus text
// format, grouped by family with one HELP/TYPE header each, families in
// lexical order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, s := range r.snapshot() {
		if s.name != lastFamily {
			lastFamily = s.name
			if s.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, s.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, typeName(s.kind))
		}
		switch s.kind {
		case kindCounter:
			writeSample(&b, s.name, s.labels, "", float64(s.counter.Value()))
		case kindGauge:
			writeSample(&b, s.name, s.labels, "", float64(s.gauge.Value()))
		case kindCounterFunc, kindGaugeFunc:
			writeSample(&b, s.name, s.labels, "", s.fn())
		case kindHistogram:
			writeHistogram(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// typeName maps a metric kind to the exposition TYPE keyword.
func typeName(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// writeSample emits one `name{labels} value` line. extra is an additional
// pre-rendered label (the histogram `le` bound) appended to the fixed set.
func writeSample(b *strings.Builder, name, labels, extra string, v float64) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders a sample value: integral values without an exponent,
// everything else in Go's shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
func writeHistogram(b *strings.Builder, s *series) {
	snap := s.hist.Snapshot()
	for i, bound := range snap.Bounds {
		le := `le="` + strconv.FormatFloat(bound, 'g', -1, 64) + `"`
		writeSample(b, s.name+"_bucket", s.labels, le, float64(snap.Cumulative[i]))
	}
	writeSample(b, s.name+"_bucket", s.labels, `le="+Inf"`, float64(snap.Count))
	writeSample(b, s.name+"_sum", s.labels, "", snap.Sum)
	writeSample(b, s.name+"_count", s.labels, "", float64(snap.Count))
}
