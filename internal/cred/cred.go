// Package cred implements naplet credentials (§2.1, §5 of the Naplet paper).
//
// A credential certifies the immutable attributes of a naplet — its
// identifier and codebase — with the creator's digital signature, so that
// naplet servers can determine naplet-specific security and access-control
// policies from a trustworthy principal. The paper builds on the JDK 1.2
// security architecture; here signatures are HMAC-SHA256 over a canonical
// encoding, with a KeyRing standing in for the certificate authority that a
// production deployment would use.
package cred

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/id"
)

// Errors reported by credential verification.
var (
	ErrBadSignature = errors.New("cred: signature verification failed")
	ErrExpired      = errors.New("cred: credential expired")
	ErrUnknownOwner = errors.New("cred: no key registered for owner")
	ErrNotYetValid  = errors.New("cred: credential not yet valid")
)

// Credential binds a naplet's immutable attributes to its creator. The zero
// value is an unsigned, invalid credential. Credentials are set at creation
// time and cannot be altered in the naplet life cycle; Verify detects any
// tampering with the signed fields.
type Credential struct {
	// NapletID is the identifier being certified.
	NapletID id.NapletID
	// Codebase names the agent code the naplet runs (the paper's codebase
	// URL; here a registry name, see internal/registry).
	Codebase string
	// Roles carries principal roles used by security policies, e.g.
	// "netadmin" or "guest". Sorted canonically before signing.
	Roles []string
	// IssuedAt and ExpiresAt bound the validity interval. A zero ExpiresAt
	// means the credential never expires.
	IssuedAt  time.Time
	ExpiresAt time.Time
	// Signature is the HMAC-SHA256 of the canonical encoding under the
	// owner's key.
	Signature []byte
}

// canonical returns the byte string that is signed. Field order and
// separators are fixed so any mutation of signed fields breaks verification.
func (c *Credential) canonical() []byte {
	roles := append([]string(nil), c.Roles...)
	sort.Strings(roles)
	var b strings.Builder
	b.WriteString("naplet-credential/v1\n")
	b.WriteString(c.NapletID.String())
	b.WriteByte('\n')
	b.WriteString(c.Codebase)
	b.WriteByte('\n')
	b.WriteString(strings.Join(roles, ","))
	b.WriteByte('\n')
	b.WriteString(c.IssuedAt.UTC().Format(time.RFC3339))
	b.WriteByte('\n')
	if !c.ExpiresAt.IsZero() {
		b.WriteString(c.ExpiresAt.UTC().Format(time.RFC3339))
	}
	b.WriteByte('\n')
	return []byte(b.String())
}

// HasRole reports whether the credential carries the given role.
func (c *Credential) HasRole(role string) bool {
	for _, r := range c.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// Fingerprint returns a short hex digest of the signed content, useful for
// logging and for footprint records kept by naplet managers.
func (c *Credential) Fingerprint() string {
	sum := sha256.Sum256(c.canonical())
	return hex.EncodeToString(sum[:8])
}

// KeyRing maps owners to signing keys. It stands in for the PKI that the
// paper leaves to "future release" (§5.1): the mechanism (sign at creation,
// verify at landing) is the paper's; the key distribution policy is
// pluggable. KeyRing is safe for concurrent use.
type KeyRing struct {
	mu   sync.RWMutex
	keys map[string][]byte
}

// NewKeyRing returns an empty key ring.
func NewKeyRing() *KeyRing {
	return &KeyRing{keys: make(map[string][]byte)}
}

// Register associates a signing key with an owner, replacing any previous
// key.
func (k *KeyRing) Register(owner string, key []byte) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.keys[owner] = append([]byte(nil), key...)
}

// Remove deletes the owner's key.
func (k *KeyRing) Remove(owner string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.keys, owner)
}

// key returns the owner's key.
func (k *KeyRing) key(owner string) ([]byte, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key, ok := k.keys[owner]
	return key, ok
}

// Issue creates and signs a credential for the naplet with the given
// identifier and codebase under the identifier's owner key.
func (k *KeyRing) Issue(nid id.NapletID, codebase string, roles []string, issuedAt, expiresAt time.Time) (Credential, error) {
	key, ok := k.key(nid.Owner())
	if !ok {
		return Credential{}, fmt.Errorf("%w: %q", ErrUnknownOwner, nid.Owner())
	}
	c := Credential{
		NapletID:  nid,
		Codebase:  codebase,
		Roles:     append([]string(nil), roles...),
		IssuedAt:  issuedAt.UTC(),
		ExpiresAt: expiresAt,
	}
	if !expiresAt.IsZero() {
		c.ExpiresAt = expiresAt.UTC()
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(c.canonical())
	c.Signature = mac.Sum(nil)
	return c, nil
}

// Reissue signs a credential derived from parent for a cloned naplet. The
// clone inherits codebase, roles, and validity from its parent credential
// (§2.1: the address book "can also be inherited in naplet clone"; the same
// holds for the certified attributes, re-signed for the new identity).
func (k *KeyRing) Reissue(parent Credential, cloneID id.NapletID) (Credential, error) {
	return k.Issue(cloneID, parent.Codebase, parent.Roles, parent.IssuedAt, parent.ExpiresAt)
}

// Verify checks the credential's signature under its owner's registered key
// and its validity interval at time now. It returns nil if the credential is
// authentic and valid.
func (k *KeyRing) Verify(c Credential, now time.Time) error {
	key, ok := k.key(c.NapletID.Owner())
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownOwner, c.NapletID.Owner())
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(c.canonical())
	if !hmac.Equal(mac.Sum(nil), c.Signature) {
		return ErrBadSignature
	}
	if now.Before(c.IssuedAt) {
		return ErrNotYetValid
	}
	if !c.ExpiresAt.IsZero() && now.After(c.ExpiresAt) {
		return ErrExpired
	}
	return nil
}
