package cred

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/id"
)

var (
	t0  = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)
	nid = id.MustNew("czxu", "ece.eng.wayne.edu", t0)
)

func ring(t *testing.T) *KeyRing {
	t.Helper()
	k := NewKeyRing()
	k.Register("czxu", []byte("secret-key-czxu"))
	return k
}

func TestIssueAndVerify(t *testing.T) {
	k := ring(t)
	c, err := k.Issue(nid, "naplet.NMNaplet", []string{"netadmin"}, t0, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Verify(c, t0.Add(time.Hour)); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !c.HasRole("netadmin") || c.HasRole("guest") {
		t.Fatal("role membership wrong")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	k := ring(t)
	c, _ := k.Issue(nid, "naplet.NMNaplet", []string{"netadmin"}, t0, time.Time{})

	tampered := c
	tampered.Codebase = "naplet.EvilNaplet"
	if err := k.Verify(tampered, t0); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("codebase tampering not detected: %v", err)
	}

	tampered = c
	tampered.Roles = []string{"root"}
	if err := k.Verify(tampered, t0); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("role tampering not detected: %v", err)
	}

	tampered = c
	other, _ := nid.Clone(1)
	tampered.NapletID = other
	if err := k.Verify(tampered, t0); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("ID tampering not detected: %v", err)
	}

	tampered = c
	tampered.Signature = append([]byte(nil), c.Signature...)
	tampered.Signature[0] ^= 1
	if err := k.Verify(tampered, t0); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("signature bit flip not detected: %v", err)
	}
}

func TestVerifyValidityWindow(t *testing.T) {
	k := ring(t)
	c, _ := k.Issue(nid, "cb", nil, t0, t0.Add(time.Hour))
	if err := k.Verify(c, t0.Add(30*time.Minute)); err != nil {
		t.Fatalf("inside window: %v", err)
	}
	if err := k.Verify(c, t0.Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired not detected: %v", err)
	}
	if err := k.Verify(c, t0.Add(-time.Hour)); !errors.Is(err, ErrNotYetValid) {
		t.Fatalf("not-yet-valid not detected: %v", err)
	}
}

func TestVerifyUnknownOwner(t *testing.T) {
	k := ring(t)
	c, _ := k.Issue(nid, "cb", nil, t0, time.Time{})
	k.Remove("czxu")
	if err := k.Verify(c, t0); !errors.Is(err, ErrUnknownOwner) {
		t.Fatalf("want ErrUnknownOwner, got %v", err)
	}
	if _, err := k.Issue(nid, "cb", nil, t0, time.Time{}); !errors.Is(err, ErrUnknownOwner) {
		t.Fatalf("Issue without key: %v", err)
	}
}

func TestVerifyWrongKey(t *testing.T) {
	k := ring(t)
	c, _ := k.Issue(nid, "cb", nil, t0, time.Time{})
	k.Register("czxu", []byte("rotated"))
	if err := k.Verify(c, t0); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature after key rotation, got %v", err)
	}
}

func TestReissueForClone(t *testing.T) {
	k := ring(t)
	parent, _ := k.Issue(nid, "naplet.NMNaplet", []string{"netadmin"}, t0, t0.Add(time.Hour))
	cloneID, _ := nid.Clone(1)
	child, err := k.Reissue(parent, cloneID)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Verify(child, t0); err != nil {
		t.Fatalf("clone credential invalid: %v", err)
	}
	if child.Codebase != parent.Codebase {
		t.Fatal("clone must inherit codebase")
	}
	if !child.HasRole("netadmin") {
		t.Fatal("clone must inherit roles")
	}
	if !child.NapletID.Equal(cloneID) {
		t.Fatal("clone credential must name the clone")
	}
}

func TestRolesOrderIndependentSignature(t *testing.T) {
	k := ring(t)
	a, _ := k.Issue(nid, "cb", []string{"x", "y"}, t0, time.Time{})
	b := a
	b.Roles = []string{"y", "x"}
	if err := k.Verify(b, t0); err != nil {
		t.Fatalf("role order must not affect signature: %v", err)
	}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	k := ring(t)
	a, _ := k.Issue(nid, "cb", nil, t0, time.Time{})
	b, _ := k.Issue(nid, "cb", nil, t0, time.Time{})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical credentials must share fingerprint")
	}
	c := a
	c.Codebase = "other"
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("fingerprint must change with content")
	}
	if len(a.Fingerprint()) != 16 {
		t.Fatalf("fingerprint length = %d", len(a.Fingerprint()))
	}
}

func TestPropIssueVerifyAlwaysAuthentic(t *testing.T) {
	k := ring(t)
	f := func(codebase string, role string) bool {
		c, err := k.Issue(nid, codebase, []string{role}, t0, time.Time{})
		if err != nil {
			return false
		}
		return k.Verify(c, t0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentKeyRing(t *testing.T) {
	k := NewKeyRing()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			k.Register("czxu", []byte{byte(i)})
		}
	}()
	for i := 0; i < 200; i++ {
		k.Issue(nid, "cb", nil, t0, time.Time{}) // must not race
	}
	<-done
}
