package cred

import (
	"repro/internal/id"
	"repro/internal/wire"
)

// Binary codec for credentials, embedded unversioned inside records and
// landing requests (the container owns the version byte). Layout:
//
//	[NapletID] [string codebase] [uvarint n] n×[string role]
//	[time issuedAt] [time expiresAt] [bytes signature]

// EncodedSize returns the exact binary-encoded size of the credential.
func (c *Credential) EncodedSize() int {
	sz := c.NapletID.EncodedSize() + wire.SizeString(c.Codebase) +
		wire.SizeUvarint(uint64(len(c.Roles)))
	for _, r := range c.Roles {
		sz += wire.SizeString(r)
	}
	return sz + wire.SizeTime(c.IssuedAt) + wire.SizeTime(c.ExpiresAt) +
		wire.SizeBytes(c.Signature)
}

// AppendBinary appends the credential's binary form to dst.
func (c *Credential) AppendBinary(dst []byte) []byte {
	dst = c.NapletID.AppendBinary(dst)
	dst = wire.AppendString(dst, c.Codebase)
	dst = wire.AppendUvarint(dst, uint64(len(c.Roles)))
	for _, r := range c.Roles {
		dst = wire.AppendString(dst, r)
	}
	dst = wire.AppendTime(dst, c.IssuedAt)
	dst = wire.AppendTime(dst, c.ExpiresAt)
	return wire.AppendBytes(dst, c.Signature)
}

// DecodeBinary consumes one credential from b and returns the rest. The
// signature is copied, so the credential does not alias b.
func DecodeBinary(b []byte) (Credential, []byte, error) {
	var c Credential
	var err error
	if c.NapletID, b, err = id.DecodeBinary(b); err != nil {
		return Credential{}, nil, err
	}
	if c.Codebase, b, err = wire.DecString(b); err != nil {
		return Credential{}, nil, err
	}
	cnt, b, err := wire.DecCount(b, 1)
	if err != nil {
		return Credential{}, nil, err
	}
	if cnt > 0 {
		c.Roles = make([]string, cnt)
		for i := range c.Roles {
			if c.Roles[i], b, err = wire.DecString(b); err != nil {
				return Credential{}, nil, err
			}
		}
	}
	if c.IssuedAt, b, err = wire.DecTime(b); err != nil {
		return Credential{}, nil, err
	}
	if c.ExpiresAt, b, err = wire.DecTime(b); err != nil {
		return Credential{}, nil, err
	}
	sig, b, err := wire.DecBytes(b)
	if err != nil {
		return Credential{}, nil, err
	}
	if sig != nil {
		c.Signature = append([]byte(nil), sig...)
	}
	return c, b, nil
}
