package overload

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/wire"
)

func TestCodeRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{ErrOverloaded, CodeOverloaded},
		{ErrDeadlinePast, CodeDeadlinePast},
		{fmt.Errorf("wrapped: %w", ErrOverloaded), CodeOverloaded},
		{errors.New("plain"), ""},
		{ErrBreakerOpen, ""}, // breaker refusals are local, never cross a hop
	}
	for _, tc := range cases {
		if got := CodeFor(tc.err); got != tc.code {
			t.Fatalf("CodeFor(%v) = %q, want %q", tc.err, got, tc.code)
		}
	}
	if !errors.Is(FromCode(CodeOverloaded), ErrOverloaded) {
		t.Fatal("FromCode(overloaded)")
	}
	if !errors.Is(FromCode(CodeDeadlinePast), ErrDeadlinePast) {
		t.Fatal("FromCode(deadline-past)")
	}
	if FromCode("handler") != nil || FromCode("") != nil {
		t.Fatal("unknown codes must map to nil")
	}
}

func TestLiveness(t *testing.T) {
	for _, err := range []error{
		ErrOverloaded,
		ErrDeadlinePast,
		fmt.Errorf("hop: %w", ErrOverloaded),
	} {
		if !Liveness(err) {
			t.Fatalf("Liveness(%v) = false", err)
		}
	}
	for _, err := range []error{
		ErrBreakerOpen,
		ErrRetryBudgetExhausted,
		errors.New("connection refused"),
		nil,
	} {
		if Liveness(err) {
			t.Fatalf("Liveness(%v) = true", err)
		}
	}
}

func TestClassify(t *testing.T) {
	bulk := []wire.Kind{
		wire.KindLandingRequest, wire.KindNapletTransfer, wire.KindCodeFetch,
		wire.KindCodeBundle, wire.KindPost, wire.KindPostForward, wire.KindServiceInvoke,
	}
	for _, k := range bulk {
		if got := Classify(k); got != ClassBulk {
			t.Fatalf("Classify(%v) = %v, want bulk", k, got)
		}
	}
	control := []wire.Kind{
		wire.KindLocatorQuery, wire.KindLocatorInvalidate,
		wire.KindDirRegister, wire.KindDirLookup, wire.KindControl, wire.KindReport,
	}
	for _, k := range control {
		if got := Classify(k); got != ClassControl {
			t.Fatalf("Classify(%v) = %v, want control", k, got)
		}
	}
	if ClassControl.String() != "control" || ClassBulk.String() != "bulk" {
		t.Fatal("class names feed telemetry labels and must not drift")
	}
}

func TestRetryBudgetNil(t *testing.T) {
	var rb *RetryBudget
	rb.RecordAttempt()
	for i := 0; i < 100; i++ {
		if !rb.AllowRetry() {
			t.Fatal("nil budget must always allow")
		}
	}
	if rb.Exhausted() != 0 || rb.Tokens() != 0 {
		t.Fatal("nil budget records nothing")
	}
}

func TestRetryBudgetBurstThenRatio(t *testing.T) {
	rb := NewRetryBudget(RetryBudgetConfig{Ratio: 0.2, Burst: 3})
	// The initial fill covers a short brownout: Burst retries pass cold.
	for i := 0; i < 3; i++ {
		if !rb.AllowRetry() {
			t.Fatalf("burst retry %d refused", i)
		}
	}
	if rb.AllowRetry() {
		t.Fatal("bucket empty: retry must be refused")
	}
	if rb.Exhausted() != 1 {
		t.Fatalf("exhausted = %d, want 1", rb.Exhausted())
	}
	// Five first attempts earn exactly one token at Ratio 0.2.
	for i := 0; i < 4; i++ {
		rb.RecordAttempt()
		if rb.AllowRetry() {
			t.Fatalf("partial token after %d attempts must not allow a retry", i+1)
		}
	}
	rb.RecordAttempt()
	if !rb.AllowRetry() {
		t.Fatal("five attempts at ratio 0.2 earn one retry")
	}
	if rb.AllowRetry() {
		t.Fatal("the earned token was spent")
	}
}

func TestRetryBudgetCapsAtBurst(t *testing.T) {
	rb := NewRetryBudget(RetryBudgetConfig{Ratio: 1, Burst: 2})
	for i := 0; i < 100; i++ {
		rb.RecordAttempt()
	}
	allowed := 0
	for rb.AllowRetry() {
		allowed++
	}
	if allowed != 2 {
		t.Fatalf("bucket must cap at Burst: allowed %d", allowed)
	}
}

// TestRetryBudgetSustainedRatio is the amplification bound: in sustained
// overload where every attempt fails, retries settle at Ratio times the
// first-attempt rate.
func TestRetryBudgetSustainedRatio(t *testing.T) {
	rb := NewRetryBudget(RetryBudgetConfig{Ratio: 0.1, Burst: 5})
	firsts, retries := 0, 0
	for i := 0; i < 2000; i++ {
		rb.RecordAttempt()
		firsts++
		if rb.AllowRetry() {
			retries++
		}
	}
	// Steady-state retries = Ratio * firsts, plus the initial Burst.
	max := int(0.1*float64(firsts)) + 5
	if retries > max {
		t.Fatalf("retries %d exceed budget bound %d", retries, max)
	}
	if retries < max-1 {
		t.Fatalf("retries %d fall short of the earned budget %d", retries, max)
	}
}
