package overload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Shed reasons, fixed so counters, trail and telemetry all reconcile
// over the same vocabulary.
const (
	// ReasonQueueFull: the bulk queue was at capacity on arrival.
	ReasonQueueFull = "queue-full"
	// ReasonQueueDelay: the CoDel controller is in dropping mode —
	// queue delay has stayed above target for a full interval.
	ReasonQueueDelay = "queue-delay"
	// ReasonQueueTimeout: the request waited MaxWait without a slot.
	ReasonQueueTimeout = "queue-timeout"
	// ReasonBudgetExpired: the caller's propagated budget ran out while
	// the request sat in the queue.
	ReasonBudgetExpired = "budget-expired"
	// ReasonCanceled: the caller's context was canceled in the queue.
	ReasonCanceled = "canceled"
)

// ShedReasons lists every reason a Gate can emit, in a stable order.
var ShedReasons = []string{
	ReasonQueueFull, ReasonQueueDelay, ReasonQueueTimeout,
	ReasonBudgetExpired, ReasonCanceled,
}

// GateConfig parameterizes an admission gate. Zero values take the
// defaults noted per field.
type GateConfig struct {
	// MaxInFlight bounds concurrently executing bulk requests
	// (default 64). Control traffic is never bounded by the gate.
	MaxInFlight int
	// MaxQueue bounds bulk requests waiting for a slot (default
	// 2*MaxInFlight). Arrivals beyond it are shed immediately.
	MaxQueue int
	// Target is the acceptable standing queue delay (default 5ms).
	Target time.Duration
	// Interval is how long queue delay must stay above Target before
	// the gate starts shedding new bulk arrivals (default 100ms) —
	// CoDel's interval, applied at admission instead of at the head.
	Interval time.Duration
	// MaxWait caps how long a queued request may wait even when its
	// caller sent no budget (default 1s).
	MaxWait time.Duration
	// Clock overrides time.Now for the delay controller (tests).
	Clock func() time.Time
	// MaxTrail bounds the shed-event trail (default 8192).
	MaxTrail int
	// Telemetry, when set, exports shed/admit counters and occupancy
	// gauges.
	Telemetry *telemetry.Registry
}

func (c GateConfig) withDefaults() GateConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.Target <= 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.MaxWait <= 0 {
		c.MaxWait = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.MaxTrail <= 0 {
		c.MaxTrail = 8192
	}
	return c
}

// ShedEvent is one shed request, recorded for post-mortem
// reconciliation against counters and telemetry.
type ShedEvent struct {
	At     time.Time
	Class  Class
	Reason string
}

// Gate is a per-dock, two-class admission controller. Control-class
// requests are admitted immediately; bulk requests run under a bounded
// in-flight count, wait in a bounded queue, and are shed with a typed,
// retryable error when the queue is full or its delay has stayed above
// target for a full interval.
type Gate struct {
	cfg   GateConfig
	slots chan struct{}

	mu         sync.Mutex
	queued     int
	firstAbove time.Time // first sojourn observation at/above Target
	dropping   bool
	trail      []ShedEvent
	trailDrop  int64

	ctlArrivals  atomic.Int64
	bulkArrivals atomic.Int64
	ctlAdmitted  atomic.Int64
	bulkAdmitted atomic.Int64
	ctlInFlight  atomic.Int64
	bulkInFlight atomic.Int64
	shed         map[string]*atomic.Int64

	metShed     map[string]*telemetry.Counter
	metAdmitted map[Class]*telemetry.Counter
}

// NewGate builds a gate from cfg (zero values take defaults).
func NewGate(cfg GateConfig) *Gate {
	g := &Gate{cfg: cfg.withDefaults()}
	g.slots = make(chan struct{}, g.cfg.MaxInFlight)
	g.shed = make(map[string]*atomic.Int64, len(ShedReasons))
	for _, r := range ShedReasons {
		g.shed[r] = new(atomic.Int64)
	}
	if reg := g.cfg.Telemetry; reg != nil {
		g.metShed = make(map[string]*telemetry.Counter, len(ShedReasons))
		for _, r := range ShedReasons {
			g.metShed[r] = reg.Counter("naplet_overload_shed_total",
				"requests shed by the admission gate", "class", ClassBulk.String(), "reason", r)
		}
		g.metAdmitted = map[Class]*telemetry.Counter{
			ClassControl: reg.Counter("naplet_overload_admitted_total",
				"requests admitted by the gate", "class", ClassControl.String()),
			ClassBulk: reg.Counter("naplet_overload_admitted_total",
				"requests admitted by the gate", "class", ClassBulk.String()),
		}
		reg.GaugeFunc("naplet_overload_inflight",
			"requests currently executing", func() float64 { return float64(g.bulkInFlight.Load()) },
			"class", ClassBulk.String())
		reg.GaugeFunc("naplet_overload_inflight",
			"requests currently executing", func() float64 { return float64(g.ctlInFlight.Load()) },
			"class", ClassControl.String())
		reg.GaugeFunc("naplet_overload_queued",
			"bulk requests waiting for an in-flight slot", func() float64 {
				g.mu.Lock()
				defer g.mu.Unlock()
				return float64(g.queued)
			})
	}
	return g
}

// Admit asks the gate for permission to run a request of the given
// class. On admission it returns a release func the caller must invoke
// when the request finishes (idempotent). On shed it returns a typed
// error: ErrOverloaded for capacity sheds, ErrDeadlinePast when the
// caller's budget (ctx deadline) expired in the queue. A nil gate
// admits everything.
func (g *Gate) Admit(ctx context.Context, class Class) (func(), error) {
	if g == nil {
		return func() {}, nil
	}
	if class == ClassControl {
		g.ctlArrivals.Add(1)
		g.ctlAdmitted.Add(1)
		g.ctlInFlight.Add(1)
		if c := g.metAdmitted[ClassControl]; c != nil {
			c.Inc()
		}
		var once sync.Once
		return func() { once.Do(func() { g.ctlInFlight.Add(-1) }) }, nil
	}

	g.bulkArrivals.Add(1)
	// Fast path: a free slot means the queue is empty — take it and
	// clear any standing-delay history.
	select {
	case g.slots <- struct{}{}:
		g.noteSojourn(0)
		return g.admitBulk(), nil
	default:
	}

	g.mu.Lock()
	if g.queued >= g.cfg.MaxQueue {
		g.mu.Unlock()
		return nil, g.shedLocked(ReasonQueueFull, ErrOverloaded)
	}
	if g.dropping {
		g.mu.Unlock()
		return nil, g.shedLocked(ReasonQueueDelay, ErrOverloaded)
	}
	g.queued++
	g.mu.Unlock()

	enqueued := g.cfg.Clock()
	timer := time.NewTimer(g.cfg.MaxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.dequeue()
		g.noteSojourn(g.cfg.Clock().Sub(enqueued))
		return g.admitBulk(), nil
	case <-ctx.Done():
		g.dequeue()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, g.shedLocked(ReasonBudgetExpired, ErrDeadlinePast)
		}
		return nil, g.shedLocked(ReasonCanceled, ErrOverloaded)
	case <-timer.C:
		g.dequeue()
		return nil, g.shedLocked(ReasonQueueTimeout, ErrOverloaded)
	}
}

func (g *Gate) dequeue() {
	g.mu.Lock()
	g.queued--
	g.mu.Unlock()
}

func (g *Gate) admitBulk() func() {
	g.bulkAdmitted.Add(1)
	g.bulkInFlight.Add(1)
	if c := g.metAdmitted[ClassBulk]; c != nil {
		c.Inc()
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			g.bulkInFlight.Add(-1)
			<-g.slots
		})
	}
}

// noteSojourn feeds one observed queue delay into the CoDel-style
// controller: a single below-target observation resets it; staying at
// or above target for a whole Interval flips the gate into dropping
// mode until the queue drains enough for delay to recover.
func (g *Gate) noteSojourn(d time.Duration) {
	now := g.cfg.Clock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if d < g.cfg.Target {
		g.firstAbove = time.Time{}
		g.dropping = false
		return
	}
	if g.firstAbove.IsZero() {
		g.firstAbove = now
		return
	}
	if now.Sub(g.firstAbove) >= g.cfg.Interval {
		g.dropping = true
	}
}

// shedLocked accounts one shed (counter, trail, telemetry) and returns
// the typed error. Named for the trail lock it takes, not a
// precondition.
func (g *Gate) shedLocked(reason string, sentinel error) error {
	g.shed[reason].Add(1)
	if c := g.metShed[reason]; c != nil {
		c.Inc()
	}
	ev := ShedEvent{At: g.cfg.Clock(), Class: ClassBulk, Reason: reason}
	g.mu.Lock()
	if len(g.trail) >= g.cfg.MaxTrail {
		g.trailDrop++
	} else {
		g.trail = append(g.trail, ev)
	}
	g.mu.Unlock()
	return fmt.Errorf("%w: %s (in-flight %d)", sentinel, reason, g.cfg.MaxInFlight)
}

// GateStats is a point-in-time accounting snapshot. After the gate
// quiesces (no queued or in-flight requests), arrivals == admitted +
// total shed per class, exactly.
type GateStats struct {
	ControlArrivals int64
	ControlAdmitted int64
	BulkArrivals    int64
	BulkAdmitted    int64
	Shed            map[string]int64
	InFlight        int64 // bulk currently executing
	Queued          int
	Dropping        bool
}

// TotalShed sums every shed reason.
func (s GateStats) TotalShed() int64 {
	var n int64
	for _, v := range s.Shed {
		n += v
	}
	return n
}

// Stats snapshots the gate's counters.
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{Shed: map[string]int64{}}
	}
	st := GateStats{
		ControlArrivals: g.ctlArrivals.Load(),
		ControlAdmitted: g.ctlAdmitted.Load(),
		BulkArrivals:    g.bulkArrivals.Load(),
		BulkAdmitted:    g.bulkAdmitted.Load(),
		Shed:            make(map[string]int64, len(ShedReasons)),
		InFlight:        g.bulkInFlight.Load(),
	}
	for _, r := range ShedReasons {
		st.Shed[r] = g.shed[r].Load()
	}
	g.mu.Lock()
	st.Queued = g.queued
	st.Dropping = g.dropping
	g.mu.Unlock()
	return st
}

// Trail returns a copy of the recorded shed events; TrailDropped says
// how many further events the bounded trail could not hold.
func (g *Gate) Trail() []ShedEvent {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ShedEvent, len(g.trail))
	copy(out, g.trail)
	return out
}

// TrailDropped reports shed events lost to the trail cap.
func (g *Gate) TrailDropped() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.trailDrop
}
