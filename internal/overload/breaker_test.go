package overload

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/health"
)

func newTestBreakers(clk *fakeClock, hd *health.Detector) *Breakers {
	return NewBreakers(BreakerConfig{
		FailureThreshold: 3,
		OpenFor:          2 * time.Second,
		HalfOpenProbes:   1,
		Clock:            clk.Now,
		Health:           hd,
	})
}

func TestBreakersNil(t *testing.T) {
	var b *Breakers
	if err := b.Allow("x"); err != nil {
		t.Fatal(err)
	}
	b.OnSuccess("x")
	b.OnFailure("x")
	if b.State("x") != BreakerClosed {
		t.Fatal("nil breakers are always closed")
	}
	if b.Stats().TotalOpened() != 0 {
		t.Fatal("nil breakers record nothing")
	}
}

func TestBreakerOpensOnFailures(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreakers(clk, nil)
	for i := 0; i < 2; i++ {
		b.OnFailure("peer")
		if err := b.Allow("peer"); err != nil {
			t.Fatalf("below threshold, attempt %d: %v", i, err)
		}
	}
	b.OnFailure("peer") // third consecutive failure crosses the threshold
	if st := b.State("peer"); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	err := b.Allow("peer")
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker must refuse: %v", err)
	}
	st := b.Stats()
	if st.Opened[OpenReasonFailures] != 1 || st.Rejected != 1 || st.Open != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBreakerHalfOpenProbeLimit(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreakers(clk, nil)
	for i := 0; i < 3; i++ {
		b.OnFailure("peer")
	}
	clk.Advance(2 * time.Second)
	if st := b.State("peer"); st != BreakerHalfOpen {
		t.Fatalf("state after OpenFor = %v, want half-open", st)
	}
	// Exactly HalfOpenProbes (1) probes pass; the rest are refused.
	if err := b.Allow("peer"); err != nil {
		t.Fatalf("first half-open probe: %v", err)
	}
	if err := b.Allow("peer"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe must be refused: %v", err)
	}
}

func TestBreakerProbeSuccessCloses(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreakers(clk, nil)
	for i := 0; i < 3; i++ {
		b.OnFailure("peer")
	}
	clk.Advance(2 * time.Second)
	if err := b.Allow("peer"); err != nil {
		t.Fatal(err)
	}
	b.OnSuccess("peer")
	if st := b.State("peer"); st != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", st)
	}
	// The failure count reset too: one new failure does not re-open.
	b.OnFailure("peer")
	if err := b.Allow("peer"); err != nil {
		t.Fatalf("closed after recovery: %v", err)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreakers(clk, nil)
	for i := 0; i < 3; i++ {
		b.OnFailure("peer")
	}
	clk.Advance(2 * time.Second)
	if err := b.Allow("peer"); err != nil {
		t.Fatal(err)
	}
	b.OnFailure("peer") // the probe itself failed
	if st := b.State("peer"); st != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", st)
	}
	if got := b.Stats().Opened[OpenReasonProbeFailure]; got != 1 {
		t.Fatalf("probe-failure opens = %d", got)
	}
	// The re-open restarts the OpenFor clock.
	clk.Advance(time.Second)
	if err := b.Allow("peer"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("still within re-opened window: %v", err)
	}
}

// TestBreakerDetectorDeadOpensWithoutProbes is the detector→breaker half
// of the liveness lattice: a dead verdict from the health detector opens
// a closed breaker on the next Allow, and because the refusal is local,
// none of the detector's own per-interval probe slots are consumed.
func TestBreakerDetectorDeadOpensWithoutProbes(t *testing.T) {
	clk := newFakeClock()
	hd := health.New(health.Config{
		SuspectThreshold: 2, DeadThreshold: 4,
		ProbeInterval: 2 * time.Second, Clock: clk.Now,
	})
	b := newTestBreakers(clk, hd)
	for i := 0; i < 4; i++ {
		hd.ReportFailure("peer")
	}
	if !hd.Dead("peer") {
		t.Fatal("detector should presume peer dead")
	}
	err := b.Allow("peer")
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("detector-dead must open the breaker: %v", err)
	}
	if got := b.Stats().Opened[OpenReasonDetectorDead]; got != 1 {
		t.Fatalf("detector-dead opens = %d", got)
	}
	// The detector's probe slot is untouched: the first real prober this
	// interval still gets its attempt.
	if !hd.Allow("peer") {
		t.Fatal("breaker refusal must not burn the detector's probe slot")
	}
	// And the slot then behaves normally: a second prober in the same
	// interval is refused, proving the first Allow was the genuine one.
	if hd.Allow("peer") {
		t.Fatal("probe slot should be single-use per interval")
	}
}

// TestBreakerRecoveryWalksDetectorBack is the breaker→detector half: a
// half-open probe success closes the breaker and reports success to the
// detector, walking the peer back toward alive.
func TestBreakerRecoveryWalksDetectorBack(t *testing.T) {
	clk := newFakeClock()
	hd := health.New(health.Config{
		SuspectThreshold: 2, DeadThreshold: 4,
		ProbeInterval: 2 * time.Second, Clock: clk.Now,
	})
	b := newTestBreakers(clk, hd)
	for i := 0; i < 4; i++ {
		hd.ReportFailure("peer")
	}
	if err := b.Allow("peer"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("expected detector-dead open: %v", err)
	}
	clk.Advance(2 * time.Second)
	// Half-open: the probe is granted even though the detector still says
	// dead — the breaker's own recovery schedule takes precedence once
	// it has opened.
	if err := b.Allow("peer"); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	b.OnSuccess("peer")
	if st := b.State("peer"); st != BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", st)
	}
	if got := hd.State("peer"); got != health.StateAlive {
		t.Fatalf("detector after recovery = %v, want alive", got)
	}
	if err := b.Allow("peer"); err != nil {
		t.Fatalf("closed breaker with alive detector: %v", err)
	}
}

// TestBreakerOpenFeedsSuspicion: a breaker opening on consecutive
// failures is itself evidence, worth one miss of suspicion to the
// detector.
func TestBreakerOpenFeedsSuspicion(t *testing.T) {
	clk := newFakeClock()
	hd := health.New(health.Config{
		SuspectThreshold: 2, DeadThreshold: 4,
		ProbeInterval: 2 * time.Second, Clock: clk.Now,
	})
	b := newTestBreakers(clk, hd)
	for i := 0; i < 3; i++ {
		b.OnFailure("peer")
	}
	// The open transition reported exactly one failure to the detector:
	// one more miss reaches SuspectThreshold (2).
	if got := hd.State("peer"); got != health.StateAlive {
		t.Fatalf("one miss should leave peer alive, got %v", got)
	}
	hd.ReportFailure("peer")
	if got := hd.State("peer"); got != health.StateSuspect {
		t.Fatalf("second miss should make peer suspect, got %v", got)
	}
}

// TestBreakerConcurrency exercises the breaker and detector together
// from many goroutines; run under -race this is the lattice's data-race
// proof.
func TestBreakerConcurrency(t *testing.T) {
	clk := newFakeClock()
	hd := health.New(health.Config{Clock: clk.Now})
	b := newTestBreakers(clk, hd)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			peer := []string{"a", "b"}[i%2]
			for j := 0; j < 200; j++ {
				if err := b.Allow(peer); err == nil {
					if j%3 == 0 {
						b.OnFailure(peer)
					} else {
						b.OnSuccess(peer)
					}
				}
				if j%50 == 0 {
					clk.Advance(time.Second)
				}
				_ = b.State(peer)
				_ = b.Stats()
			}
		}(i)
	}
	wg.Wait()
}
