package overload

import "repro/internal/wire"

// Class is an admission priority class.
type Class int

const (
	// ClassControl: heartbeats, directory registration and lookup,
	// locator traffic, fleet events, management control. Control frames
	// are small, latency-critical, and keep the rest of the system able
	// to react to overload — they are admitted immediately, never
	// queued behind bulk work.
	ClassControl Class = iota

	// ClassBulk: naplet migrations, code bundles, mail and service
	// invocations — the work the gate bounds and sheds under pressure.
	ClassBulk
)

func (c Class) String() string {
	if c == ClassBulk {
		return "bulk"
	}
	return "control"
}

// Classify maps a frame kind onto its admission class. Anything not
// explicitly bulk is control: unknown kinds are rejected by the handler
// switch anyway, and misclassifying a new control kind as bulk would
// starve exactly the traffic that keeps an overloaded dock observable.
func Classify(k wire.Kind) Class {
	switch k {
	case wire.KindLandingRequest, wire.KindNapletTransfer,
		wire.KindCodeFetch, wire.KindCodeBundle,
		wire.KindPost, wire.KindPostForward,
		wire.KindServiceInvoke:
		return ClassBulk
	}
	return ClassControl
}
