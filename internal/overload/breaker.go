package overload

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/health"
	"repro/internal/telemetry"
)

// BreakerState is one circuit breaker's position.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Reasons a breaker opens, fixed for counter/telemetry reconciliation.
const (
	OpenReasonFailures     = "failures"      // consecutive failures hit the threshold
	OpenReasonProbeFailure = "probe-failure" // a half-open probe failed
	OpenReasonDetectorDead = "detector-dead" // the health detector declared the peer dead
)

// OpenReasons lists every open reason in a stable order.
var OpenReasons = []string{OpenReasonFailures, OpenReasonProbeFailure, OpenReasonDetectorDead}

// BreakerConfig parameterizes a per-peer breaker set. Zero values take
// the defaults noted per field.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens a
	// closed breaker (default 5).
	FailureThreshold int
	// OpenFor is how long an open breaker refuses calls before
	// admitting half-open probes (default 2s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent probes while half-open
	// (default 1).
	HalfOpenProbes int
	// Clock overrides time.Now (tests).
	Clock func() time.Time
	// Health ties the breaker into the liveness lattice: detector-dead
	// opens the breaker without burning the detector's probe slots, a
	// breaker opening feeds the detector one miss of suspicion, and a
	// half-open probe success walks the detector back toward alive.
	Health *health.Detector
	// Telemetry, when set, exports open/reject counters and state
	// gauges.
	Telemetry *telemetry.Registry
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

type breaker struct {
	state    BreakerState
	failures int
	openedAt time.Time
	probes   int
}

// Breakers is a set of per-peer circuit breakers. All methods are safe
// on a nil receiver (everything allowed, nothing recorded), so call
// sites need no enablement checks.
type Breakers struct {
	cfg BreakerConfig

	mu    sync.Mutex
	peers map[string]*breaker

	opened   map[string]*atomic.Int64 // by reason
	rejected atomic.Int64

	metOpened map[string]*telemetry.Counter
	metReject *telemetry.Counter
}

// NewBreakers builds a breaker set from cfg.
func NewBreakers(cfg BreakerConfig) *Breakers {
	b := &Breakers{
		cfg:    cfg.withDefaults(),
		peers:  make(map[string]*breaker),
		opened: make(map[string]*atomic.Int64, len(OpenReasons)),
	}
	for _, r := range OpenReasons {
		b.opened[r] = new(atomic.Int64)
	}
	if reg := b.cfg.Telemetry; reg != nil {
		b.metOpened = make(map[string]*telemetry.Counter, len(OpenReasons))
		for _, r := range OpenReasons {
			b.metOpened[r] = reg.Counter("naplet_breaker_open_total",
				"circuit breaker open transitions", "reason", r)
		}
		b.metReject = reg.Counter("naplet_breaker_rejected_total",
			"calls refused locally by an open breaker")
		for _, st := range []BreakerState{BreakerOpen, BreakerHalfOpen} {
			st := st
			reg.GaugeFunc("naplet_breaker_peers",
				"peers per breaker state",
				func() float64 { return float64(b.count(st)) },
				"state", st.String())
		}
	}
	return b
}

func (b *Breakers) count(st BreakerState) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, br := range b.peers {
		if br.state == st {
			n++
		}
	}
	return n
}

func (b *Breakers) get(peer string) *breaker {
	br, ok := b.peers[peer]
	if !ok {
		br = &breaker{}
		b.peers[peer] = br
	}
	return br
}

// recordOpen accounts an open transition. Caller must NOT hold b.mu
// when feeding the detector, so this only touches counters.
func (b *Breakers) recordOpen(reason string) {
	b.opened[reason].Add(1)
	if c := b.metOpened[reason]; c != nil {
		c.Inc()
	}
}

// Allow asks whether a call to peer may proceed. It returns nil to
// allow (closed, or a granted half-open probe) and an ErrBreakerOpen-
// wrapped error to refuse. A dead verdict from the health detector
// opens a closed breaker immediately — without consuming any of the
// detector's own probe slots, since no network attempt happens.
func (b *Breakers) Allow(peer string) error {
	if b == nil {
		return nil
	}
	// Read the detector before taking our lock: it has its own, and
	// keeping the two disjoint means no ordering to get wrong.
	dead := b.cfg.Health.Dead(peer)
	now := b.cfg.Clock()

	b.mu.Lock()
	br := b.get(peer)
	openedNow := ""
	if br.state == BreakerClosed && dead {
		br.state = BreakerOpen
		br.openedAt = now
		br.probes = 0
		openedNow = OpenReasonDetectorDead
		b.recordOpen(openedNow)
	}
	if br.state == BreakerOpen && now.Sub(br.openedAt) >= b.cfg.OpenFor {
		br.state = BreakerHalfOpen
		br.probes = 0
	}
	var err error
	switch br.state {
	case BreakerClosed:
		// allowed
	case BreakerHalfOpen:
		if br.probes < b.cfg.HalfOpenProbes {
			br.probes++
		} else {
			err = fmt.Errorf("%w: %s (half-open, probes in flight)", ErrBreakerOpen, peer)
		}
	default: // BreakerOpen
		err = fmt.Errorf("%w: %s", ErrBreakerOpen, peer)
	}
	if err != nil {
		b.rejected.Add(1)
		if b.metReject != nil {
			b.metReject.Inc()
		}
	}
	b.mu.Unlock()

	if openedNow != "" {
		// The breaker opening is itself evidence against the peer.
		b.cfg.Health.ReportFailure(peer)
	}
	return err
}

// OnSuccess records a successful call (or any reply proving the peer
// alive — an overload shed counts). A half-open probe success closes
// the breaker and walks the health detector back toward alive.
func (b *Breakers) OnSuccess(peer string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	br := b.get(peer)
	recovered := br.state != BreakerClosed
	br.state = BreakerClosed
	br.failures = 0
	br.probes = 0
	b.mu.Unlock()
	if recovered {
		b.cfg.Health.ReportSuccess(peer)
	}
}

// OnFailure records a failed call attempt. Consecutive failures open a
// closed breaker; a failed half-open probe re-opens immediately.
func (b *Breakers) OnFailure(peer string) {
	if b == nil {
		return
	}
	now := b.cfg.Clock()
	b.mu.Lock()
	br := b.get(peer)
	opened := ""
	switch br.state {
	case BreakerClosed:
		br.failures++
		if br.failures >= b.cfg.FailureThreshold {
			br.state = BreakerOpen
			br.openedAt = now
			br.probes = 0
			opened = OpenReasonFailures
			b.recordOpen(opened)
		}
	case BreakerHalfOpen:
		br.state = BreakerOpen
		br.openedAt = now
		br.probes = 0
		opened = OpenReasonProbeFailure
		b.recordOpen(opened)
	}
	b.mu.Unlock()
	if opened != "" {
		b.cfg.Health.ReportFailure(peer)
	}
}

// State reports peer's effective breaker state: an open breaker whose
// OpenFor has elapsed reads as half-open even before the next Allow
// performs the transition.
func (b *Breakers) State(peer string) BreakerState {
	if b == nil {
		return BreakerClosed
	}
	now := b.cfg.Clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	br, ok := b.peers[peer]
	if !ok {
		return BreakerClosed
	}
	if br.state == BreakerOpen && now.Sub(br.openedAt) >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return br.state
}

// BreakerStats is an accounting snapshot.
type BreakerStats struct {
	Opened   map[string]int64 // by reason
	Rejected int64
	Open     int // peers currently open
	HalfOpen int
}

// TotalOpened sums open transitions across reasons.
func (s BreakerStats) TotalOpened() int64 {
	var n int64
	for _, v := range s.Opened {
		n += v
	}
	return n
}

// Stats snapshots the breaker set.
func (b *Breakers) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{Opened: map[string]int64{}}
	}
	st := BreakerStats{Opened: make(map[string]int64, len(OpenReasons)), Rejected: b.rejected.Load()}
	for _, r := range OpenReasons {
		st.Opened[r] = b.opened[r].Load()
	}
	b.mu.Lock()
	for _, br := range b.peers {
		switch br.state {
		case BreakerOpen:
			st.Open++
		case BreakerHalfOpen:
			st.HalfOpen++
		}
	}
	b.mu.Unlock()
	return st
}
