package overload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for the CoDel controller.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestGateNil(t *testing.T) {
	var g *Gate
	release, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatalf("nil gate must admit: %v", err)
	}
	release()
	if got := g.Stats().TotalShed(); got != 0 {
		t.Fatalf("nil gate shed = %d", got)
	}
	if g.Trail() != nil || g.TrailDropped() != 0 {
		t.Fatal("nil gate trail must be empty")
	}
}

func TestGateControlNeverQueued(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxQueue: 1})
	// Saturate the bulk side completely.
	release, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Control traffic still passes instantly.
	for i := 0; i < 100; i++ {
		rel, err := g.Admit(context.Background(), ClassControl)
		if err != nil {
			t.Fatalf("control admit %d: %v", i, err)
		}
		rel()
	}
	st := g.Stats()
	if st.ControlArrivals != 100 || st.ControlAdmitted != 100 {
		t.Fatalf("control accounting: %+v", st)
	}
}

func TestGateQueueFullShed(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: time.Minute})
	release, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter occupies the queue slot.
	queued := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(queued)
		rel, err := g.Admit(context.Background(), ClassBulk)
		if err == nil {
			rel()
		}
		done <- err
	}()
	<-queued
	waitFor(t, func() bool { return g.Stats().Queued == 1 })
	// The next arrival finds the queue full and is shed immediately.
	if _, err := g.Admit(context.Background(), ClassBulk); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full: got %v, want ErrOverloaded", err)
	}
	if got := g.Stats().Shed[ReasonQueueFull]; got != 1 {
		t.Fatalf("queue-full shed count = %d", got)
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter should win the freed slot: %v", err)
	}
}

func TestGateQueueTimeout(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxWait: 20 * time.Millisecond})
	release, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := g.Admit(context.Background(), ClassBulk); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("timeout shed: got %v, want ErrOverloaded", err)
	}
	if got := g.Stats().Shed[ReasonQueueTimeout]; got != 1 {
		t.Fatalf("queue-timeout shed count = %d", got)
	}
}

func TestGateBudgetExpiredInQueue(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxWait: time.Minute})
	release, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.Admit(ctx, ClassBulk); !errors.Is(err, ErrDeadlinePast) {
		t.Fatalf("budget expiry in queue: got %v, want ErrDeadlinePast", err)
	}
	if got := g.Stats().Shed[ReasonBudgetExpired]; got != 1 {
		t.Fatalf("budget-expired shed count = %d", got)
	}
}

func TestGateCanceledInQueue(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxWait: time.Minute})
	release, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := g.Admit(ctx, ClassBulk); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancellation in queue: got %v, want ErrOverloaded", err)
	}
	if got := g.Stats().Shed[ReasonCanceled]; got != 1 {
		t.Fatalf("canceled shed count = %d", got)
	}
}

func TestGateDroppingMode(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(GateConfig{
		MaxInFlight: 1, MaxQueue: 8,
		Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond,
		Clock: clk.Now,
	})
	// Hold the only slot first: a fast-path admission would reset the
	// controller (an empty queue is proof delay recovered).
	release, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatal(err)
	}
	// Two above-target sojourn observations spanning a full interval flip
	// the controller into dropping mode.
	g.noteSojourn(10 * time.Millisecond)
	clk.Advance(150 * time.Millisecond)
	g.noteSojourn(10 * time.Millisecond)
	if !g.Stats().Dropping {
		t.Fatal("sustained above-target delay must enter dropping mode")
	}
	// New bulk arrivals are now shed on sight.
	if _, err := g.Admit(context.Background(), ClassBulk); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("dropping mode: got %v, want ErrOverloaded", err)
	}
	if got := g.Stats().Shed[ReasonQueueDelay]; got != 1 {
		t.Fatalf("queue-delay shed count = %d", got)
	}
	// Control traffic is untouched by dropping mode.
	rel, err := g.Admit(context.Background(), ClassControl)
	if err != nil {
		t.Fatalf("control during dropping: %v", err)
	}
	rel()
	// A free slot (queue drained) resets the controller via the fast path.
	release()
	rel2, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatalf("post-drain admit: %v", err)
	}
	rel2()
	if g.Stats().Dropping {
		t.Fatal("a below-target observation must exit dropping mode")
	}
}

func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1})
	release, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // double release must not free a second slot
	if got := g.Stats().InFlight; got != 0 {
		t.Fatalf("in-flight after double release = %d", got)
	}
	// Exactly one slot is available again, not two.
	r1, err := g.Admit(context.Background(), ClassBulk)
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	if _, err := g.Admit(timeoutCtx(t, 20*time.Millisecond), ClassBulk); err == nil {
		t.Fatal("double release leaked an extra slot")
	}
}

// TestGateAccounting drives the gate hard from many goroutines and then
// checks the invariant the chaos suite relies on: after quiesce,
// arrivals == admitted + shed per class, and the trail carries exactly
// the shed events.
func TestGateAccounting(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 4, MaxQueue: 4, MaxWait: 5 * time.Millisecond, MaxTrail: 64})
	var wg sync.WaitGroup
	var admitted, shed atomic.Int64
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := ClassBulk
			if i%5 == 0 {
				class = ClassControl
			}
			release, err := g.Admit(context.Background(), class)
			if err != nil {
				if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrDeadlinePast) {
					t.Errorf("untyped shed error: %v", err)
				}
				shed.Add(1)
				return
			}
			admitted.Add(1)
			time.Sleep(time.Millisecond)
			release()
		}(i)
	}
	wg.Wait()
	st := g.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("not quiesced: %+v", st)
	}
	if st.ControlArrivals != st.ControlAdmitted {
		t.Fatalf("control must never shed: %+v", st)
	}
	if st.BulkArrivals != st.BulkAdmitted+st.TotalShed() {
		t.Fatalf("bulk accounting leak: arrivals %d != admitted %d + shed %d",
			st.BulkArrivals, st.BulkAdmitted, st.TotalShed())
	}
	if got := st.ControlAdmitted + st.BulkAdmitted; got != admitted.Load() {
		t.Fatalf("admitted: gate %d, observed %d", got, admitted.Load())
	}
	if st.TotalShed() != shed.Load() {
		t.Fatalf("shed: gate %d, observed %d", st.TotalShed(), shed.Load())
	}
	if got := int64(len(g.Trail())) + g.TrailDropped(); got != st.TotalShed() {
		t.Fatalf("trail %d + dropped %d != shed %d", len(g.Trail()), g.TrailDropped(), st.TotalShed())
	}
}

func timeoutCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
