// Package overload implements the dock's defenses against its own load:
// a two-class admission gate (control-plane traffic is never queued
// behind bulk migrations and mail), per-peer circuit breakers integrated
// with the health detector's liveness lattice, and token-bucket retry
// budgets that keep client retries a bounded fraction of first attempts.
//
// The package sits below transport in the dependency order (it imports
// only wire, health and telemetry) so both fabrics and every component
// can share its typed errors. The errors travel the wire as wire.Error
// codes (see CodeFor / FromCode) and are re-hydrated into the same
// sentinels on the caller's side, so errors.Is works across a hop.
package overload

import (
	"errors"
	"time"
)

// Typed sentinels. Both ErrOverloaded and ErrDeadlinePast are raised
// before the request has any effect on the server — the admission gate
// and the budget check run ahead of dispatch — so transport counts them
// as provable refusals (no ghost side effects) and clients may retry
// them freely, subject to their retry budget.
var (
	// ErrOverloaded: the admission gate shed the request (queue full,
	// queue delay above target, or a synthesized fault-injector shed).
	// Retryable after backoff.
	ErrOverloaded = errors.New("overload: server overloaded")

	// ErrDeadlinePast: the caller's propagated budget had already
	// expired when the server was about to dispatch the request, so the
	// work was shed instead of burning cycles on an answer nobody is
	// waiting for.
	ErrDeadlinePast = errors.New("overload: deadline already past")

	// ErrBreakerOpen: the per-peer circuit breaker is open; the call
	// was refused locally without touching the network.
	ErrBreakerOpen = errors.New("overload: circuit breaker open")

	// ErrRetryBudgetExhausted: the token-bucket retry budget ran dry;
	// the failed attempt is surfaced instead of amplified.
	ErrRetryBudgetExhausted = errors.New("overload: retry budget exhausted")
)

// Wire error codes for the sentinels that cross hops.
const (
	CodeOverloaded   = "overloaded"
	CodeDeadlinePast = "deadline-past"
)

// CodeFor maps a handler error onto its wire code, or "" when the error
// carries no overload semantics.
func CodeFor(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrDeadlinePast):
		return CodeDeadlinePast
	}
	return ""
}

// FromCode maps a wire error code back to its sentinel, or nil.
func FromCode(code string) error {
	switch code {
	case CodeOverloaded:
		return ErrOverloaded
	case CodeDeadlinePast:
		return ErrDeadlinePast
	}
	return nil
}

// Liveness reports whether err, for all its badness, proves the peer is
// up: an overload or deadline shed is an answer the peer composed and
// sent, so it must not feed failure suspicion or trip breakers.
func Liveness(err error) bool {
	return errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDeadlinePast)
}

// Options is the flat, flag-friendly bundle a server (or napletd) uses
// to switch the whole overload stack on. The zero value of each field
// takes the corresponding component default; a nil *Options disables
// the stack entirely (gate, breakers and budgets all stay nil, and
// every call path treats nil as "allow").
type Options struct {
	// Admission gate (see GateConfig).
	MaxInFlight   int
	MaxQueue      int
	QueueTarget   time.Duration
	QueueInterval time.Duration
	MaxWait       time.Duration

	// Circuit breaker (see BreakerConfig).
	BreakerFailures int
	BreakerOpenFor  time.Duration
	BreakerProbes   int

	// Retry budgets: tokens earned per first attempt and the bucket
	// cap. Ratio 0.1 means sustained retries are capped at ~10% of the
	// first-attempt rate.
	RetryRatio float64
	RetryBurst float64
}
