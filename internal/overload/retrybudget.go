package overload

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// RetryBudgetConfig parameterizes a token-bucket retry budget.
type RetryBudgetConfig struct {
	// Ratio is the fraction of a token each first attempt earns
	// (default 0.2): sustained retry rate can never exceed Ratio times
	// the first-attempt rate.
	Ratio float64
	// Burst is the bucket cap and its initial fill (default 10), so a
	// cold client can still ride out a short brownout.
	Burst float64
	// Name labels the exhaustion counter (e.g. "navigator",
	// "messenger") so one registry can carry several budgets.
	Name string
	// Telemetry, when set, exports the exhaustion counter and a token
	// gauge.
	Telemetry *telemetry.Registry
}

func (c RetryBudgetConfig) withDefaults() RetryBudgetConfig {
	if c.Ratio <= 0 {
		c.Ratio = 0.2
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	if c.Name == "" {
		c.Name = "client"
	}
	return c
}

// RetryBudget is a token-bucket bound on retries, after gRPC's retry
// throttling: every first attempt credits Ratio of a token, every
// retry debits a whole token, and a retry is permitted only when a
// whole token is available. The arithmetic guarantees retries are at
// most a Ratio fraction of first attempts in sustained overload —
// breaking the retry-amplification feedback loop that turns a brownout
// into congestion collapse. A nil *RetryBudget disables the bound
// (every retry allowed), which is the default everywhere: chaos and
// fault suites deliberately retry hundreds of times across crash
// windows and must keep doing so unless a budget is configured.
type RetryBudget struct {
	cfg RetryBudgetConfig

	mu     sync.Mutex
	tokens float64

	exhaustedN atomic.Int64
	exhausted  *telemetry.Counter
}

// NewRetryBudget builds a budget from cfg.
func NewRetryBudget(cfg RetryBudgetConfig) *RetryBudget {
	rb := &RetryBudget{cfg: cfg.withDefaults()}
	rb.tokens = rb.cfg.Burst
	if reg := rb.cfg.Telemetry; reg != nil {
		rb.exhausted = reg.Counter("naplet_retry_budget_exhausted_total",
			"retries refused by the token-bucket retry budget",
			"component", rb.cfg.Name)
		reg.GaugeFunc("naplet_retry_budget_tokens",
			"retry tokens currently available",
			func() float64 { return rb.Tokens() },
			"component", rb.cfg.Name)
	}
	return rb
}

// RecordAttempt credits the budget for one first attempt.
func (rb *RetryBudget) RecordAttempt() {
	if rb == nil {
		return
	}
	rb.mu.Lock()
	rb.tokens += rb.cfg.Ratio
	if rb.tokens > rb.cfg.Burst {
		rb.tokens = rb.cfg.Burst
	}
	rb.mu.Unlock()
}

// AllowRetry debits one token and reports whether the retry may
// proceed. A nil budget always allows.
func (rb *RetryBudget) AllowRetry() bool {
	if rb == nil {
		return true
	}
	rb.mu.Lock()
	ok := rb.tokens >= 1
	if ok {
		rb.tokens--
	}
	rb.mu.Unlock()
	if !ok {
		rb.exhaustedN.Add(1)
		if rb.exhausted != nil {
			rb.exhausted.Inc()
		}
	}
	return ok
}

// Exhausted reports how many retries the budget has refused.
func (rb *RetryBudget) Exhausted() int64 {
	if rb == nil {
		return 0
	}
	return rb.exhaustedN.Load()
}

// Tokens reports the current token balance.
func (rb *RetryBudget) Tokens() float64 {
	if rb == nil {
		return 0
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.tokens
}
