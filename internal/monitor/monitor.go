// Package monitor implements the NapletMonitor of §5.2: the component that
// confines naplet execution and controls resource consumption.
//
// "On receiving a naplet, the monitor creates a NapletThread object and a
// thread group for the execution of the naplet … All the threads created by
// the naplet are confined to the thread group. The group is set to a limited
// range of scheduling priorities … The monitor maintains the running state
// of the thread group and information about consumed system resources
// including CPU time, memory size, and network bandwidth. It schedules the
// execution of the naplets according to resource management policies."
//
// Go has no thread groups or preemptible priorities, so confinement is
// cooperative and explicit, mirroring the JDK design at the mechanism level:
// a Group owns a context that bounds every goroutine the naplet runs, all
// agent goroutines are launched through the group (so the monitor can join
// and kill them), resource consumption is charged against per-group budgets
// at instrumented points (the framework charges CPU time around behaviour
// calls and bandwidth at the messenger), and admission to execution slots
// goes through a priority scheduler. Policies (budgets, priorities, slot
// counts) are plain data, separated from the enforcing mechanism — the
// paper's stated design goal.
package monitor

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/id"
	"repro/internal/naplet"
	"repro/internal/telemetry"
)

// Policy bounds one naplet's resource consumption at a server.
type Policy struct {
	// MaxWallTime bounds the wall-clock duration of one visit; 0 means
	// unlimited.
	MaxWallTime time.Duration
	// MaxCPU bounds charged CPU time; 0 means unlimited.
	MaxCPU time.Duration
	// MaxMemory bounds charged memory bytes; 0 means unlimited.
	MaxMemory int64
	// MaxBandwidth bounds charged network bytes; 0 means unlimited.
	MaxBandwidth int64
	// Priority orders admission to execution slots; higher runs first.
	// The useful range is 0–9, mirroring the paper's "limited range of
	// scheduling priorities".
	Priority int
}

// Usage reports a group's consumed resources.
type Usage struct {
	CPU       time.Duration
	Memory    int64
	Bandwidth int64
	// Traps counts execution exceptions caught by the monitor.
	Traps int64
}

// GroupState is the running state the monitor maintains for a group.
type GroupState int32

// Group states.
const (
	StateRunning GroupState = iota
	StateSuspended
	StateKilled
	StateDone
)

// String returns the state name.
func (s GroupState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateKilled:
		return "killed"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("GroupState(%d)", int32(s))
	}
}

// Errors reported by the monitor.
var (
	ErrBudgetExceeded = errors.New("monitor: resource budget exceeded")
	ErrKilled         = errors.New("monitor: naplet killed")
	ErrDuplicate      = errors.New("monitor: naplet already admitted")
	ErrUnknown        = errors.New("monitor: unknown naplet")
	// ErrEvacuated interrupts a confined call because the server is
	// draining: unlike ErrKilled it is not an execution exception — the
	// visit engine moves the naplet to its next stop or home instead of
	// trapping it.
	ErrEvacuated = errors.New("monitor: naplet evacuated (server draining)")
)

// Monitor supervises the naplet groups of one server.
type Monitor struct {
	sched *Scheduler
	clock func() time.Time
	met   atomic.Pointer[monMetrics]

	mu     sync.Mutex
	groups map[string]*Group

	// killing and evacuating are sticky shutdown modes: a group admitted
	// after KillAll/EvacuateAll (a landing accepted just before the flag
	// flipped) is interrupted on admission instead of outliving the sweep.
	killing    atomic.Bool
	evacuating atomic.Bool
}

// monMetrics holds the monitor's registered telemetry handles. Every
// helper is safe on a nil receiver so uninstrumented monitors pay only a
// nil check.
type monMetrics struct {
	admissions *telemetry.Counter
	kills      *telemetry.Counter
	exhausted  *telemetry.Counter
	traps      *telemetry.Counter
}

func (mm *monMetrics) admitted() {
	if mm != nil {
		mm.admissions.Inc()
	}
}

func (mm *monMetrics) killed() {
	if mm != nil {
		mm.kills.Inc()
	}
}

func (mm *monMetrics) budgetExhausted() {
	if mm != nil {
		mm.exhausted.Inc()
	}
}

func (mm *monMetrics) trapped() {
	if mm != nil {
		mm.traps.Inc()
	}
}

// Instrument registers the monitor's counters and a resident-group gauge
// in reg.
func (m *Monitor) Instrument(reg *telemetry.Registry) {
	m.met.Store(&monMetrics{
		admissions: reg.Counter("naplet_monitor_admissions_total", "naplet groups admitted"),
		kills:      reg.Counter("naplet_monitor_kills_total", "naplet groups killed"),
		exhausted:  reg.Counter("naplet_monitor_budget_exhausted_total", "resource-budget violations (cpu/memory/bandwidth)"),
		traps:      reg.Counter("naplet_monitor_traps_total", "execution exceptions trapped"),
	})
	reg.GaugeFunc("naplet_monitor_resident_groups", "currently admitted naplet groups", func() float64 {
		return float64(m.Resident())
	})
}

// New creates a monitor with the given number of concurrent execution
// slots (≤ 0 means unlimited) and clock (nil means time.Now).
func New(slots int, clock func() time.Time) *Monitor {
	return NewWithPolicy(slots, SchedulePriority, clock)
}

// NewWithPolicy creates a monitor with an explicit scheduling policy.
func NewWithPolicy(slots int, policy SchedulingPolicy, clock func() time.Time) *Monitor {
	if clock == nil {
		clock = time.Now
	}
	return &Monitor{
		sched:  NewSchedulerWithPolicy(slots, policy),
		clock:  clock,
		groups: make(map[string]*Group),
	}
}

// Admit creates the confined group for an arriving naplet.
func (m *Monitor) Admit(nid id.NapletID, policy Policy) (*Group, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := nid.Key()
	if _, dup := m.groups[key]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, nid)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if policy.MaxWallTime > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), policy.MaxWallTime)
	}
	g := &Group{
		nid:     nid,
		policy:  policy,
		monitor: m,
		ctx:     ctx,
		cancel:  cancel,
		resume:  make(chan struct{}),
	}
	close(g.resume) // not suspended
	m.groups[key] = g
	m.met.Load().admitted()
	if m.killing.Load() {
		g.Kill()
	} else if m.evacuating.Load() {
		g.Evacuate()
	}
	return g, nil
}

// Group returns the admitted group for a naplet.
func (m *Monitor) Group(nid id.NapletID) (*Group, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[nid.Key()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknown, nid)
	}
	return g, nil
}

// Remove releases a naplet's group after departure or completion.
func (m *Monitor) Remove(nid id.NapletID) {
	m.mu.Lock()
	g, ok := m.groups[nid.Key()]
	delete(m.groups, nid.Key())
	m.mu.Unlock()
	if ok {
		g.setState(StateDone)
		g.cancel()
	}
}

// KillAll terminates every admitted group: the server is shutting down and
// resident naplets must unblock.
func (m *Monitor) KillAll() {
	m.killing.Store(true)
	m.mu.Lock()
	groups := make([]*Group, 0, len(m.groups))
	for _, g := range m.groups {
		groups = append(groups, g)
	}
	m.mu.Unlock()
	for _, g := range groups {
		g.Kill()
	}
}

// EvacuateAll interrupts every admitted group for evacuation: blocked
// confined calls unwind with ErrEvacuated so the visit engines can move
// their naplets off this draining server instead of trapping them.
func (m *Monitor) EvacuateAll() {
	m.evacuating.Store(true)
	m.mu.Lock()
	groups := make([]*Group, 0, len(m.groups))
	for _, g := range m.groups {
		groups = append(groups, g)
	}
	m.mu.Unlock()
	for _, g := range groups {
		g.Evacuate()
	}
}

// Resident returns the number of currently admitted groups.
func (m *Monitor) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.groups)
}

// Group is the confined execution environment of one naplet at one server:
// the paper's NapletThread plus thread group.
type Group struct {
	nid     id.NapletID
	policy  Policy
	monitor *Monitor
	ctx     context.Context
	cancel  context.CancelFunc

	wg sync.WaitGroup

	stateMu sync.Mutex
	state   GroupState
	resume  chan struct{} // closed when running; replaced open on suspend

	cpu       atomic.Int64 // nanoseconds
	mem       atomic.Int64
	bw        atomic.Int64
	traps     atomic.Int64
	killed    atomic.Bool
	evacuated atomic.Bool

	interruptMu sync.Mutex
	onInterrupt func(naplet.Message)
	pendingIntr []naplet.Message
}

// maxPendingInterrupts bounds interrupts queued before a handler exists.
const maxPendingInterrupts = 16

// ID returns the naplet the group confines.
func (g *Group) ID() id.NapletID { return g.nid }

// Policy returns the group's resource policy.
func (g *Group) Policy() Policy { return g.policy }

// Context returns the context bounding every goroutine of the group.
func (g *Group) Context() context.Context { return g.ctx }

// State returns the group's running state.
func (g *Group) State() GroupState {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	return g.state
}

func (g *Group) setState(s GroupState) {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	if g.state == StateKilled || g.state == StateDone {
		return // terminal
	}
	g.state = s
}

// Usage returns the group's consumed resources.
func (g *Group) Usage() Usage {
	return Usage{
		CPU:       time.Duration(g.cpu.Load()),
		Memory:    g.mem.Load(),
		Bandwidth: g.bw.Load(),
		Traps:     g.traps.Load(),
	}
}

// Run executes f as the naplet's main activity: it waits for an execution
// slot (by priority), confines the call, traps panics as execution
// exceptions, and charges wall time as CPU time. It is the monitor-side of
// the paper's "sets traps for its execution exceptions".
func (g *Group) Run(f func(ctx context.Context) error) (err error) {
	if err := g.monitor.sched.Acquire(g.ctx, g.policy.Priority); err != nil {
		if g.evacuating() {
			return ErrEvacuated
		}
		return err
	}
	defer g.monitor.sched.Release()
	return g.confined(f)
}

// Go launches an auxiliary goroutine confined to the group ("all the
// threads created by the naplet are confined to the thread group"). Its
// error, if any, is trapped and counted.
func (g *Group) Go(f func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		// Panics are trapped and counted inside confined; plain errors from
		// auxiliary goroutines are the naplet's own business.
		_ = g.confined(f)
	}()
}

// Join waits for all auxiliary goroutines of the group.
func (g *Group) Join() { g.wg.Wait() }

// confined runs f with panic trapping, suspension gating, and CPU charging.
func (g *Group) confined(f func(ctx context.Context) error) (err error) {
	if g.evacuating() {
		return ErrEvacuated
	}
	if err := g.waitResumed(); err != nil {
		if g.evacuating() {
			return ErrEvacuated
		}
		return err
	}
	start := g.monitor.clock()
	defer func() {
		if r := recover(); r != nil {
			g.traps.Add(1)
			g.monitor.met.Load().trapped()
			err = fmt.Errorf("monitor: trapped naplet panic: %v", r)
		}
		elapsed := g.monitor.clock().Sub(start)
		if elapsed > 0 {
			if cerr := g.ChargeCPU(elapsed); cerr != nil && err == nil {
				err = cerr
			}
		}
		// An error produced by the evacuation cancel (a ctx-aware wait
		// unwinding) is an evacuation, not an execution exception.
		if err != nil && g.evacuating() {
			err = ErrEvacuated
		}
	}()
	if g.killed.Load() {
		return ErrKilled
	}
	return f(g.ctx)
}

// evacuating reports whether the group is unwinding for evacuation (a kill
// still wins over an evacuation).
func (g *Group) evacuating() bool {
	return g.evacuated.Load() && !g.killed.Load()
}

// waitResumed blocks while the group is suspended.
func (g *Group) waitResumed() error {
	for {
		g.stateMu.Lock()
		ch := g.resume
		g.stateMu.Unlock()
		select {
		case <-ch:
			return nil
		case <-g.ctx.Done():
			return g.ctx.Err()
		}
	}
}

// Checkpoint is the cooperative preemption point: long-running behaviours
// call it periodically. It blocks while suspended and reports termination.
func (g *Group) Checkpoint() error {
	if g.killed.Load() {
		return ErrKilled
	}
	if g.evacuated.Load() {
		return ErrEvacuated
	}
	if err := g.ctx.Err(); err != nil {
		return err
	}
	return g.waitResumed()
}

// charge adds amount to a counter and kills the group when the limit (if
// nonzero) is exceeded.
func (g *Group) charge(counter *atomic.Int64, amount, limit int64, what string) error {
	total := counter.Add(amount)
	if limit > 0 && total > limit {
		g.monitor.met.Load().budgetExhausted()
		g.Kill()
		return fmt.Errorf("%w: %s %d > %d", ErrBudgetExceeded, what, total, limit)
	}
	return nil
}

// ChargeCPU charges CPU time against the group's budget.
func (g *Group) ChargeCPU(d time.Duration) error {
	return g.charge(&g.cpu, int64(d), int64(g.policy.MaxCPU), "cpu")
}

// ChargeMemory charges memory bytes against the group's budget.
func (g *Group) ChargeMemory(n int64) error {
	return g.charge(&g.mem, n, g.policy.MaxMemory, "memory")
}

// ChargeBandwidth charges network bytes against the group's budget.
func (g *Group) ChargeBandwidth(n int64) error {
	return g.charge(&g.bw, n, g.policy.MaxBandwidth, "bandwidth")
}

// Kill terminates the group: its context is cancelled and every confined
// call fails from now on.
func (g *Group) Kill() {
	if g.killed.Swap(true) {
		return
	}
	g.monitor.met.Load().killed()
	g.stateMu.Lock()
	g.state = StateKilled
	g.stateMu.Unlock()
	g.cancel()
}

// Evacuate interrupts the group for a server drain: its context is
// cancelled so blocked confined calls unwind, but instead of ErrKilled
// they (and subsequent checkpoints) report ErrEvacuated, which the visit
// engine turns into a migration rather than a trap. A suspended group is
// resumed first — a drain must not wait on a suspension that may never be
// lifted.
func (g *Group) Evacuate() {
	if g.evacuated.Swap(true) {
		return
	}
	g.Resume()
	g.cancel()
}

// Suspend pauses the group: confined calls and checkpoints block until
// Resume.
func (g *Group) Suspend() {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	if g.state != StateRunning {
		return
	}
	g.state = StateSuspended
	g.resume = make(chan struct{})
}

// Resume releases a suspended group.
func (g *Group) Resume() {
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	if g.state != StateSuspended {
		return
	}
	g.state = StateRunning
	close(g.resume)
}

// SetInterruptHandler installs the function invoked when a system message
// is cast onto the naplet (§2.2: "On receiving a system message, the
// Messenger casts an interrupt onto the running naplet thread").
// Interrupts that arrived before a handler existed (a control message can
// race the naplet's landing) are delivered immediately.
func (g *Group) SetInterruptHandler(h func(naplet.Message)) {
	g.interruptMu.Lock()
	g.onInterrupt = h
	pending := g.pendingIntr
	g.pendingIntr = nil
	g.interruptMu.Unlock()
	if h == nil {
		return
	}
	for _, msg := range pending {
		g.dispatchInterrupt(h, msg)
	}
}

// Interrupt casts a system message onto the group. The handler runs in a
// confined goroutine; without a handler the built-in verbs still act
// (terminate kills, suspend pauses, resume releases).
func (g *Group) Interrupt(msg naplet.Message) {
	switch msg.Control {
	case naplet.ControlTerminate:
		g.Kill()
		return
	case naplet.ControlSuspend:
		g.Suspend()
		return
	case naplet.ControlResume:
		g.Resume()
		return
	}
	g.interruptMu.Lock()
	h := g.onInterrupt
	if h == nil {
		// No handler yet: hold the interrupt for SetInterruptHandler (the
		// control message raced the naplet's landing).
		if len(g.pendingIntr) < maxPendingInterrupts {
			g.pendingIntr = append(g.pendingIntr, msg)
		}
		g.interruptMu.Unlock()
		return
	}
	g.interruptMu.Unlock()
	g.dispatchInterrupt(h, msg)
}

// dispatchInterrupt runs the handler in a confined goroutine with panic
// trapping.
func (g *Group) dispatchInterrupt(h func(naplet.Message), msg naplet.Message) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.traps.Add(1)
				g.monitor.met.Load().trapped()
			}
		}()
		h(msg)
	}()
}

// SchedulingPolicy orders waiting naplets for execution slots. The paper
// defers "various scheduling policies" to future releases; the mechanism
// here accepts any ordering.
type SchedulingPolicy int

// Scheduling policies.
const (
	// SchedulePriority wakes the highest-priority waiter first, FIFO
	// within a priority class (the default).
	SchedulePriority SchedulingPolicy = iota
	// ScheduleFIFO ignores priorities: strict arrival order.
	ScheduleFIFO
)

// String returns the policy name.
func (p SchedulingPolicy) String() string {
	if p == ScheduleFIFO {
		return "fifo"
	}
	return "priority"
}

// Scheduler is a policy-ordered counting semaphore: it admits at most
// capacity concurrent naplet executions and wakes waiters in policy order
// ("it schedules the execution of the naplets according to resource
// management policies", §5.2).
type Scheduler struct {
	mu       sync.Mutex
	capacity int
	policy   SchedulingPolicy
	running  int
	waiters  waiterHeap
	order    uint64
}

// NewScheduler builds a priority scheduler with the given slot count;
// capacity ≤ 0 means unlimited.
func NewScheduler(capacity int) *Scheduler {
	return &Scheduler{capacity: capacity}
}

// NewSchedulerWithPolicy builds a scheduler with an explicit policy.
func NewSchedulerWithPolicy(capacity int, policy SchedulingPolicy) *Scheduler {
	return &Scheduler{capacity: capacity, policy: policy}
}

type waiter struct {
	priority int
	fifo     bool
	order    uint64 // FIFO within a priority
	ready    chan struct{}
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].fifo && h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].order < h[j].order
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() any     { old := *h; n := len(old); w := old[n-1]; *h = old[:n-1]; return w }

// remove drops a waiter by identity (context cancellation while queued).
func (h *waiterHeap) remove(w *waiter) {
	for i, x := range *h {
		if x == w {
			heap.Remove(h, i)
			return
		}
	}
}

// Acquire obtains an execution slot, blocking by priority order.
func (s *Scheduler) Acquire(ctx context.Context, priority int) error {
	if s.capacity <= 0 {
		return ctx.Err()
	}
	s.mu.Lock()
	if s.running < s.capacity && s.waiters.Len() == 0 {
		s.running++
		s.mu.Unlock()
		return nil
	}
	w := &waiter{priority: priority, fifo: s.policy == ScheduleFIFO, order: s.order, ready: make(chan struct{})}
	s.order++
	heap.Push(&s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		// Either we raced a grant (ready closed) or we must dequeue.
		select {
		case <-w.ready:
			// Slot was granted concurrently; give it back.
			s.release()
		default:
			s.waiters.remove(w)
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns an execution slot and wakes the best waiter.
func (s *Scheduler) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.release()
}

// release must run with s.mu held.
func (s *Scheduler) release() {
	if s.capacity <= 0 {
		return
	}
	if s.waiters.Len() > 0 {
		w := heap.Pop(&s.waiters).(*waiter)
		close(w.ready) // slot transfers to the waiter; running unchanged
		return
	}
	if s.running > 0 {
		s.running--
	}
}

// Running reports the number of held slots (for tests and introspection).
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}
