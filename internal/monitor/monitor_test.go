package monitor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/naplet"
)

var t0 = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)

func nid(t *testing.T, owner string) id.NapletID {
	t.Helper()
	return id.MustNew(owner, "home", t0)
}

func TestAdmitRunRemove(t *testing.T) {
	m := New(0, nil)
	g, err := m.Admit(nid(t, "a"), Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Resident() != 1 {
		t.Fatal("resident count")
	}
	ran := false
	if err := g.Run(func(ctx context.Context) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("Run must execute f")
	}
	m.Remove(g.ID())
	if m.Resident() != 0 {
		t.Fatal("resident after remove")
	}
	if g.State() != StateDone {
		t.Fatalf("state = %v", g.State())
	}
	if _, err := m.Group(nid(t, "a")); !errors.Is(err, ErrUnknown) {
		t.Fatal("removed group still known")
	}
}

func TestAdmitDuplicate(t *testing.T) {
	m := New(0, nil)
	m.Admit(nid(t, "a"), Policy{})
	if _, err := m.Admit(nid(t, "a"), Policy{}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
}

func TestPanicTrapped(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{})
	err := g.Run(func(ctx context.Context) error { panic("naplet bug") })
	if err == nil {
		t.Fatal("panic must surface as error")
	}
	if g.Usage().Traps != 1 {
		t.Fatalf("traps = %d", g.Usage().Traps)
	}
}

func TestCPUBudgetKills(t *testing.T) {
	now := t0
	clock := func() time.Time { return now }
	m := New(0, clock)
	g, _ := m.Admit(nid(t, "a"), Policy{MaxCPU: 10 * time.Millisecond})
	err := g.Run(func(ctx context.Context) error {
		now = now.Add(time.Second) // simulated heavy burn
		return nil
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if g.State() != StateKilled {
		t.Fatalf("state = %v", g.State())
	}
	// Further confined calls must fail.
	if err := g.Run(func(ctx context.Context) error { return nil }); err == nil {
		t.Fatal("killed group must refuse to run")
	}
}

func TestMemoryAndBandwidthBudgets(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{MaxMemory: 100, MaxBandwidth: 50})
	if err := g.ChargeMemory(60); err != nil {
		t.Fatal(err)
	}
	if err := g.ChargeMemory(60); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("memory budget: %v", err)
	}
	g2, _ := m.Admit(nid(t, "b"), Policy{MaxBandwidth: 50})
	if err := g2.ChargeBandwidth(51); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("bandwidth budget: %v", err)
	}
	if g2.State() != StateKilled {
		t.Fatal("budget violation must kill")
	}
}

func TestUnlimitedBudgets(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{})
	if err := g.ChargeMemory(1 << 40); err != nil {
		t.Fatal("zero limit means unlimited")
	}
	if err := g.ChargeCPU(time.Hour); err != nil {
		t.Fatal("zero limit means unlimited")
	}
	u := g.Usage()
	if u.Memory != 1<<40 || u.CPU != time.Hour {
		t.Fatalf("usage = %+v", u)
	}
}

func TestWallTimeLimit(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{MaxWallTime: 20 * time.Millisecond})
	err := g.Run(func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestSuspendResume(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{})
	g.Suspend()
	if g.State() != StateSuspended {
		t.Fatal("state after suspend")
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		done <- g.Run(func(ctx context.Context) error { return nil })
	}()
	<-started
	select {
	case <-done:
		t.Fatal("suspended group must not run")
	case <-time.After(30 * time.Millisecond):
	}
	g.Resume()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if g.State() != StateRunning {
		t.Fatal("state after resume")
	}
}

func TestCheckpoint(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{})
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	g.Kill()
	if err := g.Checkpoint(); !errors.Is(err, ErrKilled) {
		t.Fatalf("checkpoint after kill: %v", err)
	}
}

func TestGoConfinedAndJoin(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{})
	var ran atomic.Int32
	for i := 0; i < 5; i++ {
		g.Go(func(ctx context.Context) error { ran.Add(1); return nil })
	}
	g.Go(func(ctx context.Context) error { panic("aux bug") })
	g.Join()
	if ran.Load() != 5 {
		t.Fatalf("ran = %d", ran.Load())
	}
	if g.Usage().Traps != 1 {
		t.Fatalf("aux panic not trapped: %d", g.Usage().Traps)
	}
}

func TestInterruptVerbs(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{})

	g.Interrupt(naplet.Message{Class: naplet.SystemMessage, Control: naplet.ControlSuspend})
	if g.State() != StateSuspended {
		t.Fatal("suspend verb")
	}
	g.Interrupt(naplet.Message{Class: naplet.SystemMessage, Control: naplet.ControlResume})
	if g.State() != StateRunning {
		t.Fatal("resume verb")
	}
	g.Interrupt(naplet.Message{Class: naplet.SystemMessage, Control: naplet.ControlTerminate})
	if g.State() != StateKilled {
		t.Fatal("terminate verb")
	}
}

func TestInterruptHandlerInvoked(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{})
	got := make(chan naplet.Message, 1)
	g.SetInterruptHandler(func(msg naplet.Message) { got <- msg })
	g.Interrupt(naplet.Message{Class: naplet.SystemMessage, Control: naplet.ControlCallback, Subject: "ping"})
	select {
	case msg := <-got:
		if msg.Subject != "ping" {
			t.Fatalf("msg = %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("handler not invoked")
	}
	// Handler panic is trapped, not fatal.
	g.SetInterruptHandler(func(msg naplet.Message) { panic("handler bug") })
	g.Interrupt(naplet.Message{Class: naplet.SystemMessage, Control: naplet.ControlCallback})
	g.Join()
	if g.Usage().Traps != 1 {
		t.Fatalf("traps = %d", g.Usage().Traps)
	}
	// Without a handler, custom verbs queue and deliver once a handler is
	// installed (a control message can race the naplet's landing).
	g.SetInterruptHandler(nil)
	g.Interrupt(naplet.Message{Class: naplet.SystemMessage, Control: naplet.ControlCallback, Subject: "early"})
	late := make(chan naplet.Message, 1)
	g.SetInterruptHandler(func(msg naplet.Message) { late <- msg })
	select {
	case msg := <-late:
		if msg.Subject != "early" {
			t.Fatalf("queued interrupt = %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("queued interrupt never delivered")
	}
}

func TestSchedulerLimitsConcurrency(t *testing.T) {
	m := New(2, nil)
	var cur, max atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		g, err := m.Admit(nid(t, fmt.Sprintf("u%d", i)), Policy{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Run(func(ctx context.Context) error {
				c := cur.Add(1)
				for {
					old := max.Load()
					if c <= old || max.CompareAndSwap(old, c) {
						break
					}
				}
				time.Sleep(10 * time.Millisecond)
				cur.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if max.Load() > 2 {
		t.Fatalf("max concurrency = %d, want ≤ 2", max.Load())
	}
}

func TestSchedulerPriorityOrder(t *testing.T) {
	s := NewScheduler(1)
	if err := s.Acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	type grant struct{ prio int }
	grants := make(chan grant, 3)
	var ready sync.WaitGroup
	for _, prio := range []int{1, 9, 5} {
		ready.Add(1)
		go func(p int) {
			ready.Done()
			if err := s.Acquire(context.Background(), p); err != nil {
				t.Error(err)
				return
			}
			grants <- grant{prio: p}
		}(prio)
	}
	ready.Wait()
	time.Sleep(20 * time.Millisecond) // let all three enqueue

	var order []int
	for i := 0; i < 3; i++ {
		s.Release()
		g := <-grants
		order = append(order, g.prio)
	}
	s.Release()
	if order[0] != 9 || order[1] != 5 || order[2] != 1 {
		t.Fatalf("grant order = %v, want [9 5 1]", order)
	}
}

func TestSchedulerAcquireCancelled(t *testing.T) {
	s := NewScheduler(1)
	s.Acquire(context.Background(), 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Acquire(ctx, 0) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	// The slot must still be usable.
	s.Release()
	if err := s.Acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if s.Running() != 1 {
		t.Fatalf("running = %d", s.Running())
	}
}

func TestSchedulerUnlimited(t *testing.T) {
	s := NewScheduler(0)
	for i := 0; i < 100; i++ {
		if err := s.Acquire(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Release() // no-op, must not underflow
}

func TestKillIdempotentAndStateTerminal(t *testing.T) {
	m := New(0, nil)
	g, _ := m.Admit(nid(t, "a"), Policy{})
	g.Kill()
	g.Kill()
	if g.State() != StateKilled {
		t.Fatal("state after double kill")
	}
	g.Suspend() // must not override terminal state
	if g.State() != StateKilled {
		t.Fatal("suspend after kill must be ignored")
	}
	g.Resume()
	if g.State() != StateKilled {
		t.Fatal("resume after kill must be ignored")
	}
}

func TestGroupStateString(t *testing.T) {
	names := map[GroupState]string{
		StateRunning: "running", StateSuspended: "suspended",
		StateKilled: "killed", StateDone: "done",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if GroupState(42).String() != "GroupState(42)" {
		t.Fatal("unknown state formatting")
	}
}

func TestSchedulerFIFOPolicyIgnoresPriority(t *testing.T) {
	s := NewSchedulerWithPolicy(1, ScheduleFIFO)
	if err := s.Acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	grants := make(chan int, 3)
	for _, prio := range []int{1, 9, 5} {
		p := prio
		go func() {
			if err := s.Acquire(context.Background(), p); err != nil {
				t.Error(err)
				return
			}
			grants <- p
		}()
		// Serialize arrival order so FIFO order is deterministic.
		time.Sleep(20 * time.Millisecond)
	}
	var order []int
	for i := 0; i < 3; i++ {
		s.Release()
		order = append(order, <-grants)
	}
	if order[0] != 1 || order[1] != 9 || order[2] != 5 {
		t.Fatalf("FIFO grant order = %v, want arrival order [1 9 5]", order)
	}
}

func TestSchedulingPolicyString(t *testing.T) {
	if SchedulePriority.String() != "priority" || ScheduleFIFO.String() != "fifo" {
		t.Fatal("policy names")
	}
}

func TestNewWithPolicyWiresScheduler(t *testing.T) {
	m := NewWithPolicy(1, ScheduleFIFO, nil)
	g, err := m.Admit(nid(t, "x"), Policy{Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(func(ctx context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
