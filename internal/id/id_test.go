package id

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)

func TestNewAndString(t *testing.T) {
	nid := MustNew("czxu", "ece.eng.wayne.edu", t0)
	want := "czxu@ece.eng.wayne.edu:010512172720"
	if got := nid.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if nid.Owner() != "czxu" || nid.Host() != "ece.eng.wayne.edu" {
		t.Fatalf("owner/host mismatch: %q %q", nid.Owner(), nid.Host())
	}
	if !nid.Created().Equal(t0) {
		t.Fatalf("created = %v, want %v", nid.Created(), t0)
	}
}

func TestNewRejectsBadPrincipals(t *testing.T) {
	cases := []struct{ owner, host string }{
		{"", "h"},
		{"o", ""},
		{"a@b", "h"},
		{"a:b", "h"},
		{"o", "h@x"},
		{"o", "h:x"},
	}
	for _, c := range cases {
		if _, err := New(c.owner, c.host, t0); err == nil {
			t.Errorf("New(%q, %q) accepted invalid principal", c.owner, c.host)
		}
	}
}

func TestPaperExampleCloneID(t *testing.T) {
	// The paper's example: czxu@ece.eng.wayne.edu:010512172720:2.1 is the
	// naplet cloned from the original created by czxu at 17:27:20 May 12 2001.
	nid, err := Parse("czxu@ece.eng.wayne.edu:010512172720:2.1")
	if err != nil {
		t.Fatal(err)
	}
	if got := nid.Heritage().String(); got != "2.1" {
		t.Fatalf("heritage = %q, want 2.1", got)
	}
	if nid.IsOriginal() {
		t.Fatal("2.1 must not be original")
	}
	root := nid.Root()
	if root.String() != "czxu@ece.eng.wayne.edu:010512172720" {
		t.Fatalf("root = %q", root.String())
	}
	if !root.SameLineage(nid) {
		t.Fatal("root should share lineage with clone")
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"czxu@ece.eng.wayne.edu:010512172720",
		"czxu@ece.eng.wayne.edu:010512172720:0",
		"czxu@ece.eng.wayne.edu:010512172720:2.0",
		"czxu@ece.eng.wayne.edu:010512172720:2.1",
		"czxu@ece.eng.wayne.edu:010512172720:2.2",
		"alice@node1:260704120000:1.2.3.4",
	}
	for _, in := range inputs {
		nid, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if out := nid.String(); out != in {
			t.Errorf("round trip %q -> %q", in, out)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"noatsign",
		"@host:010512172720",
		"user@:010512172720",
		"user@host",
		"user@host:notatime",
		"user@host:010512172720:x",
		"user@host:010512172720:1..2",
		"user@host:010512172720:-1",
		"user@host:010512172720:1:2",
		"user@host:010512172720:01", // leading zero component
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestCloneHeritage(t *testing.T) {
	orig := MustNew("czxu", "ece", t0)
	c1, err := orig.Clone(1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := orig.Clone(2)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Heritage().String() != "1" || c2.Heritage().String() != "2" {
		t.Fatalf("clone heritages %q %q", c1.Heritage(), c2.Heritage())
	}
	// Recursive clone, as Figure 1: 2.0, 2.1, 2.2 belong to generation 2.
	g1, _ := c2.Clone(1)
	g2, _ := c2.Clone(2)
	if g1.String() != "czxu@ece:010512172720:2.1" {
		t.Fatalf("g1 = %q", g1)
	}
	if g2.String() != "czxu@ece:010512172720:2.2" {
		t.Fatalf("g2 = %q", g2)
	}
	if got := g1.Originator().Heritage().String(); got != "2.0" {
		t.Fatalf("originator of 2.1 = %q, want 2.0", got)
	}
	if !c2.Heritage().IsAncestorOf(g1.Heritage()) {
		t.Fatal("2 should be ancestor of 2.1")
	}
	if g1.Heritage().IsAncestorOf(c2.Heritage()) {
		t.Fatal("2.1 must not be ancestor of 2")
	}
	if _, err := orig.Clone(0); err == nil {
		t.Fatal("Clone(0) should be rejected; 0 is reserved for the originator")
	}
}

func TestCloneDoesNotMutateParent(t *testing.T) {
	orig := MustNew("u", "h", t0)
	c, _ := orig.Clone(3)
	cc, _ := c.Clone(1)
	if c.Heritage().String() != "3" {
		t.Fatalf("parent heritage mutated: %q", c.Heritage())
	}
	if cc.Heritage().String() != "3.1" {
		t.Fatalf("grandchild heritage: %q", cc.Heritage())
	}
	// Mutating the returned heritage slice must not affect the ID.
	h := c.Heritage()
	h[0] = 99
	if c.Heritage().String() != "3" {
		t.Fatal("Heritage() leaked internal slice")
	}
}

func TestHeritageOps(t *testing.T) {
	h, err := ParseHeritage("2.1.3")
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 3 {
		t.Fatalf("depth = %d", h.Depth())
	}
	p, ok := h.Parent()
	if !ok || p.String() != "2.1" {
		t.Fatalf("parent = %q ok=%v", p, ok)
	}
	if _, ok := Heritage(nil).Parent(); ok {
		t.Fatal("empty heritage has no parent")
	}
	if h.Compare(p) != 1 || p.Compare(h) != -1 || h.Compare(h) != 0 {
		t.Fatal("Compare ordering broken")
	}
	a, _ := ParseHeritage("1.5")
	b, _ := ParseHeritage("2")
	if a.Compare(b) != -1 {
		t.Fatal("1.5 should sort before 2")
	}
}

func TestOriginatorAndIsOriginal(t *testing.T) {
	orig := MustNew("u", "h", t0)
	if !orig.IsOriginal() {
		t.Fatal("fresh ID must be original")
	}
	z, _ := Parse("u@h:010512172720:0.0")
	if !z.IsOriginal() {
		t.Fatal("all-zero heritage names originators")
	}
	c, _ := orig.Clone(2)
	if c.IsOriginal() {
		t.Fatal("clone 2 is not original")
	}
	if got := orig.Originator(); !got.Equal(orig) {
		t.Fatal("originator of original should be itself")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := MustNew("u", "h", t0)
	b := MustNew("u", "h", t0)
	if !a.Equal(b) {
		t.Fatal("identical IDs must be equal")
	}
	c, _ := a.Clone(1)
	if a.Equal(c) {
		t.Fatal("clone must differ from parent")
	}
	if a.Key() != a.String() {
		t.Fatal("Key must equal String")
	}
	d := MustNew("u", "h", t0.Add(time.Second))
	if a.SameLineage(d) {
		t.Fatal("different creation times are different lineages")
	}
}

func TestMarshalText(t *testing.T) {
	orig, _ := Parse("czxu@ece:010512172720:2.1")
	text, err := orig.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back NapletID
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Fatalf("text round trip mismatch: %v vs %v", back, orig)
	}
	if err := back.UnmarshalText([]byte("garbage")); err == nil {
		t.Fatal("UnmarshalText should reject garbage")
	}
}

func TestIsZero(t *testing.T) {
	var z NapletID
	if !z.IsZero() {
		t.Fatal("zero value must report IsZero")
	}
	if MustNew("u", "h", t0).IsZero() {
		t.Fatal("real ID must not be zero")
	}
}

func TestGeneratorUniqueness(t *testing.T) {
	// A frozen clock still yields unique IDs: the generator advances the
	// timestamp when needed.
	fixed := func() time.Time { return t0 }
	g, err := NewGenerator("czxu", "ece", fixed)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		nid := g.Next()
		if seen[nid.Key()] {
			t.Fatalf("duplicate ID %v at i=%d", nid, i)
		}
		seen[nid.Key()] = true
	}
}

func TestGeneratorRejectsBadPrincipal(t *testing.T) {
	if _, err := NewGenerator("a@b", "h", nil); err == nil {
		t.Fatal("bad owner accepted")
	}
}

func TestGeneratorMonotonic(t *testing.T) {
	now := t0
	g, _ := NewGenerator("u", "h", func() time.Time { return now })
	a := g.Next()
	now = now.Add(10 * time.Second)
	b := g.Next()
	if !b.Created().After(a.Created()) {
		t.Fatal("generator must be monotonic")
	}
}

// randomHeritage generates heritages for property tests.
func randomHeritage(r *rand.Rand) Heritage {
	n := r.Intn(6)
	h := make(Heritage, n)
	for i := range h {
		h[i] = r.Intn(10)
	}
	return h
}

func TestPropHeritageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHeritage(r)
		back, err := ParseHeritage(h.String())
		if err != nil {
			return false
		}
		return back.Equal(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropIDStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		owner := "u" + strings.Repeat("x", r.Intn(5))
		host := "h" + strings.Repeat("y", r.Intn(5))
		// The textual YYMMDDhhmmss form is century-ambiguous; stay within
		// the range that round-trips (Go maps 2-digit years 00-68 to 20xx).
		base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
		created := base.Add(time.Duration(r.Int63n(int64(68 * 365 * 24 * time.Hour))))
		nid := MustNew(owner, host, created)
		nid.heritage = randomHeritage(r)
		back, err := Parse(nid.String())
		if err != nil {
			return false
		}
		return back.Equal(nid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCloneAncestry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nid := MustNew("u", "h", t0)
		cur := nid
		depth := 1 + r.Intn(5)
		for i := 0; i < depth; i++ {
			next, err := cur.Clone(1 + r.Intn(4))
			if err != nil {
				return false
			}
			// Parent heritage must be a proper ancestor of child heritage.
			if !cur.Heritage().Equal(nil) && !cur.Heritage().IsAncestorOf(next.Heritage()) {
				return false
			}
			if next.Heritage().Depth() != cur.Heritage().Depth()+1 {
				return false
			}
			if !next.SameLineage(nid) {
				return false
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeritageValueSemantics(t *testing.T) {
	h, _ := ParseHeritage("1.2")
	c := h.Child(3)
	if !reflect.DeepEqual(c, Heritage{1, 2, 3}) {
		t.Fatalf("child = %v", c)
	}
	if !reflect.DeepEqual(h, Heritage{1, 2}) {
		t.Fatalf("parent mutated: %v", h)
	}
}

func TestGobRoundTripIncludingZero(t *testing.T) {
	type box struct{ ID NapletID }
	cases := []NapletID{{}, MustNew("u", "h", t0)}
	c2, _ := cases[1].Clone(2)
	cases = append(cases, c2)
	for _, in := range cases {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(box{ID: in}); err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		var out box
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if !out.ID.Equal(in) {
			t.Fatalf("gob round trip: %v != %v", out.ID, in)
		}
	}
}
