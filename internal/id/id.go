// Package id implements the hierarchical naplet identifier described in
// §2.1 and Figure 1 of the Naplet paper.
//
// A naplet identifier records who created the naplet, when, and where, plus
// the clone heritage of the naplet. The textual form is
//
//	owner@host:timestamp:heritage
//
// for example
//
//	czxu@ece.eng.wayne.edu:010512172720:2.1
//
// which denotes the first clone (suffix .1) of the naplet numbered 2 in its
// generation, created by user czxu on host ece.eng.wayne.edu at 17:27:20 on
// May 12, 2001. The heritage is a dot-separated sequence of non-negative
// integers; by convention 0 names the originator within a generation, so a
// clone of X with heritage H receives heritage H.k for the next unused k ≥ 1,
// and X itself is retroactively understood as H.0 if one more generation is
// needed. Identifiers are immutable once created.
package id

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// TimeLayout is the timestamp layout used in the textual form of a NapletID.
// It follows the paper's example "010512172720": YYMMDDhhmmss.
const TimeLayout = "060102150405"

// Heritage encodes the clone lineage of a naplet as a sequence of
// non-negative integers (Figure 1). The empty heritage belongs to an
// original, never-cloned naplet. Heritage values are treated as immutable;
// operations return fresh slices.
type Heritage []int

// ParseHeritage parses a dot-separated heritage string such as "2.1".
// The empty string parses to the empty heritage.
func ParseHeritage(s string) (Heritage, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	h := make(Heritage, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || (len(p) > 1 && p[0] == '0') {
			return nil, fmt.Errorf("id: invalid heritage component %q in %q", p, s)
		}
		h[i] = n
	}
	return h, nil
}

// String renders the heritage in its dot-separated textual form.
func (h Heritage) String() string {
	if len(h) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range h {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(n))
	}
	return b.String()
}

// Depth reports the number of generations recorded in the heritage. An
// original naplet has depth 0.
func (h Heritage) Depth() int { return len(h) }

// Child returns the heritage of the k-th clone descended from h.
func (h Heritage) Child(k int) Heritage {
	c := make(Heritage, len(h)+1)
	copy(c, h)
	c[len(h)] = k
	return c
}

// Parent returns the heritage one generation up, and false if h is already
// the root (empty) heritage.
func (h Heritage) Parent() (Heritage, bool) {
	if len(h) == 0 {
		return nil, false
	}
	p := make(Heritage, len(h)-1)
	copy(p, h[:len(h)-1])
	return p, true
}

// IsAncestorOf reports whether h is a proper ancestor of other in the clone
// tree: h is a strict prefix of other.
func (h Heritage) IsAncestorOf(other Heritage) bool {
	if len(h) >= len(other) {
		return false
	}
	for i, n := range h {
		if other[i] != n {
			return false
		}
	}
	return true
}

// Equal reports whether two heritages denote the same lineage position.
func (h Heritage) Equal(other Heritage) bool {
	if len(h) != len(other) {
		return false
	}
	for i, n := range h {
		if other[i] != n {
			return false
		}
	}
	return true
}

// Compare orders heritages lexicographically, with shorter prefixes first.
// It returns -1, 0, or +1.
func (h Heritage) Compare(other Heritage) int {
	for i := 0; i < len(h) && i < len(other); i++ {
		switch {
		case h[i] < other[i]:
			return -1
		case h[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(h) < len(other):
		return -1
	case len(h) > len(other):
		return 1
	}
	return 0
}

// NapletID is the system-wide unique, immutable identifier of a naplet
// (§2.1). It is a value type; all accessors return copies so the identifier
// cannot be mutated after creation.
type NapletID struct {
	owner    string
	host     string
	created  time.Time
	heritage Heritage
}

// ErrMalformed is returned by Parse for strings that do not follow the
// owner@host:timestamp[:heritage] grammar.
var ErrMalformed = errors.New("id: malformed naplet identifier")

// New creates the identifier of an original (never cloned) naplet created by
// owner on host at the given time. The time is truncated to second precision
// to match the textual form.
func New(owner, host string, created time.Time) (NapletID, error) {
	if owner == "" || strings.ContainsAny(owner, "@:") {
		return NapletID{}, fmt.Errorf("%w: bad owner %q", ErrMalformed, owner)
	}
	if host == "" || strings.ContainsAny(host, "@:") {
		return NapletID{}, fmt.Errorf("%w: bad host %q", ErrMalformed, host)
	}
	return NapletID{owner: owner, host: host, created: created.UTC().Truncate(time.Second)}, nil
}

// MustNew is like New but panics on error. It is intended for tests and for
// identifiers built from compile-time constants.
func MustNew(owner, host string, created time.Time) NapletID {
	nid, err := New(owner, host, created)
	if err != nil {
		panic(err)
	}
	return nid
}

// Parse parses the textual form owner@host:timestamp[:heritage].
func Parse(s string) (NapletID, error) {
	at := strings.IndexByte(s, '@')
	if at <= 0 {
		return NapletID{}, fmt.Errorf("%w: %q", ErrMalformed, s)
	}
	owner := s[:at]
	rest := s[at+1:]
	parts := strings.Split(rest, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return NapletID{}, fmt.Errorf("%w: %q", ErrMalformed, s)
	}
	host := parts[0]
	if host == "" {
		return NapletID{}, fmt.Errorf("%w: empty host in %q", ErrMalformed, s)
	}
	created, err := time.ParseInLocation(TimeLayout, parts[1], time.UTC)
	if err != nil {
		return NapletID{}, fmt.Errorf("%w: bad timestamp in %q: %v", ErrMalformed, s, err)
	}
	var h Heritage
	if len(parts) == 3 {
		h, err = ParseHeritage(parts[2])
		if err != nil {
			return NapletID{}, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	}
	nid, err := New(owner, host, created)
	if err != nil {
		return NapletID{}, err
	}
	nid.heritage = h
	return nid, nil
}

// Owner returns the user name of the naplet creator.
func (n NapletID) Owner() string { return n.owner }

// Host returns the home host on which the naplet was created. The home
// server of a naplet is derivable from its identifier (§4.1).
func (n NapletID) Host() string { return n.host }

// Created returns the creation time (UTC, second precision).
func (n NapletID) Created() time.Time { return n.created }

// Heritage returns a copy of the clone heritage sequence.
func (n NapletID) Heritage() Heritage {
	h := make(Heritage, len(n.heritage))
	copy(h, n.heritage)
	return h
}

// IsZero reports whether the identifier is the zero value.
func (n NapletID) IsZero() bool {
	return n.owner == "" && n.host == "" && n.created.IsZero() && len(n.heritage) == 0
}

// IsOriginal reports whether the naplet has never been cloned from another
// naplet (empty heritage, or an all-zero heritage which names the originator
// in every generation).
func (n NapletID) IsOriginal() bool {
	for _, g := range n.heritage {
		if g != 0 {
			return false
		}
	}
	return true
}

// Clone derives the identifier of the k-th clone of this naplet, k ≥ 1.
// Cloning is recursive: a clone can itself be cloned, extending the heritage
// by one generation each time (Figure 1).
func (n NapletID) Clone(k int) (NapletID, error) {
	if k < 1 {
		return NapletID{}, fmt.Errorf("id: clone index must be ≥ 1, got %d", k)
	}
	c := n
	c.heritage = n.heritage.Child(k)
	return c, nil
}

// Originator returns the identifier that names the originator within this
// naplet's generation: the same lineage with the final heritage component
// replaced by 0. If the naplet is an original (empty heritage) it returns
// itself.
func (n NapletID) Originator() NapletID {
	if len(n.heritage) == 0 {
		return n
	}
	o := n
	h := n.Heritage()
	h[len(h)-1] = 0
	o.heritage = h
	return o
}

// Root returns the identifier of the root of the clone tree: the original
// naplet with empty heritage.
func (n NapletID) Root() NapletID {
	r := n
	r.heritage = nil
	return r
}

// SameLineage reports whether two identifiers descend from the same original
// naplet (same owner, host, creation time).
func (n NapletID) SameLineage(other NapletID) bool {
	return n.owner == other.owner && n.host == other.host && n.created.Equal(other.created)
}

// Equal reports whether two identifiers name the same naplet.
func (n NapletID) Equal(other NapletID) bool {
	return n.SameLineage(other) && n.heritage.Equal(other.heritage)
}

// String renders the identifier in its canonical textual form.
func (n NapletID) String() string {
	var b strings.Builder
	b.WriteString(n.owner)
	b.WriteByte('@')
	b.WriteString(n.host)
	b.WriteByte(':')
	b.WriteString(n.created.Format(TimeLayout))
	if len(n.heritage) > 0 {
		b.WriteByte(':')
		b.WriteString(n.heritage.String())
	}
	return b.String()
}

// Key returns a canonical map key for the identifier. It is the same as
// String; the method exists to make intent explicit at call sites that use
// identifiers as map keys.
func (n NapletID) Key() string { return n.String() }

// MarshalText implements encoding.TextMarshaler, so identifiers serialize
// with encoding/gob, encoding/json, etc. in their canonical textual form.
func (n NapletID) MarshalText() ([]byte, error) { return []byte(n.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (n *NapletID) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*n = parsed
	return nil
}

// GobEncode implements gob.GobEncoder; identifiers travel inside naplet
// records and wire frames.
func (n NapletID) GobEncode() ([]byte, error) {
	if n.IsZero() {
		return nil, nil
	}
	return n.MarshalText()
}

// GobDecode implements gob.GobDecoder.
func (n *NapletID) GobDecode(data []byte) error {
	if len(data) == 0 {
		*n = NapletID{}
		return nil
	}
	return n.UnmarshalText(data)
}

// Generator mints fresh naplet identifiers for one (owner, host) principal.
// Identifiers created within the same second are disambiguated by advancing
// the timestamp, preserving system-wide uniqueness without random state.
// A Generator is not safe for concurrent use; wrap it with a mutex or use
// one per goroutine.
type Generator struct {
	owner string
	host  string
	now   func() time.Time
	last  time.Time
}

// NewGenerator returns a Generator for the given principal. If now is nil,
// time.Now is used.
func NewGenerator(owner, host string, now func() time.Time) (*Generator, error) {
	if _, err := New(owner, host, time.Unix(0, 0)); err != nil {
		return nil, err
	}
	if now == nil {
		now = time.Now
	}
	return &Generator{owner: owner, host: host, now: now}, nil
}

// Next returns a fresh, unique identifier.
func (g *Generator) Next() NapletID {
	t := g.now().UTC().Truncate(time.Second)
	if !t.After(g.last) {
		t = g.last.Add(time.Second)
	}
	g.last = t
	nid, _ := New(g.owner, g.host, t)
	return nid
}
