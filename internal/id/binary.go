package id

import (
	"repro/internal/wire"
)

// The binary codec lives inside package id because the identifier's fields
// are private by design (immutability). The layout, per DESIGN.md §10:
//
//	[string owner] [string host] [time created] [uvarint n] n×[uvarint gen]
//
// Identifiers are embedded unversioned; the container that carries them
// (record, credential, snapshot) owns the version byte.

// EncodedSize returns the exact binary-encoded size of the identifier.
func (n NapletID) EncodedSize() int {
	sz := wire.SizeString(n.owner) + wire.SizeString(n.host) +
		wire.SizeTime(n.created) + wire.SizeUvarint(uint64(len(n.heritage)))
	for _, g := range n.heritage {
		sz += wire.SizeUvarint(uint64(g))
	}
	return sz
}

// AppendBinary appends the identifier's binary form to dst.
func (n NapletID) AppendBinary(dst []byte) []byte {
	dst = wire.AppendString(dst, n.owner)
	dst = wire.AppendString(dst, n.host)
	dst = wire.AppendTime(dst, n.created)
	dst = wire.AppendUvarint(dst, uint64(len(n.heritage)))
	for _, g := range n.heritage {
		dst = wire.AppendUvarint(dst, uint64(g))
	}
	return dst
}

// DecodeBinary consumes one identifier from b and returns the rest. Unlike
// Parse it accepts the zero identifier (empty owner and host), which is a
// legal embedded value (e.g. Message.From on control messages).
func DecodeBinary(b []byte) (NapletID, []byte, error) {
	var n NapletID
	var err error
	if n.owner, b, err = wire.DecString(b); err != nil {
		return NapletID{}, nil, err
	}
	if n.host, b, err = wire.DecString(b); err != nil {
		return NapletID{}, nil, err
	}
	if n.created, b, err = wire.DecTime(b); err != nil {
		return NapletID{}, nil, err
	}
	cnt, b, err := wire.DecCount(b, 1)
	if err != nil {
		return NapletID{}, nil, err
	}
	if cnt > 0 {
		n.heritage = make(Heritage, cnt)
		for i := range n.heritage {
			g, rest, err := wire.DecUvarint(b)
			if err != nil {
				return NapletID{}, nil, err
			}
			n.heritage[i] = int(g)
			b = rest
		}
	}
	return n, b, nil
}
