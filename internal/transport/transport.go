// Package transport abstracts the network under the naplet protocols.
//
// Every inter-server interaction in the system — landing negotiation, naplet
// transfer, directory registration, locator queries, post-office messages,
// service invocations — is a request/reply exchange of wire.Frames between
// named nodes. Two fabrics implement the abstraction:
//
//   - netsim.Network: an in-process simulated network with configurable
//     per-link latency, bandwidth and loss, which meters every byte. All
//     tests and experiments run on it.
//   - TCPFabric (this package): real TCP sockets, used by cmd/napletd for
//     multi-process deployments.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Handler processes one inbound frame and returns the reply frame. Handlers
// must be safe for concurrent use; the fabric may deliver frames from many
// peers at once. Returning an error produces a transport-level failure at
// the caller; protocol-level errors should travel inside reply payloads.
//
// The request frame's Payload may alias a per-connection read buffer that
// the fabric reuses after the handler returns: handlers that retain the
// payload beyond the call must copy it. Decoding it with Frame.Body (the
// universal pattern) always copies.
type Handler func(from string, f wire.Frame) (wire.Frame, error)

// Node is one attached endpoint of a fabric.
type Node interface {
	// Addr returns the node's own address (server name).
	Addr() string
	// Call sends a frame to the named peer and waits for its reply.
	Call(ctx context.Context, to string, f wire.Frame) (wire.Frame, error)
	// Close detaches the node. Calls after Close fail.
	Close() error
}

// Fabric attaches nodes to a network.
type Fabric interface {
	// Attach registers a handler under the given address and returns the
	// node. Attaching an address twice is an error.
	Attach(addr string, h Handler) (Node, error)
}

// Errors shared by fabric implementations.
var (
	ErrNodeClosed   = errors.New("transport: node closed")
	ErrUnknownPeer  = errors.New("transport: unknown peer")
	ErrDuplicate    = errors.New("transport: address already attached")
	ErrHandlerPanic = errors.New("transport: handler panicked")
)

// TCPFabric implements Fabric over real TCP sockets. Addresses are
// host:port strings. Each Call opens a connection from a small per-peer
// pool, writes the request frame, and reads the reply frame.
type TCPFabric struct {
	mu    sync.Mutex
	nodes map[string]*tcpNode
	met   atomic.Pointer[Metrics]
}

// NewTCPFabric returns an empty TCP fabric.
func NewTCPFabric() *TCPFabric {
	return &TCPFabric{nodes: make(map[string]*tcpNode)}
}

// Instrument registers the fabric's traffic counters and per-kind call
// latency histograms in reg. Frames exchanged from then on are metered;
// call it before serving traffic for complete counts.
func (f *TCPFabric) Instrument(reg *telemetry.Registry) {
	f.met.Store(NewMetrics(reg))
}

// metrics returns the fabric's metrics, nil when uninstrumented.
func (f *TCPFabric) metrics() *Metrics { return f.met.Load() }

// Attach listens on addr and serves inbound frames with h. If addr has port
// 0 the system picks a free port; use the returned node's Addr for the
// actual address.
func (f *TCPFabric) Attach(addr string, h Handler) (Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &tcpNode{
		fabric:  f,
		addr:    ln.Addr().String(),
		ln:      ln,
		handler: h,
		pools:   make(map[string][]net.Conn),
		inbound: make(map[net.Conn]struct{}),
	}
	f.mu.Lock()
	if _, dup := f.nodes[n.addr]; dup {
		f.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, n.addr)
	}
	f.nodes[n.addr] = n
	f.mu.Unlock()
	go n.serve()
	return n, nil
}

// maxIdleConnsPerPeer bounds the connection pool kept per remote peer.
const maxIdleConnsPerPeer = 4

type tcpNode struct {
	fabric  *TCPFabric
	addr    string
	ln      net.Listener
	handler Handler
	closed  atomic.Bool
	wg      sync.WaitGroup

	poolMu sync.Mutex
	pools  map[string][]net.Conn

	inboundMu sync.Mutex
	inbound   map[net.Conn]struct{}

	seq atomic.Uint64
}

// getConn pops an idle pooled connection to the peer or dials a fresh one.
// reused reports whether the connection came from the pool (a stale pooled
// connection justifies one retry).
func (n *tcpNode) getConn(ctx context.Context, to string) (conn net.Conn, reused bool, err error) {
	n.poolMu.Lock()
	if idle := n.pools[to]; len(idle) > 0 {
		conn = idle[len(idle)-1]
		n.pools[to] = idle[:len(idle)-1]
		n.poolMu.Unlock()
		return conn, true, nil
	}
	n.poolMu.Unlock()
	var d net.Dialer
	conn, err = d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, false, fmt.Errorf("%w: dial %s: %v", ErrUnknownPeer, to, err)
	}
	return conn, false, nil
}

// putConn returns a healthy connection to the pool, or closes it when the
// pool is full or the node is closed.
func (n *tcpNode) putConn(to string, conn net.Conn) {
	conn.SetDeadline(time.Time{})
	n.poolMu.Lock()
	defer n.poolMu.Unlock()
	if n.closed.Load() || len(n.pools[to]) >= maxIdleConnsPerPeer {
		conn.Close()
		return
	}
	n.pools[to] = append(n.pools[to], conn)
}

// drainPools closes every idle pooled connection.
func (n *tcpNode) drainPools() {
	n.poolMu.Lock()
	defer n.poolMu.Unlock()
	for _, idle := range n.pools {
		for _, c := range idle {
			c.Close()
		}
	}
	n.pools = make(map[string][]net.Conn)
}

func (n *tcpNode) Addr() string { return n.addr }

func (n *tcpNode) serve() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.inboundMu.Lock()
		n.inbound[conn] = struct{}{}
		n.inboundMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				conn.Close()
				n.inboundMu.Lock()
				delete(n.inbound, conn)
				n.inboundMu.Unlock()
			}()
			n.serveConn(conn)
		}()
	}
}

// closeInbound force-closes connections peers are keeping alive in their
// pools, so Close does not wait on idle keep-alives.
func (n *tcpNode) closeInbound() {
	n.inboundMu.Lock()
	defer n.inboundMu.Unlock()
	for c := range n.inbound {
		c.Close()
	}
}

// serveConn handles a request/reply stream: frames in, replies out, one at a
// time per connection (callers pipeline by using multiple connections). A
// per-connection scratch buffer is reused across frames, so steady-state
// serving reads without allocating; this is safe because each request is
// fully handled before the next read (see the Handler contract).
func (n *tcpNode) serveConn(conn net.Conn) {
	var scratch []byte
	for {
		req, grown, err := wire.ReadFrameReuse(conn, scratch)
		if err != nil {
			return // EOF or broken peer
		}
		scratch = grown
		met := n.fabric.metrics()
		met.Recv(&req)
		reply, err := n.safeHandle(req)
		if err != nil {
			reply = ErrorReply(req, err)
		}
		reply.Seq = req.Seq
		if err := wire.WriteFrame(conn, reply); err != nil {
			return
		}
		met.Sent(&reply)
	}
}

func (n *tcpNode) safeHandle(req wire.Frame) (reply wire.Frame, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrHandlerPanic, r)
		}
	}()
	return n.handler(req.From, req)
}

// fallbackErrorPayload is a pre-encoded generic handler error, sent when the
// real error message itself fails to marshal so the caller still receives a
// decodable wire.Error rather than an empty payload.
var fallbackErrorPayload = func() []byte {
	p, err := wire.Marshal(&wire.Error{Code: "handler", Message: "handler error (detail unencodable)"})
	if err != nil {
		panic("transport: cannot pre-encode fallback error payload: " + err.Error())
	}
	return p
}()

// ErrorReply encodes a handler error into a reply frame so the caller sees
// it as a typed wire.Error. Both fabrics (TCP and netsim) use it.
func ErrorReply(req wire.Frame, err error) wire.Frame {
	payload, merr := wire.Marshal(&wire.Error{Code: "handler", Message: err.Error()})
	if merr != nil {
		payload = fallbackErrorPayload
	}
	return wire.Frame{
		Kind:    wire.Kind(string(req.Kind) + ".error"),
		From:    req.To,
		To:      req.From,
		Payload: payload,
	}
}

// IsErrorReply reports whether a reply frame carries a handler error, and
// decodes it if so.
func IsErrorReply(req wire.Kind, reply wire.Frame) error {
	if reply.Kind != wire.Kind(string(req)+".error") {
		return nil
	}
	var werr wire.Error
	if err := reply.Body(&werr); err != nil {
		return fmt.Errorf("transport: undecodable error reply: %w", err)
	}
	return &werr
}

func (n *tcpNode) Call(ctx context.Context, to string, f wire.Frame) (wire.Frame, error) {
	if n.closed.Load() {
		return wire.Frame{}, ErrNodeClosed
	}
	f.From = n.addr
	f.To = to
	f.Seq = n.seq.Add(1)

	met := n.fabric.metrics()
	start := time.Time{}
	if met != nil {
		start = time.Now()
	}
	reply, reused, err := n.exchange(ctx, to, f)
	if err != nil && reused {
		// The pooled connection had gone stale (peer closed it while
		// idle); one retry on a fresh connection.
		reply, _, err = n.exchange(ctx, to, f)
	}
	if err != nil {
		met.CallError()
		return wire.Frame{}, err
	}
	if met != nil {
		met.Sent(&f)
		met.Recv(&reply)
		met.ObserveCall(f.Kind, time.Since(start))
	}
	if werr := IsErrorReply(f.Kind, reply); werr != nil {
		return reply, werr
	}
	return reply, nil
}

// exchange performs one request/reply over a pooled or fresh connection.
func (n *tcpNode) exchange(ctx context.Context, to string, f wire.Frame) (wire.Frame, bool, error) {
	conn, reused, err := n.getConn(ctx, to)
	if err != nil {
		return wire.Frame{}, reused, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	if err := wire.WriteFrame(conn, f); err != nil {
		conn.Close()
		return wire.Frame{}, reused, fmt.Errorf("transport: write to %s: %w", to, err)
	}
	reply, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		if errors.Is(err, io.EOF) {
			return wire.Frame{}, reused, fmt.Errorf("transport: %s closed connection", to)
		}
		return wire.Frame{}, reused, fmt.Errorf("transport: read reply from %s: %w", to, err)
	}
	n.putConn(to, conn)
	return reply, reused, nil
}

func (n *tcpNode) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	n.fabric.mu.Lock()
	delete(n.fabric.nodes, n.addr)
	n.fabric.mu.Unlock()
	n.drainPools()
	err := n.ln.Close()
	n.closeInbound()
	n.wg.Wait()
	return err
}
