// Package transport abstracts the network under the naplet protocols.
//
// Every inter-server interaction in the system — landing negotiation, naplet
// transfer, directory registration, locator queries, post-office messages,
// service invocations — is a request/reply exchange of wire.Frames between
// named nodes. Two fabrics implement the abstraction:
//
//   - netsim.Network: an in-process simulated network with configurable
//     per-link latency, bandwidth and loss, which meters every byte. All
//     tests and experiments run on it.
//   - TCPFabric (this package): real TCP sockets, used by cmd/napletd for
//     multi-process deployments.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/overload"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Handler processes one inbound frame and returns the reply frame. Handlers
// must be safe for concurrent use; the fabric may deliver frames from many
// peers at once. Returning an error produces a transport-level failure at
// the caller; protocol-level errors should travel inside reply payloads.
//
// The request frame's Payload may alias a per-connection read buffer that
// the fabric reuses after the handler returns: handlers that retain the
// payload beyond the call must copy it. Decoding it with Frame.Body (the
// universal pattern) always copies.
type Handler func(from string, f wire.Frame) (wire.Frame, error)

// Node is one attached endpoint of a fabric.
type Node interface {
	// Addr returns the node's own address (server name).
	Addr() string
	// Call sends a frame to the named peer and waits for its reply.
	Call(ctx context.Context, to string, f wire.Frame) (wire.Frame, error)
	// Close detaches the node. Calls after Close fail.
	Close() error
}

// Fabric attaches nodes to a network.
type Fabric interface {
	// Attach registers a handler under the given address and returns the
	// node. Attaching an address twice is an error.
	Attach(addr string, h Handler) (Node, error)
}

// Errors shared by fabric implementations.
var (
	ErrNodeClosed   = errors.New("transport: node closed")
	ErrUnknownPeer  = errors.New("transport: unknown peer")
	ErrDuplicate    = errors.New("transport: address already attached")
	ErrHandlerPanic = errors.New("transport: handler panicked")
)

// ErrRefused marks call failures where the request was refused before
// delivery — the connection (or the local node, or the fabric) rejected
// the call without the remote handler ever running. Fabrics wrap their
// pre-delivery refusals with it so protocol layers can tell a failure
// with provably no remote side effect from an ambiguous one (a timeout
// or a lost frame, where the request may have executed). Exactly-once
// decisions — a migration's failover, for one — hinge on that
// distinction.
var ErrRefused = errors.New("transport: undelivered")

// Refused reports whether err proves the request never reached the
// peer's handler. Absence of ErrRefused is not proof of delivery: it
// means the outcome is unknown. Overload and deadline sheds count:
// both are raised before the request is dispatched to any component,
// so a shed request provably had no remote side effect.
func Refused(err error) bool {
	return errors.Is(err, ErrRefused) ||
		errors.Is(err, ErrNodeClosed) ||
		errors.Is(err, ErrUnknownPeer) ||
		errors.Is(err, overload.ErrOverloaded) ||
		errors.Is(err, overload.ErrDeadlinePast)
}

// TCPFabric implements Fabric over real TCP sockets. Addresses are
// host:port strings. Calls to the same peer share one multiplexed
// connection: requests are written back-to-back tagged with sequence
// numbers, a single reader goroutine correlates replies by Seq, and the
// server handles pipelined requests concurrently — so N in-flight calls
// cost one connection and no per-call handshake.
type TCPFabric struct {
	mu    sync.Mutex
	nodes map[string]*tcpNode
	met   atomic.Pointer[Metrics]
}

// NewTCPFabric returns an empty TCP fabric.
func NewTCPFabric() *TCPFabric {
	return &TCPFabric{nodes: make(map[string]*tcpNode)}
}

// Instrument registers the fabric's traffic counters and per-kind call
// latency histograms in reg. Frames exchanged from then on are metered;
// call it before serving traffic for complete counts.
func (f *TCPFabric) Instrument(reg *telemetry.Registry) {
	f.met.Store(NewMetrics(reg))
}

// metrics returns the fabric's metrics, nil when uninstrumented.
func (f *TCPFabric) metrics() *Metrics { return f.met.Load() }

// Attach listens on addr and serves inbound frames with h. If addr has port
// 0 the system picks a free port; use the returned node's Addr for the
// actual address.
func (f *TCPFabric) Attach(addr string, h Handler) (Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &tcpNode{
		fabric:  f,
		addr:    ln.Addr().String(),
		ln:      ln,
		handler: h,
		muxes:   make(map[string]*muxConn),
		inbound: make(map[net.Conn]struct{}),
	}
	f.mu.Lock()
	if _, dup := f.nodes[n.addr]; dup {
		f.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, n.addr)
	}
	f.nodes[n.addr] = n
	f.mu.Unlock()
	go n.serve()
	return n, nil
}

// maxPipelinedPerConn bounds the requests a server handles concurrently on
// one inbound connection; further frames queue in the socket until a slot
// frees (natural backpressure).
const maxPipelinedPerConn = 64

type tcpNode struct {
	fabric  *TCPFabric
	addr    string
	ln      net.Listener
	handler Handler
	closed  atomic.Bool
	wg      sync.WaitGroup

	muxMu sync.Mutex
	muxes map[string]*muxConn

	inboundMu sync.Mutex
	inbound   map[net.Conn]struct{}

	seq atomic.Uint64
}

// callResult is one correlated reply (or the connection failure that ended
// the exchange).
type callResult struct {
	frame wire.Frame
	err   error
}

// muxConn is one shared, multiplexed connection to a peer. Many Calls
// write frames through it concurrently (serialized by writeMu, correlated
// by Seq); a single reader goroutine fans replies back out to the pending
// callers. Any read or write error fails the whole connection: every
// pending call errors and the next Call dials afresh.
type muxConn struct {
	node *tcpNode
	to   string
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan callResult
	closed  bool
	err     error
}

// isClosed reports whether the mux has failed.
func (mc *muxConn) isClosed() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.closed
}

// getMux returns the live shared connection to the peer, dialing one if
// needed. reused reports whether the mux pre-existed this call (a stale
// pre-existing connection justifies one retry).
func (n *tcpNode) getMux(ctx context.Context, to string) (*muxConn, bool, error) {
	n.muxMu.Lock()
	if mc := n.muxes[to]; mc != nil && !mc.isClosed() {
		n.muxMu.Unlock()
		return mc, true, nil
	}
	n.muxMu.Unlock()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, false, fmt.Errorf("%w: dial %s: %v", ErrUnknownPeer, to, err)
	}

	mc := &muxConn{
		node:    n,
		to:      to,
		conn:    conn,
		pending: make(map[uint64]chan callResult),
	}
	n.muxMu.Lock()
	if cur := n.muxes[to]; cur != nil && !cur.isClosed() {
		// Lost a dial race; use the winner.
		n.muxMu.Unlock()
		conn.Close()
		return cur, true, nil
	}
	n.muxes[to] = mc
	n.muxMu.Unlock()
	go mc.readLoop()
	return mc, false, nil
}

// readLoop is the mux's single reader: it correlates every inbound reply
// to its pending caller by sequence number.
func (mc *muxConn) readLoop() {
	for {
		reply, err := wire.ReadFrame(mc.conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("transport: %s closed connection", mc.to)
			} else {
				err = fmt.Errorf("transport: read reply from %s: %w", mc.to, err)
			}
			mc.fail(err)
			return
		}
		mc.mu.Lock()
		ch := mc.pending[reply.Seq]
		delete(mc.pending, reply.Seq)
		mc.mu.Unlock()
		if ch != nil {
			ch <- callResult{frame: reply}
		} else {
			// A reply nobody waits for: its caller timed out or was
			// canceled and withdrew the correlation entry. The frame is
			// dropped — the connection stays healthy for the other
			// in-flight calls — but the drop is counted, because a
			// steady late-reply rate means callers' budgets are tighter
			// than the peer's service time.
			mc.node.fabric.metrics().LateReply()
		}
	}
}

// fail closes the mux: the connection is unregistered, closed, and every
// pending call receives err.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.closed {
		mc.mu.Unlock()
		return
	}
	mc.closed = true
	mc.err = err
	pending := mc.pending
	mc.pending = nil
	mc.mu.Unlock()

	mc.node.muxMu.Lock()
	if mc.node.muxes[mc.to] == mc {
		delete(mc.node.muxes, mc.to)
	}
	mc.node.muxMu.Unlock()
	mc.conn.Close()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}

// roundTrip sends one frame on the mux and waits for its correlated reply.
func (mc *muxConn) roundTrip(ctx context.Context, f wire.Frame) (wire.Frame, error) {
	ch := make(chan callResult, 1)
	mc.mu.Lock()
	if mc.closed {
		err := mc.err
		mc.mu.Unlock()
		return wire.Frame{}, err
	}
	mc.pending[f.Seq] = ch
	mc.mu.Unlock()

	mc.writeMu.Lock()
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		mc.conn.SetWriteDeadline(deadline)
	} else {
		mc.conn.SetWriteDeadline(time.Time{})
	}
	// A cancelable but deadline-free context needs its own escape hatch:
	// with no write deadline armed, a stalled peer (full socket buffers,
	// reader wedged) would block WriteFrame forever and cancellation
	// could never interrupt it. Watch ctx.Done for the duration of the
	// write and yank the deadline into the past to abort it. The
	// done-handshake makes the watcher quiesce before the deadline is
	// reset — still under writeMu — so a poisoned deadline can never
	// leak into the next caller's write.
	var stop, watcherDone chan struct{}
	if !hasDeadline && ctx.Done() != nil {
		stop = make(chan struct{})
		watcherDone = make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-ctx.Done():
				mc.conn.SetWriteDeadline(time.Now())
			case <-stop:
			}
		}()
	}
	err := wire.WriteFrame(mc.conn, f)
	if stop != nil {
		close(stop)
		<-watcherDone
		mc.conn.SetWriteDeadline(time.Time{})
	}
	mc.writeMu.Unlock()
	if err != nil {
		mc.fail(fmt.Errorf("transport: write to %s: %w", mc.to, err))
		// fail delivered the write error (or an earlier one) to ch.
	}

	select {
	case res := <-ch:
		return res.frame, res.err
	case <-ctx.Done():
		mc.mu.Lock()
		delete(mc.pending, f.Seq)
		mc.mu.Unlock()
		return wire.Frame{}, fmt.Errorf("transport: call %s: %w", mc.to, ctx.Err())
	}
}

// drainMuxes fails every shared outbound connection.
func (n *tcpNode) drainMuxes() {
	n.muxMu.Lock()
	muxes := make([]*muxConn, 0, len(n.muxes))
	for _, mc := range n.muxes {
		muxes = append(muxes, mc)
	}
	n.muxMu.Unlock()
	for _, mc := range muxes {
		mc.fail(ErrNodeClosed)
	}
}

func (n *tcpNode) Addr() string { return n.addr }

func (n *tcpNode) serve() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.inboundMu.Lock()
		n.inbound[conn] = struct{}{}
		n.inboundMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				conn.Close()
				n.inboundMu.Lock()
				delete(n.inbound, conn)
				n.inboundMu.Unlock()
			}()
			n.serveConn(conn)
		}()
	}
}

// closeInbound force-closes connections peers are keeping alive in their
// pools, so Close does not wait on idle keep-alives.
func (n *tcpNode) closeInbound() {
	n.inboundMu.Lock()
	defer n.inboundMu.Unlock()
	for c := range n.inbound {
		c.Close()
	}
}

// readBufPool recycles per-request read buffers across connections and
// requests, so steady-state serving reads without allocating even though
// requests on one connection are handled concurrently.
var readBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// serveConn handles a pipelined request/reply stream: the read loop pulls
// frames off the socket as fast as they arrive and hands each to its own
// handler goroutine, so a slow request does not stall the ones queued
// behind it. Replies are written as handlers finish — possibly out of
// request order — and the client's mux reorders by Seq. A semaphore bounds
// per-connection concurrency; each request reads into a pooled buffer that
// returns to the pool only after its handler finishes and the reply is
// written, which preserves the Handler payload-aliasing contract.
func (n *tcpNode) serveConn(conn net.Conn) {
	var (
		writeMu sync.Mutex
		handled sync.WaitGroup
		sem     = make(chan struct{}, maxPipelinedPerConn)
	)
	defer handled.Wait()
	for {
		bufp := readBufPool.Get().(*[]byte)
		req, grown, err := wire.ReadFrameReuse(conn, *bufp)
		if err != nil {
			readBufPool.Put(bufp)
			return // EOF or broken peer
		}
		*bufp = grown
		req.ReceivedAt = time.Now()
		met := n.fabric.metrics()
		met.Recv(&req)
		sem <- struct{}{}
		handled.Add(1)
		go func() {
			defer func() {
				readBufPool.Put(bufp)
				<-sem
				handled.Done()
			}()
			var reply wire.Frame
			if req.BudgetExpired(time.Now()) {
				// The caller's propagated budget ran out while the frame
				// sat in the socket or the pipeline semaphore: nobody is
				// waiting for this answer, so shed it instead of burning
				// handler time on it.
				met.DeadlineShed()
				budget, _ := req.Budget()
				reply = ErrorReply(req, fmt.Errorf(
					"%w: %v budget exhausted before dispatch", overload.ErrDeadlinePast, budget))
			} else if r, herr := n.safeHandle(req); herr != nil {
				reply = ErrorReply(req, herr)
			} else {
				reply = r
			}
			reply.Seq = req.Seq
			writeMu.Lock()
			err = wire.WriteFrame(conn, reply)
			writeMu.Unlock()
			if err == nil {
				met.Sent(&reply)
			}
		}()
	}
}

func (n *tcpNode) safeHandle(req wire.Frame) (reply wire.Frame, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrHandlerPanic, r)
		}
	}()
	return n.handler(req.From, req)
}

// fallbackErrorPayload is a pre-encoded generic handler error, sent when the
// real error message itself fails to marshal so the caller still receives a
// decodable wire.Error rather than an empty payload.
var fallbackErrorPayload = func() []byte {
	p, err := wire.Marshal(&wire.Error{Code: "handler", Message: "handler error (detail unencodable)"})
	if err != nil {
		panic("transport: cannot pre-encode fallback error payload: " + err.Error())
	}
	return p
}()

// ErrorReply encodes a handler error into a reply frame so the caller sees
// it as a typed wire.Error. Both fabrics (TCP and netsim) use it. Overload
// semantics survive the hop: errors wrapping overload.ErrOverloaded or
// overload.ErrDeadlinePast get their dedicated codes, which IsErrorReply
// re-hydrates into the same sentinels on the caller's side.
func ErrorReply(req wire.Frame, err error) wire.Frame {
	code := overload.CodeFor(err)
	if code == "" {
		code = "handler"
	}
	payload, merr := wire.Marshal(&wire.Error{Code: code, Message: err.Error()})
	if merr != nil {
		payload = fallbackErrorPayload
	}
	return wire.Frame{
		Kind:    wire.Kind(string(req.Kind) + ".error"),
		From:    req.To,
		To:      req.From,
		Payload: payload,
	}
}

// IsErrorReply reports whether a reply frame carries a handler error, and
// decodes it if so.
func IsErrorReply(req wire.Kind, reply wire.Frame) error {
	if reply.Kind != wire.Kind(string(req)+".error") {
		return nil
	}
	var werr wire.Error
	if err := reply.Body(&werr); err != nil {
		return fmt.Errorf("transport: undecodable error reply: %w", err)
	}
	if sentinel := overload.FromCode(werr.Code); sentinel != nil {
		// Surface the typed sentinel (not the bare *wire.Error) so
		// errors.Is(err, overload.ErrOverloaded) works across the hop
		// and retry loops treat the shed as transient, not as an
		// authoritative protocol verdict.
		return fmt.Errorf("%w: %s", sentinel, werr.Message)
	}
	return &werr
}

func (n *tcpNode) Call(ctx context.Context, to string, f wire.Frame) (wire.Frame, error) {
	if n.closed.Load() {
		return wire.Frame{}, ErrNodeClosed
	}
	f.From = n.addr
	f.To = to
	f.Seq = n.seq.Add(1)
	if deadline, ok := ctx.Deadline(); ok {
		// Propagate the caller's remaining budget in the Seq high bits
		// (see wire.PackBudget) so the server can shed work whose
		// caller will have given up by the time an answer could arrive.
		f.Seq = wire.PackBudget(f.Seq, time.Until(deadline))
	}

	met := n.fabric.metrics()
	start := time.Time{}
	if met != nil {
		start = time.Now()
	}
	reply, reused, err := n.exchange(ctx, to, f)
	if err != nil && reused && ctx.Err() == nil {
		// The shared connection had gone stale (peer closed it while
		// idle); one retry dials a fresh one.
		reply, _, err = n.exchange(ctx, to, f)
	}
	if err != nil {
		met.CallError()
		return wire.Frame{}, err
	}
	if met != nil {
		met.Sent(&f)
		met.Recv(&reply)
		met.ObserveCall(f.Kind, time.Since(start))
	}
	if werr := IsErrorReply(f.Kind, reply); werr != nil {
		return reply, werr
	}
	return reply, nil
}

// exchange performs one request/reply over the peer's shared mux.
func (n *tcpNode) exchange(ctx context.Context, to string, f wire.Frame) (wire.Frame, bool, error) {
	mc, reused, err := n.getMux(ctx, to)
	if err != nil {
		return wire.Frame{}, reused, err
	}
	reply, err := mc.roundTrip(ctx, f)
	return reply, reused, err
}

func (n *tcpNode) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	n.fabric.mu.Lock()
	delete(n.fabric.nodes, n.addr)
	n.fabric.mu.Unlock()
	n.drainMuxes()
	err := n.ln.Close()
	n.closeInbound()
	n.wg.Wait()
	return err
}
