// Overload-resilience transport tests: deadline propagation in the frame
// header, pre-dispatch shedding, typed error transit, the stalled-writer
// cancellation escape hatch, and late-reply accounting.
package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/overload"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// TestTCPBudgetPropagation: a caller deadline rides the frame's Seq high
// bits to the server, which sees both the receipt stamp and the budget.
func TestTCPBudgetPropagation(t *testing.T) {
	fab := NewTCPFabric()
	seen := make(chan wire.Frame, 1)
	server, err := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		seen <- f
		return echoHandler(from, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "hi"})
	if _, err := client.Call(ctx, server.Addr(), req); err != nil {
		t.Fatal(err)
	}
	got := <-seen
	budget, ok := got.Budget()
	if !ok {
		t.Fatal("server must see the propagated budget")
	}
	if budget <= 0 || budget > 5*time.Second {
		t.Fatalf("budget = %v, want (0, 5s]", budget)
	}
	if got.ReceivedAt.IsZero() {
		t.Fatal("fabric must stamp ReceivedAt")
	}
	if got.BareSeq() == 0 {
		t.Fatal("sequence number lost in packing")
	}

	// Without a deadline, no budget is packed.
	req2, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "hi"})
	if _, err := client.Call(context.Background(), server.Addr(), req2); err != nil {
		t.Fatal(err)
	}
	got = <-seen
	if _, ok := got.Budget(); ok {
		t.Fatal("deadline-free call must not carry a budget")
	}
}

// TestTCPDeadlineShedBeforeDispatch: a request whose budget expires while
// queued behind the pipeline semaphore is shed with ErrDeadlinePast —
// counted in telemetry — instead of reaching the handler.
func TestTCPDeadlineShedBeforeDispatch(t *testing.T) {
	fab := NewTCPFabric()
	reg := telemetry.NewRegistry()
	fab.Instrument(reg)
	block := make(chan struct{})
	var handled int64
	handledCh := make(chan uint64, maxPipelinedPerConn+1)
	server, err := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		<-block
		handledCh <- f.BareSeq()
		return echoHandler(from, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	// A raw connection gives exact control over Seq and write order.
	conn, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload, _ := wire.Marshal(&echoBody{Text: "x"})
	// Fill every pipeline slot with requests that block in the handler.
	for i := 1; i <= maxPipelinedPerConn; i++ {
		f := wire.Frame{Kind: wire.KindPost, From: "raw", To: server.Addr(), Payload: payload}
		f.Seq = wire.PackBudget(uint64(i), 10*time.Second)
		if err := wire.WriteFrame(conn, f); err != nil {
			t.Fatal(err)
		}
	}
	// The straggler is read and stamped immediately but waits for a slot;
	// its 50ms budget runs out in that queue.
	late := wire.Frame{Kind: wire.KindPost, From: "raw", To: server.Addr(), Payload: payload}
	late.Seq = wire.PackBudget(uint64(maxPipelinedPerConn+1), 50*time.Millisecond)
	if err := wire.WriteFrame(conn, late); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	close(block)

	var shedReply *wire.Frame
	for i := 0; i <= maxPipelinedPerConn; i++ {
		reply, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if reply.BareSeq() == uint64(maxPipelinedPerConn+1) {
			r := reply
			shedReply = &r
		} else {
			handled++
		}
	}
	if shedReply == nil {
		t.Fatal("no reply for the budget-expired request")
	}
	werr := IsErrorReply(wire.KindPost, *shedReply)
	if !errors.Is(werr, overload.ErrDeadlinePast) {
		t.Fatalf("shed reply error = %v, want ErrDeadlinePast", werr)
	}
	if !Refused(werr) {
		t.Fatal("a pre-dispatch shed is a provable refusal")
	}
	if handled != maxPipelinedPerConn {
		t.Fatalf("handled %d of %d admitted requests", handled, maxPipelinedPerConn)
	}
	// The handler never saw the shed request.
	close(handledCh)
	for seq := range handledCh {
		if seq == uint64(maxPipelinedPerConn+1) {
			t.Fatal("shed request reached the handler")
		}
	}
	if got := reg.Counter("naplet_transport_deadline_shed_total",
		"inbound requests shed because the propagated budget had expired before dispatch").Value(); got != 1 {
		t.Fatalf("deadline_shed counter = %d, want 1", got)
	}
}

// TestTCPOverloadErrorTransit: a handler error wrapping ErrOverloaded
// crosses the hop as a typed code and re-hydrates into the same sentinel
// — retryable, Refused, and NOT an authoritative *wire.Error verdict.
func TestTCPOverloadErrorTransit(t *testing.T) {
	fab := NewTCPFabric()
	server, err := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, overload.ErrOverloaded
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "x"})
	_, err = client.Call(context.Background(), server.Addr(), req)
	if !errors.Is(err, overload.ErrOverloaded) {
		t.Fatalf("call error = %v, want ErrOverloaded across the hop", err)
	}
	if !Refused(err) {
		t.Fatal("overload shed must count as a provable refusal")
	}
	var werr *wire.Error
	if errors.As(err, &werr) {
		t.Fatal("re-hydrated overload error must not read as an authoritative wire.Error")
	}
	if !overload.Liveness(err) {
		t.Fatal("an overload reply proves the peer alive")
	}
}

// TestErrorReplyCodes pins the handler-error code mapping both ways.
func TestErrorReplyCodes(t *testing.T) {
	req := wire.Frame{Kind: wire.KindPost, From: "a", To: "b"}
	cases := []struct {
		err      error
		code     string
		sentinel error
	}{
		{overload.ErrOverloaded, overload.CodeOverloaded, overload.ErrOverloaded},
		{overload.ErrDeadlinePast, overload.CodeDeadlinePast, overload.ErrDeadlinePast},
		{errors.New("boom"), "handler", nil},
	}
	for _, tc := range cases {
		reply := ErrorReply(req, tc.err)
		var werr wire.Error
		if err := reply.Body(&werr); err != nil {
			t.Fatal(err)
		}
		if werr.Code != tc.code {
			t.Fatalf("code for %v = %q, want %q", tc.err, werr.Code, tc.code)
		}
		back := IsErrorReply(wire.KindPost, reply)
		if tc.sentinel != nil {
			if !errors.Is(back, tc.sentinel) {
				t.Fatalf("rehydrated %v, want %v", back, tc.sentinel)
			}
		} else {
			var w *wire.Error
			if !errors.As(back, &w) {
				t.Fatalf("plain handler error should surface as *wire.Error, got %T", back)
			}
		}
	}
}

// TestTCPCancelAbortsStalledWrite is the stalled-writer regression: a
// canceled context with no deadline must interrupt a WriteFrame blocked
// on a peer that accepted the connection but never reads.
func TestTCPCancelAbortsStalledWrite(t *testing.T) {
	// A listener that accepts and then ignores the connection: the
	// client's socket buffers fill and WriteFrame blocks.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// A tiny receive buffer keeps the kernel from absorbing the
			// frame on the peer's behalf.
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetReadBuffer(4096)
			}
			defer conn.Close()
			<-stop
		}
	}()

	fab := NewTCPFabric()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	// The largest legal frame body cannot fit the stalled peer's buffers:
	// without the ctx watcher this write blocks forever.
	req := wire.Frame{Kind: wire.KindPost, Payload: make([]byte, wire.MaxFrameSize-64)}
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := client.Call(ctx, ln.Addr().String(), req)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled write should fail once canceled")
		}
		// The write must have genuinely blocked until the cancellation —
		// an instant failure would mean the test exercised nothing.
		if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
			t.Fatalf("call returned after %v; the write never stalled", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Call still blocked on a stalled peer after 5s")
	}
}

// TestTCPLateReplyCounted is the seq-leak regression: a reply arriving
// after its caller withdrew (ctx expiry raced the reply) is dropped and
// counted, and the pending map carries no leaked entry.
func TestTCPLateReplyCounted(t *testing.T) {
	fab := NewTCPFabric()
	reg := telemetry.NewRegistry()
	fab.Instrument(reg)
	server, err := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		time.Sleep(150 * time.Millisecond)
		return echoHandler(from, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "slow"})
	if _, err := client.Call(ctx, server.Addr(), req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call should time out, got %v", err)
	}

	lateReplies := reg.Counter("naplet_transport_late_replies_total",
		"replies that arrived after their caller timed out or canceled")
	deadline := time.Now().Add(2 * time.Second)
	for lateReplies.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := lateReplies.Value(); got != 1 {
		t.Fatalf("late_replies counter = %d, want 1", got)
	}

	// No correlation entry leaked: the shared mux's pending map is empty.
	tn := client.(*tcpNode)
	tn.muxMu.Lock()
	mc := tn.muxes[server.Addr()]
	tn.muxMu.Unlock()
	if mc == nil {
		t.Fatal("mux should still be alive after a late reply")
	}
	mc.mu.Lock()
	n := len(mc.pending)
	mc.mu.Unlock()
	if n != 0 {
		t.Fatalf("pending map leaked %d entries", n)
	}

	// The connection is still healthy for the next call.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	req2, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "again"})
	if _, err := client.Call(ctx2, server.Addr(), req2); err != nil {
		t.Fatalf("call after late reply: %v", err)
	}
}
