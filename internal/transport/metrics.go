// Fabric instrumentation: frame and byte counters plus per-kind call
// latency histograms, shared by both fabric implementations (TCP here,
// netsim in its own package). A nil *Metrics is a valid no-op receiver, so
// uninstrumented fabrics pay only a nil check on the hot path.
package transport

import (
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Metrics holds a fabric's telemetry handles. Build one with NewMetrics
// against the server's registry; every method is safe on a nil receiver.
type Metrics struct {
	reg *telemetry.Registry

	framesSent   *telemetry.Counter
	framesRecv   *telemetry.Counter
	bytesSent    *telemetry.Counter
	bytesRecv    *telemetry.Counter
	callErrors   *telemetry.Counter
	lateReplies  *telemetry.Counter
	deadlineShed *telemetry.Counter

	// latency caches per-kind call histograms so the hot path resolves a
	// kind with one lock-free map read instead of label formatting.
	latency sync.Map // wire.Kind -> *telemetry.Histogram
}

// NewMetrics registers the fabric's series in reg and also exposes the
// wire package's encode-buffer pool counters (sampled at scrape time).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		reg:        reg,
		framesSent: reg.Counter("naplet_transport_frames_sent_total", "frames written to the fabric"),
		framesRecv: reg.Counter("naplet_transport_frames_recv_total", "frames read from the fabric"),
		bytesSent:  reg.Counter("naplet_transport_bytes_sent_total", "encoded bytes written to the fabric"),
		bytesRecv:  reg.Counter("naplet_transport_bytes_recv_total", "encoded bytes read from the fabric"),
		callErrors: reg.Counter("naplet_transport_call_errors_total", "calls that failed at the transport level"),
		lateReplies: reg.Counter("naplet_transport_late_replies_total",
			"replies that arrived after their caller timed out or canceled"),
		deadlineShed: reg.Counter("naplet_transport_deadline_shed_total",
			"inbound requests shed because the propagated budget had expired before dispatch"),
	}
	reg.CounterFunc("naplet_wire_encbuf_gets_total", "encode-buffer pool acquisitions", func() float64 {
		gets, _ := wire.PoolCounters()
		return float64(gets)
	})
	reg.CounterFunc("naplet_wire_encbuf_misses_total", "encode-buffer pool misses (fresh allocations)", func() float64 {
		_, misses := wire.PoolCounters()
		return float64(misses)
	})
	return m
}

// Sent charges one outbound frame.
func (m *Metrics) Sent(f *wire.Frame) {
	if m == nil {
		return
	}
	m.framesSent.Inc()
	m.bytesSent.Add(int64(f.EncodedSize()))
}

// Recv charges one inbound frame.
func (m *Metrics) Recv(f *wire.Frame) {
	if m == nil {
		return
	}
	m.framesRecv.Inc()
	m.bytesRecv.Add(int64(f.EncodedSize()))
}

// CallError counts a transport-level call failure.
func (m *Metrics) CallError() {
	if m == nil {
		return
	}
	m.callErrors.Inc()
}

// LateReply counts a correlated reply that arrived after its caller
// withdrew (timeout or cancellation raced the reply).
func (m *Metrics) LateReply() {
	if m == nil {
		return
	}
	m.lateReplies.Inc()
}

// DeadlineShed counts an inbound request dropped before dispatch
// because its propagated budget had already expired.
func (m *Metrics) DeadlineShed() {
	if m == nil {
		return
	}
	m.deadlineShed.Inc()
}

// ObserveCall records one request/reply round trip for the frame kind.
func (m *Metrics) ObserveCall(kind wire.Kind, d time.Duration) {
	if m == nil {
		return
	}
	if h, ok := m.latency.Load(kind); ok {
		h.(*telemetry.Histogram).ObserveDuration(d)
		return
	}
	h := m.reg.Histogram("naplet_transport_call_latency_seconds",
		"request/reply round-trip latency by frame kind",
		telemetry.LatencyBuckets, "kind", string(kind))
	m.latency.Store(kind, h)
	h.ObserveDuration(d)
}
