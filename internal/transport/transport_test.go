package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

type echoBody struct {
	Text string
}

func echoHandler(from string, f wire.Frame) (wire.Frame, error) {
	var body echoBody
	if err := f.Body(&body); err != nil {
		return wire.Frame{}, err
	}
	body.Text = "echo:" + body.Text
	return wire.NewFrame(f.Kind, f.To, f.From, &body)
}

func TestTCPCallRoundTrip(t *testing.T) {
	fab := NewTCPFabric()
	server, err := fab.Attach("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := fab.Attach("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "hi"})
	reply, err := client.Call(context.Background(), server.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	var body echoBody
	if err := reply.Body(&body); err != nil {
		t.Fatal(err)
	}
	if body.Text != "echo:hi" {
		t.Fatalf("reply = %q", body.Text)
	}
	if reply.Seq != 1 {
		t.Fatalf("seq = %d", reply.Seq)
	}
}

func TestTCPHandlerErrorPropagates(t *testing.T) {
	fab := NewTCPFabric()
	server, err := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, fmt.Errorf("LANDING denied")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	req, _ := wire.NewFrame(wire.KindLandingRequest, "", "", &echoBody{})
	_, err = client.Call(context.Background(), server.Addr(), req)
	if err == nil || !strings.Contains(err.Error(), "LANDING denied") {
		t.Fatalf("want handler error, got %v", err)
	}
	var werr *wire.Error
	if !errors.As(err, &werr) {
		t.Fatalf("want *wire.Error, got %T", err)
	}
}

func TestTCPHandlerPanicRecovered(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		panic("agent misbehaved")
	})
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	_, err := client.Call(context.Background(), server.Addr(), req)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want panic error, got %v", err)
	}
	// Server must still serve after a handler panic.
	_, err = client.Call(context.Background(), server.Addr(), req)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("server dead after panic: %v", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	fab := NewTCPFabric()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	_, err := client.Call(ctx, "127.0.0.1:1", req)
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestTCPClosedNode(t *testing.T) {
	fab := NewTCPFabric()
	node, _ := fab.Attach("127.0.0.1:0", echoHandler)
	addr := node.Addr()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	if _, err := node.Call(context.Background(), addr, req); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("want ErrNodeClosed, got %v", err)
	}
	// Address is reusable after close.
	n2, err := fab.Attach(addr, echoHandler)
	if err != nil {
		t.Fatalf("reattach after close: %v", err)
	}
	n2.Close()
}

func TestTCPConcurrentCalls(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: fmt.Sprint(i)})
			reply, err := client.Call(context.Background(), server.Addr(), req)
			if err != nil {
				errs <- err
				return
			}
			var body echoBody
			reply.Body(&body)
			if body.Text != "echo:"+fmt.Sprint(i) {
				errs <- fmt.Errorf("cross-talk: %q for %d", body.Text, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestIsErrorReplyNonError(t *testing.T) {
	reply, _ := wire.NewFrame(wire.KindPostConfirm, "a", "b", &echoBody{})
	if err := IsErrorReply(wire.KindPost, reply); err != nil {
		t.Fatalf("non-error reply misdetected: %v", err)
	}
}

func TestTCPConnectionPooling(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()
	cn := client.(*tcpNode)

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "a"})
	for i := 0; i < 5; i++ {
		if _, err := client.Call(context.Background(), server.Addr(), req); err != nil {
			t.Fatal(err)
		}
	}
	cn.poolMu.Lock()
	idle := len(cn.pools[server.Addr()])
	cn.poolMu.Unlock()
	// Sequential calls reuse one pooled connection.
	if idle != 1 {
		t.Fatalf("idle pooled conns = %d, want 1", idle)
	}
}

func TestTCPStalePooledConnRetries(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()
	cn := client.(*tcpNode)

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "x"})
	if _, err := client.Call(context.Background(), server.Addr(), req); err != nil {
		t.Fatal(err)
	}
	// Sabotage the pooled connection: close it locally so the next reuse
	// fails and must retry on a fresh dial.
	cn.poolMu.Lock()
	for _, c := range cn.pools[server.Addr()] {
		c.Close()
	}
	cn.poolMu.Unlock()

	reply, err := client.Call(context.Background(), server.Addr(), req)
	if err != nil {
		t.Fatalf("stale-conn retry failed: %v", err)
	}
	var body echoBody
	reply.Body(&body)
	if body.Text != "echo:x" {
		t.Fatalf("reply = %q", body.Text)
	}
}

func TestTCPPoolBounded(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()
	cn := client.(*tcpNode)

	// Many concurrent calls open many connections; after they settle the
	// pool must hold at most the cap.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "c"})
			client.Call(context.Background(), server.Addr(), req)
		}()
	}
	wg.Wait()
	cn.poolMu.Lock()
	idle := len(cn.pools[server.Addr()])
	cn.poolMu.Unlock()
	if idle > maxIdleConnsPerPeer {
		t.Fatalf("pool overflow: %d > %d", idle, maxIdleConnsPerPeer)
	}
}
