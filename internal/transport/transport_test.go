package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

type echoBody struct {
	Text string
}

func echoHandler(from string, f wire.Frame) (wire.Frame, error) {
	var body echoBody
	if err := f.Body(&body); err != nil {
		return wire.Frame{}, err
	}
	body.Text = "echo:" + body.Text
	return wire.NewFrame(f.Kind, f.To, f.From, &body)
}

func TestTCPCallRoundTrip(t *testing.T) {
	fab := NewTCPFabric()
	server, err := fab.Attach("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := fab.Attach("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "hi"})
	reply, err := client.Call(context.Background(), server.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	var body echoBody
	if err := reply.Body(&body); err != nil {
		t.Fatal(err)
	}
	if body.Text != "echo:hi" {
		t.Fatalf("reply = %q", body.Text)
	}
	if reply.Seq != 1 {
		t.Fatalf("seq = %d", reply.Seq)
	}
}

func TestTCPHandlerErrorPropagates(t *testing.T) {
	fab := NewTCPFabric()
	server, err := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, fmt.Errorf("LANDING denied")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	req, _ := wire.NewFrame(wire.KindLandingRequest, "", "", &echoBody{})
	_, err = client.Call(context.Background(), server.Addr(), req)
	if err == nil || !strings.Contains(err.Error(), "LANDING denied") {
		t.Fatalf("want handler error, got %v", err)
	}
	var werr *wire.Error
	if !errors.As(err, &werr) {
		t.Fatalf("want *wire.Error, got %T", err)
	}
}

func TestTCPHandlerPanicRecovered(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		panic("agent misbehaved")
	})
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	_, err := client.Call(context.Background(), server.Addr(), req)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want panic error, got %v", err)
	}
	// Server must still serve after a handler panic.
	_, err = client.Call(context.Background(), server.Addr(), req)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("server dead after panic: %v", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	fab := NewTCPFabric()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	_, err := client.Call(ctx, "127.0.0.1:1", req)
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestTCPClosedNode(t *testing.T) {
	fab := NewTCPFabric()
	node, _ := fab.Attach("127.0.0.1:0", echoHandler)
	addr := node.Addr()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	if _, err := node.Call(context.Background(), addr, req); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("want ErrNodeClosed, got %v", err)
	}
	// Address is reusable after close.
	n2, err := fab.Attach(addr, echoHandler)
	if err != nil {
		t.Fatalf("reattach after close: %v", err)
	}
	n2.Close()
}

func TestTCPConcurrentCalls(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: fmt.Sprint(i)})
			reply, err := client.Call(context.Background(), server.Addr(), req)
			if err != nil {
				errs <- err
				return
			}
			var body echoBody
			reply.Body(&body)
			if body.Text != "echo:"+fmt.Sprint(i) {
				errs <- fmt.Errorf("cross-talk: %q for %d", body.Text, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestIsErrorReplyNonError(t *testing.T) {
	reply, _ := wire.NewFrame(wire.KindPostConfirm, "a", "b", &echoBody{})
	if err := IsErrorReply(wire.KindPost, reply); err != nil {
		t.Fatalf("non-error reply misdetected: %v", err)
	}
}

func TestTCPConnReuse(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()
	cn := client.(*tcpNode)

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "a"})
	for i := 0; i < 5; i++ {
		if _, err := client.Call(context.Background(), server.Addr(), req); err != nil {
			t.Fatal(err)
		}
	}
	// Sequential calls share one multiplexed connection.
	cn.muxMu.Lock()
	muxes := len(cn.muxes)
	cn.muxMu.Unlock()
	if muxes != 1 {
		t.Fatalf("shared conns = %d, want 1", muxes)
	}
}

func TestTCPStaleConnRetries(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()
	cn := client.(*tcpNode)

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "x"})
	if _, err := client.Call(context.Background(), server.Addr(), req); err != nil {
		t.Fatal(err)
	}
	// Sabotage the shared connection: close the socket locally so the next
	// write or read fails and the call must retry on a fresh dial.
	cn.muxMu.Lock()
	for _, mc := range cn.muxes {
		mc.conn.Close()
	}
	cn.muxMu.Unlock()

	reply, err := client.Call(context.Background(), server.Addr(), req)
	if err != nil {
		t.Fatalf("stale-conn retry failed: %v", err)
	}
	var body echoBody
	reply.Body(&body)
	if body.Text != "echo:x" {
		t.Fatalf("reply = %q", body.Text)
	}
}

func TestTCPCallsShareOneConn(t *testing.T) {
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()
	cn := client.(*tcpNode)

	// Many concurrent calls must multiplex over a single connection.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "c"})
			if _, err := client.Call(context.Background(), server.Addr(), req); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	cn.muxMu.Lock()
	muxes := len(cn.muxes)
	cn.muxMu.Unlock()
	if muxes != 1 {
		t.Fatalf("shared conns = %d, want 1", muxes)
	}
}

func TestTCPPipelinedSlowRequestDoesNotBlock(t *testing.T) {
	// A slow handler must not stall other requests pipelined behind it on
	// the same connection: replies may return out of request order.
	block := make(chan struct{})
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		var body echoBody
		if err := f.Body(&body); err != nil {
			return wire.Frame{}, err
		}
		if body.Text == "slow" {
			<-block
		}
		return wire.NewFrame(f.Kind, f.To, f.From, &body)
	})
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	slowDone := make(chan error, 1)
	go func() {
		req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "slow"})
		_, err := client.Call(context.Background(), server.Addr(), req)
		slowDone <- err
	}()

	// The fast call completes while the slow one is still parked.
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "fast"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Call(ctx, server.Addr(), req); err != nil {
		t.Fatalf("fast call blocked behind slow one: %v", err)
	}
	close(block)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

func TestTCPCallTimeoutLeavesConnUsable(t *testing.T) {
	// A caller that gives up must not poison the shared connection for
	// later calls; its late reply is dropped by the mux reader.
	block := make(chan struct{})
	fab := NewTCPFabric()
	server, _ := fab.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		var body echoBody
		if err := f.Body(&body); err != nil {
			return wire.Frame{}, err
		}
		if body.Text == "hang" {
			<-block
		}
		return wire.NewFrame(f.Kind, f.To, f.From, &body)
	})
	defer server.Close()
	client, _ := fab.Attach("127.0.0.1:0", echoHandler)
	defer client.Close()

	hang, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "hang"})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := client.Call(ctx, server.Addr(), hang); err == nil {
		t.Fatal("hung call did not time out")
	}
	close(block)

	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "after"})
	reply, err := client.Call(context.Background(), server.Addr(), req)
	if err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	var body echoBody
	reply.Body(&body)
	if body.Text != "after" {
		t.Fatalf("reply = %q", body.Text)
	}
}
