package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/man"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// E10 — event monitoring: centralized trap forwarding vs. on-site
// filtering by resident naplets.
//
// The paper's §6 application family (and its companion network-management
// work, reference [7]) contrasts two ways of watching device events:
// conventional SNMP forwards every trap — heartbeats, threshold noise,
// link flaps — to the management station, while a mobile agent resident on
// the device observes the stream locally and ships home only the
// significant alerts. The win is the noise ratio.

// E10Cell is one strategy's measured outcome.
type E10Cell struct {
	Strategy      Strategy
	Devices       int
	Rounds        int
	EventsTotal   int
	Significant   int
	StationFrames int64
	StationBytes  int64
	AlertsGot     int
}

// E10 strategies.
const (
	// StratCNMPTraps forwards every trap to the station.
	StratCNMPTraps Strategy = "cnmp-traps"
	// StratMANFilter places a monitoring naplet on each device.
	StratMANFilter Strategy = "man-filter"
)

// RunE10 measures one event-monitoring strategy over devices × rounds.
func RunE10(strategy Strategy, devices, rounds int, seed int64) (E10Cell, error) {
	cell := E10Cell{Strategy: strategy, Devices: devices, Rounds: rounds}
	tb, err := man.NewTestbed(man.TestbedConfig{
		Devices:    devices,
		Seed:       seed,
		Link:       netsim.LAN,
		BundleSize: E3BundleSize,
	})
	if err != nil {
		return cell, err
	}
	defer tb.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	switch strategy {
	case StratCNMPTraps:
		tb.Net.ResetStats()
		for r := 0; r < rounds; r++ {
			tb.TickEvents(time.Second)
			if _, err := tb.ForwardAllTraps(ctx, man.CNMPHost); err != nil {
				return cell, err
			}
		}
		cell.AlertsGot = len(tb.CNMP.SignificantTraps())
		st := tb.Net.HostStats(man.CNMPHost)
		cell.StationFrames = st.FramesRecv
		cell.StationBytes = st.BytesSent + st.BytesRecv

	case StratMANFilter:
		tb.Net.ResetStats()
		// Drive the device workloads while the monitors watch on site.
		tickDone := make(chan struct{})
		go func() {
			defer close(tickDone)
			for r := 0; r < rounds; r++ {
				tb.TickEvents(time.Second)
				time.Sleep(2 * time.Millisecond)
			}
		}()
		res, err := tb.Station.MonitorAll(ctx, tb.DeviceNames, rounds)
		<-tickDone
		if err != nil {
			return cell, err
		}
		for _, alerts := range res.Alerts {
			cell.AlertsGot += len(alerts)
		}
		st := tb.Net.HostStats(man.StationHost)
		cell.StationFrames = st.FramesRecv
		cell.StationBytes = st.BytesSent + st.BytesRecv

	default:
		return cell, fmt.Errorf("e10: unknown strategy %q", strategy)
	}

	cell.EventsTotal, cell.Significant = tb.TrapTotals()
	return cell, nil
}

// E10EventMonitoring prints the trap-flooding vs on-site-filtering
// comparison.
func E10EventMonitoring(w io.Writer, opts Options) error {
	cases := []struct{ devices, rounds int }{{4, 20}, {16, 50}}
	if opts.Quick {
		cases = []struct{ devices, rounds int }{{4, 10}}
	}
	table := stats.NewTable("devices", "rounds", "strategy", "events", "signif", "alerts", "station frames", "station bytes")
	for _, c := range cases {
		cn, err := RunE10(StratCNMPTraps, c.devices, c.rounds, opts.Seed)
		if err != nil {
			return err
		}
		mn, err := RunE10(StratMANFilter, c.devices, c.rounds, opts.Seed)
		if err != nil {
			return err
		}
		// Both strategies must surface exactly the significant events
		// (seeded identically, so the streams match).
		if cn.AlertsGot != cn.Significant {
			return fmt.Errorf("e10: cnmp missed alerts: got %d of %d", cn.AlertsGot, cn.Significant)
		}
		if mn.AlertsGot != mn.Significant {
			return fmt.Errorf("e10: man missed alerts: got %d of %d", mn.AlertsGot, mn.Significant)
		}
		for _, cell := range []E10Cell{cn, mn} {
			table.AddRow(c.devices, c.rounds, string(cell.Strategy), cell.EventsTotal,
				cell.Significant, cell.AlertsGot, cell.StationFrames, stats.Bytes(cell.StationBytes))
		}
	}
	table.WriteTo(w)
	fmt.Fprintln(w, "\nExpected shape: both strategies deliver every significant alert, but")
	fmt.Fprintln(w, "the centralized path hauls the full event stream (heartbeats and")
	fmt.Fprintln(w, "threshold noise included) to the station, while resident naplets")
	fmt.Fprintln(w, "suppress the noise on site — station frames drop by the noise ratio.")
	return nil
}
