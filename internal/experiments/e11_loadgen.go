package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/loadgen"
	"repro/internal/stats"
)

// E11EnterpriseSweep is the enterprise-scale MAN scenario of §6 run
// through the loadgen harness: sustained mixed agent traffic plus the
// CNMP-vs-naplet management sweep at increasing device counts, on the
// simulated WAN. It prints the station-link byte comparison (the paper's
// "heavy traffic between the management station and network devices")
// and the run's SLO table, and repeats the smallest point with seeded
// fault injection to show the exactly-once invariants holding under
// crashes, partitions, drops and duplicates.
func E11EnterpriseSweep(w io.Writer, opts Options) error {
	sizes := []int{200, 1000, 5000}
	prof := loadgen.Profiles["man-sweep"]
	if opts.Quick {
		sizes = []int{50, 200}
		prof = loadgen.Profiles["short"]
	}

	fmt.Fprintln(w, "E11: enterprise MAN sweep — CNMP vs naplet station traffic at scale")
	fmt.Fprintf(w, "profile %s (%d vars/device), netsim WAN, seed %d\n\n", prof.Name, prof.SweepVars, opts.Seed)

	table := stats.NewTable("devices", "cnmp station", "naplet station", "ratio", "tours", "msgs", "violations")
	for _, n := range sizes {
		p := prof
		p.Devices = n
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			Profile: p,
			Fabric:  loadgen.FabricNetsimWAN,
			Seed:    opts.Seed,
			Out:     io.Discard,
		})
		if err != nil {
			return fmt.Errorf("e11: %d devices: %w", n, err)
		}
		table.AddRow(n, stats.Bytes(res.CNMPBytes), stats.Bytes(res.NapletBytes),
			fmt.Sprintf("%.2f", res.ByteRatio), res.ToursCompleted,
			res.MessagesDelivered, len(res.Violations))
		if len(res.Violations) > 0 {
			for _, v := range res.Violations {
				fmt.Fprintf(w, "  violation at %d devices: %s\n", n, v)
			}
			return fmt.Errorf("e11: %d devices: %d violations", n, len(res.Violations))
		}
	}
	table.WriteTo(w)
	fmt.Fprintln(w, "\nThe CNMP station pays one request/reply round trip per variable per")
	fmt.Fprintln(w, "device on its own links; the MAN station pays one launch and one")
	fmt.Fprintln(w, "batched report per device wave. The ratio holds near 5x at every")
	fmt.Fprintln(w, "scale while the absolute station load diverges in megabytes — the")
	fmt.Fprintln(w, "paper's traffic-locality claim.")

	// Fault-injected variant: the same plan under seeded chaos.
	p := prof
	p.Devices = sizes[0]
	fmt.Fprintf(w, "\nfault-injected variant (%d devices, seeded crash/partition/drop/dup):\n", p.Devices)
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Profile: p,
		Fabric:  loadgen.FabricNetsimLAN,
		Seed:    opts.Seed,
		Faults:  true,
		Out:     io.Discard,
	})
	if err != nil {
		return fmt.Errorf("e11 faults: %w", err)
	}
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		return fmt.Errorf("e11 faults: %d violations", len(res.Violations))
	}
	fmt.Fprintf(w, "  %d tours, %d messages, %d landings — exactly-once reconciled, plan %s\n",
		res.ToursCompleted, res.MessagesDelivered, res.Landings, res.PlanDigest)
	return nil
}
