package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/directory"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/state"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// E4 — §3: itinerary patterns.

// workerAgent does a fixed amount of per-visit "work" (a sleep read from
// its state) and reports on destruction.
type workerAgent struct{}

func (workerAgent) OnStart(ctx *naplet.Context) error {
	var ms int
	if err := ctx.State().Load("workMs", &ms); err == nil && ms > 0 {
		select {
		case <-time.After(time.Duration(ms) * time.Millisecond):
		case <-ctx.Cancel.Done():
			return ctx.Cancel.Err()
		}
	}
	return nil
}

func (workerAgent) OnDestroy(ctx *naplet.Context) {
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte("done"))
}

// E4Shape names one itinerary shape in the comparison.
type E4Shape string

// E4 shapes.
const (
	ShapeSeq      E4Shape = "seq"
	ShapePar      E4Shape = "par"
	ShapeParOfSeq E4Shape = "par-of-seq" // paper Example 3: k branches of n/k stops
)

// RunE4 measures the completion time of one itinerary shape over n servers
// with workMs of business logic per visit. Completion = every agent
// reported.
func RunE4(shape E4Shape, n, workMs int, link netsim.Link, timeScale float64, seed int64) (time.Duration, error) {
	net := netsim.New(netsim.Config{DefaultLink: link, TimeScale: timeScale, Seed: seed})
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name: "exp.Worker",
		New:  func() naplet.Behavior { return workerAgent{} },
	})
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	servers := make([]*server.Server, 0, n+1)
	for _, name := range append([]string{"home"}, names...) {
		srv, err := server.New(server.Config{Name: name, Fabric: net, Registry: reg})
		if err != nil {
			return 0, err
		}
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	var pattern *itinerary.Pattern
	wantReports := 1
	switch shape {
	case ShapeSeq:
		pattern = itinerary.SeqVisits(names, "")
	case ShapePar:
		pattern = itinerary.ParVisits(names, "")
		wantReports = n
	case ShapeParOfSeq:
		// Example 3 generalized: 2 branches of n/2 sequential stops.
		half := n / 2
		if half == 0 {
			half = 1
		}
		pattern = itinerary.Par(
			itinerary.SeqVisits(names[:half], ""),
			itinerary.SeqVisits(names[half:], ""),
		)
		wantReports = 2
		if len(names[half:]) == 0 {
			wantReports = 1
		}
	default:
		return 0, fmt.Errorf("e4: unknown shape %q", shape)
	}

	reports := make(chan struct{}, wantReports+1)
	start := time.Now()
	_, err := servers[0].Launch(context.Background(), server.LaunchOptions{
		Owner:    "czxu",
		Codebase: "exp.Worker",
		Pattern:  pattern,
		InitState: func(s *state.State) error {
			return s.SetPrivate("workMs", workMs)
		},
		Listener: func(manager.Result) { reports <- struct{}{} },
	})
	if err != nil {
		return 0, err
	}
	deadline := time.After(5 * time.Minute)
	for i := 0; i < wantReports; i++ {
		select {
		case <-reports:
		case <-deadline:
			return 0, fmt.Errorf("e4: timeout waiting for report %d/%d", i+1, wantReports)
		}
	}
	return time.Since(start), nil
}

// E4Itinerary compares the completion time of the three §3 pattern shapes:
// par ≈ seq/n plus clone overhead, par-of-seq in between.
func E4Itinerary(w io.Writer, opts Options) error {
	sizes := []int{2, 4, 8}
	workMs := 20
	if opts.Quick {
		sizes = []int{2, 4}
		workMs = 10
	}
	table := stats.NewTable("servers", "work/visit", "seq", "par", "par-of-seq", "speedup(par)")
	for _, n := range sizes {
		seq, err := RunE4(ShapeSeq, n, workMs, netsim.LAN, 1, opts.Seed)
		if err != nil {
			return err
		}
		par, err := RunE4(ShapePar, n, workMs, netsim.LAN, 1, opts.Seed)
		if err != nil {
			return err
		}
		pos, err := RunE4(ShapeParOfSeq, n, workMs, netsim.LAN, 1, opts.Seed)
		if err != nil {
			return err
		}
		table.AddRow(n, fmt.Sprintf("%dms", workMs),
			seq.Round(time.Millisecond), par.Round(time.Millisecond),
			pos.Round(time.Millisecond), float64(seq)/float64(par))
	}
	table.WriteTo(w)
	fmt.Fprintln(w, "\nExpected shape: par completes in ~1 visit time regardless of n;")
	fmt.Fprintln(w, "seq grows linearly; par-of-seq (2 branches) sits near seq/2.")
	return nil
}

// ---------------------------------------------------------------------------
// E5 — §4.1: location modes. A target agent tours the space; a stationary
// controller agent exchanges a ping-pong with it at every stop, so every
// round exercises Locate against a fresh location.

// controllerAgent waits for "arrived" messages and answers "go", n times.
type controllerAgent struct{}

func (controllerAgent) OnStart(ctx *naplet.Context) error {
	var rounds int
	if err := ctx.State().Load("rounds", &rounds); err != nil {
		return err
	}
	for i := 0; i < rounds; i++ {
		msg, err := ctx.Messenger.Receive(ctx.Cancel)
		if err != nil {
			return err
		}
		// The arrival announcement carries the target's current server,
		// which seeds the book entry (essential in forward mode).
		ctx.AddressBook().Add(msg.From, string(msg.Body))
		if err := ctx.Messenger.Post(ctx.Cancel, msg.From, "go", nil); err != nil {
			return err
		}
	}
	return nil
}

// targetAgent announces its arrival to the controller and waits for "go"
// before travelling on.
type targetAgent struct{}

func (targetAgent) OnStart(ctx *naplet.Context) error {
	var ctrlKey string
	if err := ctx.State().Load("controller", &ctrlKey); err != nil {
		return err
	}
	ctrl, err := id.Parse(ctrlKey)
	if err != nil {
		return err
	}
	// Communication is restricted to peers in the address book (§2.1);
	// the controller is stationary at its home server.
	ctx.AddressBook().Add(ctrl, ctrl.Host())
	if err := ctx.Messenger.Post(ctx.Cancel, ctrl, "arrived", []byte(ctx.Server)); err != nil {
		return err
	}
	if _, err := ctx.Messenger.Receive(ctx.Cancel); err != nil {
		return err
	}
	return nil
}

func (targetAgent) OnDestroy(ctx *naplet.Context) {
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte("toured"))
}

// E5Result is one mode's measured outcome.
type E5Result struct {
	Frames    int64
	Bytes     int64
	Forwarded int64
	DirCalls  int64
	HomeCalls int64
}

// RunE5 runs the ping-pong tour under one location mode and returns the
// protocol cost.
func RunE5(mode locator.Mode, hops int, seed int64) (E5Result, error) {
	return RunE5TTL(mode, hops, 0, seed)
}

// RunE5TTL is RunE5 with a locator cache TTL: the §4.1 caching ablation.
// A cache "reduce[s] the response time of subsequent naplet location
// requests" at the price of staleness — stale hits turn into forwarding
// hops chasing the agent.
func RunE5TTL(mode locator.Mode, hops int, ttl time.Duration, seed int64) (E5Result, error) {
	var res E5Result
	net := netsim.New(netsim.Config{DefaultLink: netsim.LAN, Seed: seed})
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{Name: "exp.Controller", New: func() naplet.Behavior { return controllerAgent{} }})
	reg.MustRegister(&registry.Codebase{Name: "exp.Target", New: func() naplet.Behavior { return targetAgent{} }})

	dirAddr := ""
	if mode == locator.ModeDirectory {
		dirAddr = "dir"
		if _, err := directory.NewService().Serve(net, "dir"); err != nil {
			return res, err
		}
	}
	names := []string{"home"}
	for i := 0; i < hops; i++ {
		names = append(names, fmt.Sprintf("s%d", i))
	}
	servers := make(map[string]*server.Server, len(names))
	for _, name := range names {
		srv, err := server.New(server.Config{
			Name:          name,
			Fabric:        net,
			Registry:      reg,
			LocatorMode:   mode,
			LocatorTTL:    ttl,
			DirectoryAddr: dirAddr,
			ReportHome:    mode == locator.ModeHome,
		})
		if err != nil {
			return res, err
		}
		servers[name] = srv
		defer srv.Close()
	}
	home := servers["home"]

	ctrlID, err := home.Launch(context.Background(), server.LaunchOptions{
		Owner:    "ctrl",
		Codebase: "exp.Controller",
		Pattern:  itinerary.SeqVisits([]string{"home"}, ""),
		InitState: func(s *state.State) error {
			return s.SetPrivate("rounds", hops)
		},
	})
	if err != nil {
		return res, err
	}
	done := make(chan struct{}, 1)
	targetID, err := home.Launch(context.Background(), server.LaunchOptions{
		Owner:    "tgt",
		Codebase: "exp.Target",
		Pattern:  itinerary.SeqVisits(names[1:], ""),
		InitState: func(s *state.State) error {
			return s.SetPrivate("controller", ctrlID.Key())
		},
		Listener: func(manager.Result) { done <- struct{}{} },
	})
	if err != nil {
		return res, err
	}
	// The target must know the controller; seed its book via the launch
	// state and the controller learns the target from the first message.
	_ = targetID

	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		return res, fmt.Errorf("e5: tour did not complete (mode %v)", mode)
	}

	total := net.TotalStats()
	res.Frames = total.FramesSent
	res.Bytes = total.BytesSent
	for _, srv := range servers {
		ms := srv.Messenger().Stats()
		res.Forwarded += ms.Forwarded
		ls := srv.Locator().Stats()
		res.DirCalls += ls.Directory
		res.HomeCalls += ls.HomeQuery
	}
	return res, nil
}

// E5Location compares the three location modes' protocol cost for the same
// communication pattern.
func E5Location(w io.Writer, opts Options) error {
	hops := 8
	if opts.Quick {
		hops = 4
	}
	table := stats.NewTable("mode", "cache", "hops", "frames", "bytes", "fwd", "dirRPC", "homeRPC")
	type cfg struct {
		mode locator.Mode
		ttl  time.Duration
	}
	for _, c := range []cfg{
		{locator.ModeDirectory, 0},
		{locator.ModeDirectory, time.Minute},
		{locator.ModeHome, 0},
		{locator.ModeHome, time.Minute},
		{locator.ModeForward, 0},
	} {
		res, err := RunE5TTL(c.mode, hops, c.ttl, opts.Seed)
		if err != nil {
			return err
		}
		cache := "off"
		if c.ttl > 0 {
			cache = "on"
		}
		table.AddRow(c.mode.String(), cache, hops, res.Frames, stats.Bytes(res.Bytes),
			res.Forwarded, res.DirCalls, res.HomeCalls)
	}
	table.WriteTo(w)
	fmt.Fprintln(w, "\nExpected shape: directory mode trades registration traffic for")
	fmt.Fprintln(w, "direct delivery; forward mode avoids lookups but pays forwarding")
	fmt.Fprintln(w, "hops chasing the stale address-book entry; home mode sits between.")
	fmt.Fprintln(w, "Caching cuts lookup RPCs but stale hits against a moving target turn")
	fmt.Fprintln(w, "into forwarding hops (§4.1's staleness/latency trade-off).")
	return nil
}

// ---------------------------------------------------------------------------
// E6 — §4.2: post-office reliability. A mover agent tours the space while a
// stationary sender fires messages at it; every confirmed or held message
// must be received exactly once, regardless of interleaving.

// moverAgent collects messages at every stop until it has seen `expect`
// messages in total (across all stops), then completes its tour.
type moverAgent struct{}

func (moverAgent) OnStart(ctx *naplet.Context) error {
	var expect int
	if err := ctx.State().Load("expect", &expect); err != nil {
		return err
	}
	var got []string
	ctx.State().Load("got", &got) // absent on the first visit
	// Dwell briefly, draining the mailbox; at the final server, wait for
	// the rest.
	last := ctx.Itinerary().Done()
	deadline := time.After(20 * time.Millisecond)
	for {
		if last && len(got) >= expect {
			break
		}
		if msg, ok := ctx.Messenger.TryReceive(); ok {
			got = append(got, msg.Subject)
			continue
		}
		if last {
			msg, err := ctx.Messenger.Receive(ctx.Cancel)
			if err != nil {
				return err
			}
			got = append(got, msg.Subject)
			continue
		}
		select {
		case <-deadline:
			return ctx.State().SetPrivate("got", got)
		case <-time.After(time.Millisecond):
		}
	}
	return ctx.State().SetPrivate("got", got)
}

func (moverAgent) OnDestroy(ctx *naplet.Context) {
	var got []string
	ctx.State().Load("got", &got)
	payload := make([]byte, 0, 16)
	payload = append(payload, []byte(fmt.Sprintf("%d:", len(got)))...)
	for i, s := range got {
		if i > 0 {
			payload = append(payload, ',')
		}
		payload = append(payload, []byte(s)...)
	}
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, payload)
}

// E6Result summarizes one reliability run.
type E6Result struct {
	Sent      int
	Received  int
	Dups      int
	Held      int64
	Forwarded int64
	Drained   int64
}

// RunE6 launches a mover over `hops` servers and posts `msgs` messages at
// it from a home-resident sender record, verifying exactly-once delivery.
func RunE6(hops, msgs int, seed int64) (E6Result, error) {
	var res E6Result
	net := netsim.New(netsim.Config{DefaultLink: netsim.LAN, Seed: seed})
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{Name: "exp.Mover", New: func() naplet.Behavior { return moverAgent{} }})
	reg.MustRegister(&registry.Codebase{Name: "exp.Sender", New: func() naplet.Behavior { return senderAgent{} }})

	names := []string{"home"}
	for i := 0; i < hops; i++ {
		names = append(names, fmt.Sprintf("s%d", i))
	}
	servers := make(map[string]*server.Server, len(names))
	for _, name := range names {
		srv, err := server.New(server.Config{Name: name, Fabric: net, Registry: reg})
		if err != nil {
			return res, err
		}
		servers[name] = srv
		defer srv.Close()
	}
	home := servers["home"]

	report := make(chan string, 1)
	moverID, err := home.Launch(context.Background(), server.LaunchOptions{
		Owner:    "mover",
		Codebase: "exp.Mover",
		Pattern:  itinerary.SeqVisits(names[1:], ""),
		InitState: func(s *state.State) error {
			return s.SetPrivate("expect", msgs)
		},
		Listener: func(r manager.Result) { report <- string(r.Body) },
	})
	if err != nil {
		return res, err
	}

	// The sender is a stationary naplet at home firing messages at the
	// mover while it travels.
	_, err = home.Launch(context.Background(), server.LaunchOptions{
		Owner:    "sender",
		Codebase: "exp.Sender",
		Pattern:  itinerary.SeqVisits([]string{"home"}, ""),
		InitState: func(s *state.State) error {
			if err := s.SetPrivate("target", moverID.Key()); err != nil {
				return err
			}
			if err := s.SetPrivate("count", msgs); err != nil {
				return err
			}
			// Pace the sender across the mover's tour so later messages
			// must chase it through the visit traces (§4.2 case 2).
			if err := s.SetPrivate("paceMs", 3); err != nil {
				return err
			}
			return s.SetPrivate("hint", names[1])
		},
	})
	if err != nil {
		return res, err
	}

	var body string
	select {
	case body = <-report:
	case <-time.After(2 * time.Minute):
		return res, fmt.Errorf("e6: mover never completed")
	}
	countStr, list, _ := strings.Cut(body, ":")
	res.Sent = msgs
	res.Received, _ = strconv.Atoi(countStr)
	seen := map[string]int{}
	if list != "" {
		for _, s := range strings.Split(list, ",") {
			seen[s]++
		}
	}
	for _, c := range seen {
		if c > 1 {
			res.Dups += c - 1
		}
	}
	for _, srv := range servers {
		ms := srv.Messenger().Stats()
		res.Held += ms.Held
		res.Forwarded += ms.Forwarded
		res.Drained += ms.DrainedH
	}
	return res, nil
}

// senderAgent posts `count` uniquely-tagged messages at the target,
// retrying transient routing failures (the target may be mid-flight).
type senderAgent struct{}

func (senderAgent) OnStart(ctx *naplet.Context) error {
	var targetKey, hint string
	var count int
	if err := ctx.State().Load("target", &targetKey); err != nil {
		return err
	}
	if err := ctx.State().Load("count", &count); err != nil {
		return err
	}
	ctx.State().Load("hint", &hint)
	target, err := id.Parse(targetKey)
	if err != nil {
		return err
	}
	var paceMs int
	ctx.State().Load("paceMs", &paceMs)
	ctx.AddressBook().Add(target, hint)
	for i := 0; i < count; i++ {
		if paceMs > 0 && i > 0 {
			select {
			case <-time.After(time.Duration(paceMs) * time.Millisecond):
			case <-ctx.Cancel.Done():
				return ctx.Cancel.Err()
			}
		}
		subject := fmt.Sprintf("m%d", i)
		for attempt := 0; ; attempt++ {
			err := ctx.Messenger.Post(ctx.Cancel, target, subject, nil)
			if err == nil {
				break
			}
			if attempt > 50 {
				return fmt.Errorf("sender: message %s undeliverable: %w", subject, err)
			}
			select {
			case <-time.After(2 * time.Millisecond):
			case <-ctx.Cancel.Done():
				return ctx.Cancel.Err()
			}
		}
	}
	return nil
}

// E6PostOffice prints the reliability results across message counts.
func E6PostOffice(w io.Writer, opts Options) error {
	cases := []struct{ hops, msgs int }{{4, 8}, {8, 32}}
	if opts.Quick {
		cases = []struct{ hops, msgs int }{{3, 6}}
	}
	table := stats.NewTable("hops", "msgs", "received", "dups", "held", "fwd", "drained")
	for _, c := range cases {
		res, err := RunE6(c.hops, c.msgs, opts.Seed)
		if err != nil {
			return err
		}
		if res.Received != res.Sent || res.Dups != 0 {
			return fmt.Errorf("e6: delivery broken: %+v", res)
		}
		table.AddRow(c.hops, c.msgs, res.Received, res.Dups, res.Held, res.Forwarded, res.Drained)
	}
	table.WriteTo(w)
	fmt.Fprintln(w, "\nInvariant verified: every posted message is delivered exactly once,")
	fmt.Fprintln(w, "via direct delivery, trace forwarding (§4.2 case 2), or the special")
	fmt.Fprintln(w, "mailbox for early arrivals (§4.2 case 3).")
	return nil
}
