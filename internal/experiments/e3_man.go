package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/cnmp"
	"repro/internal/man"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// Strategy names one management approach in the E3 comparison.
type Strategy string

// E3 strategies.
const (
	// StratCNMPMicro is the paper's characterization of conventional SNMP
	// management: one round trip per MIB variable per device, sequential.
	StratCNMPMicro Strategy = "cnmp-micro"
	// StratCNMPBatch is the optimized baseline: one round trip per device.
	StratCNMPBatch Strategy = "cnmp-batch"
	// StratMANSeq is one naplet touring all devices, reporting once.
	StratMANSeq Strategy = "man-seq"
	// StratMANBcast is the paper's §6.2 broadcast itinerary: one clone
	// per device, individual reports.
	StratMANBcast Strategy = "man-bcast"
)

// E3Cell is one measured cell of the MAN-vs-CNMP comparison.
type E3Cell struct {
	Strategy Strategy
	Devices  int
	Vars     int

	// StationBytes is traffic on the management station's links
	// (sent+received) — the hot spot the paper's §6 criticism targets.
	StationBytes int64
	// TotalBytes is traffic across the whole network.
	TotalBytes int64
	// Frames is the total frame count.
	Frames int64
	// ModeledLatency is the analytic completion latency of the strategy's
	// sequential execution: the sum of all modeled transit delays (exact
	// for strictly sequential strategies).
	ModeledLatency time.Duration
	// Wall is the real elapsed time (meaningful when the fabric sleeps).
	Wall time.Duration
}

// RunE3Cell measures one strategy at one sweep point. bundleSize models the
// NMNaplet code; timeScale > 0 makes the fabric sleep (for wall-clock
// parallel measurements), 0 keeps it analytic.
func RunE3Cell(strategy Strategy, devices, vars int, link netsim.Link, bundleSize int, timeScale float64, seed int64) (E3Cell, error) {
	cell := E3Cell{Strategy: strategy, Devices: devices, Vars: vars}
	tb, err := man.NewTestbed(man.TestbedConfig{
		Devices:    devices,
		ExtraVars:  vars, // ensure enough synthetic scalars
		Link:       link,
		TimeScale:  timeScale,
		Seed:       seed,
		BundleSize: bundleSize,
	})
	if err != nil {
		return cell, err
	}
	defer tb.Close()
	oids := tb.QueryOIDs(vars)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	tb.Net.ResetStats()
	start := time.Now()
	station := man.StationHost
	switch strategy {
	case StratCNMPMicro:
		station = man.CNMPHost
		_, _, err = tb.CNMP.Collect(ctx, tb.ResponderNames, oids, cnmp.Options{})
	case StratCNMPBatch:
		station = man.CNMPHost
		_, _, err = tb.CNMP.Collect(ctx, tb.ResponderNames, oids, cnmp.Options{Batch: true})
	case StratMANSeq:
		_, _, err = tb.Station.CollectSequential(ctx, tb.DeviceNames, oids)
	case StratMANBcast:
		_, _, err = tb.Station.CollectBroadcast(ctx, tb.DeviceNames, oids)
	default:
		err = fmt.Errorf("e3: unknown strategy %q", strategy)
	}
	if err != nil {
		return cell, err
	}
	cell.Wall = time.Since(start)
	st := tb.Net.HostStats(station)
	cell.StationBytes = st.BytesSent + st.BytesRecv
	total := tb.Net.TotalStats()
	cell.TotalBytes = total.BytesSent
	cell.Frames = total.FramesSent
	cell.ModeledLatency = total.ModeledDelay
	return cell, nil
}

// E3BundleSize is the NMNaplet code bundle modeled in E3 (8 KiB: a small
// agent class file set).
const E3BundleSize = 8 << 10

// E3ManVsCnmp reproduces the §6 comparison: traffic and latency of the
// four strategies over device-count and variable-count sweeps on LAN and
// WAN links.
func E3ManVsCnmp(w io.Writer, opts Options) error {
	deviceSweep := []int{4, 16, 64}
	varSweep := []int{1, 4, 16, 64}
	if opts.Quick {
		deviceSweep = []int{4, 16}
		varSweep = []int{1, 16}
	}
	strategies := []Strategy{StratCNMPMicro, StratCNMPBatch, StratMANSeq, StratMANBcast}

	// Table A: traffic (link-independent; analytic fabric).
	fmt.Fprintln(w, "Table A — network traffic (station link bytes / total bytes)")
	table := stats.NewTable("devices", "vars", "strategy", "station", "total", "frames")
	for _, n := range deviceSweep {
		for _, v := range varSweep {
			for _, s := range strategies {
				cell, err := RunE3Cell(s, n, v, netsim.LAN, E3BundleSize, 0, opts.Seed)
				if err != nil {
					return fmt.Errorf("e3 %s n=%d v=%d: %w", s, n, v, err)
				}
				table.AddRow(n, v, string(s), stats.Bytes(cell.StationBytes),
					stats.Bytes(cell.TotalBytes), cell.Frames)
			}
		}
	}
	table.WriteTo(w)

	// Table B: modeled completion latency of the sequential strategies,
	// analytic (sum of transit delays is exact for sequential execution).
	fmt.Fprintln(w, "\nTable B — modeled completion latency (sequential strategies)")
	lat := stats.NewTable("devices", "vars", "link", "cnmp-micro", "man-seq", "winner")
	links := []struct {
		name string
		link netsim.Link
	}{{"LAN", netsim.LAN}, {"WAN", netsim.WAN}}
	for _, l := range links {
		for _, n := range deviceSweep {
			for _, v := range varSweep {
				c, err := RunE3Cell(StratCNMPMicro, n, v, l.link, E3BundleSize, 0, opts.Seed)
				if err != nil {
					return err
				}
				m, err := RunE3Cell(StratMANSeq, n, v, l.link, E3BundleSize, 0, opts.Seed)
				if err != nil {
					return err
				}
				winner := "man-seq"
				if c.ModeledLatency < m.ModeledLatency {
					winner = "cnmp-micro"
				}
				lat.AddRow(n, v, l.name, c.ModeledLatency.Round(time.Microsecond),
					m.ModeledLatency.Round(time.Microsecond), winner)
			}
		}
	}
	lat.WriteTo(w)

	// Table C: wall-clock latency of the parallel strategies with the
	// fabric actually sleeping WAN delays (time scale 10).
	fmt.Fprintln(w, "\nTable C — wall-clock latency, parallel strategies (WAN/10)")
	par := stats.NewTable("devices", "vars", "strategy", "wall")
	n, v := 8, 8
	if opts.Quick {
		n, v = 4, 4
	}
	for _, s := range []Strategy{StratCNMPMicro, StratMANSeq, StratMANBcast} {
		cell, err := RunE3Cell(s, n, v, netsim.WAN, E3BundleSize, 10, opts.Seed)
		if err != nil {
			return err
		}
		par.AddRow(n, v, string(s), cell.Wall.Round(time.Millisecond))
	}
	par.WriteTo(w)

	fmt.Fprintln(w, "\nExpected shapes (§6): CNMP station traffic grows with devices x vars;")
	fmt.Fprintln(w, "MAN station traffic stays near launch+report. On WAN, man-seq overcomes")
	fmt.Fprintln(w, "per-variable round-trip latency; at vars=1 the agent's code transfer")
	fmt.Fprintln(w, "makes CNMP the cheaper choice (the crossover).")
	return nil
}
