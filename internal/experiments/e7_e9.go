package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/monitor"
	"repro/internal/naplet"
	"repro/internal/navigator"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/security"
	"repro/internal/stats"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------------
// E7 — §2.1: lazy code loading and migration cost.

// E7Result is one dispatch's measured breakdown.
type E7Result struct {
	Breakdown navigator.Breakdown
	// FabricBytes is the total bytes the dispatch put on the network.
	FabricBytes int64
}

// E7Rig is a minimal two-navigator rig for migration measurements.
type E7Rig struct {
	net    *netsim.Network
	reg    *registry.Registry
	orig   *navigator.Navigator
	origM  *manager.Manager
	dest   *navigator.Navigator
	destC  *registry.Cache
	landed chan struct{}
	seq    int
}

func NewE7Rig(bundleSize int, delivery navigator.CodeDelivery, link netsim.Link, seed int64) (*E7Rig, error) {
	r := &E7Rig{
		net:    netsim.New(netsim.Config{DefaultLink: link, Seed: seed}),
		reg:    registry.New(),
		landed: make(chan struct{}, 64),
	}
	r.reg.MustRegister(&registry.Codebase{
		Name:       "exp.Mig",
		New:        func() naplet.Behavior { return workerAgent{} },
		BundleSize: bundleSize,
	})
	attach := func(name string) (*navigator.Navigator, *manager.Manager, *registry.Cache, error) {
		mgr := manager.New(name, nil)
		cache := registry.NewCache()
		var nav *navigator.Navigator
		node, err := r.net.Attach(name, func(from string, f wire.Frame) (wire.Frame, error) {
			switch f.Kind {
			case wire.KindLandingRequest:
				return nav.HandleLandingRequest(from, f)
			case wire.KindNapletTransfer:
				return nav.HandleTransfer(from, f)
			case wire.KindCodeFetch:
				return nav.HandleCodeFetch(from, f)
			default:
				return wire.Frame{}, fmt.Errorf("e7: unexpected kind %q", f.Kind)
			}
		})
		if err != nil {
			return nil, nil, nil, err
		}
		nav = navigator.New(navigator.Config{CodeDelivery: delivery}, name, node, nil, mgr, r.reg, cache, nil)
		nav.SetLandFunc(func(rec *naplet.Record, source string) { r.landed <- struct{}{} })
		return nav, mgr, cache, nil
	}
	var err error
	r.orig, r.origM, _, err = attach("orig")
	if err != nil {
		return nil, err
	}
	r.dest, _, r.destC, err = attach("dest")
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Dispatch migrates one fresh naplet with stateBytes of agent state.
func (r *E7Rig) Dispatch(stateBytes int) (E7Result, error) {
	var res E7Result
	r.seq++
	nid := id.MustNew("czxu", "orig", time.Unix(int64(r.seq)*7+1e9, 0))
	rec := naplet.NewRecord(nid, cred.Credential{NapletID: nid, Codebase: "exp.Mig"}, "exp.Mig", "orig",
		itinerary.MustNew(itinerary.SeqVisits([]string{"dest"}, "")))
	if stateBytes > 0 {
		rec.State.SetPrivate("payload", bytes.Repeat([]byte{0xab}, stateBytes))
	}
	rec.Log.RecordArrival("orig", time.Now())
	r.origM.RecordArrival(nid, rec.Codebase, "origin", time.Now())

	before := r.net.TotalStats().BytesSent
	bd, err := r.orig.Dispatch(context.Background(), rec, "dest")
	if err != nil {
		return res, err
	}
	select {
	case <-r.landed:
	case <-time.After(10 * time.Second):
		return res, errors.New("e7: landing never signalled")
	}
	res.Breakdown = bd
	res.FabricBytes = r.net.TotalStats().BytesSent - before
	return res, nil
}

// E7Migration sweeps bundle size × delivery mode × cache temperature and
// prints the migration cost breakdown.
func E7Migration(w io.Writer, opts Options) error {
	bundles := []int{1 << 10, 32 << 10, 256 << 10}
	if opts.Quick {
		bundles = []int{1 << 10, 32 << 10}
	}
	table := stats.NewTable("bundle", "mode", "cache", "record", "code", "fabric", "state 64KiB fabric")
	for _, bundle := range bundles {
		for _, mode := range []navigator.CodeDelivery{navigator.Push, navigator.Pull} {
			rig, err := NewE7Rig(bundle, mode, netsim.LAN, opts.Seed)
			if err != nil {
				return err
			}
			cold, err := rig.Dispatch(0)
			if err != nil {
				return err
			}
			warm, err := rig.Dispatch(0)
			if err != nil {
				return err
			}
			big, err := rig.Dispatch(64 << 10)
			if err != nil {
				return err
			}
			table.AddRow(stats.Bytes(int64(bundle)), mode.String(), "cold",
				stats.Bytes(int64(cold.Breakdown.RecordBytes)),
				stats.Bytes(rig.destC.Stats().BytesFetched),
				stats.Bytes(cold.FabricBytes), "-")
			table.AddRow(stats.Bytes(int64(bundle)), mode.String(), "warm",
				stats.Bytes(int64(warm.Breakdown.RecordBytes)), "0B",
				stats.Bytes(warm.FabricBytes), stats.Bytes(big.FabricBytes))
		}
	}
	table.WriteTo(w)
	fmt.Fprintln(w, "\nExpected shape: cold-cache fabric bytes grow with the bundle; warm")
	fmt.Fprintln(w, "dispatches pay only the record; push and pull move the same bundle")
	fmt.Fprintln(w, "bytes over different edges (origin->dest vs home->dest).")
	return nil
}

// ---------------------------------------------------------------------------
// E8 — §5.3: service channels vs open services.

// E8Result holds the measured service-access costs.
type E8Result struct {
	OpenCallsPerSec    float64
	ChannelRTTPerSec   float64
	ChannelOpensPerSec float64
	DeniedEnforced     bool
}

// RunE8 measures open-service call rate, service-channel round-trip rate,
// channel allocation rate, and verifies access-control enforcement.
func RunE8(iters int, seed int64) (E8Result, error) {
	var res E8Result
	ring := cred.NewKeyRing()
	ring.Register("admin", []byte("ka"))
	ring.Register("guest", []byte("kg"))
	t0 := time.Unix(1e9, 0)
	adminID := id.MustNew("admin", "h", t0)
	guestID := id.MustNew("guest", "h", t0)
	adminCred, _ := ring.Issue(adminID, "cb", []string{"netadmin"}, t0, time.Time{})
	guestCred, _ := ring.Issue(guestID, "cb", nil, t0, time.Time{})

	policy := security.Policy{
		Rules: []security.Rule{
			{Principal: "role:netadmin", Permissions: []security.Permission{"*"}, Effect: security.Allow},
		},
		Default: security.Deny,
	}
	sec := security.NewManager(ring, policy, nil)
	mgr := resource.NewManager(sec)
	mgr.RegisterOpen("echo", func(args []string) (string, error) { return "ok", nil })
	mgr.RegisterPrivileged("priv", func() resource.PrivilegedService {
		return resource.ServiceFunc(func(ch *resource.ServerEnd) {
			for {
				line, err := ch.ReadLine()
				if err != nil {
					return
				}
				ch.WriteLine(line)
			}
		})
	})

	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := mgr.CallOpen("echo", nil); err != nil {
			return res, err
		}
	}
	res.OpenCallsPerSec = float64(iters) / time.Since(start).Seconds()

	ch, err := mgr.OpenChannel(&adminCred, "priv")
	if err != nil {
		return res, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := ch.WriteLine("x"); err != nil {
			return res, err
		}
		if _, err := ch.ReadLine(); err != nil {
			return res, err
		}
	}
	res.ChannelRTTPerSec = float64(iters) / time.Since(start).Seconds()
	ch.Close()

	opens := iters / 10
	if opens == 0 {
		opens = 1
	}
	start = time.Now()
	for i := 0; i < opens; i++ {
		c, err := mgr.OpenChannel(&adminCred, "priv")
		if err != nil {
			return res, err
		}
		c.Close()
	}
	res.ChannelOpensPerSec = float64(opens) / time.Since(start).Seconds()

	_, err = mgr.OpenChannel(&guestCred, "priv")
	res.DeniedEnforced = err != nil
	return res, nil
}

// E8ServiceChannel prints the service-access cost table.
func E8ServiceChannel(w io.Writer, opts Options) error {
	iters := 50000
	if opts.Quick {
		iters = 5000
	}
	res, err := RunE8(iters, opts.Seed)
	if err != nil {
		return err
	}
	if !res.DeniedEnforced {
		return errors.New("e8: guest channel was not denied")
	}
	table := stats.NewTable("operation", "rate")
	table.AddRow("open-service call (by handler)", fmt.Sprintf("%.0f/s", res.OpenCallsPerSec))
	table.AddRow("service-channel round trip", fmt.Sprintf("%.0f/s", res.ChannelRTTPerSec))
	table.AddRow("service-channel allocation", fmt.Sprintf("%.0f/s", res.ChannelOpensPerSec))
	table.AddRow("guest access to privileged service", "denied (policy enforced)")
	table.WriteTo(w)
	fmt.Fprintln(w, "\nExpected shape: open services are cheapest; channel round trips add")
	fmt.Fprintln(w, "pipe synchronization; allocation adds policy evaluation and a goroutine.")
	return nil
}

// ---------------------------------------------------------------------------
// E9 — §5.2: monitor scheduling and budgets.

// E9Result summarizes the scheduling and budget measurements.
type E9Result struct {
	// HighMeanStart and LowMeanStart are mean start delays by priority
	// class under contention.
	HighMeanStart time.Duration
	LowMeanStart  time.Duration
	// Killed counts budget-violation kills.
	Killed int
}

// RunE9 admits 2×n naplets (half high, half low priority) onto `slots`
// execution slots under the priority policy, measures start-time ordering,
// then verifies budget kills.
func RunE9(n, slots int, seed int64) (E9Result, error) {
	return RunE9Policy(n, slots, monitor.SchedulePriority, seed)
}

// RunE9Policy is RunE9 with an explicit scheduling policy (the FIFO
// ablation shows what the priority mechanism buys).
func RunE9Policy(n, slots int, policy monitor.SchedulingPolicy, seed int64) (E9Result, error) {
	var res E9Result
	mon := monitor.NewWithPolicy(slots, policy, nil)
	t0 := time.Unix(1e9, 0)

	type sample struct {
		prio  int
		delay time.Duration
	}
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	// Saturate the slots with a warm-up group so everyone queues.
	warm, err := mon.Admit(id.MustNew("warm", "h", t0), monitor.Policy{})
	if err != nil {
		return res, err
	}
	release := make(chan struct{})
	warmStarted := make(chan struct{}, slots)
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			warm.Run(func(ctx context.Context) error {
				warmStarted <- struct{}{}
				<-release
				return nil
			})
		}()
	}
	for i := 0; i < slots; i++ {
		<-warmStarted
	}

	start := time.Now()
	var launched atomic.Int32
	for i := 0; i < 2*n; i++ {
		prio := 1
		if i%2 == 0 {
			prio = 9
		}
		g, err := mon.Admit(id.MustNew(fmt.Sprintf("u%d", i), "h", t0), monitor.Policy{Priority: prio})
		if err != nil {
			return res, err
		}
		wg.Add(1)
		go func(g *monitor.Group, prio int) {
			defer wg.Done()
			launched.Add(1)
			g.Run(func(ctx context.Context) error {
				mu.Lock()
				samples = append(samples, sample{prio: prio, delay: time.Since(start)})
				mu.Unlock()
				time.Sleep(200 * time.Microsecond)
				return nil
			})
		}(g, prio)
	}
	// Wait until all contenders are queued, then open the gates.
	for launched.Load() < int32(2*n) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()

	var hi, lo []float64
	for _, s := range samples {
		if s.prio == 9 {
			hi = append(hi, s.delay.Seconds())
		} else {
			lo = append(lo, s.delay.Seconds())
		}
	}
	res.HighMeanStart = time.Duration(stats.Summarize(hi).Mean * float64(time.Second))
	res.LowMeanStart = time.Duration(stats.Summarize(lo).Mean * float64(time.Second))

	// Budget kills.
	for i := 0; i < 4; i++ {
		g, err := mon.Admit(id.MustNew(fmt.Sprintf("hog%d", i), "h", t0), monitor.Policy{MaxMemory: 1024})
		if err != nil {
			return res, err
		}
		if err := g.ChargeMemory(2048); errors.Is(err, monitor.ErrBudgetExceeded) {
			res.Killed++
		}
	}
	return res, nil
}

// E9Monitor prints the scheduling-order and budget-enforcement results.
func E9Monitor(w io.Writer, opts Options) error {
	n, slots := 32, 2
	if opts.Quick {
		n = 8
	}
	res, err := RunE9(n, slots, opts.Seed)
	if err != nil {
		return err
	}
	fifo, err := RunE9Policy(n, slots, monitor.ScheduleFIFO, opts.Seed)
	if err != nil {
		return err
	}
	table := stats.NewTable("metric", "priority policy", "fifo policy")
	table.AddRow("naplets (high/low priority)", fmt.Sprintf("%d/%d", n, n), fmt.Sprintf("%d/%d", n, n))
	table.AddRow("execution slots", slots, slots)
	table.AddRow("mean start delay, priority 9", res.HighMeanStart.Round(time.Microsecond), fifo.HighMeanStart.Round(time.Microsecond))
	table.AddRow("mean start delay, priority 1", res.LowMeanStart.Round(time.Microsecond), fifo.LowMeanStart.Round(time.Microsecond))
	table.AddRow("budget violations killed", fmt.Sprintf("%d/4", res.Killed), fmt.Sprintf("%d/4", fifo.Killed))
	table.WriteTo(w)
	if res.HighMeanStart >= res.LowMeanStart {
		return fmt.Errorf("e9: priority inversion: high %v >= low %v", res.HighMeanStart, res.LowMeanStart)
	}
	if res.Killed != 4 || fifo.Killed != 4 {
		return fmt.Errorf("e9: budget kills = %d/%d, want 4/4", res.Killed, fifo.Killed)
	}
	fmt.Fprintln(w, "\nExpected shape: under the priority policy high-priority naplets start")
	fmt.Fprintln(w, "earlier; under FIFO both classes see similar delays (the ablation")
	fmt.Fprintln(w, "isolates what the priority mechanism buys). Every budget violation is")
	fmt.Fprintln(w, "trapped and killed under both policies.")
	return nil
}
