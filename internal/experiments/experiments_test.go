package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/locator"
	"repro/internal/netsim"
)

// TestAllExperimentsQuick runs every experiment end to end in quick mode:
// the integration smoke test for the whole reproduction harness.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Options{Quick: true, Seed: 42}); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e3"); !ok {
		t.Fatal("e3 must exist")
	}
	if _, ok := Lookup("e99"); ok {
		t.Fatal("e99 must not exist")
	}
	if len(All()) != 11 {
		t.Fatalf("experiment count = %d", len(All()))
	}
}

func TestE3ShapesHold(t *testing.T) {
	// Station traffic: CNMP micro-management must dominate MAN at high
	// variable counts.
	cnmpCell, err := RunE3Cell(StratCNMPMicro, 8, 32, netsim.LAN, E3BundleSize, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	manCell, err := RunE3Cell(StratMANSeq, 8, 32, netsim.LAN, E3BundleSize, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cnmpCell.StationBytes < 3*manCell.StationBytes {
		t.Fatalf("station shape: cnmp=%d man=%d", cnmpCell.StationBytes, manCell.StationBytes)
	}
	// Crossover: at one variable, total traffic favors CNMP.
	cnmp1, err := RunE3Cell(StratCNMPMicro, 4, 1, netsim.LAN, 64<<10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	man1, err := RunE3Cell(StratMANSeq, 4, 1, netsim.LAN, 64<<10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cnmp1.TotalBytes >= man1.TotalBytes {
		t.Fatalf("crossover shape: cnmp=%d man=%d", cnmp1.TotalBytes, man1.TotalBytes)
	}
	// WAN latency: man-seq must beat cnmp-micro at high V (fewer
	// round trips over the slow link).
	cnmpWAN, err := RunE3Cell(StratCNMPMicro, 8, 32, netsim.WAN, E3BundleSize, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	manWAN, err := RunE3Cell(StratMANSeq, 8, 32, netsim.WAN, E3BundleSize, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if manWAN.ModeledLatency >= cnmpWAN.ModeledLatency {
		t.Fatalf("WAN latency shape: man=%v cnmp=%v", manWAN.ModeledLatency, cnmpWAN.ModeledLatency)
	}
}

func TestE4ParBeatsSeq(t *testing.T) {
	seq, err := RunE4(ShapeSeq, 4, 20, netsim.LAN, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunE4(ShapePar, 4, 20, netsim.LAN, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if par >= seq {
		t.Fatalf("par (%v) must beat seq (%v) with 4x20ms of work", par, seq)
	}
}

func TestE5AllModesComplete(t *testing.T) {
	for _, mode := range []locator.Mode{locator.ModeDirectory, locator.ModeHome, locator.ModeForward} {
		if _, err := RunE5(mode, 3, 1); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestE6ExactlyOnce(t *testing.T) {
	res, err := RunE6(4, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != 12 || res.Dups != 0 {
		t.Fatalf("delivery: %+v", res)
	}
}

func TestE7WarmCheaperThanCold(t *testing.T) {
	rig, err := NewE7Rig(64<<10, 0, netsim.LAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := rig.Dispatch(0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := rig.Dispatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.FabricBytes >= cold.FabricBytes {
		t.Fatalf("warm (%d) must be cheaper than cold (%d)", warm.FabricBytes, cold.FabricBytes)
	}
	if cold.FabricBytes < 64<<10 {
		t.Fatalf("cold dispatch must carry the 64 KiB bundle: %d", cold.FabricBytes)
	}
}

func TestE2TourCoversAllServers(t *testing.T) {
	res, err := RunRoundTrip(3, netsim.Loopback, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(res.Tour, ",")) != 3 {
		t.Fatalf("tour = %q", res.Tour)
	}
	if res.FramesSent == 0 {
		t.Fatal("no protocol traffic recorded")
	}
}

func TestE10ShapesHold(t *testing.T) {
	cn, err := RunE10(StratCNMPTraps, 4, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := RunE10(StratMANFilter, 4, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Identical seeded workloads.
	if cn.EventsTotal != mn.EventsTotal || cn.Significant != mn.Significant {
		t.Fatalf("workloads diverged: %+v vs %+v", cn, mn)
	}
	// No missed alerts on either path.
	if cn.AlertsGot != cn.Significant || mn.AlertsGot != mn.Significant {
		t.Fatalf("missed alerts: cnmp %d/%d, man %d/%d",
			cn.AlertsGot, cn.Significant, mn.AlertsGot, mn.Significant)
	}
	// The centralized station receives the full event stream; the MAN
	// station only the per-device reports.
	if cn.StationFrames != int64(cn.EventsTotal) {
		t.Fatalf("cnmp station frames %d != events %d", cn.StationFrames, cn.EventsTotal)
	}
	if mn.StationFrames*4 > cn.StationFrames {
		t.Fatalf("filtering shape violated: man %d frames vs cnmp %d", mn.StationFrames, cn.StationFrames)
	}
}
