// Package experiments implements the reproduction experiments E1–E11
// catalogued in DESIGN.md and EXPERIMENTS.md. Each experiment regenerates
// one figure or claim of the Naplet paper as a printed table; cmd/manbench
// runs them from the command line and the root bench_test.go wraps their
// measurement cores as testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/stats"
)

// Options configure an experiment run.
type Options struct {
	// Quick shrinks sweeps for fast runs (tests, CI).
	Quick bool
	// Seed fixes all random processes.
	Seed int64
}

// Experiment is one runnable experiment.
type Experiment struct {
	// ID is the experiment identifier ("e1".."e11").
	ID string
	// Title describes what it reproduces.
	Title string
	// Run executes the experiment, writing its tables to w.
	Run func(w io.Writer, opts Options) error
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{ID: "e1", Title: "Figure 1: hierarchical naplet identifiers and clone heritage", Run: E1CloneIDs},
		{ID: "e2", Title: "Figure 2: NapletServer architecture round trip", Run: E2ServerRoundTrip},
		{ID: "e3", Title: "Figure 3 / §6: mobile-agent vs centralized SNMP management", Run: E3ManVsCnmp},
		{ID: "e4", Title: "§3: structured itinerary patterns (seq vs par vs par-of-seq)", Run: E4Itinerary},
		{ID: "e5", Title: "§4.1: naplet location modes (directory / home / forwarding)", Run: E5Location},
		{ID: "e6", Title: "§4.2: post-office reliability under migration", Run: E6PostOffice},
		{ID: "e7", Title: "§2.1: lazy code loading and migration cost breakdown", Run: E7Migration},
		{ID: "e8", Title: "§5.3: service channels vs open services", Run: E8ServiceChannel},
		{ID: "e9", Title: "§5.2: monitor scheduling and resource budgets", Run: E9Monitor},
		{ID: "e10", Title: "event monitoring: trap forwarding vs on-site filtering naplets", Run: E10EventMonitoring},
		{ID: "e11", Title: "§6 at scale: enterprise MAN sweep under sustained load and faults", Run: E11EnterpriseSweep},
	}
}

// Lookup finds an experiment by ID.
func Lookup(idStr string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == idStr {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// E1 — Figure 1: hierarchical naplet identifiers.

// E1CloneIDs demonstrates the clone heritage encoding of Figure 1 by
// recursively cloning a naplet identifier and parsing every derived form
// back, then reports round-trip throughput.
func E1CloneIDs(w io.Writer, opts Options) error {
	created := time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)
	root := id.MustNew("czxu", "ece.eng.wayne.edu", created)

	fmt.Fprintln(w, "Clone tree (paper Figure 1):")
	tree := stats.NewTable("identifier", "depth", "original?", "originator")
	var walk func(nid id.NapletID, depth, fanout int) error
	count := 0
	walk = func(nid id.NapletID, depth, fanout int) error {
		tree.AddRow(nid.String(), nid.Heritage().Depth(), nid.IsOriginal(), nid.Originator().String())
		count++
		// Round-trip invariant for every node.
		back, err := id.Parse(nid.String())
		if err != nil || !back.Equal(nid) {
			return fmt.Errorf("e1: round trip failed for %s: %v", nid, err)
		}
		if depth == 0 {
			return nil
		}
		for k := 1; k <= fanout; k++ {
			c, err := nid.Clone(k)
			if err != nil {
				return err
			}
			if err := walk(c, depth-1, fanout); err != nil {
				return err
			}
		}
		return nil
	}
	depth, fanout := 3, 2
	if opts.Quick {
		depth = 2
	}
	if err := walk(root, depth, fanout); err != nil {
		return err
	}
	tree.WriteTo(w)

	// Throughput of the identifier codec (the cost of the management
	// plane's most frequent parse).
	n := 100000
	if opts.Quick {
		n = 10000
	}
	sample := "czxu@ece.eng.wayne.edu:010512172720:2.1.3"
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := id.Parse(sample); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "\n%d identifiers in tree; Parse throughput: %.0f IDs/ms (n=%d)\n",
		count, float64(n)/float64(elapsed.Milliseconds()+1), n)
	return nil
}

// ---------------------------------------------------------------------------
// E2 — Figure 2: full server architecture round trip.

// tourAgent is E2's instrumented agent: it records its tour and reports.
type tourAgent struct{}

func (tourAgent) OnStart(ctx *naplet.Context) error {
	var tour []string
	ctx.State().Load("tour", &tour)
	return ctx.State().SetPrivate("tour", append(tour, ctx.Server))
}

func (tourAgent) OnDestroy(ctx *naplet.Context) {
	var tour []string
	ctx.State().Load("tour", &tour)
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(strings.Join(tour, ",")))
}

// e2Registry builds the registry used by the framework experiments.
func e2Registry(bundle int) *registry.Registry {
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name:       "exp.Tour",
		New:        func() naplet.Behavior { return tourAgent{} },
		BundleSize: bundle,
	})
	return reg
}

// RoundTripResult is E2's measured outcome, reused by the benchmark.
type RoundTripResult struct {
	Tour       string
	Elapsed    time.Duration
	FramesSent int64
	BytesSent  int64
}

// RunRoundTrip launches one tour agent across n servers over the given
// link and waits for its report: the complete Figure-2 path (manager →
// navigator → security → monitor → messenger → locator → resource) per hop.
func RunRoundTrip(n int, link netsim.Link, seed int64) (RoundTripResult, error) {
	var res RoundTripResult
	net := netsim.New(netsim.Config{DefaultLink: link, Seed: seed})
	reg := e2Registry(8 << 10)

	names := []string{"home"}
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("s%d", i))
	}
	servers := make([]*server.Server, 0, len(names))
	for _, name := range names {
		srv, err := server.New(server.Config{Name: name, Fabric: net, Registry: reg})
		if err != nil {
			return res, err
		}
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	report := make(chan string, 1)
	start := time.Now()
	nid, err := servers[0].Launch(context.Background(), server.LaunchOptions{
		Owner:    "czxu",
		Codebase: "exp.Tour",
		Pattern:  itinerary.SeqVisits(names[1:], ""),
		Listener: func(r manager.Result) { report <- string(r.Body) },
	})
	if err != nil {
		return res, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := servers[0].WaitDone(ctx, nid); err != nil {
		return res, err
	}
	select {
	case res.Tour = <-report:
	case <-ctx.Done():
		return res, ctx.Err()
	}
	res.Elapsed = time.Since(start)
	total := net.TotalStats()
	res.FramesSent = total.FramesSent
	res.BytesSent = total.BytesSent
	return res, nil
}

// E2ServerRoundTrip runs tours of increasing length and prints the per-hop
// protocol cost, confirming every component of Figure 2 engages.
func E2ServerRoundTrip(w io.Writer, opts Options) error {
	sizes := []int{1, 2, 4, 8, 16}
	if opts.Quick {
		sizes = []int{1, 2, 4}
	}
	table := stats.NewTable("servers", "frames", "bytes", "frames/hop", "elapsed")
	for _, n := range sizes {
		res, err := RunRoundTrip(n, netsim.Loopback, opts.Seed)
		if err != nil {
			return err
		}
		wantTour := n
		if got := len(strings.Split(res.Tour, ",")); got != wantTour {
			return fmt.Errorf("e2: tour covered %d of %d servers (%q)", got, wantTour, res.Tour)
		}
		table.AddRow(n, res.FramesSent, stats.Bytes(res.BytesSent),
			float64(res.FramesSent)/float64(n), res.Elapsed)
	}
	table.WriteTo(w)
	fmt.Fprintln(w, "\nEach hop engages the full Figure-2 path: landing request, transfer,")
	fmt.Fprintln(w, "directory/home registration, monitor admission, mailbox, status report.")
	return nil
}
