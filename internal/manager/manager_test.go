package manager

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/id"
)

var t0 = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)

func newMgr() *Manager {
	return New("s1", func() time.Time { return t0 })
}

func TestLaunchStatusLifecycle(t *testing.T) {
	m := newMgr()
	nid := id.MustNew("u", "s1", t0)
	m.RecordLaunch(nid, nil)
	s, _, err := m.Status(nid)
	if err != nil || s != StatusLaunched {
		t.Fatalf("status = %v %v", s, err)
	}
	m.SetStatus(nid, StatusRunning, "")
	m.SetStatus(nid, StatusCompleted, "")
	s, _, _ = m.Status(nid)
	if s != StatusCompleted {
		t.Fatalf("status = %v", s)
	}
	// Terminal status is sticky.
	m.SetStatus(nid, StatusRunning, "")
	if s, _, _ := m.Status(nid); s != StatusCompleted {
		t.Fatal("terminal status must not regress")
	}
	if len(m.Launched()) != 1 {
		t.Fatalf("launched = %v", m.Launched())
	}
}

func TestStatusUnknown(t *testing.T) {
	m := newMgr()
	if _, _, err := m.Status(id.MustNew("u", "s1", t0)); !errors.Is(err, ErrUnknown) {
		t.Fatal(err)
	}
	// SetStatus for unknown naplets is a no-op, not a panic.
	m.SetStatus(id.MustNew("u", "s1", t0), StatusRunning, "")
}

func TestDeliverToListener(t *testing.T) {
	m := newMgr()
	nid := id.MustNew("u", "s1", t0)
	var mu sync.Mutex
	var got []Result
	m.RecordLaunch(nid, func(r Result) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	m.Deliver(nid, []byte("hello"))
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || string(got[0].Body) != "hello" {
		t.Fatalf("listener got %v", got)
	}
	if rs := m.Results(nid); len(rs) != 1 || string(rs[0].Body) != "hello" {
		t.Fatalf("results = %v", rs)
	}
}

func TestDeliverFromCloneInheritsListener(t *testing.T) {
	// §6.2: a broadcast itinerary spawns a child per server; "the spawned
	// naplets will report their results individually" to the home listener.
	m := newMgr()
	orig := id.MustNew("u", "s1", t0)
	clone, _ := orig.Clone(2)
	var mu sync.Mutex
	var got []Result
	m.RecordLaunch(orig, func(r Result) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	m.Deliver(clone, []byte("from clone"))
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || !got[0].NapletID.Equal(clone) {
		t.Fatalf("clone report not routed to originator listener: %v", got)
	}
}

func TestDeliverUnknownNapletStored(t *testing.T) {
	m := newMgr()
	nid := id.MustNew("u", "s1", t0)
	m.Deliver(nid, []byte("r"))
	if rs := m.Results(nid); len(rs) != 1 {
		t.Fatalf("results = %v", rs)
	}
	if rs := m.Results(id.MustNew("x", "s1", t0)); rs != nil {
		t.Fatal("unknown naplet results must be nil")
	}
}

func TestWaitDone(t *testing.T) {
	m := newMgr()
	nid := id.MustNew("u", "s1", t0)
	m.RecordLaunch(nid, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s, err := m.WaitDone(context.Background(), nid)
		if err != nil || s != StatusCompleted {
			t.Errorf("WaitDone = %v %v", s, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	m.SetStatus(nid, StatusCompleted, "")
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitDone did not return")
	}

	// Unknown naplet.
	if _, err := m.WaitDone(context.Background(), id.MustNew("x", "s1", t0)); !errors.Is(err, ErrUnknown) {
		t.Fatal(err)
	}
	// Context cancellation.
	other := id.MustNew("y", "s1", t0)
	m.RecordLaunch(other, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := m.WaitDone(ctx, other); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal(err)
	}
}

func TestVisitTraceChain(t *testing.T) {
	m := newMgr()
	nid := id.MustNew("u", "home", t0)

	if tr := m.TraceNaplet(nid); tr.Known {
		t.Fatal("unknown naplet must not be known")
	}
	m.RecordArrival(nid, "cb", "home", t0)
	tr := m.TraceNaplet(nid)
	if !tr.Known || !tr.Present {
		t.Fatalf("trace after arrival: %+v", tr)
	}
	if m.Resident() != 1 {
		t.Fatal("resident count")
	}
	if err := m.RecordDeparture(nid, "s2", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	tr = m.TraceNaplet(nid)
	if !tr.Known || tr.Present || tr.Dest != "s2" {
		t.Fatalf("trace after departure: %+v", tr)
	}
	if m.Resident() != 0 {
		t.Fatal("resident after departure")
	}
}

func TestRecordDepartureWithoutArrival(t *testing.T) {
	m := newMgr()
	nid := id.MustNew("u", "home", t0)
	if err := m.RecordDeparture(nid, "s2", t0); !errors.Is(err, ErrUnknown) {
		t.Fatal(err)
	}
}

func TestFootprints(t *testing.T) {
	m := newMgr()
	a := id.MustNew("a", "h", t0)
	b := id.MustNew("b", "h", t0)
	m.RecordArrival(a, "cbA", "home", t0)
	m.RecordArrival(b, "cbB", "s9", t0.Add(time.Second))
	m.RecordDeparture(a, "s2", t0.Add(2*time.Second))
	m.RecordEnd(b, t0.Add(3*time.Second))

	fps := m.Footprints()
	if len(fps) != 2 {
		t.Fatalf("footprints = %v", fps)
	}
	if fps[0].Codebase != "cbA" || fps[0].Dest != "s2" || fps[0].LeftAt.IsZero() {
		t.Fatalf("fp[0] = %+v", fps[0])
	}
	if fps[1].Source != "s9" || fps[1].Dest != "" || fps[1].LeftAt.IsZero() {
		t.Fatalf("fp[1] = %+v", fps[1])
	}
}

func TestRevisitCreatesSecondFootprint(t *testing.T) {
	m := newMgr()
	nid := id.MustNew("u", "h", t0)
	m.RecordArrival(nid, "cb", "home", t0)
	m.RecordDeparture(nid, "s2", t0.Add(time.Second))
	m.RecordArrival(nid, "cb", "s2", t0.Add(5*time.Second))
	fps := m.Footprints()
	if len(fps) != 2 {
		t.Fatalf("revisit must add a footprint: %v", fps)
	}
	if !m.TraceNaplet(nid).Present {
		t.Fatal("trace must show present after revisit")
	}
	// Departure closes the newest open footprint, not the old one.
	m.RecordDeparture(nid, "s3", t0.Add(6*time.Second))
	fps = m.Footprints()
	if fps[1].Dest != "s3" || fps[0].Dest != "s2" {
		t.Fatalf("wrong footprint closed: %+v", fps)
	}
}

func TestHomeTrack(t *testing.T) {
	m := newMgr()
	nid := id.MustNew("u", "s1", t0)
	if _, ok := m.HomeLocate(nid); ok {
		t.Fatal("empty home track")
	}
	m.HomeRecord(nid, "s5", true, t0.Add(time.Second))
	if server, ok := m.HomeLocate(nid); !ok || server != "s5" {
		t.Fatalf("HomeLocate = %q %v", server, ok)
	}
	// Stale report must not regress.
	m.HomeRecord(nid, "s2", false, t0)
	if server, _ := m.HomeLocate(nid); server != "s5" {
		t.Fatalf("stale home record applied: %q", server)
	}
	m.HomeRecord(nid, "s7", true, t0.Add(2*time.Second))
	if server, _ := m.HomeLocate(nid); server != "s7" {
		t.Fatalf("newer home record ignored: %q", server)
	}
}

func TestStatusStringAndTerminal(t *testing.T) {
	names := map[Status]string{
		StatusLaunched: "launched", StatusRunning: "running",
		StatusSuspended: "suspended", StatusInTransit: "in-transit",
		StatusCompleted: "completed", StatusTerminated: "terminated",
		StatusTrapped: "trapped",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
	if Status(99).String() != "Status(99)" {
		t.Fatal("unknown status")
	}
	if !StatusCompleted.Terminal() || !StatusTerminated.Terminal() || !StatusTrapped.Terminal() {
		t.Fatal("terminal statuses")
	}
	if StatusRunning.Terminal() || StatusLaunched.Terminal() {
		t.Fatal("non-terminal statuses")
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := newMgr()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nid := id.MustNew("u", "h", t0.Add(time.Duration(i)*time.Second))
			m.RecordLaunch(nid, nil)
			m.RecordArrival(nid, "cb", "home", t0)
			m.Deliver(nid, []byte("r"))
			m.TraceNaplet(nid)
			m.RecordDeparture(nid, "s2", t0)
			m.HomeRecord(nid, "s2", true, t0)
			m.HomeLocate(nid)
			m.Footprints()
		}(i)
	}
	wg.Wait()
	if len(m.Footprints()) != 8 {
		t.Fatal("concurrent records lost")
	}
}
