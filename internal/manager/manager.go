// Package manager implements the NapletManager of §2.2: the per-server
// component that launches local naplets, tracks their execution states, and
// records the footprints of all past and current alien naplets.
//
// The manager keeps three bodies of information:
//
//   - the naplet table of locally launched naplets (status, results,
//     listener callbacks);
//   - the visit trace of every naplet that passed through this server
//     (source, destination, times) — the basis of message forwarding in a
//     system without directory services (§4.1);
//   - the home track: last known locations of naplets whose home is this
//     server, maintained from remote arrival/departure reports, providing
//     the distributed directory mode (§4.1: "the naplet location
//     information can be maintained in their home managers").
package manager

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/id"
)

// Status is the life-cycle state of a naplet as seen by a manager.
type Status int

// Naplet statuses.
const (
	StatusLaunched Status = iota
	StatusRunning
	StatusSuspended
	StatusInTransit
	StatusCompleted
	StatusTerminated
	StatusTrapped
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusLaunched:
		return "launched"
	case StatusRunning:
		return "running"
	case StatusSuspended:
		return "suspended"
	case StatusInTransit:
		return "in-transit"
	case StatusCompleted:
		return "completed"
	case StatusTerminated:
		return "terminated"
	case StatusTrapped:
		return "trapped"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Terminal reports whether the status is a final one.
func (s Status) Terminal() bool {
	return s == StatusCompleted || s == StatusTerminated || s == StatusTrapped
}

// Footprint is the permanent record of one naplet visit at this server
// ("footprints of all past and current alien naplets are also recorded for
// management purposes", §2.2).
type Footprint struct {
	NapletID  id.NapletID
	Codebase  string
	Source    string
	Dest      string
	ArrivedAt time.Time
	LeftAt    time.Time
}

// Trace is the manager's answer to "where is naplet X": present here, or
// forwarded to Dest, or never seen.
type Trace struct {
	// Known reports whether the naplet ever visited this server.
	Known bool
	// Present reports whether the naplet is currently at this server.
	Present bool
	// Dest is the server the naplet departed to, when Known && !Present.
	Dest string
}

// Result is one report delivered by a travelling naplet to its home.
type Result struct {
	NapletID   id.NapletID
	Body       []byte
	ReceivedAt time.Time
}

// Listener receives reports from a locally launched naplet, the Go form of
// the paper's NapletListener callback.
type Listener func(Result)

// launched tracks one locally launched naplet.
type launched struct {
	status   Status
	err      string
	listener Listener
	results  []Result
	done     chan struct{} // closed on terminal status
}

// visit tracks one naplet's presence at this server for tracing.
type visit struct {
	present bool
	dest    string
}

// Errors reported by the manager.
var ErrUnknown = errors.New("manager: unknown naplet")

// Manager is the per-server NapletManager. It is safe for concurrent use.
type Manager struct {
	server string
	clock  func() time.Time

	mu         sync.Mutex
	launchedT  map[string]*launched
	visits     map[string]*visit
	footprints []Footprint
	homeTrack  map[string]homeEntry
}

// homeEntry is the home-manager directory record for one home naplet.
type homeEntry struct {
	server  string
	arrival bool
	at      time.Time
}

// New builds the manager of the named server; nil clock means time.Now.
func New(server string, clock func() time.Time) *Manager {
	if clock == nil {
		clock = time.Now
	}
	return &Manager{
		server:    server,
		clock:     clock,
		launchedT: make(map[string]*launched),
		visits:    make(map[string]*visit),
		homeTrack: make(map[string]homeEntry),
	}
}

// Server returns the name of the server this manager belongs to.
func (m *Manager) Server() string { return m.server }

// ---- Locally launched naplets (the naplet table) ----

// RecordLaunch registers a locally launched naplet with its result
// listener (which may be nil).
func (m *Manager) RecordLaunch(nid id.NapletID, listener Listener) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.launchedT[nid.Key()] = &launched{
		status:   StatusLaunched,
		listener: listener,
		done:     make(chan struct{}),
	}
}

// SetStatus updates the status of a locally launched naplet; unknown
// naplets are ignored (status reports can outlive their table entry).
func (m *Manager) SetStatus(nid id.NapletID, s Status, errText string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.launchedT[nid.Key()]
	if !ok {
		return
	}
	if l.status.Terminal() {
		return
	}
	l.status = s
	l.err = errText
	if s.Terminal() {
		close(l.done)
	}
}

// Status returns the current status of a locally launched naplet.
func (m *Manager) Status(nid id.NapletID) (Status, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.launchedT[nid.Key()]
	if !ok {
		return 0, "", fmt.Errorf("%w: %s", ErrUnknown, nid)
	}
	return l.status, l.err, nil
}

// Launched lists the identifiers in the naplet table.
func (m *Manager) Launched() []id.NapletID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]id.NapletID, 0, len(m.launchedT))
	for k := range m.launchedT {
		nid, err := id.Parse(k)
		if err == nil {
			out = append(out, nid)
		}
	}
	return out
}

// Deliver dispatches a report from a travelling naplet to its listener and
// stores it in the result log. Reports for unknown naplets (e.g. clones the
// home first hears of via their report) create a table entry on the fly, so
// "the spawned naplets will report their results individually" (§6.2) works
// without pre-registration.
func (m *Manager) Deliver(nid id.NapletID, body []byte) {
	res := Result{NapletID: nid, Body: append([]byte(nil), body...), ReceivedAt: m.clock()}
	m.mu.Lock()
	l, ok := m.launchedT[nid.Key()]
	if !ok {
		l = &launched{status: StatusRunning, done: make(chan struct{})}
		// Clones report under their own ID; inherit the originator's
		// listener when one exists.
		if root, rok := m.launchedT[nid.Root().Key()]; rok {
			l.listener = root.listener
		}
		m.launchedT[nid.Key()] = l
	}
	l.results = append(l.results, res)
	listener := l.listener
	m.mu.Unlock()
	if listener != nil {
		listener(res)
	}
}

// Results returns the reports received from a naplet.
func (m *Manager) Results(nid id.NapletID) []Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.launchedT[nid.Key()]
	if !ok {
		return nil
	}
	return append([]Result(nil), l.results...)
}

// WaitDone blocks until the naplet reaches a terminal status or ctx ends.
func (m *Manager) WaitDone(ctx context.Context, nid id.NapletID) (Status, error) {
	m.mu.Lock()
	l, ok := m.launchedT[nid.Key()]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknown, nid)
	}
	select {
	case <-l.done:
		s, _, err := m.Status(nid)
		return s, err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// ---- Visit traces and footprints ----

// RecordArrival notes that a naplet landed here from source.
func (m *Manager) RecordArrival(nid id.NapletID, codebase, source string, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.visits[nid.Key()] = &visit{present: true}
	m.footprints = append(m.footprints, Footprint{
		NapletID: nid, Codebase: codebase, Source: source, ArrivedAt: at,
	})
}

// RecordDeparture notes that a naplet left here toward dest. The visit
// trace then forwards to dest (§4.1: "the message will be forwarded to the
// server for which the naplet left").
func (m *Manager) RecordDeparture(nid id.NapletID, dest string, at time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.visits[nid.Key()]
	if !ok || !v.present {
		return fmt.Errorf("%w: departure of %s not preceded by arrival", ErrUnknown, nid)
	}
	v.present = false
	v.dest = dest
	for i := len(m.footprints) - 1; i >= 0; i-- {
		if m.footprints[i].NapletID.Equal(nid) && m.footprints[i].LeftAt.IsZero() {
			m.footprints[i].Dest = dest
			m.footprints[i].LeftAt = at
			break
		}
	}
	return nil
}

// RecordEnd notes that a naplet's life cycle ended at this server (no
// forwarding destination).
func (m *Manager) RecordEnd(nid id.NapletID, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.visits[nid.Key()]; ok {
		v.present = false
		v.dest = ""
	}
	for i := len(m.footprints) - 1; i >= 0; i-- {
		if m.footprints[i].NapletID.Equal(nid) && m.footprints[i].LeftAt.IsZero() {
			m.footprints[i].LeftAt = at
			break
		}
	}
}

// CompressTrace shortcuts this server's forwarding pointer for a departed
// naplet straight to dest (path compression on the paper's forwarding
// chains): once a chased message confirms where the naplet actually is,
// later messages forwarded through here jump the intermediate hops. A
// present naplet's trace is left untouched.
func (m *Manager) CompressTrace(nid id.NapletID, dest string) {
	if dest == "" || dest == m.server {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.visits[nid.Key()]; ok && !v.present && v.dest != "" {
		v.dest = dest
	}
}

// TraceNaplet answers a tracing request against the visit records.
func (m *Manager) TraceNaplet(nid id.NapletID) Trace {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.visits[nid.Key()]
	if !ok {
		return Trace{}
	}
	return Trace{Known: true, Present: v.present, Dest: v.dest}
}

// Footprints returns the recorded footprints in arrival order.
func (m *Manager) Footprints() []Footprint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Footprint(nil), m.footprints...)
}

// Resident reports how many naplets are currently present.
func (m *Manager) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, v := range m.visits {
		if v.present {
			n++
		}
	}
	return n
}

// ---- Home-manager distributed directory (§4.1) ----

// HomeRecord stores a remote arrival/departure report for a naplet whose
// home is this server.
func (m *Manager) HomeRecord(nid id.NapletID, server string, arrival bool, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.homeTrack[nid.Key()]
	if ok && at.Before(cur.at) {
		return // stale report
	}
	m.homeTrack[nid.Key()] = homeEntry{server: server, arrival: arrival, at: at}
}

// HomeLocate answers a home-directory location query: the last reported
// server of a home naplet.
func (m *Manager) HomeLocate(nid id.NapletID) (server string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, found := m.homeTrack[nid.Key()]
	if !found {
		return "", false
	}
	return e.server, true
}

// HomeEvent is one externalized home-track record, exchanged with the dock
// snapshot so a restarted home server still answers location queries for
// the naplets it launched.
type HomeEvent struct {
	ID      string
	Server  string
	Arrival bool
	At      time.Time
}

// HomeSnapshot copies the home-track table.
func (m *Manager) HomeSnapshot() []HomeEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]HomeEvent, 0, len(m.homeTrack))
	for key, e := range m.homeTrack {
		out = append(out, HomeEvent{ID: key, Server: e.server, Arrival: e.arrival, At: e.at})
	}
	return out
}

// RestoreHome reseeds the home-track table from a dock snapshot; newer
// live entries (reports that raced the restore) win over restored ones.
func (m *Manager) RestoreHome(evs []HomeEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ev := range evs {
		cur, ok := m.homeTrack[ev.ID]
		if ok && ev.At.Before(cur.at) {
			continue
		}
		m.homeTrack[ev.ID] = homeEntry{server: ev.Server, arrival: ev.Arrival, at: ev.At}
	}
}
