// Package locator implements the Locator of §4.1: the naplet tracing and
// location service behind location-independent communication.
//
// The naplet space runs in one of two modes: with a naplet directory (a
// centralized service, or the distributed form where each naplet's home
// manager tracks it) or without one (messages chase naplets through the
// per-server visit traces). The Locator resolves NapletID-based addresses
// accordingly and caches recently inquired locations "so as to reduce the
// response time of subsequent naplet location requests".
package locator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/directory"
	"repro/internal/id"
	"repro/internal/manager"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Mode selects the location strategy.
type Mode int

// Location modes.
const (
	// ModeDirectory consults the centralized NapletDirectory.
	ModeDirectory Mode = iota
	// ModeHome consults the naplet's home manager (distributed directory).
	ModeHome
	// ModeForward performs no lookup: the caller starts from its best hint
	// (address book entry) and messages chase the naplet through visit
	// traces.
	ModeForward
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeDirectory:
		return "directory"
	case ModeHome:
		return "home"
	case ModeForward:
		return "forward"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// QueryBody is the wire body of a KindLocatorQuery frame (home mode).
type QueryBody struct {
	NapletID id.NapletID
}

// ReplyBody is the wire body of a KindLocatorReply frame.
type ReplyBody struct {
	Found  bool
	Server string
}

// InvalidateBody is the wire body of a KindLocatorInvalidate frame: a
// push notice from a naplet's previous server that it migrated. Server
// carries the destination when known (the receiver refreshes its cache in
// place); empty means only that the cached location went stale.
type InvalidateBody struct {
	NapletID id.NapletID
	Server   string
}

// Errors reported by the locator.
var (
	ErrNotFound = errors.New("locator: naplet location unknown")
	ErrNoHint   = errors.New("locator: no location hint in forward mode")
)

// Stats is a point-in-time snapshot of locator activity. The counters
// live in the telemetry registry (the single source of truth); Stats is
// the legacy view built by Locator.Stats.
type Stats struct {
	Lookups      int64
	CacheHits    int64
	Directory    int64 // directory round trips
	HomeQuery    int64 // home-manager round trips
	Failures     int64
	CacheEvict   int64
	MissEvict    int64 // cache entries dropped after repeated misses
	Singleflight int64 // duplicate concurrent lookups coalesced
	PushInval    int64 // migration push-invalidations received
}

// Config parameterizes a Locator.
type Config struct {
	// Mode selects the location strategy.
	Mode Mode
	// Directory is the directory plane to consult in ModeDirectory: a
	// single-node *directory.Client or a sharded, replicated
	// *shard.Client. When nil, New builds a single-node client from
	// DirectoryAddr (once — not per lookup).
	Directory directory.Directory
	// DirectoryAddr is the directory service address (ModeDirectory),
	// used only when Directory is nil.
	DirectoryAddr string
	// CacheTTL bounds the age of cached locations; 0 disables caching.
	CacheTTL time.Duration
	// MissThreshold is how many consecutive delivery misses against a
	// cached location are tolerated before the entry is invalidated
	// (default 2). A single miss is often a transient network fault —
	// dropping the cache for it trades a cheap retry for a full lookup.
	MissThreshold int
	// Telemetry receives the locator's counters; nil uses a private
	// registry (counters still work, nothing is exported).
	Telemetry *telemetry.Registry
}

// metrics holds the locator's registered counter handles.
type metrics struct {
	lookups      *telemetry.Counter
	cacheHits    *telemetry.Counter
	directory    *telemetry.Counter
	homeQuery    *telemetry.Counter
	failures     *telemetry.Counter
	cacheEvict   *telemetry.Counter
	missEvict    *telemetry.Counter
	singleflight *telemetry.Counter
	pushInval    *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		lookups:      reg.Counter("naplet_locator_lookups_total", "naplet location resolutions requested"),
		cacheHits:    reg.Counter("naplet_locator_cache_hits_total", "resolutions served from the location cache"),
		directory:    reg.Counter("naplet_locator_directory_queries_total", "central-directory round trips"),
		homeQuery:    reg.Counter("naplet_locator_home_queries_total", "home-manager round trips"),
		failures:     reg.Counter("naplet_locator_failures_total", "failed lookups (before hint fallback)"),
		cacheEvict:   reg.Counter("naplet_locator_cache_evictions_total", "cache entries dropped (TTL expiry or invalidation)"),
		missEvict:    reg.Counter("naplet_locator_miss_invalidations_total", "cache entries dropped after repeated delivery misses"),
		singleflight: reg.Counter("naplet_locator_singleflight_total", "duplicate concurrent lookups coalesced onto one round trip"),
		pushInval:    reg.Counter("naplet_locator_push_invalidations_total", "migration push-invalidations received"),
	}
}

type cached struct {
	server string
	at     time.Time
}

// flight is one in-progress resolution that concurrent callers for the
// same naplet wait on instead of issuing duplicate round trips.
type flight struct {
	done   chan struct{}
	server string
	err    error
}

// Locator resolves naplet identifiers to server names. It is safe for
// concurrent use.
type Locator struct {
	cfg   Config
	node  transport.Node
	mgr   *manager.Manager
	clock func() time.Time
	met   *metrics
	dir   directory.Directory

	mu      sync.Mutex
	cache   map[string]cached
	misses  map[string]int
	flights map[string]*flight
}

// New builds a locator for a server. node is the server's fabric node
// (used for directory and home queries); mgr is the local manager (used to
// answer home queries and to shortcut local naplets); nil clock means
// time.Now.
func New(cfg Config, node transport.Node, mgr *manager.Manager, clock func() time.Time) *Locator {
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 2
	}
	if clock == nil {
		clock = time.Now
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	dir := cfg.Directory
	if dir == nil && cfg.DirectoryAddr != "" {
		// Built once and reused for every lookup; the client is stateless
		// and safe for concurrent use.
		dir = directory.NewClient(node, cfg.DirectoryAddr)
	}
	return &Locator{
		cfg:     cfg,
		node:    node,
		mgr:     mgr,
		clock:   clock,
		met:     newMetrics(reg),
		dir:     dir,
		cache:   make(map[string]cached),
		misses:  make(map[string]int),
		flights: make(map[string]*flight),
	}
}

// Mode returns the configured location mode.
func (l *Locator) Mode() Mode { return l.cfg.Mode }

// Locate resolves the naplet's current (best-known) server. hint is the
// caller's address-book entry for the naplet and may be empty. The answer
// may be stale by the time it is used; the messenger's forwarding handles
// that (§4.2).
func (l *Locator) Locate(ctx context.Context, nid id.NapletID, hint string) (string, error) {
	l.met.lookups.Inc()
	l.mu.Lock()
	if l.cfg.CacheTTL > 0 {
		if c, ok := l.cache[nid.Key()]; ok {
			if l.clock().Sub(c.at) <= l.cfg.CacheTTL {
				l.mu.Unlock()
				l.met.cacheHits.Inc()
				return c.server, nil
			}
			delete(l.cache, nid.Key())
			l.met.cacheEvict.Inc()
		}
	}
	l.mu.Unlock()

	// A naplet present at this very server needs no lookup.
	if l.mgr != nil {
		if tr := l.mgr.TraceNaplet(nid); tr.Present {
			l.remember(nid, l.mgr.Server())
			return l.mgr.Server(), nil
		}
	}

	switch l.cfg.Mode {
	case ModeDirectory:
		server, err := l.shared(nid, func() (string, error) {
			return l.locateViaDirectory(ctx, nid)
		})
		if err != nil {
			l.fail()
			return l.fallback(hint, err)
		}
		return server, nil
	case ModeHome:
		server, err := l.shared(nid, func() (string, error) {
			return l.locateViaHome(ctx, nid)
		})
		if err != nil {
			l.fail()
			return l.fallback(hint, err)
		}
		return server, nil
	default: // ModeForward
		if hint == "" {
			return "", ErrNoHint
		}
		return hint, nil
	}
}

// shared coalesces concurrent resolutions of the same naplet onto one
// round trip: the first caller becomes the leader and performs the lookup;
// the rest wait for its answer. Under fan-in messaging (many correspondents
// resolving one fast-moving naplet at once) this collapses a thundering
// herd of identical directory queries into a single one.
func (l *Locator) shared(nid id.NapletID, resolve func() (string, error)) (string, error) {
	key := nid.Key()
	l.mu.Lock()
	if f, ok := l.flights[key]; ok {
		l.mu.Unlock()
		l.met.singleflight.Inc()
		<-f.done
		return f.server, f.err
	}
	f := &flight{done: make(chan struct{})}
	l.flights[key] = f
	l.mu.Unlock()

	f.server, f.err = resolve()
	if f.err == nil {
		l.remember(nid, f.server)
	}
	l.mu.Lock()
	delete(l.flights, key)
	l.mu.Unlock()
	close(f.done)
	return f.server, f.err
}

// fallback degrades to the caller's hint when a lookup fails.
func (l *Locator) fallback(hint string, err error) (string, error) {
	if hint != "" {
		return hint, nil
	}
	return "", err
}

func (l *Locator) fail() {
	l.met.failures.Inc()
}

// remember caches a resolved location. A fresh location resets the miss
// streak: the entry has earned its place again.
func (l *Locator) remember(nid id.NapletID, server string) {
	if l.cfg.CacheTTL <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cache[nid.Key()] = cached{server: server, at: l.clock()}
	delete(l.misses, nid.Key())
}

// Invalidate drops a cached location, e.g. after a delivery failure or a
// migration notice.
func (l *Locator) Invalidate(nid id.NapletID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.misses, nid.Key())
	if _, ok := l.cache[nid.Key()]; ok {
		delete(l.cache, nid.Key())
		l.met.cacheEvict.Inc()
	}
}

// Miss records a delivery failure against the naplet's cached location.
// One miss is tolerated as a likely transient network fault; once the
// consecutive-miss count reaches MissThreshold the cache entry is dropped
// so the next Locate performs a real lookup. Reports whether the entry
// was invalidated.
func (l *Locator) Miss(nid id.NapletID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := nid.Key()
	l.misses[key]++
	if l.misses[key] < l.cfg.MissThreshold {
		return false
	}
	delete(l.misses, key)
	if _, ok := l.cache[key]; ok {
		delete(l.cache, key)
		l.met.cacheEvict.Inc()
	}
	l.met.missEvict.Inc()
	return true
}

// Refresh updates the cache with a location learned out of band (e.g. from
// a delivery confirmation); this is the paper's "buffered naplet location
// information can be updated on migration".
func (l *Locator) Refresh(nid id.NapletID, server string) {
	l.remember(nid, server)
}

func (l *Locator) locateViaDirectory(ctx context.Context, nid id.NapletID) (string, error) {
	if l.dir == nil {
		return "", fmt.Errorf("%w: no directory configured", ErrNotFound)
	}
	l.met.directory.Inc()
	entry, err := l.dir.Lookup(ctx, nid)
	if err != nil {
		return "", err
	}
	// A departure entry carries the migration destination: the compressed
	// forwarding pointer. Resolving straight to it saves chasing the
	// naplet's visit trace hop by hop.
	if entry.Event == directory.Departure && entry.Dest != "" {
		return entry.Dest, nil
	}
	return entry.Server, nil
}

func (l *Locator) locateViaHome(ctx context.Context, nid id.NapletID) (string, error) {
	home := nid.Host()
	// A naplet whose home is this server resolves locally.
	if l.mgr != nil && home == l.mgr.Server() {
		if server, ok := l.mgr.HomeLocate(nid); ok {
			return server, nil
		}
		return "", fmt.Errorf("%w: %s (home has no record)", ErrNotFound, nid)
	}
	l.met.homeQuery.Inc()
	f := wire.BinaryFrame(wire.KindLocatorQuery, "", "", &QueryBody{NapletID: nid})
	reply, err := l.node.Call(ctx, home, f)
	if err != nil {
		return "", err
	}
	var body ReplyBody
	if err := body.Decode(reply.Payload); err != nil {
		return "", err
	}
	if !body.Found {
		return "", fmt.Errorf("%w: %s", ErrNotFound, nid)
	}
	return body.Server, nil
}

// HandleQuery answers a home-directory location query against the local
// manager; the server routes KindLocatorQuery frames here.
func (l *Locator) HandleQuery(from string, f wire.Frame) (wire.Frame, error) {
	var body QueryBody
	if err := body.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	reply := ReplyBody{}
	if l.mgr != nil {
		if server, ok := l.mgr.HomeLocate(body.NapletID); ok {
			reply.Found = true
			reply.Server = server
		} else if tr := l.mgr.TraceNaplet(body.NapletID); tr.Present {
			reply.Found = true
			reply.Server = l.mgr.Server()
		}
	}
	// The home manager only tracks live residents; a naplet that has
	// retired (or was launched elsewhere) may still have a last-known
	// location in the directory plane.
	if !reply.Found && l.dir != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		if server, err := l.locateViaDirectory(ctx, body.NapletID); err == nil {
			reply.Found = true
			reply.Server = server
		}
		cancel()
	}
	return wire.BinaryFrame(wire.KindLocatorReply, f.To, f.From, &reply), nil
}

// HandleInvalidate applies a migration push-notice; the server routes
// KindLocatorInvalidate frames here. A notice with the destination
// refreshes the cache in place (the next message goes straight to the
// naplet's new server, no lookup); one without drops the stale entry.
func (l *Locator) HandleInvalidate(from string, f wire.Frame) (wire.Frame, error) {
	var body InvalidateBody
	if err := body.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	l.met.pushInval.Inc()
	if body.Server != "" {
		l.Refresh(body.NapletID, body.Server)
	} else {
		l.Invalidate(body.NapletID)
	}
	return wire.BinaryFrame(wire.KindLocatorReply, f.To, f.From, &ReplyBody{Found: body.Server != "", Server: body.Server}), nil
}

// Stats snapshots the locator's activity counters from the telemetry
// registry.
func (l *Locator) Stats() Stats {
	return Stats{
		Lookups:      l.met.lookups.Value(),
		CacheHits:    l.met.cacheHits.Value(),
		Directory:    l.met.directory.Value(),
		HomeQuery:    l.met.homeQuery.Value(),
		Failures:     l.met.failures.Value(),
		CacheEvict:   l.met.cacheEvict.Value(),
		MissEvict:    l.met.missEvict.Value(),
		Singleflight: l.met.singleflight.Value(),
		PushInval:    l.met.pushInval.Value(),
	}
}
