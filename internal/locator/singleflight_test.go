package locator

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/directory"
	"repro/internal/id"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// slowDirectory is a directory stub whose Lookup blocks until released,
// counting calls — the window that lets duplicate lookups pile up.
type slowDirectory struct {
	mu      sync.Mutex
	calls   int
	release chan struct{}
	entry   directory.Entry
}

func (d *slowDirectory) RegisterEvent(context.Context, directory.Registration) error { return nil }
func (d *slowDirectory) DeregisterServer(context.Context, string) error              { return nil }

func (d *slowDirectory) Lookup(ctx context.Context, nid id.NapletID) (directory.Entry, error) {
	d.mu.Lock()
	d.calls++
	d.mu.Unlock()
	<-d.release
	return d.entry, nil
}

func attachIdle(t *testing.T, net *netsim.Network, addr string) transport.Node {
	t.Helper()
	node, err := net.Attach(addr, func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, errors.New("unexpected")
	})
	if err != nil {
		t.Fatal(err)
	}
	return node
}

// Concurrent Locates for the same naplet must coalesce onto a single
// directory round trip.
func TestSingleflightSuppressesDuplicateLookups(t *testing.T) {
	net := netsim.New(netsim.Config{})
	node := attachIdle(t, net, "s1")
	dir := &slowDirectory{
		release: make(chan struct{}),
		entry:   directory.Entry{Server: "s7"},
	}
	loc := New(Config{Mode: ModeDirectory, Directory: dir}, node, nil, nil)

	const callers = 16
	var wg sync.WaitGroup
	results := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			server, err := loc.Locate(context.Background(), nid, "")
			if err != nil {
				t.Error(err)
			}
			results[i] = server
		}(i)
	}
	// Let the herd assemble behind the leader, then release the lookup.
	for {
		loc.mu.Lock()
		waiting := loc.met.singleflight.Value()
		loc.mu.Unlock()
		if waiting == callers-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(dir.release)
	wg.Wait()

	for _, server := range results {
		if server != "s7" {
			t.Fatalf("results: %v", results)
		}
	}
	if dir.calls != 1 {
		t.Fatalf("directory calls = %d, want 1", dir.calls)
	}
	if s := loc.Stats(); s.Singleflight != callers-1 || s.Directory != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// A departure entry resolves straight to its destination — the compressed
// forwarding pointer — instead of the server the naplet already left.
func TestLocateResolvesDepartureDest(t *testing.T) {
	r := newRig(t, ModeDirectory, 0)
	ctx := context.Background()
	cnode := attachIdle(t, r.net, "reg")
	dc := directory.NewClient(cnode, "dir")
	dc.RegisterEvent(ctx, directory.Registration{
		NapletID: nid, Event: directory.Departure, Server: "s7", Dest: "s8", At: t0, Seq: 2,
	})
	server, err := r.s1Loc.Locate(ctx, nid, "")
	if err != nil || server != "s8" {
		t.Fatalf("Locate = %q %v, want s8 (the forwarding destination)", server, err)
	}
}

// A push-invalidation with the destination refreshes the cache in place;
// the next Locate answers from cache with no directory round trip.
func TestHandleInvalidateRefreshesCache(t *testing.T) {
	r := newRig(t, ModeDirectory, time.Minute)
	ctx := context.Background()
	cnode := attachIdle(t, r.net, "reg")
	directory.NewClient(cnode, "dir").Register(ctx, nid, directory.Arrival, "s7", t0)

	if server, _ := r.s1Loc.Locate(ctx, nid, ""); server != "s7" {
		t.Fatalf("warmup: %q", server)
	}

	f := wire.BinaryFrame(wire.KindLocatorInvalidate, "s7", "s1", &InvalidateBody{NapletID: nid, Server: "s9"})
	if _, err := r.s1Loc.HandleInvalidate("s7", f); err != nil {
		t.Fatal(err)
	}
	server, err := r.s1Loc.Locate(ctx, nid, "")
	if err != nil || server != "s9" {
		t.Fatalf("after push: %q %v", server, err)
	}
	s := r.s1Loc.Stats()
	if s.Directory != 1 {
		t.Fatalf("push refresh must not cost a lookup: %+v", s)
	}
	if s.PushInval != 1 {
		t.Fatalf("stats: %+v", s)
	}

	// A destination-less notice just drops the entry; the next Locate goes
	// back to the directory.
	f = wire.BinaryFrame(wire.KindLocatorInvalidate, "s9", "s1", &InvalidateBody{NapletID: nid})
	if _, err := r.s1Loc.HandleInvalidate("s9", f); err != nil {
		t.Fatal(err)
	}
	if server, _ := r.s1Loc.Locate(ctx, nid, ""); server != "s7" {
		t.Fatalf("after drop: %q", server)
	}
	if s := r.s1Loc.Stats(); s.Directory != 2 {
		t.Fatalf("drop must force a lookup: %+v", s)
	}
}

func TestLocatorBodyCodecRoundTrip(t *testing.T) {
	q := QueryBody{NapletID: nid}
	buf := q.AppendBinary(make([]byte, 0, q.EncodedSize()))
	if len(buf) != q.EncodedSize() {
		t.Fatalf("query size: %d want %d", len(buf), q.EncodedSize())
	}
	var qb QueryBody
	if err := qb.Decode(buf); err != nil || qb.NapletID.Key() != nid.Key() {
		t.Fatalf("query round trip: %+v %v", qb, err)
	}

	rep := ReplyBody{Found: true, Server: "s3"}
	buf = rep.AppendBinary(make([]byte, 0, rep.EncodedSize()))
	var rb ReplyBody
	if err := rb.Decode(buf); err != nil || rb != rep {
		t.Fatalf("reply round trip: %+v %v", rb, err)
	}

	inv := InvalidateBody{NapletID: nid, Server: "s4"}
	buf = inv.AppendBinary(make([]byte, 0, inv.EncodedSize()))
	if len(buf) != inv.EncodedSize() {
		t.Fatalf("invalidate size: %d want %d", len(buf), inv.EncodedSize())
	}
	var ib InvalidateBody
	if err := ib.Decode(buf); err != nil || ib.NapletID.Key() != nid.Key() || ib.Server != "s4" {
		t.Fatalf("invalidate round trip: %+v %v", ib, err)
	}

	// Gob-era fallback.
	payload, err := wire.Marshal(&QueryBody{NapletID: nid})
	if err != nil {
		t.Fatal(err)
	}
	var gb QueryBody
	if err := gb.Decode(payload); err != nil || gb.NapletID.Key() != nid.Key() {
		t.Fatalf("gob fallback: %+v %v", gb, err)
	}
}
