package locator

import (
	"repro/internal/id"
	"repro/internal/wire"
)

// Binary codecs for the locator-protocol bodies, per the migration codec
// conventions (DESIGN.md §10): leading version byte, gob fallback for
// frames from senders predating the codec.

// bodyCodecVersion is the leading version byte of binary protocol bodies.
const bodyCodecVersion = 1

// isBinaryBody reports whether a payload carries the binary body codec.
func isBinaryBody(payload []byte) bool {
	return len(payload) > 0 && payload[0] == bodyCodecVersion
}

// EncodedSize returns the exact encoded size of the body.
func (b *QueryBody) EncodedSize() int {
	return 1 + b.NapletID.EncodedSize()
}

// AppendBinary appends the body's binary form to dst.
func (b *QueryBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	return b.NapletID.AppendBinary(dst)
}

// Decode parses a query payload, binary or legacy gob.
func (b *QueryBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	var err error
	b.NapletID, _, err = id.DecodeBinary(payload[1:])
	return err
}

// EncodedSize returns the exact encoded size of the body.
func (b *ReplyBody) EncodedSize() int {
	return 1 + wire.SizeBool + wire.SizeString(b.Server)
}

// AppendBinary appends the body's binary form to dst.
func (b *ReplyBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendBool(dst, b.Found)
	return wire.AppendString(dst, b.Server)
}

// Decode parses a reply payload, binary or legacy gob.
func (b *ReplyBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.Found, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if b.Server, _, err = wire.DecString(rest); err != nil {
		return err
	}
	return nil
}

// EncodedSize returns the exact encoded size of the body.
func (b *InvalidateBody) EncodedSize() int {
	return 1 + b.NapletID.EncodedSize() + wire.SizeString(b.Server)
}

// AppendBinary appends the body's binary form to dst.
func (b *InvalidateBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = b.NapletID.AppendBinary(dst)
	return wire.AppendString(dst, b.Server)
}

// Decode parses an invalidate payload, binary or legacy gob.
func (b *InvalidateBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.NapletID, rest, err = id.DecodeBinary(rest); err != nil {
		return err
	}
	if b.Server, _, err = wire.DecString(rest); err != nil {
		return err
	}
	return nil
}
