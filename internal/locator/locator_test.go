package locator

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/directory"
	"repro/internal/id"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/wire"
)

var (
	t0  = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)
	nid = id.MustNew("czxu", "home", t0) // home server is "home"
)

// rig wires a netsim with a directory at "dir", a home server at "home"
// answering locator queries from its manager, and a querying server "s1".
type rig struct {
	net     *netsim.Network
	dir     *directory.Service
	homeMgr *manager.Manager
	s1Mgr   *manager.Manager
	s1Loc   *Locator
	clock   *time.Time
}

func newRig(t *testing.T, mode Mode, ttl time.Duration) *rig {
	t.Helper()
	now := t0
	r := &rig{net: netsim.New(netsim.Config{}), clock: &now}
	clock := func() time.Time { return *r.clock }

	r.dir = directory.NewService()
	if _, err := r.dir.Serve(r.net, "dir"); err != nil {
		t.Fatal(err)
	}

	r.homeMgr = manager.New("home", clock)
	var homeLoc *Locator
	homeNode, err := r.net.Attach("home", func(from string, f wire.Frame) (wire.Frame, error) {
		if f.Kind == wire.KindLocatorQuery {
			return homeLoc.HandleQuery(from, f)
		}
		return wire.Frame{}, errors.New("unexpected kind")
	})
	if err != nil {
		t.Fatal(err)
	}
	homeLoc = New(Config{Mode: mode, DirectoryAddr: "dir"}, homeNode, r.homeMgr, clock)

	r.s1Mgr = manager.New("s1", clock)
	s1Node, err := r.net.Attach("s1", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, errors.New("unexpected")
	})
	if err != nil {
		t.Fatal(err)
	}
	r.s1Loc = New(Config{Mode: mode, DirectoryAddr: "dir", CacheTTL: ttl}, s1Node, r.s1Mgr, clock)
	return r
}

func TestDirectoryMode(t *testing.T) {
	r := newRig(t, ModeDirectory, 0)
	ctx := context.Background()
	// Register via a directory client as a navigator would.
	cnode, _ := r.net.Attach("reg", func(string, wire.Frame) (wire.Frame, error) { return wire.Frame{}, nil })
	dc := directory.NewClient(cnode, "dir")
	dc.Register(ctx, nid, directory.Arrival, "s7", t0)

	server, err := r.s1Loc.Locate(ctx, nid, "")
	if err != nil || server != "s7" {
		t.Fatalf("Locate = %q %v", server, err)
	}
	if r.s1Loc.Stats().Directory != 1 {
		t.Fatalf("stats: %+v", r.s1Loc.Stats())
	}
}

func TestDirectoryModeFallbackToHint(t *testing.T) {
	r := newRig(t, ModeDirectory, 0)
	// Unregistered naplet: lookup fails, locator degrades to the caller's
	// address-book hint.
	server, err := r.s1Loc.Locate(context.Background(), nid, "hinted")
	if err != nil || server != "hinted" {
		t.Fatalf("fallback = %q %v", server, err)
	}
	// Without a hint the error surfaces.
	if _, err := r.s1Loc.Locate(context.Background(), nid, ""); err == nil {
		t.Fatal("no hint: want error")
	}
	if r.s1Loc.Stats().Failures != 2 {
		t.Fatalf("failures: %+v", r.s1Loc.Stats())
	}
}

func TestHomeMode(t *testing.T) {
	r := newRig(t, ModeHome, 0)
	// The home manager learned the naplet is at s9 from a remote arrival
	// report.
	r.homeMgr.HomeRecord(nid, "s9", true, t0)
	server, err := r.s1Loc.Locate(context.Background(), nid, "")
	if err != nil || server != "s9" {
		t.Fatalf("home mode Locate = %q %v", server, err)
	}
	if r.s1Loc.Stats().HomeQuery != 1 {
		t.Fatalf("stats: %+v", r.s1Loc.Stats())
	}
}

func TestHomeModeLocalShortcut(t *testing.T) {
	r := newRig(t, ModeHome, 0)
	// A naplet whose home is this server resolves without network traffic.
	localNid := id.MustNew("u", "s1", t0)
	r.s1Mgr.HomeRecord(localNid, "s3", true, t0)
	server, err := r.s1Loc.Locate(context.Background(), localNid, "")
	if err != nil || server != "s3" {
		t.Fatalf("local home = %q %v", server, err)
	}
	if r.s1Loc.Stats().HomeQuery != 0 {
		t.Fatal("local home lookup must not query the network")
	}
	// Unknown local home naplet fails without hint.
	unknown := id.MustNew("x", "s1", t0)
	if _, err := r.s1Loc.Locate(context.Background(), unknown, ""); err == nil {
		t.Fatal("unknown local naplet must fail")
	}
}

func TestHomeModeViaPresence(t *testing.T) {
	r := newRig(t, ModeHome, 0)
	// The home server hosts the naplet right now (no home-track entry, but
	// the visit trace shows presence).
	r.homeMgr.RecordArrival(nid, "cb", "launch", t0)
	server, err := r.s1Loc.Locate(context.Background(), nid, "")
	if err != nil || server != "home" {
		t.Fatalf("presence-based home answer = %q %v", server, err)
	}
}

func TestForwardMode(t *testing.T) {
	r := newRig(t, ModeForward, 0)
	server, err := r.s1Loc.Locate(context.Background(), nid, "book-entry")
	if err != nil || server != "book-entry" {
		t.Fatalf("forward mode = %q %v", server, err)
	}
	if _, err := r.s1Loc.Locate(context.Background(), nid, ""); !errors.Is(err, ErrNoHint) {
		t.Fatalf("want ErrNoHint, got %v", err)
	}
	// Forward mode does no lookups.
	s := r.s1Loc.Stats()
	if s.Directory != 0 || s.HomeQuery != 0 {
		t.Fatalf("forward mode must not look up: %+v", s)
	}
}

func TestLocalPresenceShortcut(t *testing.T) {
	r := newRig(t, ModeDirectory, 0)
	r.s1Mgr.RecordArrival(nid, "cb", "home", t0)
	server, err := r.s1Loc.Locate(context.Background(), nid, "")
	if err != nil || server != "s1" {
		t.Fatalf("local shortcut = %q %v", server, err)
	}
	if r.s1Loc.Stats().Directory != 0 {
		t.Fatal("local presence must not hit the directory")
	}
}

func TestCacheHitAndTTL(t *testing.T) {
	r := newRig(t, ModeDirectory, time.Minute)
	ctx := context.Background()
	cnode, _ := r.net.Attach("reg", func(string, wire.Frame) (wire.Frame, error) { return wire.Frame{}, nil })
	directory.NewClient(cnode, "dir").Register(ctx, nid, directory.Arrival, "s7", t0)

	r.s1Loc.Locate(ctx, nid, "")
	r.s1Loc.Locate(ctx, nid, "")
	s := r.s1Loc.Stats()
	if s.Directory != 1 || s.CacheHits != 1 {
		t.Fatalf("cache not used: %+v", s)
	}
	// Expire the cache.
	*r.clock = t0.Add(2 * time.Minute)
	r.s1Loc.Locate(ctx, nid, "")
	s = r.s1Loc.Stats()
	if s.Directory != 2 || s.CacheEvict != 1 {
		t.Fatalf("TTL not applied: %+v", s)
	}
}

func TestInvalidateAndRefresh(t *testing.T) {
	r := newRig(t, ModeDirectory, time.Minute)
	ctx := context.Background()
	cnode, _ := r.net.Attach("reg", func(string, wire.Frame) (wire.Frame, error) { return wire.Frame{}, nil })
	directory.NewClient(cnode, "dir").Register(ctx, nid, directory.Arrival, "s7", t0)

	r.s1Loc.Locate(ctx, nid, "")
	r.s1Loc.Invalidate(nid)
	r.s1Loc.Locate(ctx, nid, "")
	if s := r.s1Loc.Stats(); s.Directory != 2 {
		t.Fatalf("invalidate not honored: %+v", s)
	}
	// Refresh (e.g. from a delivery confirmation) primes the cache.
	r.s1Loc.Refresh(nid, "s8")
	server, _ := r.s1Loc.Locate(ctx, nid, "")
	if server != "s8" {
		t.Fatalf("refresh not used: %q", server)
	}
}

func TestMissThresholdInvalidatesCache(t *testing.T) {
	r := newRig(t, ModeDirectory, time.Minute)
	ctx := context.Background()
	cnode, _ := r.net.Attach("reg", func(string, wire.Frame) (wire.Frame, error) { return wire.Frame{}, nil })
	directory.NewClient(cnode, "dir").Register(ctx, nid, directory.Arrival, "s7", t0)

	r.s1Loc.Locate(ctx, nid, "")
	// One delivery miss is tolerated (the naplet may just be mid-hop); the
	// cached answer survives.
	if r.s1Loc.Miss(nid) {
		t.Fatal("first miss must not invalidate")
	}
	r.s1Loc.Locate(ctx, nid, "")
	if s := r.s1Loc.Stats(); s.Directory != 1 || s.CacheHits != 1 {
		t.Fatalf("cache dropped after a single miss: %+v", s)
	}
	// The second consecutive miss crosses the default threshold.
	if !r.s1Loc.Miss(nid) {
		t.Fatal("second consecutive miss must invalidate")
	}
	r.s1Loc.Locate(ctx, nid, "")
	s := r.s1Loc.Stats()
	if s.Directory != 2 {
		t.Fatalf("stale entry served after miss eviction: %+v", s)
	}
	if s.MissEvict != 1 {
		t.Fatalf("MissEvict = %d, want 1", s.MissEvict)
	}
}

func TestMissStreakResetBySuccess(t *testing.T) {
	r := newRig(t, ModeDirectory, time.Minute)
	ctx := context.Background()
	cnode, _ := r.net.Attach("reg", func(string, wire.Frame) (wire.Frame, error) { return wire.Frame{}, nil })
	directory.NewClient(cnode, "dir").Register(ctx, nid, directory.Arrival, "s7", t0)

	r.s1Loc.Locate(ctx, nid, "")
	r.s1Loc.Miss(nid)
	// A successful resolution (fresh lookup or confirmation refresh) wipes
	// the streak: the next miss counts as the first again.
	r.s1Loc.Refresh(nid, "s7")
	if r.s1Loc.Miss(nid) {
		t.Fatal("streak must reset after a successful resolution")
	}
	if s := r.s1Loc.Stats(); s.MissEvict != 0 {
		t.Fatalf("MissEvict = %d, want 0", s.MissEvict)
	}
}

func TestModeString(t *testing.T) {
	if ModeDirectory.String() != "directory" || ModeHome.String() != "home" || ModeForward.String() != "forward" {
		t.Fatal("mode names")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode")
	}
	r := newRig(t, ModeHome, 0)
	if r.s1Loc.Mode() != ModeHome {
		t.Fatal("Mode()")
	}
}
