// Package dock persists one naplet server's recoverable state — resident
// naplet records, the Messenger's held/undelivered mail, and home-track
// registrations — so a crashed-and-restarted server picks up exactly where
// it stopped.
//
// The on-disk format wraps a versioned payload in a small self-describing
// envelope:
//
//	magic   [8]byte  "NAPDOCK\n"
//	version uint16   big-endian (1 = gob payload, 2 = binary payload)
//	length  uint32   big-endian payload byte count
//	payload []byte   version 1: wire.Marshal(Snapshot);
//	                 version 2: Snapshot.AppendBinary (codec.go)
//	crc     uint32   big-endian IEEE CRC-32 of the payload
//
// Writes are atomic: the snapshot lands in a temp file in the same
// directory, is fsynced, and is renamed over the live file, so a crash
// mid-write leaves the previous snapshot intact. A truncated or corrupted
// file fails Load with a descriptive error rather than restoring garbage.
package dock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/naplet"
	"repro/internal/wire"
)

// Snapshot format constants.
const (
	// VersionGob is the legacy snapshot format: a gob-encoded payload.
	// Stores still load it, so snapshots written before the binary codec
	// restore cleanly after an upgrade.
	VersionGob = 1
	// Version is the current snapshot format version: a hand-rolled
	// binary payload (see codec.go).
	Version = 2
	// FileName is the live snapshot file inside the store directory.
	FileName = "dock.snap"
)

var magic = [8]byte{'N', 'A', 'P', 'D', 'O', 'C', 'K', '\n'}

// ErrCorrupt wraps any snapshot-decoding failure: bad magic, unsupported
// version, short file, CRC mismatch, or a payload gob error.
var ErrCorrupt = errors.New("dock: corrupt snapshot")

// Resident handoff phases. The phase distinguishes how far a naplet's
// migration had progressed when the snapshot was taken, which decides how
// the restarted server resumes it.
const (
	// PhaseResident: the naplet's visit completed; resume the itinerary
	// engine at the next Next() decision.
	PhaseResident = "resident"
	// PhaseVisiting: the naplet had a pending visit that may not have
	// run; re-run the visit (at-least-once within a visit).
	PhaseVisiting = "visiting"
	// PhaseDeparting: dispatch to Dest was in flight under TransferID;
	// replay the dispatch under the same ID so the destination's dedup
	// window gives exactly-once handoff.
	PhaseDeparting = "departing"
)

// Resident is one persisted naplet.
type Resident struct {
	// ID is the naplet ID string (diagnostics; the authoritative ID is
	// inside Record).
	ID string
	// Record is the navigator-encoded (gob) naplet record.
	Record []byte
	// Phase is one of the Phase* constants.
	Phase string
	// Dest is the in-flight dispatch destination (PhaseDeparting).
	Dest string
	// TransferID is the in-flight transfer ID (PhaseDeparting).
	TransferID string
}

// HomeEntry is one persisted home-track observation (the distributed
// directory's newest-wins location record for a naplet launched here).
type HomeEntry struct {
	ID      string
	Server  string
	Arrival bool
	At      time.Time
}

// Snapshot is everything a server persists between commits.
type Snapshot struct {
	// Server is the address that wrote the snapshot.
	Server string
	// SavedAt stamps the commit.
	SavedAt time.Time
	// Residents are the naplets docked here (any phase).
	Residents []Resident
	// Held is the Messenger's special mailbox: mail awaiting naplets
	// that have not arrived (or whose mailbox closed).
	Held map[string][]naplet.Message
	// Mailboxes are the queued-but-unreceived messages of open
	// mailboxes, keyed by naplet ID key.
	Mailboxes map[string][]naplet.Message
	// Home is the manager's home-track table.
	Home []HomeEntry
	// AcceptedTransfers are the navigator's landing-dedup transfer IDs:
	// restoring them keeps a replayed pre-crash migration exactly-once.
	AcceptedTransfers []string
	// DeliveredMsgs are the messenger's delivery-dedup message IDs.
	DeliveredMsgs []string
}

// Store persists snapshots under one directory.
type Store struct {
	dir     string
	mu      sync.Mutex
	saveVer uint16
}

// Open prepares a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("dock: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dock: %w", err)
	}
	return &Store{dir: dir, saveVer: Version}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the live snapshot file path.
func (s *Store) Path() string { return filepath.Join(s.dir, FileName) }

// DiskUsage reports the bytes the dock currently occupies on disk: the
// sum of every regular file under the store directory (the live snapshot
// plus any in-flight temporary). Fleet heartbeats carry this figure so
// the master's watchdog can stop routing waves at an over-watermark dock.
func (s *Store) DiskUsage() (uint64, error) {
	var total uint64
	err := filepath.WalkDir(s.dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			// The file vanished between listing and stat (an atomic
			// replace); usage is a snapshot, not an audit.
			return nil
		}
		total += uint64(info.Size())
		return nil
	})
	return total, err
}

// SetSaveVersion selects the payload format Save writes: VersionGob or
// Version. New stores default to Version; the knob exists so recovery
// tests (and downgrades) can exercise both formats.
func (s *Store) SetSaveVersion(v uint16) error {
	if v != VersionGob && v != Version {
		return fmt.Errorf("dock: unsupported save version %d", v)
	}
	s.mu.Lock()
	s.saveVer = v
	s.mu.Unlock()
	return nil
}

// Save atomically replaces the live snapshot.
func (s *Store) Save(snap *Snapshot) error {
	s.mu.Lock()
	ver := s.saveVer
	s.mu.Unlock()
	var payload []byte
	if ver == VersionGob {
		var err error
		if payload, err = wire.Marshal(snap); err != nil {
			return fmt.Errorf("dock: encode snapshot: %w", err)
		}
	} else {
		payload = snap.AppendBinary(make([]byte, 0, snap.EncodedSize()))
	}
	buf := make([]byte, 0, len(magic)+2+4+len(payload)+4)
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, ver)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))

	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, FileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("dock: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("dock: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("dock: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("dock: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path()); err != nil {
		return fmt.Errorf("dock: commit snapshot: %w", err)
	}
	return nil
}

// Load reads the live snapshot. A store with no snapshot yet returns
// (nil, nil); a damaged file returns an error wrapping ErrCorrupt.
func (s *Store) Load() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.Path())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dock: %w", err)
	}
	if len(data) < len(magic)+2+4+4 {
		return nil, fmt.Errorf("%w: short file (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	rest := data[len(magic):]
	ver := binary.BigEndian.Uint16(rest)
	if ver != VersionGob && ver != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	n := binary.BigEndian.Uint32(rest[2:])
	rest = rest[6:]
	if uint32(len(rest)) != n+4 {
		return nil, fmt.Errorf("%w: payload length %d does not match file", ErrCorrupt, n)
	}
	payload := rest[:n]
	want := binary.BigEndian.Uint32(rest[n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	if ver == VersionGob {
		var snap Snapshot
		if err := wire.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return &snap, nil
	}
	snap, err := DecodeSnapshotBinary(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return snap, nil
}
