package dock

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/naplet"
)

func sampleSnapshot() *Snapshot {
	nid, err := id.New("alice", "h1", time.Unix(50, 0))
	if err != nil {
		panic(err)
	}
	return &Snapshot{
		Server:  "h1:7001",
		SavedAt: time.Unix(1234, 0).UTC(),
		Residents: []Resident{
			{ID: "alice:n1@h1", Record: []byte{1, 2, 3}, Phase: PhaseResident},
			{ID: "alice:n2@h1", Record: []byte{4, 5}, Phase: PhaseDeparting, Dest: "h2:7001", TransferID: "h1:7001/17"},
		},
		Held: map[string][]naplet.Message{
			nid.Key(): {{ID: "m1", To: nid, Subject: "hi", Body: []byte("x")}},
		},
		Mailboxes: map[string][]naplet.Message{
			nid.Key(): {{ID: "m2", To: nid, Subject: "queued"}},
		},
		Home: []HomeEntry{{ID: nid.Key(), Server: "h2:7001", Arrival: true, At: time.Unix(99, 0).UTC()}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Empty store loads as nil, nil.
	if snap, err := st.Load(); err != nil || snap != nil {
		t.Fatalf("empty Load = %v, %v; want nil, nil", snap, err)
	}
	want := sampleSnapshot()
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Overwrite keeps only the latest snapshot.
	want.SavedAt = want.SavedAt.Add(time.Hour)
	want.Residents = want.Residents[:1]
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err = st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("overwrite mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	path := st.Path()
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"bad magic":    append([]byte("XXXXXXXX"), good[8:]...),
		"bad version":  append(append(append([]byte{}, good[:8]...), 0xff, 0xff), good[10:]...),
		"flipped byte": flip(good, len(good)/2),
		"truncated":    good[:len(good)-3],
		"short file":   good[:6],
	}
	for name, data := range cases {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Load(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Load error = %v, want ErrCorrupt", name, err)
		}
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0xff
	return out
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Save(sampleSnapshot()); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != FileName {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory contents = %v, want only %s", names, FileName)
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "dock")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("Open did not create %s: %v", dir, err)
	}
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") should fail")
	}
}
