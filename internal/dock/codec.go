package dock

import (
	"sort"

	"repro/internal/naplet"
	"repro/internal/wire"
)

// Binary codec for version-2 snapshot payloads. The envelope (magic,
// version, length, CRC) is unchanged; only the payload encoding moved from
// gob to the hand-rolled wire primitives. Layout:
//
//	[string server] [time savedAt]
//	[uvarint r] r×Resident    ([string id] [bytes record] [string phase]
//	                           [string dest] [string transferID])
//	[msgmap held] [msgmap mailboxes]
//	  where msgmap = [uvarint n] n× (sorted by key)
//	                 ([string key] [uvarint m] m×[Message])
//	[uvarint h] h×HomeEntry   ([string id] [string server] [bool arrival]
//	                           [time at])
//	[uvarint a] a×[string transferID]
//	[uvarint d] d×[string msgID]
//
// Map keys are emitted sorted so encoding is deterministic (golden-byte
// fixtures depend on it). Messages reuse the naplet binary message codec.

func sizeMsgMap(m map[string][]naplet.Message) int {
	sz := wire.SizeUvarint(uint64(len(m)))
	for k, msgs := range m {
		sz += wire.SizeString(k) + wire.SizeUvarint(uint64(len(msgs)))
		for i := range msgs {
			sz += msgs[i].EncodedSize()
		}
	}
	return sz
}

func appendMsgMap(dst []byte, m map[string][]naplet.Message) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = wire.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = wire.AppendString(dst, k)
		msgs := m[k]
		dst = wire.AppendUvarint(dst, uint64(len(msgs)))
		for i := range msgs {
			dst = msgs[i].AppendBinary(dst)
		}
	}
	return dst
}

func decodeMsgMap(b []byte) (map[string][]naplet.Message, []byte, error) {
	cnt, b, err := wire.DecCount(b, 2)
	if err != nil {
		return nil, nil, err
	}
	if cnt == 0 {
		return nil, b, nil
	}
	m := make(map[string][]naplet.Message, cnt)
	for i := 0; i < cnt; i++ {
		var k string
		if k, b, err = wire.DecString(b); err != nil {
			return nil, nil, err
		}
		mcnt, rest, err := wire.DecCount(b, 4)
		if err != nil {
			return nil, nil, err
		}
		msgs := make([]naplet.Message, mcnt)
		for j := range msgs {
			if msgs[j], rest, err = naplet.DecodeMessageBinary(rest); err != nil {
				return nil, nil, err
			}
		}
		m[k] = msgs
		b = rest
	}
	return m, b, nil
}

func sizeStrings(ss []string) int {
	sz := wire.SizeUvarint(uint64(len(ss)))
	for _, s := range ss {
		sz += wire.SizeString(s)
	}
	return sz
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = wire.AppendString(dst, s)
	}
	return dst
}

func decodeStrings(b []byte) ([]string, []byte, error) {
	cnt, b, err := wire.DecCount(b, 1)
	if err != nil {
		return nil, nil, err
	}
	if cnt == 0 {
		return nil, b, nil
	}
	ss := make([]string, cnt)
	for i := range ss {
		if ss[i], b, err = wire.DecString(b); err != nil {
			return nil, nil, err
		}
	}
	return ss, b, nil
}

// EncodedSize returns the exact binary-encoded payload size of the
// snapshot.
func (s *Snapshot) EncodedSize() int {
	sz := wire.SizeString(s.Server) + wire.SizeTime(s.SavedAt)
	sz += wire.SizeUvarint(uint64(len(s.Residents)))
	for i := range s.Residents {
		r := &s.Residents[i]
		sz += wire.SizeString(r.ID) + wire.SizeBytes(r.Record) +
			wire.SizeString(r.Phase) + wire.SizeString(r.Dest) +
			wire.SizeString(r.TransferID)
	}
	sz += sizeMsgMap(s.Held) + sizeMsgMap(s.Mailboxes)
	sz += wire.SizeUvarint(uint64(len(s.Home)))
	for i := range s.Home {
		h := &s.Home[i]
		sz += wire.SizeString(h.ID) + wire.SizeString(h.Server) +
			wire.SizeBool + wire.SizeTime(h.At)
	}
	return sz + sizeStrings(s.AcceptedTransfers) + sizeStrings(s.DeliveredMsgs)
}

// AppendBinary appends the snapshot's binary payload form to dst.
func (s *Snapshot) AppendBinary(dst []byte) []byte {
	dst = wire.AppendString(dst, s.Server)
	dst = wire.AppendTime(dst, s.SavedAt)
	dst = wire.AppendUvarint(dst, uint64(len(s.Residents)))
	for i := range s.Residents {
		r := &s.Residents[i]
		dst = wire.AppendString(dst, r.ID)
		dst = wire.AppendBytes(dst, r.Record)
		dst = wire.AppendString(dst, r.Phase)
		dst = wire.AppendString(dst, r.Dest)
		dst = wire.AppendString(dst, r.TransferID)
	}
	dst = appendMsgMap(dst, s.Held)
	dst = appendMsgMap(dst, s.Mailboxes)
	dst = wire.AppendUvarint(dst, uint64(len(s.Home)))
	for i := range s.Home {
		h := &s.Home[i]
		dst = wire.AppendString(dst, h.ID)
		dst = wire.AppendString(dst, h.Server)
		dst = wire.AppendBool(dst, h.Arrival)
		dst = wire.AppendTime(dst, h.At)
	}
	dst = appendStrings(dst, s.AcceptedTransfers)
	return appendStrings(dst, s.DeliveredMsgs)
}

// DecodeSnapshotBinary parses a version-2 binary snapshot payload. The
// returned snapshot does not alias b.
func DecodeSnapshotBinary(b []byte) (*Snapshot, error) {
	snap := new(Snapshot)
	var err error
	if snap.Server, b, err = wire.DecString(b); err != nil {
		return nil, err
	}
	if snap.SavedAt, b, err = wire.DecTime(b); err != nil {
		return nil, err
	}
	rcnt, b, err := wire.DecCount(b, 5)
	if err != nil {
		return nil, err
	}
	if rcnt > 0 {
		snap.Residents = make([]Resident, rcnt)
		for i := range snap.Residents {
			r := &snap.Residents[i]
			if r.ID, b, err = wire.DecString(b); err != nil {
				return nil, err
			}
			var rec []byte
			if rec, b, err = wire.DecBytes(b); err != nil {
				return nil, err
			}
			if rec != nil {
				r.Record = append([]byte(nil), rec...)
			}
			if r.Phase, b, err = wire.DecString(b); err != nil {
				return nil, err
			}
			if r.Dest, b, err = wire.DecString(b); err != nil {
				return nil, err
			}
			if r.TransferID, b, err = wire.DecString(b); err != nil {
				return nil, err
			}
		}
	}
	if snap.Held, b, err = decodeMsgMap(b); err != nil {
		return nil, err
	}
	if snap.Mailboxes, b, err = decodeMsgMap(b); err != nil {
		return nil, err
	}
	hcnt, b, err := wire.DecCount(b, 4)
	if err != nil {
		return nil, err
	}
	if hcnt > 0 {
		snap.Home = make([]HomeEntry, hcnt)
		for i := range snap.Home {
			h := &snap.Home[i]
			if h.ID, b, err = wire.DecString(b); err != nil {
				return nil, err
			}
			if h.Server, b, err = wire.DecString(b); err != nil {
				return nil, err
			}
			if h.Arrival, b, err = wire.DecBool(b); err != nil {
				return nil, err
			}
			if h.At, b, err = wire.DecTime(b); err != nil {
				return nil, err
			}
		}
	}
	if snap.AcceptedTransfers, b, err = decodeStrings(b); err != nil {
		return nil, err
	}
	if snap.DeliveredMsgs, _, err = decodeStrings(b); err != nil {
		return nil, err
	}
	return snap, nil
}
