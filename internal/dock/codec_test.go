package dock

import (
	"bytes"
	"encoding/hex"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/naplet"
)

var update = flag.Bool("update", false, "rewrite golden fixtures in testdata/")

var goldenTime = time.Date(2026, 1, 2, 3, 4, 5, 600700800, time.UTC)

func goldenSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	from := id.MustNew("czxu", "sa1", goldenTime)
	to := id.MustNew("amgr", "sb2", goldenTime.Add(time.Second))
	msg := naplet.Message{
		ID:      "sa/m-9",
		From:    from,
		To:      to,
		Class:   naplet.UserMessage,
		Subject: "held",
		Body:    []byte("payload"),
		SentAt:  goldenTime.Add(250 * time.Millisecond),
	}
	return &Snapshot{
		Server:  "sa:1",
		SavedAt: goldenTime,
		Residents: []Resident{
			{
				ID:         from.String(),
				Record:     []byte{'N', 'R', 1, 0xAA, 0xBB},
				Phase:      PhaseDeparting,
				Dest:       "sb:2",
				TransferID: "xfer-42",
			},
			{
				ID:     to.String(),
				Phase:  PhaseResident,
				Record: []byte{0x40, 0x01, 0x02},
			},
		},
		Held:              map[string][]naplet.Message{to.Key(): {msg}},
		Mailboxes:         map[string][]naplet.Message{from.Key(): {msg, msg}},
		Home:              []HomeEntry{{ID: from.String(), Server: "sb:2", Arrival: true, At: goldenTime.Add(time.Minute)}},
		AcceptedTransfers: []string{"xfer-41", "xfer-40"},
		DeliveredMsgs:     []string{"sa/m-8"},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(got)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run go test -update): %v", err)
	}
	want, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
	if err != nil {
		t.Fatalf("corrupt fixture %s: %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoding drifted from the pinned layout.\n got %s\nwant %s\n"+
			"If the change is intentional, bump dock.Version and regenerate with -update.",
			name, hex.EncodeToString(got), hex.EncodeToString(want))
	}
}

func TestSnapshotGoldenBytes(t *testing.T) {
	snap := goldenSnapshot(t)
	got := snap.AppendBinary(nil)
	if len(got) != snap.EncodedSize() {
		t.Fatalf("EncodedSize = %d, encoded %d bytes", snap.EncodedSize(), len(got))
	}
	checkGolden(t, "snapshot_v2.hex", got)

	dec, err := DecodeSnapshotBinary(got)
	if err != nil {
		t.Fatal(err)
	}
	if re := dec.AppendBinary(nil); !bytes.Equal(got, re) {
		t.Fatal("decode→encode of golden snapshot is not byte-identical")
	}
	if !reflect.DeepEqual(snap, dec) {
		t.Fatalf("decoded snapshot differs:\n got %+v\nwant %+v", dec, snap)
	}
}

// TestLoadGobSnapshot proves a version-1 (gob payload) snapshot written by
// a pre-binary-codec build restores through the current loader. The store
// writes it with SetSaveVersion(VersionGob), which produces byte-for-byte
// the legacy format (same envelope, wire.Marshal payload).
func TestLoadGobSnapshot(t *testing.T) {
	snap := goldenSnapshot(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetSaveVersion(VersionGob); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatalf("load of gob-era snapshot: %v", err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("gob round trip differs:\n got %+v\nwant %+v", got, snap)
	}

	// Re-save with the current version over the same store; it must load
	// identically.
	if err := st.SetSaveVersion(Version); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, err = st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("binary round trip differs:\n got %+v\nwant %+v", got, snap)
	}
}

func TestSetSaveVersionRejectsUnknown(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetSaveVersion(7); err == nil {
		t.Fatal("unknown save version accepted")
	}
}

func randString(r *rand.Rand, max int) string {
	n := r.Intn(max)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func randTime(r *rand.Rand) time.Time {
	if r.Intn(8) == 0 {
		return time.Time{}
	}
	return time.Unix(r.Int63n(4e9)-2e9, r.Int63n(1e9)).UTC()
}

func randMsgs(r *rand.Rand) []naplet.Message {
	msgs := make([]naplet.Message, 1+r.Intn(3))
	for i := range msgs {
		msgs[i] = naplet.Message{
			ID:      randString(r, 10),
			From:    id.MustNew(randString(r, 6)+"o", randString(r, 6)+"h", randTime(r)),
			To:      id.MustNew(randString(r, 6)+"o", randString(r, 6)+"h", randTime(r)),
			Class:   naplet.MessageClass(r.Intn(2)),
			Subject: randString(r, 12),
			SentAt:  randTime(r),
		}
		if r.Intn(3) != 0 {
			msgs[i].Body = []byte(randString(r, 30))
		}
	}
	return msgs
}

func TestSnapshotEncodeDecodeEncodeIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		snap := &Snapshot{Server: randString(r, 10), SavedAt: randTime(r)}
		for j := r.Intn(4); j > 0; j-- {
			res := Resident{
				ID:    randString(r, 20),
				Phase: []string{PhaseResident, PhaseVisiting, PhaseDeparting}[r.Intn(3)],
			}
			if r.Intn(4) != 0 {
				res.Record = []byte(randString(r, 60))
			}
			if res.Phase == PhaseDeparting {
				res.Dest = randString(r, 10)
				res.TransferID = randString(r, 10)
			}
			snap.Residents = append(snap.Residents, res)
		}
		if r.Intn(3) != 0 {
			snap.Held = map[string][]naplet.Message{}
			for j := 1 + r.Intn(3); j > 0; j-- {
				snap.Held[randString(r, 8)+"k"] = randMsgs(r)
			}
		}
		if r.Intn(3) != 0 {
			snap.Mailboxes = map[string][]naplet.Message{}
			for j := 1 + r.Intn(3); j > 0; j-- {
				snap.Mailboxes[randString(r, 8)+"k"] = randMsgs(r)
			}
		}
		for j := r.Intn(3); j > 0; j-- {
			snap.Home = append(snap.Home, HomeEntry{
				ID: randString(r, 15), Server: randString(r, 8),
				Arrival: r.Intn(2) == 0, At: randTime(r),
			})
		}
		for j := r.Intn(3); j > 0; j-- {
			snap.AcceptedTransfers = append(snap.AcceptedTransfers, randString(r, 10))
		}
		for j := r.Intn(3); j > 0; j-- {
			snap.DeliveredMsgs = append(snap.DeliveredMsgs, randString(r, 10))
		}

		enc := snap.AppendBinary(nil)
		if len(enc) != snap.EncodedSize() {
			t.Fatalf("iter %d: EncodedSize %d, encoded %d", i, snap.EncodedSize(), len(enc))
		}
		dec, err := DecodeSnapshotBinary(enc)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if re := dec.AppendBinary(nil); !bytes.Equal(enc, re) {
			t.Fatalf("iter %d: encode→decode→encode not byte-identical", i)
		}
	}
}

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot decoder: never
// panic, never over-allocate, and accepted snapshots must re-encode to a
// fixed point.
func FuzzDecodeSnapshot(f *testing.F) {
	golden := goldenSnapshot(f).AppendBinary(nil)
	f.Add(golden)
	f.Add(golden[:len(golden)/2])
	corrupt := append([]byte(nil), golden...)
	corrupt[len(corrupt)/3] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshotBinary(data)
		if err != nil {
			return
		}
		enc := snap.AppendBinary(nil)
		if len(enc) != snap.EncodedSize() {
			t.Fatalf("EncodedSize %d, encoded %d", snap.EncodedSize(), len(enc))
		}
		snap2, err := DecodeSnapshotBinary(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if re := snap2.AppendBinary(nil); !bytes.Equal(enc, re) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}
