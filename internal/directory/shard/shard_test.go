package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/directory"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/id"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

var t0 = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("owner%d@host%d", i, i%17)
	}
	return out
}

// Placement must be a pure function of the member set: node-list order
// cannot matter, and repeated calls agree.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"dir1", "dir2", "dir3", "dir4"})
	b := NewRing([]string{"dir4", "dir2", "dir1", "dir3", "dir2"})
	for _, k := range keys(500) {
		oa := a.Owners(k, 2)
		ob := b.Owners(k, 2)
		if len(oa) != 2 || oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("placement differs for %q: %v vs %v", k, oa, ob)
		}
		if oa[0] == oa[1] {
			t.Fatalf("duplicate owner for %q: %v", k, oa)
		}
		if a.Primary(k) != oa[0] {
			t.Fatalf("primary mismatch for %q", k)
		}
	}
}

func TestRingClampsReplicas(t *testing.T) {
	r := NewRing([]string{"dir1", "dir2"})
	if got := r.Owners("k", 5); len(got) != 2 {
		t.Fatalf("owners = %v, want both nodes", got)
	}
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("owners(0) = %v", got)
	}
	if NewRing(nil).Primary("k") != "" {
		t.Fatal("empty ring primary")
	}
}

// Property: rendezvous placement is stable under leave — removing one of N
// nodes relocates only keys that listed it as an owner (≈ R·K/N), and
// every other key keeps its exact owner list.
func TestRingStabilityUnderLeave(t *testing.T) {
	const n, reps = 10, 2
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("dir%d", i)
	}
	full := NewRing(nodes)
	smaller := NewRing(nodes[1:]) // dir0 leaves

	ks := keys(10000)
	moved := 0
	for _, k := range ks {
		before := full.Owners(k, reps)
		after := smaller.Owners(k, reps)
		hadLeaver := before[0] == "dir0" || before[1] == "dir0"
		if !hadLeaver {
			if before[0] != after[0] || before[1] != after[1] {
				t.Fatalf("key %q moved without owning the leaver: %v -> %v", k, before, after)
			}
			continue
		}
		moved++
		// The surviving owner keeps its slot; only the leaver's slot is
		// refilled.
		for _, b := range before {
			if b == "dir0" {
				continue
			}
			if after[0] != b && after[1] != b {
				t.Fatalf("key %q dropped surviving owner %q: %v -> %v", k, b, before, after)
			}
		}
	}
	// Expected moved fraction is reps/n = 20%; allow generous slack for
	// hash variance.
	frac := float64(moved) / float64(len(ks))
	if frac < 0.10 || frac > 0.35 {
		t.Fatalf("moved fraction %.3f outside [0.10, 0.35] (want ≈ %.2f)", frac, float64(reps)/n)
	}
}

// Property: join is the inverse of leave — re-adding the node restores the
// original placement exactly.
func TestRingJoinRestoresPlacement(t *testing.T) {
	nodes := []string{"dir0", "dir1", "dir2", "dir3", "dir4"}
	full := NewRing(nodes)
	rejoined := NewRing(append([]string{"dir0"}, nodes[1:]...))
	for _, k := range keys(2000) {
		a, b := full.Owners(k, 3), rejoined.Owners(k, 3)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rejoin changed placement for %q: %v vs %v", k, a, b)
			}
		}
	}
}

// rig is a three-node directory plane on a simulated network with a fault
// injector between clients and the fabric.
type rig struct {
	net   *netsim.Network
	inj   *fault.Injector
	svcs  map[string]*directory.Service
	node  transport.Node
	nodes []string
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	net := netsim.New(netsim.Config{})
	inj := fault.New(fault.Config{Seed: seed})
	fab := inj.Fabric(net)
	r := &rig{
		net:   net,
		inj:   inj,
		svcs:  make(map[string]*directory.Service),
		nodes: []string{"dir1", "dir2", "dir3"},
	}
	for _, addr := range r.nodes {
		svc := directory.NewService()
		if _, err := svc.Serve(fab, addr); err != nil {
			t.Fatal(err)
		}
		r.svcs[addr] = svc
	}
	node, err := fab.Attach("client", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r.node = node
	return r
}

// Property: all replicas of a shard converge to the same entry after
// concurrent racing registrations, regardless of per-replica delivery
// order.
func TestReplicasConvergeUnderRacingRegistrations(t *testing.T) {
	r := newRig(t, 1)
	c := New(r.node, Config{Nodes: r.nodes, Replicas: 2})
	ctx := context.Background()

	nid := id.MustNew("u", "home", t0)
	events := []directory.Registration{
		{NapletID: nid, Event: directory.Arrival, Server: "s1", At: t0, Seq: 1},
		{NapletID: nid, Event: directory.Departure, Server: "s1", Dest: "s2", At: t0.Add(time.Second), Seq: 2},
		{NapletID: nid, Event: directory.Arrival, Server: "s2", At: t0.Add(time.Second), Seq: 3},
		{NapletID: nid, Event: directory.Departure, Server: "s2", Dest: "s3", At: t0.Add(2 * time.Second), Seq: 4},
		{NapletID: nid, Event: directory.Arrival, Server: "s3", At: t0.Add(2 * time.Second), Seq: 5},
	}
	rng := rand.New(rand.NewSource(3))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		perm := rng.Perm(len(events))
		wg.Add(1)
		go func(perm []int) {
			defer wg.Done()
			for _, i := range perm {
				if err := c.RegisterEvent(ctx, events[i]); err != nil {
					t.Error(err)
				}
			}
		}(perm)
	}
	wg.Wait()

	owners := c.Ring().Owners(KeyOf(nid), 2)
	var entries []directory.Entry
	for _, addr := range owners {
		e, ok := r.svcs[addr].Lookup(nid)
		if !ok {
			t.Fatalf("replica %s missing entry", addr)
		}
		entries = append(entries, e)
	}
	for _, e := range entries {
		if e.Event != directory.Arrival || e.Server != "s3" || e.Seq != 5 {
			t.Fatalf("replica diverged: %+v", e)
		}
	}
	// And the non-owner holds nothing: writes fan only to the group.
	for _, addr := range r.nodes {
		if addr == owners[0] || addr == owners[1] {
			continue
		}
		if _, ok := r.svcs[addr].Lookup(nid); ok {
			t.Fatalf("non-owner %s received the write", addr)
		}
	}
}

// Killing one replica after the write: the lookup fails over to the
// surviving replica and still reads the acknowledged registration.
func TestLookupFailsOverOnReplicaDeath(t *testing.T) {
	r := newRig(t, 2)
	det := health.New(health.Config{})
	c := New(r.node, Config{Nodes: r.nodes, Replicas: 2, Health: det})
	ctx := context.Background()

	nid := id.MustNew("u", "home", t0)
	if err := c.RegisterEvent(ctx, directory.Registration{
		NapletID: nid, Event: directory.Arrival, Server: "s1", At: t0, Seq: 1,
	}); err != nil {
		t.Fatal(err)
	}

	primary := c.Ring().Owners(KeyOf(nid), 2)[0]
	r.inj.Crash(primary)

	e, err := c.Lookup(ctx, nid)
	if err != nil {
		t.Fatalf("lookup after replica death: %v", err)
	}
	if e.Server != "s1" {
		t.Fatalf("entry = %+v", e)
	}
	if c.Stats().Failovers == 0 {
		t.Fatalf("failover not counted: %+v", c.Stats())
	}

	// Writes keep succeeding against the survivor …
	if err := c.RegisterEvent(ctx, directory.Registration{
		NapletID: nid, Event: directory.Arrival, Server: "s9", At: t0.Add(time.Minute), Seq: 3,
	}); err != nil {
		t.Fatalf("register with dead replica: %v", err)
	}
	// … and remain readable.
	if e, err = c.Lookup(ctx, nid); err != nil || e.Server != "s9" {
		t.Fatalf("read-your-writes after failover: %+v %v", e, err)
	}
}

// A replica that missed the write (down during registration) answers
// not-found; the group must still satisfy the read from the replica that
// acked — read-your-writes under partial write failure.
func TestLookupFansThroughNotFound(t *testing.T) {
	r := newRig(t, 3)
	c := New(r.node, Config{Nodes: r.nodes, Replicas: 2})
	ctx := context.Background()

	nid := id.MustNew("u", "home", t0)
	owners := c.Ring().Owners(KeyOf(nid), 2)

	// Write while the primary is down: only the secondary acks.
	r.inj.Crash(owners[0])
	if err := c.RegisterEvent(ctx, directory.Registration{
		NapletID: nid, Event: directory.Arrival, Server: "s1", At: t0, Seq: 1,
	}); err != nil {
		t.Fatalf("register with primary down: %v", err)
	}
	// Primary recovers empty (no anti-entropy yet) and answers not-found.
	r.inj.Restart(owners[0])
	e, err := c.Lookup(ctx, nid)
	if err != nil {
		t.Fatalf("lookup must fan through the empty primary: %v", err)
	}
	if e.Server != "s1" {
		t.Fatalf("entry = %+v", e)
	}
}

func TestLookupUnknownNotFound(t *testing.T) {
	r := newRig(t, 4)
	c := New(r.node, Config{Nodes: r.nodes, Replicas: 2})
	_, err := c.Lookup(context.Background(), id.MustNew("ghost", "h", t0))
	if !errors.Is(err, directory.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

// DeregisterServer reaches every node: a server's entries live on
// arbitrary shards.
func TestDeregisterServerBroadcasts(t *testing.T) {
	r := newRig(t, 5)
	c := New(r.node, Config{Nodes: r.nodes, Replicas: 2})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		nid := id.MustNew(fmt.Sprintf("u%d", i), "home", t0)
		if err := c.RegisterEvent(ctx, directory.Registration{
			NapletID: nid, Event: directory.Arrival, Server: "s1", At: t0, Seq: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DeregisterServer(ctx, "s1"); err != nil {
		t.Fatal(err)
	}
	for _, addr := range r.nodes {
		if n := r.svcs[addr].Len(); n != 0 {
			t.Fatalf("node %s still holds %d entries", addr, n)
		}
	}
}
