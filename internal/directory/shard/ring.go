// Package shard partitions the directory namespace across a set of
// directory nodes and replicates each partition over a small replica
// group.
//
// Placement uses rendezvous (highest-random-weight) hashing over the
// hierarchical NapletID's owner/home prefix: every client independently
// scores each directory node against the key and picks the top-R scorers
// as the key's replica group. Unlike a modulo table, a node joining or
// leaving moves only ~K/N of the keys (the ones whose top-R set changes)
// and requires no coordination — all clients converge on the same owners
// from the member list alone. Keying by owner/home prefix keeps a naplet
// and its clones on the same shard, mirroring the hierarchical
// distributed-manager architectures for large mobile-agent populations.
//
// The replica group gives the plane its availability: registrations write
// through to every live replica, and lookups prefer the highest-scored
// live replica, failing over on health signals. A lookup that finds
// nothing on one replica consults the rest of the group before reporting
// not-found, so a registration acknowledged by any surviving replica is
// always readable — the read-your-writes form of the paper's
// "execution postponed until arrival is acknowledged" invariant.
package shard

import (
	"sort"

	"repro/internal/id"
)

// KeyOf returns the shard key of a naplet: the owner/home prefix of its
// hierarchical ID. Clones share it, so a lineage is co-located.
func KeyOf(nid id.NapletID) string {
	return nid.Owner() + "@" + nid.Host()
}

// Ring is a rendezvous-hash view over a fixed member list. It is immutable
// and safe for concurrent use; membership changes build a new Ring.
type Ring struct {
	nodes []string
}

// NewRing builds a ring over the given directory-node addresses.
// Duplicates are dropped; order does not matter (all clients converge on
// the same placement from the same member set).
func NewRing(nodes []string) *Ring {
	seen := make(map[string]struct{}, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			continue
		}
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	return &Ring{nodes: uniq}
}

// Nodes returns the member list (sorted, deduplicated).
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// FNV-1a 64-bit parameters; inlined rather than hash/fnv so scoring stays
// allocation-free on the per-lookup routing path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// score is the rendezvous weight of node for key: FNV-1a over
// node \x00 key. Any well-mixed hash works; FNV keeps the ring
// dependency-free and allocation-free.
func score(node, key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= fnvPrime64
	}
	h *= fnvPrime64 // the \x00 separator: XOR with zero, multiply
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// Owners returns the key's replica group: the n highest-scoring members in
// preference order (the first entry is the primary a lookup tries first).
// Ties break by address so placement is deterministic everywhere.
//
// This runs on every routed register and lookup, so it selects the top n
// by scanning rather than sorting: one allocation (the result), stack
// scratch for typical ring sizes.
func (r *Ring) Owners(key string, n int) []string {
	nn := len(r.nodes)
	if n <= 0 || nn == 0 {
		return nil
	}
	if n > nn {
		n = nn
	}
	var scoreStack [16]uint64
	var pickedStack [16]bool
	scores, picked := scoreStack[:], pickedStack[:]
	if nn > len(scoreStack) {
		scores = make([]uint64, nn)
		picked = make([]bool, nn)
	}
	for i, node := range r.nodes {
		scores[i] = score(node, key)
	}
	out := make([]string, n)
	for k := 0; k < n; k++ {
		// r.nodes is sorted ascending, so keeping the first of equal
		// scores is exactly the address tie-break.
		best := -1
		for i := 0; i < nn; i++ {
			if !picked[i] && (best < 0 || scores[i] > scores[best]) {
				best = i
			}
		}
		picked[best] = true
		out[k] = r.nodes[best]
	}
	return out
}

// Primary returns the key's first-preference owner, or "" on an empty
// ring. Allocation-free.
func (r *Ring) Primary(key string) string {
	best := ""
	var bestScore uint64
	for _, node := range r.nodes {
		if s := score(node, key); best == "" || s > bestScore {
			best, bestScore = node, s
		}
	}
	return best
}
