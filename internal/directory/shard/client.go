package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/directory"
	"repro/internal/health"
	"repro/internal/id"
	"repro/internal/transport"
)

// Config parameterizes a sharded directory client.
type Config struct {
	// Nodes are the directory-node addresses forming the plane.
	Nodes []string
	// Replicas is the replica-group size per shard key (default 2,
	// clamped to len(Nodes)).
	Replicas int
	// Health, when set, supplies liveness signals: calls report outcomes
	// into it, and lookups skip replicas it marks dead (except the one
	// probe per interval its Allow gate grants, so a recovered node
	// rejoins).
	Health *health.Detector
	// CallTimeout bounds each per-replica call (default 2s) so one hung
	// replica cannot stall a write that another replica would ack.
	CallTimeout time.Duration
}

// Stats counts sharded-plane activity.
type Stats struct {
	// Registers counts RegisterEvent calls; RegisterFanout the per-replica
	// writes they fanned into; RegisterErrors the replica writes that
	// failed (the write still succeeds while any replica acks).
	Registers      int64
	RegisterFanout int64
	RegisterErrors int64
	// Lookups counts Lookup calls; Failovers the lookups answered by a
	// non-primary replica.
	Lookups   int64
	Failovers int64
}

// Client is a sharded, replicated directory plane behind the
// directory.Directory interface. Registrations write through to every live
// replica of the key's group; lookups try replicas in rendezvous
// preference order and fail over on errors and on not-found answers, so
// any acknowledged write is readable while one replica of the group
// survives.
//
// Client is safe for concurrent use; build one per server and share it.
type Client struct {
	ring     *Ring
	replicas int
	health   *health.Detector
	timeout  time.Duration

	mu      sync.RWMutex
	clients map[string]*directory.Client
	node    transport.Node

	registers      atomic.Int64
	registerFanout atomic.Int64
	registerErrors atomic.Int64
	lookups        atomic.Int64
	failovers      atomic.Int64
}

// New builds a sharded directory client calling through node.
func New(node transport.Node, cfg Config) *Client {
	ring := NewRing(cfg.Nodes)
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 2
	}
	if replicas > ring.Len() {
		replicas = ring.Len()
	}
	timeout := cfg.CallTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	c := &Client{
		ring:     ring,
		replicas: replicas,
		health:   cfg.Health,
		timeout:  timeout,
		clients:  make(map[string]*directory.Client, ring.Len()),
		node:     node,
	}
	for _, addr := range ring.Nodes() {
		c.clients[addr] = directory.NewClient(node, addr)
	}
	return c
}

// Ring returns the placement ring.
func (c *Client) Ring() *Ring { return c.ring }

// Replicas returns the replica-group size.
func (c *Client) Replicas() int { return c.replicas }

// client returns the per-node directory client for addr.
func (c *Client) client(addr string) *directory.Client {
	c.mu.RLock()
	dc := c.clients[addr]
	c.mu.RUnlock()
	if dc != nil {
		return dc
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if dc = c.clients[addr]; dc == nil {
		dc = directory.NewClient(c.node, addr)
		c.clients[addr] = dc
	}
	return dc
}

// skip reports whether addr should be passed over: the detector holds it
// dead and the probe budget for this interval is spent.
func (c *Client) skip(addr string) bool {
	return c.health != nil && c.health.Dead(addr) && !c.health.Allow(addr)
}

func (c *Client) reportSuccess(addr string) {
	if c.health != nil {
		c.health.ReportSuccess(addr)
	}
}

func (c *Client) reportFailure(addr string) {
	if c.health != nil {
		c.health.ReportFailure(addr)
	}
}

// call runs fn under the per-replica timeout.
func (c *Client) call(ctx context.Context, fn func(ctx context.Context) error) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	return fn(ctx)
}

// RegisterEvent writes the event through to every replica of the key's
// group. It succeeds while at least one replica acknowledges — the paper's
// invariant holds against that ack because the lookup path consults the
// whole group before declaring not-found. Replicas that fail the write are
// reported to the failure detector and excluded from lookups until they
// recover.
func (c *Client) RegisterEvent(ctx context.Context, r directory.Registration) error {
	c.registers.Add(1)
	owners := c.ring.Owners(KeyOf(r.NapletID), c.replicas)
	if len(owners) == 0 {
		return errors.New("shard: no directory nodes configured")
	}
	var (
		acked   bool
		lastErr error
	)
	for _, addr := range owners {
		if c.skip(addr) {
			continue
		}
		c.registerFanout.Add(1)
		err := c.call(ctx, func(ctx context.Context) error {
			return c.client(addr).RegisterEvent(ctx, r)
		})
		if err != nil {
			c.registerErrors.Add(1)
			c.reportFailure(addr)
			lastErr = err
			continue
		}
		c.reportSuccess(addr)
		acked = true
	}
	if acked {
		return nil
	}
	if lastErr != nil {
		return lastErr
	}
	return errors.New("shard: all replicas excluded by failure detector")
}

// Lookup resolves a naplet through its replica group in preference order.
// Transport failures and not-found answers both fail over to the next
// replica: a registration acked by any surviving group member satisfies
// the read even when other replicas missed the write.
func (c *Client) Lookup(ctx context.Context, nid id.NapletID) (directory.Entry, error) {
	c.lookups.Add(1)
	owners := c.ring.Owners(KeyOf(nid), c.replicas)
	if len(owners) == 0 {
		return directory.Entry{}, errors.New("shard: no directory nodes configured")
	}
	var (
		notFound bool
		lastErr  error
	)
	for i, addr := range owners {
		if c.skip(addr) {
			continue
		}
		var entry directory.Entry
		err := c.call(ctx, func(ctx context.Context) error {
			var err error
			entry, err = c.client(addr).Lookup(ctx, nid)
			return err
		})
		switch {
		case err == nil:
			c.reportSuccess(addr)
			if i > 0 {
				c.failovers.Add(1)
			}
			return entry, nil
		case errors.Is(err, directory.ErrNotFound):
			// The node answered; it just has no entry. Another replica of
			// the group may hold the acked write.
			c.reportSuccess(addr)
			notFound = true
		default:
			c.reportFailure(addr)
			lastErr = err
		}
	}
	if notFound {
		return directory.Entry{}, directory.ErrNotFound
	}
	if lastErr != nil {
		return directory.Entry{}, lastErr
	}
	return directory.Entry{}, errors.New("shard: all replicas excluded by failure detector")
}

// DeregisterServer withdraws the server's entries from every directory
// node: a server's naplets are spread across all shards, so the
// withdrawal broadcasts. Unreachable nodes are reported and skipped — a
// dead replica rebuilds from fresher registrations when it returns.
func (c *Client) DeregisterServer(ctx context.Context, server string) error {
	var lastErr error
	for _, addr := range c.ring.Nodes() {
		if c.skip(addr) {
			continue
		}
		err := c.call(ctx, func(ctx context.Context) error {
			return c.client(addr).DeregisterServer(ctx, server)
		})
		if err != nil {
			c.reportFailure(addr)
			lastErr = err
			continue
		}
		c.reportSuccess(addr)
	}
	return lastErr
}

// Stats returns activity counters.
func (c *Client) Stats() Stats {
	return Stats{
		Registers:      c.registers.Load(),
		RegisterFanout: c.registerFanout.Load(),
		RegisterErrors: c.registerErrors.Load(),
		Lookups:        c.lookups.Load(),
		Failovers:      c.failovers.Load(),
	}
}

// compile-time interface check: the sharded plane is a directory.
var _ directory.Directory = (*Client)(nil)
