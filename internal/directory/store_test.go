package directory

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/wire"
)

// Regression for the equal-timestamp tie: a Departure report arriving with
// the same At as the registered Arrival must not overwrite it. The arrival
// registration is the acknowledged one (execution is postponed until it is
// acked), so displacing it with a racing departure would break lookups for
// a naplet that is demonstrably running.
func TestEqualTimestampArrivalWins(t *testing.T) {
	_, c := setup(t)
	nid := id.MustNew("u", "home", t0)
	ctx := context.Background()

	c.RegisterEvent(ctx, Registration{NapletID: nid, Event: Arrival, Server: "s2", At: t0, Seq: 3})
	// A duplicated/retried departure report with the identical timestamp.
	c.RegisterEvent(ctx, Registration{NapletID: nid, Event: Departure, Server: "s1", Dest: "s2", At: t0, Seq: 2})
	e, err := c.Lookup(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if e.Event != Arrival || e.Server != "s2" {
		t.Fatalf("equal-At departure overwrote arrival: %+v", e)
	}

	// And the same rule applied in the other arrival order.
	nid2 := id.MustNew("u2", "home", t0)
	c.RegisterEvent(ctx, Registration{NapletID: nid2, Event: Departure, Server: "s1", Dest: "s2", At: t0, Seq: 2})
	c.RegisterEvent(ctx, Registration{NapletID: nid2, Event: Arrival, Server: "s2", At: t0, Seq: 3})
	e, _ = c.Lookup(ctx, nid2)
	if e.Event != Arrival || e.Server != "s2" {
		t.Fatalf("arrival did not supersede equal-At departure: %+v", e)
	}
}

// At equal At and equal kind, the higher navigation-log sequence wins, so a
// retried duplicate of hop N cannot displace hop N+2 registered within the
// same clock tick.
func TestEqualTimestampSeqBreaksSameKind(t *testing.T) {
	svc := NewService()
	nid := id.MustNew("u", "home", t0)
	svc.Register(RegisterBody{NapletID: nid, Event: Arrival, Server: "s5", At: t0, Seq: 5})
	svc.Register(RegisterBody{NapletID: nid, Event: Arrival, Server: "s3", At: t0, Seq: 3})
	e, ok := svc.Lookup(nid)
	if !ok || e.Server != "s5" || e.Seq != 5 {
		t.Fatalf("lower-seq duplicate overwrote: %+v", e)
	}
}

func TestDeregisterServerDropsOnlyItsEntries(t *testing.T) {
	svc := NewService()
	var onS1 []id.NapletID
	for i := 0; i < 200; i++ {
		nid := id.MustNew("u", "home", t0.Add(time.Duration(i)*time.Second))
		server := "s1"
		if i%2 == 1 {
			server = "s2"
		} else {
			onS1 = append(onS1, nid)
		}
		svc.Register(RegisterBody{NapletID: nid, Event: Arrival, Server: server, At: t0})
	}
	svc.DeregisterServer("s1")
	if got := svc.Len(); got != 100 {
		t.Fatalf("after deregister: %d entries, want 100", got)
	}
	for _, nid := range onS1 {
		if _, ok := svc.Lookup(nid); ok {
			t.Fatalf("entry for deregistered server survived: %s", nid)
		}
	}
}

// A naplet that moved between registrations must leave the by-server index
// of its old server, or a later deregistration of that server would wrongly
// drop it.
func TestDeregisterAfterMoveKeepsMovedEntry(t *testing.T) {
	svc := NewService()
	nid := id.MustNew("u", "home", t0)
	svc.Register(RegisterBody{NapletID: nid, Event: Arrival, Server: "s1", At: t0, Seq: 1})
	svc.Register(RegisterBody{NapletID: nid, Event: Arrival, Server: "s2", At: t0.Add(time.Second), Seq: 3})
	svc.DeregisterServer("s1")
	e, ok := svc.Lookup(nid)
	if !ok || e.Server != "s2" {
		t.Fatalf("moved entry lost on old-server deregister: %+v ok=%v", e, ok)
	}
}

// The supersedes rule is a deterministic total preference, so two replicas
// applying the same event set in any interleaving converge on the same
// entry. This is the single-node half of the shard-replica convergence
// property; internal/directory/shard tests the networked half.
func TestRegisterOrderIndependence(t *testing.T) {
	nid := id.MustNew("u", "home", t0)
	events := []RegisterBody{
		{NapletID: nid, Event: Arrival, Server: "s1", At: t0, Seq: 1},
		{NapletID: nid, Event: Departure, Server: "s1", Dest: "s2", At: t0.Add(time.Second), Seq: 2},
		{NapletID: nid, Event: Arrival, Server: "s2", At: t0.Add(time.Second), Seq: 3},
		{NapletID: nid, Event: Departure, Server: "s2", Dest: "s3", At: t0.Add(2 * time.Second), Seq: 4},
		{NapletID: nid, Event: Arrival, Server: "s3", At: t0.Add(2 * time.Second), Seq: 5},
	}
	want := Entry{NapletID: nid, Event: Arrival, Server: "s3", At: t0.Add(2 * time.Second), Seq: 5}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(events))
		svc := NewService()
		for _, i := range perm {
			svc.Register(events[i])
			// Retries duplicate events on the wire; replay a random prefix.
			svc.Register(events[perm[0]])
		}
		got, ok := svc.Lookup(nid)
		if !ok || got.NapletID.Key() != want.NapletID.Key() ||
			got.Event != want.Event || got.Server != want.Server ||
			got.Dest != want.Dest || !got.At.Equal(want.At) || got.Seq != want.Seq {
			t.Fatalf("perm %v diverged: got %+v want %+v", perm, got, want)
		}
	}
}

// Concurrent registrations and lookups across many goroutines: the striped
// store must stay consistent (exercised under -race by make verify).
func TestConcurrentRegisterLookup(t *testing.T) {
	svc := NewService()
	const naplets = 64
	ids := make([]id.NapletID, naplets)
	for i := range ids {
		ids[i] = id.MustNew("u", "home", t0.Add(time.Duration(i)*time.Minute))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				nid := ids[(w*500+i)%naplets]
				svc.Register(RegisterBody{
					NapletID: nid, Event: Arrival, Server: "s1",
					At: t0.Add(time.Duration(i) * time.Second), Seq: uint64(i),
				})
				svc.Lookup(nid)
			}
		}(w)
	}
	wg.Wait()
	if svc.Len() != naplets {
		t.Fatalf("len = %d, want %d", svc.Len(), naplets)
	}
}

func TestBodyCodecRoundTrip(t *testing.T) {
	nid := id.MustNew("u", "home", t0)
	reg := RegisterBody{NapletID: nid, Event: Departure, Server: "s1", Dest: "s2", At: t0, Seq: 9}
	buf := reg.AppendBinary(make([]byte, 0, reg.EncodedSize()))
	if len(buf) != reg.EncodedSize() {
		t.Fatalf("size: got %d want %d", len(buf), reg.EncodedSize())
	}
	var back RegisterBody
	if err := back.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if back.NapletID.Key() != reg.NapletID.Key() || back.Event != reg.Event ||
		back.Server != reg.Server || back.Dest != reg.Dest ||
		!back.At.Equal(reg.At) || back.Seq != reg.Seq {
		t.Fatalf("round trip: %+v != %+v", back, reg)
	}

	rep := ReplyBody{Found: true, Entry: Entry{NapletID: nid, Event: Departure, Server: "s1", Dest: "s2", At: t0, Seq: 9}}
	buf = rep.AppendBinary(make([]byte, 0, rep.EncodedSize()))
	if len(buf) != rep.EncodedSize() {
		t.Fatalf("reply size: got %d want %d", len(buf), rep.EncodedSize())
	}
	var rback ReplyBody
	if err := rback.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if !rback.Found || rback.Entry.NapletID.Key() != rep.Entry.NapletID.Key() ||
		rback.Entry.Event != rep.Entry.Event || rback.Entry.Server != rep.Entry.Server ||
		rback.Entry.Dest != rep.Entry.Dest || !rback.Entry.At.Equal(rep.Entry.At) ||
		rback.Entry.Seq != rep.Entry.Seq {
		t.Fatalf("reply round trip: %+v != %+v", rback, rep)
	}

	miss := ReplyBody{Found: false}
	buf = miss.AppendBinary(nil)
	var mback ReplyBody
	if err := mback.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if mback.Found {
		t.Fatal("miss round trip found=true")
	}
}

// Gob-era senders predate the binary bodies; decoders must still accept
// their frames.
func TestBodyCodecGobFallback(t *testing.T) {
	nid := id.MustNew("u", "home", t0)
	reg := RegisterBody{NapletID: nid, Event: Arrival, Server: "s1", At: t0}
	payload, err := wire.Marshal(&reg)
	if err != nil {
		t.Fatal(err)
	}
	var back RegisterBody
	if err := back.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if back.Server != "s1" || back.Event != Arrival {
		t.Fatalf("gob fallback: %+v", back)
	}
}
