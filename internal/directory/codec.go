package directory

import (
	"repro/internal/id"
	"repro/internal/wire"
)

// Binary codecs for the directory-protocol bodies, following the migration
// codec conventions (DESIGN.md §10): a leading version byte, no
// reflection, exact-size allocation; decoders sniff the version byte and
// fall back to gob for frames from senders predating the codec (a gob
// stream's first byte is a segment length that is never 0x01 for these
// struct bodies).

// bodyCodecVersion is the leading version byte of binary protocol bodies.
const bodyCodecVersion = 1

// isBinaryBody reports whether a payload carries the binary body codec.
func isBinaryBody(payload []byte) bool {
	return len(payload) > 0 && payload[0] == bodyCodecVersion
}

// EncodedSize returns the exact encoded size of the body.
func (b *RegisterBody) EncodedSize() int {
	return 1 + b.NapletID.EncodedSize() + wire.SizeUvarint(uint64(b.Event)) +
		wire.SizeString(b.Server) + wire.SizeString(b.Dest) +
		wire.SizeTime(b.At) + wire.SizeUvarint(b.Seq)
}

// AppendBinary appends the body's binary form to dst.
func (b *RegisterBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = b.NapletID.AppendBinary(dst)
	dst = wire.AppendUvarint(dst, uint64(b.Event))
	dst = wire.AppendString(dst, b.Server)
	dst = wire.AppendString(dst, b.Dest)
	dst = wire.AppendTime(dst, b.At)
	return wire.AppendUvarint(dst, b.Seq)
}

// Decode parses a register payload, binary or legacy gob.
func (b *RegisterBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.NapletID, rest, err = id.DecodeBinary(rest); err != nil {
		return err
	}
	ev, rest, err := wire.DecUvarint(rest)
	if err != nil {
		return err
	}
	if ev > uint64(Departure) {
		return wire.ErrMalformed
	}
	b.Event = Event(ev)
	if b.Server, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	if b.Dest, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	if b.At, rest, err = wire.DecTime(rest); err != nil {
		return err
	}
	if b.Seq, _, err = wire.DecUvarint(rest); err != nil {
		return err
	}
	return nil
}

// EncodedSize returns the exact encoded size of the body.
func (b *LookupBody) EncodedSize() int {
	return 1 + b.NapletID.EncodedSize()
}

// AppendBinary appends the body's binary form to dst.
func (b *LookupBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	return b.NapletID.AppendBinary(dst)
}

// Decode parses a lookup payload, binary or legacy gob.
func (b *LookupBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	var err error
	b.NapletID, _, err = id.DecodeBinary(payload[1:])
	return err
}

// EncodedSize returns the exact encoded size of the body.
func (b *DeregisterBody) EncodedSize() int {
	return 1 + wire.SizeString(b.Server)
}

// AppendBinary appends the body's binary form to dst.
func (b *DeregisterBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	return wire.AppendString(dst, b.Server)
}

// Decode parses a deregister payload, binary or legacy gob.
func (b *DeregisterBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	var err error
	b.Server, _, err = wire.DecString(payload[1:])
	return err
}

// EncodedSize returns the exact encoded size of the body.
func (b *ReplyBody) EncodedSize() int {
	n := 1 + wire.SizeBool
	if b.Found {
		n += b.Entry.NapletID.EncodedSize() +
			wire.SizeUvarint(uint64(b.Entry.Event)) +
			wire.SizeString(b.Entry.Server) + wire.SizeString(b.Entry.Dest) +
			wire.SizeTime(b.Entry.At) + wire.SizeUvarint(b.Entry.Seq)
	}
	return n
}

// AppendBinary appends the body's binary form to dst. A not-found reply
// carries no entry bytes.
func (b *ReplyBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendBool(dst, b.Found)
	if !b.Found {
		return dst
	}
	dst = b.Entry.NapletID.AppendBinary(dst)
	dst = wire.AppendUvarint(dst, uint64(b.Entry.Event))
	dst = wire.AppendString(dst, b.Entry.Server)
	dst = wire.AppendString(dst, b.Entry.Dest)
	dst = wire.AppendTime(dst, b.Entry.At)
	return wire.AppendUvarint(dst, b.Entry.Seq)
}

// Decode parses a reply payload, binary or legacy gob.
func (b *ReplyBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.Found, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if !b.Found {
		b.Entry = Entry{}
		return nil
	}
	if b.Entry.NapletID, rest, err = id.DecodeBinary(rest); err != nil {
		return err
	}
	ev, rest, err := wire.DecUvarint(rest)
	if err != nil {
		return err
	}
	if ev > uint64(Departure) {
		return wire.ErrMalformed
	}
	b.Entry.Event = Event(ev)
	if b.Entry.Server, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	if b.Entry.Dest, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	if b.Entry.At, rest, err = wire.DecTime(rest); err != nil {
		return err
	}
	if b.Entry.Seq, _, err = wire.DecUvarint(rest); err != nil {
		return err
	}
	return nil
}
