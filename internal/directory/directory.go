// Package directory implements the NapletDirectory of §4.1: the optional
// centralized service that tracks the location of naplets.
//
// Navigators register ARRIVAL and DEPARTURE events. The registration
// protocol preserves the paper's invariant: a naplet's execution at a
// server is postponed until the arrival registration is acknowledged, so
// the directory always holds current information — if the latest entry for
// a naplet is a departure it is in transit; if an arrival, it is running at
// (or about to leave) the registered server.
package directory

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/id"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Event is the registered life-cycle event kind.
type Event int

// Directory events.
const (
	// Arrival: the naplet landed at Entry.Server and is (or was) running
	// there.
	Arrival Event = iota
	// Departure: the naplet was dispatched from Entry.Server and is in
	// transit.
	Departure
)

// String returns the event name.
func (e Event) String() string {
	if e == Arrival {
		return "arrival"
	}
	return "departure"
}

// Entry is the latest registered event for one naplet.
type Entry struct {
	NapletID id.NapletID
	Event    Event
	Server   string
	At       time.Time
}

// ErrNotFound is reported for naplets with no registration.
var ErrNotFound = errors.New("directory: naplet not registered")

// RegisterBody is the wire body of a KindDirRegister frame.
type RegisterBody struct {
	NapletID id.NapletID
	Event    Event
	Server   string
	At       time.Time
}

// LookupBody is the wire body of a KindDirLookup frame.
type LookupBody struct {
	NapletID id.NapletID
}

// DeregisterBody is the wire body of a KindDirDeregister frame: a closing
// server withdraws every entry that points at its address, so peers stop
// dispatching naplets and mail at a dead dock.
type DeregisterBody struct {
	Server string
}

// ReplyBody is the wire body of a KindDirReply frame.
type ReplyBody struct {
	Found bool
	Entry Entry
}

// Stats counts directory activity.
type Stats struct {
	Registrations int64
	Lookups       int64
	Misses        int64
}

// Service is the centralized directory server. Attach it to a fabric with
// Serve; it then answers register and lookup frames.
type Service struct {
	mu      sync.Mutex
	entries map[string]Entry
	stats   Stats
}

// NewService returns an empty directory.
func NewService() *Service {
	return &Service{entries: make(map[string]Entry)}
}

// Serve attaches the directory to the fabric under addr and returns its
// node.
func (s *Service) Serve(fabric transport.Fabric, addr string) (transport.Node, error) {
	return fabric.Attach(addr, s.Handle)
}

// Handle is the directory's frame handler; exported so a composite server
// can host a directory alongside other components.
func (s *Service) Handle(from string, f wire.Frame) (wire.Frame, error) {
	switch f.Kind {
	case wire.KindDirRegister:
		var body RegisterBody
		if err := f.Body(&body); err != nil {
			return wire.Frame{}, err
		}
		s.register(body)
		return wire.NewFrame(wire.KindDirReply, f.To, f.From, &ReplyBody{Found: true})
	case wire.KindDirLookup:
		var body LookupBody
		if err := f.Body(&body); err != nil {
			return wire.Frame{}, err
		}
		entry, ok := s.lookup(body.NapletID)
		return wire.NewFrame(wire.KindDirReply, f.To, f.From, &ReplyBody{Found: ok, Entry: entry})
	case wire.KindDirDeregister:
		var body DeregisterBody
		if err := f.Body(&body); err != nil {
			return wire.Frame{}, err
		}
		s.deregisterServer(body.Server)
		return wire.NewFrame(wire.KindDirReply, f.To, f.From, &ReplyBody{Found: true})
	default:
		return wire.Frame{}, fmt.Errorf("directory: unexpected frame kind %q", f.Kind)
	}
}

func (s *Service) register(body RegisterBody) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Registrations++
	key := body.NapletID.Key()
	cur, ok := s.entries[key]
	// Events can race over the network: never let an older event overwrite
	// a newer one.
	if ok && body.At.Before(cur.At) {
		return
	}
	s.entries[key] = Entry{NapletID: body.NapletID, Event: body.Event, Server: body.Server, At: body.At}
}

// deregisterServer drops every entry that points at server. A closing dock
// withdraws its registrations so peers fail fast (and consult fresher
// information) instead of burning their retry budget on a dead address.
func (s *Service) deregisterServer(server string) {
	if server == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, e := range s.entries {
		if e.Server == server {
			delete(s.entries, key)
		}
	}
}

func (s *Service) lookup(nid id.NapletID) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Lookups++
	e, ok := s.entries[nid.Key()]
	if !ok {
		s.stats.Misses++
	}
	return e, ok
}

// Snapshot returns a copy of all registered entries, for management tools.
func (s *Service) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	return out
}

// Stats returns activity counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Client accesses a directory service over the fabric.
type Client struct {
	node transport.Node
	addr string
}

// NewClient builds a directory client that calls the directory at addr
// through node.
func NewClient(node transport.Node, addr string) *Client {
	return &Client{node: node, addr: addr}
}

// Addr returns the directory's address.
func (c *Client) Addr() string { return c.addr }

// Register reports a life-cycle event to the directory.
func (c *Client) Register(ctx context.Context, nid id.NapletID, event Event, server string, at time.Time) error {
	f, err := wire.NewFrame(wire.KindDirRegister, "", "", &RegisterBody{
		NapletID: nid, Event: event, Server: server, At: at,
	})
	if err != nil {
		return err
	}
	_, err = c.node.Call(ctx, c.addr, f)
	return err
}

// DeregisterServer withdraws every directory entry pointing at server.
func (c *Client) DeregisterServer(ctx context.Context, server string) error {
	f, err := wire.NewFrame(wire.KindDirDeregister, "", "", &DeregisterBody{Server: server})
	if err != nil {
		return err
	}
	_, err = c.node.Call(ctx, c.addr, f)
	return err
}

// Lookup returns the latest registered entry for a naplet.
func (c *Client) Lookup(ctx context.Context, nid id.NapletID) (Entry, error) {
	f, err := wire.NewFrame(wire.KindDirLookup, "", "", &LookupBody{NapletID: nid})
	if err != nil {
		return Entry{}, err
	}
	reply, err := c.node.Call(ctx, c.addr, f)
	if err != nil {
		return Entry{}, err
	}
	var body ReplyBody
	if err := reply.Body(&body); err != nil {
		return Entry{}, err
	}
	if !body.Found {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, nid)
	}
	return body.Entry, nil
}
