// Package directory implements the NapletDirectory of §4.1: the service
// that tracks the location of naplets.
//
// Navigators register ARRIVAL and DEPARTURE events. The registration
// protocol preserves the paper's invariant: a naplet's execution at a
// server is postponed until the arrival registration is acknowledged, so
// the directory always holds current information — if the latest entry for
// a naplet is a departure it is in transit; if an arrival, it is running at
// (or about to leave) the registered server.
//
// At production scale the directory is not one map behind one mutex. A
// Service shards its entries over fixed lock stripes so lookups (RLock)
// never serialize behind registrations, and keeps a by-server secondary
// index so a closing dock's DeregisterServer touches only its own entries.
// Above the single node, internal/directory/shard partitions the namespace
// over the hierarchical NapletID's owner/home prefix by rendezvous hashing
// and replicates each shard across a small replica group; the Directory
// interface below is what the rest of the system programs against, so a
// server is wired identically to one directory node or to a sharded,
// replicated plane.
package directory

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/id"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Event is the registered life-cycle event kind.
type Event int

// Directory events.
const (
	// Arrival: the naplet landed at Entry.Server and is (or was) running
	// there.
	Arrival Event = iota
	// Departure: the naplet was dispatched from Entry.Server and is in
	// transit.
	Departure
)

// String returns the event name.
func (e Event) String() string {
	if e == Arrival {
		return "arrival"
	}
	return "departure"
}

// Entry is the latest registered event for one naplet.
type Entry struct {
	NapletID id.NapletID
	Event    Event
	Server   string
	// Dest is the migration destination of a Departure event: the
	// forwarding pointer. A lookup that finds an in-transit naplet resolves
	// straight to where it is headed instead of chasing the visit-trace
	// chain from the origin — the compressed form of the paper's
	// forwarding mode.
	Dest string
	At   time.Time
	// Seq orders events that share a timestamp: the naplet's navigation-log
	// event index at registration time. Events race over the network (and
	// are retried), so At alone cannot order an arrival and the departure
	// that follows it within one clock tick.
	Seq uint64
}

// Registration is one life-cycle event report.
type Registration struct {
	NapletID id.NapletID
	Event    Event
	Server   string
	Dest     string
	At       time.Time
	Seq      uint64
}

// Directory is the location plane the rest of the system programs against:
// a single directory node (*Client) or a sharded replicated plane
// (*shard.Client) behind one interface.
type Directory interface {
	// RegisterEvent reports a life-cycle event.
	RegisterEvent(ctx context.Context, r Registration) error
	// Lookup returns the latest registered entry for a naplet.
	Lookup(ctx context.Context, nid id.NapletID) (Entry, error)
	// DeregisterServer withdraws every entry pointing at server.
	DeregisterServer(ctx context.Context, server string) error
}

// ErrNotFound is reported for naplets with no registration.
var ErrNotFound = errors.New("directory: naplet not registered")

// compile-time interface check: a single node is a directory.
var _ Directory = (*Client)(nil)

// RegisterBody is the wire body of a KindDirRegister frame.
type RegisterBody struct {
	NapletID id.NapletID
	Event    Event
	Server   string
	Dest     string
	At       time.Time
	Seq      uint64
}

// LookupBody is the wire body of a KindDirLookup frame.
type LookupBody struct {
	NapletID id.NapletID
}

// DeregisterBody is the wire body of a KindDirDeregister frame: a closing
// server withdraws every entry that points at its address, so peers stop
// dispatching naplets and mail at a dead dock.
type DeregisterBody struct {
	Server string
}

// ReplyBody is the wire body of a KindDirReply frame.
type ReplyBody struct {
	Found bool
	Entry Entry
}

// Stats counts directory activity.
type Stats struct {
	Registrations int64
	Lookups       int64
	Misses        int64
}

// numStripes is the lock-stripe count of a Service. A power of two so the
// stripe pick is a mask; 64 stripes keep write collisions rare at high
// registration rates without bloating an idle service.
const numStripes = 64

// stripeSeed keys the stripe hash. Process-wide (not per-Service) so two
// services in one process shard identically — handy for tests comparing
// replicas.
var stripeSeed = maphash.MakeSeed()

// stripe is one lock-striped partition of a Service's entries.
type stripe struct {
	mu      sync.RWMutex
	entries map[string]Entry
	// byServer indexes entry keys by Entry.Server so a server withdrawal
	// is O(entries-for-that-server), not a scan of the whole stripe.
	byServer map[string]map[string]struct{}
}

// Service is one directory node. Attach it to a fabric with Serve; it then
// answers register and lookup frames. All methods are safe for concurrent
// use: lookups take per-stripe read locks and never serialize behind
// registrations on other stripes.
type Service struct {
	stripes [numStripes]stripe

	registrations atomic.Int64
	lookups       atomic.Int64
	misses        atomic.Int64
}

// NewService returns an empty directory node.
func NewService() *Service {
	s := &Service{}
	for i := range s.stripes {
		s.stripes[i].entries = make(map[string]Entry)
		s.stripes[i].byServer = make(map[string]map[string]struct{})
	}
	return s
}

// stripeFor picks the lock stripe owning key.
func (s *Service) stripeFor(key string) *stripe {
	return &s.stripes[maphash.String(stripeSeed, key)&(numStripes-1)]
}

// Serve attaches the directory to the fabric under addr and returns its
// node.
func (s *Service) Serve(fabric transport.Fabric, addr string) (transport.Node, error) {
	return fabric.Attach(addr, s.Handle)
}

// Handle is the directory's frame handler; exported so a composite server
// can host a directory alongside other components.
func (s *Service) Handle(from string, f wire.Frame) (wire.Frame, error) {
	switch f.Kind {
	case wire.KindDirRegister:
		var body RegisterBody
		if err := body.Decode(f.Payload); err != nil {
			return wire.Frame{}, err
		}
		s.Register(body)
		return wire.BinaryFrame(wire.KindDirReply, f.To, f.From, &ReplyBody{Found: true}), nil
	case wire.KindDirLookup:
		var body LookupBody
		if err := body.Decode(f.Payload); err != nil {
			return wire.Frame{}, err
		}
		entry, ok := s.Lookup(body.NapletID)
		return wire.BinaryFrame(wire.KindDirReply, f.To, f.From, &ReplyBody{Found: ok, Entry: entry}), nil
	case wire.KindDirDeregister:
		var body DeregisterBody
		if err := body.Decode(f.Payload); err != nil {
			return wire.Frame{}, err
		}
		s.DeregisterServer(body.Server)
		return wire.BinaryFrame(wire.KindDirReply, f.To, f.From, &ReplyBody{Found: true}), nil
	default:
		return wire.Frame{}, fmt.Errorf("directory: unexpected frame kind %q", f.Kind)
	}
}

// newer reports whether the incoming event supersedes the stored entry.
// Events race over the network and are retried, so the rule must be a
// deterministic total preference — every replica applying any interleaving
// of the same event set converges on the same entry:
//
//  1. a later At always wins;
//  2. at equal At, an Arrival wins over a Departure: the arrival
//     registration is the acknowledged one the paper's invariant hinges on
//     ("execution postponed until the arrival is acknowledged"), so a
//     stale or duplicated Departure report must never displace it — at
//     worst the forwarding pointer chases one extra hop;
//  3. at equal At and kind, the higher navigation-log sequence wins.
func newer(in RegisterBody, cur Entry) bool {
	if !in.At.Equal(cur.At) {
		return in.At.After(cur.At)
	}
	if in.Event != cur.Event {
		return in.Event == Arrival
	}
	return in.Seq >= cur.Seq
}

// Register applies one life-cycle event to this node's table. Exported for
// in-process callers (benchmarks, composite servers); the wire path arrives
// through Handle.
func (s *Service) Register(body RegisterBody) {
	s.registrations.Add(1)
	key := body.NapletID.Key()
	st := s.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	cur, ok := st.entries[key]
	if ok && !newer(body, cur) {
		return
	}
	if ok && cur.Server != body.Server {
		st.unindex(cur.Server, key)
	}
	if !ok || cur.Server != body.Server {
		st.index(body.Server, key)
	}
	st.entries[key] = Entry{
		NapletID: body.NapletID, Event: body.Event,
		Server: body.Server, Dest: body.Dest,
		At: body.At, Seq: body.Seq,
	}
}

func (st *stripe) index(server, key string) {
	keys, ok := st.byServer[server]
	if !ok {
		keys = make(map[string]struct{})
		st.byServer[server] = keys
	}
	keys[key] = struct{}{}
}

func (st *stripe) unindex(server, key string) {
	if keys, ok := st.byServer[server]; ok {
		delete(keys, key)
		if len(keys) == 0 {
			delete(st.byServer, server)
		}
	}
}

// DeregisterServer drops every entry that points at server. A closing dock
// withdraws its registrations so peers fail fast (and consult fresher
// information) instead of burning their retry budget on a dead address.
// The by-server index makes this proportional to the server's own entries.
func (s *Service) DeregisterServer(server string) {
	if server == "" {
		return
	}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for key := range st.byServer[server] {
			delete(st.entries, key)
		}
		delete(st.byServer, server)
		st.mu.Unlock()
	}
}

// Lookup returns this node's latest entry for a naplet. Exported for
// in-process callers; the wire path arrives through Handle.
func (s *Service) Lookup(nid id.NapletID) (Entry, bool) {
	s.lookups.Add(1)
	key := nid.Key()
	st := s.stripeFor(key)
	st.mu.RLock()
	e, ok := st.entries[key]
	st.mu.RUnlock()
	if !ok {
		s.misses.Add(1)
	}
	return e, ok
}

// Len reports the number of registered naplets.
func (s *Service) Len() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		n += len(st.entries)
		st.mu.RUnlock()
	}
	return n
}

// Snapshot returns a copy of all registered entries, for management tools.
func (s *Service) Snapshot() []Entry {
	out := make([]Entry, 0, s.Len())
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for _, e := range st.entries {
			out = append(out, e)
		}
		st.mu.RUnlock()
	}
	return out
}

// Stats returns activity counters.
func (s *Service) Stats() Stats {
	return Stats{
		Registrations: s.registrations.Load(),
		Lookups:       s.lookups.Load(),
		Misses:        s.misses.Load(),
	}
}

// Client accesses one directory node over the fabric. It is stateless and
// safe for concurrent use; build it once and share it (constructing a
// client per call was the seed's pattern and is exactly what the Locator
// and Navigator no longer do).
type Client struct {
	node transport.Node
	addr string
}

// NewClient builds a directory client that calls the directory at addr
// through node.
func NewClient(node transport.Node, addr string) *Client {
	return &Client{node: node, addr: addr}
}

// Addr returns the directory's address.
func (c *Client) Addr() string { return c.addr }

// RegisterEvent reports a life-cycle event to the directory.
func (c *Client) RegisterEvent(ctx context.Context, r Registration) error {
	f := wire.BinaryFrame(wire.KindDirRegister, "", "", &RegisterBody{
		NapletID: r.NapletID, Event: r.Event,
		Server: r.Server, Dest: r.Dest, At: r.At, Seq: r.Seq,
	})
	_, err := c.node.Call(ctx, c.addr, f)
	return err
}

// Register reports a life-cycle event with no forwarding destination or
// sequence — the pre-shard registration shape, kept for callers that track
// only (event, server, at).
func (c *Client) Register(ctx context.Context, nid id.NapletID, event Event, server string, at time.Time) error {
	return c.RegisterEvent(ctx, Registration{NapletID: nid, Event: event, Server: server, At: at})
}

// DeregisterServer withdraws every directory entry pointing at server.
func (c *Client) DeregisterServer(ctx context.Context, server string) error {
	f := wire.BinaryFrame(wire.KindDirDeregister, "", "", &DeregisterBody{Server: server})
	_, err := c.node.Call(ctx, c.addr, f)
	return err
}

// Lookup returns the latest registered entry for a naplet.
func (c *Client) Lookup(ctx context.Context, nid id.NapletID) (Entry, error) {
	f := wire.BinaryFrame(wire.KindDirLookup, "", "", &LookupBody{NapletID: nid})
	reply, err := c.node.Call(ctx, c.addr, f)
	if err != nil {
		return Entry{}, err
	}
	var body ReplyBody
	if err := body.Decode(reply.Payload); err != nil {
		return Entry{}, err
	}
	if !body.Found {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, nid)
	}
	return body.Entry, nil
}
