package directory

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/netsim"
	"repro/internal/wire"
)

var t0 = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)

func setup(t *testing.T) (*Service, *Client) {
	t.Helper()
	net := netsim.New(netsim.Config{})
	svc := NewService()
	if _, err := svc.Serve(net, "dir"); err != nil {
		t.Fatal(err)
	}
	node, err := net.Attach("client", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc, NewClient(node, "dir")
}

func TestRegisterAndLookup(t *testing.T) {
	_, c := setup(t)
	nid := id.MustNew("u", "home", t0)
	ctx := context.Background()

	if err := c.Register(ctx, nid, Arrival, "s1", t0); err != nil {
		t.Fatal(err)
	}
	e, err := c.Lookup(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if e.Server != "s1" || e.Event != Arrival {
		t.Fatalf("entry = %+v", e)
	}

	if err := c.Register(ctx, nid, Departure, "s1", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	e, _ = c.Lookup(ctx, nid)
	if e.Event != Departure {
		t.Fatalf("after departure: %+v", e)
	}
	// "If the latest registration is a departure from a server, the naplet
	// must be in transmission out of the server."
	if e.Server != "s1" {
		t.Fatalf("departure server = %q", e.Server)
	}
}

func TestLookupUnknown(t *testing.T) {
	_, c := setup(t)
	nid := id.MustNew("u", "home", t0)
	if _, err := c.Lookup(context.Background(), nid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestStaleEventIgnored(t *testing.T) {
	svc, c := setup(t)
	nid := id.MustNew("u", "home", t0)
	ctx := context.Background()
	c.Register(ctx, nid, Arrival, "s2", t0.Add(10*time.Second))
	// An older departure report arriving late must not overwrite.
	c.Register(ctx, nid, Departure, "s1", t0)
	e, _ := c.Lookup(ctx, nid)
	if e.Server != "s2" || e.Event != Arrival {
		t.Fatalf("stale event overwrote: %+v", e)
	}
	if svc.Stats().Registrations != 2 {
		t.Fatalf("stats: %+v", svc.Stats())
	}
}

func TestStatsAndSnapshot(t *testing.T) {
	svc, c := setup(t)
	ctx := context.Background()
	a := id.MustNew("a", "h", t0)
	b := id.MustNew("b", "h", t0)
	c.Register(ctx, a, Arrival, "s1", t0)
	c.Register(ctx, b, Arrival, "s2", t0)
	c.Lookup(ctx, a)
	c.Lookup(ctx, id.MustNew("ghost", "h", t0))

	s := svc.Stats()
	if s.Registrations != 2 || s.Lookups != 2 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if len(svc.Snapshot()) != 2 {
		t.Fatalf("snapshot: %v", svc.Snapshot())
	}
}

func TestHandleRejectsWrongKind(t *testing.T) {
	svc := NewService()
	f, _ := wire.NewFrame(wire.KindPost, "a", "dir", &struct{}{})
	if _, err := svc.Handle("a", f); err == nil {
		t.Fatal("wrong kind must error")
	}
}

func TestEventString(t *testing.T) {
	if Arrival.String() != "arrival" || Departure.String() != "departure" {
		t.Fatal("event names")
	}
}

func TestMultipleNapletsIndependent(t *testing.T) {
	_, c := setup(t)
	ctx := context.Background()
	orig := id.MustNew("u", "h", t0)
	clone, _ := orig.Clone(1)
	c.Register(ctx, orig, Arrival, "s1", t0)
	c.Register(ctx, clone, Arrival, "s2", t0)
	e1, _ := c.Lookup(ctx, orig)
	e2, _ := c.Lookup(ctx, clone)
	if e1.Server != "s1" || e2.Server != "s2" {
		t.Fatalf("clone tracking: %+v %+v", e1, e2)
	}
}
