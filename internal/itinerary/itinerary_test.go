package itinerary

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// trueEval approves every guard.
var trueEval = EvalFunc(func(string) (bool, error) { return true, nil })

// mapEval evaluates guards from a map; unknown guards are errors.
func mapEval(m map[string]bool) Evaluator {
	return EvalFunc(func(g string) (bool, error) {
		v, ok := m[g]
		if !ok {
			return false, fmt.Errorf("unknown guard %q", g)
		}
		return v, nil
	})
}

// drain runs an itinerary to completion with ev, returning the visited
// servers of the parent agent and, recursively, of all forked clones (each
// clone's tour as its own slice).
func drain(t *testing.T, it *Itinerary, ev Evaluator) (parent []string, clones [][]string) {
	t.Helper()
	for {
		d, err := it.Next(ev)
		if err != nil {
			t.Fatal(err)
		}
		switch d.Kind {
		case DecisionDone:
			return parent, clones
		case DecisionVisit:
			parent = append(parent, d.Visit.Server)
		case DecisionFork:
			for _, b := range d.Branches {
				sub := MustNew(b)
				p, cs := drain(t, sub, ev)
				clones = append(clones, p)
				clones = append(clones, cs...)
			}
		}
	}
}

func TestSingletonVisit(t *testing.T) {
	it := MustNew(Singleton(Visit{Server: "s0", Action: "report"}))
	d, err := it.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DecisionVisit || d.Visit.Server != "s0" || d.Visit.Action != "report" {
		t.Fatalf("decision = %+v", d)
	}
	d, _ = it.Next(nil)
	if d.Kind != DecisionDone {
		t.Fatalf("want done, got %+v", d)
	}
	if !it.Done() {
		t.Fatal("itinerary must be done")
	}
}

func TestSeqOrderPreserved(t *testing.T) {
	// Paper Example 1: single agent visits s1..sn in sequence.
	servers := []string{"s1", "s2", "s3", "s4"}
	it := MustNew(SeqVisits(servers, "report"))
	parent, clones := drain(t, it, nil)
	if !reflect.DeepEqual(parent, servers) {
		t.Fatalf("visited %v, want %v", parent, servers)
	}
	if len(clones) != 0 {
		t.Fatalf("seq must not fork: %v", clones)
	}
}

func TestParForksPerServer(t *testing.T) {
	// Paper Example 2: every server visited by its own agent in parallel.
	servers := []string{"s1", "s2", "s3"}
	it := MustNew(ParVisits(servers, "report"))
	parent, clones := drain(t, it, nil)
	if !reflect.DeepEqual(parent, []string{"s1"}) {
		t.Fatalf("parent tour = %v", parent)
	}
	if len(clones) != 2 {
		t.Fatalf("want 2 clones, got %v", clones)
	}
	var all []string
	all = append(all, parent...)
	for _, c := range clones {
		all = append(all, c...)
	}
	sort.Strings(all)
	if !reflect.DeepEqual(all, servers) {
		t.Fatalf("coverage = %v, want %v", all, servers)
	}
}

func TestPaperExample3ParOfSeq(t *testing.T) {
	// "par(seq(s0, s1), seq(s2, s3))": two naplets, two stops each.
	p := Par(
		SeqVisits([]string{"s0", "s1"}, "comm"),
		SeqVisits([]string{"s2", "s3"}, "comm"),
	)
	it := MustNew(p)
	parent, clones := drain(t, it, nil)
	if !reflect.DeepEqual(parent, []string{"s0", "s1"}) {
		t.Fatalf("parent = %v", parent)
	}
	if len(clones) != 1 || !reflect.DeepEqual(clones[0], []string{"s2", "s3"}) {
		t.Fatalf("clones = %v", clones)
	}
}

func TestSeqAfterParBelongsToParent(t *testing.T) {
	p := Seq(
		Par(Singleton(Visit{Server: "a"}), Singleton(Visit{Server: "b"})),
		Singleton(Visit{Server: "home"}),
	)
	it := MustNew(p)
	parent, clones := drain(t, it, nil)
	if !reflect.DeepEqual(parent, []string{"a", "home"}) {
		t.Fatalf("parent = %v", parent)
	}
	if len(clones) != 1 || !reflect.DeepEqual(clones[0], []string{"b"}) {
		t.Fatalf("clones = %v: continuation after Par must belong to parent only", clones)
	}
}

func TestConditionalVisitSkipped(t *testing.T) {
	// Sequential search: later visits guarded; search completed after s2.
	p := ConditionalTour([]string{"s1", "s2", "s3", "s4"}, "notFound", "")
	visited := 0
	ev := EvalFunc(func(g string) (bool, error) {
		// notFound is true until two servers have been visited.
		return visited < 2, nil
	})
	it := MustNew(p)
	var tour []string
	for {
		d, err := it.Next(ev)
		if err != nil {
			t.Fatal(err)
		}
		if d.Kind == DecisionDone {
			break
		}
		if d.Kind != DecisionVisit {
			t.Fatalf("unexpected decision %+v", d)
		}
		tour = append(tour, d.Visit.Server)
		visited++
	}
	if !reflect.DeepEqual(tour, []string{"s1", "s2"}) {
		t.Fatalf("tour = %v, want search to stop after s2", tour)
	}
}

func TestAltChoosesByGuard(t *testing.T) {
	p := Alt(
		Singleton(Visit{Server: "fast", Guard: "fastOK"}),
		Singleton(Visit{Server: "slow"}),
	)
	it := MustNew(p.Clone())
	parent, _ := drain(t, it, mapEval(map[string]bool{"fastOK": true}))
	if !reflect.DeepEqual(parent, []string{"fast"}) {
		t.Fatalf("guard true: %v", parent)
	}
	it = MustNew(p.Clone())
	parent, _ = drain(t, it, mapEval(map[string]bool{"fastOK": false}))
	if !reflect.DeepEqual(parent, []string{"slow"}) {
		t.Fatalf("guard false: %v", parent)
	}
}

func TestAltAllGuardsFalse(t *testing.T) {
	p := Alt(
		Singleton(Visit{Server: "a", Guard: "g"}),
		Singleton(Visit{Server: "b", Guard: "g"}),
	)
	it := MustNew(p)
	parent, clones := drain(t, it, mapEval(map[string]bool{"g": false}))
	if len(parent) != 0 || len(clones) != 0 {
		t.Fatalf("all-false alt must visit nothing: %v %v", parent, clones)
	}
}

func TestAltExactlyOneBranch(t *testing.T) {
	p := Alt(
		SeqVisits([]string{"a1", "a2"}, ""),
		SeqVisits([]string{"b1", "b2"}, ""),
	)
	it := MustNew(p)
	parent, _ := drain(t, it, trueEval)
	if !reflect.DeepEqual(parent, []string{"a1", "a2"}) {
		t.Fatalf("alt must commit to one whole branch: %v", parent)
	}
}

func TestGuardErrorPropagates(t *testing.T) {
	p := Singleton(Visit{Server: "s", Guard: "mystery"})
	it := MustNew(p)
	_, err := it.Next(mapEval(map[string]bool{}))
	if !errors.Is(err, ErrBadGuard) {
		t.Fatalf("want ErrBadGuard, got %v", err)
	}
	it2 := MustNew(p.Clone())
	if _, err := it2.Next(nil); !errors.Is(err, ErrBadGuard) {
		t.Fatalf("guard with nil evaluator: %v", err)
	}
}

func TestValidate(t *testing.T) {
	if err := (*Pattern)(nil).Validate(); !errors.Is(err, ErrEmptyPattern) {
		t.Fatalf("nil pattern: %v", err)
	}
	if err := Singleton(Visit{}).Validate(); err == nil {
		t.Fatal("empty server must be invalid")
	}
	if err := Seq().Validate(); err == nil {
		t.Fatal("empty seq must be invalid")
	}
	if err := Seq(Singleton(Visit{Server: "s"}), Par()).Validate(); err == nil {
		t.Fatal("nested empty par must be invalid")
	}
	if _, err := New(Seq()); err == nil {
		t.Fatal("New must validate")
	}
}

func TestStringNotation(t *testing.T) {
	p := Par(
		SeqVisits([]string{"s0", "s1"}, ""),
		SeqVisits([]string{"s2", "s3"}, ""),
	)
	want := "par(seq(<s0>, <s1>), seq(<s2>, <s3>))"
	if got := p.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	v := Visit{Server: "s", Guard: "c", Action: "t"}
	if got := v.String(); got != "<c -> s; t>" {
		t.Fatalf("visit notation = %q", got)
	}
	var done *Itinerary
	if done.String() != "ε" {
		t.Fatal("done itinerary renders ε")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := SeqVisits([]string{"a", "b"}, "act")
	c := p.Clone()
	c.Subs[0].V.Server = "mutated"
	if p.Subs[0].V.Server != "a" {
		t.Fatal("Clone must deep copy")
	}
	it := MustNew(p)
	it2 := it.Clone()
	it.Next(nil)
	if got := it2.Remaining.Servers(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("itinerary clone advanced with original: %v", got)
	}
}

func TestServersAndVisits(t *testing.T) {
	p := Seq(
		Singleton(Visit{Server: "x", Action: "a1"}),
		Par(Singleton(Visit{Server: "y"}), Singleton(Visit{Server: "x"})),
	)
	if got := p.Servers(); !reflect.DeepEqual(got, []string{"x", "y", "x"}) {
		t.Fatalf("Servers() = %v", got)
	}
	vs := p.Visits()
	if len(vs) != 3 || vs[0].Action != "a1" {
		t.Fatalf("Visits() = %v", vs)
	}
}

func TestGobRoundTripMidFlight(t *testing.T) {
	// An itinerary serialized mid-flight must resume exactly where it was —
	// this is what travels inside a migrating naplet.
	p := Seq(
		SeqVisits([]string{"a", "b"}, "act"),
		Par(Singleton(Visit{Server: "c"}), Singleton(Visit{Server: "d"})),
	)
	it := MustNew(p)
	d, _ := it.Next(nil)
	if d.Visit.Server != "a" {
		t.Fatalf("first visit %v", d)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(it); err != nil {
		t.Fatal(err)
	}
	restored := new(Itinerary)
	if err := gob.NewDecoder(&buf).Decode(restored); err != nil {
		t.Fatal(err)
	}
	parent, clones := drain(t, restored, nil)
	if !reflect.DeepEqual(parent, []string{"b", "c"}) {
		t.Fatalf("resumed parent tour = %v", parent)
	}
	if len(clones) != 1 || !reflect.DeepEqual(clones[0], []string{"d"}) {
		t.Fatalf("resumed clones = %v", clones)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"s0", "<s0>"},
		{"  s0  ", "<s0>"},
		{"seq(s0, s1)", "seq(<s0>, <s1>)"},
		{"par(seq(s0,s1),seq(s2,s3))", "par(seq(<s0>, <s1>), seq(<s2>, <s3>))"},
		{"alt(found -> s1; report, s2)", "alt(<found -> s1; report>, <s2>)"},
		{"seq(s0; collect, s1; collect)", "seq(<s0; collect>, <s1; collect>)"},
		{"host-1.example.com:9000", "<host-1.example.com:9000>"},
		{"seqx", "<seqx>"}, // identifier, not operator
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"seq()",
		"seq(s0",
		"seq(s0,)",
		"par(,s0)",
		"s0 s1",
		"s0 -> ",
		"s0;",
		"(s0)",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseRoundTripsNotation(t *testing.T) {
	// String output (minus the <> visit brackets) re-parses to the same tree.
	p := Par(
		Seq(Singleton(Visit{Server: "a", Guard: "g", Action: "t"}), Singleton(Visit{Server: "b"})),
		Alt(Singleton(Visit{Server: "c"}), Singleton(Visit{Server: "d", Action: "x"})),
	)
	in := "par(seq(g -> a; t, b), alt(c, d; x))"
	got, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("parsed tree:\n%s\nwant:\n%s", got, p)
	}
}

// randomPattern builds a random valid pattern for property tests.
func randomPattern(r *rand.Rand, depth int) *Pattern {
	if depth <= 0 || r.Intn(3) == 0 {
		return Singleton(Visit{Server: fmt.Sprintf("s%d", r.Intn(10))})
	}
	n := 1 + r.Intn(3)
	subs := make([]*Pattern, n)
	for i := range subs {
		subs[i] = randomPattern(r, depth-1)
	}
	switch r.Intn(3) {
	case 0:
		return Seq(subs...)
	case 1:
		return Alt(subs...)
	default:
		return Par(subs...)
	}
}

func TestPropSeqCoverageEqualsTreeOrder(t *testing.T) {
	// For patterns without Alt and guards, the union of all tours equals the
	// tree-order server list; for Seq-only patterns the parent tour equals
	// it exactly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		servers := make([]string, n)
		for i := range servers {
			servers[i] = fmt.Sprintf("s%d", i)
		}
		it := MustNew(SeqVisits(servers, ""))
		var tour []string
		for {
			d, err := it.Next(nil)
			if err != nil {
				return false
			}
			if d.Kind == DecisionDone {
				break
			}
			tour = append(tour, d.Visit.Server)
		}
		return reflect.DeepEqual(tour, servers)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropParCoversAllBranches(t *testing.T) {
	// With all guards true and no Alt nodes, every server in the tree is
	// visited by exactly one agent (parent or clone).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomParSeq(r, 3)
		want := p.Servers()
		it := MustNew(p)
		var all []string
		var walk func(it *Itinerary) bool
		walk = func(it *Itinerary) bool {
			for {
				d, err := it.Next(nil)
				if err != nil {
					return false
				}
				switch d.Kind {
				case DecisionDone:
					return true
				case DecisionVisit:
					all = append(all, d.Visit.Server)
				case DecisionFork:
					for _, b := range d.Branches {
						if !walk(MustNew(b)) {
							return false
						}
					}
				}
			}
		}
		if !walk(it) {
			return false
		}
		sort.Strings(all)
		sort.Strings(want)
		return reflect.DeepEqual(all, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomParSeq builds random patterns from Seq and Par only (no Alt, no
// guards), where coverage is exact.
func randomParSeq(r *rand.Rand, depth int) *Pattern {
	if depth <= 0 || r.Intn(3) == 0 {
		return Singleton(Visit{Server: fmt.Sprintf("s%d", r.Intn(100))})
	}
	n := 1 + r.Intn(3)
	subs := make([]*Pattern, n)
	for i := range subs {
		subs[i] = randomParSeq(r, depth-1)
	}
	if r.Intn(2) == 0 {
		return Seq(subs...)
	}
	return Par(subs...)
}

func TestPropAltPicksExactlyOne(t *testing.T) {
	// An Alt of singletons visits exactly one server (all unguarded: the
	// first).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		subs := make([]*Pattern, n)
		for i := range subs {
			subs[i] = Singleton(Visit{Server: fmt.Sprintf("s%d", i)})
		}
		it := MustNew(Alt(subs...))
		var tour []string
		for {
			d, err := it.Next(trueEval)
			if err != nil {
				return false
			}
			if d.Kind == DecisionDone {
				break
			}
			tour = append(tour, d.Visit.Server)
		}
		return len(tour) == 1 && tour[0] == "s0"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		Parse(s) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropRandomPatternStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPattern(r, 3)
		// Strip the visit brackets from String() to get parser input.
		s := p.String()
		s = stringsReplacer.Replace(s)
		got, err := Parse(s)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

var stringsReplacer = strings.NewReplacer("<", "", ">", "")
