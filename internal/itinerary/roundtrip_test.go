package itinerary

import (
	"math/rand"
	"reflect"
	"testing"
)

// genIdent draws a random identifier over the parser's charset.
func genIdent(r *rand.Rand) string {
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._:-"
	n := 1 + r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[r.Intn(len(chars))]
	}
	return string(b)
}

// genPattern draws a random valid pattern tree up to three operators deep.
func genPattern(r *rand.Rand, depth int) *Pattern {
	if depth >= 3 || r.Intn(3) == 0 {
		v := Visit{Server: genIdent(r)}
		if r.Intn(3) == 0 {
			v.Guard = genIdent(r)
		}
		if r.Intn(3) == 0 {
			v.Action = genIdent(r)
		}
		return Singleton(v)
	}
	n := 1 + r.Intn(3)
	subs := make([]*Pattern, n)
	for i := range subs {
		subs[i] = genPattern(r, depth+1)
	}
	switch r.Intn(3) {
	case 0:
		return Seq(subs...)
	case 1:
		return Alt(subs...)
	default:
		return Par(subs...)
	}
}

// TestParseStringRoundTrip is the property test behind persistence and
// control-plane routes: rendering any valid pattern with String and
// parsing it back yields the identical tree.
func TestParseStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20010512))
	for i := 0; i < 1000; i++ {
		p := genPattern(r, 0)
		s := p.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip mismatch:\n  rendered %q\n  reparsed %q", s, got.String())
		}
	}
}

// FuzzParse checks that Parse never panics and that whatever it accepts
// prints and reparses stably (String is a fixed point after one parse).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"s0",
		"par(seq(s0, s1), seq(s2, s3))",
		"seq(s0, found -> s1; report)",
		"<a -> b; c>",
		"alt(<x>, y, seq(<g -> h>))",
		"seq(, )",
		"<<x>>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		s := p.String()
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", input, s, err)
		}
		if q.String() != s {
			t.Fatalf("unstable rendering: %q -> %q", s, q.String())
		}
	})
}
