package itinerary

import (
	"fmt"

	"repro/internal/wire"
)

// Binary codec for visits, pattern trees, and itineraries. Layout:
//
//	Visit    [string server] [string guard] [string action]
//	Pattern  [uvarint kind] then, for Singleton, [Visit];
//	         otherwise [uvarint n] n×[Pattern]
//	OptPattern  [bool present] [Pattern if present]
//	Itinerary   [OptPattern remaining]
//
// Pattern trees are recursive; decoding caps the nesting depth so hostile
// input cannot blow the stack.

// maxPatternDepth bounds decoded pattern-tree nesting. Real itineraries
// are a handful of levels; the cap only exists for decoder safety.
const maxPatternDepth = 512

// EncodedSize returns the exact binary-encoded size of the visit.
func (v Visit) EncodedSize() int {
	return wire.SizeString(v.Server) + wire.SizeString(v.Guard) + wire.SizeString(v.Action)
}

// AppendBinary appends the visit's binary form to dst.
func (v Visit) AppendBinary(dst []byte) []byte {
	dst = wire.AppendString(dst, v.Server)
	dst = wire.AppendString(dst, v.Guard)
	return wire.AppendString(dst, v.Action)
}

// DecodeVisit consumes one visit from b and returns the rest.
func DecodeVisit(b []byte) (Visit, []byte, error) {
	var v Visit
	var err error
	if v.Server, b, err = wire.DecString(b); err != nil {
		return Visit{}, nil, err
	}
	if v.Guard, b, err = wire.DecString(b); err != nil {
		return Visit{}, nil, err
	}
	if v.Action, b, err = wire.DecString(b); err != nil {
		return Visit{}, nil, err
	}
	return v, b, nil
}

// EncodedSize returns the exact binary-encoded size of the pattern tree.
// A nil pattern has size zero and must be guarded by a presence flag (see
// AppendOptPattern).
func (p *Pattern) EncodedSize() int {
	if p == nil {
		return 0
	}
	sz := wire.SizeUvarint(uint64(p.Kind))
	if p.Kind == KindSingleton {
		return sz + p.V.EncodedSize()
	}
	sz += wire.SizeUvarint(uint64(len(p.Subs)))
	for _, s := range p.Subs {
		sz += s.EncodedSize()
	}
	return sz
}

// AppendBinary appends the pattern tree's binary form to dst. The pattern
// must be non-nil.
func (p *Pattern) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(p.Kind))
	if p.Kind == KindSingleton {
		return p.V.AppendBinary(dst)
	}
	dst = wire.AppendUvarint(dst, uint64(len(p.Subs)))
	for _, s := range p.Subs {
		dst = s.AppendBinary(dst)
	}
	return dst
}

// DecodePattern consumes one pattern tree from b and returns the rest.
func DecodePattern(b []byte) (*Pattern, []byte, error) {
	return decodePattern(b, 0)
}

func decodePattern(b []byte, depth int) (*Pattern, []byte, error) {
	if depth > maxPatternDepth {
		return nil, nil, fmt.Errorf("%w: pattern nesting exceeds %d", wire.ErrMalformed, maxPatternDepth)
	}
	kind, b, err := wire.DecUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	switch Kind(kind) {
	case KindSingleton:
		v, rest, err := DecodeVisit(b)
		if err != nil {
			return nil, nil, err
		}
		return &Pattern{Kind: KindSingleton, V: v}, rest, nil
	case KindSeq, KindAlt, KindPar:
		cnt, rest, err := wire.DecCount(b, 1)
		if err != nil {
			return nil, nil, err
		}
		p := &Pattern{Kind: Kind(kind)}
		if cnt > 0 {
			p.Subs = make([]*Pattern, cnt)
			for i := range p.Subs {
				if p.Subs[i], rest, err = decodePattern(rest, depth+1); err != nil {
					return nil, nil, err
				}
			}
		}
		return p, rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown pattern kind %d", wire.ErrMalformed, kind)
	}
}

// AppendOptPattern appends a presence-flagged, possibly-nil pattern.
func AppendOptPattern(dst []byte, p *Pattern) []byte {
	dst = wire.AppendBool(dst, p != nil)
	if p != nil {
		dst = p.AppendBinary(dst)
	}
	return dst
}

// SizeOptPattern returns the encoded size of AppendOptPattern(p).
func SizeOptPattern(p *Pattern) int {
	return wire.SizeBool + p.EncodedSize()
}

// DecodeOptPattern consumes one presence-flagged pattern from b.
func DecodeOptPattern(b []byte) (*Pattern, []byte, error) {
	present, b, err := wire.DecBool(b)
	if err != nil {
		return nil, nil, err
	}
	if !present {
		return nil, b, nil
	}
	return DecodePattern(b)
}

// EncodedSize returns the exact binary-encoded size of the itinerary. A
// nil itinerary is legal (a completed plan) and encodes as one flag byte
// through AppendBinary on a nil receiver guarded by the record codec; the
// itinerary itself always encodes its remaining pattern with a presence
// flag.
func (it *Itinerary) EncodedSize() int {
	if it == nil {
		return SizeOptPattern(nil)
	}
	return SizeOptPattern(it.Remaining)
}

// AppendBinary appends the itinerary's binary form to dst. Safe on a nil
// receiver: a nil itinerary encodes like an exhausted one.
func (it *Itinerary) AppendBinary(dst []byte) []byte {
	if it == nil {
		return AppendOptPattern(dst, nil)
	}
	return AppendOptPattern(dst, it.Remaining)
}

// DecodeBinary consumes one itinerary from b and returns the rest.
func DecodeBinary(b []byte) (*Itinerary, []byte, error) {
	p, b, err := DecodeOptPattern(b)
	if err != nil {
		return nil, nil, err
	}
	return &Itinerary{Remaining: p}, b, nil
}
