// Package itinerary implements the structured itinerary mechanism of §3 of
// the Naplet paper.
//
// An itinerary is concerned with the visiting order among servers. The
// paper's BNF:
//
//	<Visit V>            ::= <S> | <S; T> | <C -> S; T>
//	<ItineraryPattern P> ::= Singleton(V) | Seq(P, P) | Alt(P, P) | Par(P, P)
//
// where S is the server, T an itinerary-dependent post-action, and C a
// guardian condition. Patterns compose recursively. Because Go cannot
// serialize code, post-actions (T) and guards (C) are referenced by name and
// resolved against the codebase registry by the runtime; the pattern tree
// itself is a pure, serializable value.
//
// Execution uses a derivative-style engine: Step consumes the next visit
// from the pattern and returns the remaining pattern, so an Itinerary's
// progress is captured entirely by its (serializable) remaining tree —
// exactly what must travel with a migrating agent.
//
// Par semantics: a Par(P1, …, Pn) node forks the executing naplet. The
// parent continues with branch P1 followed by whatever follows the Par; each
// clone receives one branch Pi (i ≥ 2) as its whole remaining itinerary.
// Rendezvous after a Par is not implicit; the paper synchronizes clones
// explicitly with post-actions (cf. DataComm in Example 2), and so does this
// implementation.
//
// Alt semantics: Alt(P, Q) evaluates the guard of P's first visit; if it
// holds (or P's first visit is unguarded) the naplet carries out P,
// otherwise Q.
package itinerary

import (
	"errors"
	"fmt"
	"strings"
)

// Visit is one stop in an itinerary: the server to visit, an optional named
// guard (the paper's C), and an optional named post-action (the paper's T).
// The server-specific business logic S is the agent's OnStart method and is
// not part of the itinerary, per the paper's separation of business logic
// from travel plans.
type Visit struct {
	// Server is the naplet server to visit.
	Server string
	// Guard names a registered guard condition; the visit is carried out
	// only if the guard evaluates true. Empty means unconditional.
	Guard string
	// Action names a registered post-action to perform after the visit's
	// business logic, for inter-agent communication and synchronization.
	Action string
}

// String renders the visit in the paper's <C -> S; T> notation.
func (v Visit) String() string {
	var b strings.Builder
	b.WriteByte('<')
	if v.Guard != "" {
		b.WriteString(v.Guard)
		b.WriteString(" -> ")
	}
	b.WriteString(v.Server)
	if v.Action != "" {
		b.WriteString("; ")
		b.WriteString(v.Action)
	}
	b.WriteByte('>')
	return b.String()
}

// Kind discriminates pattern tree nodes.
type Kind int

// Pattern node kinds.
const (
	KindSingleton Kind = iota
	KindSeq
	KindAlt
	KindPar
)

// String returns the BNF operator name.
func (k Kind) String() string {
	switch k {
	case KindSingleton:
		return "Singleton"
	case KindSeq:
		return "Seq"
	case KindAlt:
		return "Alt"
	case KindPar:
		return "Par"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Pattern is a node of the itinerary pattern tree. All fields are exported
// so patterns serialize with encoding/gob and travel with the naplet.
type Pattern struct {
	Kind Kind
	// V is the visit of a Singleton node.
	V Visit
	// Subs are the operand patterns of Seq, Alt, and Par nodes. The paper
	// defines binary operators; n-ary nodes are the obvious flattening
	// (Seq(P1, P2, P3) ≡ Seq(P1, Seq(P2, P3))) and are what the paper's
	// SeqPattern(servers, act) convenience constructors build.
	Subs []*Pattern
}

// Errors reported by pattern construction and execution.
var (
	ErrEmptyPattern = errors.New("itinerary: empty pattern")
	ErrBadGuard     = errors.New("itinerary: guard evaluation failed")
)

// Singleton returns the base pattern: a single (possibly conditional) visit.
func Singleton(v Visit) *Pattern {
	return &Pattern{Kind: KindSingleton, V: v}
}

// Seq composes patterns sequentially: each operand's visits follow the
// previous operand's.
func Seq(ps ...*Pattern) *Pattern {
	return &Pattern{Kind: KindSeq, Subs: ps}
}

// Alt composes alternative patterns: exactly one operand is carried out by
// the naplet, selected by the guard of the first operand whose initial visit
// guard holds (an unguarded initial visit always holds).
func Alt(ps ...*Pattern) *Pattern {
	return &Pattern{Kind: KindAlt, Subs: ps}
}

// Par composes parallel patterns: the first operand is carried out by the
// naplet itself and each further operand by a fresh clone.
func Par(ps ...*Pattern) *Pattern {
	return &Pattern{Kind: KindPar, Subs: ps}
}

// SeqVisits builds the paper's SeqPattern(servers, act) convenience: a
// sequential tour of the servers with the same post-action after each visit.
func SeqVisits(servers []string, action string) *Pattern {
	subs := make([]*Pattern, len(servers))
	for i, s := range servers {
		subs[i] = Singleton(Visit{Server: s, Action: action})
	}
	return Seq(subs...)
}

// ParVisits builds the paper's Example-2 broadcast: every server visited by
// its own clone, each running the same post-action.
func ParVisits(servers []string, action string) *Pattern {
	subs := make([]*Pattern, len(servers))
	for i, s := range servers {
		subs[i] = Singleton(Visit{Server: s, Action: action})
	}
	return Par(subs...)
}

// ConditionalTour builds a sequential search route: the first visit is
// unconditional, every later visit is guarded by guard, as in the paper's
// mobile agent-based sequential search where "all visits except the first
// one should be conditional visits".
func ConditionalTour(servers []string, guard, action string) *Pattern {
	subs := make([]*Pattern, len(servers))
	for i, s := range servers {
		v := Visit{Server: s, Action: action}
		if i > 0 {
			v.Guard = guard
		}
		subs[i] = Singleton(v)
	}
	return Seq(subs...)
}

// String renders the pattern in the paper's operator notation, e.g.
// "par(seq(<s0>, <s1>), seq(<s2>, <s3>))".
func (p *Pattern) String() string {
	if p == nil {
		return "ε"
	}
	switch p.Kind {
	case KindSingleton:
		return p.V.String()
	default:
		names := map[Kind]string{KindSeq: "seq", KindAlt: "alt", KindPar: "par"}
		parts := make([]string, len(p.Subs))
		for i, s := range p.Subs {
			parts[i] = s.String()
		}
		return names[p.Kind] + "(" + strings.Join(parts, ", ") + ")"
	}
}

// Clone deep-copies the pattern tree.
func (p *Pattern) Clone() *Pattern {
	if p == nil {
		return nil
	}
	c := &Pattern{Kind: p.Kind, V: p.V}
	if p.Subs != nil {
		c.Subs = make([]*Pattern, len(p.Subs))
		for i, s := range p.Subs {
			c.Subs[i] = s.Clone()
		}
	}
	return c
}

// Servers returns every server mentioned in the pattern, in tree order,
// with duplicates preserved.
func (p *Pattern) Servers() []string {
	var out []string
	p.walk(func(v Visit) {
		out = append(out, v.Server)
	})
	return out
}

// Visits returns every visit in the pattern in tree order.
func (p *Pattern) Visits() []Visit {
	var out []Visit
	p.walk(func(v Visit) { out = append(out, v) })
	return out
}

func (p *Pattern) walk(f func(Visit)) {
	if p == nil {
		return
	}
	if p.Kind == KindSingleton {
		f(p.V)
		return
	}
	for _, s := range p.Subs {
		s.walk(f)
	}
}

// Validate checks structural well-formedness: every composite node has at
// least one operand and every singleton names a server.
func (p *Pattern) Validate() error {
	if p == nil {
		return ErrEmptyPattern
	}
	switch p.Kind {
	case KindSingleton:
		if p.V.Server == "" {
			return fmt.Errorf("itinerary: singleton with empty server")
		}
		return nil
	case KindSeq, KindAlt, KindPar:
		if len(p.Subs) == 0 {
			return fmt.Errorf("itinerary: %v with no operands", p.Kind)
		}
		for _, s := range p.Subs {
			if err := s.Validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("itinerary: unknown node kind %v", p.Kind)
	}
}

// Evaluator evaluates named guard conditions against the executing agent's
// state. The runtime supplies one backed by the codebase registry.
type Evaluator interface {
	Eval(guard string) (bool, error)
}

// EvalFunc adapts a function to the Evaluator interface.
type EvalFunc func(guard string) (bool, error)

// Eval implements Evaluator.
func (f EvalFunc) Eval(guard string) (bool, error) { return f(guard) }

// DecisionKind discriminates the outcomes of a Step.
type DecisionKind int

// Step outcomes.
const (
	// DecisionDone: the itinerary is complete; the naplet has no further
	// visits.
	DecisionDone DecisionKind = iota
	// DecisionVisit: travel to Decision.Visit.Server and perform the visit.
	DecisionVisit
	// DecisionFork: clone the naplet; the parent continues with
	// Decision.Branches[0] (already folded into the remainder), each clone
	// i ≥ 1 receives Branches[i] as its full remaining itinerary.
	DecisionFork
)

// Decision is the outcome of consuming one step of an itinerary.
type Decision struct {
	Kind DecisionKind
	// Visit is set for DecisionVisit.
	Visit Visit
	// Branches is set for DecisionFork: the clone branches (excluding the
	// parent's, which continues inside the stepped itinerary).
	Branches []*Pattern
	// Alternates holds, for a DecisionVisit chosen by an Alt node, the
	// not-chosen alternative subtrees — each rewrapped with whatever
	// follows the Alt, so any one of them is a complete replacement for
	// the remaining itinerary. The visit engine falls back to them when
	// dispatch toward Visit.Server exhausts against a dead destination.
	Alternates []*Pattern
}

// Itinerary is the travel plan carried by a naplet: the remaining pattern
// tree. The zero value is a completed itinerary. It serializes with gob and
// is advanced in place by Next.
type Itinerary struct {
	Remaining *Pattern
}

// New wraps a validated pattern into an itinerary.
func New(p *Pattern) (*Itinerary, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Itinerary{Remaining: p.Clone()}, nil
}

// MustNew is like New but panics on invalid patterns; for tests and
// constant itineraries.
func MustNew(p *Pattern) *Itinerary {
	it, err := New(p)
	if err != nil {
		panic(err)
	}
	return it
}

// Done reports whether the itinerary is complete.
func (it *Itinerary) Done() bool { return it == nil || it.Remaining == nil }

// Clone deep-copies the itinerary.
func (it *Itinerary) Clone() *Itinerary {
	if it == nil {
		return nil
	}
	return &Itinerary{Remaining: it.Remaining.Clone()}
}

// String renders the remaining plan.
func (it *Itinerary) String() string {
	if it.Done() {
		return "ε"
	}
	return it.Remaining.String()
}

// Next consumes the next step of the itinerary, advancing it in place.
//
//   - DecisionVisit: the returned visit's guard has already been evaluated
//     (guarded visits that fail their guard are skipped silently, per §3's
//     conditional-visit semantics).
//   - DecisionFork: the itinerary has been rewritten so the parent continues
//     with the first branch; the returned Branches hold the clones' plans.
//     The caller forks clones and then calls Next again to obtain the
//     parent's own next visit.
//   - DecisionDone: nothing remains.
func (it *Itinerary) Next(ev Evaluator) (Decision, error) {
	for {
		if it.Done() {
			return Decision{Kind: DecisionDone}, nil
		}
		d, rest, err := step(it.Remaining, ev)
		if err != nil {
			return Decision{}, err
		}
		it.Remaining = rest
		switch d.Kind {
		case DecisionDone:
			// The subtree produced nothing (e.g. all guards false);
			// continue with the remainder.
			if it.Done() {
				return Decision{Kind: DecisionDone}, nil
			}
			continue
		default:
			return d, nil
		}
	}
}

// step consumes one decision from p, returning the decision and the
// remaining pattern (nil when p is exhausted).
func step(p *Pattern, ev Evaluator) (Decision, *Pattern, error) {
	switch p.Kind {
	case KindSingleton:
		ok, err := evalGuard(p.V.Guard, ev)
		if err != nil {
			return Decision{}, nil, err
		}
		if !ok {
			// Guard failed: the visit is skipped.
			return Decision{Kind: DecisionDone}, nil, nil
		}
		return Decision{Kind: DecisionVisit, Visit: p.V}, nil, nil

	case KindSeq:
		for i, sub := range p.Subs {
			d, rest, err := step(sub, ev)
			if err != nil {
				return Decision{}, nil, err
			}
			if d.Kind == DecisionDone && rest == nil {
				continue // operand exhausted, move to the next
			}
			// Rebuild the remainder: rest of this operand + later operands.
			remainder := seqRemainder(rest, p.Subs[i+1:])
			// Failover alternates must carry the same continuation the
			// chosen path does, so rewrap each with the later operands.
			for k, alt := range d.Alternates {
				d.Alternates[k] = seqRemainder(alt, p.Subs[i+1:])
			}
			return d, remainder, nil
		}
		return Decision{Kind: DecisionDone}, nil, nil

	case KindAlt:
		chosen, idx, err := chooseAlt(p.Subs, ev)
		if err != nil {
			return Decision{}, nil, err
		}
		if chosen == nil {
			return Decision{Kind: DecisionDone}, nil, nil
		}
		d, rest, err := step(chosen, ev)
		if err != nil {
			return Decision{}, nil, err
		}
		if d.Kind == DecisionVisit {
			// The unchosen alternatives are this visit's failover routes:
			// if the chosen destination turns out dead, any of them can
			// replace the whole remaining subtree (their guards are
			// re-evaluated at failover time).
			for j, sub := range p.Subs {
				if j != idx {
					d.Alternates = append(d.Alternates, sub.Clone())
				}
			}
		}
		return d, rest, err

	case KindPar:
		if len(p.Subs) == 0 {
			return Decision{Kind: DecisionDone}, nil, nil
		}
		branches := make([]*Pattern, 0, len(p.Subs)-1)
		for _, b := range p.Subs[1:] {
			branches = append(branches, b.Clone())
		}
		// Parent continues with the first branch; the caller sees the fork
		// and then re-steps for the parent's next visit.
		return Decision{Kind: DecisionFork, Branches: branches}, p.Subs[0].Clone(), nil

	default:
		return Decision{}, nil, fmt.Errorf("itinerary: unknown node kind %v", p.Kind)
	}
}

// seqRemainder rebuilds a Seq remainder from the rest of the current operand
// and the not-yet-started later operands.
func seqRemainder(rest *Pattern, later []*Pattern) *Pattern {
	subs := make([]*Pattern, 0, 1+len(later))
	if rest != nil {
		subs = append(subs, rest)
	}
	for _, l := range later {
		subs = append(subs, l.Clone())
	}
	switch len(subs) {
	case 0:
		return nil
	case 1:
		return subs[0]
	default:
		return Seq(subs...)
	}
}

// chooseAlt picks the first alternative whose initial visit guard holds,
// returning it with its index in subs (-1 when none holds).
func chooseAlt(subs []*Pattern, ev Evaluator) (*Pattern, int, error) {
	for i, sub := range subs {
		g := firstGuard(sub)
		ok, err := evalGuard(g, ev)
		if err != nil {
			return nil, -1, err
		}
		if ok {
			return sub.Clone(), i, nil
		}
	}
	return nil, -1, nil
}

// firstGuard finds the guard of the first visit reachable in the pattern.
func firstGuard(p *Pattern) string {
	if p == nil {
		return ""
	}
	if p.Kind == KindSingleton {
		return p.V.Guard
	}
	if len(p.Subs) == 0 {
		return ""
	}
	return firstGuard(p.Subs[0])
}

func evalGuard(guard string, ev Evaluator) (bool, error) {
	if guard == "" {
		return true, nil
	}
	if ev == nil {
		return false, fmt.Errorf("%w: guard %q with no evaluator", ErrBadGuard, guard)
	}
	ok, err := ev.Eval(guard)
	if err != nil {
		return false, fmt.Errorf("%w: %q: %v", ErrBadGuard, guard, err)
	}
	return ok, nil
}
