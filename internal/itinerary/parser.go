package itinerary

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse builds a pattern from the paper's operator notation:
//
//	pattern  := "seq" "(" list ")" | "alt" "(" list ")" | "par" "(" list ")" | visit
//	list     := pattern ("," pattern)*
//	visit    := ["<"] [guard "->"] server [";" action] [">"]
//	server, guard, action := identifiers ([A-Za-z0-9._:-]+)
//
// The angle brackets are the paper's <C -> S; T> rendering, as produced by
// Pattern.String; they are optional but must pair up. Examples accepted:
//
//	s0
//	par(seq(s0, s1), seq(s2, s3))
//	seq(s0, found -> s1; report)
//	seq(<s0>, <found -> s1; report>)
//
// Whitespace is insignificant. Parse validates the resulting pattern.
func Parse(input string) (*Pattern, error) {
	p := &parser{src: input}
	pat, err := p.pattern()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("itinerary: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	return pat, nil
}

// MustParse is like Parse but panics on error; for tests and constants.
func MustParse(input string) *Pattern {
	pat, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return pat
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func isIdentChar(c byte) bool {
	return c == '.' || c == '_' || c == ':' || c == '-' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("itinerary: expected identifier at offset %d", start)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("itinerary: expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

// lookaheadOperator reports whether an identifier is one of the composite
// operators followed by '('.
func (p *parser) lookaheadOperator() (string, bool) {
	p.skipSpace()
	for _, op := range []string{"seq", "alt", "par"} {
		rest := p.src[p.pos:]
		if strings.HasPrefix(rest, op) {
			after := rest[len(op):]
			trimmed := strings.TrimLeftFunc(after, unicode.IsSpace)
			if strings.HasPrefix(trimmed, "(") {
				return op, true
			}
		}
	}
	return "", false
}

func (p *parser) pattern() (*Pattern, error) {
	if op, ok := p.lookaheadOperator(); ok {
		p.skipSpace()
		p.pos += len(op)
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var subs []*Pattern
		for {
			sub, err := p.pattern()
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		switch op {
		case "seq":
			return Seq(subs...), nil
		case "alt":
			return Alt(subs...), nil
		default:
			return Par(subs...), nil
		}
	}
	return p.visit()
}

func (p *parser) visit() (*Pattern, error) {
	p.skipSpace()
	bracketed := false
	if p.peek() == '<' {
		p.pos++
		bracketed = true
	}
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	v := Visit{Server: first}
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "->") {
		p.pos += 2
		server, err := p.ident()
		if err != nil {
			return nil, err
		}
		v.Guard = first
		v.Server = server
		p.skipSpace()
	}
	if p.peek() == ';' {
		p.pos++
		action, err := p.ident()
		if err != nil {
			return nil, err
		}
		v.Action = action
	}
	if bracketed {
		if err := p.expect('>'); err != nil {
			return nil, err
		}
	}
	return Singleton(v), nil
}
