// Package resource implements the ResourceManager of §2.2 and §5.3: the
// component that makes host resources available to alien naplets in a
// controlled manner.
//
// Services run in one of two protection modes:
//
//   - Non-privileged (open) services, "like routines in math libraries, are
//     registered in the ResourceManager as open services and can be called
//     via their handlers".
//   - Privileged services "must be accessed via ServiceChannel objects".
//     A service channel is a synchronous pipe: the server assigns one pair
//     of endpoints (ServiceReader/ServiceWriter) to the service and leaves
//     the other pair (NapletReader/NapletWriter) to the naplet. The
//     ResourceManager creates channels on request and applies
//     naplet-specific access control, based on naplet credentials, in the
//     allocation of service channels.
//
// The mechanism/policy separation is explicit: the manager implements
// allocation; which naplets may open which channels is decided by the
// pluggable security manager.
package resource

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cred"
	"repro/internal/naplet"
	"repro/internal/security"
)

// OpenService is a non-privileged service: a plain function callable by
// handler.
type OpenService func(args []string) (string, error)

// PrivilegedService is the paper's PrivilegedService base class: a run loop
// that reads request lines from its ServiceReader and writes reply lines to
// its ServiceWriter until the channel closes.
type PrivilegedService interface {
	Serve(ch *ServerEnd)
}

// ServiceFunc adapts a function to PrivilegedService.
type ServiceFunc func(ch *ServerEnd)

// Serve implements PrivilegedService.
func (f ServiceFunc) Serve(ch *ServerEnd) { f(ch) }

// Factory creates a fresh privileged-service instance per channel, so
// stateful run loops are isolated between naplets.
type Factory func() PrivilegedService

// Errors reported by the resource manager.
var (
	ErrUnknownService = errors.New("resource: unknown service")
	ErrChannelClosed  = errors.New("resource: service channel closed")
	ErrDuplicate      = errors.New("resource: service already registered")
)

// halfPipe is one direction of a service channel: an unbounded FIFO of
// lines with close semantics. Writes after close fail; reads drain buffered
// lines and then report io.EOF.
type halfPipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lines  []string
	closed bool
}

func newHalfPipe() *halfPipe {
	p := &halfPipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *halfPipe) write(line string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrChannelClosed
	}
	p.lines = append(p.lines, line)
	p.cond.Signal()
	return nil
}

func (p *halfPipe) read() (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.lines) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.lines) == 0 {
		return "", io.EOF
	}
	line := p.lines[0]
	p.lines = p.lines[1:]
	return line, nil
}

func (p *halfPipe) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
}

// channel is one allocated service channel: two half pipes.
type channel struct {
	toService *halfPipe // naplet writes -> service reads
	toNaplet  *halfPipe // service writes -> naplet reads
	closeOnce sync.Once
}

func (c *channel) close() {
	c.closeOnce.Do(func() {
		c.toService.close()
		c.toNaplet.close()
	})
}

// NapletEnd is the naplet-side endpoint pair (NapletWriter + NapletReader).
// It implements naplet.ServiceChannel.
type NapletEnd struct {
	ch *channel
	// bytes counts naplet-side channel traffic for resource accounting.
	bytes *atomic.Int64
}

// WriteLine sends a request line to the privileged service (NapletWriter).
func (e *NapletEnd) WriteLine(line string) error {
	if e.bytes != nil {
		e.bytes.Add(int64(len(line)))
	}
	return e.ch.toService.write(line)
}

// ReadLine receives a reply line from the service (NapletReader). It
// returns io.EOF after the channel closes and drains.
func (e *NapletEnd) ReadLine() (string, error) {
	line, err := e.ch.toNaplet.read()
	if err == nil && e.bytes != nil {
		e.bytes.Add(int64(len(line)))
	}
	return line, err
}

// Close releases the channel; the service's Serve loop observes EOF.
func (e *NapletEnd) Close() error {
	e.ch.close()
	return nil
}

// ServerEnd is the service-side endpoint pair (ServiceReader +
// ServiceWriter).
type ServerEnd struct {
	ch *channel
	// Naplet identifies the client naplet, so services can apply
	// naplet-specific behaviour or auditing.
	Naplet cred.Credential
}

// ReadLine receives a request line from the naplet (ServiceReader);
// io.EOF after close.
func (e *ServerEnd) ReadLine() (string, error) { return e.ch.toService.read() }

// WriteLine sends a reply line to the naplet (ServiceWriter).
func (e *ServerEnd) WriteLine(line string) error { return e.ch.toNaplet.write(line) }

// Close releases the channel from the service side.
func (e *ServerEnd) Close() error {
	e.ch.close()
	return nil
}

// Stats counts resource-manager activity.
type Stats struct {
	OpenCalls      int64
	ChannelsOpened int64
	ChannelsDenied int64
}

// Manager is the per-server ResourceManager. It is safe for concurrent use
// and supports dynamic (re)configuration of services ("the service channel
// mechanism enables dynamic installation and re-configuration of
// application services", §5.3).
type Manager struct {
	security *security.Manager

	mu   sync.RWMutex
	open map[string]OpenService
	priv map[string]Factory

	openCalls      atomic.Int64
	channelsOpened atomic.Int64
	channelsDenied atomic.Int64
}

// NewManager builds a resource manager enforcing access control with sec
// (nil means no checks, the promiscuous testbed configuration).
func NewManager(sec *security.Manager) *Manager {
	return &Manager{
		security: sec,
		open:     make(map[string]OpenService),
		priv:     make(map[string]Factory),
	}
}

// RegisterOpen installs a non-privileged service under name.
func (m *Manager) RegisterOpen(name string, f OpenService) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.open[name]; dup {
		return fmt.Errorf("%w: open service %q", ErrDuplicate, name)
	}
	m.open[name] = f
	return nil
}

// RegisterPrivileged installs a privileged service factory under name.
// Naplets reach it only through service channels.
func (m *Manager) RegisterPrivileged(name string, f Factory) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.priv[name]; dup {
		return fmt.Errorf("%w: privileged service %q", ErrDuplicate, name)
	}
	m.priv[name] = f
	return nil
}

// Deregister removes a service of either kind (dynamic re-configuration).
func (m *Manager) Deregister(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.open, name)
	delete(m.priv, name)
}

// CallOpen invokes an open service by handler.
func (m *Manager) CallOpen(name string, args []string) (string, error) {
	m.mu.RLock()
	f, ok := m.open[name]
	m.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: open service %q", ErrUnknownService, name)
	}
	m.openCalls.Add(1)
	return f(args)
}

// OpenChannel allocates a service channel between the naplet identified by
// c and the named privileged service, enforcing the security policy. The
// service's Serve loop runs in its own goroutine; the returned naplet end
// is handed to the requesting naplet.
func (m *Manager) OpenChannel(c *cred.Credential, name string) (naplet.ServiceChannel, error) {
	m.mu.RLock()
	factory, ok := m.priv[name]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: privileged service %q", ErrUnknownService, name)
	}
	if m.security != nil {
		if err := m.security.CheckService(c, name); err != nil {
			m.channelsDenied.Add(1)
			return nil, err
		}
	}
	ch := &channel{toService: newHalfPipe(), toNaplet: newHalfPipe()}
	server := &ServerEnd{ch: ch}
	if c != nil {
		server.Naplet = *c
	}
	svc := factory()
	go func() {
		defer ch.close()
		svc.Serve(server)
	}()
	m.channelsOpened.Add(1)
	return &NapletEnd{ch: ch}, nil
}

// PrivilegedNames lists registered privileged services, sorted.
func (m *Manager) PrivilegedNames() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.priv))
	for n := range m.priv {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// OpenNames lists registered open services, sorted.
func (m *Manager) OpenNames() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.open))
	for n := range m.open {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats returns activity counters.
func (m *Manager) Stats() Stats {
	return Stats{
		OpenCalls:      m.openCalls.Load(),
		ChannelsOpened: m.channelsOpened.Load(),
		ChannelsDenied: m.channelsDenied.Load(),
	}
}

// View binds the resource manager to one naplet's credential, implementing
// naplet.ServicesAPI. It tracks the channels the naplet opened so the
// runtime can reclaim them when the visit ends ("success of a launch will
// release all the resources occupied by the naplet", §2.2).
type View struct {
	mgr  *Manager
	cred *cred.Credential

	mu       sync.Mutex
	channels []naplet.ServiceChannel
}

// NewView builds the per-naplet service surface.
func NewView(mgr *Manager, c *cred.Credential) *View {
	return &View{mgr: mgr, cred: c}
}

// CallOpen implements naplet.ServicesAPI.
func (v *View) CallOpen(name string, args []string) (string, error) {
	return v.mgr.CallOpen(name, args)
}

// OpenChannel implements naplet.ServicesAPI.
func (v *View) OpenChannel(name string) (naplet.ServiceChannel, error) {
	ch, err := v.mgr.OpenChannel(v.cred, name)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	v.channels = append(v.channels, ch)
	v.mu.Unlock()
	return ch, nil
}

// Channels implements naplet.ServicesAPI.
func (v *View) Channels() []string { return v.mgr.PrivilegedNames() }

// ReleaseAll closes every channel the naplet opened during the visit.
func (v *View) ReleaseAll() {
	v.mu.Lock()
	chans := v.channels
	v.channels = nil
	v.mu.Unlock()
	for _, ch := range chans {
		ch.Close()
	}
}
