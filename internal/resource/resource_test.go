package resource

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/security"
)

var t0 = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)

func testCred(t *testing.T, ring *cred.KeyRing, owner string, roles ...string) cred.Credential {
	t.Helper()
	nid := id.MustNew(owner, "home", t0)
	c, err := ring.Issue(nid, "cb", roles, t0, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// echoService is a line-reversing privileged service.
func echoService() PrivilegedService {
	return ServiceFunc(func(ch *ServerEnd) {
		for {
			line, err := ch.ReadLine()
			if err != nil {
				return
			}
			ch.WriteLine("svc:" + line)
		}
	})
}

func TestOpenServiceCall(t *testing.T) {
	m := NewManager(nil)
	if err := m.RegisterOpen("math.add", func(args []string) (string, error) {
		return strings.Join(args, "+"), nil
	}); err != nil {
		t.Fatal(err)
	}
	got, err := m.CallOpen("math.add", []string{"1", "2"})
	if err != nil || got != "1+2" {
		t.Fatalf("CallOpen: %q %v", got, err)
	}
	if _, err := m.CallOpen("ghost", nil); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("want ErrUnknownService, got %v", err)
	}
	if m.Stats().OpenCalls != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestDuplicateRegistration(t *testing.T) {
	m := NewManager(nil)
	m.RegisterOpen("a", func([]string) (string, error) { return "", nil })
	if err := m.RegisterOpen("a", nil); !errors.Is(err, ErrDuplicate) {
		t.Fatal(err)
	}
	m.RegisterPrivileged("p", echoService)
	if err := m.RegisterPrivileged("p", echoService); !errors.Is(err, ErrDuplicate) {
		t.Fatal(err)
	}
}

func TestServiceChannelRoundTrip(t *testing.T) {
	m := NewManager(nil)
	m.RegisterPrivileged("echo", echoService)
	ch, err := m.OpenChannel(nil, "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	// The paper's NMNaplet pattern: write parameters, read results.
	if err := ch.WriteLine("sysDescr;sysUpTime"); err != nil {
		t.Fatal(err)
	}
	line, err := ch.ReadLine()
	if err != nil || line != "svc:sysDescr;sysUpTime" {
		t.Fatalf("ReadLine: %q %v", line, err)
	}
	// Repeated inquiries over the same channel.
	ch.WriteLine("ifTable")
	line, _ = ch.ReadLine()
	if line != "svc:ifTable" {
		t.Fatalf("second inquiry: %q", line)
	}
}

func TestChannelCloseEOF(t *testing.T) {
	m := NewManager(nil)
	m.RegisterPrivileged("echo", echoService)
	ch, _ := m.OpenChannel(nil, "echo")
	ch.WriteLine("x")
	if _, err := ch.ReadLine(); err != nil {
		t.Fatal(err)
	}
	ch.Close()
	if err := ch.WriteLine("y"); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if _, err := ch.ReadLine(); !errors.Is(err, io.EOF) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestServiceSideClose(t *testing.T) {
	m := NewManager(nil)
	m.RegisterPrivileged("oneshot", func() PrivilegedService {
		return ServiceFunc(func(ch *ServerEnd) {
			line, _ := ch.ReadLine()
			ch.WriteLine("got:" + line)
			// Serve returns; the manager closes the channel.
		})
	})
	ch, _ := m.OpenChannel(nil, "oneshot")
	ch.WriteLine("q")
	if line, err := ch.ReadLine(); err != nil || line != "got:q" {
		t.Fatalf("reply: %q %v", line, err)
	}
	// After the service loop returns, reads drain then EOF.
	if _, err := ch.ReadLine(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after service exit, got %v", err)
	}
}

func TestChannelAccessControl(t *testing.T) {
	ring := cred.NewKeyRing()
	ring.Register("alice", []byte("ka"))
	ring.Register("bob", []byte("kb"))
	admin := testCred(t, ring, "alice", "netadmin")
	guest := testCred(t, ring, "bob")

	policy := security.Policy{
		Rules: []security.Rule{
			{Principal: "role:netadmin", Permissions: []security.Permission{security.ServicePermission("snmp")}, Effect: security.Allow},
		},
		Default: security.Deny,
	}
	sec := security.NewManager(ring, policy, func() time.Time { return t0 })
	m := NewManager(sec)
	m.RegisterPrivileged("snmp", echoService)

	if _, err := m.OpenChannel(&admin, "snmp"); err != nil {
		t.Fatalf("admin channel: %v", err)
	}
	if _, err := m.OpenChannel(&guest, "snmp"); !errors.Is(err, security.ErrDenied) {
		t.Fatalf("guest channel must be denied: %v", err)
	}
	s := m.Stats()
	if s.ChannelsOpened != 1 || s.ChannelsDenied != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPerChannelServiceInstances(t *testing.T) {
	// Each channel must get a fresh service instance: stateful loops are
	// isolated between naplets.
	var instances int
	var mu sync.Mutex
	m := NewManager(nil)
	m.RegisterPrivileged("counter", func() PrivilegedService {
		mu.Lock()
		instances++
		mu.Unlock()
		count := 0
		return ServiceFunc(func(ch *ServerEnd) {
			for {
				if _, err := ch.ReadLine(); err != nil {
					return
				}
				count++
				ch.WriteLine(fmt.Sprint(count))
			}
		})
	})
	a, _ := m.OpenChannel(nil, "counter")
	b, _ := m.OpenChannel(nil, "counter")
	a.WriteLine("x")
	a.WriteLine("x")
	b.WriteLine("x")
	a.ReadLine()
	if line, _ := a.ReadLine(); line != "2" {
		t.Fatalf("a count = %q", line)
	}
	if line, _ := b.ReadLine(); line != "1" {
		t.Fatalf("b count = %q, state leaked between channels", line)
	}
	mu.Lock()
	defer mu.Unlock()
	if instances != 2 {
		t.Fatalf("instances = %d", instances)
	}
}

func TestUnknownPrivilegedService(t *testing.T) {
	m := NewManager(nil)
	if _, err := m.OpenChannel(nil, "ghost"); !errors.Is(err, ErrUnknownService) {
		t.Fatal(err)
	}
}

func TestDeregister(t *testing.T) {
	m := NewManager(nil)
	m.RegisterOpen("o", func([]string) (string, error) { return "", nil })
	m.RegisterPrivileged("p", echoService)
	if len(m.OpenNames()) != 1 || len(m.PrivilegedNames()) != 1 {
		t.Fatal("names before deregister")
	}
	m.Deregister("o")
	m.Deregister("p")
	if len(m.OpenNames()) != 0 || len(m.PrivilegedNames()) != 0 {
		t.Fatal("names after deregister")
	}
}

func TestViewTracksAndReleasesChannels(t *testing.T) {
	m := NewManager(nil)
	m.RegisterPrivileged("echo", echoService)
	v := NewView(m, nil)
	ch, err := v.OpenChannel("echo")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Channels(); len(got) != 1 || got[0] != "echo" {
		t.Fatalf("Channels() = %v", got)
	}
	v.ReleaseAll()
	if err := ch.WriteLine("x"); !errors.Is(err, ErrChannelClosed) {
		t.Fatal("ReleaseAll must close naplet channels")
	}
	// ReleaseAll is idempotent.
	v.ReleaseAll()
}

func TestViewCallOpen(t *testing.T) {
	m := NewManager(nil)
	m.RegisterOpen("f", func(args []string) (string, error) { return "ok", nil })
	v := NewView(m, nil)
	if got, err := v.CallOpen("f", nil); err != nil || got != "ok" {
		t.Fatalf("View.CallOpen: %q %v", got, err)
	}
}

func TestConcurrentChannelUse(t *testing.T) {
	m := NewManager(nil)
	m.RegisterPrivileged("echo", echoService)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch, err := m.OpenChannel(nil, "echo")
			if err != nil {
				t.Error(err)
				return
			}
			defer ch.Close()
			for j := 0; j < 10; j++ {
				msg := fmt.Sprintf("m%d.%d", i, j)
				ch.WriteLine(msg)
				line, err := ch.ReadLine()
				if err != nil || line != "svc:"+msg {
					t.Errorf("got %q %v", line, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
