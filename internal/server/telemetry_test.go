package server

import (
	"context"
	"strings"
	"testing"

	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// newSharedTelemetrySpace builds a space whose servers report into ONE
// registry and hop tracer, the aggregate view an operator scrapes.
func newSharedTelemetrySpace(t *testing.T, names ...string) (*space, *telemetry.Registry, *telemetry.HopTracer) {
	t.Helper()
	sp := &space{
		net:     netsim.New(netsim.Config{}),
		reg:     newTestRegistry(t),
		servers: make(map[string]*Server),
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewHopTracer(0)
	sp.net.Instrument(reg)
	for _, name := range names {
		srv, err := New(Config{
			Name:      name,
			Fabric:    sp.net,
			Registry:  sp.reg,
			Telemetry: reg,
			Tracer:    tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		sp.servers[name] = srv
		t.Cleanup(func() { srv.Close() })
	}
	return sp, reg, tracer
}

// TestRoundTripItineraryHopSpans launches a tour and checks every
// migration hop is retrievable per NapletID from the tracer, with cost
// breakdowns and ok outcomes.
func TestRoundTripItineraryHopSpans(t *testing.T) {
	sp, _, tracer := newSharedTelemetrySpace(t, "home", "s1", "s2")
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)

	spans := tracer.Spans(nid.Key())
	if len(spans) < 2 {
		t.Fatalf("spans = %d, want >= 2 (home->s1, s1->s2); all: %+v", len(spans), tracer.All())
	}
	if spans[0].From != "home" || spans[0].To != "s1" {
		t.Errorf("span 0 = %s->%s, want home->s1", spans[0].From, spans[0].To)
	}
	if spans[1].From != "s1" || spans[1].To != "s2" {
		t.Errorf("span 1 = %s->%s, want s1->s2", spans[1].From, spans[1].To)
	}
	for i, s := range spans {
		if s.Outcome != telemetry.OutcomeOK {
			t.Errorf("span %d outcome = %q, want ok (err %q)", i, s.Outcome, s.Err)
		}
		if s.Total <= 0 || s.RecordBytes <= 0 {
			t.Errorf("span %d missing cost data: total=%v record=%d", i, s.Total, s.RecordBytes)
		}
		if s.Naplet != nid.Key() {
			t.Errorf("span %d naplet = %q, want %q", i, s.Naplet, nid.Key())
		}
	}
	// Hop indices strictly increase along the tour.
	for i := 1; i < len(spans); i++ {
		if spans[i].Hop <= spans[i-1].Hop {
			t.Errorf("hop indices not increasing: %d then %d", spans[i-1].Hop, spans[i].Hop)
		}
	}
	// A second naplet's spans do not leak into the first's view.
	if got := tracer.Spans("nobody@nowhere:000000000000"); len(got) != 0 {
		t.Errorf("spans for unknown naplet = %+v", got)
	}
}

// TestSharedRegistryExposesComponentFamilies scrapes the shared registry
// after a tour and checks at least five instrumented packages contribute
// series, the acceptance bar for the /metrics surface.
func TestSharedRegistryExposesComponentFamilies(t *testing.T) {
	sp, reg, _ := newSharedTelemetrySpace(t, "home", "s1", "s2")
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	components := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "naplet_") {
			continue
		}
		parts := strings.SplitN(line, "_", 3)
		if len(parts) == 3 {
			components[parts[1]] = true
		}
	}
	for _, want := range []string{"locator", "messenger", "monitor", "navigator", "transport", "server"} {
		if !components[want] {
			t.Errorf("component %q missing from scrape; have %v", want, components)
		}
	}
	if len(components) < 5 {
		t.Fatalf("only %d instrumented components exposed: %v", len(components), components)
	}

	// The tour's activity is visible in the aggregate counters.
	for _, probe := range []string{
		"naplet_navigator_dispatched_total 2",
		"naplet_navigator_landed_total 2",
		"naplet_monitor_admissions_total 3",
	} {
		if !strings.Contains(text, probe) {
			t.Errorf("scrape missing %q", probe)
		}
	}
	if !strings.Contains(text, `naplet_transport_call_latency_seconds_bucket`) {
		t.Error("scrape missing transport latency histogram buckets")
	}
}
