package server

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/dock"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/registry"
)

// gateAgent blocks mid-visit at one server until the test opens its gate,
// signalling arrival first. It stages the "server crashes while a naplet is
// visiting" scenario: the crash image is taken while the agent is parked.
type gateAgent struct {
	at      string
	gate    chan struct{}
	arrived chan struct{}
}

func (a gateAgent) OnStart(ctx *naplet.Context) error {
	var tour []string
	ctx.State().Load("tour", &tour)
	tour = append(tour, ctx.Server)
	if err := ctx.State().SetPrivate("tour", tour); err != nil {
		return err
	}
	if ctx.Server == a.at {
		select {
		case a.arrived <- struct{}{}:
		default:
		}
		select {
		case <-a.gate:
		case <-ctx.Cancel.Done():
			return ctx.Cancel.Err()
		}
	}
	return nil
}

func (a gateAgent) OnDestroy(ctx *naplet.Context) {
	var tour []string
	ctx.State().Load("tour", &tour)
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(strings.Join(tour, ",")))
}

// crashImage snapshots the dock file while the server is still running —
// the moral equivalent of the disk surviving a power cut. Close() runs the
// orderly trap/cleanup path, which erases dock entries; a real crash would
// not, so the test restores the pre-crash bytes afterwards.
func crashImage(t *testing.T, st *dock.Store) []byte {
	t.Helper()
	data, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatalf("crash image: %v", err)
	}
	return data
}

func restoreImage(t *testing.T, st *dock.Store, data []byte) {
	t.Helper()
	if err := os.WriteFile(st.Path(), data, 0o644); err != nil {
		t.Fatalf("restore image: %v", err)
	}
}

// TestDockRestartResumesVisit crashes a server while a naplet is mid-visit
// and restarts it from the dock snapshot: the naplet re-runs the pending
// visit and the tour still completes exactly once at home.
func TestDockRestartResumesVisit(t *testing.T) {
	st, err := dock.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := newSpace(t, spaceOpts{mutate: func(name string, cfg *Config) {
		if name == "s1" {
			cfg.Dock = st
		}
	}}, "home", "s1")

	gate := make(chan struct{})
	arrived := make(chan struct{}, 1)
	sp.reg.MustRegister(&registry.Codebase{
		Name: "test.Gate",
		New:  func() naplet.Behavior { return gateAgent{at: "s1", gate: gate, arrived: arrived} },
	})

	reports := make(chan string, 4)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Gate",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
		Listener: func(r manager.Result) { reports <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-arrived:
	case <-time.After(10 * time.Second):
		t.Fatal("naplet never reached s1")
	}

	// The landing was committed to the dock before it was acknowledged, so
	// the image taken now holds the visiting naplet.
	img := crashImage(t, st)
	if err := sp.servers["s1"].Close(); err != nil {
		t.Fatal(err)
	}
	restoreImage(t, st, img)

	// Reopen the gate so the replayed visit runs through, then boot a
	// replacement server on the same address and dock directory.
	close(gate)
	st2, err := dock.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	s1b, err := New(Config{
		Name:     "s1",
		Fabric:   sp.net,
		Registry: sp.reg,
		Dock:     st2,
	})
	if err != nil {
		t.Fatalf("restart s1: %v", err)
	}
	t.Cleanup(func() { s1b.Close() })

	// The crash may have reported the naplet trapped before the restart
	// finishes the tour; poll until the completion overwrites it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stt, _, serr := sp.servers["home"].Status(nid)
		if serr == nil && stt == manager.StatusCompleted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status = %v, want completed after restart", stt)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case got := <-reports:
		if got != "s1" {
			t.Fatalf("tour after restart = %q, want %q", got, "s1")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no report after restart")
	}
}

// TestDockRestartKeepsHeldMail crashes a server holding undeliverable mail
// and asserts the restart restores it — exactly once, no loss and no
// duplication.
func TestDockRestartKeepsHeldMail(t *testing.T) {
	st, err := dock.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := newSpace(t, spaceOpts{mutate: func(name string, cfg *Config) {
		if name == "s1" {
			cfg.Dock = st
		}
	}}, "home", "s1")

	// Post to a naplet believed to be at s1 but absent: s1 parks the
	// message, and the KindPost handler commits the dock before confirming.
	rid := id.MustNew("rx", "s1", time.Now())
	sender := naplet.NewRecord(id.MustNew("tx", "home", time.Now()),
		cred.Credential{}, "test.Collector", "home", nil)
	sender.Book.Add(rid, "s1")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sp.servers["home"].Messenger().Post(ctx, sender, rid, "survivor", []byte("survivor")); err != nil {
		t.Fatalf("post: %v", err)
	}
	if n := sp.servers["s1"].Messenger().HeldCount(rid); n != 1 {
		t.Fatalf("held before crash = %d, want 1", n)
	}

	img := crashImage(t, st)
	if err := sp.servers["s1"].Close(); err != nil {
		t.Fatal(err)
	}
	restoreImage(t, st, img)

	st2, err := dock.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	s1b, err := New(Config{
		Name:     "s1",
		Fabric:   sp.net,
		Registry: sp.reg,
		Dock:     st2,
	})
	if err != nil {
		t.Fatalf("restart s1: %v", err)
	}
	t.Cleanup(func() { s1b.Close() })

	if n := s1b.Messenger().HeldCount(rid); n != 1 {
		t.Fatalf("held after restart = %d, want exactly 1", n)
	}
	for key, msgs := range s1b.Messenger().HeldSnapshot() {
		for _, m := range msgs {
			if m.Subject != "survivor" {
				t.Fatalf("unexpected held message %q for %s", m.Subject, key)
			}
		}
	}
}
