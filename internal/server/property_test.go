package server

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/itinerary"
	"repro/internal/manager"
)

// randomTree builds a random Seq/Par pattern over the given servers with
// every singleton on a distinct server draw.
func randomTree(r *rand.Rand, servers []string, depth int) *itinerary.Pattern {
	if depth <= 0 || r.Intn(3) == 0 {
		return itinerary.Singleton(itinerary.Visit{Server: servers[r.Intn(len(servers))]})
	}
	n := 1 + r.Intn(3)
	subs := make([]*itinerary.Pattern, n)
	for i := range subs {
		subs[i] = randomTree(r, servers, depth-1)
	}
	if r.Intn(2) == 0 {
		return itinerary.Seq(subs...)
	}
	return itinerary.Par(subs...)
}

// expectedAgents counts the naplets a pattern produces: 1 + one clone per
// extra Par branch, recursively.
func expectedAgents(p *itinerary.Pattern) int {
	clones := 0
	var walk func(p *itinerary.Pattern)
	walk = func(p *itinerary.Pattern) {
		if p == nil {
			return
		}
		if p.Kind == itinerary.KindPar && len(p.Subs) > 1 {
			clones += len(p.Subs) - 1
		}
		for _, s := range p.Subs {
			walk(s)
		}
	}
	walk(p)
	return clones + 1
}

// TestPropRandomItineraryExecution runs randomly generated Seq/Par trees
// through a real naplet space and checks two global invariants:
//
//  1. every server named in the pattern is visited at least once
//     (coverage);
//  2. exactly expectedAgents(pattern) naplets report completion (the
//     clone algebra matches the execution engine).
func TestPropRandomItineraryExecution(t *testing.T) {
	serverNames := []string{"s0", "s1", "s2", "s3"}
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(trial) * 7919))
			pattern := randomTree(r, serverNames, 3)
			agents := expectedAgents(pattern)
			if agents > 24 {
				t.Skip("tree too bushy for one trial")
			}

			sp := newSpace(t, spaceOpts{}, append([]string{"home"}, serverNames...)...)
			var (
				mu      sync.Mutex
				reports int
			)
			done := make(chan struct{}, agents)
			_, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
				Owner:    "czxu",
				Codebase: "test.Collector",
				Pattern:  pattern,
				Listener: func(manager.Result) {
					mu.Lock()
					reports++
					mu.Unlock()
					done <- struct{}{}
				},
			})
			if err != nil {
				t.Fatalf("pattern %s: %v", pattern, err)
			}
			for i := 0; i < agents; i++ {
				select {
				case <-done:
				case <-time.After(20 * time.Second):
					t.Fatalf("pattern %s: %d of %d agents reported", pattern, i, agents)
				}
			}
			// No extra reports beyond the expected count.
			time.Sleep(20 * time.Millisecond)
			mu.Lock()
			got := reports
			mu.Unlock()
			if got != agents {
				t.Fatalf("pattern %s: %d reports, want %d", pattern, got, agents)
			}
			// Coverage: every mentioned server saw at least one footprint.
			mentioned := map[string]bool{}
			for _, s := range pattern.Servers() {
				mentioned[s] = true
			}
			for s := range mentioned {
				if len(sp.servers[s].Manager().Footprints()) == 0 {
					t.Fatalf("pattern %s: server %s never visited", pattern, s)
				}
			}
			// Quiescence: nothing left resident anywhere.
			for name, srv := range sp.servers {
				if srv.Manager().Resident() != 0 {
					t.Fatalf("pattern %s: %s still has residents", pattern, name)
				}
			}
		})
	}
}
