package server

import (
	"context"
	"flag"
	"fmt"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/messenger"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// chaosSeed reruns the chaos suite with one specific seed, reproducing a
// CI failure locally:
//
//	go test ./internal/server/ -run TestChaosSeeds -chaos.seed=23 -v
var chaosSeed = flag.Int64("chaos.seed", 0, "run the chaos suite with this single seed only")

// chaosSeeds is the fixed CI seed set. Every seed must uphold the
// invariants; a failing seed is reproducible bit for bit via -chaos.seed.
var chaosSeeds = []int64{11, 23, 37, 41, 59, 67, 73, 89, 97, 103}

func TestChaosSeeds(t *testing.T) {
	seeds := chaosSeeds
	if *chaosSeed != 0 {
		seeds = []int64{*chaosSeed}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

// runChaos drives naplet tours and a message stream through a faulty
// space — probabilistic drops, dropped replies, duplicated frames,
// latency spikes, plus a scripted crash window and a scripted partition
// window — and asserts the end-to-end invariants:
//
//  1. every naplet lands exactly once per itinerary hop (exact tour,
//     exactly one final report);
//  2. no naplet record is lost or duplicated (all tours complete);
//  3. every confirmed message is delivered exactly once, and no message
//     is ever delivered twice;
//  4. telemetry fault counters reconcile with the injector's event trail.
func runChaos(t *testing.T, seed int64) {
	t.Helper()
	reg := telemetry.NewRegistry()
	inj := fault.New(fault.Config{
		Seed: seed,
		P: fault.Probabilities{
			DropRequest: 0.08,
			DropReply:   0.06, // the side effect happens, the ack is lost
			Duplicate:   0.08,
			Delay:       0.03,
		},
		DelaySpike: 100 * time.Microsecond,
		Schedule: []fault.Step{
			{AfterCalls: 25, Op: fault.OpCrash, A: "s2"},
			{AfterCalls: 55, Op: fault.OpRestart, A: "s2"},
			{AfterCalls: 70, Op: fault.OpPartition, A: "home", B: "s1"},
			{AfterCalls: 100, Op: fault.OpHeal, A: "home", B: "s1"},
		},
		// Owner reports are the test's observation channel, not part of
		// the protocols under test: keep them reliable so "exactly one
		// report" stays a sharp invariant.
		Kinds:     func(k wire.Kind) bool { return k != wire.KindReport },
		Telemetry: reg,
	})
	net := netsim.New(netsim.Config{})
	codebases := newTestRegistry(t)

	servers := make(map[string]*Server)
	for _, name := range []string{"home", "s1", "s2", "s3"} {
		srv, err := New(Config{
			Name:               name,
			Fabric:             inj.Fabric(net),
			Registry:           codebases,
			Telemetry:          reg,
			DispatchRetries:    200,
			DispatchRetryDelay: 200 * time.Microsecond,
			Messenger: messenger.Config{
				SendRetries: 8,
				RetryDelay:  200 * time.Microsecond,
				Telemetry:   reg,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[name] = srv
	}

	// A static message receiver resident at s1, and a synthetic sender at
	// home posting through the faulty fabric.
	rid := id.MustNew("rx", "s1", time.Now())
	servers["s1"].mgr.RecordArrival(rid, "test.Collector", "home", time.Now())
	mb := servers["s1"].Messenger().CreateMailbox(rid)
	sender := naplet.NewRecord(id.MustNew("tx", "home", time.Now()),
		cred.Credential{}, "test.Collector", "home", nil)
	sender.Book.Add(rid, "s1")

	// Launch the tours. Each collector appends every server it lands on,
	// so a double-landing or a lost hop corrupts the report.
	const naplets = 3
	tour := []string{"s1", "s2", "s3"}
	reports := make(chan string, naplets*2)
	var nids []id.NapletID
	for i := 0; i < naplets; i++ {
		nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
			Owner:    "czxu",
			Codebase: "test.Collector",
			Pattern:  itinerary.SeqVisits(tour, ""),
			Listener: func(r manager.Result) { reports <- string(r.Body) },
		})
		if err != nil {
			t.Fatal(err)
		}
		nids = append(nids, nid)
	}

	// Post a message stream while the tours run; remember which sends were
	// confirmed. An unconfirmed send may still have been delivered (its
	// confirmation may be the lost frame) — that is exactly what the
	// receiver-side dedup must absorb.
	const posts = 40
	confirmed := make(map[string]bool, posts)
	for i := 0; i < posts; i++ {
		subject := fmt.Sprintf("m%02d", i)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := servers["home"].Messenger().Post(ctx, sender, rid, subject, []byte(subject))
		cancel()
		if err == nil {
			confirmed[subject] = true
		}
	}

	// Invariants 1 and 2: every tour completes, with exactly one report of
	// the exact itinerary.
	for _, nid := range nids {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := servers["home"].WaitDone(ctx, nid)
		cancel()
		if err != nil {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: naplet %s did not finish: %v", seed, nid, err)
		}
		if st != manager.StatusCompleted {
			_, errText, _ := servers["home"].Status(nid)
			dumpTrail(t, inj)
			t.Fatalf("seed %d: naplet %s status = %v (%s)", seed, nid, st, errText)
		}
	}
	want := "s1,s2,s3"
	for i := 0; i < naplets; i++ {
		select {
		case got := <-reports:
			if got != want {
				dumpTrail(t, inj)
				t.Fatalf("seed %d: tour = %q, want %q", seed, got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("seed %d: only %d of %d reports arrived", seed, i, naplets)
		}
	}
	select {
	case extra := <-reports:
		dumpTrail(t, inj)
		t.Fatalf("seed %d: duplicate report %q — a naplet landed twice", seed, extra)
	default:
	}

	// Invariant 3: drain the receiver's mailbox. Confirmed messages appear
	// exactly once; nothing appears more than once.
	got := make(map[string]int, posts)
	for {
		msg, ok := mb.TryReceive()
		if !ok {
			break
		}
		got[msg.Subject]++
	}
	for subject, n := range got {
		if n > 1 {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: message %q delivered %d times", seed, subject, n)
		}
	}
	for subject := range confirmed {
		if got[subject] != 1 {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: confirmed message %q delivered %d times, want 1",
				seed, subject, got[subject])
		}
	}

	// Replayed transfers (a duplicated TRANSFER frame, or a retry after a
	// dropped ack) must show up as dedup hits, never as second landings.
	var transferReplays, dedupHits int64
	for _, ev := range inj.Trail() {
		if ev.Frame == wire.KindNapletTransfer &&
			(ev.Fault == fault.FaultDuplicate || ev.Fault == fault.FaultDropReply) {
			transferReplays++
		}
	}
	for _, srv := range servers {
		dedupHits += srv.Navigator().Stats().DupTransfers
	}
	if dedupHits < transferReplays {
		dumpTrail(t, inj)
		t.Fatalf("seed %d: %d transfer replays injected but only %d dedup hits",
			seed, transferReplays, dedupHits)
	}

	// Invariant 4: the telemetry counters, the injector's own totals and a
	// tally of the event trail must agree fault by fault.
	if dropped := inj.TrailDropped(); dropped != 0 {
		t.Fatalf("seed %d: trail overflowed (%d dropped); raise MaxTrail", seed, dropped)
	}
	tally := make(map[string]int64)
	for _, ev := range inj.Trail() {
		tally[ev.Fault]++
	}
	for kind, n := range inj.Counts() {
		if tally[kind] != n {
			t.Fatalf("seed %d: %s: trail=%d counts=%d", seed, kind, tally[kind], n)
		}
		met := reg.Counter("naplet_fault_injected_total",
			"faults injected by the chaos harness", "fault", kind)
		if met.Value() != n {
			t.Fatalf("seed %d: %s: telemetry=%d counts=%d", seed, kind, met.Value(), n)
		}
	}
}

// dumpTrail logs the injector's fault trail for post-mortem replay.
func dumpTrail(t *testing.T, inj *fault.Injector) {
	t.Helper()
	trail := inj.Trail()
	max := len(trail)
	if max > 60 {
		max = 60
	}
	for _, ev := range trail[:max] {
		t.Logf("fault trail: call=%d %s->%s %s %s %s", ev.Seq, ev.From, ev.To, ev.Frame, ev.Fault, ev.Detail)
	}
	if len(trail) > max {
		t.Logf("fault trail: ... %d more events", len(trail)-max)
	}
}
