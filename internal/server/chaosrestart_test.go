package server

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/dock"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/messenger"
	"repro/internal/naplet"
	"repro/internal/navigator"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// TestChaosRestartSeeds is the server-death chaos suite: under the same
// seeded probabilistic faults as TestChaosSeeds, a mid-tour server is
// crashed for real (process gone, only its dock directory survives) while
// naplets are visiting it and mail is parked at it, then restarted from
// the dock. Each tour also routes through a dead stop, forcing the
// failover machinery. Invariants, per seed:
//
//  1. every tour completes exactly once, with the exact expected tour and
//     the skip reroute recorded in the nav log;
//  2. every confirmed held message survives the restart exactly once — no
//     loss, no duplication;
//  3. the dead-stop dispatches show up as failovers, never as traps.
//
// Seeds alternate between the gob (v1) and binary (v2) dock snapshot
// formats, so every chaos run proves crash recovery against both: the
// restarted server always loads with the current loader, whichever version
// the crash image was written in.
func TestChaosRestartSeeds(t *testing.T) {
	seeds := chaosSeeds
	if *chaosSeed != 0 {
		seeds = []int64{*chaosSeed}
	}
	for i, seed := range seeds {
		snapVer := uint16(dock.Version)
		if i%2 == 0 {
			snapVer = dock.VersionGob
		}
		t.Run(fmt.Sprintf("seed=%d/snap=v%d", seed, snapVer), func(t *testing.T) {
			runChaosRestart(t, seed, snapVer)
		})
	}
}

// chaosGateAgent tours with reroute reporting and blocks at s2 until the
// crash gate opens, so the crash image is taken with every naplet parked
// mid-visit.
type chaosGateAgent struct {
	gate    chan struct{}
	arrived chan struct{}
}

func (a chaosGateAgent) OnStart(ctx *naplet.Context) error {
	var tour []string
	ctx.State().Load("tour", &tour)
	tour = append(tour, ctx.Server)
	if err := ctx.State().SetPrivate("tour", tour); err != nil {
		return err
	}
	if ctx.Server == "s2" {
		select {
		case a.arrived <- struct{}{}:
		default:
		}
		select {
		case <-a.gate:
		case <-ctx.Cancel.Done():
			return ctx.Cancel.Err()
		}
	}
	return nil
}

func (a chaosGateAgent) OnDestroy(ctx *naplet.Context) {
	var tour []string
	ctx.State().Load("tour", &tour)
	parts := []string{strings.Join(tour, ",")}
	for _, r := range ctx.Log().Reroutes() {
		parts = append(parts, r.Policy+"@"+r.Visit)
	}
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(strings.Join(parts, "|")))
}

func runChaosRestart(t *testing.T, seed int64, snapVer uint16) {
	t.Helper()
	reg := telemetry.NewRegistry()
	inj := fault.New(fault.Config{
		Seed: seed,
		P: fault.Probabilities{
			DropRequest: 0.08,
			DropReply:   0.06,
			Duplicate:   0.08,
			Delay:       0.03,
		},
		DelaySpike: 100 * time.Microsecond,
		Kinds:      func(k wire.Kind) bool { return k != wire.KindReport },
		Telemetry:  reg,
	})
	net := netsim.New(netsim.Config{})
	codebases := newTestRegistry(t)

	gate := make(chan struct{})
	arrived := make(chan struct{}, 8)
	codebases.MustRegister(&registry.Codebase{
		Name: "test.ChaosGate",
		New:  func() naplet.Behavior { return chaosGateAgent{gate: gate, arrived: arrived} },
	})

	st, err := dock.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// The crash image is written in the format under test; the restarted
	// store loads it with the current loader and saves onward in the
	// current default format (the upgrade path, when snapVer is v1).
	if err := st.SetSaveVersion(snapVer); err != nil {
		t.Fatal(err)
	}
	// A tight backoff so the dead-stop dispatch exhausts quickly: the
	// failover policy, not the retry budget, is under test here.
	backoff := navigator.Backoff{
		Initial: 200 * time.Microsecond,
		Max:     2 * time.Millisecond,
		Retries: 12,
	}
	mkConfig := func(name string) Config {
		cfg := Config{
			Name:            name,
			Fabric:          inj.Fabric(net),
			Registry:        codebases,
			Telemetry:       reg,
			DispatchBackoff: &backoff,
			Messenger: messenger.Config{
				SendRetries: 8,
				RetryDelay:  200 * time.Microsecond,
				Telemetry:   reg,
			},
		}
		if name == "s2" {
			cfg.Dock = st
		}
		return cfg
	}
	servers := make(map[string]*Server)
	for _, name := range []string{"home", "s1", "s2", "s3"} {
		srv, err := New(mkConfig(name))
		if err != nil {
			t.Fatal(err)
		}
		servers[name] = srv
	}
	t.Cleanup(func() {
		for _, srv := range servers {
			srv.Close()
		}
	})

	// Tours route through "ghost" (never attached) with the skip policy:
	// every naplet must record exactly one reroute and still complete.
	const naplets = 3
	reports := make(chan string, naplets*2)
	var nids []id.NapletID
	for i := 0; i < naplets; i++ {
		nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
			Owner:    "czxu",
			Codebase: "test.ChaosGate",
			Pattern:  itinerary.SeqVisits([]string{"s1", "ghost", "s2", "s3"}, ""),
			Failover: naplet.FailoverSkip,
			Listener: func(r manager.Result) { reports <- string(r.Body) },
		})
		if err != nil {
			t.Fatal(err)
		}
		nids = append(nids, nid)
	}

	// Mail for a naplet that never arrives: s2 parks it, and each hold is
	// committed to the dock before the sender's confirmation.
	rid := id.MustNew("rx", "s2", time.Now())
	sender := naplet.NewRecord(id.MustNew("tx", "home", time.Now()),
		cred.Credential{}, "test.Collector", "home", nil)
	sender.Book.Add(rid, "s2")
	const posts = 10
	confirmed := make(map[string]bool, posts)
	for i := 0; i < posts; i++ {
		subject := fmt.Sprintf("held%02d", i)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := servers["home"].Messenger().Post(ctx, sender, rid, subject, []byte(subject))
		cancel()
		if err == nil {
			confirmed[subject] = true
		}
	}

	// Wait until every naplet is parked mid-visit at s2, then crash it:
	// the dock image is what a surviving disk would hold.
	for i := 0; i < naplets; i++ {
		select {
		case <-arrived:
		case <-time.After(60 * time.Second):
			dumpTrail(t, inj)
			t.Fatalf("seed %d: only %d of %d naplets reached s2", seed, i, naplets)
		}
	}
	img := crashImage(t, st)
	if err := servers["s2"].Close(); err != nil {
		t.Fatal(err)
	}
	restoreImage(t, st, img)

	// Restart s2 from the dock with the gate open: the interrupted visits
	// replay and the tours run through.
	close(gate)
	st2, err := dock.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mkConfig("s2")
	cfg.Dock = st2
	s2b, err := New(cfg)
	if err != nil {
		t.Fatalf("seed %d: restart s2: %v", seed, err)
	}
	servers["s2"] = s2b

	// Invariant 1: every tour completes (the crash may report a transient
	// trap before the restarted visit overwrites it) with the exact tour
	// and exactly one skip reroute.
	deadline := time.Now().Add(60 * time.Second)
	for _, nid := range nids {
		for {
			stt, errText, serr := servers["home"].Status(nid)
			if serr == nil && stt == manager.StatusCompleted {
				break
			}
			if time.Now().After(deadline) {
				dumpTrail(t, inj)
				t.Fatalf("seed %d: naplet %s stuck at %v (%s), want completed",
					seed, nid, stt, errText)
			}
			time.Sleep(time.Millisecond)
		}
	}
	want := "s1,s2,s3|skip@<ghost>"
	for i := 0; i < naplets; i++ {
		select {
		case got := <-reports:
			if got != want {
				dumpTrail(t, inj)
				t.Fatalf("seed %d: report = %q, want %q", seed, got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("seed %d: only %d of %d reports arrived", seed, i, naplets)
		}
	}
	select {
	case extra := <-reports:
		dumpTrail(t, inj)
		t.Fatalf("seed %d: duplicate report %q — a naplet survived twice", seed, extra)
	default:
	}

	// Invariant 2: the held mail crossed the crash exactly once.
	held := make(map[string]int, posts)
	for _, msgs := range s2b.Messenger().HeldSnapshot() {
		for _, m := range msgs {
			held[m.Subject]++
		}
	}
	for subject, n := range held {
		if n > 1 {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: held message %q survived %d times", seed, subject, n)
		}
	}
	for subject := range confirmed {
		if held[subject] != 1 {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: confirmed message %q held %d times after restart, want 1",
				seed, subject, held[subject])
		}
	}
}
