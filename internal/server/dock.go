package server

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/directory"
	"repro/internal/dock"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/navigator"
)

// This file wires the durable dock (internal/dock) into the server: every
// residency-changing event updates the in-memory resident table and commits
// a full snapshot, and a restarted server rebuilds its residents, mail, and
// dedup windows from the last snapshot before serving traffic.

// dockResident records (or updates) a resident's persisted entry and
// commits a snapshot. No-op without a dock store.
func (s *Server) dockResident(rec *naplet.Record, phase, dest, tid string) {
	if s.dockStore == nil {
		return
	}
	data, err := navigator.EncodeRecord(rec)
	if err != nil {
		return
	}
	s.dockMu.Lock()
	s.dockEntries[rec.ID.Key()] = &dock.Resident{
		ID:         rec.ID.Key(),
		Record:     data,
		Phase:      phase,
		Dest:       dest,
		TransferID: tid,
	}
	s.dockMu.Unlock()
	s.dockCommit()
}

// dockRemove drops a resident's persisted entry (departed or ended) and
// commits a snapshot. No-op without a dock store.
func (s *Server) dockRemove(nid id.NapletID) {
	if s.dockStore == nil {
		return
	}
	s.dockMu.Lock()
	delete(s.dockEntries, nid.Key())
	s.dockMu.Unlock()
	s.dockCommit()
}

// dockCommit writes the current recoverable state — residents, held and
// queued mail, home-track table, and both dedup windows — to the dock.
func (s *Server) dockCommit() {
	if s.dockStore == nil {
		return
	}
	s.dockMu.Lock()
	residents := make([]dock.Resident, 0, len(s.dockEntries))
	for _, r := range s.dockEntries {
		residents = append(residents, *r)
	}
	s.dockMu.Unlock()
	sort.Slice(residents, func(i, j int) bool { return residents[i].ID < residents[j].ID })

	home := s.mgr.HomeSnapshot()
	entries := make([]dock.HomeEntry, len(home))
	for i, ev := range home {
		entries[i] = dock.HomeEntry{ID: ev.ID, Server: ev.Server, Arrival: ev.Arrival, At: ev.At}
	}
	_ = s.dockStore.Save(&dock.Snapshot{
		Server:            s.name,
		SavedAt:           s.clock(),
		Residents:         residents,
		Held:              s.msgr.HeldSnapshot(),
		Mailboxes:         s.msgr.MailboxSnapshot(),
		Home:              entries,
		AcceptedTransfers: s.nav.AcceptedSnapshot(),
		DeliveredMsgs:     s.msgr.DeliveredSnapshot(),
	})
}

// restoreFromDock rebuilds the server from the last snapshot: dedup
// windows first (so replays arriving during restore are still absorbed),
// then mail, the home-track table, and finally the residents, whose visit
// engines resume according to their persisted phase.
func (s *Server) restoreFromDock() error {
	snap, err := s.dockStore.Load()
	if err != nil {
		return err
	}
	if snap == nil {
		return nil
	}
	s.nav.RestoreAccepted(snap.AcceptedTransfers)
	s.msgr.RestoreDelivered(snap.DeliveredMsgs)
	// Queued-but-unreceived mailbox mail re-enters as held mail: it drains
	// back into the naplet's mailbox when the resident's engine reopens it.
	s.msgr.RestoreHeld(snap.Held)
	s.msgr.RestoreHeld(snap.Mailboxes)
	if len(snap.Home) > 0 {
		evs := make([]manager.HomeEvent, len(snap.Home))
		for i, h := range snap.Home {
			evs[i] = manager.HomeEvent{ID: h.ID, Server: h.Server, Arrival: h.Arrival, At: h.At}
		}
		s.mgr.RestoreHome(evs)
	}

	for i := range snap.Residents {
		r := snap.Residents[i]
		rec, derr := navigator.DecodeRecord(r.Record)
		if derr != nil {
			return fmt.Errorf("server %s: dock resident %s: %w", s.name, r.ID, derr)
		}
		s.dockMu.Lock()
		s.dockEntries[r.ID] = &r
		s.dockMu.Unlock()
		now := s.clock()
		s.mgr.RecordArrival(rec.ID, rec.Codebase, "dock-restore", now)
		switch r.Phase {
		case dock.PhaseDeparting:
			// The crash hit mid-dispatch: replay under the same transfer
			// ID, so a transfer that did land before the crash is absorbed
			// by the destination's dedup window (exactly-once handoff).
			dest, tid := r.Dest, r.TransferID
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.resumeDispatch(rec, dest, tid)
			}()
		default:
			// PhaseVisiting re-runs the pending visit (at-least-once
			// within a visit); PhaseResident resumes at the next decision.
			arrived := r.Phase == dock.PhaseVisiting
			s.nav.RegisterEvent(context.Background(), rec, directory.Arrival, s.name, "", now)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.lifecycle(rec, arrived, nil)
			}()
		}
	}
	return nil
}

// resumeDispatch replays an interrupted migration after a restart. On
// failure the naplet's failover policy applies; a reroute re-enters the
// visit engine as a resident.
func (s *Server) resumeDispatch(rec *naplet.Record, dest, tid string) {
	err := s.dispatchWithRetryID(rec, dest, tid)
	if err == nil {
		s.departed(rec, dest)
		return
	}
	switch s.applyFailover(rec, rec.Pending, rec.PendingAlts, err) {
	case failoverContinue:
		rec.Pending = itinerary.Visit{}
		rec.PendingAlts = nil
		s.dockResident(rec, dock.PhaseResident, "", "")
		s.lifecycle(rec, false, nil)
	case failoverDeparted:
	default:
		s.trap(rec, fmt.Errorf("dispatch to %s: %w", dest, err))
		s.cleanup(rec, true)
	}
}
