package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/transport"
	"repro/internal/wire"
)

// tcpSpace builds an n-server naplet space over real TCP sockets — the
// same stack cmd/napletd deploys.
func tcpSpace(t *testing.T, n int) []*Server {
	t.Helper()
	fabric := transport.NewTCPFabric()
	reg := newTestRegistry(t)
	servers := make([]*Server, 0, n)
	for i := 0; i < n; i++ {
		srv, err := New(Config{
			Name:     "127.0.0.1:0", // ephemeral port; Name becomes the bound address
			Fabric:   fabric,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
	}
	return servers
}

func TestTCPSequentialTour(t *testing.T) {
	servers := tcpSpace(t, 4)
	home := servers[0]
	route := []string{servers[1].Name(), servers[2].Name(), servers[3].Name()}

	results := make(chan string, 1)
	nid, err := home.Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits(route, ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, home, nid, manager.StatusCompleted)
	got := <-results
	if want := strings.Join(route, ","); got != want {
		t.Fatalf("tour = %q, want %q", got, want)
	}
	// Server names are real socket addresses.
	if !strings.HasPrefix(home.Name(), "127.0.0.1:") || strings.HasSuffix(home.Name(), ":0") {
		t.Fatalf("home name = %q", home.Name())
	}
}

func TestTCPParBroadcast(t *testing.T) {
	servers := tcpSpace(t, 4)
	home := servers[0]
	route := []string{servers[1].Name(), servers[2].Name(), servers[3].Name()}

	done := make(chan string, 3)
	_, err := home.Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.ParVisits(route, ""),
		Listener: func(r manager.Result) { done <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		select {
		case r := <-done:
			seen[r] = true
		case <-time.After(15 * time.Second):
			t.Fatalf("got %d of 3 reports over TCP", i)
		}
	}
	for _, name := range route {
		if !seen[name] {
			t.Fatalf("no report from %s: %v", name, seen)
		}
	}
}

func TestTCPRemoteControlOps(t *testing.T) {
	// Drive the management surface exactly as napletctl does: over the
	// wire with ControlBody frames.
	servers := tcpSpace(t, 2)
	home := servers[0]

	fabric := transport.NewTCPFabric()
	client, err := fabric.Attach("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	callCtl := func(body ControlBody) ControlReplyBody {
		t.Helper()
		f, err := newControlFrame(body)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		reply, err := client.Call(ctx, home.Name(), f)
		if err != nil {
			t.Fatal(err)
		}
		var rb ControlReplyBody
		if err := reply.Body(&rb); err != nil {
			t.Fatal(err)
		}
		return rb
	}

	// Remote launch with the textual route notation.
	rb := callCtl(ControlBody{
		Op:       "launch",
		Owner:    "czxu",
		Codebase: "test.Collector",
		Route:    "seq(" + servers[1].Name() + ")",
	})
	if !rb.OK {
		t.Fatalf("remote launch: %s", rb.Err)
	}
	nid := mustParseID(t, rb.Status)

	// Poll status to completion.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := callCtl(ControlBody{Op: "status", NapletID: nid})
		if !st.OK {
			t.Fatalf("status: %s", st.Err)
		}
		if st.Status == "completed" {
			break
		}
		if st.Status == "trapped" || time.Now().After(deadline) {
			t.Fatalf("status = %s (%s)", st.Status, st.Err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// No results listener was installed, but the tour itself is visible in
	// the visited server's footprints.
	if fps := servers[1].Manager().Footprints(); len(fps) != 1 || !fps[0].NapletID.Equal(nid) {
		t.Fatalf("footprints = %+v", fps)
	}

	// Unknown op errors cleanly.
	f, _ := newControlFrame(ControlBody{Op: "bogus"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Call(ctx, home.Name(), f); err == nil {
		t.Fatal("bogus op accepted")
	}
}

// newControlFrame wraps a ControlBody into a KindControl frame.
func newControlFrame(body ControlBody) (wire.Frame, error) {
	return wire.NewFrame(wire.KindControl, "", "", &body)
}

// mustParseID parses a naplet identifier or fails the test.
func mustParseID(t *testing.T, s string) id.NapletID {
	t.Helper()
	nid, err := id.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return nid
}

func TestTCPFootprintsOp(t *testing.T) {
	servers := tcpSpace(t, 2)
	home := servers[0]
	nid, err := home.Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{servers[1].Name()}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, home, nid, manager.StatusCompleted)

	fabric := transport.NewTCPFabric()
	client, _ := fabric.Attach("127.0.0.1:0", nil)
	defer client.Close()
	f, _ := newControlFrame(ControlBody{Op: "footprints"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reply, err := client.Call(ctx, servers[1].Name(), f)
	if err != nil {
		t.Fatal(err)
	}
	var rb ControlReplyBody
	if err := reply.Body(&rb); err != nil {
		t.Fatal(err)
	}
	if !rb.OK || len(rb.Footprints) != 1 || !rb.Footprints[0].NapletID.Equal(nid) {
		t.Fatalf("footprints reply: %+v", rb)
	}
	if rb.Footprints[0].LeftAt.IsZero() {
		t.Fatal("footprint not closed after completion")
	}
}
