package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/directory"
	"repro/internal/directory/shard"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// TestChaosDirectorySeeds kills a directory shard replica mid-tour and
// asserts the location plane's availability invariants. Runs the same
// fixed seed set as TestChaosSeeds; reproduce one seed with -chaos.seed.
func TestChaosDirectorySeeds(t *testing.T) {
	seeds := chaosSeeds
	if *chaosSeed != 0 {
		seeds = []int64{*chaosSeed}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosDirectory(t, seed)
		})
	}
}

// runChaosDirectory builds a 3-node replicated directory plane (R=2),
// registers a probe naplet whose rendezvous primary is about to die,
// crashes exactly that node mid-tour, and asserts:
//
//  1. every naplet still lands exactly once per itinerary hop (exactly
//     one final report, exact tour) — arrival registration survives on
//     the remaining replica, so execution is never double-granted;
//  2. the probe registered before the crash stays resolvable afterwards
//     (read-your-writes across the replica group), with the shard client
//     recording the failover;
//  3. new registrations made with one replica down remain resolvable.
func runChaosDirectory(t *testing.T, seed int64) {
	t.Helper()
	dirNodes := []string{"d1", "d2", "d3"}
	probe := id.MustNew("probe", "home", time.Now())

	// The scripted crash targets the probe's rendezvous primary, so the
	// failover path — not a lucky healthy-primary read — is what the
	// post-crash lookup exercises.
	ring := shard.NewRing(dirNodes)
	crashed := ring.Primary(shard.KeyOf(probe))

	reg := telemetry.NewRegistry()
	inj := fault.New(fault.Config{
		Seed: seed,
		P: fault.Probabilities{
			DropRequest: 0.05,
			DropReply:   0.04,
			Duplicate:   0.05,
			Delay:       0.03,
		},
		DelaySpike: 100 * time.Microsecond,
		Schedule: []fault.Step{
			{AfterCalls: 40, Op: fault.OpCrash, A: crashed},
		},
		Kinds:     func(k wire.Kind) bool { return k != wire.KindReport },
		Telemetry: reg,
	})
	net := netsim.New(netsim.Config{})
	fabric := inj.Fabric(net)
	for _, addr := range dirNodes {
		if _, err := directory.NewService().Serve(fabric, addr); err != nil {
			t.Fatal(err)
		}
	}

	codebases := newTestRegistry(t)
	servers := make(map[string]*Server)
	for _, name := range []string{"home", "s1", "s2", "s3"} {
		srv, err := New(Config{
			Name:               name,
			Fabric:             fabric,
			Registry:           codebases,
			Telemetry:          reg,
			LocatorMode:        locator.ModeDirectory,
			DirectoryAddrs:     dirNodes,
			DirReplicas:        2,
			DispatchRetries:    200,
			DispatchRetryDelay: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[name] = srv
	}

	// The injector drops individual frames throughout, so a single lookup
	// RPC may legitimately fail even against a healthy replica; like every
	// other consumer under chaos, the observation channel retries. The
	// invariant under test is that the plane keeps answering, not that one
	// frame survives a lossy network.
	lookupRetry := func(dir directory.Directory, nid id.NapletID) (directory.Entry, error) {
		var (
			e   directory.Entry
			err error
		)
		for attempt := 0; attempt < 10; attempt++ {
			e, err = dir.Lookup(context.Background(), nid)
			if err == nil || errors.Is(err, directory.ErrNotFound) {
				return e, err
			}
			time.Sleep(5 * time.Millisecond)
		}
		return e, err
	}

	// Register the probe before the crash: the write goes through to both
	// of its replicas while they are still alive.
	ctx := context.Background()
	if err := servers["s1"].Directory().RegisterEvent(ctx, directory.Registration{
		NapletID: probe, Event: directory.Arrival, Server: "s1", At: time.Now(), Seq: 1,
	}); err != nil {
		t.Fatalf("seed %d: probe registration: %v", seed, err)
	}
	if e, err := lookupRetry(servers["home"].Directory(), probe); err != nil || e.Server != "s1" {
		t.Fatalf("seed %d: pre-crash probe lookup = %+v, %v", seed, e, err)
	}

	// Tours burn through the injector's call budget and trip the scripted
	// crash; their own registrations then run against a degraded plane.
	const naplets = 3
	tour := []string{"s1", "s2", "s3"}
	reports := make(chan string, naplets*2)
	var nids []id.NapletID
	for i := 0; i < naplets; i++ {
		nid, err := servers["home"].Launch(ctx, LaunchOptions{
			Owner:    "czxu",
			Codebase: "test.Collector",
			Pattern:  itinerary.SeqVisits(tour, ""),
			Listener: func(r manager.Result) { reports <- string(r.Body) },
		})
		if err != nil {
			t.Fatal(err)
		}
		nids = append(nids, nid)
	}

	// Invariant 1: exactly-once landing, every tour complete.
	for _, nid := range nids {
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		st, err := servers["home"].WaitDone(wctx, nid)
		cancel()
		if err != nil {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: naplet %s did not finish: %v", seed, nid, err)
		}
		if st != manager.StatusCompleted {
			_, errText, _ := servers["home"].Status(nid)
			dumpTrail(t, inj)
			t.Fatalf("seed %d: naplet %s status = %v (%s)", seed, nid, st, errText)
		}
	}
	want := "s1,s2,s3"
	for i := 0; i < naplets; i++ {
		select {
		case got := <-reports:
			if got != want {
				dumpTrail(t, inj)
				t.Fatalf("seed %d: tour = %q, want %q", seed, got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("seed %d: only %d of %d reports arrived", seed, i, naplets)
		}
	}
	select {
	case extra := <-reports:
		dumpTrail(t, inj)
		t.Fatalf("seed %d: duplicate report %q — a naplet landed twice", seed, extra)
	default:
	}

	// The crash must actually have fired (the tours always generate more
	// than enough fabric calls); otherwise the test proved nothing.
	crashedFired := false
	for _, ev := range inj.Trail() {
		if ev.Fault == fault.FaultCrash {
			crashedFired = true
		}
	}
	if !crashedFired {
		t.Fatalf("seed %d: scripted crash of %s never fired", seed, crashed)
	}

	// Invariant 2: the pre-crash registration is still readable with its
	// primary dead, served by the surviving replica.
	if e, err := lookupRetry(servers["home"].Directory(), probe); err != nil || e.Server != "s1" {
		dumpTrail(t, inj)
		t.Fatalf("seed %d: post-crash probe lookup = %+v, %v (primary %s down)",
			seed, e, err, crashed)
	}
	sc, ok := servers["home"].Directory().(*shard.Client)
	if !ok {
		t.Fatalf("seed %d: directory plane is %T, want *shard.Client", seed, servers["home"].Directory())
	}
	if sc.Stats().Failovers == 0 {
		t.Fatalf("seed %d: probe resolved with its primary dead but no failover was recorded", seed)
	}

	// Invariant 3: writes made against the degraded plane stay readable.
	// The write retries like the lookups do — under frame loss a single
	// fan-out may miss every live replica.
	late := id.MustNew("late", "home", time.Now())
	var regErr error
	for attempt := 0; attempt < 10; attempt++ {
		regErr = servers["s2"].Directory().RegisterEvent(ctx, directory.Registration{
			NapletID: late, Event: directory.Arrival, Server: "s2", At: time.Now(), Seq: 1,
		})
		if regErr == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if regErr != nil {
		dumpTrail(t, inj)
		t.Fatalf("seed %d: degraded-plane registration: %v", seed, regErr)
	}
	if e, err := lookupRetry(servers["s3"].Directory(), late); err != nil || e.Server != "s2" {
		dumpTrail(t, inj)
		t.Fatalf("seed %d: degraded-plane lookup = %+v, %v", seed, e, err)
	}

	// Every tour naplet registered through the degraded plane; each must
	// still resolve to a server inside the space (an arrival at a tour
	// stop, or a departure whose forwarding destination is one).
	inSpace := map[string]bool{"home": true, "s1": true, "s2": true, "s3": true}
	for _, nid := range nids {
		e, err := lookupRetry(servers["home"].Directory(), nid)
		if err != nil {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: tour naplet %s lookup: %v", seed, nid, err)
		}
		where := e.Server
		if e.Event == directory.Departure && e.Dest != "" {
			where = e.Dest
		}
		if !inSpace[where] {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: tour naplet %s resolves to %q, outside the space", seed, nid, where)
		}
	}
}
