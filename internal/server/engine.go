package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cred"
	"repro/internal/directory"
	"repro/internal/dock"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/messenger"
	"repro/internal/monitor"
	"repro/internal/naplet"
	"repro/internal/navigator"
	"repro/internal/resource"
	"repro/internal/state"
	"repro/internal/wire"
)

// LaunchOptions parameterize a naplet launch through this server's
// NapletManager ("Each naplet is launched through its home NapletManager",
// §2.2).
type LaunchOptions struct {
	// Owner is the launching principal; with a key ring configured, the
	// owner's signing key must be registered.
	Owner string
	// Codebase names the agent behaviour in the registry.
	Codebase string
	// Pattern is the itinerary to follow.
	Pattern *itinerary.Pattern
	// Roles are carried in the credential for policy decisions.
	Roles []string
	// Listener receives the naplet's reports (may be nil).
	Listener manager.Listener
	// InitState seeds the naplet's state container (may be nil).
	InitState func(*state.State) error
	// MonitorPolicy overrides the server's default resource policy.
	MonitorPolicy *monitor.Policy
	// TTL bounds credential validity; 0 means no expiry.
	TTL time.Duration
	// Failover selects what the visit engine does when a destination
	// stays unreachable after the dispatch retry budget (see
	// naplet.FailoverPolicy). The zero value traps the naplet.
	Failover naplet.FailoverPolicy
}

// Launch creates and launches a naplet. The first itinerary decision is
// taken at this home server: a first visit elsewhere dispatches
// immediately, a first visit here executes here.
func (s *Server) Launch(ctx context.Context, opts LaunchOptions) (id.NapletID, error) {
	if opts.Owner == "" || opts.Codebase == "" {
		return id.NapletID{}, fmt.Errorf("server: launch needs owner and codebase")
	}
	if _, err := s.reg.Lookup(opts.Codebase); err != nil {
		return id.NapletID{}, err
	}
	itin, err := itinerary.New(opts.Pattern)
	if err != nil {
		return id.NapletID{}, err
	}
	nid, err := s.mintID(opts.Owner)
	if err != nil {
		return id.NapletID{}, err
	}

	credential := cred.Credential{NapletID: nid, Codebase: opts.Codebase, Roles: opts.Roles}
	if s.cfg.KeyRing != nil {
		var expires time.Time
		if opts.TTL > 0 {
			expires = s.clock().Add(opts.TTL)
		}
		credential, err = s.cfg.KeyRing.Issue(nid, opts.Codebase, opts.Roles, s.clock(), expires)
		if err != nil {
			return id.NapletID{}, err
		}
	}

	rec := naplet.NewRecord(nid, credential, opts.Codebase, s.name, itin)
	rec.Failover = opts.Failover
	if opts.InitState != nil {
		if err := opts.InitState(rec.State); err != nil {
			return id.NapletID{}, err
		}
	}

	now := s.clock()
	s.mgr.RecordLaunch(nid, opts.Listener)
	s.mgr.RecordArrival(nid, opts.Codebase, "origin", now)
	rec.Log.RecordArrival(s.name, now)
	s.nav.RegisterEvent(ctx, rec, directory.Arrival, s.name, "", now)
	s.msgr.CreateMailbox(nid)
	s.mgr.SetStatus(nid, manager.StatusRunning, "")
	s.emit("launch", rec, s.name, s.name, opts.Codebase)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.lifecycle(rec, false, opts.MonitorPolicy)
	}()
	return nid, nil
}

// launchFromControl serves a remote "launch" management request: the route
// arrives in the paper's operator notation and the state seeds as plain
// strings.
func (s *Server) launchFromControl(body ControlBody) (id.NapletID, error) {
	pattern, err := itinerary.Parse(body.Route)
	if err != nil {
		return id.NapletID{}, err
	}
	failover, err := naplet.ParseFailoverPolicy(body.Failover)
	if err != nil {
		return id.NapletID{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Launch(ctx, LaunchOptions{
		Owner:    body.Owner,
		Codebase: body.Codebase,
		Pattern:  pattern,
		Failover: failover,
		InitState: func(st *state.State) error {
			if len(body.Params) > 0 {
				if err := st.SetPrivate("man.params", body.Params); err != nil {
					return err
				}
			}
			for k, v := range body.StateKV {
				if err := st.SetPrivate(k, v); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

// land is the navigator's LandFunc: an accepted naplet starts its visit
// here. Residency bookkeeping (manager arrival, navigation log, directory
// registration) already happened inside HandleTransfer, before the ack.
func (s *Server) land(rec *naplet.Record, source string) {
	select {
	case <-s.closed:
		return
	default:
	}
	s.emit("arrival", rec, source, s.name, "")
	s.wg.Add(1)
	defer s.wg.Done()
	s.lifecycle(rec, true, nil)
}

// lifecycle drives a resident naplet: optionally perform the pending
// arrival visit, then advance the itinerary until the naplet departs,
// completes, or traps.
func (s *Server) lifecycle(rec *naplet.Record, arrived bool, polOverride *monitor.Policy) {
	policy := s.cfg.MonitorPolicy
	if polOverride != nil {
		policy = *polOverride
	}
	g, err := s.mon.Admit(rec.ID, policy)
	if err != nil {
		s.trap(rec, fmt.Errorf("admit: %w", err))
		return
	}
	mb := s.msgr.CreateMailbox(rec.ID)

	behavior, err := s.reg.Instantiate(rec.Codebase)
	if err != nil {
		s.trap(rec, err)
		s.cleanup(rec, true)
		return
	}

	nctx := &naplet.Context{
		Server:    s.name,
		Record:    rec,
		Messenger: &meteredMessenger{inner: messenger.NewView(s.msgr, rec, mb), group: g},
		Services:  resource.NewView(s.res, &rec.Credential),
		Listener:  &listenerProxy{server: s, rec: rec},
		Clock:     naplet.ClockFunc(s.clock),
	}
	defer nctx.Services.(*resource.View).ReleaseAll()

	// Custom interrupt verbs reach the behaviour's OnInterrupt hook;
	// terminate/suspend/resume act inside the monitor.
	if intr, ok := behavior.(naplet.Interruptible); ok {
		g.SetInterruptHandler(func(msg naplet.Message) {
			_ = intr.OnInterrupt(nctx, msg)
		})
	}

	if arrived {
		s.dockResident(rec, dock.PhaseVisiting, "", "")
		if err := s.performVisit(g, nctx, behavior, rec.Pending); err != nil {
			if errors.Is(err, monitor.ErrEvacuated) {
				s.evacuateNaplet(s.reg.EvaluatorFor(rec.Codebase, nctx), rec)
				return
			}
			s.trap(rec, err)
			s.cleanup(rec, true)
			return
		}
		rec.Pending = itinerary.Visit{}
		rec.PendingAlts = nil
	}
	s.dockResident(rec, dock.PhaseResident, "", "")

	s.advance(g, nctx, behavior, rec)
}

// advance consumes itinerary decisions until departure or completion.
func (s *Server) advance(g *monitor.Group, nctx *naplet.Context, behavior naplet.Behavior, rec *naplet.Record) {
	ev := s.reg.EvaluatorFor(rec.Codebase, nctx)
	for {
		// Cooperative preemption point: a suspended naplet pauses here
		// between visits (and before departing); a terminated one traps;
		// an evacuated one (server draining) moves on.
		if err := g.Checkpoint(); err != nil {
			if errors.Is(err, monitor.ErrEvacuated) {
				s.evacuateNaplet(ev, rec)
				return
			}
			s.trap(rec, err)
			s.cleanup(rec, true)
			return
		}
		d, err := rec.Itin.Next(ev)
		if err != nil {
			s.trap(rec, err)
			s.cleanup(rec, true)
			return
		}
		switch d.Kind {
		case itinerary.DecisionDone:
			if dst, ok := behavior.(naplet.Destroyable); ok {
				dst.OnDestroy(nctx)
			}
			// Release residency before telling the owner: when WaitDone
			// returns, the footprints and traces are already final.
			s.cleanup(rec, true)
			s.emit("complete", rec, s.name, rec.Home, "")
			s.reportStatus(rec, manager.StatusCompleted, "")
			return

		case itinerary.DecisionFork:
			if err := s.forkAll(rec, d.Branches); err != nil {
				s.trap(rec, fmt.Errorf("fork: %w", err))
				s.cleanup(rec, true)
				return
			}

		case itinerary.DecisionVisit:
			if d.Visit.Server == s.name {
				// Revisit of the current server: perform it in place.
				if err := s.performVisit(g, nctx, behavior, d.Visit); err != nil {
					if errors.Is(err, monitor.ErrEvacuated) {
						s.evacuateNaplet(ev, rec)
						return
					}
					s.trap(rec, err)
					s.cleanup(rec, true)
					return
				}
				continue
			}
			if stop, ok := behavior.(naplet.Stoppable); ok {
				stop.OnStop(nctx)
			}
			rec.Pending = d.Visit
			rec.PendingAlts = d.Alternates
			tid := s.nav.NewTransferID()
			s.dockResident(rec, dock.PhaseDeparting, d.Visit.Server, tid)
			if err := s.dispatchWithRetryID(rec, d.Visit.Server, tid); err != nil {
				switch s.applyFailover(rec, d.Visit, d.Alternates, err) {
				case failoverContinue:
					// Rerouted: the itinerary was rewritten in place;
					// re-enter the decision loop as a resident.
					rec.Pending = itinerary.Visit{}
					rec.PendingAlts = nil
					s.dockResident(rec, dock.PhaseResident, "", "")
					continue
				case failoverDeparted:
					return
				}
				s.trap(rec, fmt.Errorf("dispatch to %s: %w", d.Visit.Server, err))
				s.cleanup(rec, true)
				return
			}
			s.departed(rec, d.Visit.Server)
			return
		}
	}
}

// failoverOutcome says how applyFailover disposed of a failed dispatch.
type failoverOutcome int

const (
	// failoverNone: policy does not apply; the caller traps the naplet.
	failoverNone failoverOutcome = iota
	// failoverContinue: the itinerary was rewritten; the caller re-enters
	// the decision loop at this server.
	failoverContinue
	// failoverDeparted: the naplet left (or ended) under the policy; the
	// caller just returns.
	failoverDeparted
)

// applyFailover reacts to a dispatch that exhausted its retry budget (or
// was refused) according to the naplet's failover policy.
func (s *Server) applyFailover(rec *naplet.Record, v itinerary.Visit, alts []*itinerary.Pattern, derr error) failoverOutcome {
	record := func(policy string) {
		rec.Log.RecordReroute(naplet.Reroute{
			Visit:  v.String(),
			Policy: policy,
			Detail: derr.Error(),
			At:     s.clock(),
		})
		s.failovers.Inc()
		s.emit("reroute", rec, s.name, v.Server, policy)
	}
	if errors.Is(derr, navigator.ErrTransferUnresolved) {
		// The transfer may have silently landed: the destination could
		// already be running this naplet. Rerouting the local copy would
		// fork it — two live copies touring the same itinerary — so no
		// failover policy applies. Hold (trap) this copy instead; the
		// owner observes the trap and relaunches under a fresh identity,
		// which can never collide with the maybe-alive copy.
		record("hold")
		return failoverNone
	}
	switch rec.Failover {
	case naplet.FailoverAlternates:
		// Replace the remaining itinerary with the Alt siblings the guard
		// evaluation did not choose; re-evaluation picks the first live
		// one. With no alternates left, degrade to skipping the visit.
		if len(alts) > 0 {
			record("alternate")
			if len(alts) == 1 {
				rec.Itin.Remaining = alts[0]
			} else {
				rec.Itin.Remaining = itinerary.Alt(alts...)
			}
			return failoverContinue
		}
		record("skip")
		return failoverContinue
	case naplet.FailoverSkip:
		// The itinerary already advanced past the visit when the decision
		// was taken; continuing the loop simply skips it.
		record("skip")
		return failoverContinue
	case naplet.FailoverHome:
		// Abandon the tour: nothing remains but returning to the home
		// server, where the itinerary completes.
		record("home")
		rec.Itin.Remaining = nil
		if rec.Home == s.name {
			return failoverContinue
		}
		rec.Pending = itinerary.Visit{}
		rec.PendingAlts = nil
		tid := s.nav.NewTransferID()
		s.dockResident(rec, dock.PhaseDeparting, rec.Home, tid)
		if err := s.dispatchWithRetryID(rec, rec.Home, tid); err != nil {
			s.trap(rec, fmt.Errorf("failover home to %s: %w", rec.Home, err))
			s.cleanup(rec, true)
			return failoverDeparted
		}
		s.departed(rec, rec.Home)
		return failoverDeparted
	default:
		return failoverNone
	}
}

// evacuateNaplet moves a naplet off a draining server: its next itinerary
// stop when that stop is elsewhere, otherwise its home server. A naplet
// already home with nothing left elsewhere ends here, reported as
// terminated by the evacuation.
func (s *Server) evacuateNaplet(ev itinerary.Evaluator, rec *naplet.Record) {
	interrupted := rec.Pending
	dest := ""
	if d, err := rec.Itin.Next(ev); err == nil && d.Kind == itinerary.DecisionVisit && d.Visit.Server != s.name {
		rec.Pending = d.Visit
		rec.PendingAlts = d.Alternates
		dest = d.Visit.Server
	}
	if dest == "" && rec.Home != s.name {
		// No onward stop: take refuge at home, abandoning what remains.
		rec.Itin.Remaining = nil
		rec.Pending = itinerary.Visit{}
		rec.PendingAlts = nil
		dest = rec.Home
	}
	if dest == "" {
		s.cleanup(rec, true)
		s.reportStatus(rec, manager.StatusTerminated, "evacuated: server draining")
		return
	}
	rec.Log.RecordReroute(naplet.Reroute{
		Visit:  interrupted.String(),
		Policy: "evacuate",
		Detail: fmt.Sprintf("server %s draining", s.name),
		At:     s.clock(),
	})
	s.failovers.Inc()
	s.emit("reroute", rec, s.name, dest, "evacuate")
	tid := s.nav.NewTransferID()
	s.dockResident(rec, dock.PhaseDeparting, dest, tid)
	if err := s.dispatchWithRetryID(rec, dest, tid); err != nil {
		s.trap(rec, fmt.Errorf("evacuate to %s: %w", dest, err))
		s.cleanup(rec, true)
		return
	}
	s.departed(rec, dest)
}

// departed releases a dispatched naplet's local residency: dock entry,
// mailbox (leftovers forwarded to the destination), monitor group, and the
// in-transit status report.
func (s *Server) departed(rec *naplet.Record, dest string) {
	s.dockRemove(rec.ID)
	left := s.msgr.CloseMailbox(rec.ID)
	if len(left) > 0 {
		fctx, fcancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = s.msgr.ForwardLeftovers(fctx, dest, left)
		fcancel()
	}
	s.mon.Remove(rec.ID)
	// Tell recent correspondents where the naplet went so their locator
	// caches refresh in place instead of chasing forwarding pointers.
	pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Second)
	s.msgr.PushMigration(pctx, rec.ID, dest)
	pcancel()
	s.emit("depart", rec, s.name, dest, "")
	s.reportStatus(rec, manager.StatusInTransit, "")
}

// dispatchWithRetryID migrates the naplet under the navigator's retry
// policy: exponential backoff with jitter, one transfer ID for the whole
// logical migration (the destination deduplicates replays after a lost
// acknowledgement), and fail-fast on policy refusals — the destination's
// decision is authoritative. The caller mints (and docks) the transfer ID
// so a crash mid-dispatch can replay under the same identity.
func (s *Server) dispatchWithRetryID(rec *naplet.Record, dest, tid string) error {
	pol := s.dispatchPolicy()
	// A naplet carrying a failover policy has somewhere to go when the
	// destination is presumed dead, so its dispatch consults the failure
	// detector and fails fast; one without rides the full retry budget.
	pol.FailFast = rec.Failover != naplet.FailoverNone
	_, err := s.nav.DispatchRetryID(context.Background(), rec, dest, tid, pol, s.closed)
	return err
}

// dispatchPolicy derives the migration backoff policy from the server
// config: DispatchBackoff when set, otherwise the legacy knobs. The
// legacy delay bounds the growth near the configured pacing so tight
// (millisecond-scale) test configurations don't balloon into
// multi-second sleeps.
func (s *Server) dispatchPolicy() navigator.Backoff {
	if s.cfg.DispatchBackoff != nil {
		pol := *s.cfg.DispatchBackoff
		if pol.Retries == 0 {
			pol.Retries = s.cfg.DispatchRetries
		}
		return pol
	}
	pol := navigator.Backoff{Retries: s.cfg.DispatchRetries}
	if d := s.cfg.DispatchRetryDelay; d > 0 {
		pol.Initial = d
		pol.Max = 16 * d
	}
	return pol
}

// performVisit runs one visit at this server: the business logic S
// (OnStart) followed by the itinerary-dependent post-action T.
func (s *Server) performVisit(g *monitor.Group, nctx *naplet.Context, behavior naplet.Behavior, v itinerary.Visit) error {
	err := g.Run(func(goctx context.Context) error {
		nctx.Cancel = goctx
		return behavior.OnStart(nctx)
	})
	if err != nil {
		return fmt.Errorf("onStart at %s: %w", s.name, err)
	}
	if v.Action == "" {
		return nil
	}
	act, err := s.reg.Action(nctx.Record.Codebase, v.Action)
	if err != nil {
		return err
	}
	err = g.Run(func(goctx context.Context) error {
		nctx.Cancel = goctx
		return act(nctx)
	})
	if err != nil {
		return fmt.Errorf("post-action %q at %s: %w", v.Action, s.name, err)
	}
	return nil
}

// forkAll spawns one clone per Par branch: heritage-extended IDs,
// re-signed credentials, cloned state, inherited books and logs, each
// branch as a clone's itinerary. Before any clone starts, every member of
// the fork — parent included — learns its siblings' identifiers and first
// destinations, so collective post-actions (the paper's DataComm, §3
// Examples 2–3) can synchronize the group without out-of-band setup.
func (s *Server) forkAll(rec *naplet.Record, branches []*itinerary.Pattern) error {
	if len(branches) == 0 {
		return nil
	}
	if err := s.sec.CheckClone(&rec.Credential); err != nil {
		return err
	}
	clones := make([]*naplet.Record, 0, len(branches))
	for _, branch := range branches {
		branchItin, err := itinerary.New(branch)
		if err != nil {
			return err
		}
		k := rec.NextCloneIndex()
		cloneID, err := rec.ID.Clone(k)
		if err != nil {
			return err
		}
		credential := cred.Credential{NapletID: cloneID, Codebase: rec.Codebase, Roles: rec.Credential.Roles}
		if s.cfg.KeyRing != nil {
			credential, err = s.cfg.KeyRing.Reissue(rec.Credential, cloneID)
			if err != nil {
				return err
			}
		}
		clone, err := rec.CloneFor(k, branchItin, credential)
		if err != nil {
			return err
		}
		clones = append(clones, clone)
	}

	// Cross-populate the address books: "the address book of a naplet can
	// be altered as the naplet grows" (§2.1). Hints are each member's
	// first destination (or this server for the parent).
	firstStop := func(r *naplet.Record) string {
		if r.Itin != nil && r.Itin.Remaining != nil {
			if servers := r.Itin.Remaining.Servers(); len(servers) > 0 {
				return servers[0]
			}
		}
		return s.name
	}
	group := append([]*naplet.Record{rec}, clones...)
	for _, member := range group {
		for _, peer := range group {
			if peer == member {
				continue
			}
			member.Book.Add(peer.ID, firstStop(peer))
		}
	}

	now := s.clock()
	for _, clone := range clones {
		s.mgr.RecordArrival(clone.ID, clone.Codebase, "clone:"+rec.ID.Key(), now)
		clone.Log.RecordArrival(s.name, now)
		s.nav.RegisterEvent(context.Background(), clone, directory.Arrival, s.name, "", now)
		s.msgr.CreateMailbox(clone.ID)
		clone := clone
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.lifecycle(clone, false, nil)
		}()
	}
	return nil
}

// trap handles an execution exception: the error is reported to the home
// manager and the naplet's life cycle ends here (§5.2: the monitor "sets
// traps for its execution exceptions").
func (s *Server) trap(rec *naplet.Record, err error) {
	s.emit("trap", rec, s.name, rec.Home, err.Error())
	s.reportStatus(rec, manager.StatusTrapped, err.Error())
}

// cleanup releases a naplet's local residency. When end is true the life
// cycle is over: the visit trace records the end so late messages error
// rather than forward.
func (s *Server) cleanup(rec *naplet.Record, end bool) {
	s.msgr.CloseMailbox(rec.ID)
	if end {
		s.mgr.RecordEnd(rec.ID, s.clock())
		s.dockRemove(rec.ID)
	}
	s.mon.Remove(rec.ID)
}

// reportStatus updates the naplet's home naplet-table, locally or over the
// fabric. Status reports matter to the owner (WaitDone blocks on them), so
// transient network failures are retried.
func (s *Server) reportStatus(rec *naplet.Record, st manager.Status, errText string) {
	if rec.Home == s.name {
		s.mgr.SetStatus(rec.ID, st, errText)
		return
	}
	body := ReportBody{NapletID: rec.ID, Kind: "status", Status: st, Err: errText}
	f, err := wire.NewFrame(wire.KindReport, "", "", &body)
	if err != nil {
		return
	}
	for attempt := 0; attempt < 20; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, err = s.node.Call(ctx, rec.Home, f)
		cancel()
		if err == nil {
			return
		}
		select {
		case <-time.After(2 * time.Millisecond):
		case <-s.closed:
			return
		}
	}
}

// meteredMessenger wraps the per-naplet messaging view with the monitor's
// network-bandwidth accounting (§5.2: the monitor tracks "consumed system
// resources including CPU time, memory size, and network bandwidth"). A
// naplet that exceeds its bandwidth budget is killed before the message
// leaves.
type meteredMessenger struct {
	inner naplet.MessengerAPI
	group *monitor.Group
}

// messageOverhead approximates per-message framing beyond the body.
const messageOverhead = 96

// Post implements naplet.MessengerAPI.
func (m *meteredMessenger) Post(ctx context.Context, to id.NapletID, subject string, body []byte) error {
	if err := m.group.ChargeBandwidth(int64(len(body)+len(subject)) + messageOverhead); err != nil {
		return err
	}
	return m.inner.Post(ctx, to, subject, body)
}

// Receive implements naplet.MessengerAPI.
func (m *meteredMessenger) Receive(ctx context.Context) (naplet.Message, error) {
	return m.inner.Receive(ctx)
}

// TryReceive implements naplet.MessengerAPI.
func (m *meteredMessenger) TryReceive() (naplet.Message, bool) {
	return m.inner.TryReceive()
}

// listenerProxy implements naplet.ListenerAPI: reports travel to the
// naplet's home manager, which dispatches to the owner's listener.
type listenerProxy struct {
	server *Server
	rec    *naplet.Record
}

// Report implements naplet.ListenerAPI.
func (p *listenerProxy) Report(ctx context.Context, body []byte) error {
	if p.rec.Home == p.server.name {
		p.server.mgr.Deliver(p.rec.ID, body)
		return nil
	}
	rb := ReportBody{NapletID: p.rec.ID, Kind: "result", Body: body}
	f, err := wire.NewFrame(wire.KindReport, "", "", &rb)
	if err != nil {
		return err
	}
	_, err = p.server.node.Call(ctx, p.rec.Home, f)
	return err
}
