package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/directory"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/monitor"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/security"
	"repro/internal/state"
)

// ---- test agents ----

// collector visits servers, appending each server name to its state, and
// reports the tour at the end of its life.
type collector struct{}

func (c *collector) OnStart(ctx *naplet.Context) error {
	var tour []string
	ctx.State().Load("tour", &tour)
	tour = append(tour, ctx.Server)
	return ctx.State().SetPrivate("tour", tour)
}

func (c *collector) OnDestroy(ctx *naplet.Context) {
	var tour []string
	ctx.State().Load("tour", &tour)
	body := []byte(strings.Join(tour, ","))
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, body)
}

// sleeper blocks until terminated or its visit times out.
type sleeper struct{}

func (s *sleeper) OnStart(ctx *naplet.Context) error {
	<-ctx.Cancel.Done()
	return ctx.Cancel.Err()
}

// panicker crashes on its second server.
type panicker struct{}

func (p *panicker) OnStart(ctx *naplet.Context) error {
	if ctx.Log().Len() >= 2 {
		panic("agent bug at " + ctx.Server)
	}
	return nil
}

// svcUser opens the "query" service channel and stores the reply.
type svcUser struct{}

func (u *svcUser) OnStart(ctx *naplet.Context) error {
	ch, err := ctx.Services.OpenChannel("query")
	if err != nil {
		return err
	}
	defer ch.Close()
	if err := ch.WriteLine("status"); err != nil {
		return err
	}
	line, err := ch.ReadLine()
	if err != nil {
		return err
	}
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return ctx.Listener.Report(rctx, []byte(ctx.Server+"="+line))
}

// searcher looks for a "treasure" open service; guard notFound continues
// the tour until it finds one.
type searcher struct{}

func (s *searcher) OnStart(ctx *naplet.Context) error {
	got, err := ctx.Services.CallOpen("treasure", nil)
	if err == nil && got == "yes" {
		ctx.State().SetPrivate("found", true)
		rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return ctx.Listener.Report(rctx, []byte("found at "+ctx.Server))
	}
	return nil
}

func newTestRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name:       "test.Collector",
		New:        func() naplet.Behavior { return &collector{} },
		BundleSize: 1024,
		Actions: map[string]registry.ActionFunc{
			"noop": func(ctx *naplet.Context) error { return nil },
		},
	})
	reg.MustRegister(&registry.Codebase{
		Name: "test.Sleeper",
		New:  func() naplet.Behavior { return &sleeper{} },
	})
	reg.MustRegister(&registry.Codebase{
		Name: "test.Panicker",
		New:  func() naplet.Behavior { return &panicker{} },
	})
	reg.MustRegister(&registry.Codebase{
		Name: "test.SvcUser",
		New:  func() naplet.Behavior { return &svcUser{} },
	})
	reg.MustRegister(&registry.Codebase{
		Name: "test.Searcher",
		New:  func() naplet.Behavior { return &searcher{} },
		Guards: map[string]registry.GuardFunc{
			"notFound": func(ctx *naplet.Context) (bool, error) {
				_, err := ctx.State().Get("found")
				return errors.Is(err, state.ErrNoSuchKey), nil
			},
		},
	})
	return reg
}

// space is a multi-server test naplet space.
type space struct {
	net     *netsim.Network
	reg     *registry.Registry
	servers map[string]*Server
	dir     *directory.Service
}

type spaceOpts struct {
	mode      locator.Mode
	directory bool
	reportHm  bool
	policy    *security.Policy
	ring      *cred.KeyRing
	monitor   monitor.Policy
	residents int
	// mutate, when set, adjusts each server's config before construction.
	mutate func(name string, cfg *Config)
}

func newSpace(t *testing.T, opts spaceOpts, names ...string) *space {
	t.Helper()
	sp := &space{
		net:     netsim.New(netsim.Config{}),
		reg:     newTestRegistry(t),
		servers: make(map[string]*Server),
	}
	dirAddr := ""
	if opts.directory {
		dirAddr = "dir"
		sp.dir = directory.NewService()
		if _, err := sp.dir.Serve(sp.net, "dir"); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		cfg := Config{
			Name:          name,
			Fabric:        sp.net,
			Registry:      sp.reg,
			KeyRing:       opts.ring,
			Policy:        opts.policy,
			LocatorMode:   opts.mode,
			DirectoryAddr: dirAddr,
			ReportHome:    opts.reportHm,
			MonitorPolicy: opts.monitor,
			MaxResidents:  opts.residents,
		}
		if opts.mutate != nil {
			opts.mutate(name, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp.servers[name] = srv
		t.Cleanup(func() { srv.Close() })
	}
	return sp
}

func waitDone(t *testing.T, s *Server, nid id.NapletID, want manager.Status) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		st2, errText, _ := s.Status(nid)
		t.Fatalf("status = %v (%v, err=%q), want %v", st, st2, errText, want)
	}
}

func TestSequentialTour(t *testing.T) {
	// Paper §3 Example 1: one agent visits the servers in sequence and
	// reports the accumulated results after the last visit.
	sp := newSpace(t, spaceOpts{}, "home", "s1", "s2", "s3")
	results := make(chan string, 1)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2", "s3"}, ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	select {
	case got := <-results:
		if got != "s1,s2,s3" {
			t.Fatalf("tour = %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no report received")
	}
	// Footprints: each visited server recorded the alien naplet.
	for _, name := range []string{"s1", "s2", "s3"} {
		fps := sp.servers[name].Manager().Footprints()
		if len(fps) != 1 || !fps[0].NapletID.Equal(nid) {
			t.Fatalf("%s footprints = %+v", name, fps)
		}
		if fps[0].LeftAt.IsZero() {
			t.Fatalf("%s footprint not closed", name)
		}
	}
	// No residents remain anywhere.
	for name, srv := range sp.servers {
		if srv.Manager().Resident() != 0 {
			t.Fatalf("%s still has residents", name)
		}
		if srv.Monitor().Resident() != 0 {
			t.Fatalf("%s monitor still has groups", name)
		}
	}
}

func TestParBroadcastClonesReportIndividually(t *testing.T) {
	// Paper §3 Example 2 / §6.2: a broadcast pattern spawns a child naplet
	// per server; "the spawned naplets will report their results
	// individually".
	sp := newSpace(t, spaceOpts{}, "home", "s1", "s2", "s3")
	var mu sync.Mutex
	var got []string
	done := make(chan struct{}, 3)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.ParVisits([]string{"s1", "s2", "s3"}, ""),
		Listener: func(r manager.Result) {
			mu.Lock()
			got = append(got, string(r.Body))
			mu.Unlock()
			done <- struct{}{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of 3 reports arrived", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	sort.Strings(got)
	want := []string{"s1", "s2", "s3"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("reports = %v", got)
		}
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
}

func TestParOfSeqExample3(t *testing.T) {
	// Paper §3 Example 3: par(seq(s0,s1), seq(s2,s3)) — two naplets, two
	// stops each.
	sp := newSpace(t, spaceOpts{}, "home", "s0", "s1", "s2", "s3")
	var mu sync.Mutex
	var tours []string
	done := make(chan struct{}, 2)
	_, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern: itinerary.Par(
			itinerary.SeqVisits([]string{"s0", "s1"}, ""),
			itinerary.SeqVisits([]string{"s2", "s3"}, ""),
		),
		Listener: func(r manager.Result) {
			mu.Lock()
			tours = append(tours, string(r.Body))
			mu.Unlock()
			done <- struct{}{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("missing tour report")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	sort.Strings(tours)
	if tours[0] != "s0,s1" || tours[1] != "s2,s3" {
		t.Fatalf("tours = %v", tours)
	}
}

func TestConditionalSearchStopsEarly(t *testing.T) {
	// §3: sequential search — all visits except the first are conditional;
	// the agent stops when the search completes.
	sp := newSpace(t, spaceOpts{}, "home", "s1", "s2", "s3", "s4")
	// Treasure lives on s2.
	for name, srv := range sp.servers {
		yes := name == "s2"
		srv.Resources().RegisterOpen("treasure", func(args []string) (string, error) {
			if yes {
				return "yes", nil
			}
			return "no", nil
		})
	}
	results := make(chan string, 1)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Searcher",
		Pattern:  itinerary.ConditionalTour([]string{"s1", "s2", "s3", "s4"}, "notFound", ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	select {
	case got := <-results:
		if got != "found at s2" {
			t.Fatalf("result = %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result")
	}
	// s3 and s4 must never have seen the naplet.
	for _, name := range []string{"s3", "s4"} {
		if len(sp.servers[name].Manager().Footprints()) != 0 {
			t.Fatalf("search did not stop before %s", name)
		}
	}
}

func TestPanicTrappedAndReportedHome(t *testing.T) {
	sp := newSpace(t, spaceOpts{}, "home", "s1", "s2")
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Panicker",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := sp.servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusTrapped {
		t.Fatalf("status = %v, want trapped", st)
	}
	_, errText, _ := sp.servers["home"].Status(nid)
	if !strings.Contains(errText, "agent bug") {
		t.Fatalf("trap error = %q", errText)
	}
	// The trapping server released everything.
	if sp.servers["s2"].Manager().Resident() != 0 {
		t.Fatal("trapped naplet still resident")
	}
}

func TestLandingDeniedByPolicy(t *testing.T) {
	ring := cred.NewKeyRing()
	ring.Register("czxu", []byte("k"))
	ring.Register("guest", []byte("g"))
	// s1 refuses landings from guest.
	policy := security.Policy{
		Rules: []security.Rule{
			{Principal: "owner:guest", Permissions: []security.Permission{security.PermLanding}, Effect: security.Deny},
			{Principal: "*", Permissions: []security.Permission{"*"}, Effect: security.Allow},
		},
	}
	sp := newSpace(t, spaceOpts{ring: ring, policy: &policy}, "home", "s1")

	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "guest",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := sp.servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusTrapped {
		t.Fatalf("status = %v, want trapped (landing denied)", st)
	}
	if sp.servers["s1"].Navigator().Stats().Refused == 0 {
		t.Fatal("s1 must have refused the landing")
	}
	// Authorized owner passes.
	nid2, _ := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	waitDone(t, sp.servers["home"], nid2, manager.StatusCompleted)
}

func TestServiceChannelDuringVisit(t *testing.T) {
	sp := newSpace(t, spaceOpts{}, "home", "s1")
	sp.servers["s1"].Resources().RegisterPrivileged("query", func() resource.PrivilegedService {
		return resource.ServiceFunc(func(ch *resource.ServerEnd) {
			for {
				line, err := ch.ReadLine()
				if err != nil {
					return
				}
				ch.WriteLine("ok:" + line)
			}
		})
	})
	results := make(chan string, 1)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.SvcUser",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	if got := <-results; got != "s1=ok:status" {
		t.Fatalf("service result = %q", got)
	}
	if sp.servers["s1"].Resources().Stats().ChannelsOpened != 1 {
		t.Fatal("channel accounting")
	}
}

func TestTerminateRemotely(t *testing.T) {
	sp := newSpace(t, spaceOpts{reportHm: true, mode: locator.ModeHome}, "home", "s1")
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Sleeper",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the sleeper to be resident at s1.
	deadline := time.Now().Add(5 * time.Second)
	for sp.servers["s1"].Manager().Resident() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never arrived at s1")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sp.servers["home"].Control(ctx, nid, naplet.ControlTerminate); err != nil {
		t.Fatal(err)
	}
	st, err := sp.servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusTrapped {
		t.Fatalf("status after terminate = %v", st)
	}
}

func TestMaxResidentsAdmission(t *testing.T) {
	sp := newSpace(t, spaceOpts{residents: 1}, "home", "s1")
	// First sleeper occupies s1.
	_, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Sleeper",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sp.servers["s1"].Manager().Resident() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first naplet never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Second naplet is refused: at capacity.
	nid2, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, _ := sp.servers["home"].WaitDone(ctx, nid2)
	if st != manager.StatusTrapped {
		t.Fatalf("status = %v, want trapped (capacity)", st)
	}
}

func TestLazyCodeLoadingCache(t *testing.T) {
	sp := newSpace(t, spaceOpts{}, "home", "s1")
	launch := func() id.NapletID {
		nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
			Owner:    "czxu",
			Codebase: "test.Collector",
			Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
		})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
		return nid
	}
	launch()
	s1 := sp.servers["s1"].Cache().Stats()
	if s1.Misses == 0 || s1.BytesFetched != 1024 {
		t.Fatalf("first visit must fetch the 1 KiB bundle: %+v", s1)
	}
	launch()
	s2 := sp.servers["s1"].Cache().Stats()
	if s2.BytesFetched != s1.BytesFetched {
		t.Fatalf("second visit must not refetch: %+v", s2)
	}
	if s2.Hits == s1.Hits {
		t.Fatal("second visit must hit the cache")
	}
	if sp.servers["home"].Navigator().Stats().CodePushed != 1 {
		t.Fatalf("push count: %+v", sp.servers["home"].Navigator().Stats())
	}
}

func TestDirectoryModeTracksNaplet(t *testing.T) {
	sp := newSpace(t, spaceOpts{mode: locator.ModeDirectory, directory: true}, "home", "s1", "s2")
	results := make(chan string, 1)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2"}, ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	<-results
	// The directory saw arrivals and departures for the whole tour.
	cnode := sp.servers["home"].Node()
	entry, err := directory.NewClient(cnode, "dir").Lookup(context.Background(), nid)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Server != "s2" {
		t.Fatalf("directory last entry = %+v", entry)
	}
}

func TestRevisitSameServer(t *testing.T) {
	// seq(s1, s1) runs the visit twice without a network dispatch.
	sp := newSpace(t, spaceOpts{}, "home", "s1")
	results := make(chan string, 1)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s1"}, ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	if got := <-results; got != "s1,s1" {
		t.Fatalf("tour = %q", got)
	}
}

func TestHomeInItineraryExecutesLocally(t *testing.T) {
	sp := newSpace(t, spaceOpts{}, "home", "s1")
	results := make(chan string, 1)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"home", "s1", "home"}, ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	if got := <-results; got != "home,s1,home" {
		t.Fatalf("tour = %q", got)
	}
}

func TestLaunchValidation(t *testing.T) {
	sp := newSpace(t, spaceOpts{}, "home")
	ctx := context.Background()
	if _, err := sp.servers["home"].Launch(ctx, LaunchOptions{Codebase: "x", Pattern: itinerary.SeqVisits([]string{"s"}, "")}); err == nil {
		t.Fatal("missing owner must fail")
	}
	if _, err := sp.servers["home"].Launch(ctx, LaunchOptions{Owner: "u", Codebase: "ghost", Pattern: itinerary.SeqVisits([]string{"s"}, "")}); err == nil {
		t.Fatal("unknown codebase must fail")
	}
	if _, err := sp.servers["home"].Launch(ctx, LaunchOptions{Owner: "u", Codebase: "test.Collector", Pattern: itinerary.Seq()}); err == nil {
		t.Fatal("invalid itinerary must fail")
	}
	ring := cred.NewKeyRing()
	sp2 := newSpace(t, spaceOpts{ring: ring}, "home2")
	if _, err := sp2.servers["home2"].Launch(ctx, LaunchOptions{Owner: "nokey", Codebase: "test.Collector", Pattern: itinerary.SeqVisits([]string{"home2"}, "")}); err == nil {
		t.Fatal("launch without a signing key must fail when a ring is configured")
	}
}

func TestNavigationLogTravelsWithNaplet(t *testing.T) {
	sp := newSpace(t, spaceOpts{}, "home", "s1", "s2")
	type logReport struct {
		route string
	}
	_ = logReport{}
	results := make(chan string, 1)
	sp.reg.MustRegister(&registry.Codebase{
		Name: "test.LogReporter",
		New: func() naplet.Behavior {
			return behaviorFunc(func(ctx *naplet.Context) error {
				if ctx.Server == "s2" {
					rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					defer cancel()
					return ctx.Listener.Report(rctx, []byte(ctx.Log().String()))
				}
				return nil
			})
		},
	})
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.LogReporter",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2"}, ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	got := <-results
	if got != "home -> s1 -> s2" {
		t.Fatalf("navigation log route = %q", got)
	}
}

// behaviorFunc adapts a function to naplet.Behavior for test agents.
type behaviorFunc func(ctx *naplet.Context) error

func (f behaviorFunc) OnStart(ctx *naplet.Context) error { return f(ctx) }

func TestVisitWallTimeLimitTrapsSleeper(t *testing.T) {
	sp := newSpace(t, spaceOpts{monitor: monitor.Policy{MaxWallTime: 50 * time.Millisecond}}, "home", "s1")
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Sleeper",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := sp.servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusTrapped {
		t.Fatalf("status = %v, want trapped by wall-time policy", st)
	}
}

func TestInterAgentMessagingAcrossSpace(t *testing.T) {
	// Two long-lived agents exchange a message through the post office
	// while resident on different servers.
	sp := newSpace(t, spaceOpts{reportHm: true, mode: locator.ModeHome}, "home", "s1", "s2")

	gotMsg := make(chan string, 1)
	sp.reg.MustRegister(&registry.Codebase{
		Name: "test.Receiver",
		New: func() naplet.Behavior {
			return behaviorFunc(func(ctx *naplet.Context) error {
				rctx, cancel := context.WithTimeout(ctx.Cancel, 8*time.Second)
				defer cancel()
				msg, err := ctx.Messenger.Receive(rctx)
				if err != nil {
					return err
				}
				gotMsg <- string(msg.Body)
				return nil
			})
		},
	})
	recvID, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "bob",
		Codebase: "test.Receiver",
		Pattern:  itinerary.SeqVisits([]string{"s2"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}

	sp.reg.MustRegister(&registry.Codebase{
		Name: "test.Sender",
		New: func() naplet.Behavior {
			return behaviorFunc(func(ctx *naplet.Context) error {
				ctx.AddressBook().Add(recvID, "s2")
				sctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
				defer cancel()
				return ctx.Messenger.Post(sctx, recvID, "hi", []byte("hello from "+ctx.Server))
			})
		},
	})
	// Wait until the receiver is resident at s2 so the hint is fresh.
	deadline := time.Now().Add(5 * time.Second)
	for sp.servers["s2"].Manager().Resident() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("receiver never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sendID, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "alice",
		Codebase: "test.Sender",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-gotMsg:
		if got != "hello from s1" {
			t.Fatalf("message = %q", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("message never delivered")
	}
	waitDone(t, sp.servers["home"], sendID, manager.StatusCompleted)
	waitDone(t, sp.servers["home"], recvID, manager.StatusCompleted)
}

func TestParSiblingsKnowEachOther(t *testing.T) {
	// Forking a Par itinerary cross-populates the clones' address books so
	// collective post-actions work (§2.1: the book "can be altered as the
	// naplet grows" and "inherited in naplet clone").
	var mu sync.Mutex
	books := map[string]int{}
	sp2 := newSpace(t, spaceOpts{}, "home", "s1", "s2", "s3")
	sp2.reg.MustRegister(&registry.Codebase{
		Name: "test.BookInspector",
		New: func() naplet.Behavior {
			return behaviorFunc(func(ctx *naplet.Context) error {
				mu.Lock()
				books[ctx.NapletID().Key()] = ctx.AddressBook().Len()
				mu.Unlock()
				rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				return ctx.Listener.Report(rctx, []byte("ok"))
			})
		},
	})
	done := make(chan struct{}, 3)
	_, err := sp2.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.BookInspector",
		Pattern:  itinerary.ParVisits([]string{"s1", "s2", "s3"}, ""),
		Listener: func(manager.Result) { done <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("missing report")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(books) != 3 {
		t.Fatalf("agents seen: %v", books)
	}
	// 3-way fork: parent + 2 clones; each knows the other 2.
	for nid, n := range books {
		if n != 2 {
			t.Fatalf("agent %s book size = %d, want 2", nid, n)
		}
	}
}

func TestDataCommSynchronizesCloneGroup(t *testing.T) {
	// The paper's Example 3: par(seq(s0,s1), seq(s2,s3)) with a DataComm
	// post-action after every visit. Both agents must complete two
	// exchange rounds, each receiving one message per sibling per round.
	sp := newSpace(t, spaceOpts{reportHm: true, mode: locator.ModeHome}, "home", "s0", "s1", "s2", "s3")
	var mu sync.Mutex
	rounds := map[string]int{}
	sp.reg.MustRegister(&registry.Codebase{
		Name: "test.SyncWorker",
		New: func() naplet.Behavior {
			return behaviorFunc(func(ctx *naplet.Context) error { return nil })
		},
		Actions: map[string]registry.ActionFunc{
			"DataComm": func(ctx *naplet.Context) error {
				msgs, err := naplet.AllExchange(ctx, "sync", []byte(ctx.Server))
				if err != nil {
					return err
				}
				if len(msgs) != ctx.AddressBook().Len() {
					return fmt.Errorf("got %d messages, book has %d", len(msgs), ctx.AddressBook().Len())
				}
				mu.Lock()
				rounds[ctx.NapletID().Key()]++
				mu.Unlock()
				return nil
			},
		},
	})
	done := make(chan struct{}, 2)
	_, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.SyncWorker",
		Pattern: itinerary.Par(
			itinerary.SeqVisits([]string{"s0", "s1"}, "DataComm"),
			itinerary.SeqVisits([]string{"s2", "s3"}, "DataComm"),
		),
		Listener: func(manager.Result) { done <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	// SyncWorker has no OnDestroy report; wait for completion via status.
	// Track completion via per-agent round counts instead.
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		total := 0
		agents := len(rounds)
		for _, r := range rounds {
			total += r
		}
		mu.Unlock()
		if agents == 2 && total == 4 {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("rounds = %v", rounds)
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for nid, r := range rounds {
		if r != 2 {
			t.Fatalf("agent %s completed %d rounds, want 2", nid, r)
		}
	}
}

func TestAltItineraryThroughEngine(t *testing.T) {
	// alt(P, Q) carried through the full engine: the guard on P's first
	// visit decides which branch the naplet takes (§3).
	sp := newSpace(t, spaceOpts{}, "home", "fast", "slow")
	sp.reg.MustRegister(&registry.Codebase{
		Name: "test.AltRunner",
		New: func() naplet.Behavior {
			return behaviorFunc(func(ctx *naplet.Context) error { return nil })
		},
		Guards: map[string]registry.GuardFunc{
			"preferFast": func(ctx *naplet.Context) (bool, error) {
				var prefer bool
				err := ctx.State().Load("preferFast", &prefer)
				return prefer, err
			},
		},
	})
	run := func(prefer bool) string {
		pattern := itinerary.Alt(
			itinerary.Singleton(itinerary.Visit{Server: "fast", Guard: "preferFast"}),
			itinerary.Singleton(itinerary.Visit{Server: "slow"}),
		)
		nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
			Owner:    "czxu",
			Codebase: "test.AltRunner",
			Pattern:  pattern,
			InitState: func(s *state.State) error {
				return s.SetPrivate("preferFast", prefer)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
		// Which server was visited?
		tr := sp.servers["fast"].Manager().TraceNaplet(nid)
		if tr.Known {
			return "fast"
		}
		if sp.servers["slow"].Manager().TraceNaplet(nid).Known {
			return "slow"
		}
		return "none"
	}
	if got := run(true); got != "fast" {
		t.Fatalf("guard true -> %q, want fast", got)
	}
	if got := run(false); got != "slow" {
		t.Fatalf("guard false -> %q, want slow", got)
	}
}

// stopTracker counts OnStop invocations (the paper's onStop() hook runs
// when the naplet departs a server after a completed visit).
type stopTracker struct{ stops *atomicCounter }

func (s stopTracker) OnStart(ctx *naplet.Context) error { return nil }
func (s stopTracker) OnStop(ctx *naplet.Context)        { s.stops.add(ctx.Server) }

type atomicCounter struct {
	mu    sync.Mutex
	calls []string
}

func (c *atomicCounter) add(s string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls = append(c.calls, s)
}

func (c *atomicCounter) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.calls...)
}

func TestOnStopHookRunsPerDeparture(t *testing.T) {
	sp := newSpace(t, spaceOpts{}, "home", "s1", "s2", "s3")
	counter := &atomicCounter{}
	sp.reg.MustRegister(&registry.Codebase{
		Name: "test.Stopper",
		New:  func() naplet.Behavior { return stopTracker{stops: counter} },
	})
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Stopper",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2", "s3"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	// OnStop fires before each dispatch: home->s1, s1->s2, s2->s3; the
	// final completion at s3 destroys rather than stops.
	calls := counter.snapshot()
	want := []string{"home", "s1", "s2"}
	if len(calls) != len(want) {
		t.Fatalf("OnStop calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("OnStop order = %v, want %v", calls, want)
		}
	}
}

// callbackAgent reacts to custom callback interrupts by recording them.
type callbackAgent struct{ got chan string }

func (c callbackAgent) OnStart(ctx *naplet.Context) error {
	select {
	case <-time.After(2 * time.Second):
		return fmt.Errorf("never interrupted")
	case <-ctx.Cancel.Done():
		return ctx.Cancel.Err()
	case s := <-c.got:
		c.got <- s // put back for the assertion
		return nil
	}
}

func (c callbackAgent) OnInterrupt(ctx *naplet.Context, msg naplet.Message) error {
	c.got <- string(msg.Control) + "@" + ctx.Server
	return nil
}

func TestCallbackInterruptReachesBehavior(t *testing.T) {
	// §2.2: "the agent behavior can also be remotely controlled by its
	// creator via onInterrupt()". A custom callback verb must reach the
	// behaviour's hook at whatever server the agent occupies.
	sp := newSpace(t, spaceOpts{reportHm: true, mode: locator.ModeHome}, "home", "s1")
	got := make(chan string, 2)
	sp.reg.MustRegister(&registry.Codebase{
		Name: "test.Callback",
		New:  func() naplet.Behavior { return callbackAgent{got: got} },
	})
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Callback",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until resident at s1, then cast the callback.
	deadline := time.Now().Add(5 * time.Second)
	for sp.servers["s1"].Manager().Resident() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("agent never arrived")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sp.servers["home"].Control(ctx, nid, naplet.ControlCallback); err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	select {
	case s := <-got:
		if s != "callback@s1" {
			t.Fatalf("interrupt = %q", s)
		}
	default:
		t.Fatal("OnInterrupt never invoked")
	}
}
