package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/messenger"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// TestChaosOverloadSeeds runs the chaos tour/message workload with the
// whole overload stack live — admission gates, per-peer breakers wired
// to the health detector, and retry budgets — while the injector
// synthesizes typed overload sheds on top of the usual drop/duplicate
// mix. The invariants:
//
//  1. synthesized sheds are transient: every tour still lands exactly
//     once and every confirmed message is delivered exactly once;
//  2. every injected shed is accounted: trail == counts == telemetry
//     for FaultOverload (and every other fault kind);
//  3. every server's admission gate balances its books: arrivals ==
//     admitted + shed per class, with the shared telemetry counters
//     agreeing with the summed gate stats;
//  4. overload sheds are proof of life, so the breakers — live on every
//     retry path throughout — never open.
//
// Reproduce one seed with -chaos.seed, as with TestChaosSeeds.
func TestChaosOverloadSeeds(t *testing.T) {
	seeds := chaosSeeds
	if *chaosSeed != 0 {
		seeds = []int64{*chaosSeed}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosOverload(t, seed)
		})
	}
}

func runChaosOverload(t *testing.T, seed int64) {
	t.Helper()
	reg := telemetry.NewRegistry()
	inj := fault.New(fault.Config{
		Seed: seed,
		P: fault.Probabilities{
			DropRequest: 0.05,
			DropReply:   0.04,
			Duplicate:   0.05,
			Overload:    0.08, // synthesized admission-gate sheds
		},
		Kinds:     func(k wire.Kind) bool { return k != wire.KindReport },
		Telemetry: reg,
	})
	net := netsim.New(netsim.Config{})
	codebases := newTestRegistry(t)

	// The stack is live but sized so only the injector sheds: the suite
	// proves typed sheds are survivable and accounted, not that the gate
	// sheds its own traffic (the loadgen overload profile proves that).
	// The breaker threshold sits above any consecutive-failure streak a
	// drop mix at these rates can produce, and the retry budget earns a
	// full token per attempt so the crash-bridging retry schedules the
	// chaos suites depend on stay intact.
	overloadOpts := func() *overload.Options {
		return &overload.Options{
			MaxInFlight:     64,
			MaxQueue:        128,
			MaxWait:         5 * time.Second,
			BreakerFailures: 1 << 20,
			RetryRatio:      1,
			RetryBurst:      1 << 20,
		}
	}

	names := []string{"home", "s1", "s2", "s3"}
	servers := make(map[string]*Server)
	for _, name := range names {
		srv, err := New(Config{
			Name:               name,
			Fabric:             inj.Fabric(net),
			Registry:           codebases,
			Telemetry:          reg,
			Overload:           overloadOpts(),
			DispatchRetries:    200,
			DispatchRetryDelay: 200 * time.Microsecond,
			Messenger: messenger.Config{
				SendRetries: 8,
				RetryDelay:  200 * time.Microsecond,
				Telemetry:   reg,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[name] = srv
	}

	rid := id.MustNew("rx", "s1", time.Now())
	servers["s1"].mgr.RecordArrival(rid, "test.Collector", "home", time.Now())
	mb := servers["s1"].Messenger().CreateMailbox(rid)
	sender := naplet.NewRecord(id.MustNew("tx", "home", time.Now()),
		cred.Credential{}, "test.Collector", "home", nil)
	sender.Book.Add(rid, "s1")

	const naplets = 3
	tour := []string{"s1", "s2", "s3"}
	reports := make(chan string, naplets*2)
	var nids []id.NapletID
	for i := 0; i < naplets; i++ {
		nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
			Owner:    "czxu",
			Codebase: "test.Collector",
			Pattern:  itinerary.SeqVisits(tour, ""),
			Listener: func(r manager.Result) { reports <- string(r.Body) },
		})
		if err != nil {
			t.Fatal(err)
		}
		nids = append(nids, nid)
	}

	const posts = 40
	confirmed := make(map[string]bool, posts)
	for i := 0; i < posts; i++ {
		subject := fmt.Sprintf("m%02d", i)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := servers["home"].Messenger().Post(ctx, sender, rid, subject, []byte(subject))
		cancel()
		if err == nil {
			confirmed[subject] = true
		}
	}

	// Invariant 1: exactly-once tours and reports, straight through the
	// synthesized sheds.
	for _, nid := range nids {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := servers["home"].WaitDone(ctx, nid)
		cancel()
		if err != nil {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: naplet %s did not finish: %v", seed, nid, err)
		}
		if st != manager.StatusCompleted {
			_, errText, _ := servers["home"].Status(nid)
			dumpTrail(t, inj)
			t.Fatalf("seed %d: naplet %s status = %v (%s)", seed, nid, st, errText)
		}
	}
	want := "s1,s2,s3"
	for i := 0; i < naplets; i++ {
		select {
		case got := <-reports:
			if got != want {
				dumpTrail(t, inj)
				t.Fatalf("seed %d: tour = %q, want %q", seed, got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("seed %d: only %d of %d reports arrived", seed, i, naplets)
		}
	}
	select {
	case extra := <-reports:
		dumpTrail(t, inj)
		t.Fatalf("seed %d: duplicate report %q — a naplet landed twice", seed, extra)
	default:
	}

	got := make(map[string]int, posts)
	for {
		msg, ok := mb.TryReceive()
		if !ok {
			break
		}
		got[msg.Subject]++
	}
	for subject, n := range got {
		if n > 1 {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: message %q delivered %d times", seed, subject, n)
		}
	}
	for subject := range confirmed {
		if got[subject] != 1 {
			dumpTrail(t, inj)
			t.Fatalf("seed %d: confirmed message %q delivered %d times, want 1",
				seed, subject, got[subject])
		}
	}

	// Invariant 2: the fault ledger reconciles three ways, and the
	// overload scenario actually fired.
	if dropped := inj.TrailDropped(); dropped != 0 {
		t.Fatalf("seed %d: trail overflowed (%d dropped); raise MaxTrail", seed, dropped)
	}
	tally := make(map[string]int64)
	for _, ev := range inj.Trail() {
		tally[ev.Fault]++
	}
	counts := inj.Counts()
	if counts[fault.FaultOverload] == 0 {
		t.Fatalf("seed %d: no overload sheds injected — the scenario never fired", seed)
	}
	for kind, n := range counts {
		if tally[kind] != n {
			t.Fatalf("seed %d: %s: trail=%d counts=%d", seed, kind, tally[kind], n)
		}
		met := reg.Counter("naplet_fault_injected_total",
			"faults injected by the chaos harness", "fault", kind)
		if met.Value() != n {
			t.Fatalf("seed %d: %s: telemetry=%d counts=%d", seed, kind, met.Value(), n)
		}
	}

	// Invariant 3: every gate balances its books once in-flight work
	// drains (polled: handlers observe completion asynchronously).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if gatesBalanced(servers) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var sum overload.GateStats
	sum.Shed = make(map[string]int64)
	for name, srv := range servers {
		st := srv.OverloadGate().Stats()
		if st.BulkArrivals != st.BulkAdmitted+st.TotalShed() {
			t.Fatalf("seed %d: %s gate leak: bulk arrivals %d != admitted %d + shed %d",
				seed, name, st.BulkArrivals, st.BulkAdmitted, st.TotalShed())
		}
		if st.ControlArrivals != st.ControlAdmitted {
			t.Fatalf("seed %d: %s shed control traffic: %+v", seed, name, st)
		}
		sum.ControlAdmitted += st.ControlAdmitted
		sum.BulkAdmitted += st.BulkAdmitted
		for r, n := range st.Shed {
			sum.Shed[r] += n
		}
	}
	for class, want := range map[overload.Class]int64{
		overload.ClassControl: sum.ControlAdmitted,
		overload.ClassBulk:    sum.BulkAdmitted,
	} {
		met := reg.Counter("naplet_overload_admitted_total",
			"requests admitted by the gate", "class", class.String())
		if met.Value() != want {
			t.Fatalf("seed %d: admitted %s: telemetry=%d gates=%d", seed, class, met.Value(), want)
		}
	}
	for _, reason := range overload.ShedReasons {
		met := reg.Counter("naplet_overload_shed_total",
			"requests shed by the admission gate",
			"class", overload.ClassBulk.String(), "reason", reason)
		if met.Value() != sum.Shed[reason] {
			t.Fatalf("seed %d: shed %s: telemetry=%d gates=%d", seed, reason, met.Value(), sum.Shed[reason])
		}
	}

	// Invariant 4: typed sheds fed the breakers proof of life, never
	// failure — nothing opened across the whole run.
	for name, srv := range servers {
		if opened := srv.Breakers().Stats().TotalOpened(); opened != 0 {
			t.Fatalf("seed %d: %s opened breakers %d times on overload sheds", seed, name, opened)
		}
	}
}

// gatesBalanced reports whether every server's gate has drained and its
// arrival ledger balances.
func gatesBalanced(servers map[string]*Server) bool {
	for _, srv := range servers {
		st := srv.OverloadGate().Stats()
		if st.InFlight != 0 || st.Queued != 0 {
			return false
		}
		if st.BulkArrivals != st.BulkAdmitted+st.TotalShed() {
			return false
		}
		if st.ControlArrivals != st.ControlAdmitted {
			return false
		}
	}
	return true
}
