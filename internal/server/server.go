// Package server composes the seven components of Figure 2 into a
// NapletServer: NapletManager, Navigator, NapletMonitor,
// NapletSecurityManager, ResourceManager, Messenger, and Locator, plus the
// dynamically created ServiceChannels.
//
// A NapletServer is "a dock of naplets within a Java virtual machine"
// (here: within a process) that "executes naplets in confined environments
// and makes host resources available to them in a controlled manner". Each
// host installs at most one naplet server; servers run autonomously and
// cooperatively to form the naplet space.
//
// The server also hosts the visit engine (engine.go) that drives each
// resident naplet through its itinerary: OnStart, post-action, next
// decision, dispatch or clone or complete.
package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cred"
	"repro/internal/directory"
	"repro/internal/directory/shard"
	"repro/internal/dock"
	"repro/internal/health"
	"repro/internal/id"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/messenger"
	"repro/internal/monitor"
	"repro/internal/naplet"
	"repro/internal/navigator"
	"repro/internal/overload"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/security"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config assembles a naplet server.
type Config struct {
	// Name is the server's address in the fabric (its host name).
	Name string
	// Fabric is the network the server attaches to.
	Fabric transport.Fabric
	// Registry is the codebase registry (shared, in-process).
	Registry *registry.Registry
	// KeyRing verifies naplet credentials; nil skips signature checks.
	KeyRing *cred.KeyRing
	// Policy is the security matrix; nil means AllowAll.
	Policy *security.Policy
	// LocatorMode selects directory / home / forward location.
	LocatorMode locator.Mode
	// LocatorTTL bounds the locator cache; 0 disables caching.
	LocatorTTL time.Duration
	// DirectoryAddr is the central directory address (required for
	// ModeDirectory; also receives arrival/departure registrations).
	DirectoryAddr string
	// DirectoryAddrs, when set, names the nodes of a sharded, replicated
	// directory plane and takes precedence over DirectoryAddr. With more
	// than one node the server routes registrations and lookups by
	// rendezvous hashing over the NapletID's owner/home prefix, writing
	// through to DirReplicas replicas per shard and failing lookups over
	// on health signals.
	DirectoryAddrs []string
	// DirReplicas is the replica-group size per shard (default 2, clamped
	// to the node count). Meaningful only with DirectoryAddrs.
	DirReplicas int
	// ReportHome sends arrival/departure events to each naplet's home
	// manager (the distributed directory of §4.1).
	ReportHome bool
	// CodeDelivery selects push or pull code-bundle transport.
	CodeDelivery navigator.CodeDelivery
	// Slots bounds concurrently executing naplets; ≤0 means unlimited.
	Slots int
	// MonitorPolicy is the default per-naplet resource policy.
	MonitorPolicy monitor.Policy
	// MaxResidents refuses landings beyond this many resident naplets;
	// 0 means unlimited.
	MaxResidents int
	// Messenger configures the post office.
	Messenger messenger.Config
	// DispatchRetries re-attempts a failed migration this many times
	// before trapping the naplet (transient network loss tolerance).
	DispatchRetries int
	// DispatchRetryDelay is the initial backoff between attempts; it
	// grows exponentially, capped at 16x (defaults to the navigator's
	// backoff policy defaults when unset).
	DispatchRetryDelay time.Duration
	// DispatchBackoff overrides the full migration retry policy; when
	// set it takes precedence over DispatchRetryDelay (a zero Retries
	// field inherits DispatchRetries).
	DispatchBackoff *navigator.Backoff
	// Clock is the server time source; nil means time.Now.
	Clock func() time.Time
	// Telemetry collects every component's metrics; nil creates a
	// per-server registry (retrievable via Server.Telemetry).
	Telemetry *telemetry.Registry
	// Tracer records one span per migration hop; nil creates a per-server
	// tracer (retrievable via Server.Tracer).
	Tracer *telemetry.HopTracer
	// Health is the peer failure detector consulted by the dispatch
	// path; supply one to control thresholds or the probe clock. Nil
	// builds a default detector on the server clock.
	Health *health.Detector
	// Overload, when non-nil, switches on the overload-resilience stack:
	// a two-class admission gate fronting the frame handler (control
	// traffic is never queued behind bulk migrations and mail), per-peer
	// circuit breakers wired into the health detector, and retry budgets
	// for the navigator's and messenger's retry loops. Nil disables the
	// whole stack — every request is admitted, every retry allowed.
	Overload *overload.Options
	// Dock, when non-nil, persists resident naplets, held mail and home
	// registrations across restarts: the server snapshots to it at every
	// state-changing point and restores from it on construction.
	Dock *dock.Store
}

// Server is one naplet server: a dock of naplets on a host.
type Server struct {
	cfg   Config
	name  string
	node  transport.Node
	clock func() time.Time

	reg       *registry.Registry
	cache     *registry.Cache
	sec       *security.Manager
	res       *resource.Manager
	mon       *monitor.Monitor
	mgr       *manager.Manager
	loc       *locator.Locator
	msgr      *messenger.Messenger
	nav       *navigator.Navigator
	dir       directory.Directory
	telem     *telemetry.Registry
	tracer    *telemetry.HopTracer
	hd        *health.Detector
	gate      *overload.Gate
	brk       *overload.Breakers
	failovers *telemetry.Counter

	mintMu sync.Mutex
	minted map[string]time.Time

	dockMu      sync.Mutex
	dockStore   *dock.Store
	dockEntries map[string]*dock.Resident

	sinkMu sync.RWMutex
	sink   func(Event)

	draining atomic.Bool

	wg     sync.WaitGroup
	ready  chan struct{}
	closed chan struct{}
}

// New builds and attaches a naplet server.
func New(cfg Config) (*Server, error) {
	if cfg.Name == "" {
		return nil, errors.New("server: missing name")
	}
	if cfg.Fabric == nil {
		return nil, errors.New("server: missing fabric")
	}
	if cfg.Registry == nil {
		return nil, errors.New("server: missing registry")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	policy := security.AllowAll
	if cfg.Policy != nil {
		policy = *cfg.Policy
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.NewHopTracer(0)
	}

	hd := cfg.Health
	if hd == nil {
		hd = health.New(health.Config{Clock: clock, Telemetry: cfg.Telemetry})
	}

	// The overload stack is all-or-nothing: one Options bundle builds the
	// admission gate, the per-peer breakers (sharing the health detector,
	// so breaker state and failure suspicion reinforce each other), and a
	// retry budget per retrying component.
	var gate *overload.Gate
	var brk *overload.Breakers
	var navBudget, msgrBudget *overload.RetryBudget
	if o := cfg.Overload; o != nil {
		gate = overload.NewGate(overload.GateConfig{
			MaxInFlight: o.MaxInFlight,
			MaxQueue:    o.MaxQueue,
			Target:      o.QueueTarget,
			Interval:    o.QueueInterval,
			MaxWait:     o.MaxWait,
			Clock:       clock,
			Telemetry:   cfg.Telemetry,
		})
		brk = overload.NewBreakers(overload.BreakerConfig{
			FailureThreshold: o.BreakerFailures,
			OpenFor:          o.BreakerOpenFor,
			HalfOpenProbes:   o.BreakerProbes,
			Clock:            clock,
			Health:           hd,
			Telemetry:        cfg.Telemetry,
		})
		navBudget = overload.NewRetryBudget(overload.RetryBudgetConfig{
			Ratio:     o.RetryRatio,
			Burst:     o.RetryBurst,
			Name:      "navigator",
			Telemetry: cfg.Telemetry,
		})
		msgrBudget = overload.NewRetryBudget(overload.RetryBudgetConfig{
			Ratio:     o.RetryRatio,
			Burst:     o.RetryBurst,
			Name:      "messenger",
			Telemetry: cfg.Telemetry,
		})
	}

	s := &Server{
		cfg:         cfg,
		clock:       clock,
		reg:         cfg.Registry,
		cache:       registry.NewCache(),
		telem:       cfg.Telemetry,
		tracer:      cfg.Tracer,
		hd:          hd,
		gate:        gate,
		brk:         brk,
		minted:      make(map[string]time.Time),
		dockStore:   cfg.Dock,
		dockEntries: make(map[string]*dock.Resident),
		ready:       make(chan struct{}),
		closed:      make(chan struct{}),
	}
	// Attach first: a TCP fabric resolves port 0 to a concrete address,
	// which then becomes the server's name throughout the component stack.
	node, err := cfg.Fabric.Attach(cfg.Name, s.handle)
	if err != nil {
		return nil, err
	}
	s.node = node
	s.name = node.Addr()

	s.sec = security.NewManager(cfg.KeyRing, policy, clock)
	s.res = resource.NewManager(s.sec)
	s.mon = monitor.New(cfg.Slots, clock)
	s.mon.Instrument(s.telem)
	s.mgr = manager.New(s.name, clock)
	s.telem.GaugeFunc("naplet_server_residents", "naplets currently resident at this server", func() float64 {
		return float64(s.mgr.Resident())
	})
	s.failovers = s.telem.Counter("naplet_server_failovers_total",
		"itinerary reroutes taken after a dead destination or evacuation")

	// One directory client for every component: a sharded, replicated
	// plane when several nodes are configured, a single-node client
	// otherwise. Built once; the locator, navigator, and shutdown path all
	// share it.
	dirAddrs := cfg.DirectoryAddrs
	if len(dirAddrs) == 0 && cfg.DirectoryAddr != "" {
		dirAddrs = []string{cfg.DirectoryAddr}
	}
	switch {
	case len(dirAddrs) > 1:
		s.dir = shard.New(node, shard.Config{
			Nodes:    dirAddrs,
			Replicas: cfg.DirReplicas,
			Health:   hd,
		})
	case len(dirAddrs) == 1:
		s.dir = directory.NewClient(node, dirAddrs[0])
	}

	s.loc = locator.New(locator.Config{
		Mode:      cfg.LocatorMode,
		Directory: s.dir,
		CacheTTL:  cfg.LocatorTTL,
		Telemetry: s.telem,
	}, node, s.mgr, clock)
	msgrCfg := cfg.Messenger
	msgrCfg.Telemetry = s.telem
	msgrCfg.Breakers = brk
	msgrCfg.RetryBudget = msgrBudget
	s.msgr = messenger.New(msgrCfg, s.name, node, s.loc, s.mgr, clock)
	s.nav = navigator.New(navigator.Config{
		CodeDelivery: cfg.CodeDelivery,
		Directory:    s.dir,
		ReportHome:   cfg.ReportHome,
		Telemetry:    s.telem,
		Tracer:       s.tracer,
		Health:       hd,
		Breakers:     brk,
		RetryBudget:  navBudget,
	}, s.name, node, s.sec, s.mgr, s.reg, s.cache, clock)

	s.nav.SetLandFunc(s.land)
	s.nav.SetAdmitFunc(func(req navigator.LandingRequestBody) error {
		if s.draining.Load() {
			return fmt.Errorf("server %s: draining, not accepting naplets", s.name)
		}
		if cfg.MaxResidents > 0 && s.mgr.Resident() >= cfg.MaxResidents {
			return fmt.Errorf("server %s: at capacity (%d residents)", s.name, cfg.MaxResidents)
		}
		return nil
	})
	if s.dockStore != nil {
		// Commit-before-ack: a landed naplet is on disk before the origin
		// hears "accepted" and releases its copy.
		s.nav.SetPersistFunc(func(rec *naplet.Record) {
			s.dockResident(rec, dock.PhaseVisiting, "", "")
		})
	}
	// System messages cast interrupts onto the resident naplet's group.
	s.msgr.SetInterruptSink(func(to id.NapletID, msg naplet.Message) bool {
		g, err := s.mon.Group(to)
		if err != nil {
			return false
		}
		g.Interrupt(msg)
		return true
	})
	close(s.ready)
	if s.dockStore != nil {
		if err := s.restoreFromDock(); err != nil {
			s.node.Close()
			return nil, err
		}
	}
	return s, nil
}

// Name returns the server's address.
func (s *Server) Name() string { return s.name }

// Node returns the server's fabric node.
func (s *Server) Node() transport.Node { return s.node }

// Manager returns the server's NapletManager.
func (s *Server) Manager() *manager.Manager { return s.mgr }

// Messenger returns the server's post office.
func (s *Server) Messenger() *messenger.Messenger { return s.msgr }

// Monitor returns the server's NapletMonitor.
func (s *Server) Monitor() *monitor.Monitor { return s.mon }

// Locator returns the server's Locator.
func (s *Server) Locator() *locator.Locator { return s.loc }

// Navigator returns the server's Navigator.
func (s *Server) Navigator() *navigator.Navigator { return s.nav }

// Directory returns the server's shared directory client (nil when no
// directory is configured). Sharded when several nodes were given.
func (s *Server) Directory() directory.Directory { return s.dir }

// Resources returns the server's ResourceManager.
func (s *Server) Resources() *resource.Manager { return s.res }

// Security returns the server's NapletSecurityManager.
func (s *Server) Security() *security.Manager { return s.sec }

// Cache returns the server's codebase cache.
func (s *Server) Cache() *registry.Cache { return s.cache }

// Telemetry returns the server's metrics registry.
func (s *Server) Telemetry() *telemetry.Registry { return s.telem }

// Tracer returns the server's migration hop tracer.
func (s *Server) Tracer() *telemetry.HopTracer { return s.tracer }

// Health returns the server's peer failure detector.
func (s *Server) Health() *health.Detector { return s.hd }

// OverloadGate returns the server's admission gate (nil when Config.Overload
// was nil).
func (s *Server) OverloadGate() *overload.Gate { return s.gate }

// Breakers returns the server's per-peer circuit breakers (nil when
// Config.Overload was nil).
func (s *Server) Breakers() *overload.Breakers { return s.brk }

// Draining reports whether the server has stopped accepting new work
// (Drain was called). A health endpoint should turn not-ready on this.
func (s *Server) Draining() bool { return s.draining.Load() }

// Event is one nav-log observation the server exports through the sink
// registered with SetEventSink: launches, arrivals, departures,
// completions, traps, and itinerary reroutes — the live counterpart of
// the NavigationLog entries the naplet itself carries.
type Event struct {
	// Kind is "launch", "arrival", "depart", "complete", "trap", or
	// "reroute".
	Kind string
	// Naplet is the subject naplet's identifier.
	Naplet string
	// Hop is the naplet's navigation-log length when the event fired.
	Hop int
	// From and To are the servers involved: the source and this server
	// for arrivals, this server and the destination for departures.
	From, To string
	// At is the server-clock event time.
	At time.Time
	// Detail carries the error text (traps), the failover policy
	// (reroutes), or the codebase (launches).
	Detail string
}

// SetEventSink registers a callback invoked with every nav-log event the
// visit engine produces. The sink runs on lifecycle goroutines and must
// not block; pass nil to detach. Registered after construction so the
// consumer (the fleet agent) can be wired to the already-attached node.
func (s *Server) SetEventSink(fn func(Event)) {
	s.sinkMu.Lock()
	s.sink = fn
	s.sinkMu.Unlock()
}

// emit hands one nav-log event to the registered sink, if any.
func (s *Server) emit(kind string, rec *naplet.Record, from, to, detail string) {
	s.sinkMu.RLock()
	sink := s.sink
	s.sinkMu.RUnlock()
	if sink == nil {
		return
	}
	sink(Event{
		Kind:   kind,
		Naplet: rec.ID.String(),
		Hop:    rec.Log.Len(),
		From:   from,
		To:     to,
		At:     s.clock(),
		Detail: detail,
	})
}

// Close detaches the server and waits for resident visit engines.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
		close(s.closed)
	}
	// Unblock resident naplets so their lifecycle goroutines can exit.
	s.mon.KillAll()
	// Withdraw directory state while the node can still send: peers should
	// fail fast on fresh information, not dispatch at a closed dock.
	s.withdrawRegistrations()
	err := s.node.Close()
	s.wg.Wait()
	return err
}

// Drain gracefully evacuates the server ahead of a shutdown: admissions
// stop, resident naplets are asked to leave (next stop or home), held mail
// is flushed onward, the dock takes a final snapshot, and the directory
// registrations pointing here are withdrawn. Bounded by ctx; the caller
// follows with Close. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil
	}
	s.mon.EvacuateAll()
	// Residents leave on their own lifecycle goroutines; wait (bounded)
	// for the dock to empty.
	for s.mgr.Resident() > 0 {
		select {
		case <-ctx.Done():
			s.finishDrain(ctx)
			return ctx.Err()
		case <-s.closed:
			s.finishDrain(ctx)
			return nil
		case <-time.After(2 * time.Millisecond):
		}
	}
	s.finishDrain(ctx)
	return nil
}

// finishDrain flushes mail, commits the final dock snapshot, and withdraws
// directory registrations.
func (s *Server) finishDrain(ctx context.Context) {
	fctx := ctx
	if fctx.Err() != nil {
		// The drain deadline passed; still give the flush a short grace.
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
	}
	_ = s.msgr.FlushHeld(fctx)
	if s.dockStore != nil {
		s.dockCommit()
	}
	s.withdrawRegistrations()
}

// withdrawRegistrations removes this server's entries from the central
// directory so peers stop routing naplets and mail here. Best effort.
func (s *Server) withdrawRegistrations() {
	if s.dir == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = s.dir.DeregisterServer(ctx, s.name)
}

// handle is the server's composite frame handler, dispatching to the
// owning component (Figure 2's request paths).
func (s *Server) handle(from string, f wire.Frame) (wire.Frame, error) {
	// The node attaches before the components are wired (so a TCP fabric
	// can resolve port 0 into the server's name); block early frames until
	// construction completes.
	<-s.ready
	// Admission runs before any component sees the frame: control traffic
	// passes straight through, bulk (migrations, mail, code transfer)
	// queues behind a bounded in-flight window and is shed — with a typed,
	// retryable error — when the queue backs up past the delay target or
	// the caller's propagated budget runs out while waiting.
	ctx, cancel := f.BudgetContext(context.Background())
	release, err := s.gate.Admit(ctx, overload.Classify(f.Kind))
	cancel()
	if err != nil {
		return wire.Frame{}, err
	}
	defer release()
	switch f.Kind {
	case wire.KindLandingRequest:
		return s.nav.HandleLandingRequest(from, f)
	case wire.KindNapletTransfer:
		return s.nav.HandleTransfer(from, f)
	case wire.KindCodeFetch:
		return s.nav.HandleCodeFetch(from, f)
	case wire.KindHomeEvent:
		return s.nav.HandleHomeEvent(from, f)
	case wire.KindPost:
		reply, err := s.msgr.HandlePost(from, f)
		// Commit mail durably before the sender hears its confirmation:
		// a held or queued message acknowledged here must survive a crash.
		if err == nil && s.dockStore != nil {
			s.dockCommit()
		}
		return reply, err
	case wire.KindLocatorQuery:
		return s.loc.HandleQuery(from, f)
	case wire.KindLocatorInvalidate:
		return s.loc.HandleInvalidate(from, f)
	case wire.KindReport:
		return s.handleReport(from, f)
	case wire.KindControl:
		return s.handleControl(from, f)
	default:
		return wire.Frame{}, fmt.Errorf("server %s: unexpected frame kind %q", s.name, f.Kind)
	}
}

// ReportBody carries naplet-to-home traffic: results for the listener and
// status updates for the naplet table.
type ReportBody struct {
	NapletID id.NapletID
	// Kind is "result" or "status".
	Kind   string
	Status manager.Status
	Err    string
	Body   []byte
}

// handleReport routes a naplet's report to this server's manager (this
// server is the naplet's home).
func (s *Server) handleReport(from string, f wire.Frame) (wire.Frame, error) {
	var body ReportBody
	if err := f.Body(&body); err != nil {
		return wire.Frame{}, err
	}
	switch body.Kind {
	case "result":
		s.mgr.Deliver(body.NapletID, body.Body)
	case "status":
		s.mgr.SetStatus(body.NapletID, body.Status, body.Err)
	default:
		return wire.Frame{}, fmt.Errorf("server: unknown report kind %q", body.Kind)
	}
	return wire.NewFrame(wire.KindControlReply, f.To, f.From, &ControlReplyBody{OK: true})
}

// ControlBody is a management request from an owner's tool (napletctl) to a
// naplet's home server.
type ControlBody struct {
	// Op is "launch", "control", "status", or "results".
	Op       string
	NapletID id.NapletID
	Verb     naplet.ControlVerb

	// Launch fields (Op == "launch").
	Owner    string
	Codebase string
	// Route is the itinerary in the paper's operator notation, e.g.
	// "par(seq(s0,s1), seq(s2,s3))".
	Route string
	// Params seeds the "man.params" state entry (the NMNaplet parameter
	// list); may be empty.
	Params []string
	// StateKV seeds private string state entries.
	StateKV map[string]string
	// Failover names the itinerary failover policy ("", "none", "skip",
	// "alternates", "home").
	Failover string
}

// ControlReplyBody answers a ControlBody.
type ControlReplyBody struct {
	OK      bool
	Status  string
	Err     string
	Results [][]byte
	// Footprints lists visit records for Op "footprints" (§2.2:
	// "footprints of all past and current alien naplets are also recorded
	// for management purposes").
	Footprints []manager.Footprint
}

// handleControl serves owner management requests against the home manager.
func (s *Server) handleControl(from string, f wire.Frame) (wire.Frame, error) {
	var body ControlBody
	if err := f.Body(&body); err != nil {
		return wire.Frame{}, err
	}
	reply := ControlReplyBody{}
	switch body.Op {
	case "launch":
		nid, err := s.launchFromControl(body)
		if err != nil {
			reply.Err = err.Error()
		} else {
			reply.OK = true
			reply.Status = nid.String()
		}
	case "control":
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Control(ctx, body.NapletID, body.Verb); err != nil {
			reply.Err = err.Error()
		} else {
			reply.OK = true
		}
	case "status":
		st, errText, err := s.mgr.Status(body.NapletID)
		if err != nil {
			reply.Err = err.Error()
		} else {
			reply.OK = true
			reply.Status = st.String()
			reply.Err = errText
		}
	case "results":
		for _, r := range s.mgr.Results(body.NapletID) {
			reply.Results = append(reply.Results, r.Body)
		}
		reply.OK = true
	case "footprints":
		reply.Footprints = s.mgr.Footprints()
		reply.OK = true
	default:
		return wire.Frame{}, fmt.Errorf("server: unknown control op %q", body.Op)
	}
	return wire.NewFrame(wire.KindControlReply, f.To, f.From, &reply)
}

// Control sends a system message (callback/terminate/suspend/resume) to a
// naplet launched from this server, locating it through the naplet space.
func (s *Server) Control(ctx context.Context, nid id.NapletID, verb naplet.ControlVerb) error {
	hint := ""
	if server, ok := s.mgr.HomeLocate(nid); ok {
		hint = server
	} else if tr := s.mgr.TraceNaplet(nid); tr.Known {
		if tr.Present {
			hint = s.name
		} else if tr.Dest != "" {
			hint = tr.Dest
		}
	}
	return s.msgr.SendControl(ctx, nid, verb, hint)
}

// Status reports the naplet-table status of a locally launched naplet.
func (s *Server) Status(nid id.NapletID) (manager.Status, string, error) {
	return s.mgr.Status(nid)
}

// Results returns the reports received from a naplet launched here.
func (s *Server) Results(nid id.NapletID) [][]byte {
	rs := s.mgr.Results(nid)
	out := make([][]byte, len(rs))
	for i, r := range rs {
		out[i] = r.Body
	}
	return out
}

// WaitDone blocks until a locally launched naplet reaches a terminal
// status.
func (s *Server) WaitDone(ctx context.Context, nid id.NapletID) (manager.Status, error) {
	return s.mgr.WaitDone(ctx, nid)
}

// mintID creates a fresh naplet identifier for owner, unique even within
// one clock second. TCP server names contain ':' which the identifier
// grammar reserves, so the ID's host part is sanitized; Record.Home keeps
// the routable server name (the home-manager location mode resolves homes
// via nid.Host() and therefore requires grammar-clean server names, which
// the simulated fabric uses).
func (s *Server) mintID(owner string) (id.NapletID, error) {
	s.mintMu.Lock()
	defer s.mintMu.Unlock()
	t := s.clock().UTC().Truncate(time.Second)
	if last, ok := s.minted[owner]; ok && !t.After(last) {
		t = last.Add(time.Second)
	}
	s.minted[owner] = t
	host := strings.NewReplacer(":", "_", "@", "_").Replace(s.name)
	return id.New(owner, host, t)
}
