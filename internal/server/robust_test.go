package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/registry"
)

// robustAgent visits servers appending each name to its tour, optionally
// blocking at one server (to stage an evacuation), and reports the tour
// plus any navigation-log reroutes at the end of its life:
// "s1,s2|policy@<visit>|...".
type robustAgent struct {
	blockAt string
	arrived chan struct{}
}

func (a robustAgent) OnStart(ctx *naplet.Context) error {
	var tour []string
	ctx.State().Load("tour", &tour)
	tour = append(tour, ctx.Server)
	if err := ctx.State().SetPrivate("tour", tour); err != nil {
		return err
	}
	if a.blockAt != "" && ctx.Server == a.blockAt {
		if a.arrived != nil {
			select {
			case a.arrived <- struct{}{}:
			default:
			}
		}
		<-ctx.Cancel.Done()
		return ctx.Cancel.Err()
	}
	return nil
}

func (a robustAgent) OnDestroy(ctx *naplet.Context) {
	var tour []string
	ctx.State().Load("tour", &tour)
	parts := []string{strings.Join(tour, ",")}
	for _, r := range ctx.Log().Reroutes() {
		parts = append(parts, r.Policy+"@"+r.Visit)
	}
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(strings.Join(parts, "|")))
}

func registerRobust(reg *registry.Registry) {
	reg.MustRegister(&registry.Codebase{
		Name: "test.Robust",
		New:  func() naplet.Behavior { return robustAgent{} },
	})
}

// launchRobust launches a robust agent with the given failover policy,
// waits for completion, and returns the report channel.
func launchRobust(t *testing.T, sp *space, codebase string, p *itinerary.Pattern, pol naplet.FailoverPolicy) chan string {
	t.Helper()
	results := make(chan string, 1)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: codebase,
		Pattern:  p,
		Failover: pol,
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	return results
}

func TestFailoverSkipDeadVisit(t *testing.T) {
	// "ghost" is never attached: the dispatch exhausts its budget and the
	// skip policy drops the visit, recording the reroute in the nav log.
	sp := newSpace(t, spaceOpts{}, "home", "s1", "s3")
	registerRobust(sp.reg)
	results := launchRobust(t, sp, "test.Robust",
		itinerary.SeqVisits([]string{"s1", "ghost", "s3"}, ""), naplet.FailoverSkip)
	got := <-results
	if got != "s1,s3|skip@<ghost>" {
		t.Fatalf("report = %q, want %q", got, "s1,s3|skip@<ghost>")
	}
}

func TestFailoverAlternatesReroute(t *testing.T) {
	// The Alt chose ghost (first unguarded branch); when it proves dead the
	// engine replaces the remaining itinerary with the unchosen sibling.
	sp := newSpace(t, spaceOpts{}, "home", "s1", "s2", "s3")
	registerRobust(sp.reg)
	p := itinerary.Seq(
		itinerary.Singleton(itinerary.Visit{Server: "s1"}),
		itinerary.Alt(
			itinerary.Singleton(itinerary.Visit{Server: "ghost"}),
			itinerary.Singleton(itinerary.Visit{Server: "s2"}),
		),
		itinerary.Singleton(itinerary.Visit{Server: "s3"}),
	)
	results := launchRobust(t, sp, "test.Robust", p, naplet.FailoverAlternates)
	got := <-results
	if got != "s1,s2,s3|alternate@<ghost>" {
		t.Fatalf("report = %q, want %q", got, "s1,s2,s3|alternate@<ghost>")
	}
}

func TestFailoverReturnHome(t *testing.T) {
	// The home policy abandons the tour at the dead stop: s3 is never
	// visited and the naplet completes back at its home server.
	sp := newSpace(t, spaceOpts{}, "home", "s1", "s3")
	registerRobust(sp.reg)
	results := launchRobust(t, sp, "test.Robust",
		itinerary.SeqVisits([]string{"s1", "ghost", "s3"}, ""), naplet.FailoverHome)
	got := <-results
	if got != "s1,home|home@<ghost>" {
		t.Fatalf("report = %q, want %q", got, "s1,home|home@<ghost>")
	}
}

func TestDrainEvacuatesResidents(t *testing.T) {
	// A naplet blocked mid-visit at s1 is evacuated by Drain: its visit is
	// interrupted, it takes refuge at home, and the drain leaves s1 empty
	// and refusing new work.
	sp := newSpace(t, spaceOpts{}, "home", "s1")
	arrived := make(chan struct{}, 1)
	sp.reg.MustRegister(&registry.Codebase{
		Name: "test.RobustArrive",
		New:  func() naplet.Behavior { return robustAgent{blockAt: "s1", arrived: arrived} },
	})
	results := make(chan string, 1)
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.RobustArrive",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the naplet is established mid-visit at s1.
	select {
	case <-arrived:
	case <-time.After(10 * time.Second):
		t.Fatal("naplet never became resident at s1")
	}

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sp.servers["s1"].Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !sp.servers["s1"].Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if n := sp.servers["s1"].Manager().Resident(); n != 0 {
		t.Fatalf("residents after drain = %d, want 0", n)
	}

	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)
	got := <-results
	if !strings.Contains(got, "evacuate@") {
		t.Fatalf("report = %q, want an evacuate reroute", got)
	}
	if !strings.HasPrefix(got, "s1,home|") {
		t.Fatalf("report = %q, want tour s1,home", got)
	}
}

func TestDrainRefusesLandings(t *testing.T) {
	sp := newSpace(t, spaceOpts{}, "home", "s1")
	dctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := sp.servers["s1"].Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusTrapped)
	_, errText, _ := sp.servers["home"].Status(nid)
	if !strings.Contains(errText, "draining") {
		t.Fatalf("trap error = %q, want a draining refusal", errText)
	}
}

func TestCloseWithdrawsDirectoryRegistrations(t *testing.T) {
	// Regression: a closed server used to leave its directory entries
	// behind, so peers kept dispatching naplets and mail at a dead dock.
	sp := newSpace(t, spaceOpts{directory: true}, "home", "s1")
	nid, err := sp.servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sp.servers["home"], nid, manager.StatusCompleted)

	present := false
	for _, e := range sp.dir.Snapshot() {
		if e.Server == "s1" {
			present = true
		}
	}
	if !present {
		t.Fatal("no directory entry points at s1 before close; test is vacuous")
	}

	if err := sp.servers["s1"].Close(); err != nil {
		t.Fatal(err)
	}
	for _, e := range sp.dir.Snapshot() {
		if e.Server == "s1" {
			t.Fatalf("directory still holds %v -> s1 after Close", e.NapletID)
		}
	}
}
