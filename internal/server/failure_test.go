package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/directory"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/monitor"
	"repro/internal/naplet"
	"repro/internal/navigator"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/state"
	"repro/internal/wire"
)

// failSpace builds a space on a lossy/partitionable netsim with custom
// server config knobs.
func failSpace(t *testing.T, netCfg netsim.Config, mutate func(*Config), names ...string) (*netsim.Network, map[string]*Server) {
	t.Helper()
	net := netsim.New(netCfg)
	reg := newTestRegistry(t)
	servers := make(map[string]*Server, len(names))
	for _, name := range names {
		cfg := Config{Name: name, Fabric: net, Registry: reg}
		if mutate != nil {
			mutate(&cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[name] = srv
	}
	return net, servers
}

func TestDispatchRetriesSurviveLoss(t *testing.T) {
	// ~40% frame loss: without retries most migrations fail; with retries
	// every tour completes.
	netCfg := netsim.Config{
		DefaultLink: netsim.Link{Loss: 0.4},
		Seed:        3,
		CallTimeout: time.Millisecond,
	}
	_, servers := failSpace(t, netCfg, func(c *Config) {
		c.DispatchRetries = 25
		c.DispatchRetryDelay = time.Millisecond
	}, "home", "s1", "s2")

	results := make(chan string, 1)
	nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2"}, ""),
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	// The report home may itself be lost (reports do not retry), so accept
	// either a completed status or a delivered report as proof of the tour.
	select {
	case got := <-results:
		if got != "s1,s2" {
			t.Fatalf("tour = %q", got)
		}
	default:
		if st != manager.StatusCompleted {
			t.Fatalf("status = %v and no report", st)
		}
	}
}

func TestDispatchFailsWithoutRetries(t *testing.T) {
	// A partitioned destination traps the naplet and the error reaches the
	// owner.
	net, servers := failSpace(t, netsim.Config{CallTimeout: time.Millisecond}, nil, "home", "s1")
	net.Partition("home", "s1", true)

	nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusTrapped {
		t.Fatalf("status = %v", st)
	}
	_, errText, _ := servers["home"].Status(nid)
	if !strings.Contains(errText, "dispatch to s1") {
		t.Fatalf("trap error = %q", errText)
	}
}

func TestPartitionHealsMidTour(t *testing.T) {
	// The partition heals while the engine is retrying: the tour recovers.
	net, servers := failSpace(t, netsim.Config{CallTimeout: time.Millisecond}, func(c *Config) {
		c.DispatchRetries = 100
		c.DispatchRetryDelay = 5 * time.Millisecond
	}, "home", "s1")
	net.Partition("home", "s1", true)

	nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let a few attempts fail
	net.Partition("home", "s1", false)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusCompleted {
		t.Fatalf("status after heal = %v", st)
	}
}

func TestLandingDeniedDoesNotRetry(t *testing.T) {
	// Policy refusals are authoritative: the engine must not burn retries
	// (a single retry would stall this test for an hour).
	net, servers := failSpace(t, netsim.Config{}, func(c *Config) {
		c.DispatchRetries = 1000
		c.DispatchRetryDelay = time.Hour
	}, "home")
	reg := servers["home"].reg
	deny, err := New(Config{Name: "s1", Fabric: net, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { deny.Close() })
	deny.Navigator().SetAdmitFunc(func(navigatorLandingRequest) error {
		return errNoLanding
	})

	nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusTrapped {
		t.Fatalf("status = %v", st)
	}
}

func TestDispatchBackoffPolicyFailsFastOnDenial(t *testing.T) {
	// Same regression under an explicit Backoff override: a permanent
	// refusal must trap on the first attempt — zero retries recorded —
	// even with an hour-scale policy and a huge budget.
	net, servers := failSpace(t, netsim.Config{}, func(c *Config) {
		c.DispatchBackoff = &navigator.Backoff{Retries: 1000, Initial: time.Hour, Max: time.Hour}
	}, "home")
	reg := servers["home"].reg
	deny, err := New(Config{Name: "s1", Fabric: net, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { deny.Close() })
	deny.Navigator().SetAdmitFunc(func(navigatorLandingRequest) error {
		return errNoLanding
	})

	nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusTrapped {
		t.Fatalf("status = %v", st)
	}
	if got := servers["home"].Navigator().Stats().Retries; got != 0 {
		t.Fatalf("permanent denial burned %d retries, want 0", got)
	}
}

func TestDirectoryOutageFallsBackToBookHint(t *testing.T) {
	// Directory mode with the directory detached: posting still works via
	// the sender's address-book hint.
	net := netsim.New(netsim.Config{CallTimeout: time.Millisecond})
	reg := newTestRegistry(t)
	dir := directory.NewService()
	dirNode, err := dir.Serve(net, "dir")
	if err != nil {
		t.Fatal(err)
	}
	servers := make(map[string]*Server)
	for _, name := range []string{"home", "s1"} {
		srv, err := New(Config{
			Name: name, Fabric: net, Registry: reg,
			LocatorMode: locator.ModeDirectory, DirectoryAddr: "dir",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[name] = srv
	}

	gotMsg := make(chan string, 1)
	servers["home"].reg.MustRegister(newCodebase("test.DirReceiver", func(ctx *naplet.Context) error {
		rctx, cancel := context.WithTimeout(ctx.Cancel, 8*time.Second)
		defer cancel()
		msg, err := ctx.Messenger.Receive(rctx)
		if err != nil {
			return err
		}
		gotMsg <- msg.Subject
		return nil
	}))

	recvID, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "bob",
		Codebase: "test.DirReceiver",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for residency, then kill the directory.
	deadline := time.Now().Add(5 * time.Second)
	for servers["s1"].Manager().Resident() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("receiver never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	dirNode.Close()

	// A sender with a correct book hint still delivers.
	servers["home"].reg.MustRegister(newCodebase("test.DirSender", func(ctx *naplet.Context) error {
		ctx.AddressBook().Add(recvID, "s1")
		sctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
		defer cancel()
		return ctx.Messenger.Post(sctx, recvID, "ping", nil)
	}))
	_, err = servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "alice",
		Codebase: "test.DirSender",
		Pattern:  itinerary.SeqVisits([]string{"home"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-gotMsg:
		if got != "ping" {
			t.Fatalf("msg = %q", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("message lost during directory outage")
	}
}

// ---- helpers ----

// navigatorLandingRequest aliases the admit-hook parameter type.
type navigatorLandingRequest = navigator.LandingRequestBody

var errNoLanding = errors.New("refused by admission policy")

// newCodebase wraps a behaviour function into a registrable codebase.
func newCodebase(name string, f func(ctx *naplet.Context) error) *registry.Codebase {
	return &registry.Codebase{Name: name, New: func() naplet.Behavior { return behaviorFunc(f) }}
}

func TestSuspendResumeEndToEnd(t *testing.T) {
	// Suspend a touring naplet mid-flight via a system message; the tour
	// pauses; resume lets it complete (§2.2's suspend/resume verbs).
	_, servers := failSpace(t, netsim.Config{}, func(c *Config) {
		c.ReportHome = true
		c.LocatorMode = locator.ModeHome
	}, "home", "s1", "s2")

	// slowWorker does ~200 ms of interruptible work per visit, leaving a
	// wide window for the suspend cast to land mid-tour.
	servers["home"].reg.MustRegister(newCodebase("test.SlowWorker", func(ctx *naplet.Context) error {
		for i := 0; i < 40; i++ {
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Cancel.Done():
				return ctx.Cancel.Err()
			}
		}
		return nil
	}))

	nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.SlowWorker",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Suspend while working at s1.
	deadline := time.Now().Add(5 * time.Second)
	for servers["s1"].Manager().Resident() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never arrived at s1")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := servers["home"].Control(ctx, nid, naplet.ControlSuspend); err != nil {
		t.Fatal(err)
	}

	// While suspended, the tour must not complete.
	time.Sleep(150 * time.Millisecond)
	if st, _, _ := servers["home"].Status(nid); st == manager.StatusCompleted {
		t.Fatal("suspended naplet completed its tour")
	}

	if err := servers["home"].Control(ctx, nid, naplet.ControlResume); err != nil {
		t.Fatal(err)
	}
	st, err := servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusCompleted {
		t.Fatalf("status after resume = %v", st)
	}
}

func TestStateSurvivesLossyMigration(t *testing.T) {
	// Under loss with retries, the agent's accumulated state arrives
	// intact (the transfer is atomic: all-or-nothing per attempt).
	netCfg := netsim.Config{
		DefaultLink: netsim.Link{Loss: 0.3},
		Seed:        9,
		CallTimeout: time.Millisecond,
	}
	_, servers := failSpace(t, netCfg, func(c *Config) {
		c.DispatchRetries = 50
		c.DispatchRetryDelay = time.Millisecond
	}, "home", "s1", "s2", "s3")

	results := make(chan string, 1)
	nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Collector",
		Pattern:  itinerary.SeqVisits([]string{"s1", "s2", "s3"}, ""),
		InitState: func(s *state.State) error {
			return s.SetPrivate("tour", []string{"seeded"})
		},
		Listener: func(r manager.Result) { results <- string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-results:
		if got != "seeded,s1,s2,s3" {
			t.Fatalf("state corrupted in flight: %q", got)
		}
	default:
		if st != manager.StatusCompleted {
			t.Fatalf("status %v with no report", st)
		}
	}
}

func TestBandwidthBudgetKillsChattyNaplet(t *testing.T) {
	// §5.2: the monitor tracks network bandwidth; a naplet exceeding its
	// budget is killed mid-flight and the violation reaches the owner.
	_, servers := failSpace(t, netsim.Config{}, func(c *Config) {
		c.MonitorPolicy = monitor.Policy{MaxBandwidth: 300}
	}, "home", "s1")

	peer := id.MustNew("peer", "s1", time.Unix(1e9, 0))
	servers["home"].reg.MustRegister(newCodebase("test.Chatty", func(ctx *naplet.Context) error {
		ctx.AddressBook().Add(peer, "s1")
		for i := 0; i < 100; i++ {
			sctx, cancel := context.WithTimeout(context.Background(), time.Second)
			err := ctx.Messenger.Post(sctx, peer, "spam", make([]byte, 200))
			cancel()
			if err != nil {
				return err // budget violation surfaces here
			}
		}
		return nil
	}))

	nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Chatty",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusTrapped {
		t.Fatalf("status = %v, want trapped by bandwidth budget", st)
	}
	_, errText, _ := servers["home"].Status(nid)
	if !strings.Contains(errText, "budget") {
		t.Fatalf("trap error = %q", errText)
	}
}

// TestUnresolvedDispatchTrapsInsteadOfForking is the engine half of the
// ghost-split guard. Every transfer is delivered but its acknowledgement
// is lost: the naplet lands (and stays, test.Sleeper) at s1 while home's
// dispatch exhausts its budget on an outcome it cannot resolve. A
// failover policy must NOT apply — skipping s1 and touring on from home
// would fork the naplet into two live copies. The engine holds (traps)
// the local copy instead, leaving recovery to the owner, and the copy at
// s1 remains the only one.
func TestUnresolvedDispatchTrapsInsteadOfForking(t *testing.T) {
	net := netsim.New(netsim.Config{})
	inj := fault.New(fault.Config{
		Seed: 1,
		P:    fault.Probabilities{DropReply: 1},
		Kinds: func(k wire.Kind) bool { return k == wire.KindNapletTransfer },
	})
	reg := newTestRegistry(t)
	servers := make(map[string]*Server, 2)
	for _, name := range []string{"home", "s1"} {
		srv, err := New(Config{
			Name:               name,
			Fabric:             inj.Fabric(net),
			Registry:           reg,
			DispatchRetries:    2,
			DispatchRetryDelay: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[name] = srv
	}

	nid, err := servers["home"].Launch(context.Background(), LaunchOptions{
		Owner:    "czxu",
		Codebase: "test.Sleeper",
		Pattern:  itinerary.SeqVisits([]string{"s1"}, ""),
		Failover: naplet.FailoverSkip,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := servers["home"].WaitDone(ctx, nid)
	if err != nil {
		t.Fatal(err)
	}
	if st != manager.StatusTrapped {
		t.Fatalf("status = %v, want trapped (a skip here would fork the naplet)", st)
	}
	_, errText, _ := servers["home"].Status(nid)
	if !strings.Contains(errText, "dispatch to s1") {
		t.Fatalf("trap error = %q", errText)
	}
	// The other copy is alive at s1 — exactly the fork the hold prevented.
	deadline := time.Now().Add(5 * time.Second)
	for servers["s1"].Manager().Resident() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("s1 residents = %d, want the landed copy", servers["s1"].Manager().Resident())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
