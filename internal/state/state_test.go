package state

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetRoundTrip(t *testing.T) {
	s := New()
	if err := s.SetPrivate("price", 42); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("price")
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 42 {
		t.Fatalf("got %v", v)
	}
	var n int
	if err := s.Load("price", &n); err != nil || n != 42 {
		t.Fatalf("Load: %v n=%d", err, n)
	}
}

func TestGetMissingKey(t *testing.T) {
	s := New()
	if _, err := s.Get("nope"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("want ErrNoSuchKey, got %v", err)
	}
	if err := s.Load("nope", new(int)); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("want ErrNoSuchKey, got %v", err)
	}
	if _, err := s.ModeOf("nope"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("want ErrNoSuchKey, got %v", err)
	}
}

func TestNilValueRejected(t *testing.T) {
	s := New()
	if err := s.SetPublic("k", nil); !errors.Is(err, ErrNilValue) {
		t.Fatalf("want ErrNilValue, got %v", err)
	}
}

func TestLoadTypeMismatch(t *testing.T) {
	s := New()
	s.SetPrivate("k", "a string")
	var n int
	if err := s.Load("k", &n); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("want ErrBadPayload, got %v", err)
	}
}

func TestLoadSupportedTypes(t *testing.T) {
	s := New()
	s.SetPrivate("s", "str")
	s.SetPrivate("i64", int64(7))
	s.SetPrivate("f", 2.5)
	s.SetPrivate("b", true)
	s.SetPrivate("ss", []string{"a", "b"})
	s.SetPrivate("m", map[string]string{"k": "v"})

	var str string
	var i64 int64
	var f float64
	var b bool
	var ss []string
	var m map[string]string
	if err := s.Load("s", &str); err != nil || str != "str" {
		t.Fatalf("string: %v %q", err, str)
	}
	if err := s.Load("i64", &i64); err != nil || i64 != 7 {
		t.Fatalf("int64: %v %d", err, i64)
	}
	if err := s.Load("f", &f); err != nil || f != 2.5 {
		t.Fatalf("float64: %v %v", err, f)
	}
	if err := s.Load("b", &b); err != nil || !b {
		t.Fatalf("bool: %v %v", err, b)
	}
	if err := s.Load("ss", &ss); err != nil || len(ss) != 2 {
		t.Fatalf("[]string: %v %v", err, ss)
	}
	if err := s.Load("m", &m); err != nil || m["k"] != "v" {
		t.Fatalf("map: %v %v", err, m)
	}
	if err := s.Load("s", new(struct{})); err == nil {
		t.Fatal("unsupported out type should error")
	}
}

func TestStoredValueIsolatedFromCaller(t *testing.T) {
	s := New()
	data := []string{"a", "b"}
	s.SetPrivate("k", data)
	data[0] = "mutated"
	var got []string
	s.Load("k", &got)
	if got[0] != "a" {
		t.Fatal("stored value must be isolated from later caller mutation")
	}
}

func TestProtectionModesShoppingAgent(t *testing.T) {
	// The paper's shopping agent: gathered prices kept private; a protected
	// entry lets a specific server update a returning naplet.
	s := New()
	s.SetPrivate("prices", map[string]string{"widget": "$5"})
	s.SetProtected("updates", "v1", "home.server")
	s.SetPublic("query", "widget")

	alien := s.ServerView("alien.server")
	if _, err := alien.Get("prices"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("private must be forbidden to servers: %v", err)
	}
	if _, err := alien.Get("updates"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("protected must be forbidden to non-listed server: %v", err)
	}
	if v, err := alien.Get("query"); err != nil || v.(string) != "widget" {
		t.Fatalf("public must be visible: %v %v", v, err)
	}

	home := s.ServerView("home.server")
	if v, err := home.Get("updates"); err != nil || v.(string) != "v1" {
		t.Fatalf("listed server must read protected: %v %v", v, err)
	}
	if err := home.Update("updates", "v2"); err != nil {
		t.Fatalf("listed server must update protected: %v", err)
	}
	v, _ := s.Get("updates")
	if v.(string) != "v2" {
		t.Fatalf("update not visible to naplet: %v", v)
	}
}

func TestServerViewCannotWidenAccess(t *testing.T) {
	s := New()
	s.SetProtected("k", 1, "srv")
	view := s.ServerView("srv")
	if err := view.Update("k", 2); err != nil {
		t.Fatal(err)
	}
	// Mode and allow list must be preserved across server updates.
	if m, _ := s.ModeOf("k"); m != Protected {
		t.Fatalf("mode changed to %v", m)
	}
	other := s.ServerView("other")
	if _, err := other.Get("k"); !errors.Is(err, ErrForbidden) {
		t.Fatal("allow list must be preserved")
	}
}

func TestServerViewMissingAndUpdateErrors(t *testing.T) {
	s := New()
	v := s.ServerView("srv")
	if _, err := v.Get("nope"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("want ErrNoSuchKey, got %v", err)
	}
	if err := v.Update("nope", 1); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("want ErrNoSuchKey, got %v", err)
	}
	s.SetPrivate("priv", 1)
	if err := v.Update("priv", 2); !errors.Is(err, ErrForbidden) {
		t.Fatalf("want ErrForbidden, got %v", err)
	}
	if err := v.Update("priv", nil); !errors.Is(err, ErrNilValue) {
		t.Fatalf("nil update: %v", err)
	}
	if v.Server() != "srv" {
		t.Fatal("Server() mismatch")
	}
}

func TestServerViewKeys(t *testing.T) {
	s := New()
	s.SetPrivate("a", 1)
	s.SetPublic("b", 1)
	s.SetProtected("c", 1, "s1")
	s.SetProtected("d", 1, "s2")

	got := s.ServerView("s1").Keys()
	want := []string{"b", "c"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	all := s.Keys()
	if len(all) != 4 {
		t.Fatalf("naplet sees all keys: %v", all)
	}
}

func TestDeleteAndLen(t *testing.T) {
	s := New()
	s.SetPrivate("a", 1)
	s.SetPrivate("b", 2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Delete("a")
	s.Delete("missing") // no-op
	if s.Len() != 1 {
		t.Fatalf("Len after delete = %d", s.Len())
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatal("deleted key still present")
	}
}

func TestGobRoundTrip(t *testing.T) {
	s := New()
	s.SetPrivate("priv", 1)
	s.SetPublic("pub", "x")
	s.SetProtected("prot", 3.5, "srv")

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := gob.NewDecoder(&buf).Decode(restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 3 {
		t.Fatalf("restored Len = %d", restored.Len())
	}
	v, err := restored.Get("prot")
	if err != nil || v.(float64) != 3.5 {
		t.Fatalf("restored prot: %v %v", v, err)
	}
	// Protection metadata must survive migration.
	if _, err := restored.ServerView("other").Get("prot"); !errors.Is(err, ErrForbidden) {
		t.Fatal("protection lost after gob round trip")
	}
	if v, err := restored.ServerView("srv").Get("prot"); err != nil || v.(float64) != 3.5 {
		t.Fatalf("allow list lost after round trip: %v %v", v, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New()
	s.SetPrivate("k", 1)
	c := s.Clone()
	c.SetPrivate("k", 2)
	c.SetPrivate("extra", 3)
	if v, _ := s.Get("k"); v.(int) != 1 {
		t.Fatal("clone mutation leaked into parent")
	}
	if s.Len() != 1 || c.Len() != 2 {
		t.Fatalf("lens: parent %d clone %d", s.Len(), c.Len())
	}
}

func TestSizeAccounting(t *testing.T) {
	s := New()
	if s.Size() != 0 {
		t.Fatal("empty size must be 0")
	}
	s.SetPrivate("k", "some payload")
	if s.Size() <= 0 {
		t.Fatal("size must grow with content")
	}
	small := s.Size()
	s.SetPrivate("k2", bytes.Repeat([]byte("x"), 1024))
	if s.Size() <= small {
		t.Fatal("size must grow with larger content")
	}
}

func TestSetReplacesModeAndValue(t *testing.T) {
	s := New()
	s.SetPublic("k", 1)
	s.SetPrivate("k", 2)
	if m, _ := s.ModeOf("k"); m != Private {
		t.Fatalf("mode = %v, want Private", m)
	}
	if _, err := s.ServerView("srv").Get("k"); !errors.Is(err, ErrForbidden) {
		t.Fatal("replaced entry must use new mode")
	}
}

func TestModeString(t *testing.T) {
	if Private.String() != "private" || Protected.String() != "protected" || Public.String() != "public" {
		t.Fatal("mode names wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Fatal("unknown mode formatting")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", g)
			for i := 0; i < 100; i++ {
				s.Set(key, i, Public)
				s.Get(key)
				s.ServerView("srv").Get(key)
				s.Keys()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPropStateRoundTrip(t *testing.T) {
	f := func(key string, value string, public bool) bool {
		s := New()
		mode := Private
		if public {
			mode = Public
		}
		if err := s.Set(key, value, mode); err != nil {
			return false
		}
		got, err := s.Get(key)
		if err != nil {
			return false
		}
		if got.(string) != value {
			return false
		}
		m, err := s.ModeOf(key)
		return err == nil && m == mode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropGobPreservesEverything(t *testing.T) {
	f := func(keys []string, vals []string) bool {
		s := New()
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			if err := s.Set(keys[i], vals[i], Mode(i%3)); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(s); err != nil {
			return false
		}
		r := New()
		if err := gob.NewDecoder(&buf).Decode(r); err != nil {
			return false
		}
		if r.Len() != s.Len() {
			return false
		}
		for _, k := range s.Keys() {
			a, err1 := s.Get(k)
			b, err2 := r.Get(k)
			if err1 != nil || err2 != nil || a.(string) != b.(string) {
				return false
			}
			ma, _ := s.ModeOf(k)
			mb, _ := r.ModeOf(k)
			if ma != mb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
