// Package state implements the NapletState container (§2.1 of the Naplet
// paper): a protected, serializable container of application-specific agent
// running state.
//
// Any object within the container is held in one of three protection modes:
//
//   - Private: accessible to the naplet only.
//   - Public: accessible to any naplet server in the itinerary.
//   - Protected: accessible to specific, named servers only (e.g. so a
//     server can update a returning naplet with new information).
//
// Access checks are enforced through a Viewer: the naplet itself accesses
// the container directly; servers access it through ServerView, which
// applies the mode rules. Values must be gob-serializable since the state
// travels with the naplet on every migration.
package state

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Mode is the protection mode of an entry in a NapletState container.
type Mode int

// Protection modes, per §2.1.
const (
	// Private entries are accessible to the naplet only.
	Private Mode = iota
	// Protected entries are accessible to the naplet and to the specific
	// servers named when the entry was stored.
	Protected
	// Public entries are accessible to the naplet and to any naplet server
	// in the itinerary.
	Public
)

// String returns the lowercase mode name.
func (m Mode) String() string {
	switch m {
	case Private:
		return "private"
	case Protected:
		return "protected"
	case Public:
		return "public"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Errors reported by state access.
var (
	ErrNoSuchKey  = errors.New("state: no such key")
	ErrForbidden  = errors.New("state: access forbidden by protection mode")
	ErrNilValue   = errors.New("state: nil value")
	ErrBadPayload = errors.New("state: cannot decode payload")
)

// entry is one keyed object with its protection metadata. Values are kept
// gob-encoded so the container is always serializable and so stored values
// are isolated from later mutation by the caller.
type entry struct {
	Mode    Mode
	Servers []string // for Protected: sorted server names allowed to access
	Payload []byte   // gob-encoded value
}

// State is the serializable container of application-specific agent state.
// It is safe for concurrent use: the paper allows agent threads and server
// components (e.g. a server updating a returning naplet's protected state)
// to touch the container.
//
// The zero value is not usable; call New.
type State struct {
	mu      sync.RWMutex
	entries map[string]entry
}

// New returns an empty state container.
func New() *State {
	return &State{entries: make(map[string]entry)}
}

func init() {
	// Common composite types storable without an explicit Register call.
	gob.Register(map[string]string{})
	gob.Register(map[string]any{})
	gob.Register(map[string][]string{})
	gob.Register([]string{})
	gob.Register([]int{})
	gob.Register([]byte{})
	gob.Register([]any{})
}

func encode(v any) ([]byte, error) {
	if v == nil {
		return nil, ErrNilValue
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("state: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// assign stores v into *out with a type check.
func assign(v any, out any) error {
	switch p := out.(type) {
	case *any:
		*p = v
		return nil
	case *string:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("%w: have %T want string", ErrBadPayload, v)
		}
		*p = s
		return nil
	case *int:
		n, ok := v.(int)
		if !ok {
			return fmt.Errorf("%w: have %T want int", ErrBadPayload, v)
		}
		*p = n
		return nil
	case *int64:
		n, ok := v.(int64)
		if !ok {
			return fmt.Errorf("%w: have %T want int64", ErrBadPayload, v)
		}
		*p = n
		return nil
	case *float64:
		n, ok := v.(float64)
		if !ok {
			return fmt.Errorf("%w: have %T want float64", ErrBadPayload, v)
		}
		*p = n
		return nil
	case *bool:
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("%w: have %T want bool", ErrBadPayload, v)
		}
		*p = b
		return nil
	case *[]string:
		s, ok := v.([]string)
		if !ok {
			return fmt.Errorf("%w: have %T want []string", ErrBadPayload, v)
		}
		*p = s
		return nil
	case *map[string]string:
		m, ok := v.(map[string]string)
		if !ok {
			return fmt.Errorf("%w: have %T want map[string]string", ErrBadPayload, v)
		}
		*p = m
		return nil
	default:
		return fmt.Errorf("state: unsupported out type %T (use *any or Get)", out)
	}
}

// Set stores value under key with the given mode. For Protected entries,
// servers lists the server names allowed to access the entry; it is ignored
// for other modes. Storing replaces any previous entry under the key,
// including its protection metadata.
func (s *State) Set(key string, value any, mode Mode, servers ...string) error {
	payload, err := encode(value)
	if err != nil {
		return err
	}
	var allowed []string
	if mode == Protected {
		allowed = append([]string(nil), servers...)
		sort.Strings(allowed)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[key] = entry{Mode: mode, Servers: allowed, Payload: payload}
	return nil
}

// SetPrivate is shorthand for Set(key, value, Private).
func (s *State) SetPrivate(key string, value any) error { return s.Set(key, value, Private) }

// SetPublic is shorthand for Set(key, value, Public).
func (s *State) SetPublic(key string, value any) error { return s.Set(key, value, Public) }

// SetProtected is shorthand for Set(key, value, Protected, servers...).
func (s *State) SetProtected(key string, value any, servers ...string) error {
	return s.Set(key, value, Protected, servers...)
}

// Get retrieves the value stored under key as the naplet itself (full
// access) and returns it as a decoded any.
func (s *State) Get(key string) (any, error) {
	s.mu.RLock()
	e, ok := s.entries[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchKey, key)
	}
	var v any
	if err := gob.NewDecoder(bytes.NewReader(e.Payload)).Decode(&v); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return v, nil
}

// Load retrieves the value under key into out, which must be a pointer to
// one of the common supported types or *any.
func (s *State) Load(key string, out any) error {
	s.mu.RLock()
	e, ok := s.entries[key]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchKey, key)
	}
	var v any
	if err := gob.NewDecoder(bytes.NewReader(e.Payload)).Decode(&v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return assign(v, out)
}

// Delete removes the entry under key. Deleting a missing key is a no-op.
func (s *State) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, key)
}

// ModeOf returns the protection mode of the entry under key.
func (s *State) ModeOf(key string) (Mode, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchKey, key)
	}
	return e.Mode, nil
}

// Keys returns all keys in the container, sorted.
func (s *State) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len reports the number of entries.
func (s *State) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// ServerView returns a restricted view of the container for the named
// server, enforcing the protection modes: Public entries are readable and
// writable, Protected entries only if the view's server is in the entry's
// allow list, Private entries never.
func (s *State) ServerView(server string) *ServerView {
	return &ServerView{state: s, server: server}
}

// ServerView is the server-side restricted view of a naplet's state. It is
// obtained from State.ServerView and applies §2.1's protection-mode rules.
type ServerView struct {
	state  *State
	server string
}

// Server returns the server name the view was created for.
func (v *ServerView) Server() string { return v.server }

func (v *ServerView) allowed(e entry) bool {
	switch e.Mode {
	case Public:
		return true
	case Protected:
		i := sort.SearchStrings(e.Servers, v.server)
		return i < len(e.Servers) && e.Servers[i] == v.server
	default:
		return false
	}
}

// Get retrieves the value under key if the view's server may access it.
func (v *ServerView) Get(key string) (any, error) {
	v.state.mu.RLock()
	e, ok := v.state.entries[key]
	v.state.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchKey, key)
	}
	if !v.allowed(e) {
		return nil, fmt.Errorf("%w: key %q is %s to server %q", ErrForbidden, key, e.Mode, v.server)
	}
	var val any
	if err := gob.NewDecoder(bytes.NewReader(e.Payload)).Decode(&val); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return val, nil
}

// Update overwrites the value of an existing entry, if the view's server may
// access it. The entry's protection mode and allow list are preserved: a
// server cannot widen access to a naplet's state (this is how "a naplet
// server can update a returning naplet with new information" works for
// protected entries, §2.1).
func (v *ServerView) Update(key string, value any) error {
	payload, err := encode(value)
	if err != nil {
		return err
	}
	v.state.mu.Lock()
	defer v.state.mu.Unlock()
	e, ok := v.state.entries[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchKey, key)
	}
	if !v.allowed(e) {
		return fmt.Errorf("%w: key %q is %s to server %q", ErrForbidden, key, e.Mode, v.server)
	}
	e.Payload = payload
	v.state.entries[key] = e
	return nil
}

// Keys lists the keys the view's server may access, sorted.
func (v *ServerView) Keys() []string {
	v.state.mu.RLock()
	defer v.state.mu.RUnlock()
	var keys []string
	for k, e := range v.state.entries {
		if v.allowed(e) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// snapshot is the serializable form of the container.
type snapshot struct {
	Entries map[string]entry
}

// GobEncode implements gob.GobEncoder; the container serializes with the
// naplet on migration (§2.1: "a protected serializable container").
func (s *State) GobEncode() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshot{Entries: s.entries}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *State) GobDecode(data []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap.Entries == nil {
		snap.Entries = make(map[string]entry)
	}
	s.entries = snap.Entries
	return nil
}

// Clone returns a deep copy of the container, used when a naplet is cloned
// for a Par itinerary branch: each clone carries independent state.
func (s *State) Clone() *State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := New()
	for k, e := range s.entries {
		ce := entry{
			Mode:    e.Mode,
			Servers: append([]string(nil), e.Servers...),
			Payload: append([]byte(nil), e.Payload...),
		}
		c.entries[k] = ce
	}
	return c
}

// Size returns the total payload bytes held, an input to migration cost
// accounting.
func (s *State) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.entries {
		n += len(e.Payload)
	}
	return n
}

// Register makes a concrete type storable in State containers. It must be
// called (typically from an init function) for any application type placed
// in agent state, mirroring gob.Register.
func Register(value any) { gob.Register(value) }
