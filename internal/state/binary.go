package state

import (
	"repro/internal/wire"
)

// Binary codec for the state container. The container layout is
// hand-rolled; the leaf Payload of each entry remains the gob encoding of
// the stored value — that is where arbitrary application types need
// serializing, the same flexibility/efficiency split the wire package
// makes between frame headers and payloads. Layout:
//
//	[uvarint n] then n× (sorted by key):
//	  [string key] [uvarint mode] [uvarint s] s×[string server] [bytes payload]
//
// Keys are emitted in sorted order so the encoding is deterministic, which
// the golden-byte and encode→decode→encode tests rely on.

// EncodedSize returns the exact binary-encoded size of the container.
func (s *State) EncodedSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sz := wire.SizeUvarint(uint64(len(s.entries)))
	for k, e := range s.entries {
		sz += wire.SizeString(k) + wire.SizeUvarint(uint64(e.Mode)) +
			wire.SizeUvarint(uint64(len(e.Servers)))
		for _, sv := range e.Servers {
			sz += wire.SizeString(sv)
		}
		sz += wire.SizeBytes(e.Payload)
	}
	return sz
}

// AppendBinary appends the container's binary form to dst.
func (s *State) AppendBinary(dst []byte) []byte {
	keys := s.Keys()
	s.mu.RLock()
	defer s.mu.RUnlock()
	dst = wire.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		e := s.entries[k]
		dst = wire.AppendString(dst, k)
		dst = wire.AppendUvarint(dst, uint64(e.Mode))
		dst = wire.AppendUvarint(dst, uint64(len(e.Servers)))
		for _, sv := range e.Servers {
			dst = wire.AppendString(dst, sv)
		}
		dst = wire.AppendBytes(dst, e.Payload)
	}
	return dst
}

// DecodeBinary consumes one container from b and returns the rest. Entry
// payloads are copied, so the container does not alias b.
func DecodeBinary(b []byte) (*State, []byte, error) {
	cnt, b, err := wire.DecCount(b, 4)
	if err != nil {
		return nil, nil, err
	}
	s := New()
	for i := 0; i < cnt; i++ {
		var e entry
		var k string
		if k, b, err = wire.DecString(b); err != nil {
			return nil, nil, err
		}
		mode, rest, err := wire.DecUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		e.Mode = Mode(mode)
		scnt, rest, err := wire.DecCount(rest, 1)
		if err != nil {
			return nil, nil, err
		}
		if scnt > 0 {
			e.Servers = make([]string, scnt)
			for j := range e.Servers {
				if e.Servers[j], rest, err = wire.DecString(rest); err != nil {
					return nil, nil, err
				}
			}
		}
		payload, rest, err := wire.DecBytes(rest)
		if err != nil {
			return nil, nil, err
		}
		if payload != nil {
			e.Payload = append([]byte(nil), payload...)
		}
		s.entries[k] = e
		b = rest
	}
	return s, b, nil
}
