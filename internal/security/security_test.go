package security

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/id"
)

var t0 = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)

func issue(t *testing.T, ring *cred.KeyRing, owner, codebase string, roles ...string) cred.Credential {
	t.Helper()
	nid := id.MustNew(owner, "home", t0)
	c, err := ring.Issue(nid, codebase, roles, t0, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newRing(t *testing.T, owners ...string) *cred.KeyRing {
	t.Helper()
	ring := cred.NewKeyRing()
	for _, o := range owners {
		ring.Register(o, []byte("key-"+o))
	}
	return ring
}

func TestPolicyFirstMatchWins(t *testing.T) {
	ring := newRing(t, "alice")
	c := issue(t, ring, "alice", "cb")
	p := Policy{
		Rules: []Rule{
			{Principal: "owner:alice", Permissions: []Permission{PermLanding}, Effect: Deny},
			{Principal: "*", Permissions: []Permission{"*"}, Effect: Allow},
		},
	}
	if p.Decide(&c, PermLanding) != Deny {
		t.Fatal("first matching rule must win")
	}
	if p.Decide(&c, PermLaunch) != Allow {
		t.Fatal("later wildcard rule must apply to other permissions")
	}
}

func TestPolicyDefault(t *testing.T) {
	ring := newRing(t, "alice")
	c := issue(t, ring, "alice", "cb")
	var deny Policy // zero value: default deny
	if deny.Decide(&c, PermLaunch) != Deny {
		t.Fatal("zero policy must deny")
	}
	if AllowAll.Decide(&c, PermLaunch) != Allow {
		t.Fatal("AllowAll must allow")
	}
}

func TestPrincipalForms(t *testing.T) {
	ring := newRing(t, "alice", "bob")
	admin := issue(t, ring, "alice", "app.NM", "netadmin")
	guest := issue(t, ring, "bob", "app.Shop")

	cases := []struct {
		principal Principal
		c         *cred.Credential
		want      bool
	}{
		{"*", &admin, true},
		{"owner:alice", &admin, true},
		{"owner:alice", &guest, false},
		{"role:netadmin", &admin, true},
		{"role:netadmin", &guest, false},
		{"codebase:app.NM", &admin, true},
		{"codebase:app.NM", &guest, false},
		{"garbage", &admin, false},
	}
	for _, tc := range cases {
		if got := tc.principal.matches(tc.c); got != tc.want {
			t.Errorf("%q matches %s = %v, want %v", tc.principal, tc.c.NapletID, got, tc.want)
		}
	}
}

func TestManagerVerifiesSignature(t *testing.T) {
	ring := newRing(t, "alice")
	c := issue(t, ring, "alice", "cb")
	m := NewManager(ring, AllowAll, func() time.Time { return t0 })
	if err := m.CheckLanding(&c); err != nil {
		t.Fatalf("valid credential rejected: %v", err)
	}
	tampered := c
	tampered.Codebase = "evil"
	if err := m.CheckLanding(&tampered); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("tampered credential accepted: %v", err)
	}
	if err := m.CheckLanding(nil); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("nil credential: %v", err)
	}
}

func TestManagerExpiredCredential(t *testing.T) {
	ring := newRing(t, "alice")
	nid := id.MustNew("alice", "home", t0)
	c, _ := ring.Issue(nid, "cb", nil, t0, t0.Add(time.Hour))
	m := NewManager(ring, AllowAll, func() time.Time { return t0.Add(2 * time.Hour) })
	if err := m.CheckLanding(&c); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("expired credential accepted: %v", err)
	}
}

func TestManagerWithoutRingSkipsVerification(t *testing.T) {
	ring := newRing(t, "alice")
	c := issue(t, ring, "alice", "cb")
	c.Signature = nil // would fail verification
	m := NewManager(nil, AllowAll, nil)
	if err := m.CheckLanding(&c); err != nil {
		t.Fatalf("ring-less manager must skip verification: %v", err)
	}
}

func TestManagerPolicyDecisions(t *testing.T) {
	ring := newRing(t, "alice", "bob")
	admin := issue(t, ring, "alice", "app.NM", "netadmin")
	guest := issue(t, ring, "bob", "app.Shop")

	policy := Policy{
		Rules: []Rule{
			{Principal: "role:netadmin", Permissions: []Permission{"*"}, Effect: Allow},
			{Principal: "*", Permissions: []Permission{PermLanding, PermLaunch, PermMessage}, Effect: Allow},
		},
		Default: Deny,
	}
	m := NewManager(ring, policy, func() time.Time { return t0 })

	if err := m.CheckLanding(&guest); err != nil {
		t.Fatalf("guest landing: %v", err)
	}
	if err := m.CheckService(&guest, "snmp"); !errors.Is(err, ErrDenied) {
		t.Fatalf("guest service access must be denied: %v", err)
	}
	if err := m.CheckService(&admin, "snmp"); err != nil {
		t.Fatalf("admin service access: %v", err)
	}
	if err := m.CheckClone(&guest); !errors.Is(err, ErrDenied) {
		t.Fatalf("guest clone must be denied: %v", err)
	}
	if err := m.CheckClone(&admin); err != nil {
		t.Fatalf("admin clone: %v", err)
	}
}

func TestSetPolicyReconfigures(t *testing.T) {
	ring := newRing(t, "alice")
	c := issue(t, ring, "alice", "cb")
	m := NewManager(ring, Policy{Default: Deny}, func() time.Time { return t0 })
	if err := m.CheckLaunch(&c); !errors.Is(err, ErrDenied) {
		t.Fatal("initial policy must deny")
	}
	m.SetPolicy(AllowAll)
	if err := m.CheckLaunch(&c); err != nil {
		t.Fatalf("reconfigured policy: %v", err)
	}
	if m.Policy().Default != Allow {
		t.Fatal("Policy() must reflect reconfiguration")
	}
}

func TestServicePermissionNaming(t *testing.T) {
	if ServicePermission("snmp") != "service:snmp" {
		t.Fatal("service permission naming")
	}
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Fatal("effect names")
	}
}
