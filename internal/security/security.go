// Package security implements the NapletSecurityManager of §5.1: a
// policy-driven, permission-based access control component modelled on the
// JDK 1.2 security architecture.
//
// "A security policy is an access-control matrix that says what system
// resources can be accessed, in what fashion, and under what circumstances.
// Specifically, it maps a set of characteristic features of naplets to a set
// of access permission granted to the naplets. System administrators can
// configure the security policy according to the service requirements."
//
// The matrix here matches naplets by owner, role, or codebase and grants or
// denies named permissions. The Navigator consults the manager for LAUNCH
// and LANDING permissions (§2.2); the ResourceManager consults it before
// allocating service channels (§5.3). Credential signatures are verified at
// landing, closing the authentication gap the paper leaves "open for the
// future release".
package security

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cred"
)

// Permission names an action a naplet may be granted.
type Permission string

// Framework permissions. Service access uses ServicePermission.
const (
	// PermLaunch gates dispatching a naplet from this server (§2.2).
	PermLaunch Permission = "launch"
	// PermLanding gates accepting a naplet at this server (§2.2).
	PermLanding Permission = "landing"
	// PermClone gates Par-itinerary cloning.
	PermClone Permission = "clone"
	// PermMessage gates posting inter-naplet messages.
	PermMessage Permission = "message"
)

// ServicePermission names access to a privileged service.
func ServicePermission(service string) Permission {
	return Permission("service:" + service)
}

// Effect is the outcome a rule prescribes.
type Effect int

// Rule effects.
const (
	Deny Effect = iota
	Allow
)

// String returns the effect name.
func (e Effect) String() string {
	if e == Allow {
		return "allow"
	}
	return "deny"
}

// Principal selects naplets a rule applies to. Exactly one form:
//
//	"*"             every naplet
//	"owner:czxu"    naplets created by czxu
//	"role:netadmin" naplets whose credential carries the role
//	"codebase:X"    naplets running codebase X
type Principal string

// matches reports whether the principal selects the credential.
func (p Principal) matches(c *cred.Credential) bool {
	s := string(p)
	switch {
	case s == "*":
		return true
	case strings.HasPrefix(s, "owner:"):
		return c.NapletID.Owner() == s[len("owner:"):]
	case strings.HasPrefix(s, "role:"):
		return c.HasRole(s[len("role:"):])
	case strings.HasPrefix(s, "codebase:"):
		return c.Codebase == s[len("codebase:"):]
	default:
		return false
	}
}

// Rule is one row of the access-control matrix.
type Rule struct {
	// Principal selects the naplets the rule applies to.
	Principal Principal
	// Permissions the rule grants or denies; "*" matches every permission.
	Permissions []Permission
	// Effect is Allow or Deny.
	Effect Effect
}

// matches reports whether the rule covers (credential, permission).
func (r Rule) matches(c *cred.Credential, p Permission) bool {
	if !r.Principal.matches(c) {
		return false
	}
	for _, rp := range r.Permissions {
		if rp == "*" || rp == p {
			return true
		}
	}
	return false
}

// Policy is the access-control matrix: rules evaluated first-match-wins,
// with a configurable default for unmatched requests. The zero value denies
// everything.
type Policy struct {
	Rules []Rule
	// Default applies when no rule matches.
	Default Effect
}

// Decide returns the matrix's decision for (credential, permission).
func (p Policy) Decide(c *cred.Credential, perm Permission) Effect {
	for _, r := range p.Rules {
		if r.matches(c, perm) {
			return r.Effect
		}
	}
	return p.Default
}

// AllowAll is the promiscuous policy used by closed testbeds.
var AllowAll = Policy{Default: Allow}

// Errors reported by permission checks.
var (
	ErrDenied        = errors.New("security: permission denied")
	ErrBadCredential = errors.New("security: credential rejected")
)

// Manager is the per-server NapletSecurityManager. It verifies credentials
// against a key ring and evaluates the configured policy. It is safe for
// concurrent use, and the policy can be reconfigured at runtime ("system
// administrators can configure the security policy", §5.1).
type Manager struct {
	mu     sync.RWMutex
	ring   *cred.KeyRing
	policy Policy
	now    func() time.Time
}

// NewManager builds a security manager. If ring is nil, credential
// signature verification is skipped (the paper's first release behaviour);
// if now is nil, time.Now is used.
func NewManager(ring *cred.KeyRing, policy Policy, now func() time.Time) *Manager {
	if now == nil {
		now = time.Now
	}
	return &Manager{ring: ring, policy: policy, now: now}
}

// SetPolicy replaces the access-control matrix.
func (m *Manager) SetPolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy = p
}

// Policy returns the current matrix.
func (m *Manager) Policy() Policy {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.policy
}

// Check verifies the credential (when a key ring is configured) and
// evaluates the policy for the permission. A nil error grants the
// permission.
func (m *Manager) Check(c *cred.Credential, perm Permission) error {
	if c == nil {
		return fmt.Errorf("%w: no credential", ErrBadCredential)
	}
	m.mu.RLock()
	ring, policy, now := m.ring, m.policy, m.now
	m.mu.RUnlock()
	if ring != nil {
		if err := ring.Verify(*c, now()); err != nil {
			return fmt.Errorf("%w: %v", ErrBadCredential, err)
		}
	}
	if policy.Decide(c, perm) != Allow {
		return fmt.Errorf("%w: %s for naplet %s", ErrDenied, perm, c.NapletID)
	}
	return nil
}

// CheckLaunch gates dispatching a naplet from this server.
func (m *Manager) CheckLaunch(c *cred.Credential) error { return m.Check(c, PermLaunch) }

// CheckLanding gates accepting an inbound naplet.
func (m *Manager) CheckLanding(c *cred.Credential) error { return m.Check(c, PermLanding) }

// CheckClone gates Par-itinerary cloning.
func (m *Manager) CheckClone(c *cred.Credential) error { return m.Check(c, PermClone) }

// CheckService gates opening a service channel to a privileged service.
func (m *Manager) CheckService(c *cred.Credential, service string) error {
	return m.Check(c, ServicePermission(service))
}
