package navigator

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/naplet"
	"repro/internal/overload"
)

// Backoff is the migration retry policy: exponential growth from Initial
// by Factor up to Max, with symmetric multiplicative jitter, over a budget
// of Retries re-attempts. The zero value selects the defaults below.
type Backoff struct {
	// Initial is the delay before the first retry (default 25ms).
	Initial time.Duration
	// Max caps the grown delay (default 2s).
	Max time.Duration
	// Factor multiplies the delay per retry (default 2).
	Factor float64
	// Jitter spreads each delay uniformly over ±Jitter fraction of its
	// nominal value (default 0.2), de-synchronizing retry storms.
	Jitter float64
	// Retries is the retry budget beyond the first attempt; 0 means no
	// retries (negative values are treated as 0).
	Retries int
	// FailFast consults the navigator's failure detector before spending
	// the budget: a dispatch against a peer presumed dead returns
	// ErrPeerDead after at most one probe attempt. Callers set it only
	// when they have a failover strategy for the dead destination —
	// without one, the full budget is the better bet against a peer that
	// may merely be partitioned.
	FailFast bool
}

// Backoff defaults.
const (
	DefaultBackoffInitial = 25 * time.Millisecond
	DefaultBackoffMax     = 2 * time.Second
	DefaultBackoffFactor  = 2.0
	DefaultBackoffJitter  = 0.2
)

// withDefaults fills unset fields.
func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = DefaultBackoffInitial
	}
	if b.Max <= 0 {
		b.Max = DefaultBackoffMax
	}
	if b.Max < b.Initial {
		b.Max = b.Initial
	}
	if b.Factor < 1 {
		b.Factor = DefaultBackoffFactor
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = DefaultBackoffJitter
	}
	if b.Retries < 0 {
		b.Retries = 0
	}
	return b
}

// Delay returns the backoff before retry number attempt (0-based: the
// delay between the first failure and the first retry is Delay(0)). rnd
// supplies a uniform sample in [0,1) for the jitter; nil disables jitter.
// The jittered delay stays within [nominal*(1-Jitter), nominal*(1+Jitter)]
// where nominal = min(Max, Initial*Factor^attempt).
func (b Backoff) Delay(attempt int, rnd func() float64) time.Duration {
	b = b.withDefaults()
	d := float64(b.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rnd != nil && b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rnd()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// IsPermanent reports whether a dispatch error is a policy decision that
// must not be retried: the destination's refusal is authoritative, and
// retrying it only burns the budget (and an hour-long backoff).
func IsPermanent(err error) bool {
	return errors.Is(err, ErrLandingDenied) ||
		errors.Is(err, ErrLaunchDenied) ||
		errors.Is(err, ErrRejected)
}

// ErrPeerDead is returned by DispatchRetry when the failure detector
// presumes the destination dead: either the peer was already dead and this
// caller lost the per-interval probe slot (no network attempt was made), or
// the attempts made here pushed it over the dead threshold. Callers should
// apply their failover policy instead of retrying.
var ErrPeerDead = errors.New("navigator: destination presumed dead")

// DispatchRetry migrates rec to dest under the given retry policy: one
// transfer ID for the whole logical migration (so the destination
// deduplicates replays after a lost acknowledgement), exponential backoff
// with jitter between attempts, and fail-fast on permanent (policy)
// errors. stop aborts the backoff wait early (a closing server); ctx
// bounds the whole operation, and each attempt is additionally bounded by
// twice the navigator's call timeout. Retries and backoff sleeps feed the
// naplet_navigator_dispatch_retries_total counter and the
// naplet_navigator_backoff_seconds histogram.
func (n *Navigator) DispatchRetry(ctx context.Context, rec *naplet.Record, dest string, pol Backoff, stop <-chan struct{}) (Breakdown, error) {
	return n.DispatchRetryID(ctx, rec, dest, n.NewTransferID(), pol, stop)
}

// DispatchRetryID is DispatchRetry with a caller-supplied transfer ID.
// Crash recovery uses it to replay an interrupted migration under the
// original ID, so a destination that already landed the naplet re-acks via
// its dedup window instead of landing a duplicate.
//
// When the navigator carries a failure detector and the policy opts in
// with FailFast, a dispatch that starts against a peer presumed dead fails
// fast instead of burning the backoff budget: at most one probe attempt
// per probe interval reaches the network, and every other caller returns
// ErrPeerDead without touching it. A dispatch that starts against a live
// peer keeps its full retry budget — the detector learns from its
// failures but does not cut it short, so transient loss and heal-in-time
// partitions still ride through.
func (n *Navigator) DispatchRetryID(ctx context.Context, rec *naplet.Record, dest string, tid string, pol Backoff, stop <-chan struct{}) (Breakdown, error) {
	pol = pol.withDefaults()
	hd := n.cfg.Health
	br := n.cfg.Breakers
	if berr := br.Allow(dest); berr != nil {
		// The circuit breaker refused locally: no network attempt, no
		// probe slot burned. The destination is presumed dead for
		// failover purposes.
		return Breakdown{}, fmt.Errorf("%w: %w", ErrPeerDead, berr)
	}
	probing := false
	if pol.FailFast && hd.Dead(dest) {
		if !hd.Allow(dest) {
			return Breakdown{}, ErrPeerDead
		}
		probing = true
	}
	// The retry budget charges the whole logical migration once and each
	// retry against the earned balance.
	n.cfg.RetryBudget.RecordAttempt()
	var bd Breakdown
	var err error
	// unresolved tracks whether any attempt so far may have silently
	// landed the naplet (its transfer was sent but never acknowledged).
	// Attempts run strictly one after another, so a later definitive
	// transfer reply speaks for every earlier attempt of the same ID: an
	// acceptance is the landing we feared (success), and a rejection
	// proves nothing landed — had a replay landed, the destination's
	// dedup window would have re-acknowledged it instead of rejecting.
	// Any failure returned while unresolved carries ErrTransferUnresolved
	// so the caller's failover logic knows not to fork the naplet.
	unresolved := false
	mark := func(err error) error {
		if unresolved && !errors.Is(err, ErrTransferUnresolved) {
			return fmt.Errorf("%w: %w", ErrTransferUnresolved, err)
		}
		return err
	}
	for attempt := 0; ; attempt++ {
		actx, cancel := context.WithTimeout(ctx, 2*n.cfg.CallTimeout)
		bd, err = n.DispatchID(actx, rec, dest, tid)
		cancel()
		if err == nil {
			hd.ReportSuccess(dest)
			br.OnSuccess(dest)
			return bd, nil
		}
		if errors.Is(err, ErrTransferUnresolved) {
			unresolved = true
		} else if errors.Is(err, ErrRejected) {
			unresolved = false
		}
		if IsPermanent(err) {
			// The peer answered — its refusal proves it is alive.
			hd.ReportSuccess(dest)
			br.OnSuccess(dest)
			return bd, mark(err)
		}
		if overload.Liveness(err) {
			// An overload or deadline shed is an answer the peer sent:
			// proof of life, not of death. Feed the detector and breaker
			// success (liveness) and keep retrying under backoff — the
			// backoff itself is the load-shedding response.
			hd.ReportSuccess(dest)
			br.OnSuccess(dest)
			probing = false
		} else {
			hd.ReportFailure(dest)
			br.OnFailure(dest)
			if probing {
				// The one probe this interval allowed just failed: the
				// peer stays presumed dead and this dispatch ends here.
				return bd, mark(fmt.Errorf("%w: %v", ErrPeerDead, err))
			}
		}
		if attempt >= pol.Retries {
			return bd, mark(err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return bd, mark(err)
		}
		if !n.cfg.RetryBudget.AllowRetry() {
			// The token bucket ran dry: retrying further would amplify
			// the very overload the peer is shedding.
			return bd, mark(fmt.Errorf("%w: %w", overload.ErrRetryBudgetExhausted, err))
		}
		if berr := br.Allow(dest); berr != nil {
			// The breaker opened mid-loop (threshold crossed above).
			return bd, mark(fmt.Errorf("%w: %w", ErrPeerDead, berr))
		}
		delay := pol.Delay(attempt, jitterRand)
		n.met.retries.Inc()
		n.met.backoff.ObserveDuration(delay)
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-stop:
			t.Stop()
			return bd, mark(err)
		case <-ctx.Done():
			t.Stop()
			return bd, mark(err)
		}
	}
}

// jitterRand is the process-wide jitter source. Jitter exists to spread
// retries in time, not to drive test-visible decisions, so the global
// (goroutine-safe) generator is sufficient.
func jitterRand() float64 { return rand.Float64() }
