package navigator

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/wire"
)

// TestDispatchOverloadLiveness: an overloaded peer answers with a typed
// shed — proof of life. The navigator must keep retrying under backoff
// without feeding the failure detector or the circuit breaker, and the
// dispatch lands once the peer recovers.
func TestDispatchOverloadLiveness(t *testing.T) {
	clk := &tickClock{now: t0}
	hd := health.New(health.Config{Clock: clk.Now})
	brk := overload.NewBreakers(overload.BreakerConfig{FailureThreshold: 2, Health: hd})

	net := netsim.New(netsim.Config{CallTimeout: time.Second})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, nil, Config{
		Health:      hd,
		Breakers:    brk,
		CallTimeout: time.Second,
	})

	var sheds atomic.Int64
	if _, err := net.Attach("b", func(from string, f wire.Frame) (wire.Frame, error) {
		if f.Kind == wire.KindLandingRequest && sheds.Add(1) <= 3 {
			return wire.Frame{}, overload.ErrOverloaded
		}
		switch f.Kind {
		case wire.KindLandingRequest:
			return wire.NewFrame(wire.KindLandingReply, f.To, f.From, &LandingReplyBody{Granted: true})
		case wire.KindNapletTransfer:
			return wire.NewFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Accepted: true})
		default:
			return wire.Frame{}, errors.New("unexpected kind " + string(f.Kind))
		}
	}); err != nil {
		t.Fatal(err)
	}

	rec := record(t, nil, "a")
	pol := Backoff{Initial: time.Millisecond, Retries: 5, Jitter: 0}
	if _, err := a.nav.DispatchRetry(context.Background(), rec, "b", pol, nil); err != nil {
		t.Fatalf("dispatch through overload: %v", err)
	}
	// Three sheds were answers, not failures: the peer never left alive
	// and the breaker never opened.
	if got := hd.State("b"); got != health.StateAlive {
		t.Fatalf("detector state = %v, want alive (sheds are proof of life)", got)
	}
	if got := brk.Stats().TotalOpened(); got != 0 {
		t.Fatalf("breaker opened %d times on overload replies", got)
	}
}

// TestDispatchBreakerOpensAndRefuses: transport-level failures open the
// breaker at its threshold mid-loop, the dispatch ends with ErrPeerDead
// wrapping ErrBreakerOpen, and the next dispatch is refused locally with
// zero network attempts.
func TestDispatchBreakerOpensAndRefuses(t *testing.T) {
	clk := &tickClock{now: t0}
	hd := health.New(health.Config{Clock: clk.Now})
	brk := overload.NewBreakers(overload.BreakerConfig{FailureThreshold: 2, Health: hd})

	net := netsim.New(netsim.Config{CallTimeout: 50 * time.Millisecond})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, nil, Config{
		Health:      hd,
		Breakers:    brk,
		CallTimeout: 50 * time.Millisecond,
	})

	var calls atomic.Int64
	if _, err := net.Attach("b", func(from string, f wire.Frame) (wire.Frame, error) {
		calls.Add(1)
		return wire.Frame{}, errors.New("b: wedged")
	}); err != nil {
		t.Fatal(err)
	}

	rec := record(t, nil, "a")
	pol := Backoff{Initial: time.Millisecond, Retries: 10, Jitter: 0}
	_, err := a.nav.DispatchRetry(context.Background(), rec, "b", pol, nil)
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
	if !errors.Is(err, overload.ErrBreakerOpen) {
		t.Fatalf("err = %v, want wrapped ErrBreakerOpen", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("network attempts = %d, want exactly FailureThreshold (2)", got)
	}
	if got := brk.Stats().Opened[overload.OpenReasonFailures]; got != 1 {
		t.Fatalf("failure opens = %d, want 1", got)
	}

	// The open breaker refuses the next dispatch before any network I/O.
	if _, err := a.nav.DispatchRetry(context.Background(), rec, "b", pol, nil); !errors.Is(err, overload.ErrBreakerOpen) {
		t.Fatalf("second dispatch err = %v, want ErrBreakerOpen", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("refused dispatch touched the network: %d attempts", got)
	}
}

// TestDispatchRetryBudgetExhausted: with a dry token bucket the
// navigator surfaces the failure instead of amplifying it.
func TestDispatchRetryBudgetExhausted(t *testing.T) {
	rb := overload.NewRetryBudget(overload.RetryBudgetConfig{Ratio: 0.1, Burst: 1})
	net := netsim.New(netsim.Config{CallTimeout: 50 * time.Millisecond})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, nil, Config{
		RetryBudget: rb,
		CallTimeout: 50 * time.Millisecond,
	})

	var calls atomic.Int64
	if _, err := net.Attach("b", func(from string, f wire.Frame) (wire.Frame, error) {
		calls.Add(1)
		return wire.Frame{}, errors.New("b: failing")
	}); err != nil {
		t.Fatal(err)
	}

	rec := record(t, nil, "a")
	pol := Backoff{Initial: time.Millisecond, Retries: 10, Jitter: 0}
	_, err := a.nav.DispatchRetry(context.Background(), rec, "b", pol, nil)
	if !errors.Is(err, overload.ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	// Burst 1 buys the first attempt plus exactly one retry.
	if got := calls.Load(); got != 2 {
		t.Fatalf("network attempts = %d, want 2 (policy had 10 retries, budget allowed 1)", got)
	}
	if got := rb.Exhausted(); got != 1 {
		t.Fatalf("exhausted counter = %d, want 1", got)
	}
}
