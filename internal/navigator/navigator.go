// Package navigator implements the Navigator of §2.2: the component that
// performs naplet launch and migration.
//
// The migration protocol follows the paper:
//
//  1. The origin Navigator consults its NapletSecurityManager for a LAUNCH
//     permission.
//  2. It contacts the destination Navigator for a LANDING permission. The
//     destination consults its own security manager (and resource
//     admission), and — modelling lazy code loading — tells the origin
//     whether it still needs the naplet's code bundle.
//  3. The naplet record (and the code bundle, in push mode) transfers.
//  4. The destination registers the ARRIVAL event (with the directory
//     and/or the naplet's home manager) and only then starts execution:
//     "We postpone the execution of the naplet until the arrival
//     registration is acknowledged."
//  5. The origin receives the acknowledgement, registers the DEPART event,
//     and releases the resources occupied by the naplet.
//
// In pull mode the destination fetches the code bundle from the naplet's
// home (the codebase URL's location) instead of receiving it from the
// origin, reproducing the paper's on-demand class loading topology.
package navigator

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cred"
	"repro/internal/dedup"
	"repro/internal/directory"
	"repro/internal/health"
	"repro/internal/id"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/overload"
	"repro/internal/registry"
	"repro/internal/security"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// CodeDelivery selects how code bundles reach a server that lacks them.
type CodeDelivery int

// Code delivery modes.
const (
	// Push: the origin attaches the bundle to the transfer when the
	// destination reports a cold cache.
	Push CodeDelivery = iota
	// Pull: the destination fetches the bundle from the naplet's home
	// after the transfer, before starting execution.
	Pull
)

// String returns the mode name.
func (c CodeDelivery) String() string {
	if c == Pull {
		return "pull"
	}
	return "push"
}

// LandingRequestBody asks the destination for a LANDING permission.
type LandingRequestBody struct {
	NapletID   id.NapletID
	Credential cred.Credential
	Codebase   string
	StateSize  int
	// CodeDigest is the content digest (hex SHA-256) of the codebase's
	// bundle, when the origin knows it. A destination holding any codebase
	// with the same digest serves the landing from its content-addressed
	// cache and never asks for a refetch. Empty from origins predating the
	// field.
	CodeDigest string
}

// LandingReplyBody grants or refuses landing.
type LandingReplyBody struct {
	Granted bool
	// NeedCode asks the origin to attach the code bundle (push mode).
	NeedCode bool
	Reason   string
}

// TransferBody carries the serialized naplet and optionally its code.
type TransferBody struct {
	Record []byte
	Code   []byte
	// TransferID identifies the logical migration, stable across retries,
	// so a retry after a lost acknowledgement does not land the naplet
	// twice.
	TransferID string
}

// TransferAckBody acknowledges a completed landing.
type TransferAckBody struct {
	Accepted bool
	Reason   string
}

// CodeFetchBody requests a code bundle by name (pull mode).
type CodeFetchBody struct {
	Codebase string
}

// CodeBundleBody carries a code bundle.
type CodeBundleBody struct {
	Data []byte
}

// HomeEventBody reports an arrival or departure to the naplet's home
// manager (the distributed directory of §4.1).
type HomeEventBody struct {
	NapletID id.NapletID
	Server   string
	Arrival  bool
	At       time.Time
}

// Errors reported by the navigator.
var (
	ErrLandingDenied = errors.New("navigator: LANDING permission denied")
	ErrLaunchDenied  = errors.New("navigator: LAUNCH permission denied")
	ErrRejected      = errors.New("navigator: transfer rejected")
	// ErrTransferUnresolved marks a failed dispatch whose transfer frame
	// may nonetheless have been delivered and landed: the request was
	// sent but the acknowledgement never arrived (lost frame, lost
	// reply, timeout). The naplet could be alive at the destination, so
	// the origin must not reroute this copy — a failover here would fork
	// it. Recovery belongs to the owner: relaunch under a fresh identity.
	ErrTransferUnresolved = errors.New("navigator: transfer outcome unknown")
)

// Breakdown records where one dispatch spent its time, feeding the
// migration-cost experiment (E7).
type Breakdown struct {
	Serialize   time.Duration
	Negotiation time.Duration
	Transfer    time.Duration
	Total       time.Duration
	// RecordBytes and CodeBytes are the transferred sizes.
	RecordBytes int
	CodeBytes   int
}

// Stats is a point-in-time snapshot of navigator activity. The counters
// live in the telemetry registry; Stats is the legacy view built by
// Navigator.Stats.
type Stats struct {
	Dispatched  int64
	Landed      int64
	Refused     int64
	CodePushed  int64
	CodePulled  int64
	CodeServed  int64
	HomeReports int64
	// Retries counts dispatch re-attempts taken under a Backoff policy.
	Retries int64
	// DupTransfers counts replayed TRANSFER frames absorbed by the
	// idempotency window (re-acknowledged without landing again).
	DupTransfers int64
}

// metrics holds the navigator's registered telemetry handles.
type metrics struct {
	dispatched  *telemetry.Counter
	landed      *telemetry.Counter
	refused     *telemetry.Counter
	codePushed  *telemetry.Counter
	codePulled  *telemetry.Counter
	codeServed  *telemetry.Counter
	homeReports *telemetry.Counter
	retries     *telemetry.Counter
	dupTransfer *telemetry.Counter
	hopLatency  *telemetry.Histogram
	backoff     *telemetry.Histogram
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		dispatched:  reg.Counter("naplet_navigator_dispatched_total", "naplets dispatched from this server"),
		landed:      reg.Counter("naplet_navigator_landed_total", "naplets landed at this server"),
		refused:     reg.Counter("naplet_navigator_refused_total", "landings refused (security or admission)"),
		codePushed:  reg.Counter("naplet_navigator_code_pushed_total", "code bundles attached to outbound transfers"),
		codePulled:  reg.Counter("naplet_navigator_code_pulled_total", "code bundles fetched from naplet homes"),
		codeServed:  reg.Counter("naplet_navigator_code_served_total", "code bundles served to cold caches"),
		homeReports: reg.Counter("naplet_navigator_home_reports_total", "arrival/departure events reported to homes"),
		retries:     reg.Counter("naplet_navigator_dispatch_retries_total", "dispatch re-attempts under the backoff policy"),
		dupTransfer: reg.Counter("naplet_navigator_dup_transfers_total", "replayed TRANSFER frames absorbed by the dedup window"),
		hopLatency: reg.Histogram("naplet_navigator_hop_latency_seconds",
			"end-to-end migration (dispatch) latency", telemetry.LatencyBuckets),
		backoff: reg.Histogram("naplet_navigator_backoff_seconds",
			"backoff sleeps between dispatch retries", telemetry.LatencyBuckets),
	}
}

// LandFunc receives an accepted naplet for execution; the server's visit
// engine. It runs on its own goroutine.
type LandFunc func(rec *naplet.Record, source string)

// AdmitFunc lets the resource manager veto landings (capacity, load).
type AdmitFunc func(req LandingRequestBody) error

// Config parameterizes a navigator.
type Config struct {
	// CodeDelivery selects push or pull bundle transport.
	CodeDelivery CodeDelivery
	// Directory, when set, receives ARRIVAL/DEPART registrations: a
	// single-node client or a sharded, replicated plane. Takes precedence
	// over DirectoryAddr.
	Directory directory.Directory
	// DirectoryAddr, when set (and Directory is nil), names a single
	// directory node to register with.
	DirectoryAddr string
	// ReportHome, when set, sends arrival/departure events to each
	// naplet's home manager (distributed directory mode).
	ReportHome bool
	// CallTimeout bounds each protocol call (default 30s).
	CallTimeout time.Duration
	// Telemetry receives the navigator's counters and hop-latency
	// histogram; nil uses a private registry.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records one HopSpan per dispatch attempt,
	// extending the paper's NavigationLog with cost and outcome detail.
	Tracer *telemetry.HopTracer
	// DedupMax bounds the transfer-ID idempotency window (default
	// dedup.DefaultMax entries).
	DedupMax int
	// DedupTTL bounds how long an accepted transfer ID is remembered
	// (default dedup.DefaultTTL). A replay older than this is landed
	// again; the window must outlive any plausible retry schedule.
	DedupTTL time.Duration
	// Health, when non-nil, receives per-peer reachability observations
	// from the dispatch path and gates retries: dispatch to a peer the
	// detector presumes dead fails fast with ErrPeerDead instead of
	// burning the full backoff budget.
	Health *health.Detector
	// Breakers, when non-nil, gates dispatches per destination: an open
	// breaker fails the dispatch locally with ErrPeerDead before any
	// network attempt. Dispatch outcomes feed it.
	Breakers *overload.Breakers
	// RetryBudget, when non-nil, bounds dispatch retries to a fraction
	// of first attempts (see overload.RetryBudget). Nil — the default —
	// leaves retries bounded only by the Backoff policy.
	RetryBudget *overload.RetryBudget
}

// Navigator is the per-server migration component.
type Navigator struct {
	cfg    Config
	server string
	node   transport.Node
	sec    *security.Manager
	mgr    *manager.Manager
	reg    *registry.Registry
	cache  *registry.Cache
	clock  func() time.Time
	dir    directory.Directory

	onLand  LandFunc
	admit   AdmitFunc
	persist func(rec *naplet.Record)

	tidSeq   atomic.Uint64
	bootID   string        // random per-boot nonce scoping transfer IDs
	accepted *dedup.Window // transfer IDs already landed here

	// landing single-flights concurrent HandleTransfer calls per transfer
	// ID: a retry racing a still-running first delivery must wait for it
	// to settle (and be absorbed by the window), not land a second copy.
	landingMu sync.Mutex
	landing   map[string]chan struct{}

	met *metrics
}

// New builds a navigator. sec may be nil (no permission checks); cache must
// be non-nil; nil clock means time.Now.
func New(cfg Config, server string, node transport.Node, sec *security.Manager, mgr *manager.Manager, reg *registry.Registry, cache *registry.Cache, clock func() time.Time) *Navigator {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 30 * time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	treg := cfg.Telemetry
	if treg == nil {
		treg = telemetry.NewRegistry()
	}
	var nonce [4]byte
	if _, err := cryptorand.Read(nonce[:]); err != nil {
		panic(fmt.Sprintf("navigator: boot nonce: %v", err))
	}
	dir := cfg.Directory
	if dir == nil && cfg.DirectoryAddr != "" {
		// Built once; registrations reuse it instead of constructing a
		// client per event.
		dir = directory.NewClient(node, cfg.DirectoryAddr)
	}
	return &Navigator{
		cfg:      cfg,
		server:   server,
		node:     node,
		sec:      sec,
		mgr:      mgr,
		reg:      reg,
		cache:    cache,
		clock:    clock,
		dir:      dir,
		bootID:   hex.EncodeToString(nonce[:]),
		met:      newMetrics(treg),
		accepted: dedup.NewWindow(cfg.DedupMax, cfg.DedupTTL, clock),
		landing:  make(map[string]chan struct{}),
	}
}

// NewTransferID mints an identifier for one logical migration; callers
// that retry a Dispatch reuse the same ID so the destination can
// deduplicate replayed transfers. The per-boot nonce keeps IDs minted
// after a restart distinct from the previous incarnation's: destinations
// persist their accepted-transfer window in the durable dock, so a bare
// counter restarting at 1 would make a fresh transfer look like a replay
// and be absorbed without ever landing.
func (n *Navigator) NewTransferID() string {
	return fmt.Sprintf("%s/%s/%d", n.server, n.bootID, n.tidSeq.Add(1))
}

// SetLandFunc installs the execution engine invoked for accepted naplets.
func (n *Navigator) SetLandFunc(f LandFunc) { n.onLand = f }

// SetAdmitFunc installs the resource-admission veto.
func (n *Navigator) SetAdmitFunc(f AdmitFunc) { n.admit = f }

// SetPersistFunc installs a hook called synchronously inside HandleTransfer
// with the newly landed record, after the landing is accepted and marked
// but before the acknowledgement returns to the origin. A durable dock
// commits its snapshot here, so a naplet acknowledged as landed survives a
// crash of this server (commit-before-ack: the origin only releases its
// copy after the ack).
func (n *Navigator) SetPersistFunc(f func(rec *naplet.Record)) { n.persist = f }

// AcceptedSnapshot returns the transfer IDs currently remembered by the
// landing dedup window, for persistence across a restart.
func (n *Navigator) AcceptedSnapshot() []string { return n.accepted.Keys() }

// RestoreAccepted re-marks previously accepted transfer IDs so replays of
// pre-restart migrations are still absorbed after recovery.
func (n *Navigator) RestoreAccepted(ids []string) {
	for _, id := range ids {
		n.accepted.Mark(id)
	}
}

// Stats snapshots the navigator's activity counters from the telemetry
// registry.
func (n *Navigator) Stats() Stats {
	return Stats{
		Dispatched:   n.met.dispatched.Value(),
		Landed:       n.met.landed.Value(),
		Refused:      n.met.refused.Value(),
		CodePushed:   n.met.codePushed.Value(),
		CodePulled:   n.met.codePulled.Value(),
		CodeServed:   n.met.codeServed.Value(),
		HomeReports:  n.met.homeReports.Value(),
		Retries:      n.met.retries.Value(),
		DupTransfers: n.met.dupTransfer.Value(),
	}
}

// ---- Origin side ----

// Dispatch migrates a resident naplet to dest, following the paper's
// protocol. On success the origin's manager has recorded the departure and
// the directory/home have been notified; the caller releases local
// resources (mailbox, monitor group). The returned Breakdown reports the
// migration cost components.
func (n *Navigator) Dispatch(ctx context.Context, rec *naplet.Record, dest string) (Breakdown, error) {
	return n.DispatchID(ctx, rec, dest, n.NewTransferID())
}

// DispatchID is Dispatch with a caller-supplied transfer ID; retries of
// the same logical migration must reuse the ID. Every attempt records a
// hop span when a tracer is configured; successful dispatches also feed
// the hop-latency histogram.
func (n *Navigator) DispatchID(ctx context.Context, rec *naplet.Record, dest, transferID string) (Breakdown, error) {
	hop := rec.Log.Len()
	wallStart := n.clock()
	bd, err := n.dispatchID(ctx, rec, dest, transferID)
	if err == nil {
		n.met.hopLatency.ObserveDuration(bd.Total)
	}
	if n.cfg.Tracer != nil {
		span := telemetry.HopSpan{
			Naplet:      rec.ID.Key(),
			Hop:         hop,
			From:        n.server,
			To:          dest,
			Start:       wallStart,
			Serialize:   bd.Serialize,
			Negotiation: bd.Negotiation,
			Transfer:    bd.Transfer,
			Total:       bd.Total,
			RecordBytes: bd.RecordBytes,
			CodeBytes:   bd.CodeBytes,
			Outcome:     telemetry.OutcomeOK,
		}
		if err != nil {
			span.Outcome = telemetry.OutcomeFailed
			if errors.Is(err, ErrLandingDenied) {
				span.Outcome = telemetry.OutcomeRefused
			}
			span.Err = err.Error()
			span.Total = n.clock().Sub(wallStart)
		}
		n.cfg.Tracer.Record(span)
	}
	return bd, err
}

func (n *Navigator) dispatchID(ctx context.Context, rec *naplet.Record, dest, transferID string) (Breakdown, error) {
	var bd Breakdown
	start := n.clock()

	// 1. LAUNCH permission at the origin.
	if n.sec != nil {
		if err := n.sec.CheckLaunch(&rec.Credential); err != nil {
			return bd, fmt.Errorf("%w: %v", ErrLaunchDenied, err)
		}
	}

	// Serialize early so the landing request can carry the true size.
	serStart := n.clock()
	recordBytes, err := EncodeRecord(rec)
	if err != nil {
		return bd, err
	}
	bd.Serialize = n.clock().Sub(serStart)
	bd.RecordBytes = len(recordBytes)

	// 2. LANDING permission at the destination. The request carries the
	// bundle's content digest so a destination that already holds the
	// bytes (under any codebase name) can skip the code transfer.
	negStart := n.clock()
	req := LandingRequestBody{
		NapletID:   rec.ID,
		Credential: rec.Credential,
		Codebase:   rec.Codebase,
		StateSize:  len(recordBytes),
	}
	if n.reg != nil {
		req.CodeDigest, _ = n.reg.BundleDigest(rec.Codebase)
	}
	f := wire.BinaryFrame(wire.KindLandingRequest, "", "", &req)
	cctx, cancel := context.WithTimeout(ctx, n.cfg.CallTimeout)
	reply, err := n.node.Call(cctx, dest, f)
	cancel()
	if err != nil {
		return bd, fmt.Errorf("navigator: landing request to %s: %w", dest, err)
	}
	var landing LandingReplyBody
	if err := landing.Decode(reply.Payload); err != nil {
		return bd, err
	}
	bd.Negotiation = n.clock().Sub(negStart)
	if !landing.Granted {
		return bd, fmt.Errorf("%w by %s: %s", ErrLandingDenied, dest, landing.Reason)
	}

	// 3. Transfer, attaching code in push mode when the destination needs
	// it.
	transfer := TransferBody{Record: recordBytes, TransferID: transferID}
	if landing.NeedCode && n.cfg.CodeDelivery == Push {
		bundle, err := n.reg.Bundle(rec.Codebase)
		if err != nil {
			return bd, err
		}
		transfer.Code = bundle
		bd.CodeBytes = len(bundle)
		n.met.codePushed.Inc()
	}
	trStart := n.clock()
	tf := wire.BinaryFrame(wire.KindNapletTransfer, "", "", &transfer)
	// Register the DEPART event before the transfer so the destination's
	// ARRIVAL registration is always the newer record: this preserves the
	// paper's invariant that the directory holds current information
	// (§4.1 — if the latest entry is a departure the naplet is in transit,
	// if an arrival it is at that server).
	departAt := n.clock()
	n.RegisterEvent(ctx, rec, directory.Departure, n.server, dest, departAt)
	cctx, cancel = context.WithTimeout(ctx, n.cfg.CallTimeout)
	ackReply, err := n.node.Call(cctx, dest, tf)
	cancel()
	if err == nil {
		var ack TransferAckBody
		if derr := ack.Decode(ackReply.Payload); derr != nil {
			// The destination replied, so the handler ran — and may have
			// landed the naplet — but the ack is unreadable.
			err = fmt.Errorf("%w: transfer ack from %s: %v", ErrTransferUnresolved, dest, derr)
		} else if !ack.Accepted {
			err = fmt.Errorf("%w by %s: %s", ErrRejected, dest, ack.Reason)
		}
	} else if transport.Refused(err) {
		// Refused before delivery: the naplet provably did not land.
		err = fmt.Errorf("navigator: transfer to %s: %w", dest, err)
	} else {
		// Lost somewhere past the send: the transfer may have landed.
		err = fmt.Errorf("%w: transfer to %s: %w", ErrTransferUnresolved, dest, err)
	}
	if err != nil {
		// The naplet never left: correct the directory with a fresh
		// arrival at this server.
		n.RegisterEvent(ctx, rec, directory.Arrival, n.server, "", n.clock())
		return bd, err
	}
	bd.Transfer = n.clock().Sub(trStart)

	// 5. Success: record the departure locally and release.
	now := n.clock()
	if n.mgr != nil {
		_ = n.mgr.RecordDeparture(rec.ID, dest, now)
	}
	rec.Log.RecordDeparture(n.server, now)
	n.met.dispatched.Inc()
	bd.Total = n.clock().Sub(start)
	return bd, nil
}

// eventSeq derives the registration's tie-breaking sequence from the
// naplet's navigation log, which travels with the record and so is
// monotone across servers. Arrivals register after RecordArrival (the log
// already holds the new hop), departures before RecordDeparture (it does
// not yet), so hop k yields arrival seq 2k-1 and departure seq 2k.
func eventSeq(rec *naplet.Record, ev directory.Event) uint64 {
	hops := uint64(rec.Log.Len())
	if ev == directory.Arrival {
		if hops == 0 {
			return 0
		}
		return 2*hops - 1
	}
	return 2 * hops
}

// RegisterEvent reports an arrival/departure to the directory and/or the
// naplet's home manager, best effort. dest is the migration destination of
// a departure (the forwarding pointer lookups resolve to) and empty for
// arrivals. It is exported so the server can register launch-time arrivals
// and clone births.
func (n *Navigator) RegisterEvent(ctx context.Context, rec *naplet.Record, ev directory.Event, server, dest string, at time.Time) {
	if n.dir != nil {
		cctx, cancel := context.WithTimeout(ctx, n.cfg.CallTimeout)
		_ = n.dir.RegisterEvent(cctx, directory.Registration{
			NapletID: rec.ID, Event: ev,
			Server: server, Dest: dest,
			At: at, Seq: eventSeq(rec, ev),
		})
		cancel()
	}
	if n.cfg.ReportHome && rec.Home != n.server {
		body := HomeEventBody{
			NapletID: rec.ID,
			Server:   server,
			Arrival:  ev == directory.Arrival,
			At:       at,
		}
		f := wire.BinaryFrame(wire.KindHomeEvent, "", "", &body)
		cctx, cancel := context.WithTimeout(ctx, n.cfg.CallTimeout)
		_, _ = n.node.Call(cctx, rec.Home, f)
		cancel()
		n.met.homeReports.Inc()
	}
	if n.cfg.ReportHome && rec.Home == n.server && n.mgr != nil {
		n.mgr.HomeRecord(rec.ID, server, ev == directory.Arrival, at)
	}
}

// ---- Destination side ----

// HandleLandingRequest answers a KindLandingRequest frame.
func (n *Navigator) HandleLandingRequest(from string, f wire.Frame) (wire.Frame, error) {
	var req LandingRequestBody
	if err := req.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	reply := LandingReplyBody{}
	if n.sec != nil {
		if err := n.sec.CheckLanding(&req.Credential); err != nil {
			n.met.refused.Inc()
			reply.Reason = err.Error()
			return wire.BinaryFrame(wire.KindLandingReply, f.To, f.From, &reply), nil
		}
	}
	if n.admit != nil {
		if err := n.admit(req); err != nil {
			n.met.refused.Inc()
			reply.Reason = err.Error()
			return wire.BinaryFrame(wire.KindLandingReply, f.To, f.From, &reply), nil
		}
	}
	reply.Granted = true
	// The content-addressed alias: an unknown codebase name whose bundle
	// digest is already cached (fetched under another name, or before an
	// eviction-by-name) lands warm without a refetch.
	reply.NeedCode = !n.cache.Has(req.Codebase) && !n.cache.Alias(req.Codebase, req.CodeDigest)
	return wire.BinaryFrame(wire.KindLandingReply, f.To, f.From, &reply), nil
}

// HandleTransfer answers a KindNapletTransfer frame: it decodes the
// naplet, completes code loading, registers the arrival (synchronously,
// before execution), and hands the naplet to the visit engine.
func (n *Navigator) HandleTransfer(from string, f wire.Frame) (wire.Frame, error) {
	var transfer TransferBody
	if err := transfer.Decode(f.Payload); err != nil {
		// Reply with a typed rejection, not an error frame: a rejection
		// proves to the origin that nothing landed here, which its
		// failover logic relies on. (An error frame would be ambiguous —
		// it is also what a handler panic produces.)
		return wire.BinaryFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Reason: err.Error()}), nil
	}
	rec, err := DecodeRecord(transfer.Record)
	if err != nil {
		return wire.BinaryFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Reason: err.Error()}), nil
	}
	// Deduplicate replayed transfers: if the acknowledgement of a landing
	// was lost (or the frame itself was duplicated in flight), the same
	// transfer ID arrives again; the naplet already landed, so just
	// re-acknowledge. The window is keyed by transfer ID alone, so even a
	// stale replay arriving after a newer migration of the same naplet is
	// absorbed rather than double-landing it. Concurrent deliveries of
	// the same ID — a retry racing a first delivery whose handler is
	// still running (the window is marked only once the landing
	// succeeds) — are single-flighted: the second waits for the first to
	// settle and then reads the window, so two copies can never land.
	if transfer.TransferID != "" {
		for {
			if n.accepted.Seen(transfer.TransferID) {
				n.met.dupTransfer.Inc()
				return wire.BinaryFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Accepted: true}), nil
			}
			n.landingMu.Lock()
			settled, busy := n.landing[transfer.TransferID]
			if !busy {
				n.landing[transfer.TransferID] = make(chan struct{})
				n.landingMu.Unlock()
				break
			}
			n.landingMu.Unlock()
			<-settled
		}
		defer func() {
			n.landingMu.Lock()
			close(n.landing[transfer.TransferID])
			delete(n.landing, transfer.TransferID)
			n.landingMu.Unlock()
		}()
	}
	// Re-verify the credential on the actual record: the landing request
	// is not trusted to match the transfer.
	if n.sec != nil {
		if err := n.sec.CheckLanding(&rec.Credential); err != nil {
			n.met.refused.Inc()
			return wire.BinaryFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Reason: err.Error()}), nil
		}
	}
	if !rec.Credential.NapletID.Equal(rec.ID) {
		n.met.refused.Inc()
		return wire.BinaryFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Reason: "credential does not certify this naplet"}), nil
	}

	// Lazy code loading. Received bundles are cached under their content
	// digest too (self-certified by hashing the received bytes), so later
	// landings of any codebase with the same content skip the transfer.
	if len(transfer.Code) > 0 {
		n.cache.LoadedDigest(rec.Codebase, bundleDigest(transfer.Code), len(transfer.Code))
	} else if !n.cache.Has(rec.Codebase) {
		if n.cfg.CodeDelivery == Pull {
			if err := n.pullCode(rec); err != nil {
				return wire.BinaryFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Reason: err.Error()}), nil
			}
		} else {
			// Push mode but the origin sent no code (cache raced or origin
			// skipped it): fall back to the local registry, charging a
			// local load.
			bundle, err := n.reg.Bundle(rec.Codebase)
			if err != nil {
				return wire.BinaryFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Reason: err.Error()}), nil
			}
			n.cache.LoadedDigest(rec.Codebase, bundleDigest(bundle), len(bundle))
		}
	}

	// Arrival bookkeeping, then registration, then execution.
	now := n.clock()
	if n.mgr != nil {
		n.mgr.RecordArrival(rec.ID, rec.Codebase, from, now)
	}
	rec.Log.RecordArrival(n.server, now)
	n.RegisterEvent(context.Background(), rec, directory.Arrival, n.server, "", now)
	n.met.landed.Inc()
	// Mark only after the landing fully succeeded: a transfer that failed
	// validation or code loading must stay retryable under the same ID.
	if transfer.TransferID != "" {
		n.accepted.Mark(transfer.TransferID)
	}
	// Commit durable state before the ack leaves: once the origin hears
	// "accepted" it releases its copy, so this server must be able to
	// recover the naplet from its dock after a crash.
	if n.persist != nil {
		n.persist(rec)
	}

	if n.onLand != nil {
		go n.onLand(rec, from)
	}
	return wire.BinaryFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Accepted: true}), nil
}

// pullCode fetches the bundle from the naplet's home server.
func (n *Navigator) pullCode(rec *naplet.Record) error {
	body := CodeFetchBody{Codebase: rec.Codebase}
	f := wire.BinaryFrame(wire.KindCodeFetch, "", "", &body)
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
	defer cancel()
	reply, err := n.node.Call(ctx, rec.Home, f)
	if err != nil {
		return fmt.Errorf("navigator: code fetch from %s: %w", rec.Home, err)
	}
	var bundle CodeBundleBody
	if err := bundle.Decode(reply.Payload); err != nil {
		return err
	}
	n.cache.LoadedDigest(rec.Codebase, bundleDigest(bundle.Data), len(bundle.Data))
	n.met.codePulled.Inc()
	return nil
}

// HandleCodeFetch serves a code bundle to a server with a cold cache.
func (n *Navigator) HandleCodeFetch(from string, f wire.Frame) (wire.Frame, error) {
	var req CodeFetchBody
	if err := req.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	data, err := n.reg.Bundle(req.Codebase)
	if err != nil {
		return wire.Frame{}, err
	}
	n.met.codeServed.Inc()
	return wire.BinaryFrame(wire.KindCodeBundle, f.To, f.From, &CodeBundleBody{Data: data}), nil
}

// HandleHomeEvent records a remote arrival/departure report for a naplet
// homed at this server.
func (n *Navigator) HandleHomeEvent(from string, f wire.Frame) (wire.Frame, error) {
	var body HomeEventBody
	if err := body.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	if n.mgr != nil {
		n.mgr.HomeRecord(body.NapletID, body.Server, body.Arrival, body.At)
	}
	return wire.NewFrame(wire.KindControlReply, f.To, f.From, &struct{ OK bool }{true})
}
