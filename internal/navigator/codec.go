package navigator

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/naplet"
	"repro/internal/wire"
)

// Binary codecs for the navigation-protocol bodies. Every body encodes
// with a leading version byte; decoders sniff it and fall back to gob for
// frames from senders predating the codec (a gob stream's first byte is a
// segment length that is never 0x01 for these struct bodies). That keeps
// mixed-version deployments and gob-era dock snapshots working while the
// hot path sheds reflection.

// bodyCodecVersion is the leading version byte of binary protocol bodies.
const bodyCodecVersion = 1

// isBinaryBody reports whether a payload carries the binary body codec.
func isBinaryBody(payload []byte) bool {
	return len(payload) > 0 && payload[0] == bodyCodecVersion
}

// EncodedSize returns the exact encoded size of the body.
func (b *LandingRequestBody) EncodedSize() int {
	return 1 + b.NapletID.EncodedSize() + b.Credential.EncodedSize() +
		wire.SizeString(b.Codebase) + wire.SizeUvarint(uint64(b.StateSize)) +
		wire.SizeString(b.CodeDigest)
}

// AppendBinary appends the body's binary form to dst.
func (b *LandingRequestBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = b.NapletID.AppendBinary(dst)
	dst = b.Credential.AppendBinary(dst)
	dst = wire.AppendString(dst, b.Codebase)
	dst = wire.AppendUvarint(dst, uint64(b.StateSize))
	return wire.AppendString(dst, b.CodeDigest)
}

// Decode parses a landing request payload, binary or legacy gob.
func (b *LandingRequestBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.NapletID, rest, err = id.DecodeBinary(rest); err != nil {
		return err
	}
	if b.Credential, rest, err = cred.DecodeBinary(rest); err != nil {
		return err
	}
	if b.Codebase, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	size, rest, err := wire.DecUvarint(rest)
	if err != nil {
		return err
	}
	b.StateSize = int(size)
	if b.CodeDigest, _, err = wire.DecString(rest); err != nil {
		return err
	}
	return nil
}

// EncodedSize returns the exact encoded size of the body.
func (b *LandingReplyBody) EncodedSize() int {
	return 1 + 2*wire.SizeBool + wire.SizeString(b.Reason)
}

// AppendBinary appends the body's binary form to dst.
func (b *LandingReplyBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendBool(dst, b.Granted)
	dst = wire.AppendBool(dst, b.NeedCode)
	return wire.AppendString(dst, b.Reason)
}

// Decode parses a landing reply payload, binary or legacy gob.
func (b *LandingReplyBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.Granted, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if b.NeedCode, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if b.Reason, _, err = wire.DecString(rest); err != nil {
		return err
	}
	return nil
}

// EncodedSize returns the exact encoded size of the body.
func (b *TransferBody) EncodedSize() int {
	return 1 + wire.SizeBytes(b.Record) + wire.SizeBytes(b.Code) +
		wire.SizeString(b.TransferID)
}

// AppendBinary appends the body's binary form to dst.
func (b *TransferBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendBytes(dst, b.Record)
	dst = wire.AppendBytes(dst, b.Code)
	return wire.AppendString(dst, b.TransferID)
}

// Decode parses a transfer payload, binary or legacy gob. Record and Code
// alias the payload in the binary path; HandleTransfer consumes both
// before its handler returns, per the transport Handler contract.
func (b *TransferBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.Record, rest, err = wire.DecBytes(rest); err != nil {
		return err
	}
	if b.Code, rest, err = wire.DecBytes(rest); err != nil {
		return err
	}
	if b.TransferID, _, err = wire.DecString(rest); err != nil {
		return err
	}
	return nil
}

// EncodedSize returns the exact encoded size of the body.
func (b *TransferAckBody) EncodedSize() int {
	return 1 + wire.SizeBool + wire.SizeString(b.Reason)
}

// AppendBinary appends the body's binary form to dst.
func (b *TransferAckBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendBool(dst, b.Accepted)
	return wire.AppendString(dst, b.Reason)
}

// Decode parses a transfer ack payload, binary or legacy gob.
func (b *TransferAckBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.Accepted, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if b.Reason, _, err = wire.DecString(rest); err != nil {
		return err
	}
	return nil
}

// EncodedSize returns the exact encoded size of the body.
func (b *CodeFetchBody) EncodedSize() int {
	return 1 + wire.SizeString(b.Codebase)
}

// AppendBinary appends the body's binary form to dst.
func (b *CodeFetchBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	return wire.AppendString(dst, b.Codebase)
}

// Decode parses a code fetch payload, binary or legacy gob.
func (b *CodeFetchBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	var err error
	b.Codebase, _, err = wire.DecString(payload[1:])
	return err
}

// EncodedSize returns the exact encoded size of the body.
func (b *CodeBundleBody) EncodedSize() int {
	return 1 + wire.SizeBytes(b.Data)
}

// AppendBinary appends the body's binary form to dst.
func (b *CodeBundleBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	return wire.AppendBytes(dst, b.Data)
}

// Decode parses a code bundle payload, binary or legacy gob. Data aliases
// the payload in the binary path.
func (b *CodeBundleBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	var err error
	b.Data, _, err = wire.DecBytes(payload[1:])
	return err
}

// EncodedSize returns the exact encoded size of the body.
func (b *HomeEventBody) EncodedSize() int {
	return 1 + b.NapletID.EncodedSize() + wire.SizeString(b.Server) +
		wire.SizeBool + wire.SizeTime(b.At)
}

// AppendBinary appends the body's binary form to dst.
func (b *HomeEventBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = b.NapletID.AppendBinary(dst)
	dst = wire.AppendString(dst, b.Server)
	dst = wire.AppendBool(dst, b.Arrival)
	return wire.AppendTime(dst, b.At)
}

// Decode parses a home event payload, binary or legacy gob.
func (b *HomeEventBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.NapletID, rest, err = id.DecodeBinary(rest); err != nil {
		return err
	}
	if b.Server, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	if b.Arrival, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if b.At, _, err = wire.DecTime(rest); err != nil {
		return err
	}
	return nil
}

// bundleDigest returns the content digest of a code bundle: the
// bundle-cache key (hex SHA-256).
func bundleDigest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// EncodeRecord serializes a naplet record for transfer using the binary
// record codec (magic 'N' 'R' + version byte).
func EncodeRecord(rec *naplet.Record) ([]byte, error) {
	return rec.AppendBinary(make([]byte, 0, rec.EncodedSize())), nil
}

// DecodeRecord reverses EncodeRecord. Records without the binary magic
// fall back to the legacy gob decoding, so records persisted in version-1
// dock snapshots (or sent by gob-era origins) still land.
func DecodeRecord(data []byte) (*naplet.Record, error) {
	if naplet.IsBinaryRecord(data) {
		return naplet.DecodeRecordBinary(data)
	}
	rec := new(naplet.Record)
	if err := wire.Unmarshal(data, rec); err != nil {
		return nil, err
	}
	return rec, nil
}
