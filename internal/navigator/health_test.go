package navigator

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// tickClock is a deterministic time source shared by the detector and the
// test.
type tickClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *tickClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestDispatchFastFailOnDeadPeer drives the failure-detector integration
// with a deterministic clock: a dispatch that starts against a dead peer
// spends at most one network attempt (the per-interval probe), every other
// dispatch in the same interval returns ErrPeerDead without touching the
// network, and a successful probe after the peer recovers resurrects it.
func TestDispatchFastFailOnDeadPeer(t *testing.T) {
	clk := &tickClock{now: t0}
	hd := health.New(health.Config{Clock: clk.Now, ProbeInterval: time.Second})

	net := netsim.New(netsim.Config{CallTimeout: 50 * time.Millisecond})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, nil, Config{
		Health:      hd,
		CallTimeout: 50 * time.Millisecond,
	})

	var calls atomic.Int64
	var healthy atomic.Bool
	if _, err := net.Attach("b", func(from string, f wire.Frame) (wire.Frame, error) {
		calls.Add(1)
		if !healthy.Load() {
			return wire.Frame{}, errors.New("b: crashed")
		}
		switch f.Kind {
		case wire.KindLandingRequest:
			return wire.NewFrame(wire.KindLandingReply, f.To, f.From, &LandingReplyBody{Granted: true, NeedCode: false})
		case wire.KindNapletTransfer:
			return wire.NewFrame(wire.KindTransferAck, f.To, f.From, &TransferAckBody{Accepted: true})
		default:
			return wire.Frame{}, errors.New("unexpected kind " + string(f.Kind))
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Report enough consecutive misses to cross the dead threshold.
	for i := 0; i < health.DefaultDeadThreshold; i++ {
		hd.ReportFailure("b")
	}
	if !hd.Dead("b") {
		t.Fatalf("state(b) = %v after %d misses, want dead", hd.State("b"), health.DefaultDeadThreshold)
	}

	pol := Backoff{Initial: time.Millisecond, Retries: 5, Jitter: 0, FailFast: true}

	// First dispatch of the interval holds the probe slot: exactly one
	// attempt reaches the network, then ErrPeerDead — no retry budget burn.
	rec := record(t, nil, "a")
	if _, err := a.nav.DispatchRetry(context.Background(), rec, "b", pol, nil); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("probe dispatch err = %v, want ErrPeerDead", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("probe dispatch made %d network attempts, want exactly 1", got)
	}

	// Same interval, no probe slot left: fail fast with zero attempts.
	if _, err := a.nav.DispatchRetry(context.Background(), rec, "b", pol, nil); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("gated dispatch err = %v, want ErrPeerDead", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("gated dispatch touched the network (%d attempts total, want 1)", got)
	}

	// Next interval: the peer recovered; the probe succeeds and resurrects
	// it (landing request + transfer = two frames).
	clk.Advance(time.Second + time.Millisecond)
	healthy.Store(true)
	if _, err := a.nav.DispatchRetry(context.Background(), rec, "b", pol, nil); err != nil {
		t.Fatalf("post-recovery dispatch: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("recovery dispatch frames = %d, want 3 (1 failed probe + landing + transfer)", got)
	}
	if hd.State("b") != health.StateAlive {
		t.Fatalf("state(b) = %v after successful probe, want alive", hd.State("b"))
	}
}
