package navigator

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/directory"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/security"
	"repro/internal/transport"
	"repro/internal/wire"
)

var t0 = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)

type nullAgent struct{}

func (nullAgent) OnStart(ctx *naplet.Context) error { return nil }

func newRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name:       "test.Agent",
		New:        func() naplet.Behavior { return nullAgent{} },
		BundleSize: 2048,
	})
	return reg
}

// node is one navigator endpoint on the fabric.
type node struct {
	nav    *Navigator
	mgr    *manager.Manager
	cache  *registry.Cache
	landed chan *naplet.Record
}

func attach(t *testing.T, net *netsim.Network, name string, reg *registry.Registry, sec *security.Manager, cfg Config) *node {
	t.Helper()
	return attachOn(t, net, name, reg, sec, cfg)
}

// attachOn is attach over any fabric — tests that wrap the network in a
// fault injector pass the injected fabric here.
func attachOn(t *testing.T, fab transport.Fabric, name string, reg *registry.Registry, sec *security.Manager, cfg Config) *node {
	t.Helper()
	n := &node{
		mgr:    manager.New(name, func() time.Time { return time.Now() }),
		cache:  registry.NewCache(),
		landed: make(chan *naplet.Record, 8),
	}
	tnode, err := fab.Attach(name, func(from string, f wire.Frame) (wire.Frame, error) {
		switch f.Kind {
		case wire.KindLandingRequest:
			return n.nav.HandleLandingRequest(from, f)
		case wire.KindNapletTransfer:
			return n.nav.HandleTransfer(from, f)
		case wire.KindCodeFetch:
			return n.nav.HandleCodeFetch(from, f)
		case wire.KindHomeEvent:
			return n.nav.HandleHomeEvent(from, f)
		default:
			return wire.Frame{}, errors.New("unexpected kind " + string(f.Kind))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	n.nav = New(cfg, name, tnode, sec, n.mgr, reg, n.cache, nil)
	n.nav.SetLandFunc(func(rec *naplet.Record, source string) { n.landed <- rec })
	return n
}

func record(t *testing.T, ring *cred.KeyRing, home string) *naplet.Record {
	t.Helper()
	nid := id.MustNew("czxu", home, t0)
	c := cred.Credential{NapletID: nid, Codebase: "test.Agent"}
	if ring != nil {
		var err error
		c, err = ring.Issue(nid, "test.Agent", nil, t0, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
	}
	itin := itinerary.MustNew(itinerary.SeqVisits([]string{"b"}, ""))
	rec := naplet.NewRecord(nid, c, "test.Agent", home, itin)
	rec.Log.RecordArrival(home, t0)
	return rec
}

func TestDispatchPushMode(t *testing.T) {
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, nil, Config{CodeDelivery: Push})
	b := attach(t, net, "b", reg, nil, Config{CodeDelivery: Push})

	rec := record(t, nil, "a")
	a.mgr.RecordArrival(rec.ID, rec.Codebase, "origin", time.Now())
	bd, err := a.nav.Dispatch(context.Background(), rec, "b")
	if err != nil {
		t.Fatal(err)
	}
	if bd.RecordBytes <= 0 {
		t.Fatalf("breakdown: %+v", bd)
	}
	if bd.CodeBytes != 2048 {
		t.Fatalf("cold cache must push the 2 KiB bundle: %+v", bd)
	}
	select {
	case got := <-b.landed:
		if !got.ID.Equal(rec.ID) {
			t.Fatalf("landed %v", got.ID)
		}
	case <-time.After(time.Second):
		t.Fatal("naplet never landed")
	}
	// Origin trace records the departure.
	tr := a.mgr.TraceNaplet(rec.ID)
	if tr.Present || tr.Dest != "b" {
		t.Fatalf("origin trace: %+v", tr)
	}
	// Destination trace records presence.
	if !b.mgr.TraceNaplet(rec.ID).Present {
		t.Fatal("destination trace")
	}
	// Second dispatch of a same-codebase naplet pushes no code.
	rec2 := record(t, nil, "a")
	rec2ID, _ := rec2.ID.Clone(1)
	rec2.ID = rec2ID
	rec2.Credential.NapletID = rec2ID
	a.mgr.RecordArrival(rec2.ID, rec2.Codebase, "origin", time.Now())
	bd2, err := a.nav.Dispatch(context.Background(), rec2, "b")
	if err != nil {
		t.Fatal(err)
	}
	if bd2.CodeBytes != 0 {
		t.Fatalf("warm cache must not push code: %+v", bd2)
	}
	if s := b.cache.Stats(); s.BytesFetched != 2048 {
		t.Fatalf("cache stats: %+v", s)
	}
}

func TestDispatchPullMode(t *testing.T) {
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	home := attach(t, net, "a", reg, nil, Config{CodeDelivery: Pull})
	b := attach(t, net, "b", reg, nil, Config{CodeDelivery: Pull})

	rec := record(t, nil, "a")
	home.mgr.RecordArrival(rec.ID, rec.Codebase, "origin", time.Now())
	bd, err := home.nav.Dispatch(context.Background(), rec, "b")
	if err != nil {
		t.Fatal(err)
	}
	// Pull mode: the transfer carries no code; the destination fetched it
	// from the home server.
	if bd.CodeBytes != 0 {
		t.Fatalf("pull mode must not attach code: %+v", bd)
	}
	<-b.landed
	if b.nav.Stats().CodePulled != 1 {
		t.Fatalf("stats: %+v", b.nav.Stats())
	}
	if home.nav.Stats().CodeServed != 1 {
		t.Fatalf("home stats: %+v", home.nav.Stats())
	}
	if s := b.cache.Stats(); s.BytesFetched != 2048 {
		t.Fatalf("cache stats: %+v", s)
	}
}

func TestDispatchLaunchDenied(t *testing.T) {
	ring := cred.NewKeyRing()
	ring.Register("czxu", []byte("k"))
	deny := security.Policy{Default: security.Deny}
	sec := security.NewManager(ring, deny, nil)

	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, sec, Config{})
	attach(t, net, "b", reg, nil, Config{})

	rec := record(t, ring, "a")
	if _, err := a.nav.Dispatch(context.Background(), rec, "b"); !errors.Is(err, ErrLaunchDenied) {
		t.Fatalf("want ErrLaunchDenied, got %v", err)
	}
}

func TestDispatchLandingDenied(t *testing.T) {
	ring := cred.NewKeyRing()
	ring.Register("czxu", []byte("k"))
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, nil, Config{})
	deny := security.Policy{Default: security.Deny}
	attach(t, net, "b", reg, security.NewManager(ring, deny, nil), Config{})

	rec := record(t, ring, "a")
	if _, err := a.nav.Dispatch(context.Background(), rec, "b"); !errors.Is(err, ErrLandingDenied) {
		t.Fatalf("want ErrLandingDenied, got %v", err)
	}
}

func TestAdmitVeto(t *testing.T) {
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, nil, Config{})
	b := attach(t, net, "b", reg, nil, Config{})
	b.nav.SetAdmitFunc(func(req LandingRequestBody) error {
		return errors.New("no capacity")
	})
	rec := record(t, nil, "a")
	_, err := a.nav.Dispatch(context.Background(), rec, "b")
	if !errors.Is(err, ErrLandingDenied) || !strings.Contains(err.Error(), "no capacity") {
		t.Fatalf("want capacity refusal, got %v", err)
	}
	if b.nav.Stats().Refused != 1 {
		t.Fatalf("stats: %+v", b.nav.Stats())
	}
}

func TestTransferCredentialMismatchRejected(t *testing.T) {
	// A record whose credential certifies a different naplet is rejected at
	// transfer time even if the landing request looked fine.
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, nil, Config{})
	attach(t, net, "b", reg, nil, Config{})

	rec := record(t, nil, "a")
	other := id.MustNew("mallory", "a", t0)
	rec.Credential.NapletID = other // forged
	a.mgr.RecordArrival(rec.ID, rec.Codebase, "origin", time.Now())
	_, err := a.nav.Dispatch(context.Background(), rec, "b")
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
}

func TestDirectoryEventOrdering(t *testing.T) {
	// The DEPART event must be registered before the destination's ARRIVAL
	// so the directory's latest record is always current (§4.1).
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	svc := directory.NewService()
	if _, err := svc.Serve(net, "dir"); err != nil {
		t.Fatal(err)
	}
	a := attach(t, net, "a", reg, nil, Config{DirectoryAddr: "dir"})
	b := attach(t, net, "b", reg, nil, Config{DirectoryAddr: "dir"})
	_ = b

	rec := record(t, nil, "a")
	a.mgr.RecordArrival(rec.ID, rec.Codebase, "origin", time.Now())
	if _, err := a.nav.Dispatch(context.Background(), rec, "b"); err != nil {
		t.Fatal(err)
	}
	entries := svc.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("snapshot: %+v", entries)
	}
	if entries[0].Event != directory.Arrival || entries[0].Server != "b" {
		t.Fatalf("latest directory record must be the arrival at b: %+v", entries[0])
	}
}

func TestDispatchFailureRestoresDirectory(t *testing.T) {
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	svc := directory.NewService()
	svc.Serve(net, "dir")
	a := attach(t, net, "a", reg, nil, Config{DirectoryAddr: "dir"})
	b := attach(t, net, "b", reg, nil, Config{DirectoryAddr: "dir"})
	b.nav.SetLandFunc(nil)
	// Make the transfer fail after the landing grant: partition a->b after
	// the landing negotiation is impossible mid-call, so instead reject via
	// transfer-time credential check.
	rec := record(t, nil, "a")
	rec.Credential.NapletID = id.MustNew("other", "a", t0)
	a.mgr.RecordArrival(rec.ID, rec.Codebase, "origin", time.Now())
	if _, err := a.nav.Dispatch(context.Background(), rec, "b"); err == nil {
		t.Fatal("dispatch must fail")
	}
	entries := svc.Snapshot()
	if len(entries) != 1 || entries[0].Event != directory.Arrival || entries[0].Server != "a" {
		t.Fatalf("failed dispatch must restore arrival at origin: %+v", entries)
	}
}

func TestHomeEventReporting(t *testing.T) {
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	home := attach(t, net, "a", reg, nil, Config{ReportHome: true})
	b := attach(t, net, "b", reg, nil, Config{ReportHome: true})
	_ = b

	rec := record(t, nil, "a")
	home.mgr.RecordArrival(rec.ID, rec.Codebase, "origin", time.Now())
	if _, err := home.nav.Dispatch(context.Background(), rec, "b"); err != nil {
		t.Fatal(err)
	}
	// The home manager learned the naplet's location from the destination's
	// arrival report.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if server, ok := home.mgr.HomeLocate(rec.ID); ok && server == "b" {
			break
		}
		if time.Now().After(deadline) {
			server, ok := home.mgr.HomeLocate(rec.ID)
			t.Fatalf("home track = %q %v, want b", server, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEncodeDecodeRecordRoundTrip(t *testing.T) {
	rec := record(t, nil, "a")
	rec.State.SetPrivate("k", 7)
	rec.Pending = itinerary.Visit{Server: "b", Action: "act"}
	rec.CloneSeq = 3
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ID.Equal(rec.ID) || got.Pending.Server != "b" || got.CloneSeq != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	if v, _ := got.State.Get("k"); v.(int) != 7 {
		t.Fatal("state lost")
	}
	if _, err := DecodeRecord([]byte("junk")); err == nil {
		t.Fatal("junk must not decode")
	}
}

func TestCodeDeliveryString(t *testing.T) {
	if Push.String() != "push" || Pull.String() != "pull" {
		t.Fatal("mode names")
	}
}

// TestNewTransferIDDistinctAcrossBoots guards the durable-dock interaction:
// destinations persist their accepted-transfer window across restarts, so a
// restarted server must not re-mint the IDs its previous incarnation used —
// otherwise its first fresh dispatch is absorbed as a replay and the naplet
// is acked without ever landing.
func TestNewTransferIDDistinctAcrossBoots(t *testing.T) {
	cache := registry.NewCache()
	a := New(Config{}, "s1", nil, nil, nil, nil, cache, nil)
	b := New(Config{}, "s1", nil, nil, nil, nil, cache, nil)
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		for _, n := range []*Navigator{a, b} {
			tid := n.NewTransferID()
			if seen[tid] {
				t.Fatalf("transfer ID %q minted twice across incarnations", tid)
			}
			seen[tid] = true
		}
	}
}

// TestDispatchDigestAliasSkipsCode proves the content-addressed bundle
// cache at the wire level: a destination that already holds a bundle with
// the dispatched codebase's digest — cached under a different codebase
// name — answers the landing negotiation with NeedCode=false, so the warm
// server never refetches identical code.
func TestDispatchDigestAliasSkipsCode(t *testing.T) {
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	a := attach(t, net, "a", reg, nil, Config{CodeDelivery: Push})
	b := attach(t, net, "b", reg, nil, Config{CodeDelivery: Push})

	dig, err := reg.BundleDigest("test.Agent")
	if err != nil {
		t.Fatal(err)
	}
	// Warm b by content only: the bundle arrived earlier under another
	// codebase name.
	b.cache.LoadedDigest("test.AgentV1Alias", dig, 2048)

	rec := record(t, nil, "a")
	a.mgr.RecordArrival(rec.ID, rec.Codebase, "origin", time.Now())
	bd, err := a.nav.Dispatch(context.Background(), rec, "b")
	if err != nil {
		t.Fatal(err)
	}
	if bd.CodeBytes != 0 {
		t.Fatalf("digest-warm destination must not be pushed code: %+v", bd)
	}
	<-b.landed
	s := b.cache.Stats()
	if s.AliasHits != 1 {
		t.Fatalf("cache stats: %+v", s)
	}
	if s.BytesFetched != 2048 {
		t.Fatalf("no new bytes may be fetched: %+v", s)
	}
}

// blockingDirectory stalls the first Arrival registration until released,
// holding a landing open mid-HandleTransfer — before the dedup window is
// marked — so a concurrent replay of the same transfer ID can race it.
type blockingDirectory struct {
	gate    chan struct{}
	arrived chan struct{}
	first   atomic.Bool
}

func (d *blockingDirectory) RegisterEvent(ctx context.Context, r directory.Registration) error {
	if d.first.CompareAndSwap(false, true) {
		close(d.arrived)
		<-d.gate
	}
	return nil
}

func (d *blockingDirectory) Lookup(ctx context.Context, nid id.NapletID) (directory.Entry, error) {
	return directory.Entry{}, errors.New("not tracked")
}

func (d *blockingDirectory) DeregisterServer(ctx context.Context, server string) error { return nil }

func TestConcurrentTransferReplaySingleFlights(t *testing.T) {
	net := netsim.New(netsim.Config{})
	reg := newRegistry(t)
	dir := &blockingDirectory{gate: make(chan struct{}), arrived: make(chan struct{})}
	dst := attach(t, net, "b", reg, nil, Config{Directory: dir})

	rec := record(t, nil, "a")
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	body := TransferBody{Record: data, TransferID: "a/boot/1"}
	f := wire.BinaryFrame(wire.KindNapletTransfer, "a", "b", &body)

	type outcome struct {
		ack TransferAckBody
		err error
	}
	results := make(chan outcome, 2)
	handle := func() {
		reply, err := dst.nav.HandleTransfer("a", f)
		var o outcome
		o.err = err
		if err == nil {
			o.err = o.ack.Decode(reply.Payload)
		}
		results <- o
	}
	go handle()
	// The first delivery is now mid-landing with the window unmarked:
	// exactly the race a retry after a lost acknowledgement hits.
	<-dir.arrived
	go handle()
	time.Sleep(10 * time.Millisecond)
	close(dir.gate)

	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if !o.ack.Accepted {
			t.Fatalf("delivery %d refused: %s", i, o.ack.Reason)
		}
	}
	select {
	case <-dst.landed:
	case <-time.After(5 * time.Second):
		t.Fatal("transfer never landed")
	}
	select {
	case rec2 := <-dst.landed:
		t.Fatalf("concurrent replay landed a second copy of %v", rec2.ID)
	case <-time.After(50 * time.Millisecond):
	}
	if got := dst.nav.Stats().DupTransfers; got != 1 {
		t.Fatalf("DupTransfers = %d, want 1", got)
	}
}

// TestDispatchLostAckIsUnresolved covers the ghost-split guard: a
// transfer whose acknowledgement is lost has landed the naplet at the
// destination while the origin only sees an error. That error must carry
// ErrTransferUnresolved — the origin cannot tell this failure from a
// genuine loss, so its failover logic must not reroute (fork) the
// naplet. A replay under the same transfer ID, once the network heals,
// resolves the ambiguity through the destination's dedup window without
// landing a second copy.
func TestDispatchLostAckIsUnresolved(t *testing.T) {
	net := netsim.New(netsim.Config{})
	var dropping atomic.Bool
	dropping.Store(true)
	inj := fault.New(fault.Config{
		Seed: 1,
		P:    fault.Probabilities{DropReply: 1},
		Kinds: func(k wire.Kind) bool {
			return dropping.Load() && k == wire.KindNapletTransfer
		},
	})
	fabric := inj.Fabric(net)
	reg := newRegistry(t)
	org := attachOn(t, fabric, "a", reg, nil, Config{})
	dst := attachOn(t, fabric, "b", reg, nil, Config{})

	rec := record(t, nil, "a")
	tid := org.nav.NewTransferID()
	pol := Backoff{Retries: 2, Initial: time.Millisecond, Max: time.Millisecond, Jitter: 0}
	_, err := org.nav.DispatchRetryID(context.Background(), rec, "b", tid, pol, nil)
	if err == nil {
		t.Fatal("dispatch with every ack dropped must fail")
	}
	if !errors.Is(err, ErrTransferUnresolved) {
		t.Fatalf("lost-ack dispatch error must be unresolved, got: %v", err)
	}
	// The side effect happened: the naplet is live at the destination.
	select {
	case <-dst.landed:
	case <-time.After(time.Second):
		t.Fatal("naplet never landed despite delivered transfers")
	}

	// Network heals: a replay of the same transfer ID is absorbed by the
	// dedup window — the dispatch succeeds without a second landing.
	dropping.Store(false)
	if _, err := org.nav.DispatchID(context.Background(), rec, "b", tid); err != nil {
		t.Fatalf("replay after heal: %v", err)
	}
	select {
	case <-dst.landed:
		t.Fatal("replay landed a second copy")
	default:
	}

	// A pre-delivery refusal, by contrast, is provably not a landing:
	// dispatch to a crashed node must NOT be marked unresolved, so
	// failover stays allowed.
	inj.Crash("b")
	rec2 := record(t, nil, "a")
	_, err = org.nav.DispatchRetryID(context.Background(), rec2, "b", org.nav.NewTransferID(), pol, nil)
	if err == nil {
		t.Fatal("dispatch to crashed node must fail")
	}
	if errors.Is(err, ErrTransferUnresolved) {
		t.Fatalf("refused-before-delivery dispatch must stay resolved, got: %v", err)
	}
}
