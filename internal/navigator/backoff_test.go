package navigator

import (
	"fmt"
	"testing"
	"time"
)

func TestBackoffDelayGrowthAndCap(t *testing.T) {
	pol := Backoff{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 10 * time.Millisecond},
		{1, 20 * time.Millisecond},
		{2, 40 * time.Millisecond},
		{3, 80 * time.Millisecond}, // reaches the cap
		{4, 80 * time.Millisecond}, // stays at the cap
		{10, 80 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("attempt%d", tc.attempt), func(t *testing.T) {
			if got := pol.Delay(tc.attempt, nil); got != tc.want {
				t.Fatalf("Delay(%d) = %v, want %v", tc.attempt, got, tc.want)
			}
		})
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// With Jitter j the delay must stay within [nominal*(1-j), nominal*(1+j)]
	// across the whole [0,1) sample space, and the extremes must be reached.
	pol := Backoff{Initial: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.2}
	nominal := 200 * time.Millisecond // attempt 1
	lo := time.Duration(float64(nominal) * 0.8)
	hi := time.Duration(float64(nominal) * 1.2)
	samples := []float64{0, 0.25, 0.5, 0.75, 0.999999}
	for _, s := range samples {
		got := pol.Delay(1, func() float64 { return s })
		if got < lo || got > hi {
			t.Fatalf("Delay with rnd=%v = %v, outside [%v, %v]", s, got, lo, hi)
		}
	}
	if got := pol.Delay(1, func() float64 { return 0 }); got != lo {
		t.Fatalf("rnd=0 must hit the lower bound: %v != %v", got, lo)
	}
	if got := pol.Delay(1, func() float64 { return 0.5 }); got != nominal {
		t.Fatalf("rnd=0.5 must be the nominal delay: %v != %v", got, nominal)
	}
}

func TestBackoffDefaults(t *testing.T) {
	var pol Backoff
	if got := pol.Delay(0, nil); got != DefaultBackoffInitial {
		t.Fatalf("zero-value Delay(0) = %v, want %v", got, DefaultBackoffInitial)
	}
	if got := pol.Delay(20, nil); got != DefaultBackoffMax {
		t.Fatalf("zero-value Delay(20) = %v, want the %v cap", got, DefaultBackoffMax)
	}
	// A Max below Initial is lifted to Initial, never inverted.
	inverted := Backoff{Initial: time.Second, Max: time.Millisecond, Jitter: 0}
	if got := inverted.Delay(5, nil); got != time.Second {
		t.Fatalf("inverted Max: Delay = %v, want %v", got, time.Second)
	}
}

func TestIsPermanent(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"landing-denied", fmt.Errorf("wrap: %w", ErrLandingDenied), true},
		{"launch-denied", fmt.Errorf("wrap: %w", ErrLaunchDenied), true},
		{"rejected", fmt.Errorf("wrap: %w", ErrRejected), true},
		{"transient", fmt.Errorf("connection refused"), false},
		{"nil", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsPermanent(tc.err); got != tc.want {
				t.Fatalf("IsPermanent = %v, want %v", got, tc.want)
			}
		})
	}
}
