package man

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cnmp"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/snmp"
	"repro/internal/state"
)

func testbed(t *testing.T, devices, extraVars int) *Testbed {
	t.Helper()
	tb, err := NewTestbed(TestbedConfig{
		Devices:    devices,
		ExtraVars:  extraVars,
		Link:       netsim.LAN,
		Seed:       42,
		BundleSize: 8 << 10, // a small agent class file set
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return tb
}

func TestRetrieve(t *testing.T) {
	dev := snmp.NewDevice(snmp.DeviceConfig{Name: "r1"})
	got := retrieve(dev.Agent, "public", snmp.OIDSysName.String())
	if got != snmp.OIDSysName.String()+"=r1" {
		t.Fatalf("retrieve = %q", got)
	}
	multi := retrieve(dev.Agent, "public", snmp.OIDSysName.String()+";"+snmp.OIDIfNumber.String())
	if !strings.Contains(multi, "=r1") || !strings.Contains(multi, "=4") {
		t.Fatalf("multi = %q", multi)
	}
	bad := retrieve(dev.Agent, "public", "9.9.9.9")
	if !strings.Contains(bad, "error") {
		t.Fatalf("bad oid = %q", bad)
	}
	walk := retrieve(dev.Agent, "public", "walk "+snmp.OIDSystem.String())
	if strings.Count(walk, "=") < 4 {
		t.Fatalf("walk = %q", walk)
	}
	if got := retrieve(dev.Agent, "public", "walk not-an-oid"); !strings.Contains(got, "error") {
		t.Fatalf("bad walk = %q", got)
	}
}

func TestCollectSequential(t *testing.T) {
	tb := testbed(t, 3, 0)
	oids := []snmp.OID{snmp.OIDSysName, snmp.OIDIfNumber}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, stats, err := tb.Station.CollectSequential(ctx, tb.DeviceNames, oids)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Agents != 1 || stats.Reports != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if len(report) != 3 {
		t.Fatalf("report covers %d devices: %v", len(report), report)
	}
	for _, d := range tb.DeviceNames {
		if report[d][snmp.OIDSysName.String()] != d {
			t.Fatalf("device %s: %v", d, report[d])
		}
		if report[d][snmp.OIDIfNumber.String()] != "4" {
			t.Fatalf("device %s ifNumber: %v", d, report[d])
		}
	}
}

func TestCollectBroadcast(t *testing.T) {
	tb := testbed(t, 4, 0)
	oids := []snmp.OID{snmp.OIDSysName}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, stats, err := tb.Station.CollectBroadcast(ctx, tb.DeviceNames, oids)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Agents != 4 || stats.Reports != 4 {
		t.Fatalf("stats: %+v", stats)
	}
	if len(report) != 4 {
		t.Fatalf("report: %v", report)
	}
	if got := report.SortedDevices(); got[0] != "dev0" || got[3] != "dev3" {
		t.Fatalf("devices: %v", got)
	}
}

func TestManAndCnmpAgree(t *testing.T) {
	// Both management approaches must observe the same device state.
	tb := testbed(t, 3, 4)
	oids := tb.QueryOIDs(6)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	manRep, _, err := tb.Station.CollectSequential(ctx, tb.DeviceNames, oids)
	if err != nil {
		t.Fatal(err)
	}
	cnmpRep, _, err := tb.CNMP.Collect(ctx, tb.ResponderNames, oids, cnmp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range tb.DeviceNames {
		for _, oid := range oids {
			k := oid.String()
			if oid.Equal(snmp.OIDSysUpTime) {
				continue // time-dependent
			}
			if manRep[d][k] != cnmpRep[tb.ResponderNames[i]][k] {
				t.Fatalf("disagreement on %s %s: MAN=%q CNMP=%q",
					d, k, manRep[d][k], cnmpRep[tb.ResponderNames[i]][k])
			}
		}
	}
}

func TestE3TrafficShapeStationLoad(t *testing.T) {
	// The paper's central claim (§6): centralized micro-management
	// generates heavy traffic between the station and the devices, while
	// the mobile-agent approach does on-site management. With enough
	// variables per device, the CNMP station's byte count must exceed the
	// MAN station's by a widening factor.
	tb := testbed(t, 8, 32)
	oids := tb.QueryOIDs(32)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	tb.Net.ResetStats()
	if _, _, err := tb.Station.CollectSequential(ctx, tb.DeviceNames, oids); err != nil {
		t.Fatal(err)
	}
	manStation := tb.Net.HostStats(StationHost)
	manBytes := manStation.BytesSent + manStation.BytesRecv

	tb.Net.ResetStats()
	if _, _, err := tb.CNMP.Collect(ctx, tb.ResponderNames, oids, cnmp.Options{}); err != nil {
		t.Fatal(err)
	}
	cnmpStation := tb.Net.HostStats(CNMPHost)
	cnmpBytes := cnmpStation.BytesSent + cnmpStation.BytesRecv

	if manBytes == 0 || cnmpBytes == 0 {
		t.Fatalf("missing traffic: man=%d cnmp=%d", manBytes, cnmpBytes)
	}
	// 8 devices × 32 vars × 2 frames of CNMP vs 1 launch + 1 report at the
	// MAN station: expect at least 3x.
	if cnmpBytes < 3*manBytes {
		t.Fatalf("station-load shape violated: CNMP %d bytes, MAN %d bytes", cnmpBytes, manBytes)
	}
	t.Logf("station bytes: CNMP=%d MAN=%d ratio=%.1f", cnmpBytes, manBytes, float64(cnmpBytes)/float64(manBytes))
}

func TestE3CrossoverFewVariables(t *testing.T) {
	// With one variable per device and a large code bundle, the agent's
	// migration cost dominates: CNMP wins on total network load. This is
	// the crossover the literature (and the paper's "none of the individual
	// advantages represents an overwhelming motivation" caveat) predicts.
	tb, err := NewTestbed(TestbedConfig{
		Devices:    4,
		Link:       netsim.LAN,
		Seed:       1,
		BundleSize: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	oids := tb.QueryOIDs(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	tb.Net.ResetStats()
	if _, _, err := tb.Station.CollectSequential(ctx, tb.DeviceNames, oids); err != nil {
		t.Fatal(err)
	}
	manTotal := tb.Net.TotalStats().BytesSent

	tb.Net.ResetStats()
	if _, _, err := tb.CNMP.Collect(ctx, tb.ResponderNames, oids, cnmp.Options{}); err != nil {
		t.Fatal(err)
	}
	cnmpTotal := tb.Net.TotalStats().BytesSent

	if cnmpTotal >= manTotal {
		t.Fatalf("crossover shape violated: with V=1 and 64 KiB code, CNMP total (%d) should be below MAN total (%d)", cnmpTotal, manTotal)
	}
	t.Logf("total bytes at V=1: CNMP=%d MAN=%d", cnmpTotal, manTotal)
}

func TestQueryOIDs(t *testing.T) {
	tb := testbed(t, 1, 8)
	if got := tb.QueryOIDs(2); len(got) != 2 {
		t.Fatalf("QueryOIDs(2) = %v", got)
	}
	got := tb.QueryOIDs(10)
	if len(got) != 10 {
		t.Fatalf("QueryOIDs(10) = %d", len(got))
	}
	// The synthetic extras must exist on the devices.
	for _, oid := range got {
		if _, err := tb.Devices[0].Agent.Get("public", oid); err != nil {
			t.Fatalf("missing %s: %v", oid, err)
		}
	}
}

func TestTickAdvancesAllDevices(t *testing.T) {
	tb := testbed(t, 2, 0)
	before, _ := tb.Devices[1].Agent.Get("public", snmp.OIDSysUpTime)
	tb.Tick(time.Second)
	after, _ := tb.Devices[1].Agent.Get("public", snmp.OIDSysUpTime)
	if after.Int <= before.Int {
		t.Fatal("tick did not advance device 1")
	}
}

func TestPatternShapes(t *testing.T) {
	seq := SequentialPattern([]string{"a", "b", "c"})
	if got := seq.String(); got != "seq(<a>, <b>, <c; ResultReport>)" {
		t.Fatalf("sequential = %q", got)
	}
	par := BroadcastPattern([]string{"a", "b"})
	if got := par.String(); got != "par(<a; ResultReport>, <b; ResultReport>)" {
		t.Fatalf("broadcast = %q", got)
	}
}

func TestTestbedValidation(t *testing.T) {
	if _, err := NewTestbed(TestbedConfig{}); err == nil {
		t.Fatal("zero devices must fail")
	}
}

func TestWalkCommandThroughFullStack(t *testing.T) {
	// The NMNaplet can carry a "walk <root>" parameter: the NetManagement
	// service walks the subtree on site and the naplet brings back every
	// binding under it.
	tb := testbed(t, 2, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Drive the walk via the naplet's raw parameter state.
	results := make(chan string, 1)
	nid, err := tb.Station.Server.Launch(ctx, server.LaunchOptions{
		Owner:    "czxu",
		Codebase: CodebaseName,
		Pattern:  SequentialPattern(tb.DeviceNames[:1]),
		InitState: func(s *state.State) error {
			return s.SetPrivate("man.params", []string{"walk " + snmp.OIDSystem.String()})
		},
		Listener: func(r manager.Result) { results <- "" + string(r.Body) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Station.Server.WaitDone(ctx, nid); err != nil {
		t.Fatal(err)
	}
	body := <-results
	rep, _, err := DecodeReport([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	dev := tb.DeviceNames[0]
	if len(rep[dev]) < 5 {
		t.Fatalf("system-subtree walk returned %d objects: %v", len(rep[dev]), rep[dev])
	}
	if rep[dev][snmp.OIDSysName.String()] != dev {
		t.Fatalf("walked sysName = %q", rep[dev][snmp.OIDSysName.String()])
	}
}
