package man

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/snmp"
	"repro/internal/state"
	"repro/internal/wire"
)

// EventServiceName is the privileged service monitoring naplets use to
// read the local device's notification stream on site.
const EventServiceName = "serviceImpl.EventPoll"

// MonitorCodebaseName names the event-monitoring naplet in the registry.
const MonitorCodebaseName = "naplet.EventMonitor"

// NewEventPollService builds the privileged service that exposes a
// device's trap stream to resident naplets. Commands:
//
//	poll  -> one line per pending trap: "kind|seq|round|detail"
//	round -> the device's current workload round
func NewEventPollService(dev *snmp.Device) resource.Factory {
	return func() resource.PrivilegedService {
		return resource.ServiceFunc(func(ch *resource.ServerEnd) {
			for {
				cmd, err := ch.ReadLine()
				if err != nil {
					return
				}
				switch strings.TrimSpace(cmd) {
				case "poll":
					traps := dev.TakeTraps()
					lines := make([]string, len(traps))
					for i, tr := range traps {
						lines[i] = fmt.Sprintf("%s|%d|%d|%s", tr.Kind, tr.Seq, tr.Round, tr.Detail)
					}
					ch.WriteLine(strings.Join(lines, ";"))
				case "round":
					ch.WriteLine(strconv.Itoa(dev.TrapRound()))
				default:
					ch.WriteLine("error=unknown command " + cmd)
				}
			}
		})
	}
}

// MonitorNaplet is the on-site event monitor: it resides at a device,
// polls the local notification stream through the EventPoll service,
// filters out the noise, and reports only the significant alerts home —
// the mobile-agent answer to centralized trap flooding.
type MonitorNaplet struct{}

// monitorReport is the wire form of a monitor's final report.
type monitorReport struct {
	Device   string
	Seen     int
	Filtered int
	Alerts   []string
}

// OnStart runs the monitoring loop until the device's workload reaches the
// round target in the naplet's state, then reports the filtered alerts.
func (MonitorNaplet) OnStart(ctx *naplet.Context) error {
	var rounds int
	if err := ctx.State().Load("man.rounds", &rounds); err != nil {
		return fmt.Errorf("man: monitor has no round target: %w", err)
	}
	ch, err := ctx.Services.OpenChannel(EventServiceName)
	if err != nil {
		return err
	}
	defer ch.Close()

	report := monitorReport{Device: ctx.Server}
	for {
		if err := ch.WriteLine("poll"); err != nil {
			return err
		}
		line, err := ch.ReadLine()
		if err != nil {
			return err
		}
		if line != "" {
			for _, ev := range strings.Split(line, ";") {
				parts := strings.SplitN(ev, "|", 4)
				if len(parts) != 4 {
					continue
				}
				report.Seen++
				// On-site filtering: only link events leave the device.
				if parts[0] == snmp.TrapLinkDown.String() || parts[0] == snmp.TrapLinkUp.String() {
					report.Alerts = append(report.Alerts, parts[0]+" "+parts[3]+" @r"+parts[2])
				} else {
					report.Filtered++
				}
			}
		}
		if err := ch.WriteLine("round"); err != nil {
			return err
		}
		roundLine, err := ch.ReadLine()
		if err != nil {
			return err
		}
		round, _ := strconv.Atoi(strings.TrimSpace(roundLine))
		if round >= rounds {
			break
		}
		select {
		case <-time.After(time.Millisecond):
		case <-ctx.Cancel.Done():
			return ctx.Cancel.Err()
		}
	}

	payload, err := wire.Marshal(&report)
	if err != nil {
		return err
	}
	rctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return ctx.Listener.Report(rctx, payload)
}

// RegisterMonitorCodebase installs the event-monitoring naplet.
func RegisterMonitorCodebase(reg *registry.Registry, bundleSize int) error {
	return reg.Register(&registry.Codebase{
		Name:       MonitorCodebaseName,
		New:        func() naplet.Behavior { return MonitorNaplet{} },
		BundleSize: bundleSize,
	})
}

// MonitorResult aggregates the monitoring naplets' reports.
type MonitorResult struct {
	// Alerts maps device -> the filtered alert lines it reported.
	Alerts map[string][]string
	// Seen and Filtered total the events observed and suppressed on site.
	Seen     int
	Filtered int
}

// MonitorAll dispatches one monitoring naplet per device (the §6.2
// broadcast itinerary) and waits for every final report: each device's
// events are observed on site for `rounds` workload rounds, and only
// significant alerts cross the network.
func (st *Station) MonitorAll(ctx context.Context, devices []string, rounds int) (MonitorResult, error) {
	res := MonitorResult{Alerts: make(map[string][]string)}
	reports := make(chan manager.Result, len(devices))
	nid, err := st.Server.Launch(ctx, server.LaunchOptions{
		Owner:    st.Owner,
		Codebase: MonitorCodebaseName,
		// One resident monitor per device; monitors report from OnStart,
		// so no post-action is attached.
		Pattern: itinerary.ParVisits(devices, ""),
		Roles:   st.Roles,
		InitState: func(s *state.State) error {
			return s.SetPrivate("man.rounds", rounds)
		},
		Listener: func(r manager.Result) { reports <- r },
	})
	if err != nil {
		return res, err
	}
	_ = nid
	for i := 0; i < len(devices); i++ {
		select {
		case r := <-reports:
			var rep monitorReport
			if err := wire.Unmarshal(r.Body, &rep); err != nil {
				return res, err
			}
			res.Alerts[rep.Device] = rep.Alerts
			res.Seen += rep.Seen
			res.Filtered += rep.Filtered
		case <-ctx.Done():
			return res, ctx.Err()
		}
	}
	return res, nil
}
