package man

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cnmp"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/snmp"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// TestbedConfig parameterizes a simulated managed network: the rig behind
// the E3 experiment and the §6 example.
type TestbedConfig struct {
	// Devices is the managed device count.
	Devices int
	// Interfaces per device (default 4).
	Interfaces int
	// ExtraVars adds synthetic per-device scalars for MIB-size sweeps.
	ExtraVars int
	// Link is the link characteristic between all hosts (e.g. netsim.LAN
	// or netsim.WAN).
	Link netsim.Link
	// TimeScale compresses modeled time (0 = no sleeping, pure traffic
	// accounting).
	TimeScale float64
	// Seed seeds device workloads and the loss process.
	Seed int64
	// BundleSize models the NMNaplet code bundle (0 = registry default).
	BundleSize int
	// Community is the SNMP read community.
	Community string

	// Fabric, when set, overrides the internally-built netsim network —
	// the loadgen harness passes a fault-wrapped simulator or a real TCP
	// fabric here. With an override, Net stays nil and byte accounting
	// via HostStats is unavailable; Link/TimeScale are ignored.
	Fabric transport.Fabric
	// AttachAddr maps a logical host name ("dev3", "dev3:161", "station")
	// to the address handed to Fabric.Attach. Nil is the identity (netsim
	// symbolic names); a TCP rig returns "127.0.0.1:0" and the resolved
	// listen addresses become the testbed's names.
	AttachAddr func(host string) string
	// Telemetry, when set, is shared by every naplet server in the rig so
	// hop-latency, confirm-RTT and transport-byte series aggregate across
	// the whole testbed.
	Telemetry *telemetry.Registry
	// Tune, when set, adjusts each naplet server's config (retries,
	// messenger knobs, failover behavior) just before server.New.
	Tune func(*server.Config)
}

// Testbed is a complete simulated managed network: a fabric, N managed
// devices each hosting a naplet server (with the NetManagement privileged
// service) and an SNMP responder, a MAN station, and a CNMP station.
type Testbed struct {
	// Net is the simulated network, nil when TestbedConfig.Fabric
	// overrode it.
	Net *netsim.Network
	// Fabric is the transport every host attached to (Net unless
	// overridden).
	Fabric transport.Fabric
	Reg    *registry.Registry

	// StationName and CNMPName are the stations' resolved fabric
	// addresses (StationHost/CNMPHost unless AttachAddr remapped them).
	StationName string
	CNMPName    string

	// Devices are the simulated managed devices.
	Devices []*snmp.Device
	// DeviceNames are the naplet-server addresses ("dev0"...).
	DeviceNames []string
	// ResponderNames are the SNMP daemon addresses ("dev0:161"...).
	ResponderNames []string

	// Station is the MAN management station.
	Station *Station
	// CNMP is the conventional management station.
	CNMP *cnmp.Station

	servers    []*server.Server
	responders []*cnmp.Responder
}

// StationHost is the MAN station's fabric address.
const StationHost = "station"

// CNMPHost is the CNMP station's fabric address.
const CNMPHost = "cstation"

// NewTestbed builds the rig.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("man: need at least one device")
	}
	if cfg.Community == "" {
		cfg.Community = "public"
	}
	tb := &Testbed{Reg: registry.New()}
	if cfg.Fabric != nil {
		tb.Fabric = cfg.Fabric
	} else {
		tb.Net = netsim.New(netsim.Config{
			DefaultLink: cfg.Link,
			TimeScale:   cfg.TimeScale,
			Seed:        cfg.Seed,
			CallTimeout: 5 * time.Second,
		})
		tb.Fabric = tb.Net
	}
	attach := cfg.AttachAddr
	if attach == nil {
		attach = func(host string) string { return host }
	}
	newServer := func(name string) (*server.Server, error) {
		scfg := server.Config{
			Name:      attach(name),
			Fabric:    tb.Fabric,
			Registry:  tb.Reg,
			Telemetry: cfg.Telemetry,
		}
		if cfg.Tune != nil {
			cfg.Tune(&scfg)
		}
		return server.New(scfg)
	}
	if err := RegisterCodebase(tb.Reg, cfg.BundleSize); err != nil {
		return nil, err
	}
	if err := RegisterMonitorCodebase(tb.Reg, cfg.BundleSize); err != nil {
		return nil, err
	}

	// Managed devices: naplet server + NetManagement service + responder.
	for i := 0; i < cfg.Devices; i++ {
		name := fmt.Sprintf("dev%d", i)
		dev := snmp.NewDevice(snmp.DeviceConfig{
			Name:       name,
			Interfaces: cfg.Interfaces,
			Community:  cfg.Community,
			Seed:       cfg.Seed + int64(i),
			ExtraVars:  cfg.ExtraVars,
		})
		srv, err := newServer(name)
		if err != nil {
			tb.Close()
			return nil, err
		}
		if err := srv.Resources().RegisterPrivileged(ServiceName, NewNetManagementService(dev, cfg.Community)); err != nil {
			tb.Close()
			return nil, err
		}
		if err := srv.Resources().RegisterPrivileged(EventServiceName, NewEventPollService(dev)); err != nil {
			tb.Close()
			return nil, err
		}
		resp, err := cnmp.AttachResponder(tb.Fabric, attach(name+":161"), dev)
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.Devices = append(tb.Devices, dev)
		tb.DeviceNames = append(tb.DeviceNames, srv.Name())
		tb.ResponderNames = append(tb.ResponderNames, resp.Addr())
		tb.servers = append(tb.servers, srv)
		tb.responders = append(tb.responders, resp)
	}

	// MAN station.
	home, err := newServer(StationHost)
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.servers = append(tb.servers, home)
	tb.StationName = home.Name()
	tb.Station = &Station{Server: home, Owner: "czxu"}

	// CNMP station.
	cs, err := cnmp.NewStation(tb.Fabric, attach(CNMPHost))
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.CNMP = cs
	tb.CNMPName = cs.Node().Addr()
	return tb, nil
}

// Servers exposes the device and station naplet servers (devices first,
// station last) for harnesses that need direct handles.
func (tb *Testbed) Servers() []*server.Server { return tb.servers }

// Tick advances every device's workload by dt.
func (tb *Testbed) Tick(dt time.Duration) {
	for _, d := range tb.Devices {
		d.Tick(dt)
	}
}

// QueryOIDs builds the per-device variable list for a sweep of size v:
// standard objects first, then synthetic extras.
func (tb *Testbed) QueryOIDs(v int) []snmp.OID {
	std := []snmp.OID{snmp.OIDSysDescr, snmp.OIDSysUpTime, snmp.OIDSysName, snmp.OIDIfNumber}
	if v <= len(std) {
		return std[:v]
	}
	out := append([]snmp.OID(nil), std...)
	for i := 0; len(out) < v; i++ {
		out = append(out, snmp.ExtraVarOID(i))
	}
	return out
}

// Close tears the rig down.
func (tb *Testbed) Close() {
	for _, s := range tb.servers {
		s.Close()
	}
	for _, r := range tb.responders {
		r.Close()
	}
	if tb.CNMP != nil {
		tb.CNMP.Close()
	}
}

// TickEvents advances every device's workload by dt and emits the round's
// trap notifications.
func (tb *Testbed) TickEvents(dt time.Duration) {
	for _, d := range tb.Devices {
		d.TickEvents(dt)
	}
}

// ForwardAllTraps drains every device's pending traps to the given station
// over the network — the conventional trap path, one frame per trap.
func (tb *Testbed) ForwardAllTraps(ctx context.Context, station string) (int, error) {
	total := 0
	for _, r := range tb.responders {
		n, err := r.ForwardTraps(ctx, station)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TrapTotals sums lifetime (total, significant) trap counts across all
// devices.
func (tb *Testbed) TrapTotals() (total, significant int) {
	for _, d := range tb.Devices {
		tt, ss := d.TrapTotals()
		total += tt
		significant += ss
	}
	return total, significant
}
