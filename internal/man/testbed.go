package man

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cnmp"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/snmp"
)

// TestbedConfig parameterizes a simulated managed network: the rig behind
// the E3 experiment and the §6 example.
type TestbedConfig struct {
	// Devices is the managed device count.
	Devices int
	// Interfaces per device (default 4).
	Interfaces int
	// ExtraVars adds synthetic per-device scalars for MIB-size sweeps.
	ExtraVars int
	// Link is the link characteristic between all hosts (e.g. netsim.LAN
	// or netsim.WAN).
	Link netsim.Link
	// TimeScale compresses modeled time (0 = no sleeping, pure traffic
	// accounting).
	TimeScale float64
	// Seed seeds device workloads and the loss process.
	Seed int64
	// BundleSize models the NMNaplet code bundle (0 = registry default).
	BundleSize int
	// Community is the SNMP read community.
	Community string
}

// Testbed is a complete simulated managed network: a fabric, N managed
// devices each hosting a naplet server (with the NetManagement privileged
// service) and an SNMP responder, a MAN station, and a CNMP station.
type Testbed struct {
	Net *netsim.Network
	Reg *registry.Registry

	// Devices are the simulated managed devices.
	Devices []*snmp.Device
	// DeviceNames are the naplet-server addresses ("dev0"...).
	DeviceNames []string
	// ResponderNames are the SNMP daemon addresses ("dev0:161"...).
	ResponderNames []string

	// Station is the MAN management station.
	Station *Station
	// CNMP is the conventional management station.
	CNMP *cnmp.Station

	servers    []*server.Server
	responders []*cnmp.Responder
}

// StationHost is the MAN station's fabric address.
const StationHost = "station"

// CNMPHost is the CNMP station's fabric address.
const CNMPHost = "cstation"

// NewTestbed builds the rig.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("man: need at least one device")
	}
	if cfg.Community == "" {
		cfg.Community = "public"
	}
	tb := &Testbed{
		Net: netsim.New(netsim.Config{
			DefaultLink: cfg.Link,
			TimeScale:   cfg.TimeScale,
			Seed:        cfg.Seed,
			CallTimeout: 5 * time.Second,
		}),
		Reg: registry.New(),
	}
	if err := RegisterCodebase(tb.Reg, cfg.BundleSize); err != nil {
		return nil, err
	}
	if err := RegisterMonitorCodebase(tb.Reg, cfg.BundleSize); err != nil {
		return nil, err
	}

	// Managed devices: naplet server + NetManagement service + responder.
	for i := 0; i < cfg.Devices; i++ {
		name := fmt.Sprintf("dev%d", i)
		dev := snmp.NewDevice(snmp.DeviceConfig{
			Name:       name,
			Interfaces: cfg.Interfaces,
			Community:  cfg.Community,
			Seed:       cfg.Seed + int64(i),
			ExtraVars:  cfg.ExtraVars,
		})
		srv, err := server.New(server.Config{
			Name:     name,
			Fabric:   tb.Net,
			Registry: tb.Reg,
		})
		if err != nil {
			tb.Close()
			return nil, err
		}
		if err := srv.Resources().RegisterPrivileged(ServiceName, NewNetManagementService(dev, cfg.Community)); err != nil {
			tb.Close()
			return nil, err
		}
		if err := srv.Resources().RegisterPrivileged(EventServiceName, NewEventPollService(dev)); err != nil {
			tb.Close()
			return nil, err
		}
		responderAddr := name + ":161"
		resp, err := cnmp.AttachResponder(tb.Net, responderAddr, dev)
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.Devices = append(tb.Devices, dev)
		tb.DeviceNames = append(tb.DeviceNames, name)
		tb.ResponderNames = append(tb.ResponderNames, responderAddr)
		tb.servers = append(tb.servers, srv)
		tb.responders = append(tb.responders, resp)
	}

	// MAN station.
	home, err := server.New(server.Config{
		Name:     StationHost,
		Fabric:   tb.Net,
		Registry: tb.Reg,
	})
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.servers = append(tb.servers, home)
	tb.Station = &Station{Server: home, Owner: "czxu"}

	// CNMP station.
	cs, err := cnmp.NewStation(tb.Net, CNMPHost)
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.CNMP = cs
	return tb, nil
}

// Tick advances every device's workload by dt.
func (tb *Testbed) Tick(dt time.Duration) {
	for _, d := range tb.Devices {
		d.Tick(dt)
	}
}

// QueryOIDs builds the per-device variable list for a sweep of size v:
// standard objects first, then synthetic extras.
func (tb *Testbed) QueryOIDs(v int) []snmp.OID {
	std := []snmp.OID{snmp.OIDSysDescr, snmp.OIDSysUpTime, snmp.OIDSysName, snmp.OIDIfNumber}
	if v <= len(std) {
		return std[:v]
	}
	out := append([]snmp.OID(nil), std...)
	for i := 0; len(out) < v; i++ {
		out = append(out, snmp.ExtraVarOID(i))
	}
	return out
}

// Close tears the rig down.
func (tb *Testbed) Close() {
	for _, s := range tb.servers {
		s.Close()
	}
	for _, r := range tb.responders {
		r.Close()
	}
	if tb.CNMP != nil {
		tb.CNMP.Close()
	}
}

// TickEvents advances every device's workload by dt and emits the round's
// trap notifications.
func (tb *Testbed) TickEvents(dt time.Duration) {
	for _, d := range tb.Devices {
		d.TickEvents(dt)
	}
}

// ForwardAllTraps drains every device's pending traps to the given station
// over the network — the conventional trap path, one frame per trap.
func (tb *Testbed) ForwardAllTraps(ctx context.Context, station string) (int, error) {
	total := 0
	for _, r := range tb.responders {
		n, err := r.ForwardTraps(ctx, station)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TrapTotals sums lifetime (total, significant) trap counts across all
// devices.
func (tb *Testbed) TrapTotals() (total, significant int) {
	for _, d := range tb.Devices {
		tt, ss := d.TrapTotals()
		total += tt
		significant += ss
	}
	return total, significant
}
