// Package man implements the paper's §6 application: MAN, mobile-agent
// based network management (Figure 3).
//
// "The management station programs demanded device statistics or
// diagnostics functions into an agent and dispatches the agent to the
// devices for on-site management."
//
// The pieces map to the paper directly:
//
//   - NetManagement: the privileged service of §6.1, registered as
//     "serviceImpl.NetManagement" on each managed device's naplet server.
//     Its run loop reads a semicolon-separated parameter list from the
//     ServiceReader, queries the local SNMP agent (on-site: no network
//     traffic), and writes the results to the ServiceWriter.
//   - NMNaplet: the naplet of §6.2. On arrival it opens a service channel
//     to NetManagement, passes its MIB parameters, stores the results in
//     its protected state under "DeviceStatus", and travels on. Its
//     ResultReport post-action reports the gathered status to the home
//     listener.
//   - Station: the management station. It launches NMNaplets with a
//     sequential itinerary (one agent tours all devices and reports once)
//     or the paper's broadcast itinerary (a clone per device, individual
//     reports).
package man

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/snmp"
	"repro/internal/state"
	"repro/internal/wire"
)

// ServiceName is the registered name of the NetManagement privileged
// service (§6.2: 'accessed by incoming naplets through its registered name
// "serviceImpl.NetManagement"').
const ServiceName = "serviceImpl.NetManagement"

// CodebaseName names the NMNaplet agent code in the registry.
const CodebaseName = "naplet.NMNaplet"

// State keys used by the NMNaplet.
const (
	// paramsKey holds the MIB parameter list ([]string of OIDs).
	paramsKey = "man.params"
	// statusKey holds the gathered DeviceStatus map (paper §6.2), stored
	// protected so only the home server could update it.
	statusKey = "DeviceStatus"
)

// NewNetManagementService builds the privileged-service factory for one
// device: each service channel gets a fresh run loop bound to the device's
// local SNMP agent.
func NewNetManagementService(dev *snmp.Device, community string) resource.Factory {
	return func() resource.PrivilegedService {
		return resource.ServiceFunc(func(ch *resource.ServerEnd) {
			for {
				cmd, err := ch.ReadLine()
				if err != nil {
					return // channel closed
				}
				ch.WriteLine(retrieve(dev.Agent, community, cmd))
			}
		})
	}
}

// retrieve mirrors the paper's private retrieve() method: tokenize the
// parameter list, issue a get per parameter against the local agent, and
// assemble the reply line. "walk <root>" walks a subtree.
func retrieve(agent *snmp.Agent, community, cmd string) string {
	cmd = strings.TrimSpace(cmd)
	if rest, ok := strings.CutPrefix(cmd, "walk "); ok {
		root, err := snmp.ParseOID(strings.TrimSpace(rest))
		if err != nil {
			return "error=" + err.Error()
		}
		bindings, err := agent.WalkSubtree(community, root)
		if err != nil {
			return "error=" + err.Error()
		}
		parts := make([]string, len(bindings))
		for i, b := range bindings {
			parts[i] = b.OID.String() + "=" + b.Value.Render()
		}
		return strings.Join(parts, ";")
	}
	var parts []string
	for _, tok := range strings.Split(cmd, ";") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		oid, err := snmp.ParseOID(tok)
		if err != nil {
			parts = append(parts, tok+"=error:"+err.Error())
			continue
		}
		v, err := agent.Get(community, oid)
		if err != nil {
			parts = append(parts, tok+"=error:"+err.Error())
			continue
		}
		parts = append(parts, tok+"="+v.Render())
	}
	return strings.Join(parts, ";")
}

// NMNaplet is the network-management naplet of §6.2.
type NMNaplet struct{}

// OnStart is the naplet's single entry point at each device: it opens the
// NetManagement service channel, passes its parameters through the
// NapletWriter, reads the results from the NapletReader, and stores them
// under the DeviceStatus state entry keyed by device.
func (n *NMNaplet) OnStart(ctx *naplet.Context) error {
	var params []string
	if err := ctx.State().Load(paramsKey, &params); err != nil {
		return fmt.Errorf("man: naplet has no parameters: %w", err)
	}
	ch, err := ctx.Services.OpenChannel(ServiceName)
	if err != nil {
		return err
	}
	defer ch.Close()
	if err := ch.WriteLine(strings.Join(params, ";")); err != nil {
		return err
	}
	line, err := ch.ReadLine()
	if err != nil {
		return err
	}

	status := make(map[string]string)
	if err := ctx.State().Load(statusKey, &status); err != nil && !errors.Is(err, state.ErrNoSuchKey) {
		return err
	}
	for _, pair := range strings.Split(line, ";") {
		if k, v, ok := strings.Cut(pair, "="); ok {
			status[ctx.Server+"|"+k] = v
		}
	}
	return ctx.State().SetProtected(statusKey, status, ctx.Record.Home)
}

// reportPayload is the wire form of a naplet's status report.
type reportPayload struct {
	Status map[string]string
	Route  []string
}

// resultReport is the ResultReport post-action of §6.2: report the
// gathered DeviceStatus back home through the listener.
func resultReport(ctx *naplet.Context) error {
	status := make(map[string]string)
	if err := ctx.State().Load(statusKey, &status); err != nil && !errors.Is(err, state.ErrNoSuchKey) {
		return err
	}
	payload, err := wire.Marshal(&reportPayload{Status: status, Route: ctx.Log().Route()})
	if err != nil {
		return err
	}
	rctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return ctx.Listener.Report(rctx, payload)
}

// RegisterCodebase installs the NMNaplet codebase in a registry.
// bundleSize models the agent's code bundle (0 = registry default).
func RegisterCodebase(reg *registry.Registry, bundleSize int) error {
	return reg.Register(&registry.Codebase{
		Name:       CodebaseName,
		New:        func() naplet.Behavior { return &NMNaplet{} },
		BundleSize: bundleSize,
		Actions: map[string]registry.ActionFunc{
			"ResultReport": resultReport,
		},
	})
}

// Report holds collected values: device → OID string → rendered value.
type Report map[string]map[string]string

// DecodeReport decodes one naplet report payload into the nested
// device -> OID -> value form plus the reporting agent's route. Management
// tools use it to render raw listener bytes.
func DecodeReport(body []byte) (Report, []string, error) {
	var payload reportPayload
	if err := wire.Unmarshal(body, &payload); err != nil {
		return nil, nil, err
	}
	out := make(Report)
	for k, v := range payload.Status {
		dev, oid, ok := strings.Cut(k, "|")
		if !ok {
			continue
		}
		if out[dev] == nil {
			out[dev] = make(map[string]string)
		}
		out[dev][oid] = v
	}
	return out, payload.Route, nil
}

// merge folds src into dst.
func (r Report) merge(src Report) {
	for dev, vals := range src {
		if r[dev] == nil {
			r[dev] = make(map[string]string)
		}
		for k, v := range vals {
			r[dev][k] = v
		}
	}
}

// Stats summarizes one MAN collection run.
type Stats struct {
	// Agents is the number of naplets that travelled (1 + clones).
	Agents int
	// Reports is the number of result reports received.
	Reports int
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// SequentialPattern builds the §6 sequential tour: one agent visits every
// device and reports after the last visit (§3 Example 1).
func SequentialPattern(devices []string) *itinerary.Pattern {
	subs := make([]*itinerary.Pattern, len(devices))
	for i, d := range devices {
		v := itinerary.Visit{Server: d}
		if i == len(devices)-1 {
			v.Action = "ResultReport"
		}
		subs[i] = itinerary.Singleton(v)
	}
	return itinerary.Seq(subs...)
}

// BroadcastPattern builds the §6.2 NMItinerary: a parallel pattern where
// every device is visited by its own clone and each reports individually
// (§3 Example 2).
func BroadcastPattern(devices []string) *itinerary.Pattern {
	subs := make([]*itinerary.Pattern, len(devices))
	for i, d := range devices {
		subs[i] = itinerary.Singleton(itinerary.Visit{Server: d, Action: "ResultReport"})
	}
	return itinerary.Par(subs...)
}

// OIDStrings renders an OID list for the naplet's parameter state.
func OIDStrings(oids []snmp.OID) []string {
	out := make([]string, len(oids))
	for i, o := range oids {
		out[i] = o.String()
	}
	return out
}

// SortedDevices returns the report's device names, sorted (stable output
// for tables).
func (r Report) SortedDevices() []string {
	out := make([]string, 0, len(r))
	for d := range r {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// parseReports folds a set of listener results into one report.
func parseReports(results []manager.Result) (Report, [][]string, error) {
	out := make(Report)
	var routes [][]string
	for _, r := range results {
		rep, route, err := DecodeReport(r.Body)
		if err != nil {
			return nil, nil, err
		}
		out.merge(rep)
		routes = append(routes, route)
	}
	return out, routes, nil
}
