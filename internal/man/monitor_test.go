package man

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/snmp"
)

func TestEventPollService(t *testing.T) {
	dev := snmp.NewDevice(snmp.DeviceConfig{Name: "r1", Seed: 3})
	mgr := resource.NewManager(nil)
	mgr.RegisterPrivileged(EventServiceName, NewEventPollService(dev))

	ch, err := mgr.OpenChannel(nil, EventServiceName)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	// Before any workload: empty poll, round 0.
	ch.WriteLine("poll")
	if line, _ := ch.ReadLine(); line != "" {
		t.Fatalf("fresh poll = %q", line)
	}
	ch.WriteLine("round")
	if line, _ := ch.ReadLine(); line != "0" {
		t.Fatalf("round = %q", line)
	}

	for i := 0; i < 5; i++ {
		dev.TickEvents(time.Second)
	}
	ch.WriteLine("poll")
	line, _ := ch.ReadLine()
	events := strings.Split(line, ";")
	if len(events) < 5 {
		t.Fatalf("poll after 5 rounds: %d events", len(events))
	}
	for _, ev := range events {
		if strings.Count(ev, "|") != 3 {
			t.Fatalf("malformed event %q", ev)
		}
	}
	ch.WriteLine("round")
	if rline, _ := ch.ReadLine(); rline != "5" {
		t.Fatalf("round = %q", rline)
	}
	// Unknown command errors without killing the loop.
	ch.WriteLine("bogus")
	if eline, _ := ch.ReadLine(); !strings.Contains(eline, "error") {
		t.Fatalf("bogus command reply: %q", eline)
	}
}

func TestMonitorAllFiltersOnSite(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Devices: 3, Seed: 6, Link: netsim.LAN})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	const rounds = 15
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < rounds; r++ {
			tb.TickEvents(time.Second)
			time.Sleep(time.Millisecond)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := tb.Station.MonitorAll(ctx, tb.DeviceNames, rounds)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	total, signif := tb.TrapTotals()
	if res.Seen != total {
		t.Fatalf("monitors saw %d of %d events", res.Seen, total)
	}
	alerts := 0
	for _, a := range res.Alerts {
		alerts += len(a)
	}
	if alerts != signif {
		t.Fatalf("alerts %d != significant %d", alerts, signif)
	}
	if res.Filtered != total-signif {
		t.Fatalf("filtered %d != noise %d", res.Filtered, total-signif)
	}
	if len(res.Alerts) != 3 {
		t.Fatalf("device coverage: %v", res.Alerts)
	}
}
