package man

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/manager"
	"repro/internal/server"
	"repro/internal/snmp"
	"repro/internal/state"
)

// Station is the MAN management station: it owns a home naplet server and
// launches NMNaplets against the managed devices (the MAP — Mobile Agent
// Producer — of Figure 3).
type Station struct {
	// Server is the station's home naplet server.
	Server *server.Server
	// Owner is the launching principal.
	Owner string
	// Roles are carried in launched naplets' credentials.
	Roles []string
}

// CollectSequential performs the §6 collection with one agent touring all
// devices in sequence and reporting once after the last visit.
func (st *Station) CollectSequential(ctx context.Context, devices []string, oids []snmp.OID) (Report, Stats, error) {
	return st.collect(ctx, devices, oids, true)
}

// CollectBroadcast performs the §6.2 collection with the broadcast
// itinerary: a clone per device, each reporting individually.
func (st *Station) CollectBroadcast(ctx context.Context, devices []string, oids []snmp.OID) (Report, Stats, error) {
	return st.collect(ctx, devices, oids, false)
}

func (st *Station) collect(ctx context.Context, devices []string, oids []snmp.OID, sequential bool) (Report, Stats, error) {
	var stats Stats
	start := time.Now()
	defer func() { stats.Elapsed = time.Since(start) }()

	pattern := BroadcastPattern(devices)
	wantReports := len(devices)
	stats.Agents = len(devices)
	if sequential {
		pattern = SequentialPattern(devices)
		wantReports = 1
		stats.Agents = 1
	}

	var (
		mu      sync.Mutex
		results []manager.Result
		gotAll  = make(chan struct{})
	)
	params := OIDStrings(oids)
	nid, err := st.Server.Launch(ctx, server.LaunchOptions{
		Owner:    st.Owner,
		Codebase: CodebaseName,
		Pattern:  pattern,
		Roles:    st.Roles,
		InitState: func(s *state.State) error {
			return s.SetPrivate(paramsKey, params)
		},
		Listener: func(r manager.Result) {
			mu.Lock()
			defer mu.Unlock()
			results = append(results, r)
			if len(results) == wantReports {
				close(gotAll)
			}
		},
	})
	if err != nil {
		return nil, stats, err
	}

	select {
	case <-gotAll:
	case <-ctx.Done():
		return nil, stats, ctx.Err()
	}
	// The originator's life cycle also completes; surface trap errors.
	if status, err := st.Server.WaitDone(ctx, nid); err == nil {
		if status == manager.StatusTrapped {
			_, errText, _ := st.Server.Status(nid)
			return nil, stats, fmt.Errorf("man: naplet trapped: %s", errText)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	stats.Reports = len(results)
	report, _, err := parseReports(results)
	return report, stats, err
}
