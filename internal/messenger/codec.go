package messenger

import (
	"repro/internal/naplet"
	"repro/internal/wire"
)

// Binary codecs for the post-protocol bodies, mirroring the navigator
// bodies: a leading version byte distinguishes binary payloads from legacy
// gob ones (a gob struct stream never starts with 0x01), so gob-era senders
// keep working while steady-state messaging avoids reflection.

// bodyCodecVersion is the leading version byte of binary message bodies.
const bodyCodecVersion = 1

// isBinaryBody reports whether a payload carries the binary body codec.
func isBinaryBody(payload []byte) bool {
	return len(payload) > 0 && payload[0] == bodyCodecVersion
}

// EncodedSize returns the exact encoded size of the body.
func (b *PostBody) EncodedSize() int {
	return 1 + b.Msg.EncodedSize() + wire.SizeUvarint(uint64(b.Hops))
}

// AppendBinary appends the body's binary form to dst.
func (b *PostBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = b.Msg.AppendBinary(dst)
	return wire.AppendUvarint(dst, uint64(b.Hops))
}

// Decode parses a post payload, binary or legacy gob.
func (b *PostBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	msg, rest, err := naplet.DecodeMessageBinary(payload[1:])
	if err != nil {
		return err
	}
	b.Msg = msg
	hops, _, err := wire.DecUvarint(rest)
	if err != nil {
		return err
	}
	b.Hops = int(hops)
	return nil
}

// EncodedSize returns the exact encoded size of the body.
func (b *ConfirmBody) EncodedSize() int {
	return 1 + 2*wire.SizeBool + wire.SizeString(b.Server) +
		wire.SizeUvarint(uint64(b.Hops))
}

// AppendBinary appends the body's binary form to dst.
func (b *ConfirmBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendBool(dst, b.Delivered)
	dst = wire.AppendBool(dst, b.Held)
	dst = wire.AppendString(dst, b.Server)
	return wire.AppendUvarint(dst, uint64(b.Hops))
}

// Decode parses a confirm payload, binary or legacy gob.
func (b *ConfirmBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.Delivered, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if b.Held, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if b.Server, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	hops, _, err := wire.DecUvarint(rest)
	if err != nil {
		return err
	}
	b.Hops = int(hops)
	return nil
}
