package messenger

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// telemetryRig is the post-office rig with one telemetry registry per
// server, so tests can assert on the registered counter and histogram
// series directly.
type telemetryRig struct {
	net  *netsim.Network
	mgrs map[string]*manager.Manager
	msgr map[string]*Messenger
	regs map[string]*telemetry.Registry
}

func newTelemetryRig(t *testing.T, servers ...string) *telemetryRig {
	t.Helper()
	r := &telemetryRig{
		net:  netsim.New(netsim.Config{}),
		mgrs: make(map[string]*manager.Manager),
		msgr: make(map[string]*Messenger),
		regs: make(map[string]*telemetry.Registry),
	}
	clock := func() time.Time { return t0 }
	for _, s := range servers {
		s := s
		mgr := manager.New(s, clock)
		reg := telemetry.NewRegistry()
		var msgr *Messenger
		node, err := r.net.Attach(s, func(from string, f wire.Frame) (wire.Frame, error) {
			if f.Kind == wire.KindPost {
				return msgr.HandlePost(from, f)
			}
			return wire.Frame{}, fmt.Errorf("unexpected kind %q", f.Kind)
		})
		if err != nil {
			t.Fatal(err)
		}
		loc := locator.New(locator.Config{Mode: locator.ModeForward}, node, mgr, clock)
		msgr = New(Config{Telemetry: reg}, s, node, loc, mgr, clock)
		r.mgrs[s] = mgr
		r.msgr[s] = msgr
		r.regs[s] = reg
	}
	return r
}

func (r *telemetryRig) land(t *testing.T, owner, home, at string) *naplet.Record {
	t.Helper()
	nid := id.MustNew(owner, home, t0)
	rec := naplet.NewRecord(nid, cred.Credential{NapletID: nid}, "cb", home, nil)
	r.mgrs[at].RecordArrival(nid, "cb", home, t0)
	r.msgr[at].CreateMailbox(nid)
	return rec
}

func (r *telemetryRig) move(t *testing.T, rec *naplet.Record, from, to string) {
	t.Helper()
	if err := r.mgrs[from].RecordDeparture(rec.ID, to, t0); err != nil {
		t.Fatal(err)
	}
	r.msgr[from].CloseMailbox(rec.ID)
	r.mgrs[to].RecordArrival(rec.ID, "cb", from, t0)
	r.msgr[to].CreateMailbox(rec.ID)
}

// counter reads a registered counter's value at a server; registering the
// same name returns the existing handle (GetOrCreate).
func (r *telemetryRig) counter(server, name string) int64 {
	return r.regs[server].Counter(name, "").Value()
}

func (r *telemetryRig) confirmRTT(server string) *telemetry.Histogram {
	return r.regs[server].Histogram("naplet_messenger_confirm_rtt_seconds", "", telemetry.LatencyBuckets)
}

// TestForwardedChaseCounters drives §4.2 case 2 across two forwarding
// hops (s1 -> s2 -> s3) and checks each leg is visible in the registry:
// a forwarded increment at each stale server, delivery at the final one,
// and one confirm-RTT sample at the sender.
func TestForwardedChaseCounters(t *testing.T) {
	r := newTelemetryRig(t, "sa", "s1", "s2", "s3")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "s1", "s1")
	a.Book.Add(b.ID, "s1") // stale after two moves
	r.move(t, b, "s1", "s2")
	r.move(t, b, "s2", "s3")

	if err := r.msgr["sa"].Post(context.Background(), a, b.ID, "chase", []byte("x")); err != nil {
		t.Fatal(err)
	}

	for _, s := range []string{"s1", "s2"} {
		if got := r.counter(s, "naplet_messenger_forwarded_total"); got != 1 {
			t.Errorf("%s forwarded = %d, want 1", s, got)
		}
	}
	if got := r.counter("s3", "naplet_messenger_delivered_total"); got != 1 {
		t.Errorf("s3 delivered = %d, want 1", got)
	}
	if got := r.counter("sa", "naplet_messenger_posted_total"); got != 1 {
		t.Errorf("sa posted = %d, want 1", got)
	}
	// The two-hop chase's confirmation produced exactly one RTT sample at
	// the sender (forwarding legs are not separately sampled there).
	if got := r.confirmRTT("sa").Count(); got != 1 {
		t.Errorf("sa confirm-RTT samples = %d, want 1", got)
	}
	if sum := r.confirmRTT("sa").Sum(); sum < 0 {
		t.Errorf("confirm-RTT sum = %v, want >= 0", sum)
	}
	// Legacy Stats views agree with the registry.
	if st := r.msgr["s1"].Stats(); st.Forwarded != 1 {
		t.Errorf("s1 Stats().Forwarded = %d, want 1", st.Forwarded)
	}
}

// TestHeldMailCounters drives §4.2 case 3: a message sent before the
// naplet lands is held, and the landing drains it into the mailbox with
// held/drained/delivered increments and a confirm-RTT sample recording
// the held (not delivered) confirmation.
func TestHeldMailCounters(t *testing.T) {
	r := newTelemetryRig(t, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	nid := id.MustNew("b", "sb", t0)
	a.Book.Add(nid, "sb")

	// b has not arrived at sb yet: the message must be held there.
	if err := r.msgr["sa"].Post(context.Background(), a, nid, "early", []byte("wait")); err != nil {
		t.Fatal(err)
	}
	if got := r.counter("sb", "naplet_messenger_held_total"); got != 1 {
		t.Fatalf("sb held = %d, want 1", got)
	}
	if got := r.counter("sb", "naplet_messenger_delivered_total"); got != 0 {
		t.Fatalf("sb delivered before landing = %d, want 0", got)
	}
	// A held confirmation still closes the sender's post round trip.
	if got := r.confirmRTT("sa").Count(); got != 1 {
		t.Errorf("sa confirm-RTT samples = %d, want 1", got)
	}

	// Landing drains the special mailbox.
	mb := r.msgr["sb"].CreateMailbox(nid)
	if got := r.counter("sb", "naplet_messenger_drained_held_total"); got != 1 {
		t.Errorf("sb drained = %d, want 1", got)
	}
	if got := r.counter("sb", "naplet_messenger_delivered_total"); got != 1 {
		t.Errorf("sb delivered after landing = %d, want 1", got)
	}
	msg, ok := mb.TryReceive()
	if !ok || string(msg.Body) != "wait" {
		t.Fatalf("held message not drained: %+v %v", msg, ok)
	}
	if st := r.msgr["sb"].Stats(); st.Held != 1 || st.DrainedH != 1 || st.Delivered != 1 {
		t.Errorf("sb Stats() = %+v, want Held/DrainedH/Delivered all 1", st)
	}
}
