package messenger

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/fault"
	"repro/internal/id"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/transport"
	"repro/internal/wire"
)

// overloadRig is the post-office rig with per-server overload wiring and
// an optional fault injector on the fabric.
type overloadRig struct {
	mgrs map[string]*manager.Manager
	msgr map[string]*Messenger
}

func newOverloadRig(t *testing.T, fab transport.Fabric, mkCfg func(server string) Config, wrap func(server string, h transport.Handler) transport.Handler, servers ...string) *overloadRig {
	t.Helper()
	r := &overloadRig{
		mgrs: make(map[string]*manager.Manager),
		msgr: make(map[string]*Messenger),
	}
	clock := func() time.Time { return t0 }
	for _, s := range servers {
		s := s
		mgr := manager.New(s, clock)
		var msgr *Messenger
		h := transport.Handler(func(from string, f wire.Frame) (wire.Frame, error) {
			if f.Kind == wire.KindPost {
				return msgr.HandlePost(from, f)
			}
			return wire.Frame{}, fmt.Errorf("unexpected kind %q", f.Kind)
		})
		if wrap != nil {
			h = wrap(s, h)
		}
		node, err := fab.Attach(s, h)
		if err != nil {
			t.Fatal(err)
		}
		loc := locator.New(locator.Config{Mode: locator.ModeForward}, node, mgr, clock)
		msgr = New(mkCfg(s), s, node, loc, mgr, clock)
		r.mgrs[s] = mgr
		r.msgr[s] = msgr
	}
	return r
}

func (r *overloadRig) land(t *testing.T, owner, home, at string) *naplet.Record {
	t.Helper()
	nid := id.MustNew(owner, home, t0)
	rec := naplet.NewRecord(nid, cred.Credential{NapletID: nid}, "cb", home, nil)
	r.mgrs[at].RecordArrival(nid, "cb", home, t0)
	r.msgr[at].CreateMailbox(nid)
	return rec
}

// TestPostOverloadShedRetriesAndDelivers: a typed overload shed from the
// destination is transient — the messenger retries past it, feeds the
// breaker proof of life, and the mail lands.
func TestPostOverloadShedRetriesAndDelivers(t *testing.T) {
	net := netsim.New(netsim.Config{})
	brk := overload.NewBreakers(overload.BreakerConfig{FailureThreshold: 2})
	var sheds atomic.Int64
	r := newOverloadRig(t, net,
		func(server string) Config {
			if server == "sa" {
				return Config{SendRetries: 5, RetryDelay: time.Millisecond, Breakers: brk}
			}
			return Config{}
		},
		func(server string, h transport.Handler) transport.Handler {
			if server != "sb" {
				return h
			}
			return func(from string, f wire.Frame) (wire.Frame, error) {
				if sheds.Add(1) <= 2 {
					return wire.Frame{}, fmt.Errorf("gate: %w", overload.ErrOverloaded)
				}
				return h(from, f)
			}
		},
		"sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")
	a.Book.Add(b.ID, "sb")

	if err := r.msgr["sa"].Post(context.Background(), a, b.ID, "greet", []byte("hello")); err != nil {
		t.Fatalf("post through overload: %v", err)
	}
	mb, _ := r.msgr["sb"].Mailbox(b.ID)
	if _, ok := mb.TryReceive(); !ok {
		t.Fatal("message not delivered after the sheds cleared")
	}
	if got := sheds.Load(); got != 3 {
		t.Fatalf("destination saw %d frames, want 3 (2 sheds + 1 delivery)", got)
	}
	// Overload replies are proof of life: the breaker never opened.
	if got := brk.Stats().TotalOpened(); got != 0 {
		t.Fatalf("breaker opened %d times on overload replies", got)
	}
}

// TestPostRetryBudgetExhausted: transport-level loss burns send retries
// only while the token bucket holds out.
func TestPostRetryBudgetExhausted(t *testing.T) {
	rb := overload.NewRetryBudget(overload.RetryBudgetConfig{Ratio: 0.1, Burst: 1})
	inj := fault.New(fault.Config{Seed: 3, P: fault.Probabilities{DropRequest: 1}})
	fab := inj.Fabric(netsim.New(netsim.Config{}))
	r := newOverloadRig(t, fab,
		func(server string) Config {
			if server == "sa" {
				return Config{SendRetries: 10, RetryDelay: time.Millisecond, RetryBudget: rb}
			}
			return Config{}
		}, nil, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")
	a.Book.Add(b.ID, "sb")

	err := r.msgr["sa"].Post(context.Background(), a, b.ID, "greet", []byte("hello"))
	if !errors.Is(err, overload.ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	// Burst 1 buys the first attempt plus exactly one retry.
	if got := inj.Counts()[fault.FaultDropRequest]; got != 2 {
		t.Fatalf("network attempts = %d, want 2 (10 retries configured, budget allowed 1)", got)
	}
	if got := rb.Exhausted(); got != 1 {
		t.Fatalf("exhausted = %d, want 1", got)
	}
}

// TestPostBreakerOpensOnTransportLoss: repeated transport-level failures
// open the destination's breaker; further sends are refused locally.
func TestPostBreakerOpensOnTransportLoss(t *testing.T) {
	brk := overload.NewBreakers(overload.BreakerConfig{FailureThreshold: 2})
	inj := fault.New(fault.Config{Seed: 5, P: fault.Probabilities{DropRequest: 1}})
	fab := inj.Fabric(netsim.New(netsim.Config{}))
	r := newOverloadRig(t, fab,
		func(server string) Config {
			if server == "sa" {
				return Config{SendRetries: 6, RetryDelay: time.Millisecond, Breakers: brk}
			}
			return Config{}
		}, nil, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")
	a.Book.Add(b.ID, "sb")

	err := r.msgr["sa"].Post(context.Background(), a, b.ID, "greet", []byte("x"))
	if !errors.Is(err, overload.ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen after the threshold", err)
	}
	// Exactly FailureThreshold frames reached the network; the rest of
	// the retry schedule was refused locally.
	if got := inj.Counts()[fault.FaultDropRequest]; got != 2 {
		t.Fatalf("network attempts = %d, want 2", got)
	}
	if got := brk.Stats().Opened[overload.OpenReasonFailures]; got != 1 {
		t.Fatalf("failure opens = %d, want 1", got)
	}

	// A second post is refused before any network I/O.
	err = r.msgr["sa"].Post(context.Background(), a, b.ID, "again", []byte("y"))
	if !errors.Is(err, overload.ErrBreakerOpen) {
		t.Fatalf("second post err = %v, want ErrBreakerOpen", err)
	}
	if got := inj.Counts()[fault.FaultDropRequest]; got != 2 {
		t.Fatalf("refused post touched the network: %d attempts", got)
	}
}
