// Package messenger implements the Messenger of §2.2 and the post-office
// messaging protocol of §4.2: persistent, asynchronous, location-independent
// inter-naplet communication.
//
// On receiving a naplet, the messenger creates a mailbox for its
// correspondence. Posting a message resolves the target's most recent
// server through the Locator (or the sender's address book) and sends it
// there. The receiving messenger then follows the paper's three cases:
//
//  1. the naplet is running there: deliver to its mailbox (user messages)
//     or cast an interrupt (system messages) and confirm to the sender;
//  2. the naplet has moved on: consult the NapletManager's visit trace and
//     forward to the server the naplet left for, repeating "until the
//     message catches up" with the naplet;
//  3. the naplet has not arrived yet (it may be blocked in the network):
//     hold the message in a special mailbox and deliver it when the naplet
//     lands.
//
// Delivery confirmations flow back along the forwarding chain and carry the
// delivering server, which refreshes the sender's locator cache and address
// book.
package messenger

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dedup"
	"repro/internal/id"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/overload"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// PostBody is the wire body of a KindPost frame.
type PostBody struct {
	Msg naplet.Message
	// Hops counts forwarding legs already taken.
	Hops int
}

// ConfirmBody is the wire body of a KindPostConfirm frame.
type ConfirmBody struct {
	// Delivered reports the message reached the naplet's mailbox (or its
	// interrupt handler, for system messages).
	Delivered bool
	// Held reports the message was parked in a special mailbox awaiting
	// the naplet's arrival (case 3).
	Held bool
	// Server is where the message ended up: the delivering server or the
	// holding server. Senders refresh their caches from it.
	Server string
	// Hops is the total number of forwarding legs taken.
	Hops int
}

// Errors reported by the messenger.
var (
	ErrUnknownPeer   = errors.New("messenger: target not in address book")
	ErrHopsExceeded  = errors.New("messenger: forwarding hop limit exceeded")
	ErrNapletGone    = errors.New("messenger: naplet ended its life cycle here")
	ErrMailboxClosed = errors.New("messenger: mailbox closed")
)

// Stats is a point-in-time snapshot of messenger activity at one server.
// The counters live in the telemetry registry; Stats is the legacy view
// built by Messenger.Stats.
type Stats struct {
	Posted      int64 // messages sent from this server
	Delivered   int64 // messages delivered into local mailboxes
	Forwarded   int64 // messages forwarded to another server
	Held        int64 // messages parked in the special mailbox
	DrainedH    int64 // held messages later delivered on arrival
	Interrupts  int64 // system messages cast as interrupts
	Reconfirmed int64 // duplicate deliveries absorbed and re-confirmed
	Retries     int64 // send/forward re-attempts on transient failures
	PushedInval int64 // migration notices pushed to correspondents
	Compressed  int64 // forwarding pointers compressed after a chase
}

// metrics holds the messenger's registered telemetry handles.
type metrics struct {
	posted      *telemetry.Counter
	delivered   *telemetry.Counter
	forwarded   *telemetry.Counter
	held        *telemetry.Counter
	drained     *telemetry.Counter
	interrupts  *telemetry.Counter
	reconfirmed *telemetry.Counter
	retries     *telemetry.Counter
	pushedInval *telemetry.Counter
	compressed  *telemetry.Counter
	confirmRTT  *telemetry.Histogram
	retryWait   *telemetry.Histogram
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		posted:      reg.Counter("naplet_messenger_posted_total", "messages sent from this server"),
		delivered:   reg.Counter("naplet_messenger_delivered_total", "messages delivered into local mailboxes"),
		forwarded:   reg.Counter("naplet_messenger_forwarded_total", "messages forwarded along visit traces"),
		held:        reg.Counter("naplet_messenger_held_total", "messages parked in the special mailbox"),
		drained:     reg.Counter("naplet_messenger_drained_held_total", "held messages delivered on arrival"),
		interrupts:  reg.Counter("naplet_messenger_interrupts_total", "system messages cast as interrupts"),
		reconfirmed: reg.Counter("naplet_messenger_reconfirmed_total", "duplicate deliveries absorbed and re-confirmed"),
		retries:     reg.Counter("naplet_messenger_send_retries_total", "post/forward re-attempts on transient failures"),
		pushedInval: reg.Counter("naplet_messenger_pushed_invalidations_total", "migration notices pushed to recent correspondents"),
		compressed:  reg.Counter("naplet_messenger_compressed_traces_total", "forwarding pointers compressed after a completed chase"),
		confirmRTT: reg.Histogram("naplet_messenger_confirm_rtt_seconds",
			"post-to-confirmation round-trip time", telemetry.LatencyBuckets),
		retryWait: reg.Histogram("naplet_messenger_retry_backoff_seconds",
			"backoff sleeps between post/forward retries", telemetry.LatencyBuckets),
	}
}

// InterruptSink casts a system message onto a resident naplet; it reports
// false when the naplet has no running group here.
type InterruptSink func(to id.NapletID, msg naplet.Message) bool

// Config parameterizes a messenger.
type Config struct {
	// MaxHops bounds the forwarding chain (default 16).
	MaxHops int
	// ForwardTimeout bounds each forwarding call (default 10s).
	ForwardTimeout time.Duration
	// SendRetries bounds re-attempts of a failed post or forward-chase
	// leg on transient network errors (default 2; negative disables
	// retries). The message ID stays stable across retries, so a retry
	// after a lost confirmation is re-confirmed by the receiver's dedup
	// window, never re-delivered.
	SendRetries int
	// RetryDelay is the initial backoff between send retries; it doubles
	// per attempt (default 5ms).
	RetryDelay time.Duration
	// DedupMax bounds the delivered-message-ID window (default
	// dedup.DefaultMax).
	DedupMax int
	// DedupTTL bounds how long delivered message IDs are remembered
	// (default dedup.DefaultTTL).
	DedupTTL time.Duration
	// Telemetry receives the messenger's counters and confirm-RTT
	// histogram; nil uses a private registry.
	Telemetry *telemetry.Registry
	// Breakers, when non-nil, gates remote post/forward legs per
	// destination server; an open breaker fails the leg locally.
	Breakers *overload.Breakers
	// RetryBudget, when non-nil, bounds send retries to a fraction of
	// first attempts (see overload.RetryBudget). Nil leaves retries
	// bounded only by SendRetries.
	RetryBudget *overload.RetryBudget
}

// Messenger is the per-server post office. It is safe for concurrent use.
type Messenger struct {
	cfg    Config
	server string
	node   transport.Node
	loc    *locator.Locator
	mgr    *manager.Manager
	clock  func() time.Time

	met *metrics

	msgSeq    atomic.Uint64
	delivered *dedup.Window // message IDs already delivered here

	mu        sync.Mutex
	mailboxes map[string]*Mailbox
	special   map[string][]naplet.Message
	interrupt InterruptSink
	// correspondents remembers, per resident naplet, which servers
	// recently posted mail to it here — the peers worth telling when the
	// naplet migrates (push-invalidation of their locator caches). Bounded
	// by maxCorrespondents per naplet and maxTracked naplets.
	correspondents map[string]map[string]struct{}
}

// Correspondent-tracking bounds: enough to cover a naplet's active
// conversation partners without letting a chatty population grow the maps
// unboundedly.
const (
	maxCorrespondents = 8
	maxTracked        = 1024
)

// New builds the messenger of a server. node sends outbound frames; loc
// resolves targets; mgr supplies visit traces for forwarding; nil clock
// means time.Now.
func New(cfg Config, server string, node transport.Node, loc *locator.Locator, mgr *manager.Manager, clock func() time.Time) *Messenger {
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 16
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 10 * time.Second
	}
	if cfg.SendRetries < 0 {
		cfg.SendRetries = 0
	} else if cfg.SendRetries == 0 {
		cfg.SendRetries = 2
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 5 * time.Millisecond
	}
	if clock == nil {
		clock = time.Now
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Messenger{
		cfg:            cfg,
		server:         server,
		node:           node,
		loc:            loc,
		mgr:            mgr,
		clock:          clock,
		met:            newMetrics(reg),
		delivered:      dedup.NewWindow(cfg.DedupMax, cfg.DedupTTL, clock),
		mailboxes:      make(map[string]*Mailbox),
		special:        make(map[string][]naplet.Message),
		correspondents: make(map[string]map[string]struct{}),
	}
}

// SetInterruptSink installs the monitor hook that casts system messages
// onto resident naplets.
func (m *Messenger) SetInterruptSink(sink InterruptSink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.interrupt = sink
}

// Stats snapshots the messenger's activity counters from the telemetry
// registry.
func (m *Messenger) Stats() Stats {
	return Stats{
		Posted:      m.met.posted.Value(),
		Delivered:   m.met.delivered.Value(),
		Forwarded:   m.met.forwarded.Value(),
		Held:        m.met.held.Value(),
		DrainedH:    m.met.drained.Value(),
		Interrupts:  m.met.interrupts.Value(),
		Reconfirmed: m.met.reconfirmed.Value(),
		Retries:     m.met.retries.Value(),
		PushedInval: m.met.pushedInval.Value(),
		Compressed:  m.met.compressed.Value(),
	}
}

// mintMsgID assigns a message its end-to-end identifier.
func (m *Messenger) mintMsgID() string {
	return fmt.Sprintf("%s/m%d", m.server, m.msgSeq.Add(1))
}

// ---- Mailbox lifecycle ----

// CreateMailbox opens the mailbox for an arriving naplet and drains any
// messages held for it in the special mailbox (§4.2 case 3: "On receiving
// the naplet B, Sb's Messenger creates a mailbox and dumps the B's messages
// in the special mailbox to B's mailbox"). Held system messages are cast
// as interrupts, not queued: a suspend or terminate that raced the
// naplet's landing still takes effect.
func (m *Messenger) CreateMailbox(nid id.NapletID) *Mailbox {
	m.mu.Lock()
	key := nid.Key()
	mb, ok := m.mailboxes[key]
	if !ok {
		mb = newMailbox()
		m.mailboxes[key] = mb
	}
	held := m.special[key]
	delete(m.special, key)
	sink := m.interrupt
	var drained, interrupts int64
	m.mu.Unlock()

	for _, msg := range held {
		if msg.ID != "" && m.delivered.Seen(msg.ID) {
			// A duplicate was held while another copy already reached the
			// naplet (or its mailbox): absorb it.
			m.met.reconfirmed.Inc()
			continue
		}
		if msg.IsSystem() && sink != nil && sink(nid, msg) {
			m.markDelivered(msg)
			interrupts++
			continue
		}
		mb.put(msg)
		m.markDelivered(msg)
		drained++
	}
	m.met.drained.Add(drained + interrupts)
	m.met.delivered.Add(drained)
	m.met.interrupts.Add(interrupts)
	return mb
}

// Mailbox returns the open mailbox of a resident naplet.
func (m *Messenger) Mailbox(nid id.NapletID) (*Mailbox, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.mailboxes[nid.Key()]
	return mb, ok
}

// CloseMailbox removes a departing naplet's mailbox and returns any
// undelivered messages so the caller can forward them after the naplet.
func (m *Messenger) CloseMailbox(nid id.NapletID) []naplet.Message {
	m.mu.Lock()
	mb, ok := m.mailboxes[nid.Key()]
	delete(m.mailboxes, nid.Key())
	m.mu.Unlock()
	if !ok {
		return nil
	}
	return mb.close()
}

// ForwardLeftovers re-posts messages left in a departed naplet's mailbox
// toward its destination server. The messages keep their original IDs, so
// a leftover that races a duplicate in flight is still delivered once.
func (m *Messenger) ForwardLeftovers(ctx context.Context, dest string, msgs []naplet.Message) error {
	var firstErr error
	for _, msg := range msgs {
		if _, err := m.sendRetry(ctx, dest, PostBody{Msg: msg}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---- Sending ----

// Post sends a user message from a resident naplet to a peer. The peer
// must appear in the sender's address book ("we restrict communications
// between naplets who know their identifiers", §2.1). The sender's book and
// locator cache are refreshed from the delivery confirmation.
func (m *Messenger) Post(ctx context.Context, from *naplet.Record, to id.NapletID, subject string, body []byte) error {
	entry, known := from.Book.Lookup(to)
	if !known {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	msg := naplet.Message{
		ID:      m.mintMsgID(),
		From:    from.ID,
		To:      to,
		Class:   naplet.UserMessage,
		Subject: subject,
		Body:    append([]byte(nil), body...),
		SentAt:  m.clock(),
	}
	confirm, err := m.route(ctx, msg, entry.ServerURN)
	if err != nil {
		return err
	}
	from.Book.Update(to, confirm.Server)
	return nil
}

// SendControl sends a system message (callback, terminate, suspend,
// resume) to a naplet, typically invoked by its home manager on behalf of
// the owner. hint may be empty.
func (m *Messenger) SendControl(ctx context.Context, to id.NapletID, verb naplet.ControlVerb, hint string) error {
	msg := naplet.Message{
		ID:      m.mintMsgID(),
		To:      to,
		Class:   naplet.SystemMessage,
		Control: verb,
		SentAt:  m.clock(),
	}
	_, err := m.route(ctx, msg, hint)
	return err
}

// route resolves the target and sends the message, returning the
// confirmation.
func (m *Messenger) route(ctx context.Context, msg naplet.Message, hint string) (ConfirmBody, error) {
	server := hint
	if m.loc != nil {
		if s, err := m.loc.Locate(ctx, msg.To, hint); err == nil {
			server = s
		} else if hint == "" {
			return ConfirmBody{}, err
		}
	}
	if server == "" {
		return ConfirmBody{}, fmt.Errorf("messenger: no route to %s", msg.To)
	}
	m.met.posted.Inc()
	start := time.Now()
	confirm, err := m.sendRetry(ctx, server, PostBody{Msg: msg})
	if err != nil {
		if m.loc != nil {
			m.loc.Miss(msg.To)
		}
		return ConfirmBody{}, err
	}
	m.met.confirmRTT.ObserveDuration(time.Since(start))
	if m.loc != nil && confirm.Delivered {
		m.loc.Refresh(msg.To, confirm.Server)
	}
	return confirm, nil
}

// sendRetry performs one leg of the post protocol, re-attempting transient
// failures with doubling backoff up to cfg.SendRetries times. The message
// ID is stable across attempts, so a leg that delivered but lost its
// confirmation is absorbed and re-confirmed by the receiver's dedup window
// rather than delivered twice.
func (m *Messenger) sendRetry(ctx context.Context, server string, body PostBody) (ConfirmBody, error) {
	delay := m.cfg.RetryDelay
	var confirm ConfirmBody
	var err error
	m.cfg.RetryBudget.RecordAttempt()
	for attempt := 0; ; attempt++ {
		confirm, err = m.send(ctx, server, body)
		if err == nil || attempt >= m.cfg.SendRetries {
			return confirm, err
		}
		// Protocol verdicts are authoritative; only transport-level
		// failures are worth re-attempting. An error *reply* means the
		// leg completed and the remote handler answered — retrying would
		// re-ask a settled question (and amplify exponentially along a
		// forwarding chain). Overload and deadline sheds are the
		// exception: they come back as typed sentinels, not *wire.Error,
		// precisely so this loop treats them as transient.
		var werr *wire.Error
		if errors.As(err, &werr) {
			return confirm, err
		}
		if errors.Is(err, ErrNapletGone) || errors.Is(err, ErrHopsExceeded) || errors.Is(err, ErrUnknownPeer) {
			return confirm, err
		}
		if ctx.Err() != nil {
			return confirm, err
		}
		if !m.cfg.RetryBudget.AllowRetry() {
			return confirm, fmt.Errorf("%w: %w", overload.ErrRetryBudgetExhausted, err)
		}
		m.met.retries.Inc()
		m.met.retryWait.ObserveDuration(delay)
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return confirm, err
		}
		delay *= 2
	}
}

// send performs one network leg of the post protocol.
func (m *Messenger) send(ctx context.Context, server string, body PostBody) (ConfirmBody, error) {
	// A message addressed to a naplet on this very server short-circuits.
	if server == m.server {
		return m.deliverOrForward(ctx, body)
	}
	if berr := m.cfg.Breakers.Allow(server); berr != nil {
		return ConfirmBody{}, berr
	}
	f := wire.BinaryFrame(wire.KindPost, "", "", &body)
	reply, err := m.node.Call(ctx, server, f)
	if err != nil {
		// Any reply composed by the peer — a protocol verdict or an
		// overload shed — proves it alive; only transport-level silence
		// feeds the breaker's failure count.
		var werr *wire.Error
		if errors.As(err, &werr) || overload.Liveness(err) {
			m.cfg.Breakers.OnSuccess(server)
		} else {
			m.cfg.Breakers.OnFailure(server)
		}
		return ConfirmBody{}, err
	}
	m.cfg.Breakers.OnSuccess(server)
	var confirm ConfirmBody
	if err := confirm.Decode(reply.Payload); err != nil {
		return ConfirmBody{}, err
	}
	return confirm, nil
}

// ---- Receiving ----

// HandlePost is the server's KindPost frame handler.
func (m *Messenger) HandlePost(from string, f wire.Frame) (wire.Frame, error) {
	var body PostBody
	if err := body.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	m.noteCorrespondent(body.Msg.To, from)
	// The forwarding context inherits the poster's propagated budget (if
	// the frame carries one), additionally bounded by ForwardTimeout —
	// a chase has no business outliving the caller waiting on it.
	parent, pcancel := f.BudgetContext(context.Background())
	defer pcancel()
	ctx, cancel := context.WithTimeout(parent, m.cfg.ForwardTimeout)
	defer cancel()
	confirm, err := m.deliverOrForward(ctx, body)
	if err != nil {
		return wire.Frame{}, err
	}
	return wire.BinaryFrame(wire.KindPostConfirm, f.To, f.From, &confirm), nil
}

// deliverOrForward applies the paper's three delivery cases at this server.
func (m *Messenger) deliverOrForward(ctx context.Context, body PostBody) (ConfirmBody, error) {
	to := body.Msg.To

	// Case 1: the naplet is here.
	if delivered := m.deliverLocal(body.Msg); delivered {
		return ConfirmBody{Delivered: true, Server: m.server, Hops: body.Hops}, nil
	}

	// Case 2: the naplet moved on — chase it along the visit trace.
	if m.mgr != nil {
		tr := m.mgr.TraceNaplet(to)
		if tr.Known && !tr.Present {
			if tr.Dest == "" {
				return ConfirmBody{}, fmt.Errorf("%w: %s", ErrNapletGone, to)
			}
			if body.Hops+1 > m.cfg.MaxHops {
				return ConfirmBody{}, fmt.Errorf("%w: %d", ErrHopsExceeded, body.Hops)
			}
			m.met.forwarded.Inc()
			next := PostBody{Msg: body.Msg, Hops: body.Hops + 1}
			confirm, err := m.sendRetry(ctx, tr.Dest, next)
			if err == nil && confirm.Delivered && confirm.Server != "" && confirm.Server != tr.Dest {
				// The chase ran past tr.Dest: compress this server's
				// forwarding pointer so the next message through here jumps
				// straight to where the naplet actually is.
				m.mgr.CompressTrace(to, confirm.Server)
				m.met.compressed.Inc()
			}
			return confirm, err
		}
		if tr.Known && tr.Present {
			// Present but no mailbox/interrupt target — a system message
			// for a naplet without a group, or a race with landing.
			// Hold it; the landing will drain the special mailbox.
			return m.hold(body), nil
		}
	}

	// Case 3: not arrived yet — park in the special mailbox.
	return m.hold(body), nil
}

func (m *Messenger) hold(body PostBody) ConfirmBody {
	m.mu.Lock()
	key := body.Msg.To.Key()
	if body.Msg.ID != "" {
		for _, held := range m.special[key] {
			if held.ID == body.Msg.ID {
				m.mu.Unlock()
				m.met.reconfirmed.Inc()
				return ConfirmBody{Held: true, Server: m.server, Hops: body.Hops}
			}
		}
	}
	m.special[key] = append(m.special[key], body.Msg)
	m.mu.Unlock()
	m.met.held.Inc()
	return ConfirmBody{Held: true, Server: m.server, Hops: body.Hops}
}

// deliverLocal tries local delivery: interrupts for system messages,
// mailbox for user messages. A message whose ID is already in the
// delivered window is a duplicate — a retried post whose confirmation was
// lost, or a duplicated frame — and is absorbed and re-confirmed without
// a second delivery.
func (m *Messenger) deliverLocal(msg naplet.Message) bool {
	if msg.ID != "" && m.delivered.Seen(msg.ID) {
		m.met.reconfirmed.Inc()
		return true
	}
	if msg.IsSystem() {
		m.mu.Lock()
		sink := m.interrupt
		m.mu.Unlock()
		if sink != nil && sink(msg.To, msg) {
			m.markDelivered(msg)
			m.met.interrupts.Inc()
			return true
		}
		return false
	}
	m.mu.Lock()
	mb, ok := m.mailboxes[msg.To.Key()]
	m.mu.Unlock()
	if !ok {
		return false
	}
	m.met.delivered.Inc()
	mb.put(msg)
	m.markDelivered(msg)
	return true
}

// noteCorrespondent remembers that peer posted mail for nid through this
// server, so the peer can be told when nid migrates.
func (m *Messenger) noteCorrespondent(nid id.NapletID, peer string) {
	if peer == "" || peer == m.server {
		return
	}
	key := nid.Key()
	m.mu.Lock()
	defer m.mu.Unlock()
	peers, ok := m.correspondents[key]
	if !ok {
		if len(m.correspondents) >= maxTracked {
			return
		}
		peers = make(map[string]struct{}, 1)
		m.correspondents[key] = peers
	}
	if len(peers) >= maxCorrespondents {
		return
	}
	peers[peer] = struct{}{}
}

// PushMigration tells the naplet's recent correspondents that it left this
// server for dest, refreshing their locator caches in place (the paper's
// "buffered naplet location information can be updated on migration",
// pushed instead of polled). Best effort: an unreachable peer just misses
// the notice and falls back to lookup-on-miss. Returns how many peers were
// notified.
func (m *Messenger) PushMigration(ctx context.Context, nid id.NapletID, dest string) int {
	key := nid.Key()
	m.mu.Lock()
	peers := m.correspondents[key]
	delete(m.correspondents, key)
	m.mu.Unlock()
	pushed := 0
	for peer := range peers {
		if peer == dest {
			continue
		}
		body := locator.InvalidateBody{NapletID: nid, Server: dest}
		f := wire.BinaryFrame(wire.KindLocatorInvalidate, m.server, peer, &body)
		cctx, cancel := context.WithTimeout(ctx, m.cfg.ForwardTimeout)
		_, err := m.node.Call(cctx, peer, f)
		cancel()
		if err == nil {
			pushed++
		}
	}
	if pushed > 0 {
		m.met.pushedInval.Add(int64(pushed))
	}
	return pushed
}

// markDelivered records a message ID in the delivered window so later
// duplicates are re-confirmed instead of re-delivered.
func (m *Messenger) markDelivered(msg naplet.Message) {
	if msg.ID != "" {
		m.delivered.Mark(msg.ID)
	}
}

// HeldCount reports how many messages are parked for a naplet (tests and
// introspection).
func (m *Messenger) HeldCount(nid id.NapletID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.special[nid.Key()])
}

// ---- Durability and drain ----

// HeldSnapshot deep-copies the special mailbox for a dock snapshot.
func (m *Messenger) HeldSnapshot() map[string][]naplet.Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]naplet.Message, len(m.special))
	for key, msgs := range m.special {
		out[key] = append([]naplet.Message(nil), msgs...)
	}
	return out
}

// MailboxSnapshot deep-copies the queued-but-unreceived messages of every
// open mailbox for a dock snapshot. A crash loses in-flight receipt, but a
// queued message that was never handed to the naplet survives the restart
// as held mail and is re-drained when the naplet's mailbox reopens.
func (m *Messenger) MailboxSnapshot() map[string][]naplet.Message {
	m.mu.Lock()
	boxes := make(map[string]*Mailbox, len(m.mailboxes))
	for key, mb := range m.mailboxes {
		boxes[key] = mb
	}
	m.mu.Unlock()
	out := make(map[string][]naplet.Message)
	for key, mb := range boxes {
		if msgs := mb.snapshot(); len(msgs) > 0 {
			out[key] = msgs
		}
	}
	return out
}

// RestoreHeld reseeds the special mailbox from a restored dock snapshot.
// A message whose ID is already held for the same key, or already in the
// delivered window, is absorbed rather than duplicated — restoring after a
// crash must not double mail that also survived in flight.
func (m *Messenger) RestoreHeld(held map[string][]naplet.Message) {
	for key, msgs := range held {
		for _, msg := range msgs {
			if msg.ID != "" && m.delivered.Seen(msg.ID) {
				continue
			}
			m.mu.Lock()
			dup := false
			if msg.ID != "" {
				for _, h := range m.special[key] {
					if h.ID == msg.ID {
						dup = true
						break
					}
				}
			}
			if !dup {
				m.special[key] = append(m.special[key], msg)
			}
			m.mu.Unlock()
		}
	}
}

// FlushHeld attempts onward delivery of every held message (graceful
// drain): each target is located and its mail forwarded to that server.
// Messages whose target cannot be located, or that locate back to this
// draining server, stay held for the final dock snapshot. Returns how many
// messages moved.
func (m *Messenger) FlushHeld(ctx context.Context) int {
	m.mu.Lock()
	pending := m.special
	m.special = make(map[string][]naplet.Message)
	m.mu.Unlock()

	flushed := 0
	for key, msgs := range pending {
		if len(msgs) == 0 {
			continue
		}
		var dest string
		if m.loc != nil {
			if s, err := m.loc.Locate(ctx, msgs[0].To, ""); err == nil && s != m.server {
				dest = s
			}
		}
		if dest == "" {
			m.restoreHeldKey(key, msgs)
			continue
		}
		var kept []naplet.Message
		for _, msg := range msgs {
			if _, err := m.sendRetry(ctx, dest, PostBody{Msg: msg}); err != nil {
				kept = append(kept, msg)
				continue
			}
			flushed++
		}
		if len(kept) > 0 {
			m.restoreHeldKey(key, kept)
		}
	}
	return flushed
}

func (m *Messenger) restoreHeldKey(key string, msgs []naplet.Message) {
	m.mu.Lock()
	m.special[key] = append(m.special[key], msgs...)
	m.mu.Unlock()
}

// DeliveredSnapshot returns the message IDs in the delivery dedup window,
// for persistence across a restart.
func (m *Messenger) DeliveredSnapshot() []string { return m.delivered.Keys() }

// RestoreDelivered re-marks previously delivered message IDs so replays of
// pre-restart posts are re-confirmed, not enqueued twice.
func (m *Messenger) RestoreDelivered(ids []string) {
	for _, id := range ids {
		m.delivered.Mark(id)
	}
}

// ---- Mailbox ----

// Mailbox is one naplet's message queue at its current server.
type Mailbox struct {
	mu     sync.Mutex
	msgs   []naplet.Message
	wake   chan struct{}
	closed bool
}

func newMailbox() *Mailbox {
	return &Mailbox{wake: make(chan struct{}, 1)}
}

func (b *Mailbox) put(msg naplet.Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.msgs = append(b.msgs, msg)
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// TryReceive returns the next message without blocking.
func (b *Mailbox) TryReceive() (naplet.Message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.msgs) == 0 {
		return naplet.Message{}, false
	}
	msg := b.msgs[0]
	b.msgs = b.msgs[1:]
	return msg, true
}

// Receive blocks until a message arrives, the mailbox closes, or ctx ends.
func (b *Mailbox) Receive(ctx context.Context) (naplet.Message, error) {
	for {
		b.mu.Lock()
		if len(b.msgs) > 0 {
			msg := b.msgs[0]
			b.msgs = b.msgs[1:]
			b.mu.Unlock()
			return msg, nil
		}
		if b.closed {
			b.mu.Unlock()
			return naplet.Message{}, ErrMailboxClosed
		}
		b.mu.Unlock()
		select {
		case <-b.wake:
		case <-ctx.Done():
			return naplet.Message{}, ctx.Err()
		}
	}
}

// Len reports the queued message count.
func (b *Mailbox) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.msgs)
}

// snapshot copies the queued messages without consuming them.
func (b *Mailbox) snapshot() []naplet.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]naplet.Message(nil), b.msgs...)
}

// close marks the mailbox closed and returns undelivered messages.
func (b *Mailbox) close() []naplet.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	left := b.msgs
	b.msgs = nil
	select {
	case b.wake <- struct{}{}:
	default:
	}
	return left
}

// View binds the messenger to one resident naplet, implementing
// naplet.MessengerAPI.
type View struct {
	m      *Messenger
	record *naplet.Record
	mb     *Mailbox
}

// NewView builds the per-naplet messaging surface around the naplet's open
// mailbox.
func NewView(m *Messenger, record *naplet.Record, mb *Mailbox) *View {
	return &View{m: m, record: record, mb: mb}
}

// Post implements naplet.MessengerAPI.
func (v *View) Post(ctx context.Context, to id.NapletID, subject string, body []byte) error {
	return v.m.Post(ctx, v.record, to, subject, body)
}

// Receive implements naplet.MessengerAPI.
func (v *View) Receive(ctx context.Context) (naplet.Message, error) {
	return v.mb.Receive(ctx)
}

// TryReceive implements naplet.MessengerAPI.
func (v *View) TryReceive() (naplet.Message, bool) {
	return v.mb.TryReceive()
}
