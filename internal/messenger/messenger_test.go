package messenger

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

var t0 = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)

// post office test rig: three servers sa, sb, sc on a netsim, each with a
// manager, a forward-mode locator, and a messenger.
type rig struct {
	net  *netsim.Network
	mgrs map[string]*manager.Manager
	msgr map[string]*Messenger
}

func newRig(t *testing.T, servers ...string) *rig {
	t.Helper()
	r := &rig{
		net:  netsim.New(netsim.Config{}),
		mgrs: make(map[string]*manager.Manager),
		msgr: make(map[string]*Messenger),
	}
	clock := func() time.Time { return t0 }
	for _, s := range servers {
		s := s
		mgr := manager.New(s, clock)
		var msgr *Messenger
		node, err := r.net.Attach(s, func(from string, f wire.Frame) (wire.Frame, error) {
			if f.Kind == wire.KindPost {
				return msgr.HandlePost(from, f)
			}
			return wire.Frame{}, fmt.Errorf("unexpected kind %q", f.Kind)
		})
		if err != nil {
			t.Fatal(err)
		}
		loc := locator.New(locator.Config{Mode: locator.ModeForward}, node, mgr, clock)
		msgr = New(Config{}, s, node, loc, mgr, clock)
		r.mgrs[s] = mgr
		r.msgr[s] = msgr
	}
	return r
}

// agent makes a record for naplet owned by owner homed at home, present at
// a server with an open mailbox.
func (r *rig) land(t *testing.T, owner, home, at string) *naplet.Record {
	t.Helper()
	nid := id.MustNew(owner, home, t0)
	// Credential content is irrelevant to the messenger.
	rec := naplet.NewRecord(nid, cred.Credential{NapletID: nid}, "cb", home, nil)
	r.mgrs[at].RecordArrival(nid, "cb", home, t0)
	r.msgr[at].CreateMailbox(nid)
	return rec
}

// landRecord lands an existing record at a server.
func (r *rig) move(t *testing.T, rec *naplet.Record, from, to string) {
	t.Helper()
	if err := r.mgrs[from].RecordDeparture(rec.ID, to, t0); err != nil {
		t.Fatal(err)
	}
	left := r.msgr[from].CloseMailbox(rec.ID)
	r.mgrs[to].RecordArrival(rec.ID, "cb", from, t0)
	r.msgr[to].CreateMailbox(rec.ID)
	if len(left) > 0 {
		if err := r.msgr[from].ForwardLeftovers(context.Background(), to, left); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDirectDelivery(t *testing.T) {
	r := newRig(t, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")
	a.Book.Add(b.ID, "sb")

	err := r.msgr["sa"].Post(context.Background(), a, b.ID, "greet", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := r.msgr["sb"].Mailbox(b.ID)
	msg, ok := mb.TryReceive()
	if !ok || string(msg.Body) != "hello" || msg.Subject != "greet" {
		t.Fatalf("delivery: %+v %v", msg, ok)
	}
	if !msg.From.Equal(a.ID) {
		t.Fatalf("sender = %v", msg.From)
	}
	if r.msgr["sa"].Stats().Posted != 1 || r.msgr["sb"].Stats().Delivered != 1 {
		t.Fatalf("stats: %+v %+v", r.msgr["sa"].Stats(), r.msgr["sb"].Stats())
	}
}

func TestAddressBookRestriction(t *testing.T) {
	r := newRig(t, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")
	// b is NOT in a's address book.
	err := r.msgr["sa"].Post(context.Background(), a, b.ID, "x", nil)
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestForwardingChasesNaplet(t *testing.T) {
	// §4.2 case 2: B moved sb -> sc; the message forwards along the trace.
	r := newRig(t, "sa", "sb", "sc")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")
	a.Book.Add(b.ID, "sb") // stale: b will move

	r.move(t, b, "sb", "sc")

	err := r.msgr["sa"].Post(context.Background(), a, b.ID, "chase", []byte("catch me"))
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := r.msgr["sc"].Mailbox(b.ID)
	msg, ok := mb.TryReceive()
	if !ok || string(msg.Body) != "catch me" {
		t.Fatalf("forwarded delivery failed: %v %v", msg, ok)
	}
	if r.msgr["sb"].Stats().Forwarded != 1 {
		t.Fatalf("sb stats: %+v", r.msgr["sb"].Stats())
	}
	// The confirmation updated a's address book to the delivering server.
	e, _ := a.Book.Lookup(b.ID)
	if e.ServerURN != "sc" {
		t.Fatalf("book not refreshed: %q", e.ServerURN)
	}
}

func TestMultiHopForwarding(t *testing.T) {
	r := newRig(t, "sa", "s1", "s2", "s3", "s4")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "s1", "s1")
	a.Book.Add(b.ID, "s1")
	r.move(t, b, "s1", "s2")
	r.move(t, b, "s2", "s3")
	r.move(t, b, "s3", "s4")

	if err := r.msgr["sa"].Post(context.Background(), a, b.ID, "x", []byte("y")); err != nil {
		t.Fatal(err)
	}
	mb, _ := r.msgr["s4"].Mailbox(b.ID)
	if _, ok := mb.TryReceive(); !ok {
		t.Fatal("3-hop chase failed")
	}
}

func TestHopLimit(t *testing.T) {
	// A ring of stale traces must not loop forever. Build s1 -> s2 -> s1.
	r := newRig(t, "sa", "s1", "s2")
	a := r.land(t, "a", "sa", "sa")
	nid := id.MustNew("b", "s1", t0)
	a.Book.Add(nid, "s1")
	// Forge inconsistent traces: s1 says moved to s2, s2 says moved to s1.
	r.mgrs["s1"].RecordArrival(nid, "cb", "x", t0)
	r.mgrs["s1"].RecordDeparture(nid, "s2", t0)
	r.mgrs["s2"].RecordArrival(nid, "cb", "s1", t0)
	r.mgrs["s2"].RecordDeparture(nid, "s1", t0)

	err := r.msgr["sa"].Post(context.Background(), a, nid, "x", nil)
	if err == nil {
		t.Fatal("forwarding loop must be bounded")
	}
}

func TestEarlyMessageHeldAndDrained(t *testing.T) {
	// §4.2 case 3: the message reaches sb before the naplet does.
	r := newRig(t, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	nid := id.MustNew("b", "sb", t0)
	a.Book.Add(nid, "sb")

	if err := r.msgr["sa"].Post(context.Background(), a, nid, "early", []byte("waiting")); err != nil {
		t.Fatal(err)
	}
	if r.msgr["sb"].HeldCount(nid) != 1 {
		t.Fatal("message must be held in the special mailbox")
	}
	// The naplet lands: mailbox creation drains the special mailbox.
	r.mgrs["sb"].RecordArrival(nid, "cb", "home", t0)
	mb := r.msgr["sb"].CreateMailbox(nid)
	msg, ok := mb.TryReceive()
	if !ok || string(msg.Body) != "waiting" {
		t.Fatalf("held message not drained: %v %v", msg, ok)
	}
	if r.msgr["sb"].HeldCount(nid) != 0 {
		t.Fatal("special mailbox must be empty after drain")
	}
	s := r.msgr["sb"].Stats()
	if s.Held != 1 || s.DrainedH != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestNapletEndedError(t *testing.T) {
	r := newRig(t, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")
	a.Book.Add(b.ID, "sb")
	// b's life cycle ends at sb.
	r.msgr["sb"].CloseMailbox(b.ID)
	r.mgrs["sb"].RecordEnd(b.ID, t0)

	err := r.msgr["sa"].Post(context.Background(), a, b.ID, "x", nil)
	if err == nil {
		t.Fatal("posting to an ended naplet must fail")
	}
}

func TestSystemMessageCastsInterrupt(t *testing.T) {
	r := newRig(t, "sa", "sb")
	b := r.land(t, "b", "sb", "sb")
	got := make(chan naplet.Message, 1)
	r.msgr["sb"].SetInterruptSink(func(to id.NapletID, msg naplet.Message) bool {
		if !to.Equal(b.ID) {
			return false
		}
		got <- msg
		return true
	})
	err := r.msgr["sa"].SendControl(context.Background(), b.ID, naplet.ControlSuspend, "sb")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg.Control != naplet.ControlSuspend {
			t.Fatalf("verb = %v", msg.Control)
		}
	default:
		t.Fatal("interrupt not cast")
	}
	if r.msgr["sb"].Stats().Interrupts != 1 {
		t.Fatalf("stats: %+v", r.msgr["sb"].Stats())
	}
}

func TestSystemMessageWithoutSinkHeld(t *testing.T) {
	r := newRig(t, "sa", "sb")
	b := r.land(t, "b", "sb", "sb")
	// No interrupt sink installed: control message is held, not lost.
	if err := r.msgr["sa"].SendControl(context.Background(), b.ID, naplet.ControlTerminate, "sb"); err != nil {
		t.Fatal(err)
	}
	if r.msgr["sb"].HeldCount(b.ID) != 1 {
		t.Fatal("undeliverable control message must be held")
	}
}

func TestLeftoverForwarding(t *testing.T) {
	// Messages sitting in a mailbox when the naplet departs chase it.
	r := newRig(t, "sa", "sb", "sc")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")
	a.Book.Add(b.ID, "sb")

	// Deliver two messages that b never reads at sb.
	r.msgr["sa"].Post(context.Background(), a, b.ID, "m1", []byte("1"))
	r.msgr["sa"].Post(context.Background(), a, b.ID, "m2", []byte("2"))

	r.move(t, b, "sb", "sc") // move forwards leftovers

	mb, _ := r.msgr["sc"].Mailbox(b.ID)
	m1, ok1 := mb.TryReceive()
	m2, ok2 := mb.TryReceive()
	if !ok1 || !ok2 {
		t.Fatalf("leftovers lost: %v %v", ok1, ok2)
	}
	if m1.Subject != "m1" || m2.Subject != "m2" {
		t.Fatalf("order broken: %q %q", m1.Subject, m2.Subject)
	}
}

func TestSelfServerShortCircuit(t *testing.T) {
	r := newRig(t, "sa")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sa", "sa")
	a.Book.Add(b.ID, "sa")
	if err := r.msgr["sa"].Post(context.Background(), a, b.ID, "local", nil); err != nil {
		t.Fatal(err)
	}
	mb, _ := r.msgr["sa"].Mailbox(b.ID)
	if _, ok := mb.TryReceive(); !ok {
		t.Fatal("same-server delivery failed")
	}
	// No frames crossed the network.
	if r.net.TotalStats().FramesSent != 0 {
		t.Fatalf("local delivery used the network: %+v", r.net.TotalStats())
	}
}

func TestMailboxReceiveBlocking(t *testing.T) {
	mb := newMailbox()
	done := make(chan naplet.Message, 1)
	go func() {
		msg, err := mb.Receive(context.Background())
		if err != nil {
			t.Error(err)
		}
		done <- msg
	}()
	time.Sleep(10 * time.Millisecond)
	mb.put(naplet.Message{Subject: "late"})
	select {
	case msg := <-done:
		if msg.Subject != "late" {
			t.Fatalf("msg = %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("Receive did not wake")
	}
}

func TestMailboxReceiveCancel(t *testing.T) {
	mb := newMailbox()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := mb.Receive(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal(err)
	}
}

func TestMailboxCloseUnblocks(t *testing.T) {
	mb := newMailbox()
	done := make(chan error, 1)
	go func() {
		_, err := mb.Receive(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	mb.close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrMailboxClosed) {
			t.Fatalf("want ErrMailboxClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("close did not unblock Receive")
	}
	// put after close is dropped (the caller forwards leftovers instead).
	mb.put(naplet.Message{})
	if mb.Len() != 0 {
		t.Fatal("put after close must drop")
	}
}

func TestDuplicatePostReconfirmedOnce(t *testing.T) {
	// The same KindPost frame arriving twice (duplicated in flight, or a
	// sender retry after a lost confirmation) must deliver once and be
	// re-confirmed the second time.
	r := newRig(t, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")

	msg := naplet.Message{
		ID:      "sa/m1",
		From:    a.ID,
		To:      b.ID,
		Class:   naplet.UserMessage,
		Subject: "greet",
		Body:    []byte("hello"),
		SentAt:  t0,
	}
	f, err := wire.NewFrame(wire.KindPost, "sa", "sb", &PostBody{Msg: msg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		reply, err := r.msgr["sb"].HandlePost("sa", f)
		if err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
		var confirm ConfirmBody
		if err := confirm.Decode(reply.Payload); err != nil {
			t.Fatal(err)
		}
		if !confirm.Delivered {
			t.Fatalf("delivery %d not confirmed: %+v", i, confirm)
		}
	}
	mb, _ := r.msgr["sb"].Mailbox(b.ID)
	if _, ok := mb.TryReceive(); !ok {
		t.Fatal("first copy not delivered")
	}
	if _, ok := mb.TryReceive(); ok {
		t.Fatal("duplicate frame delivered twice")
	}
	s := r.msgr["sb"].Stats()
	if s.Delivered != 1 || s.Reconfirmed != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestHeldDuplicateAbsorbed(t *testing.T) {
	// Case 3 duplicates: the target has not arrived yet, so both copies hit
	// the special mailbox — only one may be parked there.
	r := newRig(t, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	future := id.MustNew("late", "sb", t0)

	msg := naplet.Message{
		ID:      "sa/m1",
		From:    a.ID,
		To:      future,
		Class:   naplet.UserMessage,
		Subject: "early",
		Body:    []byte("hi"),
		SentAt:  t0,
	}
	f, err := wire.NewFrame(wire.KindPost, "sa", "sb", &PostBody{Msg: msg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		reply, err := r.msgr["sb"].HandlePost("sa", f)
		if err != nil {
			t.Fatalf("hold %d: %v", i, err)
		}
		var confirm ConfirmBody
		if err := confirm.Decode(reply.Payload); err != nil {
			t.Fatal(err)
		}
		if !confirm.Held {
			t.Fatalf("hold %d: %+v", i, confirm)
		}
	}
	// When the naplet lands, exactly one copy drains into its mailbox.
	r.mgrs["sb"].RecordArrival(future, "cb", "sa", t0)
	mb := r.msgr["sb"].CreateMailbox(future)
	if _, ok := mb.TryReceive(); !ok {
		t.Fatal("held message not drained")
	}
	if _, ok := mb.TryReceive(); ok {
		t.Fatal("held duplicate drained twice")
	}
}

func TestViewAPI(t *testing.T) {
	r := newRig(t, "sa", "sb")
	a := r.land(t, "a", "sa", "sa")
	b := r.land(t, "b", "sb", "sb")
	a.Book.Add(b.ID, "sb")
	b.Book.Add(a.ID, "sa")

	mbA, _ := r.msgr["sa"].Mailbox(a.ID)
	mbB, _ := r.msgr["sb"].Mailbox(b.ID)
	va := NewView(r.msgr["sa"], a, mbA)
	vb := NewView(r.msgr["sb"], b, mbB)

	if err := va.Post(context.Background(), b.ID, "ping", []byte("1")); err != nil {
		t.Fatal(err)
	}
	msg, err := vb.Receive(context.Background())
	if err != nil || msg.Subject != "ping" {
		t.Fatalf("Receive: %v %v", msg, err)
	}
	if err := vb.Post(context.Background(), a.ID, "pong", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if msg, ok := va.TryReceive(); !ok || msg.Subject != "pong" {
		t.Fatalf("TryReceive: %v %v", msg, ok)
	}
	if _, ok := va.TryReceive(); ok {
		t.Fatal("empty mailbox TryReceive must report false")
	}
}

// Interface conformance.
var _ naplet.MessengerAPI = (*View)(nil)
var _ transport.Handler = (*Messenger)(nil).HandlePost
