// Package health implements a lightweight per-peer failure detector.
//
// The detector is passive by default: callers that already talk to peers
// (the Navigator's dispatch path, the Messenger's forwarding path) report
// the outcome of each exchange via ReportSuccess/ReportFailure, and the
// detector folds those observations into a per-address state machine:
//
//	alive --misses >= SuspectThreshold--> suspect
//	suspect --misses >= DeadThreshold--> dead
//	any --success--> alive
//
// A dead peer is not attempted again until ProbeInterval has elapsed since
// the last attempt; Allow grants exactly one probe per interval so a
// recovered peer is rediscovered without every dispatcher burning its full
// retry budget against a corpse. All state transitions are recorded on a
// bounded trail and exported as telemetry gauges, mirroring the fault
// injector's observability contract.
package health

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// State is the detector's opinion of one peer address.
type State int

const (
	// StateAlive means the peer answered its most recent exchange.
	StateAlive State = iota
	// StateSuspect means the peer missed at least SuspectThreshold
	// consecutive exchanges but is not yet presumed dead.
	StateSuspect
	// StateDead means the peer missed DeadThreshold consecutive
	// exchanges; dispatchers should fail fast instead of retrying.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Defaults applied by Config.withDefaults.
const (
	DefaultSuspectThreshold = 2
	DefaultDeadThreshold    = 4
	DefaultProbeInterval    = 2 * time.Second
	DefaultTrailCap         = 256
)

// Config parameterises a Detector.
type Config struct {
	// SuspectThreshold is the number of consecutive misses that move a
	// peer from alive to suspect.
	SuspectThreshold int
	// DeadThreshold is the number of consecutive misses that move a peer
	// to dead. Must be >= SuspectThreshold.
	DeadThreshold int
	// ProbeInterval is how often a single probe attempt is allowed
	// against a dead peer.
	ProbeInterval time.Duration
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// TrailCap bounds the retained state-transition trail.
	TrailCap int
	// Telemetry, when set, exports per-state peer counts and a
	// transition counter.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.SuspectThreshold <= 0 {
		c.SuspectThreshold = DefaultSuspectThreshold
	}
	if c.DeadThreshold <= 0 {
		c.DeadThreshold = DefaultDeadThreshold
	}
	if c.DeadThreshold < c.SuspectThreshold {
		c.DeadThreshold = c.SuspectThreshold
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.TrailCap <= 0 {
		c.TrailCap = DefaultTrailCap
	}
	return c
}

// Transition records one state change for one peer.
type Transition struct {
	Peer   string
	From   State
	To     State
	Misses int
	At     time.Time
}

type peer struct {
	state     State
	misses    int
	lastProbe time.Time
}

// Detector tracks liveness verdicts for a set of peer addresses.
type Detector struct {
	cfg Config

	mu    sync.Mutex
	peers map[string]*peer
	trail []Transition

	transitions *telemetry.Counter
}

// New builds a Detector from cfg (zero values take defaults).
func New(cfg Config) *Detector {
	d := &Detector{
		cfg:   cfg.withDefaults(),
		peers: make(map[string]*peer),
	}
	if reg := d.cfg.Telemetry; reg != nil {
		d.transitions = reg.Counter("naplet_health_transitions_total",
			"peer liveness state transitions observed by the failure detector")
		for _, st := range []State{StateAlive, StateSuspect, StateDead} {
			st := st
			reg.GaugeFunc("naplet_health_peers",
				"peers per failure-detector state",
				func() float64 { return float64(d.count(st)) },
				"state", st.String())
		}
	}
	return d
}

func (d *Detector) count(st State) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, p := range d.peers {
		if p.state == st {
			n++
		}
	}
	return n
}

func (d *Detector) get(addr string) *peer {
	p, ok := d.peers[addr]
	if !ok {
		p = &peer{state: StateAlive}
		d.peers[addr] = p
	}
	return p
}

func (d *Detector) transition(addr string, p *peer, to State) {
	if p.state == to {
		return
	}
	tr := Transition{Peer: addr, From: p.state, To: to, Misses: p.misses, At: d.cfg.Clock()}
	p.state = to
	d.trail = append(d.trail, tr)
	if len(d.trail) > d.cfg.TrailCap {
		d.trail = d.trail[len(d.trail)-d.cfg.TrailCap:]
	}
	if d.transitions != nil {
		d.transitions.Inc()
	}
}

// ReportSuccess records a completed exchange with addr: the peer is alive
// and its miss counter resets.
func (d *Detector) ReportSuccess(addr string) {
	if d == nil || addr == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.get(addr)
	p.misses = 0
	d.transition(addr, p, StateAlive)
}

// ReportFailure records a missed exchange with addr (timeout, connection
// refused, dropped frame). Consecutive misses escalate the peer through
// suspect to dead.
func (d *Detector) ReportFailure(addr string) {
	if d == nil || addr == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.get(addr)
	p.misses++
	switch {
	case p.misses >= d.cfg.DeadThreshold:
		d.transition(addr, p, StateDead)
	case p.misses >= d.cfg.SuspectThreshold:
		d.transition(addr, p, StateSuspect)
	}
}

// State returns the detector's current verdict for addr. Unknown peers are
// presumed alive.
func (d *Detector) State(addr string) State {
	if d == nil {
		return StateAlive
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.peers[addr]; ok {
		return p.state
	}
	return StateAlive
}

// Dead reports whether addr is currently presumed dead.
func (d *Detector) Dead(addr string) bool { return d.State(addr) == StateDead }

// Allow reports whether a dispatch attempt against addr should proceed
// right now. Alive and suspect peers are always allowed. A dead peer is
// allowed exactly one probe attempt per ProbeInterval; other callers in the
// same interval should fail fast without touching the network.
func (d *Detector) Allow(addr string) bool {
	if d == nil || addr == "" {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.peers[addr]
	if !ok || p.state != StateDead {
		return true
	}
	now := d.cfg.Clock()
	if p.lastProbe.IsZero() || now.Sub(p.lastProbe) >= d.cfg.ProbeInterval {
		p.lastProbe = now
		return true
	}
	return false
}

// Trail returns a copy of the retained state transitions, oldest first.
func (d *Detector) Trail() []Transition {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Transition, len(d.trail))
	copy(out, d.trail)
	return out
}

// Peers returns a snapshot of every tracked peer's state.
func (d *Detector) Peers() map[string]State {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]State, len(d.peers))
	for addr, p := range d.peers {
		out[addr] = p.state
	}
	return out
}
