package health

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time               { return c.now }
func (c *fakeClock) Advance(d time.Duration)      { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock                    { return &fakeClock{now: time.Unix(1000, 0)} }
func detector(c *fakeClock, cfg Config) *Detector { cfg.Clock = c.Now; return New(cfg) }

func TestEscalation(t *testing.T) {
	clk := newFakeClock()
	d := detector(clk, Config{SuspectThreshold: 2, DeadThreshold: 4})

	if got := d.State("peer"); got != StateAlive {
		t.Fatalf("unknown peer state = %v, want alive", got)
	}
	d.ReportFailure("peer")
	if got := d.State("peer"); got != StateAlive {
		t.Fatalf("after 1 miss state = %v, want alive", got)
	}
	d.ReportFailure("peer")
	if got := d.State("peer"); got != StateSuspect {
		t.Fatalf("after 2 misses state = %v, want suspect", got)
	}
	d.ReportFailure("peer")
	d.ReportFailure("peer")
	if !d.Dead("peer") {
		t.Fatalf("after 4 misses peer should be dead, state = %v", d.State("peer"))
	}

	// A single success resurrects the peer and resets the miss counter.
	d.ReportSuccess("peer")
	if got := d.State("peer"); got != StateAlive {
		t.Fatalf("after success state = %v, want alive", got)
	}
	d.ReportFailure("peer")
	if got := d.State("peer"); got != StateAlive {
		t.Fatalf("miss counter not reset: state = %v", got)
	}
}

func TestProbeGate(t *testing.T) {
	clk := newFakeClock()
	d := detector(clk, Config{SuspectThreshold: 1, DeadThreshold: 2, ProbeInterval: time.Second})
	d.ReportFailure("peer")
	d.ReportFailure("peer")
	if !d.Dead("peer") {
		t.Fatal("peer should be dead")
	}

	// First caller in the interval gets the probe slot; the rest fail fast.
	if !d.Allow("peer") {
		t.Fatal("first probe should be allowed")
	}
	if d.Allow("peer") {
		t.Fatal("second probe within the interval should be denied")
	}
	clk.Advance(time.Second)
	if !d.Allow("peer") {
		t.Fatal("probe should be allowed again after ProbeInterval")
	}

	// Live peers are never gated.
	if !d.Allow("other") {
		t.Fatal("unknown peer should always be allowed")
	}
}

func TestTrailAndTelemetry(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	d := detector(clk, Config{SuspectThreshold: 1, DeadThreshold: 2, Telemetry: reg, TrailCap: 8})

	d.ReportFailure("a")
	d.ReportFailure("a")
	d.ReportSuccess("a")

	trail := d.Trail()
	if len(trail) != 3 {
		t.Fatalf("trail length = %d, want 3 (suspect, dead, alive)", len(trail))
	}
	want := []State{StateSuspect, StateDead, StateAlive}
	for i, tr := range trail {
		if tr.Peer != "a" || tr.To != want[i] {
			t.Fatalf("trail[%d] = %+v, want transition to %v", i, tr, want[i])
		}
	}
	if got := d.Peers()["a"]; got != StateAlive {
		t.Fatalf("snapshot state = %v, want alive", got)
	}
}

func TestTrailBounded(t *testing.T) {
	clk := newFakeClock()
	d := detector(clk, Config{SuspectThreshold: 1, DeadThreshold: 1, TrailCap: 4})
	for i := 0; i < 20; i++ {
		d.ReportFailure("p")
		d.ReportSuccess("p")
	}
	if got := len(d.Trail()); got != 4 {
		t.Fatalf("trail length = %d, want cap 4", got)
	}
}

func TestNilDetectorSafe(t *testing.T) {
	var d *Detector
	d.ReportSuccess("x")
	d.ReportFailure("x")
	if d.Dead("x") || d.State("x") != StateAlive || !d.Allow("x") {
		t.Fatal("nil detector should behave as all-alive")
	}
	if d.Trail() != nil || d.Peers() != nil {
		t.Fatal("nil detector snapshots should be nil")
	}
}
