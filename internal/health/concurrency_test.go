package health

import (
	"fmt"
	"sync"
	"testing"
)

// TestDetectorConcurrentReportsAndSnapshots hammers one detector from
// many goroutines mixing ReportSuccess/ReportFailure with State/Allow
// and the Trail/Peers snapshots, under the -race scope. The invariants:
// snapshots never tear (bounded trail, valid states, transitions walk
// the alive/suspect/dead lattice), and an all-success epilogue leaves
// every peer alive.
func TestDetectorConcurrentReportsAndSnapshots(t *testing.T) {
	d := New(Config{SuspectThreshold: 2, DeadThreshold: 4, TrailCap: 64})
	const (
		goroutines = 16
		peers      = 8
		ops        = 500
	)
	peerName := func(i int) string { return fmt.Sprintf("peer-%d", i%peers) }

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				addr := peerName(g + i)
				switch (g + i) % 5 {
				case 0:
					d.ReportFailure(addr)
				case 1, 2:
					d.ReportSuccess(addr)
				case 3:
					d.State(addr)
					d.Allow(addr)
				case 4:
					// Snapshot while the reporters churn.
					trail := d.Trail()
					if len(trail) > 64 {
						t.Errorf("trail grew past its cap: %d", len(trail))
						return
					}
					for _, tr := range trail {
						if !validState(tr.From) || !validState(tr.To) || tr.From == tr.To {
							t.Errorf("invalid transition %+v", tr)
							return
						}
						if tr.Peer == "" || tr.At.IsZero() {
							t.Errorf("torn transition %+v", tr)
							return
						}
					}
					for addr, st := range d.Peers() {
						if addr == "" || !validState(st) {
							t.Errorf("invalid peer snapshot %q=%v", addr, st)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Epilogue: enough successes walk every peer back to alive.
	for i := 0; i < peers; i++ {
		for j := 0; j < 8; j++ {
			d.ReportSuccess(peerName(i))
		}
	}
	for addr, st := range d.Peers() {
		if st != StateAlive {
			t.Fatalf("%s = %v after all-success epilogue", addr, st)
		}
	}
	if len(d.Peers()) != peers {
		t.Fatalf("peers = %d, want %d", len(d.Peers()), peers)
	}
}

func validState(s State) bool {
	return s == StateAlive || s == StateSuspect || s == StateDead
}
