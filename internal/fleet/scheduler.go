package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrNodeDead is returned by a Launcher's Wait when the launch node was
// presumed dead before the naplet reached a terminal status; the
// scheduler reschedules the assignment elsewhere.
var ErrNodeDead = errors.New("fleet: launch node presumed dead")

// LaunchSpec is one naplet launch: the control-plane subset of the
// server's launch options.
type LaunchSpec struct {
	Owner    string
	Codebase string
	Route    string
	Failover string
	Params   []string
	StateKV  map[string]string
}

// Launcher launches naplets at a named node and waits for their terminal
// status. The Master implements it over KindControl frames; tests and
// benchmarks substitute fakes.
type Launcher interface {
	// Launch starts one naplet at node, returning its identifier.
	Launch(ctx context.Context, node string, spec LaunchSpec) (string, error)
	// Wait blocks until the naplet reaches a terminal status
	// ("completed", "terminated", "trapped"), returning it and, for
	// completed naplets, the first report body. Returns ErrNodeDead when
	// the node is presumed dead first.
	Wait(ctx context.Context, node, napletID string) (status, result string, err error)
}

// NodeSource supplies the scheduler's view of the fleet: who can take a
// launch, and who is gone. The Registry implements it.
type NodeSource interface {
	Schedulable() []string
	Dead(node string) bool
}

// WaveSpec describes one launch wave: Count naplets per route, fanned
// across the schedulable docks.
type WaveSpec struct {
	// Name labels the wave in results and logs.
	Name string
	// Count is the number of naplets launched per route.
	Count int
	// Routes are itineraries in the paper's operator notation.
	Routes []string
	// Owner, Codebase, Failover, Params and StateKV pass through to
	// every launch. Failover defaults to "skip" so a dead stop degrades
	// the tour instead of trapping the wave.
	Owner    string
	Codebase string
	Failover string
	Params   []string
	StateKV  map[string]string
	// PerNodeCap bounds concurrently running launches per node
	// (default 4).
	PerNodeCap int
	// Retries is the reschedule budget per assignment after a wait-phase
	// failure — a dead node, a lost naplet (default 3). Launch-call
	// failures get 4x this budget: a transiently unreachable node should
	// not burn the assignment.
	Retries int
	// LaunchTimeout bounds one launch call (default 10s); WaitTimeout
	// bounds one naplet's run (default 2m).
	LaunchTimeout time.Duration
	WaitTimeout   time.Duration
	// Timeout bounds the whole wave (default 10m). The master derives
	// the wave context's deadline from it, so a wave that can never
	// dispatch does not spin in the scheduler forever.
	Timeout time.Duration
}

// withDefaults fills the spec's zero values.
func (s WaveSpec) withDefaults() WaveSpec {
	if s.Owner == "" {
		s.Owner = "fleet"
	}
	if s.Failover == "" {
		s.Failover = "skip"
	}
	if s.Count <= 0 {
		s.Count = 1
	}
	if s.PerNodeCap <= 0 {
		s.PerNodeCap = 4
	}
	if s.Retries <= 0 {
		s.Retries = 3
	}
	if s.LaunchTimeout <= 0 {
		s.LaunchTimeout = 10 * time.Second
	}
	if s.WaitTimeout <= 0 {
		s.WaitTimeout = 2 * time.Minute
	}
	if s.Timeout <= 0 {
		s.Timeout = 10 * time.Minute
	}
	return s
}

// Launch is one assignment's outcome within a wave result.
type Launch struct {
	// Index identifies the assignment (0..Total-1).
	Index int
	// Route is the assignment's itinerary.
	Route string
	// Node is the dock the naplet finally launched at.
	Node string
	// NapletID is the launched naplet's identifier (last attempt).
	NapletID string
	// Status is the terminal status, or "failed" when the budget ran
	// out; Err carries the last error.
	Status string
	Err    string
	// Result is the naplet's first report body, fetched for completed
	// launches.
	Result string
	// Attempts counts launch attempts consumed (1 = no retry).
	Attempts int
}

// WaveResult aggregates one wave.
type WaveResult struct {
	Name  string
	Total int
	// Completed, Failed and Rescheduled partition the outcomes:
	// Completed + Failed == Total; Rescheduled counts requeues.
	Completed   int
	Failed      int
	Rescheduled int
	// PerNode counts completed launches by launch node.
	PerNode map[string]int
	// Launches is the per-assignment detail, by Index.
	Launches []Launch
	// Elapsed is the wall-clock wave duration.
	Elapsed time.Duration
}

// SchedulerConfig parameterises a Scheduler.
type SchedulerConfig struct {
	Nodes    NodeSource
	Launcher Launcher
	// PollEvery paces the dispatch loop while it waits for capacity or
	// requeues (default 2ms).
	PollEvery time.Duration
	// NoNodesAfter fails a wave's pending assignments once the fleet has
	// had zero schedulable nodes for this long (default 10s) — all-at-cap
	// is a normal wait, an empty fleet is not worth spinning on.
	NoNodesAfter time.Duration
	// Clock overrides time.Now for elapsed accounting.
	Clock func() time.Time
	// Telemetry, when set, exports wave and launch counters.
	Telemetry *telemetry.Registry
}

// Scheduler fans launch waves across the schedulable docks: per-node
// concurrency caps, least-loaded placement, and retry-on-dead-node by
// relaunching the assignment elsewhere as a fresh naplet.
type Scheduler struct {
	cfg SchedulerConfig

	waves       *telemetry.Counter
	launches    *telemetry.Counter
	reschedules *telemetry.Counter
}

// NewScheduler builds a scheduler.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if cfg.Nodes == nil || cfg.Launcher == nil {
		return nil, errors.New("fleet: scheduler needs a node source and a launcher")
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 2 * time.Millisecond
	}
	if cfg.NoNodesAfter <= 0 {
		cfg.NoNodesAfter = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Scheduler{cfg: cfg}
	if reg := cfg.Telemetry; reg != nil {
		s.waves = reg.Counter("naplet_fleet_waves_total", "launch waves run")
		s.launches = reg.Counter("naplet_fleet_launches_total",
			"naplet launch attempts issued by the wave scheduler")
		s.reschedules = reg.Counter("naplet_fleet_reschedules_total",
			"wave assignments requeued after a failed or dead node")
	}
	return s, nil
}

// assignment is one queued launch.
type assignment struct {
	idx   int
	route string
	// attempts and launchFails consume the two retry budgets.
	attempts    int
	launchFails int
	// lastNode is avoided on the next pick when alternatives exist, so
	// a crashing node does not burn the whole budget before the failure
	// detector catches up.
	lastNode string
}

// Run executes one wave, blocking until every assignment reaches a
// terminal outcome or ctx expires. The returned result is complete even
// on context error: undispatched assignments are marked failed.
func (s *Scheduler) Run(ctx context.Context, spec WaveSpec) (*WaveResult, error) {
	spec = spec.withDefaults()
	if len(spec.Routes) == 0 {
		return nil, errors.New("fleet: wave without routes")
	}
	if spec.Codebase == "" {
		return nil, errors.New("fleet: wave without a codebase")
	}
	if s.waves != nil {
		s.waves.Inc()
	}
	start := s.cfg.Clock()
	total := spec.Count * len(spec.Routes)

	res := &WaveResult{
		Name:     spec.Name,
		Total:    total,
		PerNode:  make(map[string]int),
		Launches: make([]Launch, total),
	}
	var (
		mu       sync.Mutex
		pending  []assignment
		inflight = make(map[string]int)
		done     int
		wg       sync.WaitGroup
	)
	for i := 0; i < total; i++ {
		route := spec.Routes[i%len(spec.Routes)]
		pending = append(pending, assignment{idx: i, route: route})
		res.Launches[i] = Launch{Index: i, Route: route}
	}

	// finish records a terminal outcome. Callers hold mu.
	finish := func(a assignment, node, nid, status, errText, result string) {
		l := &res.Launches[a.idx]
		l.Node, l.NapletID, l.Status, l.Err, l.Result = node, nid, status, errText, result
		l.Attempts = a.attempts + a.launchFails
		if status == "completed" {
			res.Completed++
			res.PerNode[node]++
		} else {
			res.Failed++
		}
		done++
	}
	// requeue returns the assignment to the queue, or fails it when its
	// budget ran out. Callers hold mu.
	requeue := func(a assignment, node, nid, errText string, launchFail bool) {
		a.lastNode = node
		if launchFail {
			a.launchFails++
		} else {
			a.attempts++
		}
		if a.attempts > spec.Retries || a.launchFails > 4*spec.Retries {
			finish(a, node, nid, "failed", errText, "")
			return
		}
		res.Rescheduled++
		if s.reschedules != nil {
			s.reschedules.Inc()
		}
		pending = append(pending, a)
	}

	lspec := LaunchSpec{
		Owner:    spec.Owner,
		Codebase: spec.Codebase,
		Failover: spec.Failover,
		Params:   spec.Params,
		StateKV:  spec.StateKV,
	}

	// noNodesSince marks when the fleet last went empty of schedulable
	// nodes; sustained emptiness fails the pending assignments instead
	// of polling forever.
	var noNodesSince time.Time
	for {
		mu.Lock()
		if done >= total {
			mu.Unlock()
			break
		}
		if ctx.Err() != nil {
			// Fail what never dispatched; in-flight launches report
			// through their own workers.
			for _, a := range pending {
				finish(a, a.lastNode, "", "failed", ctx.Err().Error(), "")
			}
			pending = nil
			if done >= total {
				mu.Unlock()
				break
			}
			mu.Unlock()
			time.Sleep(s.cfg.PollEvery)
			continue
		}
		if len(pending) == 0 {
			mu.Unlock()
			time.Sleep(s.cfg.PollEvery)
			continue
		}
		nodes := s.cfg.Nodes.Schedulable()
		if len(nodes) == 0 {
			now := s.cfg.Clock()
			if noNodesSince.IsZero() {
				noNodesSince = now
			} else if now.Sub(noNodesSince) >= s.cfg.NoNodesAfter {
				for _, a := range pending {
					finish(a, a.lastNode, "", "failed", "no schedulable nodes", "")
				}
				pending = nil
			}
			mu.Unlock()
			time.Sleep(s.cfg.PollEvery)
			continue
		}
		noNodesSince = time.Time{}
		a := pending[len(pending)-1]
		node := s.pickNode(nodes, inflight, spec.PerNodeCap, a.lastNode)
		if node == "" {
			mu.Unlock()
			time.Sleep(s.cfg.PollEvery)
			continue
		}
		pending = pending[:len(pending)-1]
		inflight[node]++
		mu.Unlock()

		wg.Add(1)
		go func(a assignment, node string) {
			defer wg.Done()
			nid, status, result, err := s.runOne(ctx, node, lspec, spec, a)
			mu.Lock()
			defer mu.Unlock()
			inflight[node]--
			switch {
			case err == nil && status == "trapped":
				// An execution exception. From the control plane a trap
				// is usually infrastructure (a dead stop, an exhausted
				// dispatch) — relaunch on the wave's budget; a
				// deterministic agent bug burns the budget and fails.
				requeue(a, node, nid, "trapped: "+result, false)
			case err == nil:
				a.attempts++
				if status == "completed" {
					finish(a, node, nid, status, "", result)
				} else {
					// Terminated by its owner: final, no retry. Result
					// carried the manager's reason; record it as the
					// error.
					finish(a, node, nid, status, result, "")
				}
			case nid == "":
				requeue(a, node, nid, err.Error(), true)
			default:
				requeue(a, node, nid, err.Error(), false)
			}
		}(a, node)
	}
	wg.Wait()
	res.Elapsed = s.cfg.Clock().Sub(start)
	return res, ctx.Err()
}

// pickNode chooses the least-loaded node with spare capacity from the
// schedulable set, avoiding `avoid` when any alternative exists.
func (s *Scheduler) pickNode(nodes []string, inflight map[string]int, cap int, avoid string) string {
	best, bestLoad := "", 0
	for _, n := range nodes {
		load := inflight[n]
		if load >= cap || n == avoid {
			continue
		}
		if best == "" || load < bestLoad {
			best, bestLoad = n, load
		}
	}
	if best == "" && avoid != "" {
		// The avoided node is the only candidate; better than stalling.
		for _, n := range nodes {
			if n == avoid && inflight[n] < cap {
				return n
			}
		}
	}
	return best
}

// runOne performs one launch attempt end to end. A launch-call failure
// returns an empty naplet ID; a wait-phase failure returns the ID it
// was waiting on.
func (s *Scheduler) runOne(ctx context.Context, node string, lspec LaunchSpec, spec WaveSpec, a assignment) (nid, status, result string, err error) {
	if s.launches != nil {
		s.launches.Inc()
	}
	lspec.Route = a.route
	lctx, lcancel := context.WithTimeout(ctx, spec.LaunchTimeout)
	nid, err = s.cfg.Launcher.Launch(lctx, node, lspec)
	lcancel()
	if err != nil {
		return "", "", "", fmt.Errorf("launch at %s: %w", node, err)
	}
	wctx, wcancel := context.WithTimeout(ctx, spec.WaitTimeout)
	status, result, err = s.cfg.Launcher.Wait(wctx, node, nid)
	wcancel()
	if err != nil {
		return nid, "", "", fmt.Errorf("wait for %s at %s: %w", nid, node, err)
	}
	return nid, status, result, nil
}
