package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrSlowSubscriber is returned by Poll after a subscription was dropped
// for falling behind its ring under the DropSlow policy.
var ErrSlowSubscriber = errors.New("fleet: subscriber dropped (too slow)")

// ErrUnknownSubscriber is returned by Poll for a handle the broadcaster
// does not hold (never created, reaped, or already collected after a
// drop).
var ErrUnknownSubscriber = errors.New("fleet: unknown subscriber")

// DropPolicy says what the broadcaster does to a subscriber whose ring
// overflows. Either way, ingest never blocks.
type DropPolicy int

const (
	// DropSlow closes the subscription on overflow: the subscriber's
	// next poll reports ErrSlowSubscriber and the handle dies.
	DropSlow DropPolicy = iota
	// DownSample keeps the subscription and overwrites its oldest
	// buffered events, counting the losses.
	DownSample
)

// String names the policy for docs and telemetry.
func (p DropPolicy) String() string {
	if p == DownSample {
		return "downsample"
	}
	return "drop"
}

// BroadcasterConfig parameterises a Broadcaster.
type BroadcasterConfig struct {
	// Buf is the default per-subscriber ring capacity (default 1024).
	Buf int
	// MaxBuf caps subscriber-requested ring capacities (default 4*Buf).
	MaxBuf int
	// Policy is the overflow policy (default DropSlow).
	Policy DropPolicy
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// Telemetry, when set, exports publish/drop counters and the
	// subscriber gauge.
	Telemetry *telemetry.Registry
}

// Broadcaster fans events out to subscribers over bounded per-subscriber
// rings. Publish is O(subscribers) and never blocks: a subscriber that
// cannot keep up overflows its own ring and is dropped or down-sampled —
// it cannot stall ingest or the other subscribers.
type Broadcaster struct {
	cfg BroadcasterConfig

	mu     sync.Mutex
	seq    uint64
	nextID uint64
	subs   map[string]*subscriber

	published   *telemetry.Counter
	droppedEvs  *telemetry.Counter
	droppedSubs *telemetry.Counter
}

// subscriber is one bounded ring plus its drop bookkeeping.
type subscriber struct {
	ring     []Event
	head     int // index of the oldest buffered event
	n        int // buffered count
	policy   DropPolicy
	dropped  uint64
	closed   bool
	lastPoll time.Time
}

// NewBroadcaster builds a broadcaster (zero config takes defaults).
func NewBroadcaster(cfg BroadcasterConfig) *Broadcaster {
	if cfg.Buf <= 0 {
		cfg.Buf = 1024
	}
	if cfg.MaxBuf <= 0 {
		cfg.MaxBuf = 4 * cfg.Buf
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	b := &Broadcaster{cfg: cfg, subs: make(map[string]*subscriber)}
	if reg := cfg.Telemetry; reg != nil {
		b.published = reg.Counter("naplet_fleet_events_published_total",
			"events published to the fleet broadcaster")
		b.droppedEvs = reg.Counter("naplet_fleet_events_dropped_total",
			"events lost to down-sampling slow subscribers")
		b.droppedSubs = reg.Counter("naplet_fleet_subscribers_dropped_total",
			"subscriptions closed for falling behind their ring")
		reg.GaugeFunc("naplet_fleet_subscribers", "live event subscriptions",
			func() float64 { return float64(b.Subscribers()) })
	}
	return b
}

// Publish stamps the event with the next sequence number and offers it
// to every live subscriber. Returns the assigned sequence.
func (b *Broadcaster) Publish(ev Event) uint64 {
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	for _, s := range b.subs {
		if s.closed {
			continue
		}
		if s.n == len(s.ring) {
			switch s.policy {
			case DropSlow:
				// Free the ring now; the handle survives until the
				// subscriber polls and learns it was dropped.
				s.closed = true
				s.ring, s.head, s.n = nil, 0, 0
				if b.droppedSubs != nil {
					b.droppedSubs.Inc()
				}
				continue
			case DownSample:
				s.head = (s.head + 1) % len(s.ring)
				s.n--
				s.dropped++
				if b.droppedEvs != nil {
					b.droppedEvs.Inc()
				}
			}
		}
		s.ring[(s.head+s.n)%len(s.ring)] = ev
		s.n++
	}
	b.mu.Unlock()
	if b.published != nil {
		b.published.Inc()
	}
	return ev.Seq
}

// Subscribe creates a subscription with a ring of buf events (0 takes
// the default, larger requests are clamped) under the given policy,
// returning its handle.
func (b *Broadcaster) Subscribe(buf int, policy DropPolicy) string {
	if buf <= 0 {
		buf = b.cfg.Buf
	}
	if buf > b.cfg.MaxBuf {
		buf = b.cfg.MaxBuf
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	id := fmt.Sprintf("sub-%d", b.nextID)
	b.subs[id] = &subscriber{
		ring:     make([]Event, buf),
		policy:   policy,
		lastPoll: b.cfg.Clock(),
	}
	return id
}

// SubscribeDefault creates a subscription with the configured defaults.
func (b *Broadcaster) SubscribeDefault() string {
	return b.Subscribe(0, b.cfg.Policy)
}

// Poll drains up to max buffered events (0 = all), oldest first, along
// with the events dropped so far. A subscription closed for slowness
// reports ErrSlowSubscriber exactly once; later polls see
// ErrUnknownSubscriber.
func (b *Broadcaster) Poll(id string, max int) ([]Event, uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.subs[id]
	if !ok {
		return nil, 0, ErrUnknownSubscriber
	}
	if s.closed {
		delete(b.subs, id)
		return nil, s.dropped, ErrSlowSubscriber
	}
	s.lastPoll = b.cfg.Clock()
	n := s.n
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil, s.dropped, nil
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	s.head = (s.head + n) % len(s.ring)
	s.n -= n
	return out, s.dropped, nil
}

// Unsubscribe removes a subscription. Unknown handles are a no-op.
func (b *Broadcaster) Unsubscribe(id string) {
	b.mu.Lock()
	delete(b.subs, id)
	b.mu.Unlock()
}

// Reap removes subscriptions not polled for at least idle, returning how
// many died — the garbage collection for watchers that went away without
// unsubscribing.
func (b *Broadcaster) Reap(idle time.Duration) int {
	now := b.cfg.Clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for id, s := range b.subs {
		if now.Sub(s.lastPoll) >= idle {
			delete(b.subs, id)
			n++
		}
	}
	return n
}

// Subscribers reports the live subscription count.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Published reports the total events published.
func (b *Broadcaster) Published() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}
