package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/health"
	"repro/internal/id"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config parameterises a Master.
type Config struct {
	// Name is the master's fabric address.
	Name string
	// Fabric attaches the master to the network; required.
	Fabric transport.Fabric
	// HeartbeatEvery is the fleet heartbeat cadence (default 1s). Every
	// registering agent adopts it.
	HeartbeatEvery time.Duration
	// SuspectThreshold and DeadThreshold are consecutive missed-heartbeat
	// counts before a node turns suspect or dead (defaults 2 and 4).
	SuspectThreshold int
	DeadThreshold    int
	// StatusPoll paces the master's naplet-status polling while waiting
	// for a launch to finish (default 200ms).
	StatusPoll time.Duration
	// SubscriberBuf is the default event-subscriber ring capacity
	// (default 1024); SubscriberPolicy the overflow policy.
	SubscriberBuf    int
	SubscriberPolicy DropPolicy
	// SubscriberTTL reaps subscriptions not polled for this long
	// (default 1m).
	SubscriberTTL time.Duration
	// PollMax bounds events returned per subscriber poll (default 512).
	PollMax int
	// Watchdog configures the per-node backpressure watchdog.
	Watchdog WatchdogConfig
	// Health overrides the built-in failure detector (tests).
	Health *health.Detector
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// Telemetry, when set, exports fleet metrics.
	Telemetry *telemetry.Registry
}

// Master is the fleet control plane: it holds the node table, judges
// liveness from heartbeats, schedules launch waves across the healthy
// docks, fans dock events out to subscribers, and applies watchdog
// backpressure — all over the same wire/transport fabric the docks use
// for migration.
type Master struct {
	cfg  Config
	node transport.Node

	reg   *Registry
	bc    *Broadcaster
	wd    *Watchdog
	det   *health.Detector
	sched *Scheduler

	stop    chan struct{}
	stopped sync.WaitGroup
	once    sync.Once
}

// NewMaster builds a master and attaches it to the fabric.
func NewMaster(cfg Config) (*Master, error) {
	if cfg.Fabric == nil {
		return nil, errors.New("fleet: master needs a fabric")
	}
	if cfg.Name == "" {
		cfg.Name = "master"
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.SuspectThreshold <= 0 {
		cfg.SuspectThreshold = 2
	}
	if cfg.DeadThreshold <= 0 {
		cfg.DeadThreshold = 4
	}
	if cfg.StatusPoll <= 0 {
		cfg.StatusPoll = 200 * time.Millisecond
	}
	if cfg.SubscriberBuf <= 0 {
		cfg.SubscriberBuf = 1024
	}
	if cfg.SubscriberTTL <= 0 {
		cfg.SubscriberTTL = time.Minute
	}
	if cfg.PollMax <= 0 {
		cfg.PollMax = 512
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}

	det := cfg.Health
	if det == nil {
		det = health.New(health.Config{
			SuspectThreshold: cfg.SuspectThreshold,
			DeadThreshold:    cfg.DeadThreshold,
			Clock:            cfg.Clock,
			Telemetry:        cfg.Telemetry,
		})
	}
	wdCfg := cfg.Watchdog
	if wdCfg.Clock == nil {
		wdCfg.Clock = cfg.Clock
	}
	if wdCfg.Telemetry == nil {
		wdCfg.Telemetry = cfg.Telemetry
	}
	wd := NewWatchdog(wdCfg)
	m := &Master{
		cfg: cfg,
		det: det,
		wd:  wd,
		bc: NewBroadcaster(BroadcasterConfig{
			Buf:       cfg.SubscriberBuf,
			Policy:    cfg.SubscriberPolicy,
			Clock:     cfg.Clock,
			Telemetry: cfg.Telemetry,
		}),
		reg: NewRegistry(RegistryConfig{
			HeartbeatEvery: cfg.HeartbeatEvery,
			Health:         det,
			Watchdog:       wd,
			Clock:          cfg.Clock,
			Telemetry:      cfg.Telemetry,
		}),
		stop: make(chan struct{}),
	}
	sched, err := NewScheduler(SchedulerConfig{
		Nodes:     m.reg,
		Launcher:  m,
		Clock:     cfg.Clock,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	m.sched = sched

	node, err := cfg.Fabric.Attach(cfg.Name, m.handle)
	if err != nil {
		return nil, err
	}
	m.node = node

	m.stopped.Add(1)
	go m.monitor()
	return m, nil
}

// monitor runs the liveness sweep and subscriber reaper until Close.
func (m *Master) monitor() {
	defer m.stopped.Done()
	t := time.NewTicker(m.cfg.HeartbeatEvery / 2)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.reg.CheckLiveness()
			m.bc.Reap(m.cfg.SubscriberTTL)
		}
	}
}

// Name returns the master's fabric address.
func (m *Master) Name() string { return m.cfg.Name }

// Registry exposes the node table.
func (m *Master) Registry() *Registry { return m.reg }

// Broadcaster exposes the event broadcaster.
func (m *Master) Broadcaster() *Broadcaster { return m.bc }

// Watchdog exposes the backpressure watchdog.
func (m *Master) Watchdog() *Watchdog { return m.wd }

// Health exposes the fleet failure detector.
func (m *Master) Health() *health.Detector { return m.det }

// Close detaches the master and stops its background loops.
func (m *Master) Close() error {
	var err error
	m.once.Do(func() {
		close(m.stop)
		err = m.node.Close()
		m.stopped.Wait()
	})
	return err
}

// handle dispatches fleet-protocol frames.
func (m *Master) handle(from string, f wire.Frame) (wire.Frame, error) {
	switch f.Kind {
	case wire.KindFleetRegister:
		return m.handleRegister(f)
	case wire.KindFleetHeartbeat:
		return m.handleHeartbeat(f)
	case wire.KindFleetEvents:
		return m.handleEvents(f)
	case wire.KindFleetSubscribe:
		return m.handleSubscribe(f)
	case wire.KindFleetNodes:
		return m.handleNodes(f)
	case wire.KindFleetWave:
		return m.handleWave(f)
	default:
		return wire.Frame{}, fmt.Errorf("fleet: master got unexpected kind %q", f.Kind)
	}
}

// reply wraps a binary body into a KindFleetReply frame back to f.From.
func (m *Master) reply(f wire.Frame, body wire.BinaryBody) (wire.Frame, error) {
	return wire.BinaryFrame(wire.KindFleetReply, m.cfg.Name, f.From, body), nil
}

func (m *Master) handleRegister(f wire.Frame) (wire.Frame, error) {
	var b RegisterBody
	if err := b.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	rb := RegisterReplyBody{HeartbeatEvery: m.reg.HeartbeatEvery()}
	if err := m.reg.Register(b); err != nil {
		rb.Err = err.Error()
	} else {
		rb.OK = true
	}
	return m.reply(f, &rb)
}

func (m *Master) handleHeartbeat(f wire.Frame) (wire.Frame, error) {
	var b HeartbeatBody
	if err := b.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	rb := HeartbeatReplyBody{}
	if err := m.reg.Heartbeat(b); err != nil {
		rb.Err = err.Error()
	} else {
		rb.OK = true
		rb.Throttle = m.wd.Over(b.Node)
	}
	return m.reply(f, &rb)
}

func (m *Master) handleEvents(f wire.Frame) (wire.Frame, error) {
	var b EventBatchBody
	if err := b.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	node := b.Node
	if node == "" {
		node = f.From
	}
	// The whole frame's payload counts against the node's ingest budget —
	// backpressure tracks bytes on the wire, not parsed events.
	m.wd.ObserveIngest(node, len(f.Payload))
	for i := range b.Events {
		b.Events[i].Node = node
		m.bc.Publish(b.Events[i])
	}
	return m.reply(f, &EventAckBody{OK: true, Throttle: m.wd.Over(node)})
}

func (m *Master) handleSubscribe(f wire.Frame) (wire.Frame, error) {
	var b SubscribeBody
	if err := b.Decode(f.Payload); err != nil {
		return wire.Frame{}, err
	}
	rb := SubscribeReplyBody{}
	if b.ID == "" {
		rb.ID = m.bc.Subscribe(int(b.Buf), m.cfg.SubscriberPolicy)
		return m.reply(f, &rb)
	}
	rb.ID = b.ID
	max := int(b.Max)
	if max <= 0 || max > m.cfg.PollMax {
		max = m.cfg.PollMax
	}
	evs, dropped, err := m.bc.Poll(b.ID, max)
	rb.Events, rb.Dropped = evs, dropped
	switch {
	case errors.Is(err, ErrSlowSubscriber), errors.Is(err, ErrUnknownSubscriber):
		rb.Closed = true
		rb.Err = err.Error()
	case err != nil:
		rb.Err = err.Error()
	}
	return m.reply(f, &rb)
}

func (m *Master) handleNodes(f wire.Frame) (wire.Frame, error) {
	return wire.NewFrame(wire.KindFleetReply, m.cfg.Name, f.From,
		NodesReplyBody{Nodes: m.reg.Nodes()})
}

// handleWave runs the wave synchronously in the handler: transport
// handlers run concurrently per connection, so a long wave does not
// block heartbeats or event ingest. The wave context carries the
// spec's whole-wave deadline so a wave that can never dispatch (no
// schedulable nodes) cannot leak a handler goroutine spinning forever
// after the client's call has long timed out.
func (m *Master) handleWave(f wire.Frame) (wire.Frame, error) {
	var b WaveBody
	if err := f.Body(&b); err != nil {
		return wire.Frame{}, err
	}
	spec := b.Spec.withDefaults()
	ctx, cancel := context.WithTimeout(context.Background(), spec.Timeout)
	defer cancel()
	rb := WaveReplyBody{}
	res, err := m.Wave(ctx, spec)
	rb.Result = res
	if err != nil {
		rb.Err = err.Error()
	} else {
		rb.OK = true
	}
	return wire.NewFrame(wire.KindFleetReply, m.cfg.Name, f.From, rb)
}

// Wave runs one launch wave across the schedulable docks.
func (m *Master) Wave(ctx context.Context, spec WaveSpec) (*WaveResult, error) {
	return m.sched.Run(ctx, spec)
}

// Nodes returns the fleet node listing.
func (m *Master) Nodes() []NodeStatus { return m.reg.Nodes() }

// Launch implements Launcher over the dock control protocol.
func (m *Master) Launch(ctx context.Context, node string, spec LaunchSpec) (string, error) {
	body := server.ControlBody{
		Op:       "launch",
		Owner:    spec.Owner,
		Codebase: spec.Codebase,
		Route:    spec.Route,
		Params:   spec.Params,
		StateKV:  spec.StateKV,
		Failover: spec.Failover,
	}
	rb, err := m.control(ctx, node, body)
	if err != nil {
		return "", err
	}
	if !rb.OK {
		return "", errors.New(rb.Err)
	}
	return rb.Status, nil
}

// Wait implements Launcher: poll the launch node for the naplet's status
// until it turns terminal, treating a dead node as ErrNodeDead so the
// scheduler reschedules. For completed naplets the first report body is
// fetched as the result.
func (m *Master) Wait(ctx context.Context, node, napletID string) (string, string, error) {
	nid, err := id.Parse(napletID)
	if err != nil {
		return "", "", err
	}
	for {
		if m.reg.Dead(node) {
			return "", "", fmt.Errorf("%w: %s", ErrNodeDead, node)
		}
		rb, err := m.control(ctx, node, server.ControlBody{Op: "status", NapletID: nid})
		switch {
		case err != nil && ctx.Err() != nil:
			return "", "", ctx.Err()
		case err == nil && !rb.OK:
			return "", "", errors.New(rb.Err)
		case err == nil && terminalStatus(rb.Status):
			status := rb.Status
			// For completed naplets the result is the first report body;
			// otherwise it is the manager's error text (the trap reason).
			result := rb.Err
			if status == "completed" {
				result = ""
				if rr, err := m.control(ctx, node, server.ControlBody{Op: "results", NapletID: nid}); err == nil && rr.OK && len(rr.Results) > 0 {
					result = string(rr.Results[0])
				}
			}
			return status, result, nil
		}
		// Transient call errors fall through to the next poll; the
		// dead-node check above converts persistent silence into a
		// reschedule once the failure detector catches up.
		select {
		case <-ctx.Done():
			return "", "", ctx.Err()
		case <-time.After(m.cfg.StatusPoll):
		}
	}
}

// control performs one control round-trip against a dock.
func (m *Master) control(ctx context.Context, node string, body server.ControlBody) (server.ControlReplyBody, error) {
	f, err := wire.NewFrame(wire.KindControl, m.cfg.Name, node, body)
	if err != nil {
		return server.ControlReplyBody{}, err
	}
	resp, err := m.node.Call(ctx, node, f)
	if err != nil {
		return server.ControlReplyBody{}, err
	}
	var rb server.ControlReplyBody
	if err := resp.Body(&rb); err != nil {
		return server.ControlReplyBody{}, err
	}
	return rb, nil
}

// terminalStatus reports whether a naplet status string is final.
func terminalStatus(s string) bool {
	return s == "completed" || s == "terminated" || s == "trapped"
}
