package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/health"
	"repro/internal/telemetry"
)

// RegistryConfig parameterises the master's node table.
type RegistryConfig struct {
	// HeartbeatEvery is the cadence the master serves to registering
	// agents and the interval liveness misses are judged against.
	HeartbeatEvery time.Duration
	// Health judges liveness from the heartbeat stream; required.
	Health *health.Detector
	// Watchdog, when set, gates Schedulable on watermark latches.
	Watchdog *Watchdog
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// Telemetry, when set, exports node counters and gauges.
	Telemetry *telemetry.Registry
}

// NodeInfo is the registry's record of one dock.
type NodeInfo struct {
	// Name is the dock's fabric address.
	Name string
	// MetricsAddr is the dock's HTTP telemetry endpoint.
	MetricsAddr string
	// Labels are free-form operator tags.
	Labels []string
	// RegisteredAt and LastSeen bracket the heartbeat stream.
	RegisteredAt time.Time
	LastSeen     time.Time
	// Seq is the latest heartbeat sequence accepted.
	Seq uint64
	// Residents, DiskUsedBytes and Draining echo the last heartbeat.
	Residents     int
	DiskUsedBytes uint64
	Draining      bool
}

// NodeStatus is a NodeInfo joined with the liveness and watchdog
// verdicts — the operator-facing listing.
type NodeStatus struct {
	NodeInfo
	// State is the failure detector's verdict: alive, suspect, or dead.
	State string
	// IngestRate is the watchdog's event byte-rate estimate (bytes/s).
	IngestRate float64
	// Over reports a latched watchdog watermark.
	Over bool
}

// Registry is the master's node table: registrations, heartbeat
// bookkeeping, and the liveness sweep that converts silence into
// failure-detector misses.
type Registry struct {
	cfg RegistryConfig

	mu    sync.Mutex
	nodes map[string]*nodeEntry

	registrations *telemetry.Counter
	heartbeats    *telemetry.Counter
}

type nodeEntry struct {
	info NodeInfo
	// missed counts the heartbeat intervals already reported as
	// failures since the last heartbeat, so the sweep is idempotent.
	missed int
}

// NewRegistry builds the node table.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	r := &Registry{cfg: cfg, nodes: make(map[string]*nodeEntry)}
	if reg := cfg.Telemetry; reg != nil {
		r.registrations = reg.Counter("naplet_fleet_registrations_total",
			"node registrations accepted by the master")
		r.heartbeats = reg.Counter("naplet_fleet_heartbeats_total",
			"node heartbeats accepted by the master")
		reg.GaugeFunc("naplet_fleet_nodes", "docks registered with the master",
			func() float64 { return float64(r.Len()) })
		reg.GaugeFunc("naplet_fleet_nodes_schedulable",
			"docks currently eligible for wave launches",
			func() float64 { return float64(len(r.Schedulable())) })
	}
	return r
}

// HeartbeatEvery returns the cadence the registry expects.
func (r *Registry) HeartbeatEvery() time.Duration { return r.cfg.HeartbeatEvery }

// Register records (or refreshes) a node. Registration is a success
// signal: a re-registering node comes back alive.
func (r *Registry) Register(b RegisterBody) error {
	if b.Node == "" {
		return fmt.Errorf("fleet: register without a node name")
	}
	now := r.cfg.Clock()
	r.mu.Lock()
	e, ok := r.nodes[b.Node]
	if !ok {
		e = &nodeEntry{info: NodeInfo{Name: b.Node, RegisteredAt: now}}
		r.nodes[b.Node] = e
	}
	// A registration is a fresh start: a restarted dock's heartbeat
	// counter begins again at 1, so the stored Seq (and the stats the
	// old incarnation reported) must reset or every new beacon would be
	// dropped as a stale replay until the counter outran the pre-restart
	// value — freezing LastSeen and letting the liveness sweep declare a
	// healthy node dead.
	e.info.Seq = 0
	e.info.Residents = 0
	e.info.DiskUsedBytes = 0
	e.info.Draining = false
	e.info.MetricsAddr = b.MetricsAddr
	e.info.Labels = append([]string(nil), b.Labels...)
	e.info.LastSeen = now
	e.missed = 0
	r.mu.Unlock()
	r.cfg.Health.ReportSuccess(b.Node)
	if r.registrations != nil {
		r.registrations.Inc()
	}
	return nil
}

// Heartbeat folds one beacon into the table. An unknown node errors so
// the agent re-registers (the master restarted and lost its table).
// Stale (reordered) beacons are dropped silently.
func (r *Registry) Heartbeat(b HeartbeatBody) error {
	now := r.cfg.Clock()
	r.mu.Lock()
	e, ok := r.nodes[b.Node]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("fleet: unknown node %q", b.Node)
	}
	if b.Seq != 0 && b.Seq <= e.info.Seq {
		r.mu.Unlock()
		return nil
	}
	e.info.Seq = b.Seq
	e.info.LastSeen = now
	e.info.Residents = b.Residents
	e.info.DiskUsedBytes = b.DiskUsedBytes
	e.info.Draining = b.Draining
	e.missed = 0
	r.mu.Unlock()
	r.cfg.Health.ReportSuccess(b.Node)
	if wd := r.cfg.Watchdog; wd != nil {
		wd.ObserveDisk(b.Node, b.DiskUsedBytes)
	}
	if r.heartbeats != nil {
		r.heartbeats.Inc()
	}
	return nil
}

// CheckLiveness sweeps the table, reporting one failure-detector miss
// per heartbeat interval a node has stayed silent beyond a one-interval
// grace. Consecutive sweeps are idempotent: an interval is reported at
// most once, so the detector's suspect/dead thresholds translate
// directly into missed-heartbeat counts.
func (r *Registry) CheckLiveness() {
	now := r.cfg.Clock()
	type miss struct {
		node string
		n    int
	}
	var misses []miss
	r.mu.Lock()
	for name, e := range r.nodes {
		if e.info.LastSeen.IsZero() {
			continue
		}
		intervals := int(now.Sub(e.info.LastSeen)/r.cfg.HeartbeatEvery) - 1
		if intervals > e.missed {
			misses = append(misses, miss{node: name, n: intervals - e.missed})
			e.missed = intervals
		}
	}
	r.mu.Unlock()
	for _, m := range misses {
		for i := 0; i < m.n; i++ {
			r.cfg.Health.ReportFailure(m.node)
		}
	}
}

// Schedulable lists the nodes eligible for wave launches: registered,
// not presumed dead, not draining, and not latched over a watchdog
// watermark. Sorted for deterministic scheduling.
func (r *Registry) Schedulable() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.nodes))
	for name, e := range r.nodes {
		if !e.info.Draining {
			names = append(names, name)
		}
	}
	r.mu.Unlock()
	out := names[:0]
	for _, name := range names {
		if r.cfg.Health.Dead(name) {
			continue
		}
		if wd := r.cfg.Watchdog; wd != nil && wd.Over(name) {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Dead reports whether node is registered but presumed dead (or not
// registered at all — an unknown node is no launch target either).
func (r *Registry) Dead(node string) bool {
	r.mu.Lock()
	_, ok := r.nodes[node]
	r.mu.Unlock()
	if !ok {
		return true
	}
	return r.cfg.Health.Dead(node)
}

// Nodes returns every registered node's status, sorted by name.
func (r *Registry) Nodes() []NodeStatus {
	r.mu.Lock()
	out := make([]NodeStatus, 0, len(r.nodes))
	for name, e := range r.nodes {
		st := NodeStatus{NodeInfo: e.info}
		st.Name = name
		out = append(out, st)
	}
	r.mu.Unlock()
	for i := range out {
		out[i].State = r.cfg.Health.State(out[i].Name).String()
		if wd := r.cfg.Watchdog; wd != nil {
			out[i].IngestRate = wd.Rate(out[i].Name)
			out[i].Over = wd.Over(out[i].Name)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the registered node count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}
