// Package fleet is the control plane above the dock layer: the component
// that knows the fleet exists. A Master (cmd/napletmaster) accepts node
// registrations and heartbeats from every napletd, judges liveness with
// the internal/health failure detector, schedules launch waves across the
// healthy docks, and fans live hop-span and nav-log events out to
// subscribers over bounded per-subscriber rings. An Agent runs inside
// each napletd: it registers, heartbeats (residents, dock disk usage,
// drain state), and streams the server's telemetry events to the master
// through a bounded queue that sheds load instead of blocking the
// migration path.
//
// The paper's §5 architecture assumes an operator who can see and drive
// the whole naplet server mesh; this package is that operator tier,
// following the hierarchical manager-of-managers designs of the related
// mobile-agent management literature.
package fleet

import (
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Event kinds carried on the fleet event stream. Span events come from
// the origin navigator's HopTracer; the rest are nav-log events from the
// visit engine.
const (
	// EventSpan is one migration hop span (platform-side cost record).
	EventSpan = "span"
	// EventLaunch marks a naplet launched at its home server.
	EventLaunch = "launch"
	// EventArrival marks a transferred naplet landing.
	EventArrival = "arrival"
	// EventDepart marks a naplet released toward its next stop.
	EventDepart = "depart"
	// EventComplete marks an itinerary finishing.
	EventComplete = "complete"
	// EventTrap marks an execution exception ending a life cycle.
	EventTrap = "trap"
	// EventReroute marks an itinerary failover or evacuation.
	EventReroute = "reroute"
)

// Event is one observation on the fleet event stream: a flattened union
// of hop spans and nav-log events, small enough to batch by the hundred.
type Event struct {
	// Seq is the broadcaster's publication sequence number, assigned at
	// the master (zero in flight from the node).
	Seq uint64
	// Node is the reporting dock (stamped by the master from the batch
	// envelope, so nodes cannot spoof each other).
	Node string
	// Kind is one of the Event* constants.
	Kind string
	// Naplet is the subject naplet's identifier.
	Naplet string
	// Hop is the hop index (span) or nav-log length (nav events).
	Hop int
	// From and To are the servers involved.
	From, To string
	// At is the event time at the reporting node.
	At time.Time
	// Outcome is the span outcome (ok/refused/failed); empty otherwise.
	Outcome string
	// Detail carries error text, failover policy, or codebase.
	Detail string
	// Bytes is the moved payload size (spans: record + code bytes).
	Bytes int
	// Elapsed is the span's total duration; zero for nav events.
	Elapsed time.Duration
}

// EncodedSize returns the exact encoded size of the event.
func (e *Event) EncodedSize() int {
	return wire.SizeUvarint(e.Seq) + wire.SizeString(e.Node) +
		wire.SizeString(e.Kind) + wire.SizeString(e.Naplet) +
		wire.SizeUvarint(uint64(e.Hop)) + wire.SizeString(e.From) +
		wire.SizeString(e.To) + wire.SizeTime(e.At) +
		wire.SizeString(e.Outcome) + wire.SizeString(e.Detail) +
		wire.SizeUvarint(uint64(e.Bytes)) + wire.SizeVarint(int64(e.Elapsed))
}

// AppendBinary appends the event's binary form to dst. Events are nested
// inside body codecs, so they carry no version byte of their own.
func (e *Event) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, e.Seq)
	dst = wire.AppendString(dst, e.Node)
	dst = wire.AppendString(dst, e.Kind)
	dst = wire.AppendString(dst, e.Naplet)
	dst = wire.AppendUvarint(dst, uint64(e.Hop))
	dst = wire.AppendString(dst, e.From)
	dst = wire.AppendString(dst, e.To)
	dst = wire.AppendTime(dst, e.At)
	dst = wire.AppendString(dst, e.Outcome)
	dst = wire.AppendString(dst, e.Detail)
	dst = wire.AppendUvarint(dst, uint64(e.Bytes))
	return wire.AppendVarint(dst, int64(e.Elapsed))
}

// decodeEvent parses one event from b, returning the remainder.
func decodeEvent(b []byte) (Event, []byte, error) {
	var e Event
	var err error
	if e.Seq, b, err = wire.DecUvarint(b); err != nil {
		return e, b, err
	}
	if e.Node, b, err = wire.DecString(b); err != nil {
		return e, b, err
	}
	if e.Kind, b, err = wire.DecString(b); err != nil {
		return e, b, err
	}
	if e.Naplet, b, err = wire.DecString(b); err != nil {
		return e, b, err
	}
	var hop uint64
	if hop, b, err = wire.DecUvarint(b); err != nil {
		return e, b, err
	}
	e.Hop = int(hop)
	if e.From, b, err = wire.DecString(b); err != nil {
		return e, b, err
	}
	if e.To, b, err = wire.DecString(b); err != nil {
		return e, b, err
	}
	if e.At, b, err = wire.DecTime(b); err != nil {
		return e, b, err
	}
	if e.Outcome, b, err = wire.DecString(b); err != nil {
		return e, b, err
	}
	if e.Detail, b, err = wire.DecString(b); err != nil {
		return e, b, err
	}
	var bytes uint64
	if bytes, b, err = wire.DecUvarint(b); err != nil {
		return e, b, err
	}
	e.Bytes = int(bytes)
	var el int64
	if el, b, err = wire.DecVarint(b); err != nil {
		return e, b, err
	}
	e.Elapsed = time.Duration(el)
	return e, b, nil
}

// SpanEvent flattens a migration hop span into a fleet event.
func SpanEvent(s telemetry.HopSpan) Event {
	return Event{
		Kind:    EventSpan,
		Naplet:  s.Naplet,
		Hop:     s.Hop,
		From:    s.From,
		To:      s.To,
		At:      s.Start,
		Outcome: s.Outcome,
		Detail:  s.Err,
		Bytes:   s.RecordBytes + s.CodeBytes,
		Elapsed: s.Total,
	}
}

// NavEvent flattens a server nav-log event into a fleet event.
func NavEvent(e server.Event) Event {
	return Event{
		Kind:   e.Kind,
		Naplet: e.Naplet,
		Hop:    e.Hop,
		From:   e.From,
		To:     e.To,
		At:     e.At,
		Detail: e.Detail,
	}
}
