package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBroadcasterDeliversInOrder(t *testing.T) {
	b := NewBroadcaster(BroadcasterConfig{Buf: 16})
	id := b.SubscribeDefault()
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: EventSpan, Hop: i})
	}
	evs, dropped, err := b.Poll(id, 0)
	if err != nil || dropped != 0 {
		t.Fatalf("poll: %v (dropped %d)", err, dropped)
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Hop != i || ev.Seq != uint64(i+1) {
			t.Fatalf("event %d = hop %d seq %d", i, ev.Hop, ev.Seq)
		}
	}
	// Drained: next poll returns nothing.
	if evs, _, _ := b.Poll(id, 0); len(evs) != 0 {
		t.Fatalf("second poll returned %d events", len(evs))
	}
}

func TestBroadcasterPollMax(t *testing.T) {
	b := NewBroadcaster(BroadcasterConfig{Buf: 16})
	id := b.SubscribeDefault()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Hop: i})
	}
	evs, _, err := b.Poll(id, 3)
	if err != nil || len(evs) != 3 || evs[0].Hop != 0 {
		t.Fatalf("poll(3) = %d events, err %v", len(evs), err)
	}
	evs, _, _ = b.Poll(id, 0)
	if len(evs) != 7 || evs[0].Hop != 3 {
		t.Fatalf("rest = %d events starting at hop %d", len(evs), evs[0].Hop)
	}
}

func TestBroadcasterDropsSlowSubscriber(t *testing.T) {
	b := NewBroadcaster(BroadcasterConfig{Buf: 4, Policy: DropSlow})
	slow := b.SubscribeDefault()
	fast := b.SubscribeDefault()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Hop: i})
		if i%2 == 1 {
			if _, _, err := b.Poll(fast, 0); err != nil {
				t.Fatalf("fast poll: %v", err)
			}
		}
	}
	// The slow subscriber overflowed its 4-slot ring and was dropped:
	// exactly one ErrSlowSubscriber, then the handle is gone.
	if _, _, err := b.Poll(slow, 0); !errors.Is(err, ErrSlowSubscriber) {
		t.Fatalf("slow poll err = %v, want ErrSlowSubscriber", err)
	}
	if _, _, err := b.Poll(slow, 0); !errors.Is(err, ErrUnknownSubscriber) {
		t.Fatalf("second slow poll err = %v, want ErrUnknownSubscriber", err)
	}
	// The fast subscriber is unaffected.
	if _, _, err := b.Poll(fast, 0); err != nil {
		t.Fatalf("fast poll after drop: %v", err)
	}
	if b.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", b.Subscribers())
	}
}

func TestBroadcasterDownSamplesSlowSubscriber(t *testing.T) {
	b := NewBroadcaster(BroadcasterConfig{Buf: 4})
	id := b.Subscribe(4, DownSample)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Hop: i})
	}
	evs, dropped, err := b.Poll(id, 0)
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	// The ring keeps the newest 4; the oldest 6 were overwritten.
	if dropped != 6 || len(evs) != 4 {
		t.Fatalf("got %d events, %d dropped; want 4 and 6", len(evs), dropped)
	}
	if evs[0].Hop != 6 || evs[3].Hop != 9 {
		t.Fatalf("window = hops %d..%d, want 6..9", evs[0].Hop, evs[3].Hop)
	}
	// Still subscribed.
	b.Publish(Event{Hop: 10})
	if evs, _, err := b.Poll(id, 0); err != nil || len(evs) != 1 {
		t.Fatalf("after downsample: %d events, err %v", len(evs), err)
	}
}

func TestBroadcasterReap(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := NewBroadcaster(BroadcasterConfig{Buf: 4, Clock: clock})
	stale := b.SubscribeDefault()
	fresh := b.SubscribeDefault()
	now = now.Add(30 * time.Second)
	if _, _, err := b.Poll(fresh, 0); err != nil {
		t.Fatal(err)
	}
	now = now.Add(40 * time.Second)
	if n := b.Reap(time.Minute); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	if _, _, err := b.Poll(stale, 0); !errors.Is(err, ErrUnknownSubscriber) {
		t.Fatalf("stale poll err = %v", err)
	}
	if _, _, err := b.Poll(fresh, 0); err != nil {
		t.Fatalf("fresh poll err = %v", err)
	}
}

func TestBroadcasterSubscribeClampsBuf(t *testing.T) {
	b := NewBroadcaster(BroadcasterConfig{Buf: 8, MaxBuf: 16})
	id := b.Subscribe(1 << 20, DownSample)
	for i := 0; i < 20; i++ {
		b.Publish(Event{Hop: i})
	}
	evs, dropped, _ := b.Poll(id, 0)
	if len(evs) != 16 || dropped != 4 {
		t.Fatalf("clamped ring held %d (dropped %d), want 16 and 4", len(evs), dropped)
	}
}

func TestBroadcasterConcurrentPublishPoll(t *testing.T) {
	b := NewBroadcaster(BroadcasterConfig{Buf: 64})
	const publishers, perPub = 8, 200
	ids := make([]string, 4)
	for i := range ids {
		ids[i] = b.Subscribe(0, DownSample)
	}
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(Event{Node: fmt.Sprintf("n%d", p), Hop: i})
			}
		}(p)
	}
	done := make(chan struct{})
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for {
				evs, _, err := b.Poll(id, 0)
				if err != nil {
					t.Errorf("poll %s: %v", id, err)
					return
				}
				var last uint64
				for _, ev := range evs {
					if ev.Seq <= last && last != 0 {
						t.Errorf("out-of-order seq %d after %d", ev.Seq, last)
					}
					last = ev.Seq
				}
				select {
				case <-done:
					if len(evs) == 0 {
						return
					}
				default:
				}
			}
		}(id)
	}
	// Publishers are done once every event has a sequence number; then
	// let the pollers drain and exit.
	for b.Published() < publishers*perPub {
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	if want := uint64(publishers * perPub); b.Published() != want {
		t.Fatalf("published = %d, want %d", b.Published(), want)
	}
}
