package fleet

import (
	"math"
	"testing"
	"time"
)

func TestRateEstimatorConvergesToSteadyRate(t *testing.T) {
	// 1000 bytes every 10ms against a 5s half-life must converge to
	// ~100 KB/s.
	e := NewRateEstimator(5 * time.Second)
	now := time.Unix(0, 0)
	for i := 0; i < 5000; i++ {
		now = now.Add(10 * time.Millisecond)
		e.Observe(1000, now)
	}
	got := e.Rate(now)
	want := 100_000.0
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("rate = %.0f B/s, want ~%.0f", got, want)
	}
}

func TestRateEstimatorDecays(t *testing.T) {
	e := NewRateEstimator(time.Second)
	now := time.Unix(0, 0)
	e.Observe(1 << 20, now)
	r0 := e.Rate(now)
	// One half-life later the rate has halved; ten later it is gone.
	r1 := e.Rate(now.Add(time.Second))
	if math.Abs(r1-r0/2)/r0 > 0.01 {
		t.Fatalf("after one half-life: %.1f, want ~%.1f", r1, r0/2)
	}
	if r10 := e.Rate(now.Add(10 * time.Second)); r10 > r0/500 {
		t.Fatalf("after ten half-lives: %.1f, want ~0", r10)
	}
}

func TestWatchdogDiskWatermarkLatch(t *testing.T) {
	now := time.Unix(0, 0)
	w := NewWatchdog(WatchdogConfig{
		DiskWatermarkBytes: 1000,
		ResumeFraction:     0.8,
		Clock:              func() time.Time { return now },
	})
	w.ObserveDisk("d1", 500)
	if w.Over("d1") {
		t.Fatal("under watermark but over")
	}
	w.ObserveDisk("d1", 1000)
	if !w.Over("d1") {
		t.Fatal("at watermark but not latched")
	}
	// Hysteresis: dipping just below the watermark is not enough.
	w.ObserveDisk("d1", 900)
	if !w.Over("d1") {
		t.Fatal("unlatched inside the hysteresis band")
	}
	// Below watermark*0.8 the latch releases.
	w.ObserveDisk("d1", 700)
	if w.Over("d1") {
		t.Fatal("still latched below the resume threshold")
	}
}

func TestWatchdogIngestWatermarkUnlatchesByDecay(t *testing.T) {
	now := time.Unix(0, 0)
	w := NewWatchdog(WatchdogConfig{
		IngestWatermarkBps: 1000,
		RateHalfLife:       time.Second,
		Clock:              func() time.Time { return now },
	})
	// A burst pushes the estimated rate over 1000 B/s.
	w.ObserveIngest("d1", 100_000)
	if !w.Over("d1") {
		t.Fatalf("rate %.0f B/s did not trip the watermark", w.Rate("d1"))
	}
	// With no further traffic the rate decays; Over re-evaluates and the
	// latch releases on its own.
	now = now.Add(15 * time.Second)
	if w.Over("d1") {
		t.Fatalf("still latched at %.2f B/s", w.Rate("d1"))
	}
}

func TestWatchdogAlarmsCount(t *testing.T) {
	now := time.Unix(0, 0)
	w := NewWatchdog(WatchdogConfig{
		DiskWatermarkBytes: 10,
		Clock:              func() time.Time { return now },
	})
	w.ObserveDisk("d1", 20)
	w.ObserveDisk("d1", 30) // already latched: no second alarm
	w.ObserveDisk("d2", 20)
	if n := w.overCount(); n != 2 {
		t.Fatalf("over count = %d, want 2", n)
	}
	w.Forget("d1")
	if n := w.overCount(); n != 1 {
		t.Fatalf("over count after forget = %d, want 1", n)
	}
	if w.Over("d1") {
		t.Fatal("forgotten node still over")
	}
}

func TestWatchdogZeroConfigNeverTrips(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{})
	w.ObserveDisk("d1", math.MaxUint64)
	w.ObserveIngest("d1", 1<<30)
	if w.Over("d1") {
		t.Fatal("disabled watermarks tripped")
	}
}
