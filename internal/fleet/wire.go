package fleet

import (
	"time"

	"repro/internal/wire"
)

// Binary codecs for the fleet-protocol bodies, following the migration
// codec conventions (DESIGN.md §11): a leading version byte, no
// reflection, exact-size allocation; decoders sniff the version byte and
// fall back to gob for frames from senders predating the codec. The
// register/heartbeat/event bodies are the hot path — hundreds of docks
// ticking every second — so they get hand-rolled codecs; the low-rate
// operator bodies (waves, node listings) stay gob via wire.NewFrame,
// where type flexibility matters more than bytes.

// bodyCodecVersion is the leading version byte of binary protocol bodies.
const bodyCodecVersion = 1

// isBinaryBody reports whether a payload carries the binary body codec.
func isBinaryBody(payload []byte) bool {
	return len(payload) > 0 && payload[0] == bodyCodecVersion
}

// RegisterBody announces a dock to the master (KindFleetRegister).
type RegisterBody struct {
	// Node is the dock's fabric address — the name waves launch at.
	Node string
	// MetricsAddr is the dock's HTTP telemetry endpoint (may be empty).
	MetricsAddr string
	// Labels are free-form operator tags.
	Labels []string
}

// EncodedSize returns the exact encoded size of the body.
func (b *RegisterBody) EncodedSize() int {
	n := 1 + wire.SizeString(b.Node) + wire.SizeString(b.MetricsAddr) +
		wire.SizeUvarint(uint64(len(b.Labels)))
	for _, l := range b.Labels {
		n += wire.SizeString(l)
	}
	return n
}

// AppendBinary appends the body's binary form to dst.
func (b *RegisterBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendString(dst, b.Node)
	dst = wire.AppendString(dst, b.MetricsAddr)
	dst = wire.AppendUvarint(dst, uint64(len(b.Labels)))
	for _, l := range b.Labels {
		dst = wire.AppendString(dst, l)
	}
	return dst
}

// Decode parses a register payload, binary or legacy gob.
func (b *RegisterBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.Node, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	if b.MetricsAddr, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	n, rest, err := wire.DecCount(rest, 1)
	if err != nil {
		return err
	}
	if n > 0 {
		b.Labels = make([]string, n)
		for i := range b.Labels {
			if b.Labels[i], rest, err = wire.DecString(rest); err != nil {
				return err
			}
		}
	}
	return nil
}

// RegisterReplyBody acknowledges a registration.
type RegisterReplyBody struct {
	OK  bool
	Err string
	// HeartbeatEvery is the cadence the master expects; the agent adopts
	// it so one knob (the master's) paces the whole fleet.
	HeartbeatEvery time.Duration
}

// EncodedSize returns the exact encoded size of the body.
func (b *RegisterReplyBody) EncodedSize() int {
	return 1 + wire.SizeBool + wire.SizeString(b.Err) +
		wire.SizeVarint(int64(b.HeartbeatEvery))
}

// AppendBinary appends the body's binary form to dst.
func (b *RegisterReplyBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendBool(dst, b.OK)
	dst = wire.AppendString(dst, b.Err)
	return wire.AppendVarint(dst, int64(b.HeartbeatEvery))
}

// Decode parses a register reply, binary or legacy gob.
func (b *RegisterReplyBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.OK, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if b.Err, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	hb, _, err := wire.DecVarint(rest)
	if err != nil {
		return err
	}
	b.HeartbeatEvery = time.Duration(hb)
	return nil
}

// HeartbeatBody is one liveness beacon from a dock (KindFleetHeartbeat).
type HeartbeatBody struct {
	// Node is the reporting dock.
	Node string
	// Seq increments per heartbeat, so reordered beacons are detectable.
	Seq uint64
	// Residents is the dock's current resident-naplet count.
	Residents int
	// DiskUsedBytes is the dock snapshot store's on-disk footprint.
	DiskUsedBytes uint64
	// Draining reports a graceful shutdown in progress.
	Draining bool
}

// EncodedSize returns the exact encoded size of the body.
func (b *HeartbeatBody) EncodedSize() int {
	return 1 + wire.SizeString(b.Node) + wire.SizeUvarint(b.Seq) +
		wire.SizeUvarint(uint64(b.Residents)) + wire.SizeUvarint(b.DiskUsedBytes) +
		wire.SizeBool
}

// AppendBinary appends the body's binary form to dst.
func (b *HeartbeatBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendString(dst, b.Node)
	dst = wire.AppendUvarint(dst, b.Seq)
	dst = wire.AppendUvarint(dst, uint64(b.Residents))
	dst = wire.AppendUvarint(dst, b.DiskUsedBytes)
	return wire.AppendBool(dst, b.Draining)
}

// Decode parses a heartbeat payload, binary or legacy gob.
func (b *HeartbeatBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.Node, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	if b.Seq, rest, err = wire.DecUvarint(rest); err != nil {
		return err
	}
	var res uint64
	if res, rest, err = wire.DecUvarint(rest); err != nil {
		return err
	}
	b.Residents = int(res)
	if b.DiskUsedBytes, rest, err = wire.DecUvarint(rest); err != nil {
		return err
	}
	b.Draining, _, err = wire.DecBool(rest)
	return err
}

// HeartbeatReplyBody acknowledges a heartbeat.
type HeartbeatReplyBody struct {
	OK bool
	// Err non-empty with OK false means the master does not know this
	// node (it restarted); the agent re-registers.
	Err string
	// Throttle asks the agent to down-sample its event stream: the
	// watchdog judged this node over an ingest or disk watermark.
	Throttle bool
}

// EncodedSize returns the exact encoded size of the body.
func (b *HeartbeatReplyBody) EncodedSize() int {
	return 1 + wire.SizeBool + wire.SizeString(b.Err) + wire.SizeBool
}

// AppendBinary appends the body's binary form to dst.
func (b *HeartbeatReplyBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendBool(dst, b.OK)
	dst = wire.AppendString(dst, b.Err)
	return wire.AppendBool(dst, b.Throttle)
}

// Decode parses a heartbeat reply, binary or legacy gob.
func (b *HeartbeatReplyBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.OK, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	if b.Err, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	b.Throttle, _, err = wire.DecBool(rest)
	return err
}

// EventBatchBody carries a batch of events from a dock
// (KindFleetEvents). The master stamps every event's Node from the
// envelope before publishing.
type EventBatchBody struct {
	Node   string
	Events []Event
}

// EncodedSize returns the exact encoded size of the body.
func (b *EventBatchBody) EncodedSize() int {
	n := 1 + wire.SizeString(b.Node) + wire.SizeUvarint(uint64(len(b.Events)))
	for i := range b.Events {
		n += b.Events[i].EncodedSize()
	}
	return n
}

// AppendBinary appends the body's binary form to dst.
func (b *EventBatchBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendString(dst, b.Node)
	dst = wire.AppendUvarint(dst, uint64(len(b.Events)))
	for i := range b.Events {
		dst = b.Events[i].AppendBinary(dst)
	}
	return dst
}

// minEventSize is the smallest possible encoded Event (every string
// empty), the allocation guard DecCount uses against hostile counts.
const minEventSize = 12

// Decode parses an event batch, binary or legacy gob.
func (b *EventBatchBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.Node, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	n, rest, err := wire.DecCount(rest, minEventSize)
	if err != nil {
		return err
	}
	if n > 0 {
		b.Events = make([]Event, n)
		for i := range b.Events {
			if b.Events[i], rest, err = decodeEvent(rest); err != nil {
				return err
			}
		}
	}
	return nil
}

// EventAckBody acknowledges an event batch.
type EventAckBody struct {
	OK bool
	// Throttle mirrors the heartbeat backpressure signal.
	Throttle bool
}

// EncodedSize returns the exact encoded size of the body.
func (b *EventAckBody) EncodedSize() int { return 1 + 2*wire.SizeBool }

// AppendBinary appends the body's binary form to dst.
func (b *EventAckBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendBool(dst, b.OK)
	return wire.AppendBool(dst, b.Throttle)
}

// Decode parses an event ack, binary or legacy gob.
func (b *EventAckBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.OK, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	b.Throttle, _, err = wire.DecBool(rest)
	return err
}

// SubscribeBody creates or polls an event subscription
// (KindFleetSubscribe). Subscribers pull: the request/reply transport
// cannot push, so a slow subscriber slows only its own polling loop —
// never the master's ingest.
type SubscribeBody struct {
	// ID is the subscription handle; empty creates a new subscription.
	ID string
	// Buf hints the per-subscriber ring capacity on creation (clamped by
	// the master; 0 takes the master's default).
	Buf uint32
	// Max bounds the events returned by one poll (0 = master default).
	Max uint32
}

// EncodedSize returns the exact encoded size of the body.
func (b *SubscribeBody) EncodedSize() int {
	return 1 + wire.SizeString(b.ID) + wire.SizeUvarint(uint64(b.Buf)) +
		wire.SizeUvarint(uint64(b.Max))
}

// AppendBinary appends the body's binary form to dst.
func (b *SubscribeBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendString(dst, b.ID)
	dst = wire.AppendUvarint(dst, uint64(b.Buf))
	return wire.AppendUvarint(dst, uint64(b.Max))
}

// Decode parses a subscribe payload, binary or legacy gob.
func (b *SubscribeBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.ID, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	var v uint64
	if v, rest, err = wire.DecUvarint(rest); err != nil {
		return err
	}
	b.Buf = uint32(v)
	if v, _, err = wire.DecUvarint(rest); err != nil {
		return err
	}
	b.Max = uint32(v)
	return nil
}

// SubscribeReplyBody answers a subscribe/poll.
type SubscribeReplyBody struct {
	// ID echoes (or assigns) the subscription handle.
	ID string
	// Events are the drained events, oldest first.
	Events []Event
	// Dropped counts events this subscription lost to down-sampling.
	Dropped uint64
	// Closed reports the subscription was dropped for falling behind;
	// the handle is dead and polling should stop.
	Closed bool
	Err    string
}

// EncodedSize returns the exact encoded size of the body.
func (b *SubscribeReplyBody) EncodedSize() int {
	n := 1 + wire.SizeString(b.ID) + wire.SizeUvarint(uint64(len(b.Events))) +
		wire.SizeUvarint(b.Dropped) + wire.SizeBool + wire.SizeString(b.Err)
	for i := range b.Events {
		n += b.Events[i].EncodedSize()
	}
	return n
}

// AppendBinary appends the body's binary form to dst.
func (b *SubscribeReplyBody) AppendBinary(dst []byte) []byte {
	dst = append(dst, bodyCodecVersion)
	dst = wire.AppendString(dst, b.ID)
	dst = wire.AppendUvarint(dst, uint64(len(b.Events)))
	for i := range b.Events {
		dst = b.Events[i].AppendBinary(dst)
	}
	dst = wire.AppendUvarint(dst, b.Dropped)
	dst = wire.AppendBool(dst, b.Closed)
	return wire.AppendString(dst, b.Err)
}

// Decode parses a subscribe reply, binary or legacy gob.
func (b *SubscribeReplyBody) Decode(payload []byte) error {
	if !isBinaryBody(payload) {
		return wire.Unmarshal(payload, b)
	}
	rest := payload[1:]
	var err error
	if b.ID, rest, err = wire.DecString(rest); err != nil {
		return err
	}
	n, rest, err := wire.DecCount(rest, minEventSize)
	if err != nil {
		return err
	}
	if n > 0 {
		b.Events = make([]Event, n)
		for i := range b.Events {
			if b.Events[i], rest, err = decodeEvent(rest); err != nil {
				return err
			}
		}
	}
	if b.Dropped, rest, err = wire.DecUvarint(rest); err != nil {
		return err
	}
	if b.Closed, rest, err = wire.DecBool(rest); err != nil {
		return err
	}
	b.Err, _, err = wire.DecString(rest)
	return err
}

// WaveBody carries a wave specification to the master (KindFleetWave).
// Operator-frequency and structurally rich, so it stays gob.
type WaveBody struct {
	Spec WaveSpec
}

// WaveReplyBody answers a wave run with its aggregated result.
type WaveReplyBody struct {
	OK     bool
	Err    string
	Result *WaveResult
}

// NodesBody requests the fleet node listing (KindFleetNodes).
type NodesBody struct{}

// NodesReplyBody answers with every registered node's status.
type NodesReplyBody struct {
	Nodes []NodeStatus
}
