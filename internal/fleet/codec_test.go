package fleet

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/wire"
)

func testEvent(i int) Event {
	return Event{
		Seq:     uint64(i),
		Node:    "dock1",
		Kind:    EventSpan,
		Naplet:  "naplet-7@home",
		Hop:     i,
		From:    "s1",
		To:      "s2",
		At:      time.Unix(1700000000+int64(i), 123456789).UTC(),
		Outcome: "ok",
		Detail:  "detail",
		Bytes:   4096 + i,
		Elapsed: time.Duration(i) * time.Millisecond,
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	for _, ev := range []Event{testEvent(3), {}, {Kind: EventTrap, Detail: "boom: division by zero"}} {
		buf := ev.AppendBinary(make([]byte, 0, ev.EncodedSize()))
		if len(buf) != ev.EncodedSize() {
			t.Fatalf("EncodedSize = %d, encoded %d bytes", ev.EncodedSize(), len(buf))
		}
		got, rest, err := decodeEvent(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		if !got.At.Equal(ev.At) {
			t.Fatalf("At = %v, want %v", got.At, ev.At)
		}
		got.At, ev.At = time.Time{}, time.Time{}
		if !reflect.DeepEqual(got, ev) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, ev)
		}
	}
}

func TestMinEventSize(t *testing.T) {
	// The DecCount allocation guard must never exceed a real empty
	// event's wire size, or valid batches would be rejected.
	empty := Event{}
	if got := len(empty.AppendBinary(nil)); got < minEventSize {
		t.Fatalf("empty event encodes to %d bytes < minEventSize %d", got, minEventSize)
	}
}

func TestFleetBodyCodecRoundTrips(t *testing.T) {
	cases := []struct {
		name string
		in   interface {
			wire.BinaryBody
			Decode([]byte) error
		}
		out interface{ Decode([]byte) error }
	}{
		{"register", &RegisterBody{Node: "dock1:7001", MetricsAddr: ":8081", Labels: []string{"rack=a", "zone=1"}}, &RegisterBody{}},
		{"register/empty", &RegisterBody{Node: "d"}, &RegisterBody{}},
		{"registerReply", &RegisterReplyBody{OK: true, HeartbeatEvery: 1500 * time.Millisecond}, &RegisterReplyBody{}},
		{"registerReply/err", &RegisterReplyBody{Err: "full"}, &RegisterReplyBody{}},
		{"heartbeat", &HeartbeatBody{Node: "dock1", Seq: 42, Residents: 3, DiskUsedBytes: 1 << 30, Draining: true}, &HeartbeatBody{}},
		{"heartbeatReply", &HeartbeatReplyBody{OK: true, Throttle: true}, &HeartbeatReplyBody{}},
		{"heartbeatReply/unknown", &HeartbeatReplyBody{Err: `fleet: unknown node "d"`}, &HeartbeatReplyBody{}},
		{"events", &EventBatchBody{Node: "dock2", Events: []Event{testEvent(1), testEvent(2), {}}}, &EventBatchBody{}},
		{"events/empty", &EventBatchBody{Node: "dock2"}, &EventBatchBody{}},
		{"eventAck", &EventAckBody{OK: true, Throttle: true}, &EventAckBody{}},
		{"subscribe", &SubscribeBody{ID: "sub-9", Buf: 2048, Max: 128}, &SubscribeBody{}},
		{"subscribe/create", &SubscribeBody{}, &SubscribeBody{}},
		{"subscribeReply", &SubscribeReplyBody{ID: "sub-9", Events: []Event{testEvent(5)}, Dropped: 17, Closed: true, Err: "x"}, &SubscribeReplyBody{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.in.AppendBinary(make([]byte, 0, tc.in.EncodedSize()))
			if len(buf) != tc.in.EncodedSize() {
				t.Fatalf("EncodedSize = %d, encoded %d bytes", tc.in.EncodedSize(), len(buf))
			}
			if err := tc.out.Decode(buf); err != nil {
				t.Fatal(err)
			}
			if !equalIgnoringTime(tc.out, tc.in) {
				t.Fatalf("round trip:\n got %+v\nwant %+v", tc.out, tc.in)
			}
		})
	}
}

// equalIgnoringTime compares two body values, comparing time fields with
// Equal (binary codecs round-trip wall-clock time, not monotonic or
// location identity).
func equalIgnoringTime(a, b any) bool {
	ja, jb := normalizeTimes(a), normalizeTimes(b)
	return reflect.DeepEqual(ja, jb)
}

func normalizeTimes(v any) any {
	switch b := v.(type) {
	case *EventBatchBody:
		cp := *b
		cp.Events = normalizeEvents(b.Events)
		return cp
	case *SubscribeReplyBody:
		cp := *b
		cp.Events = normalizeEvents(b.Events)
		return cp
	default:
		return reflect.ValueOf(v).Elem().Interface()
	}
}

func normalizeEvents(evs []Event) []Event {
	out := make([]Event, len(evs))
	for i, ev := range evs {
		ev.At = ev.At.Round(0).UTC()
		out[i] = ev
	}
	return out
}

func TestFleetBodyGobFallback(t *testing.T) {
	// A frame from a sender predating the binary codec decodes via gob.
	in := HeartbeatBody{Node: "old-dock", Seq: 7, Residents: 1}
	payload, err := wire.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	if isBinaryBody(payload) {
		t.Fatal("gob payload sniffed as binary")
	}
	var out HeartbeatBody
	if err := out.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("gob fallback: got %+v, want %+v", out, in)
	}
}

func TestEventBatchDecodeRejectsHostileCount(t *testing.T) {
	// A forged huge count must fail before allocation, not OOM.
	b := []byte{bodyCodecVersion}
	b = wire.AppendString(b, "evil")
	b = wire.AppendUvarint(b, 1<<40)
	var out EventBatchBody
	if err := out.Decode(b); err == nil {
		t.Fatal("hostile count accepted")
	}
}
