package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// NodeStats is the dock-side snapshot one heartbeat reports.
type NodeStats struct {
	Residents     int
	DiskUsedBytes uint64
	Draining      bool
}

// AgentConfig parameterises a node-side fleet agent.
type AgentConfig struct {
	// Node is the dock's transport endpoint; required.
	Node transport.Node
	// Master is the master's fabric address; required.
	Master string
	// Name overrides the node name reported to the master (defaults to
	// Node.Addr()).
	Name string
	// MetricsAddr is the dock's HTTP telemetry endpoint, passed through
	// to the node listing.
	MetricsAddr string
	// Labels are free-form operator tags.
	Labels []string
	// Stats supplies the per-heartbeat snapshot; nil reports zeros.
	Stats func() NodeStats
	// HeartbeatEvery is the initial cadence (default 1s); the master's
	// register reply overrides it.
	HeartbeatEvery time.Duration
	// QueueCap bounds the event queue (default 4096); events beyond it
	// are dropped at the source — exporting telemetry never blocks the
	// dock's engine.
	QueueCap int
	// BatchMax bounds events per export frame (default 256).
	BatchMax int
	// FlushEvery paces batch export when the queue stays shallow
	// (default 200ms).
	FlushEvery time.Duration
	// CallTimeout bounds one master round-trip (default 5s).
	CallTimeout time.Duration
	// OnRegistered fires after every successful registration (readiness
	// gating).
	OnRegistered func()
	// Telemetry, when set, exports agent-side drop counters.
	Telemetry *telemetry.Registry
}

// Agent is the dock-side half of the fleet protocol: it registers with
// the master, heartbeats on the master's cadence, and exports hop spans
// and nav-log events in bounded batches. When the master signals
// Throttle, the agent down-samples span events (1 in 4) while always
// keeping nav-log events — backpressure degrades observability detail,
// not correctness signals.
type Agent struct {
	cfg AgentConfig

	queue      chan Event
	stop       chan struct{}
	stopped    sync.WaitGroup
	once       sync.Once
	throttled  atomic.Bool
	registered atomic.Bool
	spanSkip   atomic.Uint64

	droppedQueue *telemetry.Counter
	droppedSend  *telemetry.Counter
	exported     *telemetry.Counter
}

// NewAgent builds an agent. Run starts its loop.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Node == nil {
		return nil, errors.New("fleet: agent needs a node")
	}
	if cfg.Master == "" {
		return nil, errors.New("fleet: agent needs a master address")
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Node.Addr()
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 256
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 200 * time.Millisecond
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	a := &Agent{
		cfg:   cfg,
		queue: make(chan Event, cfg.QueueCap),
		stop:  make(chan struct{}),
	}
	if reg := cfg.Telemetry; reg != nil {
		a.droppedQueue = reg.Counter("naplet_fleet_agent_events_dropped_total",
			"fleet events dropped at the source (full queue or throttle)")
		a.droppedSend = reg.Counter("naplet_fleet_agent_batches_failed_total",
			"fleet event batches lost to export errors")
		a.exported = reg.Counter("naplet_fleet_agent_events_exported_total",
			"fleet events exported to the master")
	}
	return a, nil
}

// Registered reports whether the agent currently holds a successful
// registration with the master.
func (a *Agent) Registered() bool { return a.registered.Load() }

// Throttled reports whether the master's backpressure signal is active.
func (a *Agent) Throttled() bool { return a.throttled.Load() }

// Publish queues an event for export. It never blocks: a full queue
// drops the event, and under master throttle span events are kept only
// 1 in 4 (nav-log events always pass).
func (a *Agent) Publish(ev Event) {
	if a.throttled.Load() && ev.Kind == EventSpan {
		if a.spanSkip.Add(1)%4 != 0 {
			if a.droppedQueue != nil {
				a.droppedQueue.Inc()
			}
			return
		}
	}
	select {
	case a.queue <- ev:
	default:
		if a.droppedQueue != nil {
			a.droppedQueue.Inc()
		}
	}
}

// Run drives the agent until Close: register (retrying until the master
// answers), then heartbeat and flush tickers.
func (a *Agent) Run() {
	a.stopped.Add(1)
	go a.loop()
}

func (a *Agent) loop() {
	defer a.stopped.Done()
	every := a.register()
	if every <= 0 {
		return // closed while registering
	}
	hb := time.NewTicker(every)
	defer hb.Stop()
	flush := time.NewTicker(a.cfg.FlushEvery)
	defer flush.Stop()
	var seq uint64
	for {
		select {
		case <-a.stop:
			// Final drain: one flush exports at most BatchMax events, so a
			// busy dock needs several batches to empty a QueueCap-deep
			// queue. Bounded by the queue's batch count so a concurrent
			// publisher cannot hold shutdown open.
			for i := 0; i <= a.cfg.QueueCap/a.cfg.BatchMax; i++ {
				if len(a.queue) == 0 {
					break
				}
				a.flush()
			}
			return
		case <-hb.C:
			seq++
			if !a.heartbeat(seq) {
				// The master lost our registration; re-register on its
				// (possibly new) cadence.
				if every = a.register(); every <= 0 {
					return
				}
				hb.Reset(every)
			}
		case <-flush.C:
			a.flush()
		}
	}
}

// register loops until the master accepts the registration, returning
// the heartbeat cadence to use (0 when closed first).
func (a *Agent) register() time.Duration {
	body := RegisterBody{
		Node:        a.cfg.Name,
		MetricsAddr: a.cfg.MetricsAddr,
		Labels:      a.cfg.Labels,
	}
	backoff := a.cfg.HeartbeatEvery / 4
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	for {
		select {
		case <-a.stop:
			return 0
		default:
		}
		f := wire.BinaryFrame(wire.KindFleetRegister, a.cfg.Name, a.cfg.Master, &body)
		resp, err := a.call(f)
		if err == nil {
			var rb RegisterReplyBody
			if derr := rb.Decode(resp.Payload); derr == nil && rb.OK {
				a.registered.Store(true)
				if a.cfg.OnRegistered != nil {
					a.cfg.OnRegistered()
				}
				if rb.HeartbeatEvery > 0 {
					return rb.HeartbeatEvery
				}
				return a.cfg.HeartbeatEvery
			}
		}
		select {
		case <-a.stop:
			return 0
		case <-time.After(backoff):
		}
	}
}

// heartbeat sends one beacon; false means the master no longer knows
// this node and the agent must re-register.
func (a *Agent) heartbeat(seq uint64) bool {
	var st NodeStats
	if a.cfg.Stats != nil {
		st = a.cfg.Stats()
	}
	body := HeartbeatBody{
		Node:          a.cfg.Name,
		Seq:           seq,
		Residents:     st.Residents,
		DiskUsedBytes: st.DiskUsedBytes,
		Draining:      st.Draining,
	}
	f := wire.BinaryFrame(wire.KindFleetHeartbeat, a.cfg.Name, a.cfg.Master, &body)
	resp, err := a.call(f)
	if err != nil {
		return true // transient; liveness is the master's call
	}
	var rb HeartbeatReplyBody
	if err := rb.Decode(resp.Payload); err != nil {
		return true
	}
	if !rb.OK && rb.Err != "" {
		a.registered.Store(false)
		return false
	}
	a.throttled.Store(rb.Throttle)
	return true
}

// flush drains up to BatchMax queued events into one export frame.
func (a *Agent) flush() {
	var evs []Event
	for len(evs) < a.cfg.BatchMax {
		select {
		case ev := <-a.queue:
			evs = append(evs, ev)
		default:
			goto drained
		}
	}
drained:
	if len(evs) == 0 {
		return
	}
	body := EventBatchBody{Node: a.cfg.Name, Events: evs}
	f := wire.BinaryFrame(wire.KindFleetEvents, a.cfg.Name, a.cfg.Master, &body)
	resp, err := a.call(f)
	if err != nil {
		// The batch is lost — bounded memory beats unbounded retry.
		if a.droppedSend != nil {
			a.droppedSend.Inc()
		}
		return
	}
	var rb EventAckBody
	if err := rb.Decode(resp.Payload); err == nil {
		a.throttled.Store(rb.Throttle)
	}
	if a.exported != nil {
		a.exported.Add(int64(len(evs)))
	}
}

// call performs one bounded round-trip to the master.
func (a *Agent) call(f wire.Frame) (wire.Frame, error) {
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.CallTimeout)
	defer cancel()
	return a.cfg.Node.Call(ctx, a.cfg.Master, f)
}

// Close stops the loop after a final flush.
func (a *Agent) Close() {
	a.once.Do(func() { close(a.stop) })
	a.stopped.Wait()
}
